// lesslog_loadgen — drive real GET traffic at a set of `lesslog_cli
// serve` processes over the socket transport (docs/TRANSPORT.md).
//
//   lesslog_loadgen --hosts 'serve:0-31:127.0.0.1:4701;
//                            serve:32-62:127.0.0.1:4702;
//                            client:63:127.0.0.1:4703'
//                   --self 2 [--m 6] [--b 2] [--files 32] [--rate 200]
//                   [--duration 2] [--timeout 0.25] [--retries 2]
//                   [--seed 1] [--setup-timeout 20] [--stats-out path]
//
// Phase 1 places `--files` files on the holders the paper's placement
// rule resolves; phase 2 issues fixed-rate GETs against uniformly random
// files through the unmodified proto::Client reliability stack and
// reports exact end-to-end p50/p99. Exit status is 0 iff every insert
// was acked and every GET came back ok — the transport_smoke gate.
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>

#include "lesslog/net/loadgen.hpp"

namespace {

using namespace lesslog;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        throw std::runtime_error("expected --flag value pairs, got: " + key);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] int get(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv, 1);
    net::LoadGenConfig cfg;
    cfg.hosts = net::HostMap::parse(flags.get("hosts", std::string()));
    cfg.self = static_cast<std::size_t>(flags.get("self", 0));
    cfg.m = flags.get("m", 6);
    cfg.b = flags.get("b", 2);
    cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
    cfg.files = flags.get("files", 32);
    cfg.rate = flags.get("rate", 200.0);
    cfg.duration = flags.get("duration", 2.0);
    cfg.setup_timeout = flags.get("setup-timeout", 20.0);
    cfg.client.timeout = flags.get("timeout", 0.25);
    cfg.client.max_retries = flags.get("retries", 2);

    net::LoadGen gen(std::move(cfg));
    const net::LoadGenReport report = gen.run();

    gen.write_stats(std::cout, report);
    if (flags.has("stats-out")) {
      const std::string path = flags.get("stats-out", std::string());
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write " + path);
      gen.write_stats(out, report);
    }
    std::cout << (report.all_ok() ? "loadgen: OK" : "loadgen: FAILED")
              << " (" << report.gets_ok << "/" << report.gets_issued
              << " gets ok, p50 " << report.p50() * 1e3 << " ms, p99 "
              << report.p99() * 1e3 << " ms)\n";
    return report.all_ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
