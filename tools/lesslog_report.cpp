// lesslog_report — regenerate the full reproduction report in one command.
//
//   lesslog_report [--out REPORT.md] [--quick] [--seeds N]
//
// Runs every figure of the paper (and the headline ablations) in-process
// and writes a single Markdown report with the measured tables and the
// machine-checked shape claims — the artifact to attach to a reproduction
// review.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/proto/swarm.hpp"
#include "lesslog/sim/catalog.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/sim/metrics.hpp"
#include "lesslog/util/thread_pool.hpp"

namespace {

using namespace lesslog;

struct Options {
  std::string out = "REPORT.md";
  bool quick = false;
  int seeds = 5;
};

std::vector<double> rates(bool quick) {
  std::vector<double> out;
  for (int k = 1; k <= 20; ++k) {
    if (!quick || k % 4 == 0) out.push_back(1000.0 * k);
  }
  return out;
}

double mean_replicas(sim::ExperimentConfig cfg, const sim::PlacementFn& p,
                     int seeds) {
  double total = 0.0;
  for (int seed = 1; seed <= seeds; ++seed) {
    cfg.seed = static_cast<std::uint64_t>(seed);
    total += sim::run_replication_experiment(cfg, p).replicas_created;
  }
  return total / seeds;
}

sim::FigureData methods_figure(const std::string& title,
                               sim::WorkloadKind kind, const Options& opt,
                               util::ThreadPool& pool) {
  const std::vector<double> xs = rates(opt.quick);
  sim::FigureData fig(title, "requests/s", xs);
  for (const auto& [name, policy] :
       {std::pair<std::string, sim::PlacementFn>{"log-based",
                                                 baseline::logbased_policy()},
        {"lesslog", baseline::lesslog_policy()},
        {"random", baseline::random_policy()}}) {
    std::vector<double> ys(xs.size(), 0.0);
    util::parallel_for(pool, xs.size(), [&, &policy_ref = policy](std::size_t i) {
      sim::ExperimentConfig cfg;
      cfg.m = 10;
      cfg.capacity = 100.0;
      cfg.workload = kind;
      cfg.total_rate = xs[i];
      ys[i] = mean_replicas(cfg, policy_ref, opt.seeds);
    });
    fig.add_series(name, std::move(ys));
  }
  return fig;
}

sim::FigureData dead_figure(const std::string& title, sim::WorkloadKind kind,
                            const Options& opt, util::ThreadPool& pool) {
  const std::vector<double> xs = rates(opt.quick);
  sim::FigureData fig(title, "requests/s", xs);
  for (const double dead : {0.1, 0.2, 0.3}) {
    std::vector<double> ys(xs.size(), 0.0);
    util::parallel_for(pool, xs.size(), [&](std::size_t i) {
      sim::ExperimentConfig cfg;
      cfg.m = 10;
      cfg.capacity = 100.0;
      cfg.workload = kind;
      cfg.dead_fraction = dead;
      cfg.total_rate = xs[i];
      ys[i] = mean_replicas(cfg, baseline::lesslog_policy(), opt.seeds);
    });
    fig.add_series(std::to_string(static_cast<int>(dead * 100)) + "% dead",
                   std::move(ys));
  }
  return fig;
}

void claim(std::ostream& out, bool ok, const std::string& text) {
  out << "- " << (ok ? "✅" : "❌") << " " << text << "\n";
}

/// Runs one sampled packet-level swarm and appends the observability
/// section: headline wire counters plus the sampled time-series table.
void wire_observability_section(std::ostream& md, const Options& opt) {
  const int m = 6;
  const int requests = opt.quick ? 200 : 500;
  proto::Swarm::Config cfg;
  cfg.m = m;
  cfg.b = 0;
  cfg.nodes = util::space_size(m);
  cfg.seed = 42;
  cfg.net.base_latency = 0.010;
  cfg.net.jitter = 0.005;
  proto::Swarm swarm(cfg);

  util::Rng rng(42ULL ^ 0xF00DULL);
  std::vector<std::pair<core::FileId, core::Pid>> files;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const core::FileId f{0x5EED0000ULL + i};
    const core::Pid target{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    files.emplace_back(f, target);
    swarm.insert(f, target, core::Pid{0});
  }
  swarm.settle();
  // Requests spread over one second so the sampled series shows traffic
  // moving through the swarm, not a single burst.
  const double window = 1.0;
  swarm.enable_metrics_sampling(/*interval=*/0.1,
                                swarm.engine().now() + window + 1.0);
  for (int i = 0; i < requests; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    const double delay = window * static_cast<double>(i) / requests;
    swarm.engine().after_fixed(delay, [&swarm, f = f, target = target, at] {
      swarm.get(f, target, at);
    });
  }
  swarm.settle();

  const obs::Snapshot snap = swarm.registry().snapshot(swarm.engine().now());
  md << "## Wire observability — sampled swarm run\n\n"
     << "One packet-level swarm (m = 6, " << requests
     << " GETFILE requests), registry sampled every 0.1 s of simulated "
        "time.\nCounters are cumulative; difference adjacent rows for "
        "rates.\n\n";
  const auto counter = [&](const char* name) -> std::uint64_t {
    const std::uint64_t* v = snap.counter(name);
    return v != nullptr ? *v : 0;
  };
  md << "| counter | value |\n|---|---|\n"
     << "| GETs issued | " << counter("client.gets") << " |\n"
     << "| GETs served | " << counter("peer.served") << " |\n"
     << "| forwards | " << counter("peer.forwarded") << " |\n"
     << "| wire bytes out | " << counter("net.bytes_out") << " |\n"
     << "| faults | " << counter("client.faults") << " |\n\n";
  if (const obs::LatencyHistogram* h = snap.histogram("client.get_latency")) {
    std::ostringstream lat;
    lat << std::fixed << std::setprecision(1)
        << 1000.0 * h->percentile(50.0) << " / "
        << 1000.0 * h->percentile(99.0);
    md << "GETFILE latency p50/p99: " << lat.str() << " ms ("
       << h->total() << " samples, octave-bucket resolution).\n\n";
  }
  const obs::TimeSeries& series = swarm.metrics_series();
  if (!series.empty()) {
    md << "```\n"
       << series
              .to_table({"client.gets", "peer.served", "net.bytes_out",
                         "engine.queue_depth"})
              .render()
       << "```\n\n"
       << "Regenerate machine-readably: `abl_latency --smoke --metrics "
          "json`, or any wire\nbench with `--metrics json|csv` "
          "(schema `lesslog.metrics` v1; see docs/OBSERVABILITY.md).\n\n";
  }
}

/// Runs one sharded swarm per PID→shard map under a tree-local workload
/// and appends the cross-shard traffic comparison (the locality-map
/// headline from abl_scale, sized for a report run).
void sharded_locality_section(std::ostream& md, const Options& opt) {
  const int m = opt.quick ? 8 : 10;
  const std::size_t shards = 4;
  const int requests = opt.quick ? 1000 : 4000;
  const int locality_bits = 4;  // issuer shares the target's low m-4 bits

  md << "## Sharded engine — PID→shard map vs. cross-shard traffic\n\n"
     << "One windowed-parallel swarm per map (m = " << m << ", S = "
     << shards << ", clustered geography, " << requests
     << " tree-local GETs:\nthe issuer shares the target's low "
     << (m - locality_bits) << " bits, i.e. lives in its deep XOR "
        "subtree).\n\n"
     << "| map | cross-shard fraction | messages |\n|---|---|---|\n";

  double fracs[2] = {0.0, 0.0};
  int row = 0;
  for (const proto::ShardMap::Kind kind :
       {proto::ShardMap::Kind::kRange, proto::ShardMap::Kind::kSubtree}) {
    proto::ShardedSwarm::Config cfg;
    cfg.m = m;
    cfg.b = 0;
    cfg.nodes = util::space_size(m);
    cfg.seed = 42;
    cfg.shards = shards;
    cfg.shard_map = kind;
    cfg.geo = proto::Geography{
        .seed = 42, .clusters = shards, .cluster_radius = 0.04};
    cfg.client.timeout = 2.0;
    proto::ShardedSwarm swarm(cfg);

    util::Rng rng(42ULL ^ 0xF00DULL);
    std::vector<std::pair<core::FileId, core::Pid>> files;
    for (std::uint64_t i = 0; i < 32; ++i) {
      const core::FileId f{0x5EED0000ULL + i};
      const core::Pid target{
          static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
      files.emplace_back(f, target);
      swarm.insert(f, target, core::Pid{0});
    }
    swarm.settle();
    for (int i = 0; i < requests; ++i) {
      const auto& [f, target] = files[rng.bounded(files.size())];
      const auto high = static_cast<std::uint32_t>(
          rng.bounded(std::uint64_t{1} << locality_bits));
      const core::Pid at{target.value() ^ (high << (m - locality_bits))};
      swarm.get(f, target, at);
    }
    swarm.settle();

    fracs[row] = swarm.cross_shard_fraction();
    md << "| " << proto::shard_map_name(kind) << " | " << std::fixed
       << std::setprecision(4) << fracs[row] << std::defaultfloat
       << " | " << swarm.messages_sent() << " |\n";
    ++row;
  }
  md << "\n";
#if LESSLOG_METRICS_ENABLED
  claim(md, fracs[1] < fracs[0],
        "the XOR-subtree locality map crosses shard boundaries less than "
        "the range map on tree-local traffic");
#endif
  md << "\nOn uniform random (issuer, target) pairs the maps tie: a "
        "lookup path\nascends the XOR tree flipping high PID bits first, "
        "so roughly half its hops\ncross any balanced partition. The "
        "subtree map wins exactly when traffic is\ntree-local — see "
        "ALGORITHM.md §10 and `abl_scale`.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--seeds" && i + 1 < argc) {
      opt.seeds = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: lesslog_report [--out path] [--quick] "
                   "[--seeds N]\n";
      return 2;
    }
  }

  util::ThreadPool pool;
  std::ostringstream md;
  md << "# LessLog reproduction report\n\n"
     << "Generated by `lesslog_report` (seeds averaged: " << opt.seeds
     << (opt.quick ? ", quick sweep" : "") << ").\n"
     << "Setup: m = 10 (1024 ID slots), b = 0, capacity 100 req/s, one "
        "popular file.\nValues are replicas created until no node exceeds "
        "capacity.\n\n";

  std::cout << "figure 5..." << std::flush;
  const sim::FigureData fig5 = methods_figure(
      "Figure 5", sim::WorkloadKind::kUniform, opt, pool);
  md << "## Figure 5 — evenly distributed load\n\n"
     << fig5.to_markdown() << "\n";
  claim(md, fig5.dominates("lesslog", "random"),
        "LessLog ≤ random at every rate (paper: \"significantly fewer\")");
  claim(md, fig5.dominates("log-based", "lesslog", 0.05),
        "log-based ≤ LessLog (paper: LessLog \"slightly more\")");
  claim(md, fig5.roughly_increasing("lesslog", 2.0),
        "replica demand grows with request rate");
  md << "\n";

  std::cout << " figure 6..." << std::flush;
  const sim::FigureData fig6 =
      dead_figure("Figure 6", sim::WorkloadKind::kUniform, opt, pool);
  md << "## Figure 6 — even load, dead nodes (LessLog)\n\n"
     << fig6.to_markdown() << "\n";
  bool similar = true;
  for (std::size_t i = 0; i < fig6.x_values().size(); ++i) {
    double lo = 1e18;
    double hi = 0.0;
    for (std::size_t s = 0; s < fig6.series_count(); ++s) {
      lo = std::min(lo, fig6.series(s).values[i]);
      hi = std::max(hi, fig6.series(s).values[i]);
    }
    similar = similar && hi <= lo * 1.6 + 8.0;
  }
  claim(md, similar, "10/20/30% dead create similar replica counts");
  md << "\n";

  std::cout << " figure 7..." << std::flush;
  const sim::FigureData fig7 = methods_figure(
      "Figure 7", sim::WorkloadKind::kLocality, opt, pool);
  md << "## Figure 7 — locality model (80/20)\n\n"
     << fig7.to_markdown() << "\n";
  claim(md, fig7.dominates("lesslog", "random", 0.02),
        "LessLog ≤ random at every rate");
  claim(md, fig7.dominates("log-based", "lesslog", 0.05),
        "perfect logs ≤ LessLog — the \"slightly more\" gap");
  md << "\n";

  std::cout << " figure 8..." << std::flush;
  const sim::FigureData fig8 =
      dead_figure("Figure 8", sim::WorkloadKind::kLocality, opt, pool);
  md << "## Figure 8 — locality model, dead nodes (LessLog)\n\n"
     << fig8.to_markdown() << "\n"
     << "Cells past ~18k req/s with 30% dead end in irreducible local "
        "overload\n(hot-node client demand exceeds capacity; see "
        "EXPERIMENTS.md).\n\n";

  std::cout << " catalog..." << std::flush;
  md << "## Extension — Zipf catalog (64 files, 16k req/s)\n\n"
     << "| zipf s | replicas | copies/file |\n|---|---|---|\n";
  for (const double s : {0.0, 0.8, 1.1}) {
    sim::CatalogConfig cfg;
    cfg.m = opt.quick ? 8 : 10;
    cfg.total_rate = opt.quick ? 4000.0 : 16000.0;
    cfg.zipf_s = s;
    const sim::CatalogResult r =
        sim::run_catalog_experiment(cfg, baseline::lesslog_policy());
    md << "| " << s << " | " << r.replicas_created << " | "
       << static_cast<double>(r.total_copies) / cfg.files << " |\n";
  }
  md << "\n";

  std::cout << " observability..." << std::flush;
  wire_observability_section(md, opt);
  std::cout << " sharding..." << std::flush;
  sharded_locality_section(md, opt);
  md << "See EXPERIMENTS.md for the ablation index (A1–A10) and "
        "bench/ for every generator.\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 1;
  }
  out << md.str();
  std::cout << " done.\nreport written to " << opt.out << "\n";
  return 0;
}
