// lesslog_cli — run LessLog experiments and inspect lookup trees from the
// command line without writing code.
//
//   lesslog_cli experiment [--m 10] [--b 0] [--rate 10000] [--capacity 100]
//                          [--workload uniform|locality] [--dead 0.2]
//                          [--policy lesslog|random|logbased] [--seed 42]
//   lesslog_cli catalog    [--m 10] [--files 64] [--zipf 0.8] [--rate 16000]
//                          [--capacity 100] [--seed 42]
//   lesslog_cli churn      [--m 8] [--nodes 200] [--files 64] [--b 0]
//                          [--duration 600] [--requests 200] [--events 1.0]
//                          [--seed 7]
//   lesslog_cli tree       --m 4 --root 4 [--dead 0,5] [--route 8]
//   lesslog_cli metrics    [--m 6] [--requests 200] [--drop 0.0] [--seed 42]
//                          [--interval 0.05] [--format table|json|csv]
//                          [--out path]
//   lesslog_cli chaos      [--m 6] [--b 2] [--nodes 40] [--seed 1]
//                          [--epochs 5] [--epoch-length 30]
//                          [--intensity 0.5] [--files 48] [--rate 20]
//                          [--broken 1] [--artifact path] [--replay path]
//   lesslog_cli serve      --hosts 'serve:0-31:127.0.0.1:4701;...' --self 0
//                          [--m 6] [--b 2] [--seed 1] [--duration 0]
//                          [--stats-out path]
//
// Every subcommand prints a human-readable report; `tree` renders the
// paper's structures (children lists, routes, stand-ins) for any
// configuration, which makes it a handy teaching/debugging tool;
// `metrics` runs a packet-level swarm with registry sampling on and
// dumps the full observability document (counters, gauges, latency
// percentiles, time-series); `chaos` runs the deterministic
// fault-injection driver (docs/ROBUSTNESS.md) and exits nonzero on any
// invariant violation — `--replay` re-runs a captured artifact instead;
// `serve` runs one host-map entry's PID range as a real process over the
// epoll socket transport (docs/TRANSPORT.md) — drive it with
// lesslog_loadgen.
#include <charconv>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/chaos/driver.hpp"
#include "lesslog/chaos/replay.hpp"
#include "lesslog/core/snapshot.hpp"
#include "lesslog/core/system.hpp"
#include "lesslog/net/serve.hpp"
#include "lesslog/obs/export.hpp"
#include "lesslog/proto/swarm.hpp"
#include "lesslog/sim/catalog.hpp"
#include "lesslog/sim/churn.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/util/table.hpp"

namespace {

using namespace lesslog;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        throw std::runtime_error("expected --flag value pairs, got: " + key);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  [[nodiscard]] double get(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] int get(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

sim::PlacementFn policy_by_name(const std::string& name) {
  if (name == "lesslog") return baseline::lesslog_policy();
  if (name == "random") return baseline::random_policy();
  if (name == "logbased") return baseline::logbased_policy();
  throw std::runtime_error("unknown policy: " + name);
}

int cmd_experiment(const Flags& flags) {
  sim::ExperimentConfig cfg;
  cfg.m = flags.get("m", 10);
  cfg.b = flags.get("b", 0);
  cfg.total_rate = flags.get("rate", 10000.0);
  cfg.capacity = flags.get("capacity", 100.0);
  cfg.dead_fraction = flags.get("dead", 0.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 42));
  const std::string workload = flags.get("workload", std::string("uniform"));
  cfg.workload = workload == "locality" ? sim::WorkloadKind::kLocality
                                        : sim::WorkloadKind::kUniform;
  const std::string policy = flags.get("policy", std::string("lesslog"));

  const sim::ExperimentResult r =
      sim::run_replication_experiment(cfg, policy_by_name(policy));
  std::cout << "policy=" << policy << " workload=" << workload
            << " m=" << cfg.m << " b=" << cfg.b << " rate=" << cfg.total_rate
            << " capacity=" << cfg.capacity << " dead=" << cfg.dead_fraction
            << " seed=" << cfg.seed << "\n"
            << "  replicas created : " << r.replicas_created << "\n"
            << "  balanced         : " << (r.balanced ? "yes" : "no")
            << (r.irreducible_overload ? " (irreducible local overload)"
                                       : "")
            << "\n"
            << "  final max load   : " << r.final_max_load << " req/s\n"
            << "  mean lookup hops : " << r.mean_hops << "\n"
            << "  Jain fairness    : " << r.fairness << "\n"
            << "  live nodes       : " << r.live_nodes << "\n";
  return r.balanced ? 0 : 1;
}

int cmd_catalog(const Flags& flags) {
  sim::CatalogConfig cfg;
  cfg.m = flags.get("m", 10);
  cfg.b = flags.get("b", 0);
  cfg.files = static_cast<std::uint32_t>(flags.get("files", 64));
  cfg.zipf_s = flags.get("zipf", 0.8);
  cfg.total_rate = flags.get("rate", 16000.0);
  cfg.capacity = flags.get("capacity", 100.0);
  cfg.dead_fraction = flags.get("dead", 0.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 42));

  const sim::CatalogResult r =
      sim::run_catalog_experiment(cfg, baseline::lesslog_policy());
  std::cout << "catalog: " << cfg.files << " files, zipf " << cfg.zipf_s
            << ", " << cfg.total_rate << " req/s\n"
            << "  replicas created : " << r.replicas_created << "\n"
            << "  balanced         : " << (r.balanced ? "yes" : "no") << "\n"
            << "  total copies     : " << r.total_copies << "\n"
            << "  fairness         : " << r.fairness << "\n"
            << "  hottest 8 files  : ";
  for (std::size_t i = 0; i < 8 && i < r.replicas_by_rank.size(); ++i) {
    std::cout << r.replicas_by_rank[i] << " ";
  }
  std::cout << "replicas\n";
  return r.balanced ? 0 : 1;
}

int cmd_churn(const Flags& flags) {
  sim::ChurnConfig cfg;
  cfg.m = flags.get("m", 8);
  cfg.b = flags.get("b", 0);
  cfg.initial_nodes = static_cast<std::uint32_t>(flags.get("nodes", 200));
  cfg.min_nodes = cfg.initial_nodes / 3;
  cfg.files = static_cast<std::uint32_t>(flags.get("files", 64));
  cfg.duration = flags.get("duration", 600.0);
  cfg.request_rate = flags.get("requests", 200.0);
  const double events = flags.get("events", 1.0);
  cfg.join_rate = events / 2.0;
  cfg.leave_rate = events / 4.0;
  cfg.fail_rate = events / 4.0;
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 7));

  const sim::ChurnResult r = sim::run_churn(cfg);
  std::cout << "churn: " << cfg.initial_nodes << " nodes, " << cfg.duration
            << "s, " << events << " membership events/s, b=" << cfg.b << "\n"
            << "  requests         : " << r.requests << "\n"
            << "  faults           : " << r.faults << " ("
            << 100.0 * r.fault_fraction() << "%)\n"
            << "  joins/leaves/fail: " << r.joins << "/" << r.leaves << "/"
            << r.fails << "\n"
            << "  files lost       : " << r.files_lost << "\n"
            << "  mean hops        : " << r.mean_hops << "\n"
            << "  maintenance msgs : " << r.maintenance_messages << "\n";
  return 0;
}

std::vector<std::uint32_t> parse_list(const std::string& csv) {
  std::vector<std::uint32_t> out;
  std::stringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    out.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return out;
}

int cmd_tree(const Flags& flags) {
  const int m = flags.get("m", 4);
  const auto root = static_cast<std::uint32_t>(flags.get("root", 0));
  if (!util::valid_width(m) || !util::fits(root, m)) {
    throw std::runtime_error("invalid --m/--root");
  }
  const core::LookupTree tree(m, core::Pid{root});
  util::StatusWord live(m, util::space_size(m));
  if (flags.has("dead")) {
    for (const std::uint32_t d : parse_list(flags.get("dead", std::string()))) {
      live.set_dead(d);
    }
  }

  std::cout << "lookup tree of P(" << root << "), m=" << m << " ("
            << live.live_count() << "/" << util::space_size(m)
            << " nodes live)\n\n";
  util::Table table({"PID", "VID", "depth", "offspring", "children list"});
  for (std::uint32_t p = 0; p < util::space_size(m); ++p) {
    if (!live.is_live(p)) continue;
    std::ostringstream kids;
    for (const core::Pid c :
         core::children_list(tree, core::Pid{p}, live)) {
      kids << "P(" << c.value() << ") ";
    }
    table.add_row({std::string("P(") + std::to_string(p) + ")",
                   core::to_binary(tree.vid_of(core::Pid{p}), m),
                   static_cast<std::int64_t>(tree.depth(core::Pid{p})),
                   static_cast<std::int64_t>(
                       tree.offspring_count(core::Pid{p})),
                   kids.str()});
  }
  std::cout << table.render();

  const auto holder = core::insertion_target(tree, live);
  std::cout << "\ninsertion target (FINDLIVENODE(r,r)): "
            << (holder ? "P(" + std::to_string(holder->value()) + ")"
                       : std::string("none"))
            << "\n";

  if (flags.has("route")) {
    const auto from = static_cast<std::uint32_t>(flags.get("route", 0));
    const core::RouteResult r = core::route_get(
        tree, core::Pid{from}, live,
        [&holder](core::Pid p) { return holder && p == *holder; });
    std::cout << "route from P(" << from << "):";
    for (const core::Pid p : r.path) std::cout << " P(" << p.value() << ")";
    std::cout << "  (" << r.hops() << " hops"
              << (r.used_fallback ? ", stand-in fallback" : "") << ")\n";
  }
  return 0;
}

int cmd_inspect(const Flags& flags) {
  const std::string path = flags.get("snapshot", std::string());
  if (path.empty()) throw std::runtime_error("inspect needs --snapshot");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  const core::System sys = core::load_snapshot(in);

  std::cout << "snapshot: " << path << "\n"
            << "  m=" << sys.width() << " (" << util::space_size(sys.width())
            << " slots), b=" << sys.fault_bits() << ", payload "
            << sys.config().payload_size << " B/file\n"
            << "  live nodes : " << sys.live_count() << "\n"
            << "  files      : " << sys.files().size() << " ("
            << sys.lost_files().size() << " lost)\n"
            << "  counters   : " << sys.lookup_messages() << " lookup, "
            << sys.maintenance_messages() << " maintenance, "
            << sys.faults() << " faults\n";
  const core::System::IntegrityReport report = sys.verify_integrity();
  std::cout << "  integrity  : "
            << (report.clean() ? "clean" : "VIOLATIONS") << " ("
            << report.corrupt.size() << " corrupt, " << report.stale.size()
            << " stale)\n";

  std::size_t copies = 0;
  std::size_t replicas = 0;
  for (const core::FileId f : sys.files()) {
    for (const core::Pid h : sys.holders(f)) {
      ++copies;
      const auto info = sys.node(h).store().info(f);
      if (info.has_value() && info->kind == core::CopyKind::kReplica) {
        ++replicas;
      }
    }
  }
  std::cout << "  copies     : " << copies << " total, " << replicas
            << " replicas\n";
  return report.clean() ? 0 : 1;
}

int cmd_metrics(const Flags& flags) {
  const int m = flags.get("m", 6);
  const int requests = flags.get("requests", 200);
  const double interval = flags.get("interval", 0.05);
  const std::string format = flags.get("format", std::string("table"));
  if (format != "table" && format != "json" && format != "csv") {
    throw std::runtime_error("--format must be table, json, or csv");
  }

  proto::Swarm::Config cfg;
  cfg.m = m;
  cfg.b = flags.get("b", 0);
  cfg.nodes = util::space_size(m);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 42));
  cfg.net.base_latency = 0.010;
  cfg.net.jitter = 0.005;
  cfg.net.drop_probability = flags.get("drop", 0.0);
  cfg.client.timeout = 0.25;
  cfg.client.max_retries = 5;
  proto::Swarm swarm(cfg);

  util::Rng rng(cfg.seed ^ 0xF00DULL);
  std::vector<std::pair<core::FileId, core::Pid>> files;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const core::FileId f{0x5EED0000ULL + i};
    const core::Pid target{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    files.emplace_back(f, target);
    swarm.insert(f, target, core::Pid{0});
  }
  swarm.settle();

  // Sample across the request phase: requests are spread over one second
  // of simulated time, so the series shows traffic ramping through the
  // swarm rather than a single burst.
  const double window = 1.0;
  swarm.enable_metrics_sampling(
      interval, swarm.engine().now() + window + 1.0);
  for (int i = 0; i < requests; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    const double delay = window * static_cast<double>(i) / requests;
    swarm.engine().after_fixed(
        delay, [&swarm, f = f, target = target, at] {
          swarm.get(f, target, at);
        });
  }
  swarm.settle();

  const obs::Snapshot snap = swarm.registry().snapshot(swarm.engine().now());
  const obs::TimeSeries& series = swarm.metrics_series();

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (flags.has("out")) {
    file.open(flags.get("out", std::string()));
    if (!file) {
      throw std::runtime_error("cannot write " +
                               flags.get("out", std::string()));
    }
    out = &file;
  }

  if (format == "json") {
    std::ostringstream doc;
    obs::write_metrics_json(doc, snap, "lesslog_cli", cfg.seed, &series);
    const std::string violation = obs::validate_metrics_json(doc.str());
    if (!violation.empty()) {
      std::cerr << "internal error: metrics document invalid: " << violation
                << "\n";
      return 1;
    }
    *out << doc.str();
    return 0;
  }
  if (format == "csv") {
    obs::write_metrics_csv(*out, snap, "lesslog_cli", cfg.seed, &series);
    return 0;
  }

  *out << "swarm metrics: m=" << m << " (" << util::space_size(m)
       << " nodes), " << requests << " requests, drop="
       << cfg.net.drop_probability << ", seed=" << cfg.seed << "\n\n";
  util::Table counters({"counter", "value"});
  for (const auto& [name, value] : snap.counters) {
    if (value != 0) {
      counters.add_row({name, static_cast<std::int64_t>(value)});
    }
  }
  *out << counters.render() << "\n";
  util::Table gauges({"gauge", "value"});
  for (const auto& [name, value] : snap.gauges) {
    gauges.add_row({name, value});
  }
  *out << gauges.render() << "\n";
  util::Table hists({"histogram", "count", "mean ms", "p50 ms", "p99 ms"});
  hists.set_precision(3);
  for (const auto& [name, h] : snap.histograms) {
    hists.add_row({name, h.total(), 1000.0 * h.mean(),
                   1000.0 * h.percentile(50.0), 1000.0 * h.percentile(99.0)});
  }
  *out << hists.render() << "\n";
  if (!series.empty()) {
    *out << "time-series (" << series.size() << " samples, every "
         << interval << "s):\n"
         << series
                .to_table({"client.gets", "peer.served", "net.bytes_out",
                           "engine.queue_depth", "client.get_latency"})
                .render();
  }
  return 0;
}

void print_chaos_report(const chaos::Report& r) {
  std::cout << "chaos: m=" << r.config.m << " b=" << r.config.b
            << " nodes=" << r.config.nodes << " seed=" << r.config.seed
            << " epochs=" << r.config.epochs
            << " intensity=" << r.config.fault_intensity
            << (r.config.silent_crashes ? " (broken recovery)" : "") << "\n"
            << "  schedule         : " << r.record.rules.size()
            << " fault rules, " << r.record.ops.size()
            << " membership ops\n"
            << "  injected         : burst_drops="
            << r.injected.burst_dropped
            << " partition_drops=" << r.injected.partition_dropped
            << " duplicates=" << r.injected.duplicated
            << " corruptions=" << r.injected.corrupted
            << " delay_spikes=" << r.injected.delay_spikes << "\n"
            << "  workload         : " << r.workload_issued << " GETs, "
            << r.workload_faults << " faulted, all terminated="
            << (r.workload_issued == r.workload_completed ? "yes" : "NO")
            << "\n"
            << "  wire             : " << r.messages_sent << " messages, "
            << r.repair_pushes << " repair pushes, "
            << r.sim_time << " simulated seconds\n"
            << "  audit            : "
            << (r.clean() ? "clean"
                          : std::to_string(r.violations.size()) +
                                " violation(s)")
            << "\n";
  for (const chaos::Violation& v : r.violations) {
    std::cout << "    [epoch " << v.epoch << "] " << v.check << ": "
              << v.detail << "\n";
  }
}

int cmd_chaos(const Flags& flags) {
  if (flags.has("replay")) {
    const std::string path = flags.get("replay", std::string());
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read artifact: " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::cout << "replaying " << path << "\n";
    const chaos::Report r = chaos::replay(buf.str());
    print_chaos_report(r);
    return r.clean() ? 0 : 1;
  }
  chaos::ChaosConfig cfg;
  cfg.m = flags.get("m", 6);
  cfg.b = flags.get("b", 2);
  cfg.nodes = static_cast<std::uint32_t>(flags.get("nodes", 40));
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  cfg.epochs = flags.get("epochs", 5);
  cfg.epoch_length = flags.get("epoch-length", 30.0);
  cfg.fault_intensity = flags.get("intensity", 0.5);
  cfg.files = flags.get("files", 48);
  cfg.get_rate = flags.get("rate", 20.0);
  cfg.silent_crashes = flags.get("broken", 0) != 0;
  chaos::Driver driver(cfg);
  const chaos::Report r = driver.run();
  print_chaos_report(r);
  // A violating run always leaves an artifact behind — it IS the bug
  // report (bit-identical replay via --replay).
  if (flags.has("artifact") || !r.clean()) {
    const std::string path =
        flags.get("artifact", std::string("chaos_artifact.json"));
    if (!chaos::write_artifact(path, r)) {
      throw std::runtime_error("cannot write artifact: " + path);
    }
    std::cout << "artifact written to " << path << "\n";
  }
  return r.clean() ? 0 : 1;
}

int cmd_serve(const Flags& flags) {
  net::ServeConfig cfg;
  cfg.hosts = net::HostMap::parse(flags.get("hosts", std::string()));
  cfg.self = static_cast<std::size_t>(flags.get("self", 0));
  cfg.m = flags.get("m", 6);
  cfg.b = flags.get("b", 2);
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  cfg.duration = flags.get("duration", 0.0);

  net::ServeHost host(std::move(cfg));
  const net::HostEntry& self = host.config().hosts.entry(host.config().self);
  std::cout << "serve: PIDs " << self.lo << "-" << self.hi << " on "
            << self.host << ":" << self.port << ", m=" << host.config().m
            << " b=" << host.config().b << ", "
            << (host.config().duration > 0.0
                    ? std::to_string(host.config().duration) + "s"
                    : std::string("until killed"))
            << "\n";
  host.run();

  host.write_stats(std::cout);
  if (flags.has("stats-out")) {
    const std::string path = flags.get("stats-out", std::string());
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    host.write_stats(out);
  }
  return 0;
}

void usage() {
  std::cerr << "usage: lesslog_cli "
               "<experiment|catalog|churn|tree|inspect|metrics|chaos|serve> "
               "[--flag value]...\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Flags flags(argc, argv, 2);
    if (cmd == "experiment") return cmd_experiment(flags);
    if (cmd == "catalog") return cmd_catalog(flags);
    if (cmd == "churn") return cmd_churn(flags);
    if (cmd == "tree") return cmd_tree(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "metrics") return cmd_metrics(flags);
    if (cmd == "chaos") return cmd_chaos(flags);
    if (cmd == "serve") return cmd_serve(flags);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
