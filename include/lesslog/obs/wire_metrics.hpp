// Pre-resolved metric cells for the protocol layer.
//
// The swarm registers every wire metric once at construction and hands
// this bundle of raw cell pointers to Network / Peer / Client, so each
// instrumented event is a single indirect increment — no name lookup on
// the hot path. Registration order (and therefore snapshot order) is
// fixed by the constructor.
#pragma once

#include <array>

#include "lesslog/obs/metrics.hpp"
#include "lesslog/proto/message.hpp"

namespace lesslog::obs {

struct WireMetrics {
  /// Wire type tags are 1..14; slot 0 is unused so a MsgType indexes
  /// directly. Tags 1..10 predate the SWIM messages and keep their
  /// original registration (and therefore snapshot-merge) positions; the
  /// SWIM slots 11..13 were appended in the membership PR, and the kBusy
  /// slot 14 after those — each generation of cells registers strictly
  /// after every older one so historic snapshot prefixes stay aligned.
  static constexpr std::size_t kTypeSlots = 15;
  static constexpr std::size_t kSwimTypeSlots = 14;
  static constexpr std::size_t kLegacyTypeSlots = 11;

  explicit WireMetrics(Registry& registry);

  [[nodiscard]] Counter& in_for(proto::MsgType t) const noexcept {
    return *msgs_in[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] Counter& out_for(proto::MsgType t) const noexcept {
    return *msgs_out[static_cast<std::size_t>(t)];
  }

  // Delivered / sent datagrams by message type ("msgs_in.GET", ...).
  std::array<Counter*, kTypeSlots> msgs_in{};
  std::array<Counter*, kTypeSlots> msgs_out{};

  // Network totals.
  Counter* bytes_out = nullptr;
  Counter* dropped = nullptr;
  Counter* undeliverable = nullptr;

  // Peer-side service counters.
  Counter* served = nullptr;
  Counter* forwarded = nullptr;
  Counter* push_retries = nullptr;

  // Client-side reliability counters.
  Counter* gets_issued = nullptr;
  Counter* get_retries = nullptr;
  Counter* get_timeouts = nullptr;
  Counter* get_migrations = nullptr;
  Counter* get_faults = nullptr;

  // Sampled gauges (refreshed by the swarm's sampler hook).
  Gauge* queue_depth = nullptr;
  Gauge* live_peers = nullptr;
  Gauge* max_served = nullptr;

  // End-to-end GETFILE latency (successful requests), in seconds.
  LatencyHistogram* get_latency = nullptr;

  // Delivery outcome totals (appended after get_latency to preserve the
  // registration order of pre-existing cells).
  Counter* delivered = nullptr;
  Counter* corrupted = nullptr;

  // Injected-fault accounting (chaos layer; zero on a clean network).
  Counter* injected_burst_drops = nullptr;
  Counter* injected_partition_drops = nullptr;
  Counter* injected_duplicates = nullptr;
  Counter* injected_corruptions = nullptr;
  Counter* injected_delay_spikes = nullptr;

  // Repair traffic: kFilePush transmissions that re-create replicas after
  // membership changes (join reclaim, depart push, crash recovery).
  Counter* repair_pushes = nullptr;

  // Shard-boundary accounting (appended last to preserve registration
  // order): datagrams that left via the cross-shard forward hook vs.
  // those the hook declined (destination on the sender's own shard).
  // Both stay zero when no hook is installed (serial swarm, S = 1), so
  // single-shard snapshots remain byte-identical to serial ones. The
  // cross-shard message fraction is cross / (cross + intra).
  Counter* cross_shard_msgs = nullptr;
  Counter* intra_shard_msgs = nullptr;

  // SWIM membership accounting (appended last — including the msgs_in/out
  // slots for the three SWIM wire types — so pre-membership snapshots keep
  // their registration order and single-shard merges stay byte-identical).
  Counter* swim_suspects = nullptr;      ///< suspicion verdicts reached
  Counter* swim_confirms = nullptr;      ///< suspects declared dead
  Counter* swim_refutations = nullptr;   ///< suspicions killed by alive(inc+1)
  Counter* swim_incarnation_bumps = nullptr;  ///< self-refutation bumps
  Counter* swim_gossip_bytes = nullptr;  ///< piggyback payload bytes carried

  // Adaptive request-reliability accounting (appended last, after the
  // SWIM cells and the kBusy msgs_in/out slots, so pre-reliability
  // snapshot prefixes keep their positions). All zero with the layer off.
  Counter* rtt_samples = nullptr;     ///< Karn-clean RTT samples absorbed
  Counter* hedges = nullptr;          ///< hedge GET legs launched
  Counter* hedge_wins = nullptr;      ///< requests completed by the hedge leg
  Counter* hedge_cancels = nullptr;   ///< hedge legs resolved by the other leg
  Counter* busy_received = nullptr;   ///< kBusy replies acted on by clients
  Counter* busy_shed = nullptr;       ///< GETs refused over the service budget
};

}  // namespace lesslog::obs
