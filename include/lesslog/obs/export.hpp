// Metrics document export: the shared "lesslog.metrics" v1 schema that
// benches (--metrics json|csv), the CLI metrics subcommand, and the
// report generator all emit, plus a validator the ctest smoke checks run
// against the bytes they just wrote.
//
// JSON document shape (schema "lesslog.metrics", version 1):
//   {
//     "schema": "lesslog.metrics", "version": 1,
//     "source": "<bench or tool name>", "seed": N,
//     "counters": { "name": N, ... },
//     "gauges": { "name": X, ... },
//     "histograms": { "name": {"count": N, "mean_ms": X, "p50_ms": X,
//                              "p90_ms": X, "p99_ms": X}, ... },
//     "series": [ {"t": X, "<scalar>": X, ...}, ... ]   // optional
//   }
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "lesslog/obs/metrics.hpp"
#include "lesslog/obs/sampler.hpp"

namespace lesslog::obs {

inline constexpr std::string_view kMetricsSchemaName = "lesslog.metrics";
inline constexpr int kMetricsSchemaVersion = 1;

/// Writes one metrics document in the shared JSON schema. `series` may be
/// null (benches without a sampler omit the section).
void write_metrics_json(std::ostream& out, const Snapshot& snapshot,
                        std::string_view source, std::uint64_t seed,
                        const TimeSeries* series = nullptr);

/// CSV mirror: a `metric,kind,value` row per scalar, histogram stats
/// flattened to rows; the time-series (if any) follows as a second CSV
/// block separated by a blank line.
void write_metrics_csv(std::ostream& out, const Snapshot& snapshot,
                       std::string_view source, std::uint64_t seed,
                       const TimeSeries* series = nullptr);

/// Validates that `text` parses as JSON and conforms to the
/// "lesslog.metrics" v1 schema above (correct schema/version tags,
/// counters/gauges numeric, histogram stat objects complete, series rows
/// carrying "t"). Returns an empty string on success, else a one-line
/// description of the first violation.
std::string validate_metrics_json(std::string_view text);

}  // namespace lesslog::obs
