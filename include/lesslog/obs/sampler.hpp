// Periodic registry sampling into a time-series.
//
// The sampler is the engine hook of the observability layer: every Δt of
// simulated time it (optionally) refreshes derived gauges via a
// user-supplied callback, then appends a registry snapshot to its series.
// Counters are cumulative, so consumers difference adjacent samples for
// rates; gauges are instantaneous.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "lesslog/obs/metrics.hpp"
#include "lesslog/sim/engine.hpp"
#include "lesslog/util/table.hpp"

namespace lesslog::obs {

/// An ordered sequence of snapshots at increasing simulated times.
struct TimeSeries {
  std::vector<Snapshot> samples;

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples.empty(); }

  /// Table with one row per sample: time plus the named scalar columns
  /// (counter or gauge names; histogram names expand to p50/p99 ms).
  /// Unknown names render as 0.
  [[nodiscard]] util::Table to_table(
      const std::vector<std::string>& columns) const;

  /// CSV mirror of every scalar column (time, counters..., gauges...,
  /// histogram p50/p99/count columns).
  void write_csv(std::ostream& out) const;

  /// JSON array of sample objects (the "series" section of the metrics
  /// document schema).
  void write_json(std::ostream& out, int indent = 0) const;
};

/// Schedules itself on a sim::Engine and snapshots a registry every
/// `interval` simulated seconds until `stop_at`. Must outlive the engine
/// events it schedules (the swarm owns its sampler for exactly this
/// reason).
class Sampler {
 public:
  /// `pre_sample`, if set, runs right before each snapshot — the place to
  /// refresh derived gauges (queue depth, live peers, ...).
  Sampler(sim::Engine& engine, const Registry& registry, double interval,
          double stop_at, std::function<void()> pre_sample = {});

  /// Schedules the first sample at now() + interval. Idempotent per
  /// construction (call once).
  void start();

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }
  [[nodiscard]] double interval() const noexcept { return interval_; }

 private:
  void tick();

  sim::Engine* engine_;
  const Registry* registry_;
  double interval_;
  double stop_at_;
  std::function<void()> pre_sample_;
  TimeSeries series_;
};

}  // namespace lesslog::obs
