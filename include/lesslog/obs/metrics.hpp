// Swarm-wide observability: metric cells and the registry that names them.
//
// The hot path is a pointer-indirect increment into a cache-line-padded
// cell — no hashing, no locking, no allocation. Cells are registered once
// (by name, at swarm construction) and referenced by raw pointer from the
// instrumented code; snapshots walk the registry in registration order,
// so two swarms built the same way produce shape-identical (and, at equal
// seeds, value-identical) snapshots.
//
// Compiling with -DLESSLOG_NO_METRICS removes every instrumentation
// statement (see LESSLOG_METRICS below); the registry type remains so the
// API surface does not change shape.
#pragma once

#include <cmath>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lesslog/util/histogram.hpp"

// Wraps an instrumentation statement so -DLESSLOG_NO_METRICS compiles it
// out entirely (not even a null check survives).
#if defined(LESSLOG_NO_METRICS)
#define LESSLOG_METRICS_ENABLED 0
#define LESSLOG_METRICS(stmt) \
  do {                        \
  } while (false)
#else
#define LESSLOG_METRICS_ENABLED 1
#define LESSLOG_METRICS(stmt) \
  do {                        \
    stmt;                     \
  } while (false)
#endif

namespace lesslog::obs {

/// Every metric cell owns a full cache line so adjacent cells never share
/// one (false sharing would make concurrent bench cells pay each other's
/// write traffic).
inline constexpr std::size_t kCellSize = 64;

/// Monotone event count. Wraps modulo 2^64 like any unsigned counter.
class alignas(kCellSize) Counter {
 public:
  void inc() noexcept { ++value_; }
  void add(std::uint64_t n) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};
static_assert(sizeof(Counter) == kCellSize && alignof(Counter) == kCellSize,
              "a Counter cell must own exactly one cache line");

/// Last-write-wins instantaneous value (queue depth, live peers, ...).
class alignas(kCellSize) Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};
static_assert(sizeof(Gauge) == kCellSize && alignof(Gauge) == kCellSize,
              "a Gauge cell must own exactly one cache line");

/// Log-bucketed latency distribution: bucket 0 is [0, 1 µs), bucket i>0
/// is [2^(i-1), 2^i) µs, and the last bucket absorbs everything beyond.
/// Mergeable across registries (bucket-wise add), so parallel bench cells
/// can be combined into one distribution. The counts live in a
/// util::Histogram keyed by bucket index, which also provides the ASCII
/// renderer for free.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketCount = 40;
  static constexpr double kBucketLoSeconds = 1e-6;

  LatencyHistogram() : buckets_(0.0, 1.0, kBucketCount) {}

  void add(double seconds) noexcept {
    buckets_.add(static_cast<double>(bucket_index(seconds)));
    sum_ += seconds;
  }

  /// Bucket-wise accumulate; associative and commutative in the counts
  /// (the running sum is a float accumulation — merge in a fixed order
  /// when bit-stable output matters).
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (other.bucket(i) != 0) {
        buckets_.add_n(static_cast<double>(i), other.bucket(i));
      }
    }
    sum_ += other.sum_;
  }

  [[nodiscard]] std::int64_t total() const noexcept {
    return buckets_.total();
  }
  [[nodiscard]] std::int64_t bucket(std::size_t i) const noexcept {
    return buckets_.bucket(i);
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return total() > 0 ? sum_ / static_cast<double>(total()) : 0.0;
  }

  /// Inclusive lower bound of bucket i, in seconds.
  [[nodiscard]] static double bucket_lower(std::size_t i) noexcept {
    return i == 0 ? 0.0
                  : kBucketLoSeconds * std::ldexp(1.0, static_cast<int>(i) - 1);
  }
  /// Exclusive upper bound of bucket i, in seconds (the last bucket is
  /// open-ended; its nominal upper bound is still reported).
  [[nodiscard]] static double bucket_upper(std::size_t i) noexcept {
    return kBucketLoSeconds * std::ldexp(1.0, static_cast<int>(i));
  }

  [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept {
    if (!(seconds >= kBucketLoSeconds)) return 0;  // includes NaN
    const int exp = std::ilogb(seconds / kBucketLoSeconds);
    const std::size_t idx = static_cast<std::size_t>(exp) + 1;
    return idx < kBucketCount ? idx : kBucketCount - 1;
  }

  /// Approximate percentile (pct in [0, 100]): the midpoint of the bucket
  /// holding the pct-th sample. Resolution is one octave — good enough
  /// for dashboards, deterministic for tests.
  [[nodiscard]] double percentile(double pct) const noexcept;

  /// The raw index-keyed histogram (bucket i at x = i), e.g. for
  /// util::Histogram::render().
  [[nodiscard]] const util::Histogram& buckets() const noexcept {
    return buckets_;
  }

  friend bool operator==(const LatencyHistogram& a,
                         const LatencyHistogram& b) noexcept {
    if (a.total() != b.total() || a.sum_ != b.sum_) return false;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      if (a.bucket(i) != b.bucket(i)) return false;
    }
    return true;
  }

 private:
  util::Histogram buckets_;
  double sum_ = 0.0;
};

/// Point-in-time copy of a registry's values, in registration order.
struct Snapshot {
  double time = 0.0;  ///< simulated seconds at capture
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms;

  /// Accumulates `other` into this snapshot: counters and histogram
  /// buckets add; gauges add too (merging N swarm cells, the sum of
  /// instantaneous values is the fleet total). An empty snapshot adopts
  /// `other`'s shape; otherwise shapes must match exactly.
  void merge_from(const Snapshot& other);

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  [[nodiscard]] const std::uint64_t* counter(std::string_view name) const;
  [[nodiscard]] const double* gauge(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram* histogram(std::string_view name) const;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Owns the metric cells of one swarm. References returned by the
/// find-or-create accessors are stable for the registry's lifetime (cells
/// live in deques), so instrumented code can hold raw pointers.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. Registration is a linear name scan — call at
  /// setup time and cache the reference, not per event.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  [[nodiscard]] bool empty() const noexcept {
    return counter_names_.empty() && gauge_names_.empty() &&
           histogram_names_.empty();
  }

  /// Deterministic copy of every cell, in registration order.
  [[nodiscard]] Snapshot snapshot(double time = 0.0) const;

 private:
  std::deque<Counter> counters_;
  std::vector<std::string> counter_names_;
  std::deque<Gauge> gauges_;
  std::vector<std::string> gauge_names_;
  std::deque<LatencyHistogram> histograms_;
  std::vector<std::string> histogram_names_;
};

}  // namespace lesslog::obs
