// The unified swarm observer API.
//
// A DeliverySink sees every datagram the network hands to an attached
// peer (at delivery time, before the peer's handler runs) plus the
// swarm's membership events. Sinks are registered with
// Swarm::add_sink() and notified in registration order; peers that join
// after registration are covered automatically — the notification point
// is the network's single delivery funnel, not per-peer handler wrappers,
// so there is nothing to re-arm.
//
// Implementations in-tree: proto::Trace (record + query), MetricsSink
// (count by type into a registry), JsonlSink (stream one JSON object per
// event).
#pragma once

#include <iosfwd>

#include "lesslog/obs/wire_metrics.hpp"

namespace lesslog::obs {

class DeliverySink {
 public:
  virtual ~DeliverySink();

  /// One call per datagram delivered to an attached peer, immediately
  /// before the peer's handler runs. `time` is the simulated delivery
  /// time. Dropped and undeliverable datagrams are not delivered and are
  /// not observed here.
  virtual void on_deliver(double time, const proto::Message& m) = 0;

  /// Membership notification from the swarm: `peer` joined (live) or
  /// left / crashed (!live). Default: ignore.
  virtual void on_peer(double time, core::Pid peer, bool live);
};

/// The metrics recorder: counts delivered datagrams by type into a
/// registry's pre-resolved WireMetrics cells.
class MetricsSink final : public DeliverySink {
 public:
  explicit MetricsSink(const WireMetrics& metrics) : metrics_(&metrics) {}

  void on_deliver(double time, const proto::Message& m) override;

 private:
  const WireMetrics* metrics_;
};

/// Streaming exporter: one JSON object per observed event, written as it
/// happens (JSONL). Delivery lines carry the full message; membership
/// lines are tagged "event":"peer".
class JsonlSink final : public DeliverySink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void on_deliver(double time, const proto::Message& m) override;
  void on_peer(double time, core::Pid peer, bool live) override;

 private:
  std::ostream* out_;
};

/// Writes one delivery record in the shared JSONL shape (used by
/// JsonlSink and proto::Trace so both emit identical lines).
void write_delivery_jsonl(std::ostream& out, double time,
                          const proto::Message& m);

}  // namespace lesslog::obs
