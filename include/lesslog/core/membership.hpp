// Self-organized membership (Section 5): the pure decision logic for
// joining, leaving, and failing nodes.
//
// The central question every protocol answers is "which live node is the
// authoritative holder of an inserted file right now?" — per subtree, it is
// the live node with the largest (subtree) VID, i.e. the (modified)
// FINDLIVENODE target. These helpers compute holder assignments before and
// after a membership change and derive the file movements required to keep
// LessLog's integrity invariant: every inserted file is stored exactly at
// its current authoritative holder(s).
//
// System (system.hpp) applies these plans to actual storage; keeping the
// planning pure makes the Section 5 logic directly unit-testable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// The authoritative holder of a file with target tree `tree` in subtree
/// `sub_id` under fault-tolerance degree b (the SubtreeView's). nullopt when
/// the subtree has no live node.
[[nodiscard]] std::optional<Pid> authoritative_holder(
    const SubtreeView& view, std::uint32_t sub_id,
    const util::StatusWord& live);

/// All authoritative holders (one per subtree that has a live node).
/// Order: subtree id ascending. With b = 0 this is the single
/// FINDLIVENODE(r, r) target.
[[nodiscard]] std::vector<Pid> authoritative_holders(
    const SubtreeView& view, const util::StatusWord& live);

/// One required relocation of an inserted copy.
struct HolderChange {
  std::uint32_t sub_id = 0;
  /// Previous holder; nullopt when the subtree had no live node before
  /// (the copy must be recovered from a sibling subtree).
  std::optional<Pid> from;
  /// New holder; nullopt when the subtree lost its last live node (the
  /// copy has no home until a node joins).
  std::optional<Pid> to;
};

/// Diffs per-subtree holder assignments across a membership change. Entries
/// are emitted only for subtrees whose holder changed.
[[nodiscard]] std::vector<HolderChange> diff_holders(
    const SubtreeView& view, const util::StatusWord& before,
    const util::StatusWord& after);

/// Cost (in point-to-point messages) of broadcasting a status-word change
/// to every live node — what join/leave/fail each pay once. The registering
/// node itself does not need a message.
[[nodiscard]] std::int64_t broadcast_cost(const util::StatusWord& live);

}  // namespace lesslog::core
