// Fault-tolerant LessLog (Section 4).
//
// The last b of the m VID bits are the *subtree identifier*; the top m-b
// bits are the *subtree VID*. Fixing the subtree identifier selects one of
// 2^b independent, identical binomial subtrees, each of which supports all
// file operations via the same bit arithmetic over subtree VIDs. A file is
// inserted at one target per subtree (2^b copies), and a get that faults in
// its own subtree migrates to the next subtree identifier. The system
// tolerates any failure pattern that leaves, for each file, at least one of
// its 2^b holders alive.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/core/routing.hpp"
#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/rng.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// Subtree-decomposed view of one lookup tree.
class SubtreeView {
 public:
  /// View of `tree` with the last `b` VID bits reserved for fault
  /// tolerance. Requires 0 <= b < m.
  SubtreeView(const LookupTree& tree, int b);

  [[nodiscard]] int fault_bits() const noexcept { return b_; }
  [[nodiscard]] int subtree_width() const noexcept {
    return tree_->width() - b_;
  }
  [[nodiscard]] std::uint32_t subtree_count() const noexcept {
    return util::space_size(b_);
  }
  [[nodiscard]] const LookupTree& tree() const noexcept { return *tree_; }

  /// Subtree identifier of a node: the low b bits of its VID.
  [[nodiscard]] std::uint32_t subtree_id(Pid p) const noexcept {
    return tree_->vid_of(p).value() & (util::space_size(b_) - 1u);
  }

  /// Subtree VID of a node: the high m-b bits of its VID.
  [[nodiscard]] std::uint32_t subtree_vid(Pid p) const noexcept {
    return tree_->vid_of(p).value() >> b_;
  }

  /// Reassembles a full PID from (subtree VID, subtree id).
  [[nodiscard]] Pid pid_at(std::uint32_t sub_vid,
                           std::uint32_t sub_id) const noexcept {
    return tree_->pid_of(Vid{(sub_vid << b_) | sub_id});
  }

  /// Root of subtree `sub_id`: subtree VID all-ones.
  [[nodiscard]] Pid subtree_root(std::uint32_t sub_id) const noexcept {
    return pid_at(util::mask_of(subtree_width()), sub_id);
  }

  /// Modified FINDLIVENODE over subtree VIDs: the live node with the
  /// largest subtree VID in subtree `sub_id`, scanning down from
  /// `from_sub_vid` inclusive. nullopt if the subtree has no live node.
  [[nodiscard]] std::optional<Pid> find_live_in_subtree(
      std::uint32_t sub_id, std::uint32_t from_sub_vid,
      const util::StatusWord& live) const;

  /// Insertion target of subtree `sub_id`: live node with the largest
  /// subtree VID (modified FINDLIVENODE started at the subtree root).
  [[nodiscard]] std::optional<Pid> insertion_target(
      std::uint32_t sub_id, const util::StatusWord& live) const;

  /// All 2^b insertion targets (one per subtree, omitting empty subtrees) —
  /// where the fault-tolerant ADVANCEDINSERTFILE stores its copies.
  [[nodiscard]] std::vector<Pid> insertion_targets(
      const util::StatusWord& live) const;

  /// First alive ancestor of P(k) *within its own subtree* (parent steps on
  /// the subtree VID). nullopt when every subtree ancestor is dead.
  [[nodiscard]] std::optional<Pid> first_alive_subtree_ancestor(
      Pid k, const util::StatusWord& live) const;

  /// Flat within-subtree next-alive-ancestor table: entry p holds
  /// first_alive_subtree_ancestor(P(p)) for every PID (live or dead), or
  /// AncestorTable::kNone when all subtree ancestors are dead. The b = 0
  /// view yields exactly build_ancestor_table(tree, live).next. O(2^m)
  /// build; liveness changes invalidate the table.
  [[nodiscard]] std::vector<std::uint32_t> ancestor_table(
      const util::StatusWord& live) const;

  /// Advanced-model children list of P(k) *within its own subtree*: live
  /// subtree children, with dead ones replaced by their children,
  /// recursively, sorted by descending subtree VID.
  [[nodiscard]] std::vector<Pid> children_list(
      Pid k, const util::StatusWord& live) const;

  /// True iff some live node of P(k)'s subtree has a larger subtree VID.
  [[nodiscard]] bool live_vid_above(Pid k, const util::StatusWord& live) const;

  /// REPLICATEFILE within P(k)'s subtree, mirroring the full-tree rules:
  /// shed into P(k)'s subtree children list when its load provably comes
  /// from its subtree offspring; otherwise split proportionally between
  /// P(k)'s list and the (dead) subtree root's list. See
  /// core::replicate_target for the b = 0 equivalent.
  [[nodiscard]] std::optional<Pid> replicate_target(
      Pid k, const util::StatusWord& live,
      const std::function<bool(Pid)>& holds_copy, util::Rng& rng) const;

  /// Top-down update broadcast within subtree `sub_id`: starts at the live
  /// subtree root or its stand-in holder, descends through copy-holders.
  /// Returns the nodes updated and the number of broadcast messages.
  struct SubtreeUpdate {
    std::vector<Pid> updated;
    std::int64_t messages = 0;
  };
  [[nodiscard]] SubtreeUpdate propagate_update(
      std::uint32_t sub_id, const util::StatusWord& live,
      const std::function<bool(Pid)>& holds_copy) const;

  /// GETFILE in the fault-tolerant model: route inside the requester's own
  /// subtree first (ancestor walk + stand-in fallback); on a fault, migrate
  /// to the next subtree identifier (wrapping) and retry at the
  /// corresponding node, up to all 2^b subtrees. `has_copy` is queried per
  /// visited node; migrations extend the path.
  [[nodiscard]] RouteResult route_get(Pid k, const util::StatusWord& live,
                                      const HasCopyFn& has_copy) const;

  // LivenessView seam: every subtree walk, computed from a local belief
  // instead of the ground-truth word. Inline delegations — bit-identical
  // to the StatusWord forms for the same bitmap.

  [[nodiscard]] std::optional<Pid> find_live_in_subtree(
      std::uint32_t sub_id, std::uint32_t from_sub_vid,
      const util::LivenessView& view) const {
    return find_live_in_subtree(sub_id, from_sub_vid, view.word());
  }

  [[nodiscard]] std::optional<Pid> insertion_target(
      std::uint32_t sub_id, const util::LivenessView& view) const {
    return insertion_target(sub_id, view.word());
  }

  [[nodiscard]] std::vector<Pid> insertion_targets(
      const util::LivenessView& view) const {
    return insertion_targets(view.word());
  }

  [[nodiscard]] std::optional<Pid> first_alive_subtree_ancestor(
      Pid k, const util::LivenessView& view) const {
    return first_alive_subtree_ancestor(k, view.word());
  }

  [[nodiscard]] std::vector<std::uint32_t> ancestor_table(
      const util::LivenessView& view) const {
    return ancestor_table(view.word());
  }

  [[nodiscard]] std::vector<Pid> children_list(
      Pid k, const util::LivenessView& view) const {
    return children_list(k, view.word());
  }

  [[nodiscard]] bool live_vid_above(Pid k,
                                    const util::LivenessView& view) const {
    return live_vid_above(k, view.word());
  }

  [[nodiscard]] RouteResult route_get(Pid k, const util::LivenessView& view,
                                      const HasCopyFn& has_copy) const {
    return route_get(k, view.word(), has_copy);
  }

 private:
  const LookupTree* tree_;
  int b_;
};

}  // namespace lesslog::core
