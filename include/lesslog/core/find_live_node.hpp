// FINDLIVENODE (Section 3) — locate, starting from a VID, the live node
// with the most offspring in a given lookup tree.
//
// Because the numeric VID order is consistent with the offspring order
// (Property 3), the algorithm is a downward scan of VIDs: return P(s) if it
// is alive, else the live node with the largest VID below vid(s). Insertion
// uses FINDLIVENODE(r, r), which starts at the root and therefore finds the
// live node with the largest VID in the whole tree.
#pragma once

#include <optional>

#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// The paper's FINDLIVENODE(s, r): P(s) if live, otherwise the live PID
/// with the largest VID strictly below vid(s) in the tree of P(r).
/// Returns nullopt when no live node qualifies (paper's `return false`).
[[nodiscard]] std::optional<Pid> find_live_node(const LookupTree& tree, Pid s,
                                                const util::StatusWord& live);

/// The live node with the largest VID in the whole tree of P(r) — the
/// insertion target for files whose hash falls on a dead node. Equivalent
/// to find_live_node(tree, tree.root(), live).
[[nodiscard]] std::optional<Pid> insertion_target(const LookupTree& tree,
                                                  const util::StatusWord& live);

/// True iff some live node has a strictly larger VID than P(k) in `tree`.
/// The replication and join/leave protocols branch on this predicate: when
/// it is false, P(k) is the node FINDLIVENODE(r, r) resolves to, so it may
/// be serving requests from the entire system, not just its own offspring.
[[nodiscard]] bool live_vid_above(const LookupTree& tree, Pid k,
                                  const util::StatusWord& live);

// LivenessView seam: the same decisions computed from a node's local,
// possibly stale belief instead of a caller-supplied ground-truth word.
// The scan itself guarantees only view-believed-live nodes are returned
// (the stale-view property tests pin this).

[[nodiscard]] inline std::optional<Pid> find_live_node(
    const LookupTree& tree, Pid s, const util::LivenessView& view) {
  return find_live_node(tree, s, view.word());
}

[[nodiscard]] inline std::optional<Pid> insertion_target(
    const LookupTree& tree, const util::LivenessView& view) {
  return insertion_target(tree, view.word());
}

[[nodiscard]] inline bool live_vid_above(const LookupTree& tree, Pid k,
                                         const util::LivenessView& view) {
  return live_vid_above(tree, k, view.word());
}

}  // namespace lesslog::core
