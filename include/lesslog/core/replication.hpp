// REPLICATEFILE — logless replica placement (Sections 2 & 3).
//
// When P(k) is overloaded by requests for a file f with target P(r),
// LessLog picks the replication target with bit operations only:
//
//   * C^r_k(f): the first node in the children list of P(k) (tree of P(r))
//     that does not yet hold a copy of f. Replicating to the head of the
//     list — the child with the most offspring — halves P(k)'s load when
//     requests are evenly distributed.
//   * Advanced model: if k != r and no live node has a VID above P(k)'s,
//     then P(k) is the FINDLIVENODE(r, r) stand-in for a dead root and its
//     load may come from anywhere in the system, not just its offspring.
//     Lacking access logs, LessLog makes a *proportional* random choice
//     between the children list of P(k) and the children list of P(r),
//     weighted by the ratio of P(k)'s offspring to the rest of the nodes.
#pragma once

#include <functional>
#include <optional>

#include "lesslog/core/children_list.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/rng.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// Predicate: does this node already hold a copy of the file?
using HoldsCopyFn = std::function<bool(Pid)>;

/// Which children list a placement decision drew from (diagnostics/tests).
enum class PlacementSource : std::uint8_t {
  kOwnChildren,   ///< children list of the overloaded node P(k)
  kRootChildren,  ///< children list of the (dead) target P(r)
};

struct Placement {
  Pid target;
  PlacementSource source;
};

/// C^r_k(f): first live node in the advanced-model children list of P(k)
/// that does not hold a copy. nullopt when the list is exhausted.
[[nodiscard]] std::optional<Pid> first_child_without_copy(
    const LookupTree& tree, Pid k, const util::StatusWord& live,
    const HoldsCopyFn& holds_copy);

/// Full advanced-model REPLICATEFILE placement for overloaded node P(k).
///
/// * k == root, or a live VID above k exists: place via C^r_k(f).
/// * otherwise: proportional choice between P(k)'s and P(r)'s children
///   lists, weighted by live offspring of P(k) vs the remaining live nodes;
///   if the chosen list is exhausted the other list is tried.
///
/// `rng` is only consulted for the proportional case. Returns nullopt when
/// every candidate in both lists already holds a copy (the system cannot
/// shed further load by replication).
[[nodiscard]] std::optional<Placement> replicate_target(
    const LookupTree& tree, Pid k, const util::StatusWord& live,
    const HoldsCopyFn& holds_copy, util::Rng& rng);

/// Number of *live* strict descendants of P(k) in `tree`. Used for the
/// proportional weighting. O(subtree size) scan of the VID range.
[[nodiscard]] std::uint32_t live_offspring_count(const LookupTree& tree, Pid k,
                                                 const util::StatusWord& live);

}  // namespace lesslog::core
