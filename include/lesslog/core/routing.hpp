// Request routing (the GETFILE walk).
//
// A request received at P(k) for a file with target P(r) climbs the lookup
// tree of P(r) toward the root, stopping at the first node that stores a
// copy. In the advanced model the parent function FP^r_k returns the first
// *alive* ancestor, and when the walk fails with a dead root the request is
// redirected to FINDLIVENODE(r, r) — the live node with the most offspring,
// which is where ADVANCEDINSERTFILE placed the original copy.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// Predicate: does this node currently store a copy of the file being
/// routed? Callers bind their storage layer here.
using HasCopyFn = std::function<bool(Pid)>;

/// FP^r_k — the first alive ancestor of P(k) in `tree` (skipping dead
/// ancestors), or nullopt when every remaining ancestor up to and including
/// the root is dead. Precondition: k is in the ID space.
[[nodiscard]] std::optional<Pid> first_alive_ancestor(
    const LookupTree& tree, Pid k, const util::StatusWord& live);

/// The chain of nodes a request visits starting at P(k): k itself, then
/// successive first-alive-ancestors, ending at the root if the root is
/// live, or at the highest live node on the path otherwise.
[[nodiscard]] std::vector<Pid> ancestor_chain(const LookupTree& tree, Pid k,
                                              const util::StatusWord& live);

/// Outcome of a full GETFILE route.
struct RouteResult {
  /// Nodes visited, in order, starting at the requester. When the walk
  /// fails at a dead root, the final element is the FINDLIVENODE(r, r)
  /// fallback target.
  std::vector<Pid> path;
  /// Node that served the request, if any copy was found.
  std::optional<Pid> served_by;
  /// True when the FINDLIVENODE fallback jump was taken.
  bool used_fallback = false;

  /// Messages forwarded = path length minus the requester itself.
  [[nodiscard]] int hops() const noexcept {
    return static_cast<int>(path.size()) - 1;
  }
};

/// Full GETFILE in the advanced model: walk the ancestor chain from P(k),
/// serving at the first node with a copy; if the chain ends without a copy
/// and the root is dead, jump to FINDLIVENODE(r, r). `has_copy` is queried
/// once per visited node. Requests fault (served_by == nullopt) only when
/// no reachable node stores the file.
[[nodiscard]] RouteResult route_get(const LookupTree& tree, Pid k,
                                    const util::StatusWord& live,
                                    const HasCopyFn& has_copy);

/// Flat next-alive-ancestor table — the allocation-free routing fast path.
///
/// For every PID p (live or dead), `next[p]` holds FP^r_p, the first alive
/// ancestor of P(p) in the tree, or kNone when every ancestor up to and
/// including the root is dead. Built once per (tree, liveness) pair in
/// O(2^m); a GETFILE walk over the table is then a pointer-free integer
/// chase with no per-hop dead-node scans, no heap allocation, and no
/// std::function indirection. Liveness changes invalidate the table.
struct AncestorTable {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  std::vector<std::uint32_t> next;  ///< pid -> first alive ancestor pid
  Pid root{0};
  bool root_live = false;
  /// FINDLIVENODE(r, r) — where the walk redirects when the root is dead;
  /// kNone when no live node exists at all.
  std::uint32_t fallback_holder = kNone;
};

/// Builds the flat table for `tree` under `live`.
[[nodiscard]] AncestorTable build_ancestor_table(const LookupTree& tree,
                                                 const util::StatusWord& live);

// LivenessView seam: routing under a node's local belief. A walk over a
// stale view can visit nodes that are actually dead (the simulator's wire
// layer then drops the hop); it never visits a node the view believes dead.

[[nodiscard]] inline std::optional<Pid> first_alive_ancestor(
    const LookupTree& tree, Pid k, const util::LivenessView& view) {
  return first_alive_ancestor(tree, k, view.word());
}

[[nodiscard]] inline std::vector<Pid> ancestor_chain(
    const LookupTree& tree, Pid k, const util::LivenessView& view) {
  return ancestor_chain(tree, k, view.word());
}

[[nodiscard]] inline RouteResult route_get(const LookupTree& tree, Pid k,
                                           const util::LivenessView& view,
                                           const HasCopyFn& has_copy) {
  return route_get(tree, k, view.word(), has_copy);
}

[[nodiscard]] inline AncestorTable build_ancestor_table(
    const LookupTree& tree, const util::LivenessView& view) {
  return build_ancestor_table(tree, view.word());
}

/// GETFILE over the flat table; semantically identical to
/// route_get(tree, k, live, has_copy) for the pair the table was built
/// from (a test asserts the equivalence), but with a templated copy
/// predicate and zero allocations. `forward` is invoked once for every
/// node that passes the request on — exactly the nodes RouteResult counts
/// before the server, or the whole path on a fault. Returns the serving
/// node, or nullopt on a fault; on a served route the number of `forward`
/// calls equals RouteResult::hops().
template <typename HasCopyT, typename ForwardT>
[[nodiscard]] std::optional<Pid> route_get(const AncestorTable& table, Pid k,
                                           const HasCopyT& has_copy,
                                           ForwardT&& forward) {
  std::uint32_t cur = k.value();
  while (true) {
    if (has_copy(Pid{cur})) return Pid{cur};
    forward(Pid{cur});
    const std::uint32_t up = table.next[cur];
    if (up == AncestorTable::kNone) break;
    cur = up;
  }
  if (!table.root_live && table.fallback_holder != AncestorTable::kNone &&
      table.fallback_holder != cur) {
    const Pid holder{table.fallback_holder};
    if (has_copy(holder)) return holder;
    forward(holder);
  }
  return std::nullopt;
}

}  // namespace lesslog::core
