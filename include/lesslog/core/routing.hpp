// Request routing (the GETFILE walk).
//
// A request received at P(k) for a file with target P(r) climbs the lookup
// tree of P(r) toward the root, stopping at the first node that stores a
// copy. In the advanced model the parent function FP^r_k returns the first
// *alive* ancestor, and when the walk fails with a dead root the request is
// redirected to FINDLIVENODE(r, r) — the live node with the most offspring,
// which is where ADVANCEDINSERTFILE placed the original copy.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// Predicate: does this node currently store a copy of the file being
/// routed? Callers bind their storage layer here.
using HasCopyFn = std::function<bool(Pid)>;

/// FP^r_k — the first alive ancestor of P(k) in `tree` (skipping dead
/// ancestors), or nullopt when every remaining ancestor up to and including
/// the root is dead. Precondition: k is in the ID space.
[[nodiscard]] std::optional<Pid> first_alive_ancestor(
    const LookupTree& tree, Pid k, const util::StatusWord& live);

/// The chain of nodes a request visits starting at P(k): k itself, then
/// successive first-alive-ancestors, ending at the root if the root is
/// live, or at the highest live node on the path otherwise.
[[nodiscard]] std::vector<Pid> ancestor_chain(const LookupTree& tree, Pid k,
                                              const util::StatusWord& live);

/// Outcome of a full GETFILE route.
struct RouteResult {
  /// Nodes visited, in order, starting at the requester. When the walk
  /// fails at a dead root, the final element is the FINDLIVENODE(r, r)
  /// fallback target.
  std::vector<Pid> path;
  /// Node that served the request, if any copy was found.
  std::optional<Pid> served_by;
  /// True when the FINDLIVENODE fallback jump was taken.
  bool used_fallback = false;

  /// Messages forwarded = path length minus the requester itself.
  [[nodiscard]] int hops() const noexcept {
    return static_cast<int>(path.size()) - 1;
  }
};

/// Full GETFILE in the advanced model: walk the ancestor chain from P(k),
/// serving at the first node with a copy; if the chain ends without a copy
/// and the root is dead, jump to FINDLIVENODE(r, r). `has_copy` is queried
/// once per visited node. Requests fault (served_by == nullopt) only when
/// no reachable node stores the file.
[[nodiscard]] RouteResult route_get(const LookupTree& tree, Pid k,
                                    const util::StatusWord& live,
                                    const HasCopyFn& has_copy);

}  // namespace lesslog::core
