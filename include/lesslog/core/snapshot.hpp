// Binary snapshots of a whole System: configuration, liveness, every
// file's metadata, and every node's store including payload bytes.
//
// Lets long experiments checkpoint/restore and lets tooling inspect a
// system state offline. The format is little-endian, versioned, and
// self-describing enough to fail loudly (std::runtime_error) on
// truncation, magic mismatch, or unknown versions.
#pragma once

#include <iosfwd>

#include "lesslog/core/system.hpp"

namespace lesslog::core {

/// Current snapshot format version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Writes the complete state of `sys` to `out`. Throws std::runtime_error
/// on stream failure.
void save_snapshot(const System& sys, std::ostream& out);

/// Reconstructs a System from a snapshot produced by save_snapshot.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] System load_snapshot(std::istream& in);

}  // namespace lesslog::core
