// The physical lookup tree of a target node P(r).
//
// Obtained from the single virtual tree by XOR-ing every VID with the
// complement of r (Property 4); because XOR with a constant is a bijection,
// the one virtual tree yields all 2^m physical trees. This class is a thin
// value type combining the VirtualTree structure with an IdMapper, exposing
// every structural query directly in PID terms.
#pragma once

#include <vector>

#include "lesslog/core/ids.hpp"
#include "lesslog/core/virtual_tree.hpp"

namespace lesslog::core {

class LookupTree {
 public:
  /// The lookup tree rooted at P(root) in an m-bit space.
  LookupTree(int m, Pid root) noexcept
      : tree_(m), mapper_(m, root) {}

  [[nodiscard]] int width() const noexcept { return tree_.width(); }
  [[nodiscard]] Pid root() const noexcept { return mapper_.root(); }
  [[nodiscard]] const VirtualTree& virtual_tree() const noexcept {
    return tree_;
  }
  [[nodiscard]] const IdMapper& mapper() const noexcept { return mapper_; }

  [[nodiscard]] Vid vid_of(Pid pid) const noexcept {
    return mapper_.vid_of(pid);
  }
  [[nodiscard]] Pid pid_of(Vid vid) const noexcept {
    return mapper_.pid_of(vid);
  }

  [[nodiscard]] bool is_root(Pid p) const noexcept { return p == root(); }

  /// Parent of P(p) in this tree. Precondition: p is not the root.
  [[nodiscard]] Pid parent(Pid p) const noexcept {
    return pid_of(tree_.parent(vid_of(p)));
  }

  /// Children of P(p), in children-list order (descending VID, i.e. most
  /// offspring first). For the paper's Figure 2 example, children(P(4)) in
  /// the tree of P(4) is (P(5), P(6), P(0), P(12)).
  [[nodiscard]] std::vector<Pid> children(Pid p) const;

  [[nodiscard]] int child_count(Pid p) const noexcept {
    return tree_.child_count(vid_of(p));
  }

  [[nodiscard]] std::uint32_t offspring_count(Pid p) const noexcept {
    return tree_.offspring_count(vid_of(p));
  }

  [[nodiscard]] std::uint32_t subtree_size(Pid p) const noexcept {
    return tree_.subtree_size(vid_of(p));
  }

  [[nodiscard]] int depth(Pid p) const noexcept {
    return tree_.depth(vid_of(p));
  }

  [[nodiscard]] bool in_subtree(Pid descendant, Pid ancestor) const noexcept {
    return tree_.in_subtree(vid_of(descendant), vid_of(ancestor));
  }

  /// PIDs on the path from P(p) to the root, inclusive on both ends.
  [[nodiscard]] std::vector<Pid> path_to_root(Pid p) const;

 private:
  VirtualTree tree_;
  IdMapper mapper_;
};

}  // namespace lesslog::core
