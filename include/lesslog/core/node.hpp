// A LessLog peer: a PID, its local file store, and lightweight service
// counters. Nodes are passive data holders — protocol logic lives in the
// free functions (routing, replication, update, membership) and in System,
// mirroring how the paper separates tree arithmetic from storage.
#pragma once

#include <cstdint>

#include "lesslog/core/file_store.hpp"
#include "lesslog/core/ids.hpp"

namespace lesslog::core {

class Node {
 public:
  explicit Node(Pid pid) noexcept : pid_(pid) {}

  [[nodiscard]] Pid pid() const noexcept { return pid_; }

  [[nodiscard]] FileStore& store() noexcept { return store_; }
  [[nodiscard]] const FileStore& store() const noexcept { return store_; }

  /// Served one request locally (a copy was found here).
  void count_served() noexcept { ++served_; }
  /// Forwarded one request toward an ancestor.
  void count_forwarded() noexcept { ++forwarded_; }

  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }

  void reset_counters() noexcept {
    served_ = 0;
    forwarded_ = 0;
    store_.reset_access_counts();
  }

 private:
  Pid pid_;
  FileStore store_;
  std::uint64_t served_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace lesslog::core
