// The virtual lookup tree (the paper's "template tree").
//
// One binomial tree over the full 2^m VID space, shared by every physical
// lookup tree in the system. Structure (normalized to MSB-first arithmetic;
// see DESIGN.md §1-2):
//
//   * root VID = 2^m - 1 (m continuous 1-bits),
//   * Property 1: a node with i leading 1-bits has exactly i children, each
//     obtained by clearing one of those leading 1-bits,
//   * Property 2: the parent VID sets the highest 0-bit,
//   * Property 3: subtree size = 2^(leading ones), monotone non-decreasing
//     in the numeric VID.
//
// The class is stateless apart from the width m; every query is O(1) or
// O(m) bit arithmetic, which is the entire point of the paper — replica
// placement without logs, from bit operations alone.
#pragma once

#include <vector>

#include "lesslog/core/ids.hpp"

namespace lesslog::core {

class VirtualTree {
 public:
  /// Tree over an m-bit VID space (2^m virtual nodes), 1 <= m <= 30.
  explicit VirtualTree(int m);

  [[nodiscard]] int width() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return util::space_size(m_);
  }

  /// Root VID: all ones.
  [[nodiscard]] Vid root() const noexcept { return Vid{util::mask_of(m_)}; }

  [[nodiscard]] bool is_root(Vid v) const noexcept { return v == root(); }

  /// True iff v is within the VID space.
  [[nodiscard]] bool contains(Vid v) const noexcept {
    return util::fits(v.value(), m_);
  }

  /// Number of children of v = length of its leading 1-run (Property 1).
  [[nodiscard]] int child_count(Vid v) const noexcept {
    return util::leading_ones(v.value(), m_);
  }

  [[nodiscard]] bool is_leaf(Vid v) const noexcept {
    return child_count(v) == 0;
  }

  /// Parent VID: set the highest 0-bit (Property 2). Precondition: !is_root.
  [[nodiscard]] Vid parent(Vid v) const noexcept {
    return Vid{util::set_highest_zero(v.value(), m_)};
  }

  /// Children of v, ordered by *descending* VID — which by Property 3 is
  /// also descending offspring count, the order the children list uses.
  /// Child j clears the j-th leading 1-bit counted from the low end of the
  /// run (so clearing the lowest leading one yields the largest child).
  [[nodiscard]] std::vector<Vid> children(Vid v) const;

  /// The k-th child in the descending-VID order above, 0 <= k < child_count.
  [[nodiscard]] Vid child(Vid v, int k) const noexcept;

  /// Subtree size rooted at v, *including* v: 2^(leading ones).
  [[nodiscard]] std::uint32_t subtree_size(Vid v) const noexcept {
    return std::uint32_t{1} << child_count(v);
  }

  /// Offspring (strict descendants) of v: subtree_size - 1. The paper's
  /// examples: offspring(1110) = 7, offspring(1100) = 3 for m = 4.
  [[nodiscard]] std::uint32_t offspring_count(Vid v) const noexcept {
    return subtree_size(v) - 1u;
  }

  /// Depth of v below the root = number of 0-bits in v. The root has depth
  /// 0; lookup paths are at most m hops (the O(log N) bound).
  [[nodiscard]] int depth(Vid v) const noexcept {
    return m_ - util::popcount(v.value());
  }

  /// True iff `descendant` lies in the subtree rooted at `ancestor`
  /// (inclusive). A VID d is under a iff d agrees with a on every bit
  /// outside a's leading 1-run — equivalently, d can be formed by clearing
  /// a subset of a's leading ones.
  [[nodiscard]] bool in_subtree(Vid descendant, Vid ancestor) const noexcept;

  /// Path from v up to (and including) the root: v, parent(v), ..., root.
  [[nodiscard]] std::vector<Vid> path_to_root(Vid v) const;

  /// Every VID in the subtree rooted at v, in descending VID order
  /// (therefore root-first). Size = subtree_size(v). O(2^leading_ones).
  [[nodiscard]] std::vector<Vid> subtree_vids(Vid v) const;

 private:
  int m_;
};

}  // namespace lesslog::core
