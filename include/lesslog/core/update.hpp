// Top-down update propagation (Sections 2 & 3).
//
// An update on f is forwarded to the target P(r) (or, with a dead root, to
// the live stand-in that holds the original copy). The holder applies the
// update and broadcasts it down its children list; each recipient that
// holds a replica applies the update and re-broadcasts to *its* children
// list, while nodes without a copy discard the message. Dead nodes are
// bypassed because the advanced children list already splices their
// children in.
//
// The functions here compute the propagation given a copy predicate, report
// every node updated, and count the broadcast messages — the metric the
// maintenance-cost ablation reports.
#pragma once

#include <functional>
#include <vector>

#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

struct UpdateResult {
  /// Nodes that applied the update, in broadcast order (origin first).
  std::vector<Pid> updated;
  /// Broadcast messages sent (one per children-list entry contacted).
  std::int64_t messages = 0;
  /// Origin of the broadcast: the live root, or the FINDLIVENODE(r, r)
  /// stand-in. Invalid (updated empty) when no live node holds the file.
  Pid origin{};
};

/// Propagates an update through the tree of P(r). `holds_copy` is the
/// pre-update copy predicate. The returned list contains every live node
/// that holds a copy reachable through the holder-connected broadcast.
[[nodiscard]] UpdateResult propagate_update(
    const LookupTree& tree, const util::StatusWord& live,
    const std::function<bool(Pid)>& holds_copy);

}  // namespace lesslog::core
