// LessLogSystem — the top-level public API.
//
// Owns the node set, the liveness status word, and per-file metadata, and
// exposes the paper's protocol suite end to end:
//
//   * insert / get / update / replicate (Sections 2-3),
//   * 2^b-degree fault tolerance (Section 4),
//   * join / leave / fail self-organization (Section 5),
//   * the counter-based cold-replica removal mechanism (Section 6).
//
// Everything is deterministic given the construction seed. The class is a
// single-threaded facade over the pure algorithm functions; benches that
// want raw speed use those functions and the sim layer directly.
//
// Typical use (see examples/quickstart.cpp):
//
//   lesslog::core::System sys({.m = 4, .b = 0});
//   sys.bootstrap(16);
//   const auto f = sys.insert("movies/clip.mpg");
//   auto got = sys.get(f, lesslog::core::Pid{8});
//   sys.replicate(f, got.route.served_by.value());
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/core/node.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/core/routing.hpp"
#include "lesslog/util/rng.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

class System {
 public:
  struct Config {
    /// ID-space width: 2^m PID slots. The paper's experiments use m = 10.
    int m = 10;
    /// Fault-tolerance bits: each file is stored at 2^b targets (Section
    /// 4). 0 disables the subtree machinery.
    int b = 0;
    /// Seed for the proportional replication choice and join PID picking.
    std::uint64_t seed = 0x1e55106ULL;
    /// Bytes of synthetic content per file (0 = metadata-only). Content is
    /// the canonical payload of (file, version) — see core/payload.hpp —
    /// so every copy's bytes can be integrity-checked at any time.
    std::size_t payload_size = 0;
  };

  explicit System(Config cfg);

  // ---- Introspection -----------------------------------------------------

  [[nodiscard]] int width() const noexcept { return cfg_.m; }
  [[nodiscard]] int fault_bits() const noexcept { return cfg_.b; }
  [[nodiscard]] const util::StatusWord& status() const noexcept {
    return live_;
  }
  [[nodiscard]] bool is_live(Pid p) const noexcept {
    return live_.is_live(p.value());
  }
  [[nodiscard]] std::uint32_t live_count() const noexcept {
    return live_.live_count();
  }
  [[nodiscard]] const Node& node(Pid p) const {
    return nodes_[p.value()];
  }
  /// The lookup tree a file's requests route through.
  [[nodiscard]] LookupTree tree_of(FileId f) const;
  [[nodiscard]] Pid target_of(FileId f) const;
  /// Every live node currently holding a copy of f (inserted + replicas).
  [[nodiscard]] std::vector<Pid> holders(FileId f) const;
  /// Total replicas (non-inserted copies) of f.
  [[nodiscard]] std::size_t replica_count(FileId f) const;
  [[nodiscard]] std::uint64_t version_of(FileId f) const;
  [[nodiscard]] bool file_known(FileId f) const {
    return files_.contains(f);
  }
  /// Files whose every copy has been lost to failures (b = 0 only).
  [[nodiscard]] std::vector<FileId> lost_files() const;
  /// Every file ever inserted (sorted by id).
  [[nodiscard]] std::vector<FileId> files() const;
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // ---- Membership --------------------------------------------------------

  /// Brings PIDs [0, count) live at once without any file motion — the
  /// initial deployment. Must be called before inserting files.
  void bootstrap(std::uint32_t count);

  /// Section 5.1. A node acquires the given PID (or the lowest dead PID)
  /// and joins: registers via broadcast, then reclaims every inserted file
  /// whose authoritative holder it has become. Returns the PID joined.
  Pid join(std::optional<Pid> requested = std::nullopt);

  /// Section 5.2, voluntary departure: replicas are discarded, inserted
  /// files are re-inserted with this node marked dead.
  void leave(Pid p);

  /// Section 5.3, crash: all copies at p vanish. With b > 0 the inserted
  /// files are recovered from sibling subtrees; with b = 0 a file whose
  /// only copy was here becomes lost (requests fault).
  void fail(Pid p);

  // ---- File operations ---------------------------------------------------

  /// INSERTFILE / ADVANCEDINSERTFILE: target r = ψ(name); stores one copy
  /// per subtree (2^b copies; 1 when b = 0).
  FileId insert(std::string_view name);

  /// Insert with a synthetic integer key (ψ over the key bits).
  FileId insert_key(std::uint64_t key);

  /// Insert a file that must land on an explicit target r — used by tests
  /// and by experiments that place the hot file deterministically.
  FileId insert_at(Pid r);

  struct GetOutcome {
    RouteResult route;
    /// True when the request found a copy.
    [[nodiscard]] bool ok() const noexcept {
      return route.served_by.has_value();
    }
  };

  /// GETFILE issued at live node `at`.
  GetOutcome get(FileId f, Pid at);

  struct UpdateOutcome {
    std::uint64_t new_version = 0;
    /// Copies brought to the new version.
    std::int64_t copies_updated = 0;
    /// Broadcast messages spent.
    std::int64_t messages = 0;
  };

  /// UPDATEFILE: bumps the version and propagates top-down through every
  /// subtree's holder chain.
  UpdateOutcome update(FileId f);

  /// REPLICATEFILE on behalf of overloaded node `overloaded`: picks the
  /// placement with bit operations only and stores the replica. Returns
  /// the replica's location, or nullopt when no placement is possible.
  std::optional<Pid> replicate(FileId f, Pid overloaded);

  /// Counter-based removal: drops every replica of f served fewer than
  /// `threshold` requests since the counters were last reset. Returns how
  /// many replicas were dropped.
  std::size_t prune_cold_replicas(FileId f, std::uint64_t threshold);

  /// Clears service counters on all nodes (measurement-window boundary).
  void reset_counters();

  // ---- Data integrity ------------------------------------------------------

  struct IntegrityReport {
    /// Copies whose stored bytes do not match the canonical payload of
    /// their *stored* version (bit rot / injected corruption).
    std::vector<std::pair<FileId, Pid>> corrupt;
    /// Copies whose stored version lags the file's current version (a
    /// missed update — must be empty while every copy stays broadcast-
    /// reachable).
    std::vector<std::pair<FileId, Pid>> stale;

    [[nodiscard]] bool clean() const noexcept {
      return corrupt.empty() && stale.empty();
    }
  };

  /// Full sweep over every copy of every file. With payload_size == 0 only
  /// version staleness is checked.
  [[nodiscard]] IntegrityReport verify_integrity() const;

  /// Test fault injection: flips one byte of the copy of f stored at p.
  /// Returns false when no copy (or no payload) is there.
  bool corrupt_copy(FileId f, Pid p);

  // ---- Bookkeeping for experiments ----------------------------------------

  /// Lookup/forward messages spent by all get() calls so far.
  [[nodiscard]] std::int64_t lookup_messages() const noexcept {
    return lookup_messages_;
  }
  /// Messages spent by membership changes (status broadcasts + file moves).
  [[nodiscard]] std::int64_t maintenance_messages() const noexcept {
    return maintenance_messages_;
  }
  /// get() calls that faulted (no copy reachable).
  [[nodiscard]] std::int64_t faults() const noexcept { return faults_; }

 private:
  struct FileMeta {
    Pid target;                        // r = ψ(·)
    std::uint64_t version = 0;
    std::unordered_set<Pid> holders;   // every node with any copy
    bool lost = false;                 // b = 0: original gone, no replicas
  };

  [[nodiscard]] SubtreeView view_of(const LookupTree& tree) const {
    return SubtreeView(tree, cfg_.b);
  }
  [[nodiscard]] FileMeta& meta(FileId f);
  [[nodiscard]] const FileMeta& meta(FileId f) const;
  FileId insert_with_target(FileId f, Pid r);
  void place_inserted(FileId f, FileMeta& fm, Pid at);
  void drop_copy(FileId f, FileMeta& fm, Pid at);
  /// Re-homes every inserted file after the status word changed from
  /// `before` to the current state. `crashed` marks an involuntary
  /// departure (copies at the dead node are already gone and cannot be
  /// pushed; recovery pulls from sibling subtrees instead).
  void rehome_files(const util::StatusWord& before,
                    std::optional<Pid> departed, bool crashed);

  /// Drops replicas that a membership change disconnected from the
  /// top-down update broadcast (e.g. a joining node interposing between a
  /// replica and its previous broadcast parent). Keeps the update-coherence
  /// invariant: every surviving copy receives every update. Part of the
  /// paper's "automatic recovering mechanism to maintain LessLog
  /// integrity"; disconnected replicas simply regrow on the next overload.
  void repair_replica_connectivity();

  friend void save_snapshot(const System& sys, std::ostream& out);
  friend System load_snapshot(std::istream& in);

  Config cfg_;
  util::Rng rng_;
  util::StatusWord live_;
  std::vector<Node> nodes_;
  std::unordered_map<FileId, FileMeta> files_;
  std::uint64_t next_file_key_ = 1;
  std::int64_t lookup_messages_ = 0;
  std::int64_t maintenance_messages_ = 0;
  std::int64_t faults_ = 0;
};

}  // namespace lesslog::core
