// File payloads: deterministic synthetic content plus integrity checking.
//
// The paper treats files as opaque; a working system moves actual bytes.
// Payload content is a pure function of (file id, version) — every party
// can regenerate and verify the canonical bytes, which turns integrity
// checking after replication/update/recovery into an exact comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/core/file_store.hpp"
#include "lesslog/util/crc32.hpp"

namespace lesslog::core {

using Payload = std::vector<std::uint8_t>;

/// Canonical content of (file, version) with the given size. Bytes come
/// from a SplitMix64 keystream seeded by the pair, so distinct files and
/// versions differ in essentially every byte.
[[nodiscard]] Payload make_payload(FileId f, std::uint64_t version,
                                   std::size_t size);

/// CRC-32 of a payload.
[[nodiscard]] std::uint32_t payload_checksum(const Payload& payload) noexcept;

/// Verifies that `payload` is exactly the canonical content of
/// (file, version) — size, bytes, and checksum.
[[nodiscard]] bool verify_payload(FileId f, std::uint64_t version,
                                  const Payload& payload);

}  // namespace lesslog::core
