// Per-node file storage.
//
// A node stores two categories of copies (the distinction drives the
// leave/fail protocols of Section 5):
//   * inserted files — original copies placed by (ADVANCED)INSERTFILE; the
//     node is the authoritative holder and must re-home them on departure;
//   * replicated files — copies pushed by REPLICATEFILE to absorb load;
//     they are discarded on departure and may be pruned by the
//     counter-based removal mechanism.
//
// Each copy carries a version (for update propagation) and replicas carry
// an access counter (for counter-based removal).
//
// Storage layout: copies live in a contiguous slab (std::vector) with a
// LIFO freelist of vacated slots, found through a flat open-addressing
// index mapping key -> slab slot. An insert is a slot reuse or push_back —
// no per-copy heap node — and a lookup is a multiply plus a short linear
// probe landing in contiguous memory. Enumeration (inserted_files(),
// replica_files(), pruning, counter resets) walks the slab in slot order,
// which is deterministic for a given operation history: insertion order,
// with erased slots reused most-recently-freed-first.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "lesslog/util/hashing.hpp"

namespace lesslog::core {

/// Opaque file identifier. Producers derive it from the file's unique name
/// (see FileId::from_name) or from a synthetic index.
class FileId {
 public:
  constexpr FileId() = default;
  constexpr explicit FileId(std::uint64_t key) noexcept : key_(key) {}

  [[nodiscard]] constexpr std::uint64_t key() const noexcept { return key_; }

  friend constexpr auto operator<=>(FileId, FileId) = default;

 private:
  std::uint64_t key_ = 0;
};

enum class CopyKind : std::uint8_t { kInserted, kReplica };

struct CopyInfo {
  CopyKind kind = CopyKind::kInserted;
  std::uint64_t version = 0;
  /// Requests served by this copy since the counter was last reset; only
  /// meaningful for replicas (the counter-based removal input).
  std::uint64_t access_count = 0;
  /// The stored bytes (may be empty when the deployment runs metadata-only
  /// experiments). See core/payload.hpp for content generation/integrity.
  std::vector<std::uint8_t> data;
};

class FileStore {
 public:
  FileStore() = default;
  // The slab holds values and the index holds slot numbers, so the
  // compiler-generated copy/move are correct as-is.
  FileStore(const FileStore&) = default;
  FileStore& operator=(const FileStore&) = default;
  FileStore(FileStore&&) noexcept = default;
  FileStore& operator=(FileStore&&) noexcept = default;
  ~FileStore() = default;

  [[nodiscard]] bool has(FileId f) const noexcept {
    return slot_of(f.key()) != kNoSlot;
  }

  [[nodiscard]] std::optional<CopyInfo> info(FileId f) const;

  /// Serves one get from the local copy: counts the access and returns the
  /// stored version, or nullopt when no copy is present. Equivalent to
  /// has() + record_access() + info()->version in a single lookup — the
  /// request hot path calls this once per served get.
  [[nodiscard]] std::optional<std::uint64_t> serve(FileId f);

  /// Stores an original copy. Overwrites any existing replica entry (a node
  /// can be promoted from replica-holder to authoritative holder when
  /// membership changes).
  void put_inserted(FileId f, std::uint64_t version = 0,
                    std::vector<std::uint8_t> data = {});

  /// Stores a replica. No-op if an inserted copy is already present.
  void put_replica(FileId f, std::uint64_t version = 0,
                   std::vector<std::uint8_t> data = {});

  /// Borrow the stored bytes of f; nullptr when no copy is present. The
  /// pointer is invalidated by the next mutating call (the slab may move).
  [[nodiscard]] const std::vector<std::uint8_t>* payload(FileId f) const;

  /// Overwrites the stored bytes of f in place (test fault injection and
  /// payload-carrying updates). Returns false when no copy is present.
  bool set_payload(FileId f, std::vector<std::uint8_t> data);

  /// Removes any copy of f. Returns true if one existed.
  bool erase(FileId f);

  /// Applies an update: bump the stored version to `version` (and replace
  /// the bytes, when provided) if a copy is present. Returns true if a
  /// copy was present.
  bool apply_update(FileId f, std::uint64_t version,
                    std::vector<std::uint8_t> data = {});

  /// Counts one served request against f's copy (counter-based removal).
  void record_access(FileId f);

  /// Restores an access counter (snapshot load). Returns false when no
  /// copy is present.
  bool set_access_count(FileId f, std::uint64_t count);

  /// Resets all access counters (start of a measurement window).
  void reset_access_counts() noexcept;

  /// Removes replicas whose access counter is strictly below `threshold`;
  /// inserted copies are never removed. Returns the ids pruned.
  std::vector<FileId> prune_cold_replicas(std::uint64_t threshold);

  [[nodiscard]] std::vector<FileId> inserted_files() const;
  [[nodiscard]] std::vector<FileId> replica_files() const;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Largest displacement of any occupied index slot from its home slot —
  /// the probe-clustering diagnostic. A well-mixed probe hash keeps this
  /// small at the 50% load ceiling; an unmixed hash over strided keys (the
  /// client's PID-striped request ids) collapses every key onto a handful
  /// of home slots and this grows linearly. Exposed for the clustering
  /// regression test and the micro benches.
  [[nodiscard]] std::size_t worst_probe_length() const noexcept;

 private:
  /// Sentinel for "index slot empty" / "no slab slot".
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFFu;

  /// One slab cell: the stored copy plus its key. `occupied` is false for
  /// freelist cells awaiting reuse.
  struct Entry {
    FileId id;
    bool occupied = false;
    CopyInfo info;
  };

  /// One slot of the lookup index; empty when `slot` is kNoSlot.
  struct IndexSlot {
    std::uint64_t key = 0;
    std::uint32_t slot = kNoSlot;
  };

  /// Open-addressing probe hash: SplitMix64 avalanche of the key, masked
  /// to the power-of-two capacity. The mix matters: FileIds are minted as
  /// PID-striped sequential integers, and masking them unmixed would drop
  /// every key of one client onto the same home slot.
  [[nodiscard]] std::size_t home_slot(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(util::splitmix64_mix(key)) &
           (index_.size() - 1);
  }

  /// Slab slot holding f, or kNoSlot — the hot-path lookup: a multiply and
  /// a short linear probe over a flat array into a contiguous slab.
  [[nodiscard]] std::uint32_t slot_of(std::uint64_t key) const noexcept {
    if (index_.empty()) return kNoSlot;
    std::size_t i = home_slot(key);
    while (index_[i].slot != kNoSlot) {
      if (index_[i].key == key) return index_[i].slot;
      i = (i + 1) & (index_.size() - 1);
    }
    return kNoSlot;
  }

  [[nodiscard]] CopyInfo* lookup(FileId f) const noexcept {
    const std::uint32_t s = slot_of(f.key());
    if (s == kNoSlot) return nullptr;
    return const_cast<CopyInfo*>(&slab_[s].info);
  }

  /// Reserve a slab cell: most-recently-freed slot, else a fresh push_back.
  [[nodiscard]] std::uint32_t acquire_cell();

  void index_put(std::uint64_t key, std::uint32_t slot);
  void index_erase(std::uint64_t key) noexcept;
  void rebuild_index();
  void release_cell(std::uint32_t s) noexcept;

  /// Flat linear-probe index: key -> slab slot. Never iterated for
  /// enumeration; backward-shift deletion keeps probe chains tight.
  /// Declared first: the hot-path lookup (most often a miss against an
  /// empty or tiny store while a get forwards through) reads only this
  /// header, so it sits in the owning Peer's first cache lines.
  std::vector<IndexSlot> index_;
  /// The copy arena. Iterated in slot order by every enumeration.
  std::vector<Entry> slab_;
  /// Vacated slab slots, reused LIFO.
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
};

}  // namespace lesslog::core

template <>
struct std::hash<lesslog::core::FileId> {
  std::size_t operator()(lesslog::core::FileId f) const noexcept {
    return std::hash<std::uint64_t>{}(f.key());
  }
};
