// Per-node file storage.
//
// A node stores two categories of copies (the distinction drives the
// leave/fail protocols of Section 5):
//   * inserted files — original copies placed by (ADVANCED)INSERTFILE; the
//     node is the authoritative holder and must re-home them on departure;
//   * replicated files — copies pushed by REPLICATEFILE to absorb load;
//     they are discarded on departure and may be pruned by the
//     counter-based removal mechanism.
//
// Each copy carries a version (for update propagation) and replicas carry
// an access counter (for counter-based removal).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace lesslog::core {

/// Opaque file identifier. Producers derive it from the file's unique name
/// (see FileId::from_name) or from a synthetic index.
class FileId {
 public:
  constexpr FileId() = default;
  constexpr explicit FileId(std::uint64_t key) noexcept : key_(key) {}

  [[nodiscard]] constexpr std::uint64_t key() const noexcept { return key_; }

  friend constexpr auto operator<=>(FileId, FileId) = default;

 private:
  std::uint64_t key_ = 0;
};

enum class CopyKind : std::uint8_t { kInserted, kReplica };

struct CopyInfo {
  CopyKind kind = CopyKind::kInserted;
  std::uint64_t version = 0;
  /// Requests served by this copy since the counter was last reset; only
  /// meaningful for replicas (the counter-based removal input).
  std::uint64_t access_count = 0;
  /// The stored bytes (may be empty when the deployment runs metadata-only
  /// experiments). See core/payload.hpp for content generation/integrity.
  std::vector<std::uint8_t> data;
};

class FileStore {
 public:
  FileStore() = default;
  // The lookup index holds pointers into copies_'s nodes. Copying must
  // re-point them at the new map's nodes; moving keeps node addresses.
  FileStore(const FileStore& other) : copies_(other.copies_) {
    rebuild_index();
  }
  FileStore& operator=(const FileStore& other) {
    if (this != &other) {
      copies_ = other.copies_;
      rebuild_index();
    }
    return *this;
  }
  FileStore(FileStore&&) noexcept = default;
  FileStore& operator=(FileStore&&) noexcept = default;
  ~FileStore() = default;

  [[nodiscard]] bool has(FileId f) const noexcept {
    return lookup(f) != nullptr;
  }

  [[nodiscard]] std::optional<CopyInfo> info(FileId f) const;

  /// Serves one get from the local copy: counts the access and returns the
  /// stored version, or nullopt when no copy is present. Equivalent to
  /// has() + record_access() + info()->version in a single lookup — the
  /// request hot path calls this once per served get.
  [[nodiscard]] std::optional<std::uint64_t> serve(FileId f);

  /// Stores an original copy. Overwrites any existing replica entry (a node
  /// can be promoted from replica-holder to authoritative holder when
  /// membership changes).
  void put_inserted(FileId f, std::uint64_t version = 0,
                    std::vector<std::uint8_t> data = {});

  /// Stores a replica. No-op if an inserted copy is already present.
  void put_replica(FileId f, std::uint64_t version = 0,
                   std::vector<std::uint8_t> data = {});

  /// Borrow the stored bytes of f; nullptr when no copy is present.
  [[nodiscard]] const std::vector<std::uint8_t>* payload(FileId f) const;

  /// Overwrites the stored bytes of f in place (test fault injection and
  /// payload-carrying updates). Returns false when no copy is present.
  bool set_payload(FileId f, std::vector<std::uint8_t> data);

  /// Removes any copy of f. Returns true if one existed.
  bool erase(FileId f);

  /// Applies an update: bump the stored version to `version` (and replace
  /// the bytes, when provided) if a copy is present. Returns true if a
  /// copy was present.
  bool apply_update(FileId f, std::uint64_t version,
                    std::vector<std::uint8_t> data = {});

  /// Counts one served request against f's copy (counter-based removal).
  void record_access(FileId f);

  /// Restores an access counter (snapshot load). Returns false when no
  /// copy is present.
  bool set_access_count(FileId f, std::uint64_t count);

  /// Resets all access counters (start of a measurement window).
  void reset_access_counts() noexcept;

  /// Removes replicas whose access counter is strictly below `threshold`;
  /// inserted copies are never removed. Returns the ids pruned.
  std::vector<FileId> prune_cold_replicas(std::uint64_t threshold);

  [[nodiscard]] std::vector<FileId> inserted_files() const;
  [[nodiscard]] std::vector<FileId> replica_files() const;
  [[nodiscard]] std::size_t size() const noexcept { return copies_.size(); }

 private:
  struct FileIdHash {
    std::size_t operator()(FileId f) const noexcept {
      return std::hash<std::uint64_t>{}(f.key());
    }
  };

  /// One slot of the lookup index; empty when `value` is null.
  struct IndexSlot {
    std::uint64_t key = 0;
    CopyInfo* value = nullptr;
  };

  /// Fibonacci-multiplicative home slot; the index capacity is a power
  /// of two, so this replaces the hash map's modulo-by-prime division.
  [[nodiscard]] std::size_t home_slot(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) &
           (index_.size() - 1);
  }

  /// Borrowed pointer to f's copy, or nullptr — the hot-path lookup: a
  /// multiply and a short linear probe over a flat array, instead of the
  /// std::unordered_map find (modulo-by-prime plus two dependent pointer
  /// chases) that showed up on the wire benches' request path.
  [[nodiscard]] CopyInfo* lookup(FileId f) const noexcept {
    if (index_.empty()) return nullptr;
    std::size_t i = home_slot(f.key());
    while (index_[i].value != nullptr) {
      if (index_[i].key == f.key()) return index_[i].value;
      i = (i + 1) & (index_.size() - 1);
    }
    return nullptr;
  }

  void index_put(std::uint64_t key, CopyInfo* value);
  void index_erase(std::uint64_t key) noexcept;
  void rebuild_index();

  /// Source of truth, and the only container ever iterated: enumeration
  /// order (inserted_files(), replica_files(), pruning) is observable by
  /// the shed/leave protocols, so it must stay exactly the map's.
  std::unordered_map<FileId, CopyInfo, FileIdHash> copies_;
  /// Flat linear-probe acceleration index over copies_'s nodes (node
  /// addresses are stable until erase). Never iterated.
  std::vector<IndexSlot> index_;
};

}  // namespace lesslog::core

template <>
struct std::hash<lesslog::core::FileId> {
  std::size_t operator()(lesslog::core::FileId f) const noexcept {
    return std::hash<std::uint64_t>{}(f.key());
  }
};
