// Children lists — the replica placement order.
//
// Basic model (all nodes live): the children of P(k) in the tree of P(r),
// sorted by descending VID (= descending offspring count, Property 3).
//
// Advanced model (Section 3): dead children are transparently replaced by
// *their* children, recursively, and the final list of live nodes is sorted
// by descending VID. Worked example from the paper (14-node system, m = 4,
// P(0) and P(5) dead): the children list of P(4) in its own tree is
// (P(6), P(7), P(1), P(12), P(13), P(8)).
#pragma once

#include <functional>
#include <vector>

#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::core {

/// Generic advanced-model expansion used by both the full lookup tree and
/// the fault-tolerant subtree views: children of `v` in `vt`, with each dead
/// child replaced by its recursively expanded children, sorted by
/// descending VID. Liveness of a VID is resolved through `pid_of`.
[[nodiscard]] std::vector<Vid> expand_children_list(
    const VirtualTree& vt, Vid v,
    const std::function<Pid(Vid)>& pid_of, const util::StatusWord& live);

/// Advanced-model children list of P(k) in `tree`, honoring liveness:
/// every live child, plus — in place of each dead child — that child's own
/// (recursively expanded) children list; result sorted by descending VID.
/// With all nodes live this degenerates to tree.children(k).
[[nodiscard]] std::vector<Pid> children_list(const LookupTree& tree, Pid k,
                                             const util::StatusWord& live);

/// Total offspring weight represented by each entry of children_list():
/// the subtree size of that entry. Used by the log-based baseline and by
/// LessLog's proportional split. Same order as children_list().
struct WeightedChild {
  Pid pid;
  std::uint32_t subtree_size;
};

[[nodiscard]] std::vector<WeightedChild> weighted_children_list(
    const LookupTree& tree, Pid k, const util::StatusWord& live);

}  // namespace lesslog::core
