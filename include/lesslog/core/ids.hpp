// Strong identifier types for the two LessLog ID spaces.
//
// Every node carries a *physical* identifier (PID), assigned once, and each
// lookup tree assigns it a *virtual* identifier (VID) — its position in that
// tree. Confusing the two spaces is the natural bug in this algorithm, so
// they are distinct types and the only bridge between them is IdMapper,
// which owns the XOR complement of the tree root (Property 4).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "lesslog/util/bits.hpp"

namespace lesslog::core {

/// Physical node identifier: stable, unique per node, in [0, 2^m).
class Pid {
 public:
  constexpr Pid() = default;
  constexpr explicit Pid(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }

  friend constexpr auto operator<=>(Pid, Pid) = default;

 private:
  std::uint32_t value_ = 0;
};

/// Virtual identifier: a node's position in one particular lookup tree.
/// The VID bit pattern *is* the tree structure (Properties 1-3).
class Vid {
 public:
  constexpr Vid() = default;
  constexpr explicit Vid(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }

  friend constexpr auto operator<=>(Vid, Vid) = default;

 private:
  std::uint32_t value_ = 0;
};

/// MSB-first binary rendering, for diagnostics and the paper's worked
/// examples ("the VID of the root node is 1111").
[[nodiscard]] std::string to_string(Pid pid);
[[nodiscard]] std::string to_binary(Vid vid, int m);

/// Property 4: with the root PID r of a lookup tree known, PID <-> VID
/// conversion is a XOR with the complement of r. The mapper is a value type;
/// copying it is two words.
class IdMapper {
 public:
  /// Mapper for the lookup tree rooted at P(root) in an m-bit space.
  constexpr IdMapper(int m, Pid root) noexcept
      : m_(m), complement_(util::complement(root.value(), m)) {}

  [[nodiscard]] constexpr int width() const noexcept { return m_; }

  /// The complement k̄ used in the paper's construction.
  [[nodiscard]] constexpr std::uint32_t complement() const noexcept {
    return complement_;
  }

  /// Root of this tree (VID = all ones maps back to the root PID).
  [[nodiscard]] constexpr Pid root() const noexcept {
    return Pid{util::mask_of(m_) ^ complement_};
  }

  [[nodiscard]] constexpr Vid vid_of(Pid pid) const noexcept {
    return Vid{pid.value() ^ complement_};
  }

  [[nodiscard]] constexpr Pid pid_of(Vid vid) const noexcept {
    return Pid{vid.value() ^ complement_};
  }

  friend constexpr bool operator==(IdMapper, IdMapper) = default;

 private:
  int m_;
  std::uint32_t complement_;
};

}  // namespace lesslog::core

template <>
struct std::hash<lesslog::core::Pid> {
  std::size_t operator()(lesslog::core::Pid pid) const noexcept {
    return std::hash<std::uint32_t>{}(pid.value());
  }
};

template <>
struct std::hash<lesslog::core::Vid> {
  std::size_t operator()(lesslog::core::Vid vid) const noexcept {
    return std::hash<std::uint32_t>{}(vid.value());
  }
};
