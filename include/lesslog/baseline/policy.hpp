// Replication policies for the figure experiments.
//
// All three methods from Section 6 resolve lookups through the same
// binomial lookup tree; they differ only in where an overloaded node's
// replica goes:
//   * LessLog      — bit operations, no access history (the paper's
//                    contribution; wraps core::replicate_target);
//   * random       — a uniformly random live node without a copy;
//   * log-based    — the child forwarding the most requests, derived here
//                    from the solver's exact flow rates, i.e. a *perfect*
//                    client-access log (the strongest version of this
//                    baseline).
#pragma once

#include "lesslog/sim/experiment.hpp"

namespace lesslog::baseline {

/// The paper's REPLICATEFILE (advanced model, proportional rule included).
[[nodiscard]] sim::PlacementFn lesslog_policy();

/// Random replication: uniform over live nodes without a copy (excluding
/// the overloaded node itself).
[[nodiscard]] sim::PlacementFn random_policy();

/// Log-based replication: the children-list entry of the overloaded node
/// that forwards the highest request rate toward it. Falls back to the
/// LessLog structural order when every child flow is zero (the overload is
/// then the node's own client demand, which no placement can shed — the
/// structural pick keeps behaviour deterministic).
[[nodiscard]] sim::PlacementFn logbased_policy();

/// Log-based replication with *imperfect* logs: the exact per-child flows
/// are observed through a sampled access log — each request is recorded
/// with probability `sample_rate` over a `window`-second collection period
/// — so the estimated flow carries noise with standard deviation
/// sqrt(flow / (sample_rate * window)). sample_rate = 1 with a long window
/// recovers logbased_policy(); thin samples scramble the child ranking and
/// degrade the placement. Used by the log-quality ablation to quantify how
/// good logs must be before they beat LessLog's logless structural choice.
[[nodiscard]] sim::PlacementFn sampled_log_policy(double sample_rate,
                                                  double window = 1.0);

}  // namespace lesslog::baseline
