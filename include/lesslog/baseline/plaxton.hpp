// A Plaxton-style prefix-routing mesh (Plaxton/Rajaraman/Richa, SPAA '97 —
// the scheme underlying Tapestry and Pastry, both cited by the paper).
//
// Nodes and keys share a digit representation (base 2^bits_per_digit,
// most-significant digit first). Each node keeps a routing table indexed
// by (digit position, digit value): the entry holds a live node that
// matches the node's own ID on all higher positions and has the given
// digit at that position (ties resolved to the numerically smallest
// candidate, a deterministic stand-in for "closest"). A lookup fixes one
// digit per hop, so paths are at most ceil(m / bits_per_digit) hops.
//
// Like ChordRing, this is the static structure: tables are rebuilt per
// membership snapshot, matching the globally fresh status word LessLog
// assumes. The root of a key is the live node reached by prefix routing
// with deterministic surrogate hops when a table entry is empty.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::baseline {

class PlaxtonMesh {
 public:
  /// Builds routing tables for every live node. `bits_per_digit` of 1
  /// gives binary Plaxton (longest paths, smallest tables); Pastry's
  /// default corresponds to 4. The view is only read during
  /// construction; the mesh keeps its own sorted copy of the live set.
  explicit PlaxtonMesh(const util::LivenessView& view,
                       int bits_per_digit = 2);

  [[nodiscard]] int width() const noexcept { return m_; }
  [[nodiscard]] int digits() const noexcept { return digits_; }
  [[nodiscard]] int digit_base() const noexcept { return 1 << bits_; }

  /// Digit of `id` at position `pos` (0 = most significant digit).
  [[nodiscard]] std::uint32_t digit(std::uint32_t id, int pos) const;

  /// The live node that owns `key`: reached by prefix routing from any
  /// start (the mesh guarantees a unique root per key).
  [[nodiscard]] std::uint32_t root_of(std::uint32_t key) const;

  /// Node sequence from `from` toward key's root (prefix-fixing hops).
  [[nodiscard]] std::vector<std::uint32_t> lookup_path(
      std::uint32_t from, std::uint32_t key) const;

  [[nodiscard]] int lookup_hops(std::uint32_t from, std::uint32_t key) const {
    return static_cast<int>(lookup_path(from, key).size()) - 1;
  }

 private:
  /// Smallest live node whose digits match prefix(key, pos) and whose
  /// digit at `pos` is `d` — the routing-table entry (node IDs sorted
  /// numerically make every prefix class a contiguous range, so entries
  /// resolve with one binary search instead of materialized tables).
  /// nullopt when the class is empty.
  [[nodiscard]] std::optional<std::uint32_t> prefix_match(
      std::uint32_t key, int pos, std::uint32_t d) const;

  /// Length of the common MSB-first digit prefix of a and b.
  [[nodiscard]] int common_prefix(std::uint32_t a, std::uint32_t b) const;

  int m_;
  int bits_;
  int digits_;
  std::vector<std::uint32_t> nodes_;  // sorted live ids
};

}  // namespace lesslog::baseline
