// A Chord-style lookup substrate (Stoica et al., SIGCOMM 2001) — the
// related-work comparator the paper cites for O(log N) lookup. Used by the
// lookup-hops ablation to put LessLog's binomial-tree path lengths next to
// consistent-hashing finger-table routing on the same node populations.
//
// This is the classic static Chord: an identifier ring of size 2^m, each
// live node with an m-entry finger table (finger[i] = successor(n + 2^i)),
// greedy closest-preceding-finger routing. No stabilization protocol — the
// ablation rebuilds tables per membership snapshot, which matches how the
// LessLog status word is also assumed globally fresh.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::baseline {

class ChordRing {
 public:
  /// Builds finger tables for every live node in `view` on a 2^m ring.
  /// The view is only read during construction; the ring keeps its own
  /// sorted copy of the live set (tables are per-snapshot, matching the
  /// globally fresh membership LessLog assumes).
  explicit ChordRing(const util::LivenessView& view);

  [[nodiscard]] int width() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// First live node at or clockwise after `id` (wrapping). The node
  /// responsible for key `id`.
  [[nodiscard]] std::uint32_t successor(std::uint32_t id) const;

  /// Greedy finger routing from `from` toward the node responsible for
  /// `key`; returns the hop count (0 when `from` is already responsible).
  [[nodiscard]] int lookup_hops(std::uint32_t from, std::uint32_t key) const;

  /// Full route for diagnostics: the node sequence visited, ending at the
  /// responsible node.
  [[nodiscard]] std::vector<std::uint32_t> lookup_path(
      std::uint32_t from, std::uint32_t key) const;

 private:
  /// True iff x lies in the half-open clockwise interval (a, b].
  [[nodiscard]] static bool in_interval(std::uint32_t x, std::uint32_t a,
                                        std::uint32_t b,
                                        std::uint32_t ring) noexcept;

  [[nodiscard]] const std::vector<std::uint32_t>& fingers(
      std::uint32_t node) const;

  int m_;
  std::uint32_t ring_;
  std::vector<std::uint32_t> nodes_;  // sorted live ids
  /// finger_[i] belongs to nodes_[i]; finger_[i][j] = successor(n + 2^j).
  std::vector<std::vector<std::uint32_t>> finger_;
  std::vector<std::uint32_t> node_index_;  // id -> index into nodes_
};

}  // namespace lesslog::baseline
