// Swarm — a whole message-driven LessLog deployment in one object.
//
// Owns the event engine, the network, one Peer per live PID, and one
// colocated Client per peer. Provides the data-plane operations of the
// paper as asynchronous protocol exchanges (insert / get / update /
// replicate / membership announcements) plus helpers to drive the
// simulation and collect latency statistics.
//
// This is the layer the latency/overhead benches and the protocol example
// run on; the direct-call core::System remains the convenient API for
// logic-level work (its routing decisions and this layer's are verified
// against each other in tests/proto/).
#pragma once

#include <memory>
#include <vector>

#include "lesslog/core/replication.hpp"
#include "lesslog/obs/sampler.hpp"
#include "lesslog/obs/sink.hpp"
#include "lesslog/proto/client.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/proto/peer.hpp"

namespace lesslog::proto {

class Swarm {
 public:
  struct Config {
    int m = 8;
    int b = 0;
    std::uint32_t nodes = 0;  ///< live PIDs [0, nodes)
    std::uint64_t seed = 1;
    NetworkConfig net;
    ClientConfig client;
    PeerConfig peer;
  };

  explicit Swarm(Config cfg);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] Peer& peer(core::Pid p) { return *peers_[p.value()]; }
  [[nodiscard]] Client& client(core::Pid p) { return *clients_[p.value()]; }
  [[nodiscard]] const util::StatusWord& status() const noexcept {
    return status_.read();
  }
  [[nodiscard]] int width() const noexcept { return cfg_.m; }

  /// Runs the event loop until no event remains (all in-flight protocol
  /// exchanges, timeouts included, have resolved).
  void settle();

  /// Inserts a file with target root r: resolves the 2^b per-subtree
  /// holders from the *issuing node's* status word (the paper's
  /// ADVANCEDINSERTFILE) and sends one insert per holder. Asynchronous;
  /// settle() to complete.
  void insert(core::FileId file, core::Pid r, core::Pid issuer);

  /// Inserts under the paper's naming rule: the FileId is the key and the
  /// target is r = ψ(key). Membership data motion (graceful leave, crash
  /// recovery, join reclaim) is only defined for ψ-named files.
  core::FileId insert_named(std::uint64_t key, core::Pid issuer);

  /// Issues a get from `at`; the result lands in the given callback (and
  /// in the per-client latency stats).
  void get(core::FileId file, core::Pid r, core::Pid at,
           Client::GetCallback done = nullptr);

  /// Sends an update push (new version) into the tree of r from `issuer`:
  /// one push per subtree stand-in, as Section 4 prescribes.
  void update(core::FileId file, core::Pid r, std::uint64_t version,
              core::Pid issuer);

  /// Issues REPLICATEFILE at overloaded holder `overloaded`: computes the
  /// placement locally (bit operations on its status word + which copies
  /// it knows of via `holds`) and sends kCreateReplica.
  std::optional<core::Pid> replicate(core::FileId file, core::Pid r,
                                     core::Pid overloaded,
                                     const core::HoldsCopyFn& holds);

  /// Membership with the Section 5 data-motion protocols on the wire:
  ///   * join — the node comes online, broadcasts its status, and issues a
  ///     kReclaim sweep so current holders push back the ψ-named files it
  ///     is now authoritative for;
  ///   * depart — graceful leave: inserted files are pushed to their
  ///     post-departure holders before the status broadcast and detach;
  ///   * crash — the store vanishes; surviving sibling-subtree holders
  ///     re-insert the lost copies when the failure announcement reaches
  ///     them (b > 0; with b = 0 unreplicated files are simply lost).
  core::Pid join(std::optional<core::Pid> requested = std::nullopt);
  void depart(core::Pid p);
  void crash(core::Pid p);

  /// Crash recovery, step 2: the crashed node comes back under the same
  /// PID with an empty store (its disk is gone). A restart is a rejoin —
  /// status broadcast plus the Section 5.1 kReclaim sweep, so surviving
  /// holders push the ψ-named files it is authoritative for back to it.
  /// Precondition: p previously crashed (or departed).
  void restart(core::Pid p);

  /// Repair broadcast: re-announces the ground-truth liveness of every
  /// PID to all live peers. Status announcements ride the unreliable
  /// datagram wire, so a burst window or partition can leave peers with
  /// stale views; the chaos driver calls this after a heal (the modelled
  /// equivalent of anti-entropy gossip catching up).
  void reannounce();

  /// SWIM-mode failure: the node goes dark with no ground-truth status
  /// broadcast — *detecting* the crash (and announcing it, which triggers
  /// Section 5.3 recovery) is the membership protocol's job. Mechanically
  /// identical to crash_silent; the two exist separately because their
  /// contracts differ: this one expects a failure detector to close the
  /// loop, crash_silent expects the auditor to flag the resulting hole.
  void crash_unannounced(core::Pid p);

  /// TEST-ONLY failure mode: the node vanishes without any failure
  /// announcement ever being sent — deliberately breaking the Section 5.3
  /// recovery contract. Used to prove the chaos auditor catches a broken
  /// recovery protocol; never part of a correct schedule.
  void crash_silent(core::Pid p);

  /// Aggregate client stats across all peers.
  [[nodiscard]] std::int64_t total_faults() const;
  [[nodiscard]] std::vector<double> all_latencies() const;

  /// Merged reliability ledger: every client's counters plus every peer's
  /// busy_shed. Plain ints, valid in every build flavor; the chaos audit
  /// checks its exact identities at quiescence.
  [[nodiscard]] ReliabilityLedger reliability_ledger() const;

  /// Network counter aggregates, named identically on ShardedSwarm (which
  /// sums them over shards) — the shared surface that lets the chaos
  /// auditor and benches drive either deployment through one template.
  [[nodiscard]] std::int64_t messages_sent() const noexcept {
    return network_.messages_sent();
  }
  [[nodiscard]] std::int64_t bytes_sent() const noexcept {
    return network_.bytes_sent();
  }
  [[nodiscard]] std::int64_t delivered() const noexcept {
    return network_.delivered();
  }
  [[nodiscard]] std::int64_t undeliverable() const noexcept {
    return network_.undeliverable();
  }
  [[nodiscard]] std::int64_t dropped() const noexcept {
    return network_.dropped();
  }
  [[nodiscard]] std::int64_t corrupted() const noexcept {
    return network_.corrupted();
  }

  /// Closed-loop overload control: every `window` seconds each live peer
  /// inspects its own served counters (local knowledge only — no logs
  /// leave the node); if it served more than capacity*window requests it
  /// replicates its locally hottest file via the LessLog rule, then
  /// resets its counters. Runs until `stop_at`. This is the autonomous
  /// behaviour the paper's REPLICATEFILE loop describes ("we continue
  /// replicating f ... until P(r) is not overloaded").
  ///
  /// `removal_threshold` (requests/s; 0 disables) adds the paper's
  /// "simple counter-based mechanism to remove replicas that are not
  /// frequently accessed": a peer whose *replica* served fewer than
  /// removal_threshold * window requests in the window drops it — a
  /// purely local decision, no messages.
  void enable_auto_replication(double capacity, double window,
                               double stop_at,
                               double removal_threshold = 0.0);

  /// Replicas created / removed by the closed loop so far.
  [[nodiscard]] std::int64_t auto_replicas() const noexcept {
    return auto_replicas_;
  }
  [[nodiscard]] std::int64_t auto_removals() const noexcept {
    return auto_removals_;
  }

  // -- Observability ------------------------------------------------------

  /// The swarm's metric registry. Cells are registered at construction
  /// (see obs::WireMetrics for the catalog); under -DLESSLOG_NO_METRICS
  /// the cells exist but stay at zero.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const obs::WireMetrics& metrics() const noexcept {
    return metrics_;
  }

  /// Registers an observer for every delivered datagram plus membership
  /// events (notified in registration order, before the receiving peer's
  /// handler). The sink must be removed (or the swarm destroyed) before
  /// the sink dies. Peers joining later are covered automatically.
  void add_sink(obs::DeliverySink& sink) { network_.add_sink(sink); }
  void remove_sink(obs::DeliverySink& sink) { network_.remove_sink(sink); }

  /// Samples the registry every `interval` simulated seconds until
  /// `stop_at`, refreshing the derived gauges (queue depth, live peers,
  /// hottest peer's served count) right before each snapshot.
  void enable_metrics_sampling(double interval, double stop_at);

  /// The sampled time-series (empty until enable_metrics_sampling ran).
  [[nodiscard]] const obs::TimeSeries& metrics_series() const;

 private:
  void broadcast_status(core::Pid about, bool live);
  void auto_replication_tick(double capacity, double window, double stop_at,
                             double removal_threshold);

  Config cfg_;
  sim::Engine engine_;
  Network network_;
  /// Ground-truth liveness as a copy-on-write handle: construction and
  /// every rejoin hand peers an O(1) snapshot of it instead of a 2^m-bit
  /// copy; truth mutations clone once while snapshots are outstanding.
  util::CowStatus status_;
  obs::Registry registry_;
  obs::WireMetrics metrics_;
  obs::MetricsSink metrics_sink_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::int64_t auto_replicas_ = 0;
  std::int64_t auto_removals_ = 0;
};

}  // namespace lesslog::proto
