// Cross-shard datagram mailboxes for the sharded swarm.
//
// One mailbox per ordered (source shard, destination shard) pair, stored
// as parallel arrays (delivery times | wire images) so a drain hands the
// destination network a whole box in one deliver_batch() call — the
// event queue admits the run with batched bookkeeping instead of one
// wheel/heap operation per parcel. Access is single-producer/
// single-consumer by construction of the sharded engine's phase
// structure: during a window only shard `s`'s worker appends to the
// (s, *) boxes; during the barrier's drain phase only shard `d`'s drain
// touches the (*, d) boxes. The thread-pool barrier between the phases
// supplies the happens-before edge, so no atomics or locks are needed —
// and the drain order (source index ascending, FIFO within a source) is
// fixed, which is what makes the merged event order deterministic for a
// given shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/proto/message.hpp"
#include "lesslog/proto/shard_map.hpp"

namespace lesslog::proto {

class Network;

class ShardRouter {
 public:
  /// `map` is the PID -> shard policy (see shard_map.hpp); its shard
  /// count fixes the mailbox grid.
  explicit ShardRouter(const ShardMap& map);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }
  [[nodiscard]] std::size_t shard_of(core::Pid p) const noexcept {
    return map_.shard_of(p);
  }

  /// Mailboxes a wire image for delivery at absolute time `deliver_at`.
  /// Caller context: shard `from`'s worker, inside a window.
  void post(std::size_t from, std::size_t to, double deliver_at,
            const WireBuffer& wire);

  /// Schedules every parcel addressed to shard `dest` into `net` (its
  /// network) and empties those boxes. Caller context: the barrier's
  /// drain phase, shard `dest`'s drain task.
  void drain_into(std::size_t dest, Network& net);

  /// True when no parcel is in flight. Only meaningful at a barrier.
  [[nodiscard]] bool empty() const noexcept;

 private:
  /// One mailbox, SoA: parcel i is (at[i], wire[i]), FIFO in post order.
  struct Box {
    std::vector<double> at;
    std::vector<WireBuffer> wire;
  };

  std::size_t shards_;
  ShardMap map_;
  std::vector<Box> box_;  ///< box_[from * shards_ + to]
};

}  // namespace lesslog::proto
