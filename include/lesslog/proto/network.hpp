// Simulated datagram network.
//
// Delivers Messages between peers through the discrete-event engine with
// configurable one-way latency (base + uniform jitter) and an optional
// drop probability for fault injection. Accounting (messages, bytes,
// drops) feeds the latency/overhead benches. Delivery is best-effort and
// unordered, like UDP — the client layer owns timeouts and retries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lesslog/obs/sink.hpp"
#include "lesslog/proto/fault.hpp"
#include "lesslog/proto/message.hpp"
#include "lesslog/sim/engine.hpp"

namespace lesslog::proto {

struct NetworkConfig {
  double base_latency = 0.010;   ///< seconds, one way
  double jitter = 0.005;         ///< uniform in [0, jitter) added per hop
  double drop_probability = 0.0; ///< per-message loss
  /// Deterministic per-link latency spread: link (a, b) gains a fixed
  /// extra delay in [0, link_stagger), a pure hash of the ordered pair —
  /// no RNG stream is consumed. With jitter == 0 every link would share
  /// one constant latency and concurrent fan-outs (SWIM's ping-req) land
  /// at a single destination at the *same* timestamp; the tie order then
  /// depends on queue seq assignment, which differs between a serial run
  /// and a sharded drain. A per-link stagger makes arrival times on
  /// distinct links distinct by construction, so the delivery order is a
  /// pure function of time — identical at any shard count. The SWIM
  /// chaos driver enables this; everything else defaults to 0 (off).
  double link_stagger = 0.0;

  /// Throws std::invalid_argument on nonsense (drop_probability outside
  /// [0, 1], negative or non-finite latency/jitter). Called by the
  /// Network constructor, so a misconfigured network cannot be built.
  void validate() const;
};

/// Optional geographic model: nodes get coordinates in the unit square
/// and the one-way latency of a link becomes
/// base_latency + euclidean_distance * latency_per_unit (+ jitter).
/// LessLog's routing is proximity-oblivious, so this model is what the
/// stretch ablation measures against.
///
/// With clusters == 0 (the default) every slot draws an independent
/// uniform position — the original model, bit-identical draws. With
/// clusters == k > 0 the ID space splits into k PID-contiguous blocks;
/// block i's nodes land in a square blob of half-width cluster_radius
/// around center i, and the k centers sit evenly spaced on a circle of
/// radius 0.35 about (0.5, 0.5) — deterministically separated, so a
/// range-sharded swarm whose shards align with the blocks gets a
/// strictly positive pairwise distance floor (the adaptive lookahead's
/// fuel).
struct Geography {
  std::uint32_t slots = 0;          ///< ID-space size (coordinate count)
  std::uint64_t seed = 1;           ///< placement seed
  double latency_per_unit = 0.060;  ///< seconds across one unit of distance
  std::uint32_t clusters = 0;       ///< 0 = uniform; k = PID-block blobs
  double cluster_radius = 0.05;     ///< blob half-width (clusters > 0)
};

/// The coordinate table a Network with this Geography uses — exposed so
/// the sharded swarm can derive pairwise latency floors from the same
/// placement without building a Network first (single source of truth).
[[nodiscard]] std::vector<std::pair<double, double>> make_coordinates(
    const Geography& geo);

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Bare receive handler: `ctx` is whatever the owner registered (for a
  /// peer, the Peer itself). The hot-path form of Handler — one indirect
  /// call, no type-erasure trampoline.
  using RawHandler = void (*)(void* ctx, const Message&);

  /// Cross-shard hook: called with (destination PID, absolute delivery
  /// time, wire image) right before a delivery event would be scheduled.
  /// Returning true means the datagram was taken (the destination lives
  /// on another shard and the image went into a mailbox); false falls
  /// through to the local engine. With no hook installed the send path
  /// is exactly the single-engine code (one null check).
  using ForwardFn =
      std::function<bool(core::Pid, double, const WireBuffer&)>;

  Network(sim::Engine& engine, NetworkConfig cfg);

  /// Registers the receive handler for a PID. One handler per PID; later
  /// registrations replace earlier ones (a rejoining peer re-registers).
  void attach(core::Pid pid, Handler handler);

  /// Raw-handler form of attach(): registers a bare (context, function
  /// pointer) pair. Same one-handler-per-PID replace semantics; this is
  /// what peers use, so the per-delivery dispatch is a 16-byte table slot
  /// and a single indirect call.
  void attach_raw(core::Pid pid, void* ctx, RawHandler fn);

  /// Removes a peer's handler; in-flight messages to it are dropped on
  /// arrival (counted as undeliverable, like a crashed host).
  void detach(core::Pid pid);

  /// Sends m to m.to. The message is encoded and decoded across the
  /// simulated wire, so only what the format carries arrives. The wire
  /// image travels inline inside the scheduled delivery event, so the
  /// steady-state per-message path performs no heap allocation.
  void send(const Message& m);

  /// Switches to distance-based link latency (see Geography).
  void enable_geography(const Geography& geo);

  /// Installs (or clears, with nullptr) the cross-shard forwarding hook.
  /// Installed by proto::ShardedSwarm on every shard network when S > 1.
  void set_forward(ForwardFn fn) { forward_ = std::move(fn); }

  /// Schedules the arrival half of send() at absolute time `at`: the
  /// shard router's barrier-drain path hands over datagrams that crossed
  /// shards. The sender already drew latency (and ran the fault
  /// pipeline) on its own shard, so arrival is all that remains.
  void deliver_at(double at, const WireBuffer& wire);

  /// Batch form of deliver_at(): schedules arrivals (times[i], wires[i])
  /// for i in [0, n) as one contiguous run through the event queue's
  /// batch-admission path — the shard router hands over a whole
  /// (source, destination) mailbox per call. Index order is preserved,
  /// so the merged event order matches n deliver_at() calls exactly.
  void deliver_batch(const double* times, const WireBuffer* wires,
                     std::size_t n);

  /// Installs a fault plan (replacing any previous one): validates it,
  /// creates the injector, and schedules every rule's activation and heal
  /// through the event engine, so the whole fault schedule replays
  /// bit-identically from (engine seed, plan). With no plan installed the
  /// send path is exactly the pre-fault-model code (one null check).
  void install_fault_plan(const FaultPlan& plan);

  /// The installed injector (nullptr when no plan was installed). The
  /// chaos auditor reads stats() and reachability from here.
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return injector_.get();
  }

  /// Registers an observer notified (in registration order) about every
  /// delivered datagram, at delivery time, before the receiving handler
  /// runs. The network is the single delivery funnel, so sinks see peers
  /// that attach at any later time too. The sink must stay alive until
  /// removed (or the network is destroyed).
  void add_sink(obs::DeliverySink& sink);
  void remove_sink(obs::DeliverySink& sink);

  /// Fans a membership event out to every sink (called by the swarm from
  /// join / depart / crash).
  void notify_peer_event(double time, core::Pid peer, bool live);

  /// Points the send/deliver accounting at pre-resolved metric cells
  /// (nullptr detaches). Compiled to nothing under -DLESSLOG_NO_METRICS.
  void set_metrics(const obs::WireMetrics* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Euclidean distance between two nodes' coordinates. Precondition:
  /// geography enabled and both PIDs within its slot count.
  [[nodiscard]] double distance(core::Pid a, core::Pid b) const;

  /// One-way latency of the (a, b) link excluding jitter.
  [[nodiscard]] double link_latency(core::Pid a, core::Pid b) const;

  /// The deterministic per-link extra delay (see NetworkConfig::
  /// link_stagger); 0 when the knob is off.
  [[nodiscard]] double link_stagger(core::Pid a, core::Pid b) const noexcept;

  [[nodiscard]] std::int64_t messages_sent() const noexcept {
    return messages_sent_;
  }
  [[nodiscard]] std::int64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::int64_t undeliverable() const noexcept {
    return undeliverable_;
  }
  /// Datagrams handed to an attached handler.
  [[nodiscard]] std::int64_t delivered() const noexcept { return delivered_; }
  /// Datagrams whose wire image failed to decode on arrival (fault
  /// injection corrupts in flight; the decode-reject path counts here).
  [[nodiscard]] std::int64_t corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }

 private:
  /// The typed per-message event: carries the encoded bytes by value so
  /// nothing is heap-captured. Sized (pointer + kWireSize bytes) to fit
  /// the event queue's inline buffer — static_assert-ed in network.cpp.
  struct DeliveryEvent {
    Network* net;
    WireBuffer wire;
    void operator()() const { net->deliver(wire); }
  };

  /// Arrival half of send(): decode and dispatch to the target handler.
  void deliver(const WireBuffer& wire);

  /// Slow path of send(), entered only when a fault plan is installed:
  /// runs the datagram through the injector pipeline (partition, dup,
  /// burst loss, corruption, delay spike) and schedules surviving copies.
  void send_faulty(const Message& m, DeliveryEvent& ev, double latency);

  /// One dispatch-table slot: fn == nullptr means detached. Half the size
  /// of a std::function and invoked without its trampoline.
  struct HandlerSlot {
    void* ctx = nullptr;
    RawHandler fn = nullptr;
  };

  sim::Engine* engine_;
  NetworkConfig cfg_;
  Geography geo_;
  std::vector<std::pair<double, double>> coords_;  // empty = flat latency
  std::vector<HandlerSlot> handlers_;  // indexed by PID
  /// Heap boxes backing std::function handlers registered through the
  /// general attach() (tests, ad-hoc observers): the slot's ctx points at
  /// the box and fn is a stateless shim that invokes it. unique_ptr keeps
  /// the address stable across table growth.
  std::vector<std::unique_ptr<Handler>> boxed_;
  ForwardFn forward_;  // null = every destination is local (serial mode)
  std::vector<obs::DeliverySink*> sinks_;
  const obs::WireMetrics* metrics_ = nullptr;
  std::unique_ptr<FaultInjector> injector_;  // null = clean fast path
  std::int64_t messages_sent_ = 0;
  std::int64_t bytes_sent_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t undeliverable_ = 0;
  std::int64_t delivered_ = 0;
  std::int64_t corrupted_ = 0;
};

}  // namespace lesslog::proto
