// Jacobson/Karn round-trip estimation for the client's adaptive
// reliability layer.
//
// The classic TCP smoothing pair (RFC 6298 coefficients): the first sample
// primes SRTT = rtt and RTTVAR = rtt/2; each later sample folds in as
//
//   RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - rtt|
//   SRTT   <- 7/8 SRTT   + 1/8 rtt
//
// and the retransmission timeout is clamp(SRTT + 4 RTTVAR, floor, cap).
// Karn's rule lives in the *caller*: only requests that completed on their
// first transmission — no retry, no migration, no hedge leg — feed
// add_sample(), so a reply can never be credited to the wrong leg.
//
// The estimator also keeps a small ring of the same Karn-clean samples so
// the hedging policy can ask for an empirical latency percentile ("launch
// the second leg once the first is slower than p95 of recent requests").
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>

namespace lesslog::proto {

class RttEstimator {
 public:
  /// Recent-sample ring capacity for percentile queries.
  static constexpr std::size_t kWindow = 64;

  /// Absorbs one Karn-clean round-trip sample (seconds).
  void add_sample(double rtt) noexcept {
    if (!primed_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2.0;
      primed_ = true;
    } else {
      const double err = srtt_ - rtt;
      rttvar_ += 0.25 * ((err < 0.0 ? -err : err) - rttvar_);
      srtt_ += 0.125 * (rtt - srtt_);
    }
    ring_[next_] = rtt;
    next_ = (next_ + 1) % kWindow;
    if (count_ < kWindow) ++count_;
  }

  [[nodiscard]] bool primed() const noexcept { return primed_; }
  [[nodiscard]] double srtt() const noexcept { return srtt_; }
  [[nodiscard]] double rttvar() const noexcept { return rttvar_; }
  /// Samples currently held in the percentile ring (saturates at kWindow).
  [[nodiscard]] std::size_t window_size() const noexcept { return count_; }

  /// The retransmission timeout: SRTT + 4 RTTVAR clamped to [floor, cap],
  /// or `fallback` (unclamped) before the first sample arrives — an
  /// unprimed estimator must reproduce the fixed-timer client exactly.
  [[nodiscard]] double rto(double fallback, double floor,
                           double cap) const noexcept {
    if (!primed_) return fallback;
    return std::clamp(srtt_ + 4.0 * rttvar_, floor, cap);
  }

  /// Empirical percentile (pct in [0,1)) of the recent-sample ring.
  /// Precondition: window_size() > 0.
  [[nodiscard]] double percentile(double pct) const noexcept {
    assert(count_ > 0 && "percentile needs at least one sample");
    std::array<double, kWindow> scratch;
    std::copy_n(ring_.begin(), count_, scratch.begin());
    std::size_t k = static_cast<std::size_t>(pct * static_cast<double>(count_));
    if (k >= count_) k = count_ - 1;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(k),
                     scratch.begin() + static_cast<std::ptrdiff_t>(count_));
    return scratch[k];
  }

 private:
  std::array<double, kWindow> ring_{};
  std::size_t count_ = 0;  ///< live samples in the ring
  std::size_t next_ = 0;   ///< next ring slot to overwrite
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool primed_ = false;
};

}  // namespace lesslog::proto
