// A protocol peer: one P2P node as a message-driven actor.
//
// Each peer owns its file store and its *local liveness belief* — a
// util::MutableLivenessView, by default the built-in OracleView kept fresh
// by kStatusAnnounce broadcasts (the paper's Section 5 design), optionally
// replaced by a membership-library SwimView driven by the failure
// detector. Every forwarding decision is made from local state only:
//
//   * kGetRequest — serve if a copy is held, else forward to the first
//     alive subtree ancestor (FP), else to the subtree's stand-in holder;
//     a definitive miss sends a negative kGetReply so the requester can
//     migrate to the next subtree identifier (Section 4) or report a
//     fault;
//   * kInsertRequest / kCreateReplica / kUpdatePush — the storage-side
//     protocol of Sections 2-3, with update pushes pruned at non-holders
//     and fanned down children lists;
//   * kStatusAnnounce — membership bookkeeping.
//
// Replies (kGetReply, kInsertAck) arriving at a peer are surfaced to the
// colocated client through the reply sink.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/file_store.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/seq_window.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::proto {

struct PeerConfig {
  // --- Reliable-push retransmit policy (Section 5 data motion). The
  // defaults reproduce the historical fixed-timer constants byte for
  // byte; push_backoff_base > 1 switches the retransmit timer to capped
  // exponential backoff under the same policy the client's adaptive
  // retries use.
  double push_timeout = 0.3;  ///< seconds before a push retransmit
  int push_max_retries = 5;   ///< retransmissions before dropping
  double push_backoff_base = 1.0;  ///< 1 = fixed timer (lane fast path)
  double push_backoff_cap = 2.0;   ///< upper clamp on a backed-off delay

  // --- Service budget (graceful degradation). A peer over budget
  // refuses further GET work with a kBusy reply instead of silently
  // queueing into a timeout; requesters migrate with backoff. The budget
  // is a deterministic token bucket refilled from simulated time — no
  // RNG involved. 0 disables shedding entirely (the default).
  int busy_budget = 0;       ///< bucket capacity in GETs (serve or forward)
  double busy_refill = 0.0;  ///< tokens restored per simulated second

  /// Throws std::invalid_argument on nonsense (non-positive timers, a
  /// budget that can never refill). Called by the Peer constructor.
  void validate() const;
};

class Peer {
 public:
  using ReplySink = std::function<void(const Message&)>;

  /// A peer with the given PID in an m-bit ID space with b fault bits.
  /// `initial_status` seeds the local liveness view (a joining node gets
  /// it from a neighbor, Section 5.1).
  Peer(core::Pid pid, int b, util::StatusWord initial_status,
       Network& network, PeerConfig cfg = {});

  /// Same, seeding the liveness view from a copy-on-write handle. Swarm
  /// construction hands every peer one shared snapshot instead of 2^m
  /// distinct 2^m-bit copies; a peer's view silently diverges onto its own
  /// copy the first time a membership announcement mutates it.
  Peer(core::Pid pid, int b, util::CowStatus initial_status,
       Network& network, PeerConfig cfg = {});

  [[nodiscard]] core::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] int fault_bits() const noexcept { return b_; }
  [[nodiscard]] core::FileStore& store() noexcept { return store_; }
  [[nodiscard]] const core::FileStore& store() const noexcept {
    return store_;
  }
  /// The liveness bitmap this peer currently believes — i.e. its installed
  /// view's word. Arbitrarily stale relative to ground truth by design.
  [[nodiscard]] const util::StatusWord& status() const noexcept {
    return view_->word();
  }

  /// The peer's liveness belief as a view. Const access only — but the
  /// mutable-view type, so callers can take an O(1) belief snapshot.
  [[nodiscard]] const util::MutableLivenessView& liveness() const noexcept {
    return *view_;
  }

  /// The network this peer sends through. Colocated components (the SWIM
  /// membership agent) share the peer's network rather than holding their
  /// own reference, so a rejoined peer and its agent can never disagree.
  [[nodiscard]] Network& network() const noexcept { return *network_; }

  /// Installs an external liveness belief (e.g. a membership::SwimView).
  /// The view must outlive the peer or be replaced before destruction;
  /// nullptr restores the built-in OracleView. The external view should be
  /// seeded from the current belief by the caller if continuity matters.
  void set_liveness_view(util::MutableLivenessView* view) noexcept {
    view_ = view != nullptr ? view : &oracle_;
  }

  /// Belief updates from membership traffic. learn_dead snapshots the
  /// prior belief and runs Section 5.3 crash recovery against it — this is
  /// the single entry point both the announcement path and the SWIM
  /// confirm path use, so recovery behavior is mode-independent.
  void learn_live(core::Pid subject);
  void learn_dead(core::Pid subject);

  /// Wires this peer's handler into the network.
  void attach();
  void detach();

  /// Reinitializes this peer object for a re-join of the same PID: fresh
  /// status word, empty store, cleared placement memory and in-flight
  /// pushes, counters zeroed, handler re-attached. Peers are reused across
  /// membership cycles (never destroyed mid-run) so engine timers that
  /// captured this object can never dangle. Takes a copy-on-write handle:
  /// the swarm shares one snapshot instead of copying a 2^m-bit word per
  /// rejoin.
  void rejoin(util::CowStatus fresh_status);

  /// Sets where kGetReply / kInsertAck messages are surfaced (the
  /// colocated client).
  void set_reply_sink(ReplySink sink) { reply_sink_ = std::move(sink); }

  /// Points the service accounting at the swarm's pre-resolved metric
  /// cells (served / forwarded / push retries). Optional; compiled to
  /// nothing under -DLESSLOG_NO_METRICS.
  void set_metrics(const obs::WireMetrics* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Routes SWIM traffic (kPing / kPingAck / kPingReq) to the membership
  /// runtime colocated with this peer. Unset, such messages are dropped —
  /// an oracle-mode peer never receives them in the first place. The same
  /// (ctx, fn) raw-slot shape as Network::attach_raw: one indirect call,
  /// no std::function on the probe path.
  void set_membership_hook(void* ctx, Network::RawHandler fn) noexcept {
    membership_ctx_ = ctx;
    membership_fn_ = fn;
  }

  /// Message entry point (also called directly by tests).
  void handle(const Message& m);

  /// Section 5.2, the data-motion half of a graceful leave: pushes every
  /// inserted file to its post-departure holder (computed with this node
  /// marked dead), discards replicas, and clears the store. The caller
  /// broadcasts the status change and detaches afterwards. Only correct
  /// for ψ-named files (target = ψ(file), the paper's naming rule).
  void graceful_leave();

  /// The file's target root under the paper's naming rule r = ψ(f).
  [[nodiscard]] core::Pid target_of(core::FileId f) const noexcept;

  /// Requests served from the local store.
  [[nodiscard]] std::int64_t served() const noexcept { return served_; }
  /// Requests forwarded toward other peers.
  [[nodiscard]] std::int64_t forwarded() const noexcept { return forwarded_; }
  /// GETs refused with kBusy over the service budget. Cumulative across
  /// rejoins (a ledger cell, not a measurement-window counter).
  [[nodiscard]] std::int64_t busy_shed() const noexcept { return busy_shed_; }
  [[nodiscard]] const PeerConfig& config() const noexcept { return cfg_; }

  /// Measurement-window boundary for the closed-loop controller: zeroes
  /// the service counters and every copy's access count.
  void reset_window() noexcept;

  /// Autonomous REPLICATEFILE: picks this peer's locally hottest file (by
  /// access count since the last window reset, local knowledge only) and
  /// pushes one replica of it to the LessLog placement, remembering its
  /// own past placements so successive sheds walk the children list.
  /// Returns the placement, or nullopt when nothing can be shed.
  std::optional<core::Pid> shed_hottest();

 private:
  void on_get(const Message& m);
  /// Refills the service token bucket from simulated time and tries to
  /// take one token; false = over budget, shed this GET.
  [[nodiscard]] bool admit_get();
  /// kBusy back to the requester: same addressing as reply_get, but a
  /// distinct wire type so the client migrates instead of retrying here.
  void reply_busy(const Message& request);
  void on_insert(const Message& m);
  void on_create_replica(const Message& m);
  void on_update(const Message& m);
  void on_status(const Message& m);
  void on_file_push(const Message& m);
  void on_push_ack(const Message& m);
  void on_reclaim(const Message& m);
  /// Section 5.3: after learning of a crash, re-insert files whose holder
  /// in the crashed node's subtree was lost, pulling from this node's own
  /// inserted copies. Exactly one sibling holder pushes (deterministic
  /// designation), so recovery costs one message per lost copy.
  void recover_after_crash(core::Pid crashed,
                           const util::StatusWord& before);
  /// Reliable file transfer: pushes are acked (kFilePushAck) and
  /// retransmitted on timeout — a lost datagram must not lose a file's
  /// only authoritative copy during membership data motion.
  void push_file(core::FileId f, std::uint64_t version, core::Pid to);
  void transmit_push(std::uint64_t id);
  void reply_get(const Message& request, bool ok, std::uint64_t version);
  /// Next hop for a get toward target root `r` within this peer's subtree
  /// of that tree; nullopt = definitive local miss.
  [[nodiscard]] std::optional<core::Pid> next_hop(core::Pid r) const;

  // Hot-first member order: a forwarded get reads pid_/b_/view_, probes
  // store_'s index, then touches network_/metrics_ and one counter.
  // Laying those out contiguously keeps a hop through a random
  // (cache-cold) peer to the first line or two of the object; the cold
  // tail (reply sink, shed memory, in-flight pushes) never loads on the
  // forwarding path. The OracleView lives inline so oracle mode stays
  // allocation-free; view_ points at it unless a SwimView is installed.
  core::Pid pid_;
  int b_;
  util::MutableLivenessView* view_;
  util::OracleView oracle_;
  Network* network_;
  const obs::WireMetrics* metrics_ = nullptr;
  std::int64_t served_ = 0;
  std::int64_t forwarded_ = 0;
  /// Service-budget bucket: the budget>0 check and (when enabled) the
  /// token accounting run once per delivered GET, so the config sits in
  /// the warm section next to the counters it guards.
  PeerConfig cfg_;
  double busy_tokens_ = 0.0;
  double busy_last_refill_ = 0.0;
  std::int64_t busy_shed_ = 0;
  core::FileStore store_;
  ReplySink reply_sink_;
  /// Replica placements this peer has made, per file. A peer cannot know
  /// about copies created elsewhere (logless!), but it is the sole author
  /// of its own sheds, so tracking them walks the children list correctly.
  /// Deliberately still an unordered_map: touched once per shed decision
  /// (the controller's window cadence), never per delivered message.
  std::unordered_map<core::FileId, std::vector<core::Pid>> placed_;
  /// In-flight file pushes awaiting acks, keyed by request id. Push ids
  /// come from next_push_id_, strictly increasing per peer, so the
  /// sliding-window slot map replaces a hash map on the ack/timeout path.
  struct PendingPush {
    Message msg;
    int retries = 0;
    int generation = 0;
  };
  util::SeqWindow<PendingPush> pending_pushes_;
  std::uint64_t next_push_id_;
  /// Cold: SWIM traffic relay into the colocated membership runtime.
  void* membership_ctx_ = nullptr;
  Network::RawHandler membership_fn_ = nullptr;
};

}  // namespace lesslog::proto
