// Client-side request tracking: correlation ids, timeouts, retries,
// subtree migration on definitive misses, and latency accounting.
//
// The network is best-effort (messages can be dropped), so the client owns
// reliability: a get that hears nothing within the timeout is retried up
// to `max_retries` times; a *negative* reply triggers migration to the
// next subtree identifier (Section 4) before counting a fault.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lesslog/proto/peer.hpp"
#include "lesslog/util/seq_window.hpp"

namespace lesslog::proto {

struct ClientConfig {
  double timeout = 0.25;  ///< seconds before a retry
  int max_retries = 2;    ///< per (attempt, subtree) leg

  /// Throws std::invalid_argument on nonsense (timeout not strictly
  /// positive, negative max_retries). Called by the Client constructor.
  void validate() const;
};

struct GetResult {
  bool ok = false;
  std::uint64_t version = 0;
  double latency = 0.0;  ///< issue -> final reply (simulated seconds)
  int hops = 0;
  int retries = 0;
  int migrations = 0;
};

class Client {
 public:
  using GetCallback = std::function<void(const GetResult&)>;

  /// A client colocated with `home`; installs itself as the peer's reply
  /// sink.
  Client(Peer& home, Network& network, ClientConfig cfg = {});

  /// Issues GETFILE for `file` whose target root is `r`; `done` fires
  /// exactly once.
  void get(core::FileId file, core::Pid r, GetCallback done);

  /// Sends an insert of `file` to holder `at` (the caller has resolved
  /// FINDLIVENODE); `done(ok)` fires on ack or after retries expire.
  void insert(core::FileId file, core::Pid r, core::Pid at,
              std::function<void(bool)> done);

  [[nodiscard]] std::int64_t requests_issued() const noexcept {
    return issued_;
  }

  /// Points the reliability accounting at the swarm's pre-resolved metric
  /// cells (gets / retries / timeouts / migrations / faults / latency).
  /// Optional; compiled to nothing under -DLESSLOG_NO_METRICS.
  void set_metrics(const obs::WireMetrics* metrics) noexcept {
    metrics_ = metrics;
  }
  [[nodiscard]] std::int64_t faults() const noexcept { return faults_; }
  [[nodiscard]] const std::vector<double>& latencies() const noexcept {
    return latencies_;
  }

 private:
  struct PendingGet {
    core::FileId file;
    core::Pid target;
    GetCallback done;
    double issued_at = 0.0;
    int retries = 0;
    int migrations = 0;
    std::uint32_t subtree_attempt = 0;  ///< offset from home subtree id
    /// Increments on every transmission; timeouts armed for an older
    /// generation are stale and ignored (migration resets retries, so a
    /// retry counter alone cannot identify the current leg).
    int generation = 0;
  };
  struct PendingInsert {
    core::FileId file;
    core::Pid target;
    core::Pid at;
    std::function<void(bool)> done;
    int retries = 0;
  };

  void on_reply(const Message& m);
  void send_get(std::uint64_t id);
  void arm_get_timeout(std::uint64_t id, int generation);
  void send_insert(std::uint64_t id);
  /// Completes a pending get. `found` is the caller's already-resolved
  /// window slot for `id` (every caller has just looked it up — passing
  /// it through avoids a second find on the reply hot path).
  void finish_get(std::uint64_t id, PendingGet* found, bool ok,
                  std::uint64_t version, int hops);
  /// Entry PID for the current subtree attempt: this node's counterpart in
  /// the migrated subtree (nearest live proxy if the counterpart is dead).
  [[nodiscard]] std::optional<core::Pid> entry_for(const PendingGet& g) const;

  Peer* home_;
  Network* network_;
  ClientConfig cfg_;
  const obs::WireMetrics* metrics_ = nullptr;
  std::uint64_t next_id_;
  // Pending tables keyed by the strictly increasing request id: a
  // sliding-window slot map, so the per-reply/per-timeout correlation
  // lookup is a mask + compare instead of a hash-map walk.
  util::SeqWindow<PendingGet> gets_;
  util::SeqWindow<PendingInsert> inserts_;
  std::int64_t issued_ = 0;
  std::int64_t faults_ = 0;
  std::vector<double> latencies_;
};

}  // namespace lesslog::proto
