// Client-side request tracking: correlation ids, timeouts, retries,
// subtree migration on definitive misses, and latency accounting.
//
// The network is best-effort (messages can be dropped), so the client owns
// reliability: a get that hears nothing within the timeout is retried up
// to `max_retries` times; a *negative* reply triggers migration to the
// next subtree identifier (Section 4) before counting a fault.
//
// On top of that fixed-timer core sits an opt-in adaptive layer (every
// knob defaults off, leaving the wire schedule byte-identical):
//
//   * `adaptive` — retry timers from a Jacobson/Karn SRTT/RTTVAR estimator
//     instead of the fixed timeout, with exponential backoff and
//     deterministic per-(seed, request-id, leg) jitter on retries;
//   * `hedge_percentile` — once the first leg is slower than that
//     percentile of recent Karn-clean latencies, a correlation-id-guarded
//     second GET races down the next replica subtree; first answer wins,
//     the loser's reply is discarded without double-counting;
//   * kBusy replies (peer-side load shedding) migrate the request to the
//     next subtree after a capped exponential backoff instead of burning
//     the full timeout;
//   * `suspicion_routing` — entry-point selection consults the installed
//     liveness view's failure-detector suspicion (membership::SwimView),
//     skipping suspected-dead targets up front.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lesslog/proto/peer.hpp"
#include "lesslog/proto/rtt_estimator.hpp"
#include "lesslog/util/seq_window.hpp"

namespace lesslog::proto {

struct ClientConfig {
  double timeout = 0.25;  ///< seconds before a retry
  int max_retries = 2;    ///< per (attempt, subtree) leg

  // --- Adaptive reliability layer. Every default below keeps the client
  // byte-identical to the fixed-timer client: no adaptive timers, no
  // hedging, no suspicion routing, zero extra RNG draws.
  bool adaptive = false;  ///< SRTT/RTTVAR retry timers + backoff/jitter
  double rto_floor = 0.03;  ///< lower clamp on any adaptive delay (s)
  double rto_cap = 2.0;     ///< upper clamp; also the backoff ceiling (s)
  double backoff_base = 2.0;   ///< per-retry delay multiplier (>= 1)
  double retry_jitter = 0.1;   ///< +/- fraction on retry delays, in [0, 1)
  double hedge_percentile = 0.0;  ///< 0 = no hedging; else in [0.5, 1)
  double busy_backoff = 0.05;  ///< base migrate delay after a BUSY shed (s)
  bool suspicion_routing = false;  ///< skip suspected-dead entry targets
  std::uint64_t seed = 0;  ///< salts the deterministic retry jitter hash

  /// Throws std::invalid_argument on nonsense (timeout not strictly
  /// positive, negative max_retries, malformed adaptive-layer knobs).
  /// Called by the Client constructor.
  void validate() const;
};

struct GetResult {
  bool ok = false;
  std::uint64_t version = 0;
  double latency = 0.0;  ///< issue -> final reply (simulated seconds)
  int hops = 0;
  int retries = 0;
  int migrations = 0;
};

/// Plain counters for the reliability layer, maintained unconditionally
/// (unlike obs cells, which compile out under -DLESSLOG_NO_METRICS) so the
/// chaos audit can reconcile them in every build flavor. At quiescence two
/// exact identities hold per client: issued == ok + faults, and
/// hedges_launched == hedge_won + hedge_cancelled — every hedge leg is
/// resolved exactly once no matter how many replies the wire drops or
/// duplicates.
struct ReliabilityLedger {
  std::int64_t issued = 0;
  std::int64_t ok = 0;
  std::int64_t faults = 0;
  std::int64_t rtt_samples = 0;      ///< Karn-clean samples absorbed
  std::int64_t hedges_launched = 0;  ///< second legs actually sent
  std::int64_t hedge_won = 0;        ///< requests completed by the hedge leg
  std::int64_t hedge_cancelled = 0;  ///< hedge legs resolved by the other leg
  std::int64_t busy_received = 0;    ///< kBusy replies acted on
  std::int64_t busy_shed = 0;        ///< GETs refused (peer side; filled by
                                     ///< the swarm aggregate)

  ReliabilityLedger& operator+=(const ReliabilityLedger& o) noexcept {
    issued += o.issued;
    ok += o.ok;
    faults += o.faults;
    rtt_samples += o.rtt_samples;
    hedges_launched += o.hedges_launched;
    hedge_won += o.hedge_won;
    hedge_cancelled += o.hedge_cancelled;
    busy_received += o.busy_received;
    busy_shed += o.busy_shed;
    return *this;
  }
  friend bool operator==(const ReliabilityLedger&,
                         const ReliabilityLedger&) = default;
};

class Client {
 public:
  using GetCallback = std::function<void(const GetResult&)>;

  /// A client colocated with `home`; installs itself as the peer's reply
  /// sink.
  Client(Peer& home, Network& network, ClientConfig cfg = {});

  /// Issues GETFILE for `file` whose target root is `r`; `done` fires
  /// exactly once.
  void get(core::FileId file, core::Pid r, GetCallback done);

  /// Sends an insert of `file` to holder `at` (the caller has resolved
  /// FINDLIVENODE); `done(ok)` fires on ack or after retries expire.
  void insert(core::FileId file, core::Pid r, core::Pid at,
              std::function<void(bool)> done);

  [[nodiscard]] std::int64_t requests_issued() const noexcept {
    return issued_;
  }

  /// Points the reliability accounting at the swarm's pre-resolved metric
  /// cells (gets / retries / timeouts / migrations / faults / latency).
  /// Optional; compiled to nothing under -DLESSLOG_NO_METRICS.
  void set_metrics(const obs::WireMetrics* metrics) noexcept {
    metrics_ = metrics;
  }
  [[nodiscard]] std::int64_t faults() const noexcept { return faults_; }
  [[nodiscard]] const std::vector<double>& latencies() const noexcept {
    return latencies_;
  }

  /// This client's reliability counters (busy_shed left 0 — that side of
  /// the ledger lives on the peers; the swarm aggregate merges both).
  [[nodiscard]] ReliabilityLedger ledger() const noexcept;

  /// The Jacobson/Karn estimator state (tests and diagnostics).
  [[nodiscard]] const RttEstimator& estimator() const noexcept {
    return estimator_;
  }

 private:
  struct PendingGet {
    core::FileId file;
    core::Pid target;
    GetCallback done;
    double issued_at = 0.0;
    int retries = 0;
    int migrations = 0;
    std::uint32_t subtree_attempt = 0;  ///< offset from home subtree id
    /// Increments on every transmission; timeouts armed for an older
    /// generation are stale and ignored (migration resets retries, so a
    /// retry counter alone cannot identify the current leg).
    int generation = 0;
    int transmissions = 0;  ///< GETs actually sent (Karn: sample iff == 1)
    bool hedged = false;         ///< a hedge leg was launched
    bool hedge_resolved = false; ///< hedge answered (miss/shed) w/o winning
    std::uint32_t hedge_attempt = 0;  ///< subtree offset the hedge probes
    std::uint64_t hedge_id = 0;  ///< correlation id of the hedge leg
    int busy_bounces = 0;  ///< kBusy sheds since the last subtree wrap
    int busy_wraps = 0;    ///< completed wraps (capped at max_retries)
  };
  struct PendingInsert {
    core::FileId file;
    core::Pid target;
    core::Pid at;
    std::function<void(bool)> done;
    int retries = 0;
  };

  void on_reply(const Message& m);
  void send_get(std::uint64_t id);
  void arm_get_timeout(std::uint64_t id, int generation);
  void handle_get_timeout(std::uint64_t id, int generation);
  void send_insert(std::uint64_t id);
  /// Completes a pending get. `found` is the caller's already-resolved
  /// window slot for `id` (every caller has just looked it up — passing
  /// it through avoids a second find on the reply hot path). `via_hedge`
  /// attributes the completion to the hedge leg for the ledger.
  void finish_get(std::uint64_t id, PendingGet* found, bool ok,
                  std::uint64_t version, int hops, bool via_hedge);
  /// Advances a pending get to the next replica subtree (after a
  /// definitive miss, a kBusy shed, or an entry subtree with no live
  /// node). Adopts or skips an outstanding hedge leg that already covers
  /// the target subtree; finishes the request as a fault when the
  /// identifiers are exhausted — unless the walk was shed somewhere, in
  /// which case it wraps and revisits (a busy peer is loaded, not dead;
  /// each wrap consumes the sheds seen so far and the wrap count is
  /// capped, so termination is preserved). `delay > 0` defers the
  /// re-send (the BUSY migrate-with-backoff path).
  void migrate_get(std::uint64_t id, PendingGet* found, int hops,
                   double delay, bool reset_retries);
  /// Arms the one-shot hedge timer for a fresh request.
  void arm_hedge(std::uint64_t id);
  /// Sends the correlation-id-guarded second leg down the next subtree.
  void launch_hedge(std::uint64_t id, PendingGet& g);
  /// Entry PID for subtree attempt `attempt` of a get toward `target`:
  /// this node's counterpart in that subtree (nearest live proxy if the
  /// counterpart is dead), with failure-detector suspects masked out
  /// first when suspicion routing is on.
  [[nodiscard]] std::optional<core::Pid> entry_at(
      core::Pid target, std::uint32_t attempt) const;
  /// Backoff delay before re-routing a request a peer shed with kBusy.
  [[nodiscard]] double busy_delay(const PendingGet& g) const noexcept;
  /// Deterministic uniform [0,1) hash of (seed, request id, leg) — jitter
  /// without consuming any shared RNG stream.
  [[nodiscard]] double leg_jitter(std::uint64_t id,
                                  int generation) const noexcept;
  /// True when any knob wants RTT samples collected.
  [[nodiscard]] bool reliability_active() const noexcept {
    return cfg_.adaptive || cfg_.hedge_percentile > 0.0;
  }

  Peer* home_;
  Network* network_;
  ClientConfig cfg_;
  const obs::WireMetrics* metrics_ = nullptr;
  std::uint64_t next_id_;
  // Pending tables keyed by the strictly increasing request id: a
  // sliding-window slot map, so the per-reply/per-timeout correlation
  // lookup is a mask + compare instead of a hash-map walk.
  util::SeqWindow<PendingGet> gets_;
  util::SeqWindow<PendingInsert> inserts_;
  /// Hedge correlation id -> primary request id. A reply that misses
  /// `gets_` but hits this table belongs to a hedge leg; one that misses
  /// both is a late duplicate and is dropped — the guard that makes the
  /// losing leg's reply a no-op.
  util::SeqWindow<std::uint64_t> hedge_ids_;
  std::int64_t issued_ = 0;
  std::int64_t faults_ = 0;
  std::vector<double> latencies_;
  RttEstimator estimator_;
  // Reliability ledger cells (plain ints: audited in every build flavor).
  std::int64_t rtt_samples_ = 0;
  std::int64_t hedges_launched_ = 0;
  std::int64_t hedge_won_ = 0;
  std::int64_t hedge_cancelled_ = 0;
  std::int64_t busy_received_ = 0;
};

}  // namespace lesslog::proto
