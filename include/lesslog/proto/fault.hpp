// Composable per-link fault model for the simulated network.
//
// A FaultPlan is a seed plus a list of time-windowed rules; Network
// installs it and schedules each rule's activation/deactivation through
// the event engine, so a run is bit-reproducible from (swarm seed, plan).
// The injector draws from its own Rng — the engine's stream is untouched,
// and a network with no plan installed takes a branch-free fast path, so
// fault injection is zero-cost when unused.
//
// Rule kinds (full semantics in docs/ROBUSTNESS.md):
//   * kBurstLoss  — Gilbert–Elliott two-state loss chain, one chain per
//     directed link with its own RNG stream seeded from (plan seed, rule,
//     activation generation, link), so a link's loss pattern is a pure
//     function of its own datagram count — invariant to shard layout;
//   * kDuplicate  — per-datagram duplication: a second copy travels with
//     its own jitter/delay draw;
//   * kDelaySpike — per-datagram extra one-way delay, inducing reordering
//     against messages sent later;
//   * kCorrupt    — per-datagram payload corruption: the wire image is
//     scrambled and its type tag invalidated, so the receiver's decode
//     rejects it (the corrupted datagram still occupies the wire);
//   * kPartition  — a PID-set split: traffic between the group and its
//     complement is dropped from `start` until the `stop` heal.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "lesslog/core/ids.hpp"
#include "lesslog/proto/message.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::proto {

enum class FaultKind : std::uint8_t {
  kBurstLoss,
  kDuplicate,
  kDelaySpike,
  kCorrupt,
  kPartition,
};

[[nodiscard]] const char* fault_kind_name(FaultKind k) noexcept;

/// One time-windowed fault rule. Fields unused by a given kind keep their
/// defaults; validate() rejects nonsense (probabilities outside [0, 1],
/// stop <= start, empty partition groups, ...).
struct FaultRule {
  FaultKind kind = FaultKind::kBurstLoss;
  double start = 0.0;  ///< activation time (engine time, seconds)
  double stop = std::numeric_limits<double>::infinity();  ///< heal time
  double probability = 0.0;  ///< duplicate / delay-spike / corrupt chance

  // Gilbert–Elliott parameters (kBurstLoss). The chain starts Good; each
  // datagram on a link is lost with the current state's loss rate, then
  // the state advances.
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;

  double extra_delay = 0.0;  ///< kDelaySpike magnitude, seconds

  /// kPartition: PIDs on side A (the complement is side B). Sorted by
  /// the injector at activation.
  std::vector<std::uint32_t> group;

  [[nodiscard]] static FaultRule burst_loss(double start, double stop,
                                            double p_good_to_bad,
                                            double p_bad_to_good,
                                            double loss_bad,
                                            double loss_good = 0.0);
  [[nodiscard]] static FaultRule duplicate(double start, double stop,
                                           double probability);
  [[nodiscard]] static FaultRule delay_spike(double start, double stop,
                                             double probability,
                                             double extra_delay);
  [[nodiscard]] static FaultRule corrupt(double start, double stop,
                                         double probability);
  [[nodiscard]] static FaultRule partition(double start, double stop,
                                           std::vector<std::uint32_t> group);

  friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

/// A seed-reproducible fault schedule. Installing the same plan into the
/// same swarm replays the exact same fault decisions.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }

  /// Throws std::invalid_argument naming the first malformed rule.
  void validate() const;
};

/// Injected-fault accounting, kept by the injector (the network's own
/// sent/dropped/delivered counters stay fault-agnostic). At quiescence:
///   sent + duplicated == delivered + dropped + burst_dropped
///                        + partition_dropped + undeliverable + corrupted
/// — the reconciliation invariant chaos::Audit checks.
struct FaultStats {
  std::int64_t burst_dropped = 0;
  std::int64_t partition_dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t corrupted = 0;  ///< corrupted at send (rejected at decode)
  std::int64_t delay_spikes = 0;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// The runtime half of a FaultPlan: owns the rule windows, the per-link
/// Gilbert–Elliott states, and a private Rng. Network consults it per
/// datagram via the primitives below; rule windows are toggled by events
/// the network schedules at install time.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Rule-window toggles (scheduled through the engine by
  /// Network::install_fault_plan).
  void activate(std::size_t rule_index);
  void deactivate(std::size_t rule_index);

  // -- Per-datagram primitives, in pipeline order ------------------------
  /// True when any active partition separates `from` and `to`.
  [[nodiscard]] bool partition_blocks(core::Pid from, core::Pid to);
  /// True when the datagram should carry a duplicate copy.
  [[nodiscard]] bool duplicate();
  /// Advances the (from, to) link's Gilbert–Elliott chains; true = lost.
  [[nodiscard]] bool burst_drop(core::Pid from, core::Pid to);
  /// Maybe scrambles `wire` (invalid type tag + one random byte); true
  /// when corrupted.
  [[nodiscard]] bool corrupt(WireBuffer& wire);
  /// Extra one-way delay for this copy (0.0 most of the time).
  [[nodiscard]] double delay_spike();
  /// Jitter draw for duplicate copies, from the injector's own stream.
  [[nodiscard]] double jitter(double magnitude);

  /// True while any rule window is open (the audit's "wire is clean"
  /// precondition is !any_active()).
  [[nodiscard]] bool any_active() const noexcept { return active_count_ > 0; }
  [[nodiscard]] bool partition_active() const noexcept;
  /// Both PIDs reachable from each other under the active partitions.
  [[nodiscard]] bool reachable(core::Pid a, core::Pid b) const;

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  [[nodiscard]] bool in_group(const std::vector<std::uint32_t>& group,
                              std::uint32_t pid) const noexcept;

  /// One directed link's Gilbert–Elliott chain: its own Rng stream plus
  /// the current state (true = Bad; chains start Good). Giving every link
  /// a private stream — seeded from (plan seed, rule, activation
  /// generation, link key) alone — makes each chain a pure function of
  /// the datagram count on that link, independent of how traffic on
  /// *other* links interleaves. That is what keeps lossy runs
  /// shard-count-invariant: shard layout permutes the global datagram
  /// order but never a single link's order.
  struct LinkChain {
    util::Rng rng;
    bool bad = false;
  };

  /// Deterministic seed for one link's chain. Folding in the rule's
  /// activation generation makes a healed-and-reopened window start
  /// fresh chains with fresh streams instead of replaying the previous
  /// window's draws.
  [[nodiscard]] std::uint64_t chain_seed(std::size_t rule_index,
                                         std::uint64_t key) const noexcept;

  FaultPlan plan_;
  util::Rng rng_;
  std::vector<bool> active_;  ///< parallel to plan_.rules
  std::size_t active_count_ = 0;
  /// Gilbert–Elliott chain states: one map per rule (indexed like
  /// plan_.rules), keyed by the directed link (from << 30 | to; PIDs fit
  /// kMaxIdBits = 30 bits). Deliberately still an unordered_map on the
  /// otherwise map-free per-datagram path: it is only consulted while a
  /// burst-loss rule is *active* (the chaos soak; the clean fast path
  /// never reaches the injector), the key space is quadratic in the PID
  /// space so a flat table is infeasible, and only links that carried
  /// traffic during a burst ever materialize a chain.
  std::vector<std::unordered_map<std::uint64_t, LinkChain>> link_state_;
  /// Per-rule activation generation (how many times the window opened);
  /// part of every chain seed.
  std::vector<std::uint32_t> generation_;
  FaultStats stats_;
};

}  // namespace lesslog::proto
