// PID -> shard assignment policies for the sharded swarm.
//
// The mapping seam behind ShardRouter / ShardedSwarm. Two policies:
//
//   * kRange — the original contiguous partition: PID p lives on shard
//     p / ceil(2^m / S). Shards own PID intervals, which is what makes a
//     clustered geographic layout give every shard its own region (and
//     therefore a positive pairwise distance floor for the adaptive
//     lookahead) — but tree edges mostly cross shards.
//
//   * kSubtree — the locality policy: PID p lives on shard p mod S.
//     LessLog's virtual tree is suffix-structured: the subtree rooted at
//     a VID with i leading one-bits is exactly the set of VIDs sharing
//     its low m-i bits (the top i bits run free). The physical tree of
//     any root r is the XOR image vid ^ comp(r), which preserves bit
//     positions — so for a power-of-two S = 2^s, *every* subtree of at
//     most 2^(m-s) nodes shares one value of (p mod S) and lives whole
//     on one shard, in every physical tree simultaneously. Only the
//     S - 1 spine edges near the root (a child whose VID has at least
//     m - s leading ones) can cross shards, versus nearly all edges
//     under the range split. That is the cross-shard-traffic
//     optimization; the trade-off is that shards interleave the whole
//     ID space, so a geographic layout gives them no distance floor
//     (the adaptive lookahead falls back to the base latency).
//
// Both policies are total over [0, 2^m) and depend only on (m, S), so a
// run's outcome is a pure function of (seed, S, kind).
#pragma once

#include <cstdint>

#include "lesslog/core/ids.hpp"
#include "lesslog/util/bits.hpp"

namespace lesslog::proto {

class ShardMap {
 public:
  enum class Kind : std::uint8_t {
    kRange,    ///< p / ceil(2^m / S): contiguous PID intervals
    kSubtree,  ///< p mod S: XOR-tree subtrees stay shard-local
  };

  /// A single-shard identity map (everything on shard 0).
  ShardMap() : ShardMap(Kind::kRange, /*m=*/1, /*shards=*/1) {}

  /// Throws nothing; preconditions (1 <= shards <= 2^m) are the
  /// ShardedSwarm constructor's to validate.
  ShardMap(Kind kind, int m, std::size_t shards)
      : kind_(kind),
        shards_(static_cast<std::uint32_t>(shards)),
        block_((util::space_size(m) + static_cast<std::uint32_t>(shards) -
                1u) /
               static_cast<std::uint32_t>(shards)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  [[nodiscard]] std::size_t shard_of(core::Pid p) const noexcept {
    return kind_ == Kind::kRange ? p.value() / block_ : p.value() % shards_;
  }

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  Kind kind_;
  std::uint32_t shards_;
  std::uint32_t block_;  ///< kRange partition block, ceil(2^m / S)
};

[[nodiscard]] constexpr const char* shard_map_name(
    ShardMap::Kind k) noexcept {
  return k == ShardMap::Kind::kRange ? "range" : "subtree";
}

}  // namespace lesslog::proto
