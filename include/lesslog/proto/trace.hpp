// Message tracing: records every datagram a Swarm's peers receive, with
// timestamps, as structured records — filterable, printable, and
// JSONL-exportable. The protocol_trace example renders with it; tests use
// it to assert exact message sequences.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lesslog/proto/swarm.hpp"

namespace lesslog::proto {

struct TraceRecord {
  double time = 0.0;  ///< delivery time (simulated seconds)
  Message message;
};

class Trace {
 public:
  /// Starts recording every delivery in `swarm` by wrapping each attached
  /// peer's network handler. Peers that join later are wrapped when
  /// rearm() is called. The Trace must outlive the recording swarm or be
  /// detached by destroying the swarm first (handlers keep a pointer).
  explicit Trace(Swarm& swarm);

  /// Re-wraps handlers after membership changes added peers.
  void rearm();

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() noexcept { records_.clear(); }

  /// Records of one type, in order.
  [[nodiscard]] std::vector<TraceRecord> of_type(MsgType t) const;

  /// Count of records of one type.
  [[nodiscard]] std::size_t count(MsgType t) const;

  /// Human-readable line per record ("t=0.010s GET P(8) -> P(0) ...").
  [[nodiscard]] std::string render() const;

  /// One JSON object per line (numeric fields; type as string tag).
  void write_jsonl(std::ostream& out) const;

 private:
  Swarm* swarm_;
  std::vector<TraceRecord> records_;
};

}  // namespace lesslog::proto
