// Message tracing: records every datagram a Swarm's peers receive, with
// timestamps, as structured records — filterable, printable, and
// JSONL-exportable. The protocol_trace example renders with it; tests use
// it to assert exact message sequences.
//
// Trace is an obs::DeliverySink: it registers with the swarm's network
// (the single delivery funnel), so peers that join after construction are
// recorded automatically — there is nothing to re-arm and no handler
// wrapping involved.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lesslog/obs/sink.hpp"
#include "lesslog/proto/swarm.hpp"

namespace lesslog::proto {

struct TraceRecord {
  double time = 0.0;  ///< delivery time (simulated seconds)
  Message message;
};

class Trace final : public obs::DeliverySink {
 public:
  /// Starts recording every delivery in `swarm`. Destroy the Trace before
  /// the Swarm (it unregisters itself from the swarm's sink list) —
  /// declaring it after the Swarm in the same scope does exactly that.
  explicit Trace(Swarm& swarm);
  ~Trace() override;

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// DeliverySink: appends one record per delivered datagram.
  void on_deliver(double time, const Message& m) override;

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() noexcept { records_.clear(); }

  /// Records of one type, in order.
  [[nodiscard]] std::vector<TraceRecord> of_type(MsgType t) const;

  /// Count of records of one type.
  [[nodiscard]] std::size_t count(MsgType t) const;

  /// Human-readable line per record ("t=0.010s GET P(8) -> P(0) ...").
  [[nodiscard]] std::string render() const;

  /// One JSON object per line (numeric fields; type as string tag).
  void write_jsonl(std::ostream& out) const;

 private:
  Swarm* swarm_;
  std::vector<TraceRecord> records_;
};

}  // namespace lesslog::proto
