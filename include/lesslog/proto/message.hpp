// Wire-level protocol messages.
//
// The core library implements LessLog's decisions as pure functions; this
// layer makes the *protocol* concrete: typed messages exchanged between
// peers over a simulated network, with a compact binary wire format
// (encode/decode are real and round-trip tested — a deployment over UDP
// or TCP would ship these bytes).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "lesslog/core/file_store.hpp"
#include "lesslog/core/ids.hpp"

namespace lesslog::proto {

enum class MsgType : std::uint8_t {
  kGetRequest = 1,    ///< climb the lookup tree toward a copy
  kGetReply = 2,      ///< copy found (or definitive miss) -> requester
  kInsertRequest = 3, ///< store an original copy at the target
  kInsertAck = 4,
  kCreateReplica = 5, ///< REPLICATEFILE's CREATEFILE message
  kUpdatePush = 6,    ///< top-down version push along children lists
  kStatusAnnounce = 7, ///< join/leave/fail registration broadcast
  kFilePush = 8,       ///< move/copy an inserted file to its new holder
  kReclaim = 9,        ///< joiner asks holders to return its files (5.1)
  kFilePushAck = 10,   ///< receipt for a kFilePush (pushes are retried)
  // SWIM failure detection (membership library). All three carry one
  // piggybacked gossip update packed into the file/version fields.
  kPing = 11,          ///< direct probe
  kPingAck = 12,       ///< probe answer (direct or relayed by a proxy)
  kPingReq = 13,       ///< indirect probe through a proxy (requester=origin)
  kBusy = 14           ///< peer over its service budget -> requester migrates
};

/// One protocol message. Fields unused by a given type are zero; `ok`
/// doubles as the live/dead flag of a status announce.
struct Message {
  std::uint64_t request_id = 0;  ///< correlation id (client-assigned)
  MsgType type = MsgType::kGetRequest;
  core::Pid from{};      ///< immediate sender
  core::Pid to{};        ///< immediate receiver
  core::Pid requester{}; ///< originating client node (for replies)
  core::Pid subject{};   ///< announced node (status) / target root (routing)
  core::FileId file{};
  std::uint64_t version = 0;
  std::uint8_t hop_count = 0;
  bool ok = false;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Serialized size of every message (fixed-width format), in bytes.
inline constexpr std::size_t kWireSize = 8 + 1 + 4 * 4 + 8 + 8 + 1 + 1;

/// A message's exact wire image. The simulated network carries one of
/// these inline inside its delivery event, so the steady-state send →
/// deliver path never touches the heap.
using WireBuffer = std::array<std::uint8_t, kWireSize>;

/// Encodes to the fixed-width little-endian wire format into a caller-
/// owned buffer — the canonical serializer.
void encode_into(const Message& m, WireBuffer& out) noexcept;

/// Decodes a wire buffer; nullopt on wrong size or invalid type tag.
/// Accepts any contiguous byte range (WireBuffer, vector, ...).
[[nodiscard]] std::optional<Message> decode(
    std::span<const std::uint8_t> bytes);

/// Human-readable tag for traces ("GET", "REPLY", ...). Inline so
/// header-only consumers (the obs layer names its per-type counters with
/// it) need no link dependency on the proto library.
[[nodiscard]] inline const char* type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetRequest: return "GET";
    case MsgType::kGetReply: return "REPLY";
    case MsgType::kInsertRequest: return "INSERT";
    case MsgType::kInsertAck: return "INS_ACK";
    case MsgType::kCreateReplica: return "CREATE";
    case MsgType::kUpdatePush: return "UPDATE";
    case MsgType::kStatusAnnounce: return "STATUS";
    case MsgType::kFilePush: return "PUSH";
    case MsgType::kReclaim: return "RECLAIM";
    case MsgType::kFilePushAck: return "PUSH_ACK";
    case MsgType::kPing: return "PING";
    case MsgType::kPingAck: return "PING_ACK";
    case MsgType::kPingReq: return "PING_REQ";
    case MsgType::kBusy: return "BUSY";
  }
  return "???";
}

}  // namespace lesslog::proto
