// ShardedSwarm — the Swarm's deployment model on a sharded engine.
//
// Peers are partitioned across S shards by a ShardMap policy (contiguous
// PID ranges, or the XOR-subtree locality map — see shard_map.hpp). Each
// shard owns a full vertical slice: its own sim::Engine (independent RNG
// stream), Network, obs::Registry with the standard WireMetrics catalog,
// and MetricsSink. Intra-shard traffic takes the exact serial Network
// path; a datagram whose destination lives on another shard is
// intercepted by the network's forward hook *after* the sender's
// latency/fault pipeline ran, mailboxed in the ShardRouter, and
// scheduled into the destination shard's queue at the next window
// barrier (see sim::ShardedEngine for why the conservative window makes
// that timestamp still in the destination's future).
//
// The cross-shard lookahead is adaptive and per-shard-pair: the
// constructor computes L(i, j) = base_latency + latency_per_unit * a
// conservative lower bound on the distance between shard i's and shard
// j's coordinate regions (a coarse occupancy grid over the geographic
// placement; just base_latency without geography) and installs the
// matrix into the engine. A clustered geography with range sharding
// therefore runs wider windows than the global base-latency bound; it
// also makes base_latency == 0 schedulable when geography alone keeps
// every pairwise floor positive (the constructor rejects only the
// genuinely-unschedulable zero-floor case).
//
// Determinism: shard execution is sequential within a window, barriers
// are full synchronizations, and mailboxes drain in fixed order — so a
// run is a pure function of (seed, S, map). With S = 1 no hook is
// installed and construction mirrors proto::Swarm field for field, so
// results are byte-identical to the serial swarm.
//
// Feature parity: the sharded swarm carries the Swarm's data-plane and
// membership API (insert / get / update / join / depart / crash /
// restart) plus the serial swarm's replicate() helper, the closed-loop
// auto-replication controller (per-shard ticks over shard-local peers),
// and metrics sampling (one obs::Sampler per shard; series and
// snapshots merge index-for-index across the shards' identically-shaped
// registries).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "lesslog/core/replication.hpp"
#include "lesslog/obs/sampler.hpp"
#include "lesslog/obs/sink.hpp"
#include "lesslog/proto/client.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/proto/peer.hpp"
#include "lesslog/proto/shard_map.hpp"
#include "lesslog/proto/shard_router.hpp"
#include "lesslog/sim/sharded_engine.hpp"

namespace lesslog::proto {

class ShardedSwarm {
 public:
  struct Config {
    int m = 8;
    int b = 0;
    std::uint32_t nodes = 0;  ///< live PIDs [0, nodes)
    std::uint64_t seed = 1;
    std::size_t shards = 1;
    ShardMap::Kind shard_map = ShardMap::Kind::kRange;
    NetworkConfig net;
    ClientConfig client;
    PeerConfig peer;
    /// Geographic latency model applied to every shard's network (slots
    /// defaulted to 2^m when 0). Also feeds the pairwise lookahead
    /// floors.
    std::optional<Geography> geo;
  };

  /// Throws std::invalid_argument when shards exceeds the ID space, or
  /// when shards > 1 and the pairwise cross-shard latency floor is not
  /// strictly positive for every pair (base_latency == 0 with no
  /// geographic separation between shard regions) — the adaptive
  /// lookahead has no conservative window to schedule then.
  explicit ShardedSwarm(Config cfg);

  // The forward/drain hooks capture `this`; the object is pinned.
  ShardedSwarm(const ShardedSwarm&) = delete;
  ShardedSwarm& operator=(const ShardedSwarm&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] double lookahead() const noexcept {
    return engines_.lookahead();
  }
  /// The installed cross-shard latency lower bound from shard i to j.
  [[nodiscard]] double pair_lookahead(std::size_t i,
                                      std::size_t j) const noexcept {
    return engines_.pair_lookahead(i, j);
  }
  [[nodiscard]] const ShardMap& map() const noexcept {
    return router_.map();
  }
  [[nodiscard]] std::size_t shard_of(core::Pid p) const noexcept {
    return router_.shard_of(p);
  }
  [[nodiscard]] sim::Engine& engine(std::size_t s) noexcept {
    return engines_.shard(s);
  }
  /// Latest time any shard executed an event — unlike the shard clocks
  /// (which settle() leaves on a layout-dependent window edge), this is
  /// determined by the executed event set alone. The SWIM chaos driver
  /// anchors its epoch timeline here so the anchor is identical at any
  /// shard count.
  [[nodiscard]] double quiesce_time() const noexcept {
    return engines_.quiesce_time();
  }
  [[nodiscard]] Network& network(std::size_t s) noexcept {
    return shards_[s]->network;
  }
  [[nodiscard]] const obs::WireMetrics& metrics(std::size_t s) const {
    return shards_[s]->metrics;
  }
  [[nodiscard]] Peer& peer(core::Pid p) { return *peers_[p.value()]; }
  [[nodiscard]] Client& client(core::Pid p) { return *clients_[p.value()]; }
  [[nodiscard]] const util::StatusWord& status() const noexcept {
    return status_.read();
  }
  [[nodiscard]] int width() const noexcept { return cfg_.m; }

  /// Runs every shard to quiescence (windowed-parallel for S > 1, the
  /// plain serial event loop for S = 1). Returns events executed. On
  /// return all shard clocks agree, so control-plane operations issued
  /// between settles never schedule into another shard's past.
  std::int64_t settle();

  /// Runs every event strictly before simulated time `t`, then aligns
  /// every shard's clock at exactly `t` (sim::ShardedEngine::
  /// run_until_windows). This is the sharded chaos driver's seam: it
  /// applies membership ops and workload arrivals at deterministic
  /// top-level points between segments.
  std::int64_t run_until(double t);

  // -- Data plane (same semantics as proto::Swarm) -----------------------

  void insert(core::FileId file, core::Pid r, core::Pid issuer);
  core::FileId insert_named(std::uint64_t key, core::Pid issuer);
  void get(core::FileId file, core::Pid r, core::Pid at,
           Client::GetCallback done = nullptr);
  void update(core::FileId file, core::Pid r, std::uint64_t version,
              core::Pid issuer);

  /// Issues REPLICATEFILE at overloaded holder `overloaded` (same
  /// semantics as proto::Swarm::replicate): the placement is computed
  /// from the holder's own status word, drawing randomness from the
  /// holder's *shard* engine, and kCreateReplica rides the holder's
  /// shard network. Call between settles (top level).
  std::optional<core::Pid> replicate(core::FileId file, core::Pid r,
                                     core::Pid overloaded,
                                     const core::HoldsCopyFn& holds);

  // -- Membership (same semantics as proto::Swarm) -----------------------

  core::Pid join(std::optional<core::Pid> requested = std::nullopt);
  void depart(core::Pid p);
  void crash(core::Pid p);
  void restart(core::Pid p);
  void reannounce();
  /// SWIM-mode failure: go dark without a broadcast; the failure
  /// detector closes the loop (see Swarm::crash_unannounced).
  void crash_unannounced(core::Pid p);
  /// TEST-ONLY: vanish without a failure announcement (see Swarm).
  void crash_silent(core::Pid p);

  // -- Closed-loop replication (same semantics as proto::Swarm) ----------

  /// The serial swarm's autonomous overload controller, sharded: every
  /// `window` seconds each shard's engine runs one tick over the peers
  /// that live on that shard (shard-local counters, stores, and RNG — no
  /// cross-shard reads during windows, so the parallel run stays
  /// race-free and deterministic). With S = 1 the single tick scans all
  /// peers in PID order, matching the serial controller event for event.
  void enable_auto_replication(double capacity, double window,
                               double stop_at,
                               double removal_threshold = 0.0);

  /// Replicas created / removed by the closed loop so far (summed over
  /// shards; read at quiescence).
  [[nodiscard]] std::int64_t auto_replicas() const noexcept;
  [[nodiscard]] std::int64_t auto_removals() const noexcept;

  // -- Aggregates --------------------------------------------------------

  /// Client stats across all peers, in PID order (shard-independent).
  [[nodiscard]] std::int64_t total_faults() const;
  [[nodiscard]] std::vector<double> all_latencies() const;

  /// Merged reliability ledger: every client's counters plus every peer's
  /// busy_shed (same surface as Swarm::reliability_ledger, summed over
  /// shards).
  [[nodiscard]] ReliabilityLedger reliability_ledger() const;

  /// Network counters summed over shards. Cross-shard datagrams are
  /// counted once: sent on the source shard, delivered (or lost) on the
  /// destination shard.
  [[nodiscard]] std::int64_t messages_sent() const noexcept;
  [[nodiscard]] std::int64_t bytes_sent() const noexcept;
  [[nodiscard]] std::int64_t delivered() const noexcept;
  [[nodiscard]] std::int64_t undeliverable() const noexcept;
  [[nodiscard]] std::int64_t dropped() const noexcept;
  [[nodiscard]] std::int64_t corrupted() const noexcept;

  /// Fraction of forward-hook-inspected datagrams that crossed a shard
  /// boundary: cross / (cross + intra) over the per-shard WireMetrics
  /// counters. 0.0 for S = 1 (no hook) and under LESSLOG_NO_METRICS.
  [[nodiscard]] double cross_shard_fraction() const noexcept;

  /// Swarm-wide metric snapshot: the S per-shard registries share one
  /// registration catalog, so their snapshots merge index-for-index
  /// (obs::Snapshot::merge_from).
  [[nodiscard]] obs::Snapshot metrics_snapshot(double time = 0.0) const;

  // -- Observability (same semantics as proto::Swarm) --------------------

  /// Samples every shard's registry each `interval` simulated seconds
  /// until `stop_at` (one obs::Sampler per shard engine, ticking at the
  /// same simulated times). Derived gauges are refreshed shard-locally:
  /// queue_depth is the shard's own queue (merged: fleet total),
  /// live_peers is set by shard 0 from ground truth, and max_served is
  /// the shard's own hottest peer (merged: sum of per-shard maxima — an
  /// upper bound on the global max for S > 1, exact for S = 1).
  void enable_metrics_sampling(double interval, double stop_at);

  /// The swarm-wide sampled series: sample k of every shard merged
  /// index-for-index (rebuilt on call; read at quiescence). Empty until
  /// enable_metrics_sampling ran. With S = 1 this is byte-identical to
  /// the serial swarm's series.
  [[nodiscard]] const obs::TimeSeries& metrics_series();

 private:
  /// One shard's vertical slice. Registration order inside `registry`
  /// matches every other shard's, which is what makes snapshots merge.
  struct Shard {
    Network network;
    obs::Registry registry;
    obs::WireMetrics metrics;
    obs::MetricsSink sink;
    Shard(sim::Engine& engine, const NetworkConfig& net)
        : network(engine, net), metrics(registry), sink(metrics) {}
  };

  /// Everything the constructor derives before engines exist: the map,
  /// the normalized geography, and the pairwise lookahead matrix (whose
  /// minimum seeds the engine; computing it throws the precise
  /// unschedulable-config rejection).
  struct Plan {
    ShardMap map;
    std::optional<Geography> geo;
    std::vector<double> pair;  ///< S x S row-major L(i, j)
    double floor = 0.0;        ///< min off-diagonal entry
  };
  [[nodiscard]] static Plan make_plan(const Config& cfg);
  ShardedSwarm(Config cfg, Plan plan);

  [[nodiscard]] Shard& home(core::Pid p) {
    return *shards_[router_.shard_of(p)];
  }
  void make_peer(core::Pid p, util::CowStatus view);
  void broadcast_status(core::Pid about, bool live);
  void auto_replication_tick(std::size_t s, double capacity, double window,
                             double stop_at, double removal_threshold);

  Config cfg_;
  /// Ground-truth liveness as a copy-on-write handle (see Swarm::status_).
  util::CowStatus status_;
  sim::ShardedEngine engines_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Per-shard controller tallies: cell s is written only by shard s's
  /// worker (inside its tick), summed at quiescence.
  std::vector<std::int64_t> auto_replicas_by_shard_;
  std::vector<std::int64_t> auto_removals_by_shard_;
  std::vector<std::unique_ptr<obs::Sampler>> samplers_;
  obs::TimeSeries merged_series_;  ///< metrics_series() scratch
};

}  // namespace lesslog::proto
