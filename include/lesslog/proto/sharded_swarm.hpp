// ShardedSwarm — the Swarm's deployment model on a sharded engine.
//
// Peers are partitioned across S shards by PID range (PID p lives on
// shard p / block). Each shard owns a full vertical slice: its own
// sim::Engine (independent RNG stream), Network, obs::Registry with the
// standard WireMetrics catalog, and MetricsSink. Intra-shard traffic
// takes the exact serial Network path; a datagram whose destination
// lives on another shard is intercepted by the network's forward hook
// *after* the sender's latency/fault pipeline ran, mailboxed in the
// ShardRouter, and scheduled into the destination shard's queue at the
// next window barrier (see sim::ShardedEngine for why the conservative
// window makes that timestamp still in the destination's future).
//
// Determinism: shard execution is sequential within a window, barriers
// are full synchronizations, and mailboxes drain in fixed order — so a
// run is a pure function of (seed, S). With S = 1 no hook is installed
// and construction mirrors proto::Swarm field for field, so results are
// byte-identical to the serial swarm.
//
// The sharded swarm carries the Swarm's data-plane and membership API
// (insert / get / update / join / depart / crash / restart). The
// closed-loop controller, sampler, and replicate() helper remain
// serial-swarm-only features.
#pragma once

#include <memory>
#include <vector>

#include "lesslog/obs/sink.hpp"
#include "lesslog/proto/client.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/proto/peer.hpp"
#include "lesslog/proto/shard_router.hpp"
#include "lesslog/sim/sharded_engine.hpp"

namespace lesslog::proto {

class ShardedSwarm {
 public:
  struct Config {
    int m = 8;
    int b = 0;
    std::uint32_t nodes = 0;  ///< live PIDs [0, nodes)
    std::uint64_t seed = 1;
    std::size_t shards = 1;
    NetworkConfig net;
    ClientConfig client;
  };

  /// Throws std::invalid_argument when shards exceeds the ID space or
  /// when shards > 1 with a zero base latency (no conservative lookahead).
  explicit ShardedSwarm(Config cfg);

  // The forward/drain hooks capture `this`; the object is pinned.
  ShardedSwarm(const ShardedSwarm&) = delete;
  ShardedSwarm& operator=(const ShardedSwarm&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] double lookahead() const noexcept {
    return engines_.lookahead();
  }
  [[nodiscard]] std::size_t shard_of(core::Pid p) const noexcept {
    return router_.shard_of(p);
  }
  [[nodiscard]] sim::Engine& engine(std::size_t s) noexcept {
    return engines_.shard(s);
  }
  [[nodiscard]] Network& network(std::size_t s) noexcept {
    return shards_[s]->network;
  }
  [[nodiscard]] Peer& peer(core::Pid p) { return *peers_[p.value()]; }
  [[nodiscard]] Client& client(core::Pid p) { return *clients_[p.value()]; }
  [[nodiscard]] const util::StatusWord& status() const noexcept {
    return status_;
  }
  [[nodiscard]] int width() const noexcept { return cfg_.m; }

  /// Runs every shard to quiescence (windowed-parallel for S > 1, the
  /// plain serial event loop for S = 1). Returns events executed. On
  /// return all shard clocks agree, so control-plane operations issued
  /// between settles never schedule into another shard's past.
  std::int64_t settle();

  // -- Data plane (same semantics as proto::Swarm) -----------------------

  void insert(core::FileId file, core::Pid r, core::Pid issuer);
  core::FileId insert_named(std::uint64_t key, core::Pid issuer);
  void get(core::FileId file, core::Pid r, core::Pid at,
           Client::GetCallback done = nullptr);
  void update(core::FileId file, core::Pid r, std::uint64_t version,
              core::Pid issuer);

  // -- Membership (same semantics as proto::Swarm) -----------------------

  core::Pid join(std::optional<core::Pid> requested = std::nullopt);
  void depart(core::Pid p);
  void crash(core::Pid p);
  void restart(core::Pid p);
  void reannounce();
  /// TEST-ONLY: vanish without a failure announcement (see Swarm).
  void crash_silent(core::Pid p);

  // -- Aggregates --------------------------------------------------------

  /// Client stats across all peers, in PID order (shard-independent).
  [[nodiscard]] std::int64_t total_faults() const;
  [[nodiscard]] std::vector<double> all_latencies() const;

  /// Network counters summed over shards. Cross-shard datagrams are
  /// counted once: sent on the source shard, delivered (or lost) on the
  /// destination shard.
  [[nodiscard]] std::int64_t messages_sent() const noexcept;
  [[nodiscard]] std::int64_t bytes_sent() const noexcept;
  [[nodiscard]] std::int64_t delivered() const noexcept;
  [[nodiscard]] std::int64_t undeliverable() const noexcept;
  [[nodiscard]] std::int64_t dropped() const noexcept;
  [[nodiscard]] std::int64_t corrupted() const noexcept;

  /// Swarm-wide metric snapshot: the S per-shard registries share one
  /// registration catalog, so their snapshots merge index-for-index
  /// (obs::Snapshot::merge_from).
  [[nodiscard]] obs::Snapshot metrics_snapshot(double time = 0.0) const;

 private:
  /// One shard's vertical slice. Registration order inside `registry`
  /// matches every other shard's, which is what makes snapshots merge.
  struct Shard {
    Network network;
    obs::Registry registry;
    obs::WireMetrics metrics;
    obs::MetricsSink sink;
    Shard(sim::Engine& engine, const NetworkConfig& net)
        : network(engine, net), metrics(registry), sink(metrics) {}
  };

  [[nodiscard]] Shard& home(core::Pid p) {
    return *shards_[router_.shard_of(p)];
  }
  void make_peer(core::Pid p, util::CowStatus view);
  void broadcast_status(core::Pid about, bool live);

  Config cfg_;
  util::StatusWord status_;
  sim::ShardedEngine engines_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace lesslog::proto
