// Discrete-event core: a time-ordered queue of callbacks.
//
// Used by the dynamic scenarios (churn, flash crowds) where the fluid
// solver's steady-state answer is not enough. Events at equal timestamps
// fire in submission order (a monotone sequence number breaks ties), which
// keeps runs deterministic.
//
// Layout: three priority sources share one strict (time, seq) total
// order — seq is unique among queued entries, so the global pop order is
// independent of which structure holds an entry and identical to the old
// binary priority_queue.
//   1. A timing wheel of lazily-sorted buckets for near-future events
//      (the wire path: every message delivery lands base_latency+jitter
//      ahead of now). Insertion is a push_back; a bucket is sorted once,
//      when it becomes the drain front.
//   2. O(1) FIFO lanes for fixed-delay timers (schedule_after_fixed).
//   3. A flat 4-ary min-heap of 16-byte keys for everything else (far
//      future, sub-bucket delays) — the fallback that keeps the API
//      fully general.
// All three index a chunked arena of InplaceEvent callables with a free
// list: the POD keys make every sift/sort move a cheap 16-byte copy (the
// callables never move), chunking keeps slot addresses stable so step()
// invokes the handler in place (the old queue copied the std::function,
// re-allocating every captured wire buffer), and the small-buffer
// InplaceEvent keeps the steady-state schedule/step cycle
// allocation-free. The 32-bit seq is renumbered (order-preserving) on
// the ~never-taken wrap, so tie-break behaviour is exact at any length.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "lesslog/sim/inplace_event.hpp"

namespace lesslog::sim {

using SimTime = double;
using EventFn = InplaceEvent;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (must not precede now()).
  /// Safe to call from inside a running handler: the executing entry is
  /// popped off its structure before it is invoked.
  void schedule(SimTime at, EventFn fn);

  /// schedule() overload for raw callables: constructs the handler
  /// directly inside its arena slot (zero InplaceEvent relocates — the
  /// by-value overload pays two 56-byte moves per call).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  void schedule(SimTime at, F&& fn) {
    push_entry(at, emplace_slot(std::forward<F>(fn)));
  }

  /// Schedules `fn` at now() + `delay`, where `delay` is drawn from a
  /// small set of fixed constants (protocol retry timeouts). Because now()
  /// is monotone, equal-delay events expire in scheduling order, so each
  /// distinct delay becomes an O(1) FIFO lane instead of a heap
  /// insertion; step() merges lanes and heap by the same strict
  /// (time, seq) key, so execution order is identical to schedule().
  /// Every distinct delay value occupies a lane for the queue's
  /// lifetime, and the table is capped at kMaxLanes: once full, an
  /// unseen delay (a computed timeout reaching this entry point by
  /// mistake) is admitted through the wheel/heap path with the identical
  /// (time, seq) key — execution order is unchanged, only the O(1) lane
  /// bypass is lost. Callers should still pass constants; adaptive
  /// timers belong on schedule().
  void schedule_after_fixed(SimTime delay, EventFn fn);

  /// schedule_after_fixed() overload for raw callables; see schedule().
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  void schedule_after_fixed(SimTime delay, F&& fn) {
    push_lane_entry(delay, emplace_slot(std::forward<F>(fn)));
  }

  /// Admits a contiguous run of `n` events in index order. Execution is
  /// byte-identical to n schedule() calls — seqs are assigned
  /// sequentially, so the (time, seq) pop order cannot tell the two
  /// apart — but the admission bookkeeping is paid per run instead of
  /// per event: the drain-front memo is invalidated once, and
  /// consecutive events landing in the same wheel bucket (the common
  /// case: a run shares one delivery window) reuse the bucket lookup.
  /// This is the sharded engine's mailbox-drain primitive — a cross-shard
  /// box holds a whole window's datagrams for one destination shard.
  /// `time(i)` returns event i's absolute time (must not precede now());
  /// `emit(i, fn)` constructs handler i into its arena slot.
  template <typename TimeFn, typename EmitFn>
  void schedule_batch(std::size_t n, TimeFn&& time, EmitFn&& emit) {
    if (n == 0) return;
    wheel_front_hint_ = nullptr;  // any insert may create an earlier front
    Bucket* run_bucket = nullptr;
    std::uint64_t run_bnum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime at = time(i);
      assert(at >= now_ && "cannot schedule into the past");
      const std::uint32_t slot = acquire_slot();
      emit(i, slot_ref(slot));
      if (next_seq_ == std::numeric_limits<std::uint32_t>::max()) {
        renumber();            // folds the wheel into the heap…
        run_bucket = nullptr;  // …so the cached bucket's contents moved
      }
      const Entry e = make_entry(at, next_seq_++, slot);
      const SimTime delay = at - now_;
      if (delay >= kWheelMinDelay && delay < kWheelMaxDelay) {
        const std::uint64_t bnum = bucket_of(at);
        Bucket* b = (run_bucket != nullptr && bnum == run_bnum)
                        ? run_bucket
                        : &wheel_[bnum & (kNumBuckets - 1)];
        run_bucket = b;
        run_bnum = bnum;
        if (!b->sorted) {
          b->v.push_back(e);
        } else {
          // Sorted = the drain front being consumed; see push_entry().
          auto pos = std::upper_bound(
              b->v.begin() + static_cast<std::ptrdiff_t>(b->head), b->v.end(),
              e, [](const Entry& a, const Entry& x) { return earlier(a, x); });
          b->v.insert(pos, e);
        }
        ++wheel_count_;
        continue;
      }
      push_heap_entry(e);
    }
  }

  /// Fixed-delay lane table bound (see schedule_after_fixed): protocol
  /// constants fit with room to spare; computed delays overflow into the
  /// wheel/heap instead of growing the min scan's per-event lane walk.
  static constexpr std::size_t kMaxLanes = 16;

  /// Distinct fixed delays currently occupying lanes (admission
  /// observability for tests; compares against kMaxLanes).
  [[nodiscard]] std::size_t lane_table_size() const noexcept {
    return lanes_.size();
  }

  [[nodiscard]] bool empty() const noexcept {
    return heap_.empty() && lane_count_ == 0 && wheel_count_ == 0;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return heap_.size() + lane_count_ + wheel_count_;
  }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SimTime next_time() const;

  /// Time of the last event that actually fired. Unlike now() — which
  /// run_before() leaves on the (layout-dependent) window edge — this is
  /// a property of the executed event set alone, so a sharded run's
  /// max-over-shards last_fired() is identical at any shard count when
  /// the event sets are. The sharded SWIM driver anchors its epoch
  /// timeline here for exactly that reason.
  [[nodiscard]] SimTime last_fired() const noexcept { return last_fired_; }

  /// Pops and runs the earliest event; advances now(). Precondition:
  /// !empty().
  void step();

  /// Runs events until the queue is empty or the next event is after
  /// `until`; now() ends at min(until, last event time). Returns the
  /// number of events executed.
  std::int64_t run_until(SimTime until);

  /// Runs events strictly before `bound` and advances now() to `bound`
  /// (even when no event fired). This is the conservative-window
  /// primitive of the sharded engine: a shard may safely execute every
  /// event in [now, bound) when no cross-shard message can arrive before
  /// `bound`, and the barrier then leaves every shard's clock at the same
  /// window edge. An event at exactly `bound` stays queued — a message
  /// sent at the window start with the minimum link latency lands exactly
  /// on the edge and must be merged first. Returns the number executed.
  std::int64_t run_before(SimTime bound);

  /// Runs events until the queue is empty (one min-scan per event, like
  /// run_until but with no bound test). Returns the number executed.
  std::int64_t run_all();

  /// Moves the clock to `t` — in either direction — at quiescence.
  /// Precondition: the queue is empty (with no event pending, now() is
  /// just a number; nothing observes the move). The sharded engine uses
  /// this after run_all_windows() to park every shard's clock on the
  /// fleet-wide quiesce time instead of the last window edge: the edge
  /// depends on the window sequence (and hence the shard count), while
  /// the quiesce time is a property of the executed event set alone.
  void reset_clock(SimTime t) noexcept {
    assert(empty() && "reset_clock requires a quiescent queue");
    now_ = t;
  }

 private:
  /// Heap key: (time, seq, slot) packed into two words. Simulation times
  /// are non-negative, so the IEEE-754 bit pattern of `at` is
  /// order-preserving as an unsigned integer; the full (time, seq)
  /// comparison is then one branchless 128-bit compare — the sift loops
  /// compare random timestamps, and a data-dependent branch there
  /// mispredicts ~half the time.
  struct Entry {
    std::uint64_t time_bits;  ///< bit_cast of `at` (>= +0.0)
    std::uint64_t seq_slot;   ///< seq << 32 | arena slot

    [[nodiscard]] SimTime at() const noexcept;
    [[nodiscard]] std::uint32_t seq() const noexcept {
      return static_cast<std::uint32_t>(seq_slot >> 32);
    }
    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(seq_slot);
    }
  };

  static Entry make_entry(SimTime at, std::uint32_t seq,
                          std::uint32_t slot) noexcept;

  /// Strict (time, seq) order; seq uniqueness makes it total. The slot in
  /// the low bits never decides: seqs differ first.
  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) noexcept {
#ifdef __SIZEOF_INT128__
    __extension__ using Key = unsigned __int128;
    const Key ka = static_cast<Key>(a.time_bits) << 64 | a.seq_slot;
    const Key kb = static_cast<Key>(b.time_bits) << 64 | b.seq_slot;
    return ka < kb;
#else
    // Bitwise (not short-circuit) so the compare stays branch-free.
    return (a.time_bits < b.time_bits) |
           ((a.time_bits == b.time_bits) & (a.seq_slot < b.seq_slot));
#endif
  }

  static constexpr std::size_t kChunkShift = 8;  ///< 256 handlers/chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  [[nodiscard]] EventFn& slot_ref(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  /// One fixed-delay FIFO: a power-of-two ring of entries whose keys are
  /// strictly increasing (monotone now() + constant delay, monotone seq),
  /// so the front is always the lane's minimum.
  struct Lane {
    SimTime delay = 0.0;
    std::vector<Entry> ring;  ///< capacity is a power of two (or empty)
    std::size_t head = 0;     ///< index of the oldest entry
    std::size_t count = 0;

    [[nodiscard]] const Entry& front() const noexcept {
      return ring[head];
    }
    [[nodiscard]] const Entry& back() const noexcept {
      return ring[(head + count - 1) & (ring.size() - 1)];
    }
    void push_back(Entry e);
    Entry pop_front() noexcept {
      const Entry e = ring[head];
      head = (head + 1) & (ring.size() - 1);
      --count;
      return e;
    }
  };

  /// Reserves an arena slot (recycled or fresh). The caller move-assigns
  /// the handler into slot_ref() directly — taking the EventFn here by
  /// value would cost one extra 56-byte relocate per schedule.
  // ---- Timing wheel ------------------------------------------------
  // Near-future entries (delay in [kWheelMinDelay, kWheelMaxDelay)) go
  // into a circular array of buckets keyed by floor(time / width). A
  // bucket fills by push_back (unsorted) and is sorted by the exact
  // (time, seq) key exactly once — lazily, when the min scan first needs
  // its front. From that moment new entries can only land in the sorted
  // drain-front bucket via the rare now+tiny-delay path, which does an
  // ordered insert, so the front of the drain-front bucket is always the
  // wheel's global minimum. Aliasing is impossible: live wheel entries
  // span at most kNumBuckets-1 consecutive bucket numbers (times are
  // >= now and admission bounds delay below (kNumBuckets-2) * width).

  static constexpr std::size_t kNumBuckets = 32;  ///< power of two
  /// Buckets per simulated second (nominal width 2 ms). Only
  /// monotonicity of the time->bucket map matters for correctness.
  static constexpr double kInvBucketWidth = 500.0;
  static constexpr SimTime kWheelMinDelay = 2.0 / kInvBucketWidth;
  static constexpr SimTime kWheelMaxDelay =
      static_cast<double>(kNumBuckets - 2) / kInvBucketWidth;

  [[nodiscard]] static std::uint64_t bucket_of(SimTime t) noexcept {
    return static_cast<std::uint64_t>(t * kInvBucketWidth);
  }

  /// One wheel bucket. Entries [0, head) are already popped; [head, end)
  /// are live. `sorted` flips when the bucket becomes the drain front.
  struct Bucket {
    std::vector<Entry> v;
    std::size_t head = 0;
    bool sorted = false;
  };

  /// Which source holds the global minimum: kWheel, kHeap, or a lane
  /// index >= 0.
  static constexpr int kHeap = -1;
  static constexpr int kWheel = -2;

  /// Reserves an arena slot (recycled or fresh). The caller fills
  /// slot_ref() itself — taking the EventFn here by value would cost one
  /// extra 56-byte relocate per schedule.
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const std::uint32_t slot = arena_used_++;
    if ((slot & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
    }
    return slot;
  }

  /// Reserves a slot and constructs the callable directly into it.
  template <typename F>
  [[nodiscard]] std::uint32_t emplace_slot(F&& fn) {
    const std::uint32_t slot = acquire_slot();
    slot_ref(slot).emplace(std::forward<F>(fn));
    return slot;
  }

  /// Keys `slot` at absolute time `at` and routes the entry into the
  /// wheel or the heap.
  void push_entry(SimTime at, std::uint32_t slot);
  /// Appends `e` to the 4-ary heap and sifts it up.
  void push_heap_entry(Entry e);
  /// Keys `slot` at now() + `delay` and appends it to `delay`'s lane.
  void push_lane_entry(SimTime delay, std::uint32_t slot);
  /// Order-preserving seq compaction; runs once per 2^32 schedules.
  void renumber();
  /// First nonempty bucket at or after now(), sorted on first touch.
  /// Precondition: wheel_count_ > 0. Logically-const lazy sort.
  [[nodiscard]] Bucket& wheel_front() const noexcept;
  /// Source holding the earliest entry. Precondition: !empty().
  [[nodiscard]] int min_source() const noexcept;
  /// Pops the earliest entry of `source` (repairing that structure).
  Entry pop_source(int source) noexcept;
  /// Pops the heap root; sifts down. Precondition: heap non-empty.
  Entry pop_heap_root() noexcept;

  std::vector<Entry> heap_;  ///< flat 4-ary min-heap of keys
  std::vector<Lane> lanes_;  ///< one per distinct fixed delay (few)
  std::size_t lane_count_ = 0;  ///< total entries across lanes_
  /// The wheel. Mutable: the min scan sorts a bucket in place the first
  /// time it becomes the drain front (an order-preserving representation
  /// change, observable-state-const).
  mutable std::array<Bucket, kNumBuckets> wheel_{};
  std::size_t wheel_count_ = 0;  ///< total live entries across wheel_
  /// Memoized drain-front bucket: valid between a min scan and the next
  /// wheel mutation (cleared by wheel pops and wheel inserts), so the
  /// scan-then-pop pairs in step()/run_until()/run_all() walk the empty
  /// leading buckets once, not twice.
  mutable Bucket* wheel_front_hint_ = nullptr;
  /// Handler arena. Chunked so addresses are stable across growth: a
  /// handler is invoked in place while new events (and chunks) arrive.
  std::vector<std::unique_ptr<EventFn[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;  ///< recycled arena indices
  std::uint32_t arena_used_ = 0;           ///< slots handed out ever
  SimTime now_ = 0.0;
  SimTime last_fired_ = 0.0;  ///< time of the last executed event
  std::uint32_t next_seq_ = 0;
};

inline SimTime EventQueue::Entry::at() const noexcept {
  return std::bit_cast<SimTime>(time_bits);
}

inline EventQueue::Entry EventQueue::make_entry(SimTime at, std::uint32_t seq,
                                                std::uint32_t slot) noexcept {
  // +0.0 canonicalizes a -0.0 timestamp, whose sign bit would otherwise
  // sort it above every positive time.
  return Entry{std::bit_cast<std::uint64_t>(at + 0.0),
               std::uint64_t{seq} << 32 | slot};
}

}  // namespace lesslog::sim
