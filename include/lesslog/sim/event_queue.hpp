// Discrete-event core: a time-ordered queue of callbacks.
//
// Used by the dynamic scenarios (churn, flash crowds) where the fluid
// solver's steady-state answer is not enough. Events at equal timestamps
// fire in submission order (a monotone sequence number breaks ties), which
// keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lesslog::sim {

using SimTime = double;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at` (must not precede now()).
  void schedule(SimTime at, EventFn fn);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SimTime next_time() const;

  /// Pops and runs the earliest event; advances now(). Precondition:
  /// !empty().
  void step();

  /// Runs events until the queue is empty or the next event is after
  /// `until`; now() ends at min(until, last event time). Returns the
  /// number of events executed.
  std::int64_t run_until(SimTime until);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lesslog::sim
