// Churn driver — the paper's stated future work ("obtain performance data
// in a real-world scenario where nodes dynamically join and leave").
//
// Drives a live core::System with Poisson processes for requests, joins,
// graceful leaves, and crashes, and reports request success rate, lookup
// cost, and the self-organization maintenance traffic. The minimum live
// population is floored so the system never empties.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/core/system.hpp"

namespace lesslog::sim {

struct ChurnConfig {
  int m = 8;
  int b = 0;
  std::uint32_t initial_nodes = 200;
  std::uint32_t min_nodes = 32;      ///< leaves/fails suspend below this
  std::uint32_t files = 64;          ///< inserted before churn starts
  double duration = 600.0;           ///< simulated seconds
  double request_rate = 200.0;       ///< requests/s (system-wide)
  double join_rate = 0.5;            ///< joins/s
  double leave_rate = 0.25;          ///< graceful leaves/s
  double fail_rate = 0.25;           ///< crashes/s
  std::uint64_t seed = 7;
};

struct ChurnResult {
  std::int64_t requests = 0;
  std::int64_t faults = 0;
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t fails = 0;
  std::int64_t lookup_messages = 0;
  std::int64_t maintenance_messages = 0;
  std::uint32_t final_nodes = 0;
  std::size_t files_lost = 0;
  double mean_hops = 0.0;

  [[nodiscard]] double fault_fraction() const noexcept {
    return requests > 0
               ? static_cast<double>(faults) / static_cast<double>(requests)
               : 0.0;
  }
};

/// Runs one churn scenario to completion. Deterministic given cfg.seed.
[[nodiscard]] ChurnResult run_churn(const ChurnConfig& cfg);

}  // namespace lesslog::sim
