// Sharded discrete-event execution: S independent Engines advanced in
// lockstep time windows on a util::ThreadPool.
//
// The model is classic conservative parallel discrete-event simulation
// (CMB-style with a global window): the simulated system is partitioned
// into S shards, each owning its own EventQueue and RNG stream, and the
// only cross-shard interaction is a message whose delivery latency has a
// known positive lower bound L (the lookahead). Then every event in
// [T, T + L) — where T is the global minimum next-event time — can be
// executed without synchronization: a message sent by another shard at
// time t >= T arrives no earlier than t + L >= T + L, i.e. at or after
// the window edge. The loop is
//
//   repeat:
//     barrier: drain every shard's inbound mailboxes into its queue
//     T = min over shards of next-event time   (done: no event anywhere)
//     parallel: each shard runs run_before(T + L)
//
// Determinism: each shard's window execution is sequential and seeded,
// the barrier is a full synchronization, and the drain hook is required
// to merge mailboxes in a fixed order (source-shard index, FIFO within a
// source) — so the result depends only on (seed, S), never on thread
// scheduling. With S = 1 the loop degenerates to run_all() on the one
// engine: byte-identical to the serial engine.
//
// The mailboxes themselves live with the layer that owns the messages
// (proto::ShardRouter for the swarm); this class only fixes the phase
// structure that makes single-producer/single-consumer access safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lesslog/sim/engine.hpp"
#include "lesslog/util/thread_pool.hpp"

namespace lesslog::sim {

class ShardedEngine {
 public:
  /// Barrier hook: drain_fn(s) must schedule every message currently
  /// mailboxed for shard `s` into shard `s`'s queue, in a fixed order.
  /// Called inside the barrier (all shard workers quiescent); the hook
  /// for shard `s` may touch only shard `s`'s engine and the mailboxes
  /// addressed to `s`.
  using DrainFn = std::function<void(std::size_t)>;

  /// `lookahead` is the cross-shard latency lower bound; it must be
  /// strictly positive when shards > 1 (throws std::invalid_argument
  /// otherwise — a zero-latency link admits no conservative window).
  ShardedEngine(std::size_t shards, std::uint64_t seed, double lookahead);

  [[nodiscard]] std::size_t shards() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] Engine& shard(std::size_t s) noexcept { return *engines_[s]; }
  [[nodiscard]] const Engine& shard(std::size_t s) const noexcept {
    return *engines_[s];
  }
  [[nodiscard]] double lookahead() const noexcept { return lookahead_; }

  void set_drain(DrainFn fn) { drain_ = std::move(fn); }

  /// Runs every shard to quiescence (all queues and mailboxes empty).
  /// Workers execute the windows; the calling thread coordinates the
  /// barriers. On return every shard's clock sits at the same time (the
  /// last window edge, or the serial finish time for S = 1). Returns the
  /// total number of events executed.
  std::int64_t run_all_windows();

  /// Shard s's engine seed. A single-shard group keeps the group seed
  /// itself, so S = 1 reproduces the serial engine bit for bit; larger
  /// groups give every shard an independent SplitMix64-derived stream.
  [[nodiscard]] static std::uint64_t shard_seed(std::uint64_t seed,
                                                std::size_t s,
                                                std::size_t shards) noexcept;

 private:
  std::vector<std::unique_ptr<Engine>> engines_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when shards == 1
  DrainFn drain_;
  double lookahead_;
};

}  // namespace lesslog::sim
