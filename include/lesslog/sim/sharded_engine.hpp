// Sharded discrete-event execution: S independent Engines advanced in
// lockstep time windows on a util::ThreadPool.
//
// The model is classic conservative parallel discrete-event simulation
// (CMB-style with a global window): the simulated system is partitioned
// into S shards, each owning its own EventQueue and RNG stream, and the
// only cross-shard interaction is a message whose delivery latency from
// shard i to shard j has a known positive lower bound L(i, j) (the
// per-pair lookahead). Let T_i be shard i's next-event time and
// rowmin_i = min over j != i of L(i, j). Every event strictly before
//
//   B = min over *populated* shards i (T_i finite) of T_i + rowmin_i
//
// can be executed without synchronization: shard i executes nothing
// before T_i, so any message it sends departs at t >= T_i and arrives at
// t + L(i, j) >= T_i + rowmin_i >= B — at or after the window edge. A
// shard with an empty queue executes nothing and therefore sends
// nothing, which is why it does not constrain the bound. With a uniform
// matrix L(i, j) = L this reduces exactly to the classic global bound
// T + L (min_i(T_i + L) = T + L), so the adaptive window is a strict
// generalization with an identical event schedule on uniform configs.
// The loop is
//
//   repeat:
//     barrier: drain every shard's inbound mailboxes into its queue
//     B = adaptive bound above            (done: no event anywhere)
//     parallel: each shard runs run_before(B)
//
// Determinism: each shard's window execution is sequential and seeded,
// the barrier is a full synchronization, and the drain hook is required
// to merge mailboxes in a fixed order (source-shard index, FIFO within a
// source) — so the result depends only on (seed, S), never on thread
// scheduling. With S = 1 the loop degenerates to run_all() on the one
// engine: byte-identical to the serial engine.
//
// The mailboxes themselves live with the layer that owns the messages
// (proto::ShardRouter for the swarm); this class only fixes the phase
// structure that makes single-producer/single-consumer access safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lesslog/sim/engine.hpp"
#include "lesslog/util/thread_pool.hpp"

namespace lesslog::sim {

class ShardedEngine {
 public:
  /// Barrier hook: drain_fn(s) must schedule every message currently
  /// mailboxed for shard `s` into shard `s`'s queue, in a fixed order.
  /// Called inside the barrier (all shard workers quiescent); the hook
  /// for shard `s` may touch only shard `s`'s engine and the mailboxes
  /// addressed to `s`.
  using DrainFn = std::function<void(std::size_t)>;

  /// `lookahead` is the uniform cross-shard latency lower bound; it must
  /// be strictly positive when shards > 1 (throws std::invalid_argument
  /// naming the pairwise-floor requirement otherwise — a zero-latency
  /// cross-shard link admits no conservative window). A topology with
  /// wider pairwise bounds can raise them afterwards via
  /// set_pair_lookahead().
  ShardedEngine(std::size_t shards, std::uint64_t seed, double lookahead);

  [[nodiscard]] std::size_t shards() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] Engine& shard(std::size_t s) noexcept { return *engines_[s]; }
  [[nodiscard]] const Engine& shard(std::size_t s) const noexcept {
    return *engines_[s];
  }
  /// The global lookahead floor: the minimum off-diagonal entry of the
  /// pair matrix (the scalar bound itself until set_pair_lookahead ran).
  [[nodiscard]] double lookahead() const noexcept { return lookahead_; }

  /// The installed cross-shard latency lower bound from shard i to j.
  [[nodiscard]] double pair_lookahead(std::size_t i,
                                      std::size_t j) const noexcept {
    return pair_[i * engines_.size() + j];
  }

  /// Installs the per-shard-pair latency lower bounds (S x S, row-major;
  /// the diagonal is ignored). Every off-diagonal entry must be strictly
  /// positive when S > 1 (throws std::invalid_argument otherwise). Call
  /// before any events run; the window bound becomes the adaptive
  /// per-pair form described above.
  void set_pair_lookahead(const std::vector<double>& matrix);

  void set_drain(DrainFn fn) { drain_ = std::move(fn); }

  /// Runs every shard to quiescence (all queues and mailboxes empty).
  /// Workers execute the windows; the calling thread coordinates the
  /// barriers. On return every shard's clock sits at the same time (the
  /// last window edge, or the serial finish time for S = 1). Returns the
  /// total number of events executed.
  std::int64_t run_all_windows();

  /// Windowed-parallel analogue of Engine::run_before(t): executes every
  /// event strictly before `t` (windows are clipped at `t`), then
  /// advances every shard's clock to exactly `t`. On return all clocks
  /// agree at `t` and no event before `t` remains in any queue; events
  /// at or after `t` (including mailboxed cross-shard arrivals, which
  /// the window safety argument places at or after the last bound) stay
  /// pending. This is what lets a driver interleave top-level control
  /// actions at deterministic times with sharded execution. Returns
  /// events executed.
  std::int64_t run_until_windows(double t);

  /// The latest time any shard actually executed an event. After
  /// run_all_windows() the shard *clocks* rest on the last window edge,
  /// which depends on the window sequence and hence on the shard count;
  /// this quantity is a property of the executed event set alone, so it
  /// is identical at any shard count whenever the event sets are. The
  /// SWIM chaos driver anchors its epoch timeline here.
  [[nodiscard]] double quiesce_time() const noexcept {
    double t = 0.0;
    for (const auto& e : engines_) {
      t = std::max(t, e->queue().last_fired());
    }
    return t;
  }

  /// Shard s's engine seed. A single-shard group keeps the group seed
  /// itself, so S = 1 reproduces the serial engine bit for bit; larger
  /// groups give every shard an independent SplitMix64-derived stream.
  [[nodiscard]] static std::uint64_t shard_seed(std::uint64_t seed,
                                                std::size_t s,
                                                std::size_t shards) noexcept;

 private:
  /// The adaptive window bound B (infinity at quiescence). Call only at
  /// a barrier, after the drain.
  [[nodiscard]] double window_bound() const noexcept;

  std::vector<std::unique_ptr<Engine>> engines_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when shards == 1
  DrainFn drain_;
  double lookahead_;            ///< min off-diagonal pair bound
  std::vector<double> pair_;    ///< S x S row-major pair bounds
  std::vector<double> rowmin_;  ///< min over j != i of pair_[i][j]
};

}  // namespace lesslog::sim
