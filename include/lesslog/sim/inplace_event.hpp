// A move-only `void()` callable with inline small-buffer storage.
//
// The discrete-event hot path schedules one closure per simulated message
// (plus one per client timeout). `std::function` heap-allocates any
// capture over ~16 bytes and must stay copyable, so the old queue paid
// two allocations per message: one to create the closure and one when the
// priority queue copied it back out. InplaceEvent stores captures up to
// kInlineCapacity bytes directly inside the object, is move-only (moving
// relocates the capture, never copies it), and only falls back to the
// heap for oversized or throwing-move callables. The network's delivery
// event — a Network pointer plus the kWireSize wire buffer — is
// static_assert-ed to fit inline, which is what makes the steady-state
// wire path allocation-free.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lesslog::sim {

class InplaceEvent {
 public:
  /// Inline capture budget, sized for the largest hot-path event (the
  /// network DeliveryEvent: pointer + 43-byte wire buffer, padded to 56).
  static constexpr std::size_t kInlineCapacity = 56;

  /// True iff callables of type D are stored inline (no allocation):
  /// they must fit the buffer, not be over-aligned, and relocate without
  /// throwing (heap growth and sift moves rely on noexcept moves).
  template <typename D>
  [[nodiscard]] static constexpr bool stored_inline() noexcept {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InplaceEvent() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  InplaceEvent(F&& fn) {
    if constexpr (stored_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vt_ = &kHeapVt<D>;
    }
  }

  /// Constructs a callable directly into this event's storage, replacing
  /// any current one. The schedule fast path emplaces straight into the
  /// arena slot, skipping the temporary-then-move relocates a by-value
  /// EventFn parameter would cost.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    if constexpr (stored_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vt_ = &kHeapVt<D>;
    }
  }

  InplaceEvent(InplaceEvent&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  InplaceEvent& operator=(InplaceEvent&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, other.storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InplaceEvent(const InplaceEvent&) = delete;
  InplaceEvent& operator=(const InplaceEvent&) = delete;

  ~InplaceEvent() { reset(); }

  /// Invokes the stored callable. Precondition: non-empty.
  void operator()() {
    assert(vt_ != nullptr && "invoking an empty event");
    vt_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  /// Whether the current callable lives in the inline buffer (tests).
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ != nullptr && vt_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-constructs into dst from src, then destroys src's callable.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
      /*inline_storage=*/true};

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); },
      /*inline_storage=*/false};

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const VTable* vt_ = nullptr;
};

}  // namespace lesslog::sim
