// The figure-reproduction harness: replicate-until-load-balanced.
//
// Reproduces the paper's experimental procedure (Section 6): a single
// popular file, a per-node capacity of 100 requests/second, and a
// replication policy invoked on the most overloaded node until no node
// exceeds capacity. The measured quantity is the number of replicas
// created. Policies are injected as callbacks so the same loop drives
// LessLog, the random baseline, and the (perfect-)log-based baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "lesslog/sim/load_solver.hpp"
#include "lesslog/sim/workload.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::sim {

/// Everything a replication policy may inspect when asked where to place
/// the next replica. `overloaded` is the node whose load must drop. For
/// log-based policies, `load()` yields the exact per-node forward rates —
/// the strongest possible "client-access log". The report is materialised
/// on demand: the incremental solver defers re-summing forward rates, so
/// policies that never read them (LessLog, random) never pay for them.
struct PlacementContext {
  const core::LookupTree& tree;
  const core::SubtreeView& view;  ///< subtree view (b = 0 in the figures)
  core::Pid overloaded;
  const util::StatusWord& live;
  const CopyMap& has_copy;
  std::function<const LoadReport&()> load;
  const Workload& demand;
  util::Rng& rng;
  /// Packed mirror of has_copy, when the harness maintains one (the
  /// figure and catalog loops do). Lets candidate enumeration word-scan
  /// `live & ~copy` instead of walking 2^m bytes; policies must fall back
  /// to has_copy when null.
  const CopyBits* copy_bits = nullptr;
};

/// Returns the PID to replicate to, or nullopt when the policy cannot
/// improve the placement (the experiment then stops unbalanced).
using PlacementFn =
    std::function<std::optional<core::Pid>(const PlacementContext&)>;

enum class WorkloadKind : std::uint8_t { kUniform, kLocality };

/// Which load solver drives the balance loop. Both produce bit-identical
/// reports (tests/sim/incremental_solver_test.cpp asserts it); kScratch
/// re-routes every live node on every iteration and is kept as the
/// oracle, kIncremental updates only the accumulators a new replica
/// actually changes.
enum class SolverMode : std::uint8_t { kIncremental, kScratch };

struct ExperimentConfig {
  int m = 10;                    ///< paper: m = 10 (1024-slot space)
  int b = 0;                     ///< paper: b = 0 in all figures
  double dead_fraction = 0.0;    ///< Figures 6/8: 0.1, 0.2, 0.3
  double total_rate = 10000.0;   ///< swept 1,000 .. 20,000 requests/s
  double capacity = 100.0;       ///< paper: 100 requests/s per node
  WorkloadKind workload = WorkloadKind::kUniform;
  double hot_node_fraction = 0.2;     ///< locality model knobs
  double hot_request_fraction = 0.8;
  std::uint64_t seed = 42;
  /// Safety valve; the loop aborts after this many replicas.
  int max_replicas = 1 << 20;
  SolverMode solver = SolverMode::kIncremental;
};

struct ExperimentResult {
  int replicas_created = 0;
  bool balanced = false;
  /// True when the run ended unbalanced solely because some node's *own*
  /// client demand exceeds capacity while it holds a copy — a state no
  /// replication policy can shed (the node must serve its local clients).
  /// Happens at the extreme of the locality model with many dead nodes.
  bool irreducible_overload = false;
  double final_max_load = 0.0;
  double mean_hops = 0.0;
  double fault_rate = 0.0;
  /// Jain fairness of the final served-load vector over live nodes.
  double fairness = 0.0;
  /// Live node count the experiment ran with.
  std::uint32_t live_nodes = 0;
};

/// Runs one cell: build the ID space (dead nodes chosen uniformly by the
/// seed, the hot file's target always kept live so the experiment is about
/// replication rather than stand-in placement — the advanced-model case is
/// exercised when dead_fraction > 0 by the dead interior nodes), place the
/// initial copy, then loop: solve load → pick most overloaded node →
/// ask `policy` → place replica, until balanced.
[[nodiscard]] ExperimentResult run_replication_experiment(
    const ExperimentConfig& cfg, const PlacementFn& policy);

/// Counter-based removal ablation: after balancing, drop every replica
/// serving fewer than `removal_threshold` requests/s and report how many
/// survive (the paper's "simple counter-based mechanism to remove replicas
/// that are not frequently accessed").
struct RemovalResult {
  ExperimentResult before;
  int replicas_after_removal = 0;
  bool still_balanced = false;
};

[[nodiscard]] RemovalResult run_with_removal(const ExperimentConfig& cfg,
                                             const PlacementFn& policy,
                                             double removal_threshold);

}  // namespace lesslog::sim
