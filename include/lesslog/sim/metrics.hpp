// Figure-series collection and reporting.
//
// Each bench reproduces one paper figure as a set of named series over a
// shared x-axis. FigureData renders the rows the paper plots (aligned
// table + optional CSV mirror + a coarse ASCII chart) and provides shape
// checks (dominance, approximate monotonicity) so EXPERIMENTS.md claims are
// validated by code, not by eyeballing.
#pragma once

#include <string>
#include <vector>

#include "lesslog/util/table.hpp"

namespace lesslog::sim {

struct Series {
  std::string name;
  std::vector<double> values;  // one per x-axis entry
};

class FigureData {
 public:
  FigureData(std::string title, std::string x_label,
             std::vector<double> x_values);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<double>& x_values() const noexcept {
    return xs_;
  }

  /// Adds a series; must have one value per x entry.
  void add_series(std::string name, std::vector<double> values);

  [[nodiscard]] const Series& series(std::size_t i) const {
    return series_[i];
  }
  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }
  [[nodiscard]] const Series* find(const std::string& name) const;

  /// Aligned table: one row per x value, one column per series.
  [[nodiscard]] util::Table to_table() const;

  /// GitHub-flavored Markdown table (used by the report generator).
  [[nodiscard]] std::string to_markdown(int precision = 1) const;

  /// Coarse ASCII chart (one glyph per series) for quick visual shape
  /// inspection in terminal output.
  [[nodiscard]] std::string ascii_chart(int height = 16) const;

  /// Writes the table as CSV.
  void write_csv(const std::string& path) const;

  /// True iff series `a` <= series `b` at every x (with `slack` as a
  /// multiplicative tolerance: a <= b * (1 + slack)).
  [[nodiscard]] bool dominates(const std::string& a, const std::string& b,
                               double slack = 0.0) const;

  /// True iff the named series never decreases by more than `slack`
  /// (absolute) between consecutive x values.
  [[nodiscard]] bool roughly_increasing(const std::string& name,
                                        double slack = 0.0) const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<double> xs_;
  std::vector<Series> series_;
};

}  // namespace lesslog::sim
