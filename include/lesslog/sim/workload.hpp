// Client request workloads.
//
// The paper's experiments drive the system with a single popular file and a
// per-node request arrival rate, under two client distributions:
//   * evenly distributed — every live node receives the same share of the
//     total request rate (Figures 5 and 6);
//   * locality model — 80% of the requests are received by 20% of the
//     nodes, "when a certain region of the P2P system accesses this file
//     more frequently than the rest" (Figures 7 and 8).
// A Zipf file-popularity generator supports the multi-file extension
// experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/rng.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::sim {

/// Per-node request arrival rates (requests/second), indexed by PID.
/// Dead nodes always carry rate 0.
struct Workload {
  std::vector<double> rate;

  [[nodiscard]] double total() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return rate.size(); }
};

/// Evenly distributed: total_rate split equally across all live nodes.
/// Liveness is read through the view seam, so workloads can be driven by
/// a detector's believed membership (SwimView) as well as ground truth
/// (OracleView / BorrowedView over a StatusWord).
[[nodiscard]] Workload uniform_workload(const util::LivenessView& view,
                                        double total_rate);

/// Locality model: a random `hot_node_fraction` of the live nodes receives
/// `hot_request_fraction` of the total rate (split evenly among them); the
/// remaining nodes split the rest evenly. Paper defaults: 0.2 / 0.8.
[[nodiscard]] Workload locality_workload(const util::LivenessView& view,
                                         double total_rate,
                                         util::Rng& rng,
                                         double hot_node_fraction = 0.2,
                                         double hot_request_fraction = 0.8);

/// Zipf(s) popularity weights over `n` files, normalized to sum to 1.
/// weight[i] ∝ 1/(i+1)^s.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t n, double s);

}  // namespace lesslog::sim
