// Placement analytics: given a copy placement on a lookup tree, quantify
// the structure LessLog's rule produces — who serves whom, how unequal the
// catchments are, where copies sit in the tree. Benches and tests use this
// to explain replica counts rather than just report them.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/sim/load_solver.hpp"

namespace lesslog::sim {

struct PlacementAnalysis {
  /// Copies analyzed (live holders only).
  std::size_t copies = 0;
  /// For each copy (ascending PID): how many live requesters it serves
  /// under a uniform workload (its *catchment*, including itself).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> catchments;
  /// Inequality of catchment sizes: 0 = all copies serve equal shares.
  double catchment_gini = 0.0;
  /// Largest catchment as a fraction of live nodes.
  double max_catchment_fraction = 0.0;
  /// Tree depth statistics of the copy locations (depth 0 = tree root).
  double mean_copy_depth = 0.0;
  int max_copy_depth = 0;
  /// Rate-unweighted mean hops a requester travels to its serving copy.
  double mean_hops = 0.0;
  /// Requesters with no reachable copy (should be 0 when the insertion
  /// target holds a copy).
  std::uint32_t uncovered = 0;
};

/// Analyzes `has_copy` on `tree` under the given liveness. O(N·m).
[[nodiscard]] PlacementAnalysis analyze_placement(
    const core::LookupTree& tree, const CopyMap& has_copy,
    const util::StatusWord& live);

}  // namespace lesslog::sim
