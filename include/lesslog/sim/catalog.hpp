// Multi-file catalog experiments.
//
// The paper's figures use a single popular file; a real deployment hosts a
// catalog with skewed (Zipf) popularity. This harness runs the same
// replicate-until-balanced procedure against many files at once: each
// node's request stream is split over the catalog by popularity weight,
// every file routes through its own lookup tree, and an overloaded node
// replicates the file that contributes the most to *its own* served load —
// a quantity the node observes locally, so the placement stays logless.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/sim/experiment.hpp"

namespace lesslog::sim {

struct CatalogConfig {
  int m = 10;
  int b = 0;
  std::uint32_t files = 64;
  /// Zipf exponent of the popularity distribution (0 = uniform catalog).
  double zipf_s = 0.8;
  double dead_fraction = 0.0;
  double total_rate = 10000.0;
  double capacity = 100.0;
  WorkloadKind workload = WorkloadKind::kUniform;
  double hot_node_fraction = 0.2;
  double hot_request_fraction = 0.8;
  std::uint64_t seed = 42;
  int max_replicas = 1 << 20;
};

struct CatalogResult {
  int replicas_created = 0;
  bool balanced = false;
  double final_max_load = 0.0;
  double fairness = 0.0;
  std::uint32_t live_nodes = 0;
  /// Replicas per file, indexed by popularity rank (0 = hottest).
  std::vector<int> replicas_by_rank;
  /// Storage copies (inserted + replicas) across the whole catalog.
  std::int64_t total_copies = 0;
};

/// Runs one catalog cell with the given placement policy (the same
/// PlacementFn contract as the single-file harness; the context's tree and
/// load refer to the file being replicated).
[[nodiscard]] CatalogResult run_catalog_experiment(const CatalogConfig& cfg,
                                                   const PlacementFn& policy);

}  // namespace lesslog::sim
