// Deterministic fluid-flow load model.
//
// The paper's metric is the number of replicas required until no node
// serves more than its capacity. Because GETFILE routing is deterministic
// given the copy placement and the liveness map, the steady-state served
// rate of every node is an exact computation: route each live node's
// request stream along its lookup path and credit the first copy-holder.
// This replaces the authors' (unreleased) packet simulator with a
// noise-free equivalent of the same steady-state quantity; the
// event-driven engine (engine.hpp) covers the scenarios where timing
// matters.
#pragma once

#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/sim/workload.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::sim {

/// Copy placement for one file: has_copy[pid] != 0 iff P(pid) stores a
/// copy. A plain byte vector keeps the solver branch-light.
using CopyMap = std::vector<char>;

struct LoadReport {
  /// Requests/second served by each node (requests that terminate there).
  std::vector<double> served;
  /// Requests/second each node forwards to its parent (pass-through load).
  std::vector<double> forwarded;
  /// Rate of requests that found no copy anywhere (faults).
  double fault_rate = 0.0;
  /// Rate-weighted mean hop count of a request.
  double mean_hops = 0.0;
  /// Largest served value, and the node carrying it.
  double max_served = 0.0;
  std::uint32_t max_served_pid = 0;

  /// Nodes whose served rate strictly exceeds `capacity`, sorted by
  /// descending load.
  [[nodiscard]] std::vector<std::uint32_t> overloaded(double capacity) const;
};

/// Exact steady-state load for one file routed through `tree` (b = 0).
[[nodiscard]] LoadReport solve_load(const core::LookupTree& tree,
                                    const CopyMap& has_copy,
                                    const util::StatusWord& live,
                                    const Workload& demand);

/// Same, routed through the fault-tolerant subtree view (b > 0; with b = 0
/// it matches solve_load exactly, which a test asserts).
[[nodiscard]] LoadReport solve_load(const core::SubtreeView& view,
                                    const CopyMap& has_copy,
                                    const util::StatusWord& live,
                                    const Workload& demand);

}  // namespace lesslog::sim
