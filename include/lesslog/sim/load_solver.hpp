// Deterministic fluid-flow load model.
//
// The paper's metric is the number of replicas required until no node
// serves more than its capacity. Because GETFILE routing is deterministic
// given the copy placement and the liveness map, the steady-state served
// rate of every node is an exact computation: route each live node's
// request stream along its lookup path and credit the first copy-holder.
// This replaces the authors' (unreleased) packet simulator with a
// noise-free equivalent of the same steady-state quantity; the
// event-driven engine (engine.hpp) covers the scenarios where timing
// matters.
//
// Two solvers compute the same report:
//   * solve_load — from-scratch: re-routes every live node per call. Kept
//     as the trusted oracle; O(2^m * depth) per call with a heap-allocated
//     RouteResult per routed node.
//   * IncrementalLoadSolver — precomputes flat next-alive-ancestor tables
//     once per (tree, liveness, demand) so a route is a pointer-free
//     integer walk, and updates the report in O(affected subtree) when a
//     copy is added. Bit-identical to solve_load (every accumulator is
//     re-summed over its contributor set in the oracle's ascending-PID
//     order); tests/sim/incremental_solver_test.cpp asserts this across
//     seeds, dead fractions, workloads and b values.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/sim/workload.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::sim {

/// Copy placement for one file: has_copy[pid] != 0 iff P(pid) stores a
/// copy. A plain byte vector keeps the solver branch-light.
using CopyMap = std::vector<char>;

/// Packed one-bit-per-PID mirror of a CopyMap (word i bit j covers PID
/// 64*i + j, the same layout as util::StatusWord). The placement hot path
/// word-scans `live & ~copy` — 64 candidates per load — instead of
/// testing 2^m bytes; the experiment harnesses keep the mirror in sync
/// with the byte map they hand the solver.
class CopyBits {
 public:
  CopyBits() = default;
  explicit CopyBits(std::size_t slots) { reset(slots); }

  void reset(std::size_t slots) { words_.assign((slots + 63) / 64, 0); }
  void set(std::uint32_t p) noexcept {
    words_[p >> 6] |= std::uint64_t{1} << (p & 63u);
  }
  void clear(std::uint32_t p) noexcept {
    words_[p >> 6] &= ~(std::uint64_t{1} << (p & 63u));
  }
  [[nodiscard]] bool test(std::uint32_t p) const noexcept {
    return (words_[p >> 6] >> (p & 63u)) & 1u;
  }
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return words_.data();
  }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

 private:
  std::vector<std::uint64_t> words_;
};

struct LoadReport {
  /// Requests/second served by each node (requests that terminate there).
  std::vector<double> served;
  /// Requests/second each node forwards to its parent (pass-through load).
  std::vector<double> forwarded;
  /// Rate of requests that found no copy anywhere (faults).
  double fault_rate = 0.0;
  /// Rate-weighted mean hop count of a request.
  double mean_hops = 0.0;
  /// Largest served value, and the node carrying it.
  double max_served = 0.0;
  std::uint32_t max_served_pid = 0;

  /// Nodes whose served rate strictly exceeds `capacity`, sorted by
  /// descending load.
  [[nodiscard]] std::vector<std::uint32_t> overloaded(double capacity) const;

  /// The single most overloaded node (served > capacity), without building
  /// or sorting the full list; ties go to the lowest PID. nullopt when no
  /// node exceeds capacity. The balance loop only ever consumes
  /// overloaded(capacity).front(), which this replaces.
  [[nodiscard]] std::optional<std::uint32_t> most_overloaded(
      double capacity) const;
};

/// Exact steady-state load for one file routed through `tree` (b = 0).
[[nodiscard]] LoadReport solve_load(const core::LookupTree& tree,
                                    const CopyMap& has_copy,
                                    const util::StatusWord& live,
                                    const Workload& demand);

/// Same, routed through the fault-tolerant subtree view (b > 0; with b = 0
/// it matches solve_load exactly, which a test asserts).
[[nodiscard]] LoadReport solve_load(const core::SubtreeView& view,
                                    const CopyMap& has_copy,
                                    const util::StatusWord& live,
                                    const Workload& demand);

/// Incremental load solver for the replicate-until-balanced loop.
///
/// Construction precomputes, once per experiment cell, the flat
/// within-subtree next-alive-ancestor table (core/routing's AncestorTable
/// generalized over the 2^b fault-tolerance subtrees), the routing forest
/// it induces over the live nodes (children in CSR form), and the per-
/// subtree stand-in holders. reset() then solves a copy map from scratch
/// as a pure integer walk (no allocation, no std::function), and
/// add_copy(p) exploits the structure of a placement — a new copy at P(p)
/// only diverts the request streams that previously forwarded *through*
/// P(p), all served until now by the first copy above p — instead of
/// re-routing all 2^m nodes: the captured set is collected from p's
/// pruned forest subtree, the old server sheds it from its maintained
/// contributor list with one linear merge, and the copyless ancestors'
/// forwarded[] entries are merely flagged and re-summed lazily when a
/// reader (report()/loads()) actually wants them.
///
/// Bit-identity with solve_load: every changed accumulator is re-summed
/// over its contributor set in ascending-PID order, the exact order the
/// from-scratch solver adds them, so served/forwarded/fault_rate/
/// mean_hops/max_served match the oracle bit for bit. Configurations the
/// structured update does not model (faulting or subtree-migrating
/// streams, which the balance loop never produces because every subtree
/// keeps its insertion copy) transparently fall back to a full reset and
/// stay exact.
class IncrementalLoadSolver {
 public:
  /// View-routed solver (any b >= 0). The view, liveness map and demand
  /// must outlive the solver and stay unchanged; only the copy map may
  /// change between calls.
  IncrementalLoadSolver(const core::SubtreeView& view,
                        const util::StatusWord& live, const Workload& demand);

  /// Tree-routed solver — identical to the b = 0 view.
  IncrementalLoadSolver(const core::LookupTree& tree,
                        const util::StatusWord& live, const Workload& demand);

  /// Full solve of `has_copy`, replacing any previous state. The solver
  /// keeps a reference to the map: callers mutate it (set has_copy[p] = 1)
  /// and then call add_copy(p).
  void reset(const CopyMap& has_copy);

  /// Incremental update after the caller set has_copy[pid] = 1 on the map
  /// passed to reset(). Requires a preceding reset(); pid must be live and
  /// previously copyless.
  void add_copy(std::uint32_t pid);

  /// The report for the current copy map (scalar fields refreshed
  /// lazily). Valid until the next reset()/add_copy() call.
  [[nodiscard]] const LoadReport& report();

  /// Cheaper sibling of report() for the balance loop: served[] and
  /// forwarded[] are brought exactly up to date (stale forwarded entries
  /// are flushed), but the derived scalar fields (max_served, mean_hops,
  /// fault_rate) are left as report() last computed them. Policies only
  /// read the per-node vectors, so the loop can skip the O(n) scalar
  /// pass per iteration.
  [[nodiscard]] const LoadReport& loads();

  /// The most overloaded node, as LoadReport::most_overloaded, but O(1)
  /// amortized via an incrementally maintained max tracker instead of a
  /// full scan or sort per balance-loop iteration.
  [[nodiscard]] std::optional<std::uint32_t> most_overloaded(double capacity);

  /// False when the current copy map has faulting or migrating streams,
  /// i.e. add_copy() falls back to full resets. Exposed for tests.
  [[nodiscard]] bool fast_path() const noexcept { return !exotic_; }

 private:
  using HeapEntry = std::pair<double, std::uint32_t>;  // (served, pid)

  void reset_internal();
  [[nodiscard]] std::uint32_t pid_at(std::uint32_t sub_vid,
                                     std::uint32_t sid) const noexcept;
  [[nodiscard]] std::uint32_t find_live_scan(std::uint32_t sid,
                                             std::uint32_t from_sv) const;
  void collect_pruned(std::uint32_t from,
                      std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                          out) const;
  void shed_captured(std::uint32_t pid);
  void heap_push(std::uint32_t pid);
  void prune_heap();
  void mark_forwarded_stale(std::uint32_t pid);
  void flush_forwarded();

  // Static structure (fixed tree, liveness and demand).
  core::SubtreeView view_;
  const util::StatusWord* live_;
  const Workload* demand_;
  std::uint32_t slots_;
  std::uint32_t subtree_count_;
  std::vector<std::uint32_t> anchor_;     ///< pid -> within-subtree FP, kNone
  std::vector<std::uint32_t> sid_of_;     ///< pid -> subtree identifier
  std::vector<std::uint32_t> svid_of_;    ///< pid -> subtree VID
  std::vector<std::uint32_t> holder_;     ///< sid -> stand-in holder, kNone
  std::vector<char> root_live_;           ///< sid -> subtree root alive?
  std::vector<std::uint32_t> child_start_;  ///< forest children CSR offsets
  std::vector<std::uint32_t> child_list_;   ///< forest children CSR payload

  // Dynamic state for the current copy map.
  const CopyMap* copies_ = nullptr;
  LoadReport report_;
  std::vector<std::int32_t> hops_;  ///< per-requester hop count
  std::vector<char> faulted_;       ///< per-requester fault flag
  bool exotic_ = false;
  bool scalars_dirty_ = true;
  // forwarded[] entries invalidated by add_copy but not yet re-summed.
  // forwarded[q] is a pure function of the current copy map, so the
  // re-sum can run at read time (report()/loads()) instead of once per
  // placement — placements then touch the ancestor chain in O(depth)
  // flag writes rather than one subtree re-sum per copyless ancestor.
  std::vector<char> fwd_stale_;
  std::vector<std::uint32_t> fwd_stale_list_;
  std::vector<HeapEntry> heap_;  ///< lazy max tracker over served[]
  // Per-holder contributor lists: the requesters each copy currently
  // serves, in ascending PID order (reset() visits requesters ascending,
  // so the lists come out sorted for free). A placement then sheds its
  // captured set from the previous server with one linear merge instead
  // of a BFS + sort over that server's subtree.
  //
  // Stored as spans into one contiguous pool instead of 2^m separate
  // vectors: reset() drops every list with two counters, a shed's merge
  // walks one cache-line run, and a replacement either shrinks in place
  // (sheds always shrink) or appends to the pool tail, compacting when
  // dead tail bytes outgrow the live ones.
  struct ContribSpan {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };
  void contrib_replace(std::uint32_t pid, const std::uint32_t* data,
                       std::uint32_t n);
  void contrib_compact();
  std::vector<ContribSpan> contrib_span_;
  std::vector<std::uint32_t> contrib_buf_;
  std::uint64_t contrib_live_ = 0;  ///< sum of span lengths
  // (holder, requester) pairs captured while reset() routes; counting-
  // sorted into the CSR spans afterwards (stable, so each holder's list
  // stays in ascending requester order).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> contrib_pairs_;
  // Scratch buffers reused across add_copy calls ((pid, depth) pairs).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scratch_a_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scratch_b_;
  std::vector<std::uint32_t> scratch_c_;
};

}  // namespace lesslog::sim
