// Simulation engine: event queue + seeded randomness + recurring-process
// helpers. The churn driver and the dynamic examples build on this.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "lesslog/sim/event_queue.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::sim {

class Engine {
 public:
  explicit Engine(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }

  void at(SimTime when, EventFn fn) { queue_.schedule(when, std::move(fn)); }

  void after(SimTime delay, EventFn fn) {
    queue_.schedule(queue_.now() + delay, std::move(fn));
  }

  /// Starts a Poisson process with the given rate (events/time-unit): `fn`
  /// fires at exponentially spaced times until `stop_at`. A rate of 0
  /// schedules nothing.
  void poisson_process(double rate, SimTime stop_at,
                       std::function<void()> fn);

  /// Runs until `until`; returns events executed.
  std::int64_t run_until(SimTime until) { return queue_.run_until(until); }

 private:
  void schedule_next_arrival(double rate, SimTime stop_at,
                             std::shared_ptr<std::function<void()>> fn);

  EventQueue queue_;
  util::Rng rng_;
};

}  // namespace lesslog::sim
