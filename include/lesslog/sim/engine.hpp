// Simulation engine: event queue + seeded randomness + recurring-process
// helpers. The churn driver and the dynamic examples build on this.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "lesslog/sim/event_queue.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::sim {

class Engine {
 public:
  explicit Engine(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }

  // at/after/after_fixed forward the callable itself (not a built
  // EventFn), so raw lambdas take the queue's emplace path: the handler
  // is constructed directly inside its arena slot with no relocates.

  template <typename F>
  void at(SimTime when, F&& fn) {
    queue_.schedule(when, std::forward<F>(fn));
  }

  template <typename F>
  void after(SimTime delay, F&& fn) {
    queue_.schedule(queue_.now() + delay, std::forward<F>(fn));
  }

  /// after() for delays drawn from a small set of fixed constants (the
  /// protocol's retry timeouts): O(1) FIFO-lane scheduling instead of a
  /// heap insertion, with identical execution order. Do not pass computed
  /// delays — every distinct value allocates a lane for the queue's
  /// lifetime.
  template <typename F>
  void after_fixed(SimTime delay, F&& fn) {
    queue_.schedule_after_fixed(delay, std::forward<F>(fn));
  }

  /// Starts a Poisson process with the given rate (events/time-unit): `fn`
  /// fires at exponentially spaced times until `stop_at`. A rate of 0
  /// schedules nothing.
  void poisson_process(double rate, SimTime stop_at,
                       std::function<void()> fn);

  /// Runs until `until`; returns events executed.
  std::int64_t run_until(SimTime until) { return queue_.run_until(until); }

  /// Runs events strictly before `bound`; now() ends at `bound`. The
  /// conservative-window step of the sharded engine (see
  /// EventQueue::run_before).
  std::int64_t run_before(SimTime bound) { return queue_.run_before(bound); }

 private:
  void schedule_next_arrival(double rate, SimTime stop_at,
                             std::shared_ptr<std::function<void()>> fn);

  EventQueue queue_;
  util::Rng rng_;
};

}  // namespace lesslog::sim
