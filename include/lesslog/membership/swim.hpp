// lesslog::membership — a SWIM-style failure detector over the wire seam.
//
// The paper's Section 5 maintains each node's status word by *broadcast*:
// every membership change is announced to everyone, and the simulator's
// oracle mode additionally lets the swarm announce crashes the crashed
// node could never have sent. This library replaces that oracle with a
// real detector in the SWIM family (Das, Gupta, Motivala, DSN'02; the
// cs425_mp3 heartbeat/suspect lists are the direct exemplar):
//
//   * every protocol period T, each live agent pings one uniformly random
//     member it believes alive;
//   * a missing direct ack within `direct_timeout` triggers an indirect
//     probe through k proxies (kPingReq; the proxy relays a kPing with
//     the origin in `requester`, and the target acks the origin);
//   * a probe that ends the period unanswered makes the target *suspect*;
//     a suspect not refuted within `suspect_periods` periods is confirmed
//     dead — only then does the agent's local belief flip and Section 5.3
//     crash recovery run (through proto::Peer::learn_dead, the same entry
//     point the announcement path uses);
//   * suspicion, death, and refutation spread by *piggybacked gossip*:
//     every SWIM datagram carries one (pid, state, incarnation) update
//     packed into the existing 43-byte wire format's file/version fields;
//   * incarnation numbers order the gossip: alive(i) kills suspect(j<i)
//     and refutes dead(j<i); a node that hears itself suspected bumps its
//     own incarnation and gossips the refutation.
//
// One deliberate deviation from wire-faithful SWIM, possible because the
// simulated network cannot spoof a sender: *receiving any SWIM datagram
// from a node is direct evidence it is alive*, so a believed-dead sender
// is resurrected (with an incarnation bump) on receipt. This shortcut
// only accelerates recovery from false confirms; detection latency and
// false-suspicion measurements are unaffected (see docs/MEMBERSHIP.md).
//
// Determinism: each agent draws targets and proxies from its own
// util::Rng seeded by (runtime seed, pid), ticks at times that are a pure
// function of (pid, period), and keeps its member table in ordered maps —
// so a run is a pure function of the seed and the fault schedule, and is
// *identical across shard counts* whenever the network itself draws no
// per-hop randomness (jitter = 0; see abl_membership).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "lesslog/obs/sink.hpp"
#include "lesslog/obs/wire_metrics.hpp"
#include "lesslog/proto/peer.hpp"
#include "lesslog/sim/engine.hpp"
#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/rng.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::membership {

struct SwimConfig {
  double period = 1.0;          ///< protocol period T (simulated seconds)
  double direct_timeout = 0.25; ///< direct-ack wait before the k-proxy round
  int proxies = 3;              ///< k indirect probes per unanswered ping
  int suspect_periods = 3;      ///< periods before suspect -> confirmed dead
  int gossip_repeats = 4;       ///< piggyback retransmissions per update
  /// Every this-many periods, additionally ping one believed-dead member
  /// in deterministic rotation (Serf-style dead-node reclaim). Without it
  /// a fully partitioned fleet never heals: once both sides confirm each
  /// other dead, the normal probe cycle (which only targets
  /// believed-alive members) sends nothing across the healed link, so no
  /// direct evidence can ever refute the false confirms. One reclaim ping
  /// per period bounds the re-merge at |believed dead| periods — the
  /// rotation walks the whole ID space, and unoccupied IDs count.
  int dead_probe_periods = 1;
  std::uint64_t seed = 1;       ///< base of the per-agent (seed, pid) streams
};

/// The SWIM-driven liveness belief a Peer routes by. Mechanically a
/// copy-on-write bitmap like util::OracleView; the difference is who
/// feeds it — the failure detector's confirms and alive-evidence instead
/// of ground-truth announcements. Suspects stay *live* in the bitmap
/// (SWIM routes to suspects until the confirm), so a false suspicion
/// never costs availability by itself.
class SwimView final : public util::MutableLivenessView {
 public:
  explicit SwimView(util::CowStatus status) noexcept
      : MutableLivenessView(&status.read()), status_(std::move(status)) {}

  void believe_live(std::uint32_t pid) override {
    if (!status_.read().is_live(pid)) {
      status_.mutate().set_live(pid);
      rebind(&status_.read());
    }
  }

  void believe_dead(std::uint32_t pid) override {
    if (status_.read().is_live(pid)) {
      status_.mutate().set_dead(pid);
      rebind(&status_.read());
    }
  }

  [[nodiscard]] util::CowStatus snapshot() const override {
    return status_.snapshot();
  }

  void reset(util::CowStatus fresh) override {
    status_ = std::move(fresh);
    rebind(&status_.read());
    suspects_.clear();  // a re-seeded belief starts with no doubts
  }

  /// Soft doubt: the owning agent mirrors its member-table suspect
  /// entries here (raise on suspect, clear on refute/confirm/reset), so
  /// routing can skip doubted targets without reaching into the agent.
  [[nodiscard]] bool is_suspected(std::uint32_t pid) const noexcept override {
    return std::binary_search(suspects_.begin(), suspects_.end(), pid);
  }

  [[nodiscard]] const std::vector<std::uint32_t>* suspects()
      const noexcept override {
    return suspects_.empty() ? nullptr : &suspects_;
  }

  void set_suspected(std::uint32_t pid, bool suspected) {
    const auto it =
        std::lower_bound(suspects_.begin(), suspects_.end(), pid);
    const bool present = it != suspects_.end() && *it == pid;
    if (suspected && !present) {
      suspects_.insert(it, pid);
    } else if (!suspected && present) {
      suspects_.erase(it);
    }
  }

  void clear_suspects() { suspects_.clear(); }

 private:
  util::CowStatus status_;
  std::vector<std::uint32_t> suspects_;  ///< ascending; typically tiny
};

class SwimRuntime;

/// Protocol tallies (monotonic). Each agent keeps its own — everything an
/// agent does runs on its home shard's worker, so the counters have a
/// single writer and the fleet total (summed at top-level barriers) is
/// identical for every shard count. A shared set of counters bumped from
/// every worker would race, and the lost updates would make the totals
/// depend on the shard layout.
struct Tally {
  std::int64_t pings = 0;
  std::int64_t ping_reqs = 0;
  std::int64_t acks = 0;
  std::int64_t suspects = 0;
  std::int64_t confirms = 0;
  std::int64_t false_suspects = 0;   ///< suspect raised on a live node
  std::int64_t false_confirms = 0;   ///< confirm issued on a live node
  std::int64_t refutations = 0;
  std::int64_t incarnation_bumps = 0;
  std::int64_t gossip_bytes = 0;

  Tally& operator+=(const Tally& o) noexcept {
    pings += o.pings;
    ping_reqs += o.ping_reqs;
    acks += o.acks;
    suspects += o.suspects;
    confirms += o.confirms;
    false_suspects += o.false_suspects;
    false_confirms += o.false_confirms;
    refutations += o.refutations;
    incarnation_bumps += o.incarnation_bumps;
    gossip_bytes += o.gossip_bytes;
    return *this;
  }

  friend bool operator==(const Tally&, const Tally&) = default;
};

/// One confirmed death as some agent observed it. Logged per agent
/// (single writer) and drained at top-level barriers, where the driver
/// takes the *sim-time minimum* over true confirms as a crash's detection
/// latency — a shared "first confirm wins" callback would record thread
/// arrival order, which varies with the shard layout.
struct ConfirmEvent {
  double time = 0.0;         ///< simulated confirm instant
  std::uint32_t subject = 0; ///< who was confirmed dead
  std::uint32_t by = 0;      ///< the confirming agent
  bool false_confirm = false;
};

/// One node's failure detector: the per-peer state machine (probe cycle,
/// member table with incarnations, gossip queue) plus its SwimView.
/// Created and owned by the SwimRuntime; wired into the colocated Peer
/// via set_liveness_view + set_membership_hook.
class SwimAgent {
 public:
  SwimAgent(SwimRuntime& runtime, proto::Peer& peer, sim::Engine& engine,
            const obs::WireMetrics* metrics);

  [[nodiscard]] core::Pid pid() const noexcept { return peer_->pid(); }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] SwimView& view() noexcept { return view_; }
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return self_incarnation_;
  }

  /// The peer's process comes up / goes down (ground truth about *its
  /// own* process only — a node knows whether it is running).
  void enable();
  void disable();

  /// Schedules this agent's periodic ticks up to the runtime horizon.
  void start_ticking();

  /// Wire entry (from Peer's membership hook).
  void on_message(const proto::Message& m);

 private:
  enum State : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };
  struct Member {
    State state = kAlive;
    std::uint64_t incarnation = 0;
    std::int64_t suspect_period = 0;  ///< period index the suspicion began
  };
  struct Gossip {
    std::uint32_t pid = 0;
    State state = kAlive;
    std::uint64_t incarnation = 0;
    int remaining = 0;
  };

  void tick();
  void probe();
  void probe_dead();  ///< dead-node reclaim ping (no suspicion machinery)
  void send_ping(core::Pid to, core::Pid origin, std::uint64_t probe_id);
  void send_ping_reqs();
  void send_ack(const proto::Message& ping);
  void start_suspect(std::uint32_t pid);
  void confirm(std::uint32_t pid, Member& mm);
  void apply_gossip(std::uint32_t pid, State state, std::uint64_t inc);
  void direct_evidence_alive(core::Pid sender);
  void enqueue_gossip(std::uint32_t pid, State state, std::uint64_t inc);
  void attach_payload(proto::Message& m);
  [[nodiscard]] std::optional<core::Pid> pick_live(core::Pid exclude_a,
                                                   core::Pid exclude_b);
  [[nodiscard]] Member& member(std::uint32_t pid);

  friend class SwimRuntime;  ///< sums tally_, drains confirm_log_

  SwimRuntime* runtime_;
  proto::Peer* peer_;
  sim::Engine* engine_;
  const obs::WireMetrics* metrics_;
  SwimView view_;
  util::Rng rng_;
  bool enabled_ = true;
  bool ticking_ = false;
  /// Bumped on every disable/enable so timers scheduled before a
  /// membership cycle see a stale generation and no-op (peers are reused
  /// across rejoin cycles, and so are their agents).
  std::uint64_t generation_ = 0;
  std::uint64_t self_incarnation_ = 0;
  std::int64_t period_index_ = 0;
  /// Next slot on the absolute tick grid (k*period + phase); -1 until
  /// anchored. See start_ticking for why the grid is absolute.
  std::int64_t tick_k_ = -1;
  /// Known remote states, keyed by PID. Ordered map: confirm scans
  /// iterate it, and their order decides message order — an unordered
  /// container would leak address entropy into the schedule.
  std::map<std::uint32_t, Member> members_;
  std::deque<Gossip> gossip_queue_;
  std::uint32_t dead_cursor_ = 0;  ///< reclaim rotation position
  /// Single-writer accounting (see Tally / ConfirmEvent): mutated only on
  /// this agent's home shard worker, read by the runtime at barriers.
  Tally tally_;
  std::vector<ConfirmEvent> confirm_log_;
  // Outstanding probe bookkeeping (one probe in flight per period).
  std::uint64_t next_probe_id_;
  std::uint64_t outstanding_id_ = 0;
  std::uint32_t outstanding_target_ = 0;
  bool outstanding_ = false;
  bool acked_ = false;
};

/// Owns every agent, drives the armed detection window, and aggregates
/// protocol tallies. Registered as a DeliverySink on each shard network
/// so membership transitions (crash/join) enable and disable the right
/// agent. The tallies are plain integers kept unconditionally — the
/// chaos auditor and the membership bench need them even under
/// LESSLOG_NO_METRICS; the obs counters are the compiled-out layer.
class SwimRuntime final : public obs::DeliverySink {
 public:
  SwimRuntime(SwimConfig cfg, int m);
  ~SwimRuntime() override;

  SwimRuntime(const SwimRuntime&) = delete;
  SwimRuntime& operator=(const SwimRuntime&) = delete;

  [[nodiscard]] const SwimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] double horizon() const noexcept { return horizon_; }

  /// Creates (or re-seeds) the agent colocated with `peer`, installs its
  /// SwimView as the peer's liveness belief (seeded from the peer's
  /// current belief) and hooks SWIM traffic. `engine` is the peer's home
  /// shard engine; `metrics` its shard's cells (may be null).
  SwimAgent& attach_peer(proto::Peer& peer, sim::Engine& engine,
                         const obs::WireMetrics* metrics);

  [[nodiscard]] SwimAgent* agent(core::Pid p) noexcept {
    return p.value() < agents_.size() ? agents_[p.value()].get() : nullptr;
  }

  /// Extends the detection window to `horizon` (absolute simulated time)
  /// and schedules ticks for every enabled agent. Bounded ticking is what
  /// lets a swarm settle(): past the horizon no agent reschedules.
  void arm(double horizon);

  /// True when every enabled agent's belief equals `truth` — the epoch's
  /// detection-convergence predicate.
  [[nodiscard]] bool converged(const util::StatusWord& truth) const;

  /// Ground truth oracle for false-suspicion accounting only (never read
  /// by the protocol): queried at suspect/confirm instants, which sit
  /// between the top-level barriers where truth mutates.
  void set_truth_provider(std::function<const util::StatusWord*()> fn) {
    truth_ = std::move(fn);
  }

  /// Fleet-total protocol tallies since construction (monotonic): the sum
  /// of every agent's single-writer share. Barrier-only — callable when no
  /// shard worker is running (between run_until / settle calls).
  using Tally = membership::Tally;
  [[nodiscard]] Tally tally() const;

  /// Moves out every agent's confirm log, merged and sorted by
  /// (time, subject, by) so the order is a pure function of the schedule.
  /// Barrier-only, like tally().
  [[nodiscard]] std::vector<ConfirmEvent> drain_confirms();

  // DeliverySink: membership transitions flow in via notify_peer_event.
  void on_deliver(double, const proto::Message&) override {}
  void on_peer(double time, core::Pid peer, bool live) override;

 private:
  friend class SwimAgent;
  [[nodiscard]] bool truth_live(std::uint32_t pid) const {
    if (!truth_) return true;  // no oracle wired: nothing counts as false
    const util::StatusWord* word = truth_();
    return word == nullptr || word->is_live(pid);
  }

  SwimConfig cfg_;
  int m_;
  double horizon_ = 0.0;
  std::vector<std::unique_ptr<SwimAgent>> agents_;
  std::function<const util::StatusWord*()> truth_;
};

// -- Piggyback wire packing -------------------------------------------------
//
// One gossip update rides the unused file/version fields of a SWIM
// message: version carries the incarnation verbatim; file packs
//   bits  0..31  subject pid
//   bits 32..33  state (0 alive, 1 suspect, 2 dead)
//   bit  40      has-payload flag
// A SWIM message with bit 40 clear carries no update (nothing queued and
// no self-alive default — only pre-enable traffic, which does not occur).

inline constexpr std::uint64_t kSwimPayloadFlag = 1ULL << 40;

[[nodiscard]] inline std::uint64_t pack_gossip(std::uint32_t pid,
                                               std::uint8_t state) noexcept {
  return kSwimPayloadFlag | (static_cast<std::uint64_t>(state & 3u) << 32) |
         pid;
}

[[nodiscard]] inline bool has_gossip(std::uint64_t packed) noexcept {
  return (packed & kSwimPayloadFlag) != 0;
}

[[nodiscard]] inline std::uint32_t gossip_pid(std::uint64_t packed) noexcept {
  return static_cast<std::uint32_t>(packed & 0xFFFFFFFFu);
}

[[nodiscard]] inline std::uint8_t gossip_state(std::uint64_t packed) noexcept {
  return static_cast<std::uint8_t>((packed >> 32) & 3u);
}

}  // namespace lesslog::membership
