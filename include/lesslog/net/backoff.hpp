// Capped exponential backoff for reconnect scheduling — the same clamp
// shape as proto::RttEstimator's adaptive delays (floor, multiply, cap)
// and the client's capped retry backoff, applied to connection attempts:
// the first retry waits `base`, each subsequent one multiplies by
// `factor`, and no wait exceeds `cap`. A successful connect resets the
// ladder. Deterministic (no jitter): a transport serves one process, so
// thundering-herd desynchronization is the host map's problem, not this
// class's.
#pragma once

#include <algorithm>

namespace lesslog::net {

class Backoff {
 public:
  constexpr Backoff(double base, double factor, double cap) noexcept
      : base_(base), factor_(factor), cap_(cap), current_(base) {}

  /// The delay to wait before the next attempt; advances the ladder.
  constexpr double next() noexcept {
    const double delay = current_;
    current_ = std::min(current_ * factor_, cap_);
    return delay;
  }

  /// The delay next() would return, without advancing.
  [[nodiscard]] constexpr double current() const noexcept { return current_; }

  /// Back to the floor (called on a successful connect).
  constexpr void reset() noexcept { current_ = base_; }

 private:
  double base_;
  double factor_;
  double cap_;
  double current_;
};

}  // namespace lesslog::net
