// Byte-stream -> fixed-frame reassembly for the socket transport.
//
// TCP delivers a byte stream: one read() may return half a frame,
// exactly one frame, or several frames plus a tail (short and coalesced
// reads). Each connection owns a RingBuffer that reads scatter into (two
// regions when the free space wraps) and a FrameReassembler that pops
// aligned kWireSize-byte records back out. The reassembler never
// interprets the bytes: every popped frame goes to proto::decode, whose
// reject path is counted (the Network corrupted counter) — a garbage
// stream degrades into counted drops, never an assert.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "lesslog/proto/message.hpp"

namespace lesslog::net {

/// Fixed-capacity byte ring. Capacity is rounded up to a power of two so
/// index arithmetic is a mask, not a modulo. The writable free space is
/// exposed as up to two contiguous spans sized for readv-style scatter
/// input; pop() reassembles across the wrap.
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t free_space() const noexcept {
    return buf_.size() - size_;
  }

  /// The writable free space as up to two contiguous regions (the second
  /// is empty unless the free space wraps). Write into them in order,
  /// then commit() the byte count actually produced.
  [[nodiscard]] std::array<std::span<std::uint8_t>, 2> write_spans() noexcept;

  /// Marks `n` bytes of the write_spans() regions as filled.
  /// Precondition: n <= free_space() as of the matching write_spans().
  void commit(std::size_t n) noexcept;

  /// Copy-in convenience: appends as much of `bytes` as fits; returns
  /// the accepted count (callers treat a short accept as backpressure).
  std::size_t append(std::span<const std::uint8_t> bytes) noexcept;

  /// Copies `n` bytes out into `dst` and consumes them; false (and no
  /// consumption) when fewer than `n` bytes are buffered.
  bool pop(std::uint8_t* dst, std::size_t n) noexcept;

 private:
  std::vector<std::uint8_t> buf_;  // power-of-two size
  std::size_t head_ = 0;           // read index
  std::size_t size_ = 0;           // bytes buffered
};

/// One connection's frame cursor: a ring plus the fixed-record pop. The
/// stream has no framing header — the wire format is exactly
/// proto::kWireSize bytes per datagram, so reassembly is alignment
/// bookkeeping: bytes [43k, 43(k+1)) of the stream are frame k.
class FrameReassembler {
 public:
  explicit FrameReassembler(std::size_t ring_capacity = std::size_t{1} << 14)
      : ring_(ring_capacity) {}

  [[nodiscard]] RingBuffer& ring() noexcept { return ring_; }
  [[nodiscard]] const RingBuffer& ring() const noexcept { return ring_; }

  /// Pops the next complete frame; false when fewer than kWireSize bytes
  /// are buffered (the tail stays put until more bytes arrive).
  bool next_frame(proto::WireBuffer& out) noexcept;

  /// Complete frames popped so far.
  [[nodiscard]] std::int64_t frames() const noexcept { return frames_; }
  /// Bytes currently buffered (the partial tail between reads).
  [[nodiscard]] std::size_t buffered() const noexcept { return ring_.size(); }

 private:
  RingBuffer ring_;
  std::int64_t frames_ = 0;
};

}  // namespace lesslog::net
