// Level-triggered epoll reactor: the single blocking point of a serve or
// loadgen process.
//
// Level-triggered (the epoll default) over edge-triggered on purpose: a
// handler that drains less than everything — a read capped by ring
// backpressure, a write capped by the kernel buffer — is simply called
// again on the next poll instead of wedging until new activity. The
// reactor owns no sockets and no protocol: it maps fds to callbacks and
// dispatches whatever epoll_wait reports. Callbacks may add or remove
// fds (including their own) mid-dispatch; removal is safe because each
// dispatch re-checks registration and pins the callback it invokes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace lesslog::net {

class Reactor {
 public:
  /// Invoked with the ready-event bitmask (EPOLLIN | EPOLLOUT | ...).
  using Callback = std::function<void(std::uint32_t events)>;

  /// Throws std::system_error when epoll_create1 fails.
  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for `events`; throws std::system_error on failure.
  /// One callback per fd; re-adding an fd is a logic error (remove first).
  void add(int fd, std::uint32_t events, Callback cb);

  /// Changes the event mask of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Unregisters `fd` (no-op when not registered). Does not close it.
  void remove(int fd);

  [[nodiscard]] bool watched(int fd) const {
    return callbacks_.find(fd) != callbacks_.end();
  }
  [[nodiscard]] std::size_t watched_count() const noexcept {
    return callbacks_.size();
  }

  /// Waits up to `timeout_ms` (0 = return immediately, -1 = block) and
  /// dispatches every ready callback once. Returns the number of
  /// callbacks dispatched. EINTR counts as zero ready, not an error.
  int poll(int timeout_ms);

 private:
  int epfd_ = -1;
  /// shared_ptr so a callback that removes its own (or another) fd
  /// mid-dispatch cannot free the std::function currently executing.
  std::unordered_map<int, std::shared_ptr<Callback>> callbacks_;
};

}  // namespace lesslog::net
