// ServeHost: one real process embodying one host-map entry's PID range,
// running the unmodified proto::Peer stack over the socket transport.
//
// The splice is the Network forward hook (proto::Network::set_forward):
// a peer's send whose destination PID lives in this process falls
// through to the local discrete-event engine exactly as in the
// simulator; a send to any other PID is taken by the hook and written
// to the wire as its 43-byte image. Inbound frames are scheduled with
// Network::deliver_at at the current engine time, so they enter the
// same decode/dispatch funnel as simulated traffic — including the
// counted corrupted-drop path for bytes that fail to decode.
//
// Time: the engine is pumped against the wall clock. Each step runs
// every event with timestamp < elapsed wall seconds, then blocks in
// epoll until the next timer or socket activity. Simulated seconds and
// wall seconds coincide, so peer retransmit timers, client timeouts,
// and latency accounting work unmodified; the simulator remains the
// deterministic twin of the same configuration (see docs/TRANSPORT.md).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <ostream>

#include "lesslog/net/transport.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/proto/peer.hpp"
#include "lesslog/sim/engine.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::net {

struct ServeConfig {
  int m = 6;             ///< ID-space bits
  int b = 2;             ///< fault bits (2^b holders per file)
  std::size_t self = 0;  ///< this process's host-map entry (serve role)
  HostMap hosts;
  std::uint64_t seed = 1;
  double duration = 0.0;  ///< wall seconds to serve; 0 = until stop()
  proto::PeerConfig peer;
  TransportConfig transport;

  /// Throws std::invalid_argument on nonsense (self out of range or not
  /// a serve entry, PIDs outside the ID space, bad m/b).
  void validate() const;
};

class ServeHost {
 public:
  explicit ServeHost(ServeConfig cfg);

  /// Binds the listener, starts outgoing connects, attaches the local
  /// peers, installs the forward hook. Idempotent.
  void start();

  /// Wall-clock pump until the configured duration elapses (or stop()).
  void run();

  /// One pump iteration: run due engine events, then block in epoll for
  /// at most `max_wait_ms`. Tests drive this directly.
  int step(int max_wait_ms);

  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool owns(core::Pid pid) const noexcept {
    return pid.value() >= cfg_.hosts.entry(cfg_.self).lo &&
           pid.value() <= cfg_.hosts.entry(cfg_.self).hi;
  }

  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] proto::Network& network() noexcept { return network_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const ServeConfig& config() const noexcept { return cfg_; }
  /// Wall seconds since run()/start().
  [[nodiscard]] double elapsed() const;

  /// One-line key=value stats (decode drops, frames, queue overflow) —
  /// what the transport_smoke gate parses.
  void write_stats(std::ostream& out) const;

 private:
  ServeConfig cfg_;
  sim::Engine engine_;
  proto::Network network_;
  util::CowStatus status_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<proto::Peer>> peers_;  ///< local PIDs only
  std::chrono::steady_clock::time_point t0_;
  bool started_ = false;
  /// Atomic so a controlling thread can stop() a run()-ing host.
  std::atomic<bool> stopped_ = false;
};

}  // namespace lesslog::net
