// LoadGen: a client-role process driving real GET traffic through the
// socket transport, using the unmodified proto::Client reliability
// stack (timeouts, retries, subtree migration).
//
// The loadgen embodies the host map's client entry: one PID that every
// serving peer believes dead (so no file placement or forwarding ever
// targets it) but that still receives replies, because peers answer a
// GET straight to the requester PID with no liveness check. Locally it
// runs a Peer (the reply funnel) + Client over an engine pumped against
// the wall clock, exactly like ServeHost — the Client's retry timers
// fire in wall time.
//
// Two phases:
//   1. Insert: `files` files are placed via kInsertRequest to each
//      holder that core::SubtreeView::insertion_targets resolves (the
//      same placement the simulator's Swarm::insert uses), retried
//      until acked or the setup deadline expires.
//   2. Get: fixed-rate GETs (rate req/s for `duration` seconds) against
//      uniformly random files, measured end to end; the report carries
//      every latency sample plus exact p50/p99.
#pragma once

#include <chrono>
#include <memory>
#include <ostream>
#include <vector>

#include "lesslog/net/transport.hpp"
#include "lesslog/obs/metrics.hpp"
#include "lesslog/obs/wire_metrics.hpp"
#include "lesslog/proto/client.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/proto/peer.hpp"
#include "lesslog/sim/engine.hpp"
#include "lesslog/util/status_word.hpp"

namespace lesslog::net {

struct LoadGenConfig {
  int m = 6;
  int b = 2;
  std::size_t self = 0;  ///< this process's host-map entry (client role)
  HostMap hosts;
  std::uint64_t seed = 1;
  int files = 32;           ///< catalog size inserted in phase 1
  double rate = 200.0;      ///< GETs per second in phase 2
  double duration = 2.0;    ///< GET phase length (wall seconds)
  double setup_timeout = 20.0;  ///< insert-phase deadline (wall seconds)
  double drain_timeout = 10.0;  ///< post-phase wait for stragglers
  proto::ClientConfig client;   ///< timeout/retry knobs
  TransportConfig transport;

  void validate() const;
};

struct LoadGenReport {
  std::int64_t files_requested = 0;  ///< catalog size
  std::int64_t files_inserted = 0;   ///< fully acked on every holder
  std::int64_t gets_issued = 0;
  std::int64_t gets_ok = 0;
  std::int64_t gets_failed = 0;
  std::vector<double> latencies;  ///< seconds, completed GETs

  [[nodiscard]] bool all_ok() const noexcept {
    return files_inserted == files_requested && gets_issued > 0 &&
           gets_failed == 0 && gets_ok == gets_issued;
  }
  [[nodiscard]] double p50() const;
  [[nodiscard]] double p99() const;
};

class LoadGen {
 public:
  explicit LoadGen(LoadGenConfig cfg);

  /// Installs the network splice, binds the listener, starts outgoing
  /// connects. Idempotent; run() calls it. Exposed so tests can bind on
  /// port 0, read the real port, and patch peers before traffic starts.
  void start();

  /// Runs both phases to completion; returns the report.
  LoadGenReport run();

  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] proto::Network& network() noexcept { return network_; }
  [[nodiscard]] const proto::Client& client() const noexcept {
    return *client_;
  }
  /// The obs registry backing the wire metrics (histogram p50/p99 for
  /// --metrics output).
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  /// One-line key=value stats in the same shape as ServeHost's.
  void write_stats(std::ostream& out, const LoadGenReport& report) const;

 private:
  [[nodiscard]] double elapsed() const;
  int step(int max_wait_ms);
  /// Pumps until `done()` or the wall deadline; returns done().
  bool pump_until(const std::function<bool()>& done, double deadline);

  LoadGenConfig cfg_;
  sim::Engine engine_;
  proto::Network network_;
  util::CowStatus status_;
  obs::Registry registry_;
  obs::WireMetrics metrics_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<proto::Peer> peer_;     ///< the client PID, reply funnel
  std::unique_ptr<proto::Client> client_;
  std::chrono::steady_clock::time_point t0_;
  bool started_ = false;
};

}  // namespace lesslog::net
