// Socket transport behind the proto::Network seam.
//
// A deployment is a static host map: each entry owns a contiguous PID
// range served by one process at host:port (role `serve`), or a single
// client PID driven by a loadgen process (role `client`). Every process
// runs one Transport: a listening socket for inbound frames plus one
// outgoing connection per other entry. Sends are unidirectional — the
// (A, B) ordered pair uses A's outgoing connection to B, so there is no
// connection-dedup protocol; each accepted socket is read-only.
//
// The transport moves opaque kWireSize-byte frames. It never decodes:
// inbound frames go to the frame handler (the serve host feeds them to
// Network::deliver_at, where a decode reject bumps the counted corrupted
// drop), and outbound frames are byte images the Network already
// encoded. Loss model matches the simulator's best-effort contract: a
// frame sent while the write queue is over its cap, or while the link is
// down longer than the queue absorbs, is a counted drop — the
// client/peer retry layers own recovery, exactly as they do under the
// simulated drop_probability.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lesslog/core/ids.hpp"
#include "lesslog/net/backoff.hpp"
#include "lesslog/net/frame.hpp"
#include "lesslog/net/reactor.hpp"
#include "lesslog/proto/message.hpp"

namespace lesslog::net {

struct HostEntry {
  std::uint32_t lo = 0;  ///< first PID (inclusive)
  std::uint32_t hi = 0;  ///< last PID (inclusive)
  std::string host;      ///< numeric IPv4, e.g. "127.0.0.1"
  std::uint16_t port = 0;
  bool client = false;   ///< client-role entry (a loadgen's single PID)
};

/// The static deployment map, identical in every process. Text form is
/// `;`-separated entries `serve:LO-HI:HOST:PORT` / `client:PID:HOST:PORT`.
class HostMap {
 public:
  /// Throws std::invalid_argument naming the malformed piece.
  [[nodiscard]] static HostMap parse(const std::string& text);

  void add(HostEntry entry) { entries_.push_back(std::move(entry)); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const HostEntry& entry(std::size_t i) const {
    return entries_.at(i);
  }

  /// The entry index owning `pid`, or nullopt (an unmapped PID).
  [[nodiscard]] std::optional<std::size_t> owner_of(
      std::uint32_t pid) const noexcept;

  /// Patches one entry's port — the port-0 (ephemeral bind) test flow:
  /// bind every transport first, read the real ports, patch, connect.
  void set_port(std::size_t i, std::uint16_t port) {
    entries_.at(i).port = port;
  }

  /// Throws std::invalid_argument on overlap, inverted ranges, empty
  /// hosts, or a multi-PID client entry.
  void validate() const;

 private:
  std::vector<HostEntry> entries_;
};

struct TransportConfig {
  std::size_t ring_capacity = std::size_t{1} << 14;  ///< per-connection
  /// Per-link outbound queue cap in bytes. A frame that would push the
  /// queue past the cap is dropped-newest and counted — bounded memory
  /// under a stalled peer, and the retry layer treats it as wire loss.
  std::size_t write_queue_cap = std::size_t{256} << 10;
  double backoff_base = 0.05;   ///< first reconnect delay (seconds)
  double backoff_factor = 2.0;  ///< per-failure multiplier
  double backoff_cap = 2.0;     ///< reconnect delay ceiling (seconds)
};

struct TransportStats {
  std::int64_t frames_in = 0;   ///< complete frames handed to the handler
  std::int64_t frames_out = 0;  ///< frames accepted for send
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  std::int64_t overflow_dropped = 0;    ///< sends refused: queue over cap
  std::int64_t unroutable_dropped = 0;  ///< sends refused: PID unmapped
  std::int64_t connects = 0;            ///< successful outgoing connects
  std::int64_t reconnects = 0;  ///< connects that followed a disconnect
  std::int64_t accepts = 0;
  std::int64_t disconnects = 0;  ///< lost links (either direction)
};

class Transport {
 public:
  using FrameHandler = std::function<void(const proto::WireBuffer&)>;

  /// `self` is this process's entry index in `hosts`. Validates the map.
  Transport(HostMap hosts, std::size_t self, TransportConfig cfg = {});
  ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Sink for every reassembled inbound frame. Set before bind().
  void set_frame_handler(FrameHandler handler) {
    on_frame_ = std::move(handler);
  }

  /// Binds and listens on the self entry's port (0 = ephemeral; read the
  /// real port back with listen_port()). Throws std::system_error.
  void bind();
  [[nodiscard]] std::uint16_t listen_port() const noexcept { return port_; }

  /// Starts a non-blocking connect toward every other entry; progress and
  /// retries happen inside poll().
  void connect_all();

  /// Queues one frame toward the process owning `to`. False when the
  /// frame was dropped (unmapped PID, or the link's queue is over cap) —
  /// a counted best-effort loss, mirroring the simulator's drop path.
  bool send(core::Pid to, const proto::WireBuffer& wire);

  /// One reactor turn: waits up to `timeout_ms` (clamped down to the
  /// nearest reconnect deadline), dispatches ready sockets, then runs
  /// due reconnect attempts. Returns callbacks dispatched.
  int poll(int timeout_ms);

  /// True when the outgoing link to entry `i` is established.
  [[nodiscard]] bool connected_to(std::size_t i) const;
  /// True when outgoing links to every other entry are established.
  [[nodiscard]] bool fully_connected() const;

  [[nodiscard]] const TransportStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const HostMap& hosts() const noexcept { return hosts_; }
  [[nodiscard]] std::size_t self() const noexcept { return self_; }
  [[nodiscard]] Reactor& reactor() noexcept { return reactor_; }

  /// Patches entry `i`'s port before connect_all() (port-0 test flow).
  void set_peer_port(std::size_t i, std::uint16_t port) {
    hosts_.set_port(i, port);
  }

  /// Closes every socket (idempotent; the destructor calls it).
  void close();

 private:
  enum class LinkState : std::uint8_t { kIdle, kConnecting, kConnected };

  /// One outgoing link (this process -> entry index). The byte queue is
  /// a vector with a consumed-prefix cursor: flush() writes from
  /// `queue_head`, and the vector compacts when fully drained.
  struct OutLink {
    int fd = -1;
    LinkState state = LinkState::kIdle;
    std::vector<std::uint8_t> queue;
    std::size_t queue_head = 0;
    Backoff backoff{0.05, 2.0, 2.0};
    double retry_at = 0.0;  ///< monotonic seconds; next connect attempt
    bool attempted = false;  ///< connect_all() reached this link
    bool ever_connected = false;
  };

  /// One accepted inbound connection (read-only).
  struct InConn {
    int fd = -1;
    FrameReassembler frames;
  };

  [[nodiscard]] double now_s() const;
  [[nodiscard]] std::size_t queued_bytes(const OutLink& l) const noexcept {
    return l.queue.size() - l.queue_head;
  }
  void start_connect(std::size_t index);
  void on_connect_ready(std::size_t index, std::uint32_t events);
  void on_out_readable(std::size_t index, std::uint32_t events);
  void fail_link(std::size_t index);
  void flush(std::size_t index);
  void update_out_interest(std::size_t index);
  void on_accept_ready();
  void on_in_readable(int fd, std::uint32_t events);
  void close_in(int fd);

  HostMap hosts_;
  std::size_t self_;
  TransportConfig cfg_;
  Reactor reactor_;
  FrameHandler on_frame_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<OutLink> links_;  ///< parallel to hosts_ entries
  std::vector<InConn> inbound_;
  TransportStats stats_;
  std::chrono::steady_clock::time_point epoch_;  ///< now_s() anchor
};

}  // namespace lesslog::net
