// The chaos driver: runs a swarm through a deterministic fault schedule
// and audits every quiescent point.
//
// Epoch structure (cfg.epochs times):
//   1. install this epoch's fault plan (windows all close before the
//      epoch does) and schedule its membership ops and Poisson GETs;
//   2. run to the epoch boundary, then settle (drains every in-flight
//      exchange, retry and timeout — the wire is clean and idle);
//   3. repair: reannounce ground-truth liveness (the anti-entropy pass a
//      real deployment's failure detector provides) and settle again;
//   4. audit (chaos/audit.hpp) — violations are collected, not thrown.
//
// Everything — fault windows, op kinds, op targets, workload arrivals —
// derives from ChaosConfig alone, so Driver(cfg).run() is bit-identical
// across runs and machines. The returned Report carries the executed
// schedule for the replay artifact.
//
// cfg.shards > 1 runs the same schedule shape against a ShardedSwarm
// (run_sharded): membership ops and GET arrivals are pre-materialized
// into a top-level timeline, applied between run_until() barriers, so no
// control-plane mutation ever executes on a shard worker. Per-epoch
// plans are installed on every shard's network; workload completions are
// tallied in per-shard cells (each written only by its shard's worker).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "lesslog/chaos/audit.hpp"
#include "lesslog/chaos/schedule.hpp"
#include "lesslog/membership/swim.hpp"
#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/proto/swarm.hpp"

namespace lesslog::chaos {

struct Report {
  ChaosConfig config;
  ChaosRecord record;                ///< the schedule as it executed
  std::vector<Violation> violations; ///< empty on a healthy run
  proto::FaultStats injected;        ///< cumulative injected faults
  std::int64_t workload_issued = 0;
  std::int64_t workload_completed = 0;
  std::int64_t workload_faults = 0;  ///< completed with ok == false
  std::int64_t messages_sent = 0;
  std::int64_t repair_pushes = 0;  ///< kFilePush transfers (repair cost)
  /// Final merged reliability ledger (includes the audit's probe GETs —
  /// the audit checks its exact identities at every quiescent point).
  proto::ReliabilityLedger reliability;
  double sim_time = 0.0;           ///< simulated seconds at the end

  // SWIM mode only (config.swim): detector accounting. swim_epochs has
  // one entry per epoch; detection_latency one entry per crash whose
  // first true confirm happened before its restart.
  std::vector<SwimEpochStats> swim_epochs;
  std::vector<double> detection_latency;
  membership::SwimRuntime::Tally swim;  ///< final cumulative tallies

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
};

class Driver {
 public:
  explicit Driver(ChaosConfig cfg);  ///< validates; builds the swarm
  ~Driver();

  /// Runs the whole schedule; callable once.
  Report run();

  /// The serial swarm under test (cfg.shards == 1 only).
  [[nodiscard]] proto::Swarm& swarm() noexcept { return *swarm_; }
  /// The sharded swarm under test; null when cfg.shards == 1.
  [[nodiscard]] proto::ShardedSwarm* sharded() noexcept {
    return sharded_.get();
  }

 private:
  // -- serial path (cfg.shards == 1; byte-identical to the pre-sharding
  // driver, which the replay gates pin) ---------------------------------
  Report run_serial();
  void insert_catalog();
  void schedule_epoch_ops(int epoch, double now);
  void schedule_workload(double now);
  void issue_get();
  [[nodiscard]] std::uint32_t random_live_pid();

  // -- sharded path (cfg.shards > 1, and every SWIM run: swim mode pins
  // the pre-materialized timeline so the chaos stream draws in the same
  // order at any shard count) -------------------------------------------
  Report run_sharded();
  void swim_setup();                ///< build + wire the SwimRuntime
  void swim_attach(core::Pid p);    ///< (re)attach a joiner's agent
  void swim_drain_confirms();       ///< barrier-only: fold confirm events
  [[nodiscard]] std::uint32_t sharded_random_live_pid();
  [[nodiscard]] double sharded_now() const;  ///< max over shard clocks
  void sharded_issue_get();
  [[nodiscard]] std::int64_t sharded_completed() const;
  [[nodiscard]] std::int64_t sharded_faults() const;
  void bank_sharded_injected();
  [[nodiscard]] proto::FaultStats sharded_injected() const;

  /// Workload completion tallies for the sharded run: cell s is written
  /// only by shard s's worker (a GET's callback fires on the issuing
  /// client's home shard), summed between settles.
  struct ShardTally {
    std::int64_t completed = 0;
    std::int64_t faults = 0;
  };

  ChaosConfig cfg_;
  util::Rng rng_;  ///< the chaos stream (schedule, op targets, workload)
  std::unique_ptr<proto::Swarm> swarm_;
  std::unique_ptr<proto::ShardedSwarm> sharded_;
  std::unique_ptr<membership::SwimRuntime> swim_;  ///< cfg.swim only
  /// A crash awaiting detection: when it happened, and the earliest true
  /// confirm's latency seen so far (negative until one arrives). Folded
  /// in only at top-level barriers (swim_drain_confirms) and finalized at
  /// the epoch's convergence point — or forfeited by a restart that
  /// outruns detection.
  struct CrashSample {
    double crash_time = 0.0;
    double latency = -1.0;
  };
  std::map<std::uint32_t, CrashSample> swim_crash_time_;
  std::vector<double> swim_detect_latency_;
  std::vector<ShardTally> tally_;
  std::vector<std::uint64_t> keys_;
  ChaosRecord record_;
  proto::FaultStats prior_injected_;  ///< plans superseded by a reinstall
  std::int64_t issued_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t faults_ = 0;
  std::uint32_t min_live_;  ///< membership ops keep this many peers up
  bool ran_ = false;
};

}  // namespace lesslog::chaos
