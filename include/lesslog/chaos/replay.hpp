// Replay artifacts: a violating chaos run serialized for exact re-runs.
//
// The artifact is a single JSON document ("lesslog.chaos" version 1)
// carrying the ChaosConfig (which, with its seed, fully determines the
// run), the schedule as it executed, and the violations observed. To
// replay, only the config is needed — replay() re-runs the driver from
// it and must reproduce the same schedule and the same violations
// bit-identically; same_outcome() checks exactly that. The format is
// documented in docs/ROBUSTNESS.md.
#pragma once

#include <string>

#include "lesslog/chaos/driver.hpp"

namespace lesslog::chaos {

/// Serializes a report (doubles at round-trip precision).
[[nodiscard]] std::string artifact_to_json(const Report& report);

/// Writes artifact_to_json() to `path`. Returns false on I/O failure.
bool write_artifact(const std::string& path, const Report& report);

/// Parses the config out of an artifact (the replayable core). Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] ChaosConfig config_from_artifact(const std::string& json);

/// Re-runs the driver from the artifact's config.
[[nodiscard]] Report replay(const std::string& json);

/// True when two runs executed the same schedule and observed the same
/// violations — the bit-identical-replay acceptance check.
[[nodiscard]] bool same_outcome(const Report& a, const Report& b);

}  // namespace lesslog::chaos
