// Deterministic chaos schedules.
//
// A ChaosConfig plus a seed fully determines a run: the per-epoch fault
// windows (Gilbert–Elliott bursts, corruption, duplication, delay spikes,
// partitions), the membership ops (crash / restart / depart / join) and
// the Poisson GET workload are all derived from one chaos Rng, so the
// same config replays the exact same fault sequence — the property the
// replay artifact (chaos/replay.hpp) is built on.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/proto/fault.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::chaos {

/// Everything a chaos run needs; validate() rejects nonsense. The swarm
/// under test keeps NetworkConfig::drop_probability at zero — loss is
/// expressed through windowed burst rules instead, so the post-heal
/// repair phase (reannounce + settle) runs on a clean wire and status
/// convergence is achievable.
struct ChaosConfig {
  int m = 6;                 ///< ID-space width (N = 2^m slots)
  int b = 2;                 ///< fault-tolerance subtree bits
  std::uint32_t nodes = 40;  ///< initially live peers
  std::uint64_t seed = 1;    ///< the ONLY source of randomness
  int epochs = 5;
  double epoch_length = 30.0;    ///< simulated seconds per epoch
  double fault_intensity = 0.5;  ///< scales every fault probability, [0, 1]
  int files = 48;                ///< ψ-named catalog size
  double get_rate = 20.0;        ///< Poisson GETs/sec during an epoch
  /// Engine shards for the swarm under test. 1 = the serial proto::Swarm
  /// (the original driver, byte-identical to before this knob existed);
  /// > 1 = proto::ShardedSwarm with a pre-materialized top-level op
  /// timeline (see Driver::run_sharded). Each shard count is its own
  /// determinism domain: runs replay bit-identically at the same S, but
  /// S = 2 and the serial driver draw the chaos stream in different
  /// orders.
  std::size_t shards = 1;

  // Fault-class toggles (the intensity sweep flips these off to isolate
  // classes).
  bool bursts = true;
  bool partitions = true;
  bool corruption = true;
  bool duplicates = true;
  bool delay_spikes = true;
  bool crashes = true;  ///< crash -> restart pairs
  bool churn = true;    ///< graceful depart / fresh join

  /// TEST-ONLY broken-recovery mode: crashes become silent (no failure
  /// announcement, no post-heal reannounce), deliberately violating the
  /// Section 5 membership contract so the auditor has something to catch.
  bool silent_crashes = false;

  /// SWIM membership mode (the membership library): crashes go
  /// unannounced and the per-epoch ground-truth reannounce is replaced by
  /// the failure detector's own convergence — after each epoch settles,
  /// the driver runs extra protocol periods until every live agent's
  /// belief matches ground truth (capped by swim_convergence_rounds).
  /// Always runs on the sharded driver path, even at shards == 1, so the
  /// chaos stream draws in the same order for every shard count.
  bool swim = false;
  double swim_period = 1.0;          ///< protocol period T (sim seconds)
  double swim_direct_timeout = 0.25; ///< direct-ack wait before proxies
  int swim_proxies = 3;              ///< k indirect probes per missed ack
  int swim_suspect_periods = 3;      ///< suspect -> confirmed dead
  int swim_gossip_repeats = 4;       ///< piggyback retransmissions
  /// Post-epoch period cap. Healing a partition's false confirms needs
  /// roughly two dead-reclaim rotation sweeps of the ID space (the second
  /// clears re-poisoning by stale dead gossip still in flight after the
  /// first direct contact); compound-fault epochs have been observed
  /// needing ~74 periods at the default geometry, so 128 leaves headroom.
  int swim_convergence_rounds = 128;

  /// Per-hop uniform latency jitter passed to the swarm's network. The
  /// default matches NetworkConfig's, keeping oracle runs byte-identical;
  /// abl_membership zeroes it so delivery times (and therefore detection
  /// measurements) are identical across shard counts.
  double net_jitter = 0.005;

  /// --- Adaptive request-reliability layer, threaded into the swarm's
  /// ClientConfig/PeerConfig (see those for semantics). All defaults off:
  /// a run with the layer disabled is byte-identical to one built before
  /// these knobs existed.
  bool adaptive_timeouts = false;   ///< SRTT/RTTVAR GET timers + backoff
  double hedge_percentile = 0.0;    ///< 0 = off; else [0.5, 1)
  bool suspicion_routing = false;   ///< SWIM-suspicion-aware entry points
  int busy_budget = 0;              ///< peer GET service budget; 0 = off
  double busy_refill = 0.0;         ///< budget tokens per simulated second

  void validate() const;  ///< throws std::invalid_argument
};

/// One membership action as it actually executed (PIDs are resolved at
/// fire time from ground truth, then recorded here).
enum class OpKind : std::uint8_t {
  kCrash,
  kRestart,
  kDepart,
  kJoin,
  kSilentCrash,
};

[[nodiscard]] const char* op_kind_name(OpKind k) noexcept;

struct OpRecord {
  double time = 0.0;
  OpKind kind = OpKind::kCrash;
  std::uint32_t pid = 0;

  friend bool operator==(const OpRecord&, const OpRecord&) = default;
};

struct RuleRecord {
  int epoch = 0;
  proto::FaultRule rule;

  friend bool operator==(const RuleRecord&, const RuleRecord&) = default;
};

/// The schedule as it actually ran — the replayable half of a report.
struct ChaosRecord {
  std::vector<RuleRecord> rules;
  std::vector<OpRecord> ops;

  friend bool operator==(const ChaosRecord&, const ChaosRecord&) = default;
};

/// Builds epoch `epoch`'s fault plan with absolute windows inside
/// [now, now + cfg.epoch_length), drawing window placement from `rng`.
/// Every window closes strictly before the epoch ends, so the epoch's
/// settle point is fault-free. Partitions appear on odd epochs only
/// (even epochs establish a healthy baseline between splits).
[[nodiscard]] proto::FaultPlan make_epoch_plan(const ChaosConfig& cfg,
                                               util::Rng& rng, int epoch,
                                               double now);

}  // namespace lesslog::chaos
