// Deterministic chaos schedules.
//
// A ChaosConfig plus a seed fully determines a run: the per-epoch fault
// windows (Gilbert–Elliott bursts, corruption, duplication, delay spikes,
// partitions), the membership ops (crash / restart / depart / join) and
// the Poisson GET workload are all derived from one chaos Rng, so the
// same config replays the exact same fault sequence — the property the
// replay artifact (chaos/replay.hpp) is built on.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/proto/fault.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::chaos {

/// Everything a chaos run needs; validate() rejects nonsense. The swarm
/// under test keeps NetworkConfig::drop_probability at zero — loss is
/// expressed through windowed burst rules instead, so the post-heal
/// repair phase (reannounce + settle) runs on a clean wire and status
/// convergence is achievable.
struct ChaosConfig {
  int m = 6;                 ///< ID-space width (N = 2^m slots)
  int b = 2;                 ///< fault-tolerance subtree bits
  std::uint32_t nodes = 40;  ///< initially live peers
  std::uint64_t seed = 1;    ///< the ONLY source of randomness
  int epochs = 5;
  double epoch_length = 30.0;    ///< simulated seconds per epoch
  double fault_intensity = 0.5;  ///< scales every fault probability, [0, 1]
  int files = 48;                ///< ψ-named catalog size
  double get_rate = 20.0;        ///< Poisson GETs/sec during an epoch
  /// Engine shards for the swarm under test. 1 = the serial proto::Swarm
  /// (the original driver, byte-identical to before this knob existed);
  /// > 1 = proto::ShardedSwarm with a pre-materialized top-level op
  /// timeline (see Driver::run_sharded). Each shard count is its own
  /// determinism domain: runs replay bit-identically at the same S, but
  /// S = 2 and the serial driver draw the chaos stream in different
  /// orders.
  std::size_t shards = 1;

  // Fault-class toggles (the intensity sweep flips these off to isolate
  // classes).
  bool bursts = true;
  bool partitions = true;
  bool corruption = true;
  bool duplicates = true;
  bool delay_spikes = true;
  bool crashes = true;  ///< crash -> restart pairs
  bool churn = true;    ///< graceful depart / fresh join

  /// TEST-ONLY broken-recovery mode: crashes become silent (no failure
  /// announcement, no post-heal reannounce), deliberately violating the
  /// Section 5 membership contract so the auditor has something to catch.
  bool silent_crashes = false;

  void validate() const;  ///< throws std::invalid_argument
};

/// One membership action as it actually executed (PIDs are resolved at
/// fire time from ground truth, then recorded here).
enum class OpKind : std::uint8_t {
  kCrash,
  kRestart,
  kDepart,
  kJoin,
  kSilentCrash,
};

[[nodiscard]] const char* op_kind_name(OpKind k) noexcept;

struct OpRecord {
  double time = 0.0;
  OpKind kind = OpKind::kCrash;
  std::uint32_t pid = 0;

  friend bool operator==(const OpRecord&, const OpRecord&) = default;
};

struct RuleRecord {
  int epoch = 0;
  proto::FaultRule rule;

  friend bool operator==(const RuleRecord&, const RuleRecord&) = default;
};

/// The schedule as it actually ran — the replayable half of a report.
struct ChaosRecord {
  std::vector<RuleRecord> rules;
  std::vector<OpRecord> ops;

  friend bool operator==(const ChaosRecord&, const ChaosRecord&) = default;
};

/// Builds epoch `epoch`'s fault plan with absolute windows inside
/// [now, now + cfg.epoch_length), drawing window placement from `rng`.
/// Every window closes strictly before the epoch ends, so the epoch's
/// settle point is fault-free. Partitions appear on odd epochs only
/// (even epochs establish a healthy baseline between splits).
[[nodiscard]] proto::FaultPlan make_epoch_plan(const ChaosConfig& cfg,
                                               util::Rng& rng, int epoch,
                                               double now);

}  // namespace lesslog::chaos
