// Swarm invariant auditor.
//
// Runs at every quiescent point (epoch end, after heal + repair
// reannounce + settle) and checks what a correct LessLog deployment must
// guarantee no matter which faults were injected:
//
//   1. counter reconciliation — every datagram handed to send()
//      terminated as exactly one of delivered / dropped / burst-dropped /
//      partition-dropped / corrupted / undeliverable (plus duplicated
//      extra copies): sent + duplicated == sum of terminal outcomes;
//   2. corruption accounting — every copy corrupted at send was rejected
//      at decode (injector count == network decode-reject count);
//   3. workload termination — every GET issued by the chaos workload has
//      completed (ok or fault; the client may never lose a request);
//   4. status convergence — after the repair reannounce, every live
//      peer's local status word equals ground truth;
//   5. replica availability — for every ψ-named file, a live GET probe
//      succeeds iff at least one live peer still holds a copy (no file
//      may fault while a live replica is reachable, and a file with no
//      live copy must fault, not hang).
//
// Violations carry the epoch and a human-readable detail string; the
// driver packages them (with the config, seed, and executed schedule)
// into a replay artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lesslog/proto/fault.hpp"
#include "lesslog/proto/swarm.hpp"

namespace lesslog::chaos {

struct Violation {
  int epoch = 0;
  std::string check;   ///< invariant name, e.g. "status_convergence"
  std::string detail;  ///< what diverged, with numbers

  friend bool operator==(const Violation&, const Violation&) = default;
};

/// One epoch of SWIM detector accounting, gathered by the driver between
/// its epoch barriers (deltas of the runtime's monotonic tallies).
struct SwimEpochStats {
  bool converged = true;   ///< every live agent's belief == ground truth
  int rounds = 0;          ///< extra protocol periods the epoch needed
  int round_cap = 0;       ///< the configured convergence cap
  /// No fault rules installed and no membership op executed this epoch —
  /// the wire was clean, so any suspicion at all is a detector bug.
  bool clean_epoch = false;
  std::int64_t suspects = 0;        ///< suspicion verdicts this epoch
  std::int64_t false_suspects = 0;  ///< ... raised on a live node
  std::int64_t false_confirms = 0;  ///< confirms issued on a live node
  /// Per-crash detection latency (crash -> first true confirm anywhere),
  /// for crashes whose detection completed this epoch.
  std::vector<double> detection_latency;
};

class Audit {
 public:
  /// Runs every check at a quiescent point and appends violations to
  /// `out`. `injected` must be the cumulative injected-fault totals
  /// across all plans installed so far (the network's own counters are
  /// cumulative for its lifetime). `issued` / `completed` are the chaos
  /// workload's GET ledger. Issues one probe GET per key (then settles),
  /// so call only at quiescence.
  ///
  /// AnySwarm is proto::Swarm or proto::ShardedSwarm (instantiated for
  /// both in audit.cpp): the checks read only the shared swarm surface —
  /// aggregate network counters, ground-truth status, peers, and the
  /// data-plane get() — so one definition audits both deployments.
  template <typename AnySwarm>
  static void check(AnySwarm& swarm,
                    const std::vector<std::uint64_t>& keys,
                    const proto::FaultStats& injected, std::int64_t issued,
                    std::int64_t completed, int epoch,
                    std::vector<Violation>& out);

  /// True when any live peer's store holds `f` (ground truth scan).
  template <typename AnySwarm>
  [[nodiscard]] static bool live_copy_exists(AnySwarm& swarm,
                                             core::FileId f);

  /// SWIM-mode invariants, run at the same quiescent point as check():
  ///   6. detection convergence — the post-epoch detection window reached
  ///      ground-truth agreement within the round cap (every crash was
  ///      confirmed and every false belief refuted);
  ///   7. clean-wire suspicion — an epoch with no fault windows and no
  ///      membership ops must raise zero suspicions (probes and acks flow
  ///      unhindered, so any suspicion is a detector bug, not a network
  ///      condition).
  /// False suspicion under loss/partition windows is expected SWIM
  /// behavior (that is what the refutation machinery is for) and is
  /// reported as a rate by the bench, not flagged here.
  static void check_swim(const SwimEpochStats& stats, int epoch,
                         std::vector<Violation>& out);
};

}  // namespace lesslog::chaos
