// Console table printer for the figure-reproduction benches: aligned
// columns, a header row, and optional per-column formatting, so every bench
// prints rows comparable to the paper's plotted series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace lesslog::util {

/// One table cell: text, integer, or floating point.
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number of columns.
  [[nodiscard]] std::size_t width() const noexcept { return headers_.size(); }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Appends a row; must have exactly width() cells.
  void add_row(std::vector<Cell> row);

  /// Digits after the decimal point for double cells (default 1).
  void set_precision(int digits) noexcept { precision_ = digits; }

  /// Render with column alignment and a separator rule under the header.
  [[nodiscard]] std::string render() const;

  /// Convenience: render straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 1;
};

}  // namespace lesslog::util
