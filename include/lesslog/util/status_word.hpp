// The "status word": a bitmap of node liveness.
//
// Section 5 of the paper maintains in each live node a status word where
// each bit indicates whether the corresponding PID is live. We model it as a
// compact dynamic bitset over the full 2^m ID space. Algorithms take a
// `const StatusWord&` view; the membership protocols (join/leave/fail) are
// the only writers.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/util/bits.hpp"

namespace lesslog::util {

class StatusWord {
 public:
  /// Creates a status word for an m-bit ID space with every slot dead.
  explicit StatusWord(int m);

  /// Creates a status word with slots [0, live_count) live and the rest
  /// dead — the common bootstrap in tests and experiments.
  StatusWord(int m, std::uint32_t live_count);

  [[nodiscard]] int width() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return space_size(m_);
  }

  [[nodiscard]] bool is_live(std::uint32_t pid) const noexcept {
    return test_bit(words_[pid >> 6], static_cast<int>(pid & 63u));
  }

  void set_live(std::uint32_t pid) noexcept;
  void set_dead(std::uint32_t pid) noexcept;

  /// Number of live nodes.
  [[nodiscard]] std::uint32_t live_count() const noexcept { return live_; }
  [[nodiscard]] std::uint32_t dead_count() const noexcept {
    return capacity() - live_;
  }

  /// All live PIDs in ascending order.
  [[nodiscard]] std::vector<std::uint32_t> live_pids() const;

  /// All dead PIDs in ascending order.
  [[nodiscard]] std::vector<std::uint32_t> dead_pids() const;

  /// Lowest dead PID, or capacity() if the space is full. Used by join to
  /// pick a valid PID.
  [[nodiscard]] std::uint32_t first_dead() const noexcept;

  friend bool operator==(const StatusWord&, const StatusWord&) = default;

 private:
  static bool test_bit(std::uint64_t w, int pos) noexcept {
    return ((w >> pos) & 1u) != 0;
  }

  int m_;
  std::uint32_t live_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lesslog::util
