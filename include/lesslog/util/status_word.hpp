// The "status word": a bitmap of node liveness.
//
// Section 5 of the paper maintains in each live node a status word where
// each bit indicates whether the corresponding PID is live. We model it as a
// compact dynamic bitset over the full 2^m ID space. Algorithms take a
// `const StatusWord&` view; the membership protocols (join/leave/fail) are
// the only writers.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "lesslog/util/bits.hpp"

namespace lesslog::util {

class StatusWord {
 public:
  /// Creates a status word for an m-bit ID space with every slot dead.
  explicit StatusWord(int m);

  /// Creates a status word with slots [0, live_count) live and the rest
  /// dead — the common bootstrap in tests and experiments.
  StatusWord(int m, std::uint32_t live_count);

  [[nodiscard]] int width() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return space_size(m_);
  }

  [[nodiscard]] bool is_live(std::uint32_t pid) const noexcept {
    return test_bit(words_[pid >> 6], static_cast<int>(pid & 63u));
  }

  void set_live(std::uint32_t pid) noexcept;
  void set_dead(std::uint32_t pid) noexcept;

  /// Number of live nodes.
  [[nodiscard]] std::uint32_t live_count() const noexcept { return live_; }
  [[nodiscard]] std::uint32_t dead_count() const noexcept {
    return capacity() - live_;
  }

  /// All live PIDs in ascending order.
  [[nodiscard]] std::vector<std::uint32_t> live_pids() const;

  /// All dead PIDs in ascending order.
  [[nodiscard]] std::vector<std::uint32_t> dead_pids() const;

  /// Lowest dead PID, or capacity() if the space is full. Used by join to
  /// pick a valid PID.
  [[nodiscard]] std::uint32_t first_dead() const noexcept;

  /// The packed liveness words: bit (pid & 63) of word (pid >> 6) is the
  /// liveness of `pid`. For m < 6 the single word's bits above capacity()
  /// are zero. Word-granular access is what turns FINDLIVENODE's VID scan
  /// into a bit-scan (see core/find_live_node.cpp).
  [[nodiscard]] const std::uint64_t* words() const noexcept {
    return words_.data();
  }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

  friend bool operator==(const StatusWord&, const StatusWord&) = default;

 private:
  static bool test_bit(std::uint64_t w, int pos) noexcept {
    return ((w >> pos) & 1u) != 0;
  }

  int m_;
  std::uint32_t live_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Copy-on-write handle to a StatusWord.
///
/// A swarm of 2^m peers each holding an identical 2^m-bit status word costs
/// 2^(2m-3) bytes — 512 MB at m = 16 — and every routing probe misses cache
/// because the copies are distinct allocations. Until the first divergence
/// (a crash/leave/join announcement reaches a peer), every peer's word has
/// the same *contents*, so they can all alias one immutable snapshot;
/// `mutate()` clones only when the snapshot is shared. Observable behaviour
/// is unchanged: read() always returns the same bits the by-value copy
/// would hold.
///
/// Thread-safety matches shared_ptr: concurrent reads of a shared snapshot
/// are safe, and a clone never writes the shared object. The in-place write
/// on use_count() == 1 is safe because a uniquely-owned snapshot has, by
/// definition, no other reader. (Handles are created/copied only during
/// swarm construction, never inside a parallel window.)
class CowStatus {
 public:
  /// Owning handle over a fresh copy of `w` (no sharing).
  explicit CowStatus(StatusWord w)
      : ptr_(std::make_shared<StatusWord>(std::move(w))) {}

  /// Aliasing handle over a shared snapshot.
  explicit CowStatus(std::shared_ptr<StatusWord> shared)
      : ptr_(std::move(shared)) {}

  [[nodiscard]] const StatusWord& read() const noexcept { return *ptr_; }

  /// Mutable access; clones the snapshot iff it is shared.
  [[nodiscard]] StatusWord& mutate() {
    if (ptr_.use_count() != 1) ptr_ = std::make_shared<StatusWord>(*ptr_);
    return *ptr_;
  }

  /// Replace the contents wholesale (rejoin resets to a caller snapshot).
  void assign(StatusWord w) { ptr_ = std::make_shared<StatusWord>(std::move(w)); }

  /// O(1) snapshot of the current contents — the cheap spelling of
  /// `StatusWord before = status;` on the announcement path. The snapshot
  /// keeps the current bits alive even if this handle mutates afterwards.
  [[nodiscard]] CowStatus snapshot() const noexcept { return CowStatus(ptr_); }

 private:
  std::shared_ptr<StatusWord> ptr_;
};

}  // namespace lesslog::util
