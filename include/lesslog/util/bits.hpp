// Bit-manipulation primitives used throughout the LessLog ID space.
//
// All IDs in LessLog are m-bit unsigned values (m <= 30 in this
// implementation). The binomial lookup-tree structure is defined entirely in
// terms of runs of leading 1-bits within an m-bit window, so the helpers here
// all take the window width explicitly rather than operating on the full
// 32-bit word.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace lesslog::util {

/// Maximum supported ID-space width. 2^30 node slots is far beyond the
/// paper's experiments (m = 10) while keeping every ID in a uint32_t.
inline constexpr int kMaxIdBits = 30;

/// True iff `m` is a usable ID-space width.
[[nodiscard]] constexpr bool valid_width(int m) noexcept {
  return m >= 1 && m <= kMaxIdBits;
}

/// All-ones mask of the low `m` bits: 2^m - 1.
[[nodiscard]] constexpr std::uint32_t mask_of(int m) noexcept {
  return (std::uint32_t{1} << m) - 1u;
}

/// Number of values representable in `m` bits: 2^m.
[[nodiscard]] constexpr std::uint32_t space_size(int m) noexcept {
  return std::uint32_t{1} << m;
}

/// True iff `v` fits in `m` bits.
[[nodiscard]] constexpr bool fits(std::uint32_t v, int m) noexcept {
  return (v & ~mask_of(m)) == 0;
}

/// Length of the run of 1-bits starting at bit (m-1) and extending downward.
/// leading_ones(0b1101, 4) == 2; leading_ones(0b0111, 4) == 0;
/// leading_ones(0b1111, 4) == 4.
[[nodiscard]] constexpr int leading_ones(std::uint32_t v, int m) noexcept {
  // Shift the m-bit window to the top of the word, then count leading ones.
  return std::min(std::countl_one(v << (32 - m)), m);
}

/// Position (bit index) of the highest 0-bit of `v` within the m-bit window,
/// or -1 if v is all ones. The LessLog parent rule sets this bit.
[[nodiscard]] constexpr int highest_zero_bit(std::uint32_t v, int m) noexcept {
  const int ones = leading_ones(v, m);
  return ones == m ? -1 : m - 1 - ones;
}

/// Set the highest 0-bit within the m-bit window (Property 2: parent VID).
/// Precondition: v is not all-ones.
[[nodiscard]] constexpr std::uint32_t set_highest_zero(std::uint32_t v,
                                                       int m) noexcept {
  return v | (std::uint32_t{1} << highest_zero_bit(v, m));
}

/// Clear bit `pos` of v.
[[nodiscard]] constexpr std::uint32_t clear_bit(std::uint32_t v,
                                                int pos) noexcept {
  return v & ~(std::uint32_t{1} << pos);
}

/// Test bit `pos` of v.
[[nodiscard]] constexpr bool test_bit(std::uint32_t v, int pos) noexcept {
  return ((v >> pos) & 1u) != 0;
}

/// Number of set bits.
[[nodiscard]] constexpr int popcount(std::uint32_t v) noexcept {
  return std::popcount(v);
}

/// Bitwise complement within the m-bit window: ~v & mask. This is the
/// "complement of k" the paper uses to derive physical lookup trees.
[[nodiscard]] constexpr std::uint32_t complement(std::uint32_t v,
                                                 int m) noexcept {
  return ~v & mask_of(m);
}

/// True iff v is a power of two (exactly one set bit).
[[nodiscard]] constexpr bool is_pow2(std::uint32_t v) noexcept {
  return std::has_single_bit(v);
}

/// Smallest m such that 2^m >= n; used when sizing an ID space for n nodes.
/// Precondition: 1 <= n <= 2^kMaxIdBits.
[[nodiscard]] constexpr int width_for(std::uint32_t n) noexcept {
  return n <= 1 ? 1 : static_cast<int>(std::bit_width(n - 1));
}

/// Render the low `m` bits of v MSB-first, e.g. to_binary(0b0101, 4) ==
/// "0101". Used by debug dumps and the structure-figure examples.
[[nodiscard]] std::string to_binary(std::uint32_t v, int m);

/// Parse an MSB-first binary string ("0101") into a value. Asserts on any
/// character outside {0,1}.
[[nodiscard]] std::uint32_t from_binary(const std::string& s);

}  // namespace lesslog::util
