// Bit-manipulation primitives used throughout the LessLog ID space.
//
// All IDs in LessLog are m-bit unsigned values (m <= 30 in this
// implementation). The binomial lookup-tree structure is defined entirely in
// terms of runs of leading 1-bits within an m-bit window, so the helpers here
// all take the window width explicitly rather than operating on the full
// 32-bit word.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

namespace lesslog::util {

/// Maximum supported ID-space width. 2^30 node slots is far beyond the
/// paper's experiments (m = 10) while keeping every ID in a uint32_t.
inline constexpr int kMaxIdBits = 30;

/// True iff `m` is a usable ID-space width.
[[nodiscard]] constexpr bool valid_width(int m) noexcept {
  return m >= 1 && m <= kMaxIdBits;
}

/// All-ones mask of the low `m` bits: 2^m - 1.
[[nodiscard]] constexpr std::uint32_t mask_of(int m) noexcept {
  return (std::uint32_t{1} << m) - 1u;
}

/// Number of values representable in `m` bits: 2^m.
[[nodiscard]] constexpr std::uint32_t space_size(int m) noexcept {
  return std::uint32_t{1} << m;
}

/// True iff `v` fits in `m` bits.
[[nodiscard]] constexpr bool fits(std::uint32_t v, int m) noexcept {
  return (v & ~mask_of(m)) == 0;
}

/// Length of the run of 1-bits starting at bit (m-1) and extending downward.
/// leading_ones(0b1101, 4) == 2; leading_ones(0b0111, 4) == 0;
/// leading_ones(0b1111, 4) == 4.
[[nodiscard]] constexpr int leading_ones(std::uint32_t v, int m) noexcept {
  // Shift the m-bit window to the top of the word, then count leading ones.
  return std::min(std::countl_one(v << (32 - m)), m);
}

/// Position (bit index) of the highest 0-bit of `v` within the m-bit window,
/// or -1 if v is all ones. The LessLog parent rule sets this bit.
[[nodiscard]] constexpr int highest_zero_bit(std::uint32_t v, int m) noexcept {
  const int ones = leading_ones(v, m);
  return ones == m ? -1 : m - 1 - ones;
}

/// Set the highest 0-bit within the m-bit window (Property 2: parent VID).
/// Precondition: v is not all-ones.
[[nodiscard]] constexpr std::uint32_t set_highest_zero(std::uint32_t v,
                                                       int m) noexcept {
  return v | (std::uint32_t{1} << highest_zero_bit(v, m));
}

/// Clear bit `pos` of v.
[[nodiscard]] constexpr std::uint32_t clear_bit(std::uint32_t v,
                                                int pos) noexcept {
  return v & ~(std::uint32_t{1} << pos);
}

/// Test bit `pos` of v.
[[nodiscard]] constexpr bool test_bit(std::uint32_t v, int pos) noexcept {
  return ((v >> pos) & 1u) != 0;
}

/// Number of set bits.
[[nodiscard]] constexpr int popcount(std::uint32_t v) noexcept {
  return std::popcount(v);
}

/// Bitwise complement within the m-bit window: ~v & mask. This is the
/// "complement of k" the paper uses to derive physical lookup trees.
[[nodiscard]] constexpr std::uint32_t complement(std::uint32_t v,
                                                 int m) noexcept {
  return ~v & mask_of(m);
}

/// True iff v is a power of two (exactly one set bit).
[[nodiscard]] constexpr bool is_pow2(std::uint32_t v) noexcept {
  return std::has_single_bit(v);
}

/// Smallest m such that 2^m >= n; used when sizing an ID space for n nodes.
/// Precondition: 1 <= n <= 2^kMaxIdBits.
[[nodiscard]] constexpr int width_for(std::uint32_t n) noexcept {
  return n <= 1 ? 1 : static_cast<int>(std::bit_width(n - 1));
}

// --- 64-bit word helpers for the packed liveness bitmaps -------------------
//
// StatusWord stores liveness as one bit per PID in 64-bit words. FINDLIVENODE
// scans *VIDs*, and VID v maps to PID v ^ c (Property 4). Writing
// v = 64*wv + j, the XOR splits cleanly across the word boundary:
//
//   (v ^ c) / 64 = wv ^ (c / 64)      and      (v ^ c) % 64 = j ^ (c % 64)
//
// so the VID-order view of the bitmap is a word-index permutation combined
// with a *within-word* bit permutation by XOR with c % 64. The helpers below
// make that view scannable: xor_permute64 realigns one word into VID bit
// order, and top_set_bit64 finds the largest qualifying VID in it.

/// Count of trailing zero bits; 64 when w == 0.
[[nodiscard]] constexpr int ctz64(std::uint64_t w) noexcept {
  return std::countr_zero(w);
}

/// Count of leading zero bits; 64 when w == 0.
[[nodiscard]] constexpr int clz64(std::uint64_t w) noexcept {
  return std::countl_zero(w);
}

/// Index of the highest set bit. Precondition: w != 0.
[[nodiscard]] constexpr int top_set_bit64(std::uint64_t w) noexcept {
  return 63 - std::countl_zero(w);
}

/// Number of set bits.
[[nodiscard]] constexpr int popcount64(std::uint64_t w) noexcept {
  return std::popcount(w);
}

/// Permute the bits of `w` so that bit j of the result is bit (j ^ c) of
/// `w`, for 0 <= c < 64. An XOR permutation factors into at most six
/// delta-swaps (one per set bit of c), each a pair of masked shifts — no
/// loop over the 64 bits.
[[nodiscard]] constexpr std::uint64_t xor_permute64(std::uint64_t w,
                                                    std::uint32_t c) noexcept {
  if (c & 1u) {
    w = ((w >> 1) & 0x5555'5555'5555'5555ULL) |
        ((w & 0x5555'5555'5555'5555ULL) << 1);
  }
  if (c & 2u) {
    w = ((w >> 2) & 0x3333'3333'3333'3333ULL) |
        ((w & 0x3333'3333'3333'3333ULL) << 2);
  }
  if (c & 4u) {
    w = ((w >> 4) & 0x0F0F'0F0F'0F0F'0F0FULL) |
        ((w & 0x0F0F'0F0F'0F0F'0F0FULL) << 4);
  }
  if (c & 8u) {
    w = ((w >> 8) & 0x00FF'00FF'00FF'00FFULL) |
        ((w & 0x00FF'00FF'00FF'00FFULL) << 8);
  }
  if (c & 16u) {
    w = ((w >> 16) & 0x0000'FFFF'0000'FFFFULL) |
        ((w & 0x0000'FFFF'0000'FFFFULL) << 16);
  }
  if (c & 32u) w = (w >> 32) | (w << 32);
  return w;
}

/// Mask of the low `n` bits of a 64-bit word, 0 <= n <= 64.
[[nodiscard]] constexpr std::uint64_t low_mask64(int n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1u;
}

/// Repeating stride mask: bits j with j % 2^b == offset, for 0 <= b <= 6
/// and offset < 2^b. Selects one fault-tolerant subtree's VIDs out of a
/// packed word (the subtree identifier is the low b VID bits).
[[nodiscard]] constexpr std::uint64_t stride_mask64(
    int b, std::uint32_t offset) noexcept {
  constexpr std::uint64_t kPattern[7] = {
      ~std::uint64_t{0},           // b=0: every bit
      0x5555'5555'5555'5555ULL,    // b=1: every 2nd
      0x1111'1111'1111'1111ULL,    // b=2: every 4th
      0x0101'0101'0101'0101ULL,    // b=3: every 8th
      0x0001'0001'0001'0001ULL,    // b=4: every 16th
      0x0000'0001'0000'0001ULL,    // b=5: every 32nd
      0x0000'0000'0000'0001ULL,    // b=6: every 64th
  };
  return kPattern[b] << offset;
}

/// Index of the k-th (0-based, from the LSB) set bit of `w`.
/// Precondition: k < popcount(w). The candidate-selection step of the
/// random placement policy: the k-th live copy-free node in ascending PID
/// order within one word.
[[nodiscard]] constexpr int select_bit64(std::uint64_t w, int k) noexcept {
  for (; k > 0; --k) w &= w - 1;  // clear the k lowest set bits
  return std::countr_zero(w);
}

/// Render the low `m` bits of v MSB-first, e.g. to_binary(0b0101, 4) ==
/// "0101". Used by debug dumps and the structure-figure examples.
[[nodiscard]] std::string to_binary(std::uint32_t v, int m);

/// Parse an MSB-first binary string ("0101") into a value. Asserts on any
/// character outside {0,1}.
[[nodiscard]] std::uint32_t from_binary(const std::string& s);

}  // namespace lesslog::util
