// The liveness-view seam: who does a node *believe* is alive?
//
// Every LessLog decision — FINDLIVENODE's descending VID scan, the
// fault-tolerant subtree walks, children lists, the baselines — is a pure
// function of a liveness bitmap. Historically that bitmap was the swarm's
// ground-truth StatusWord, an oracle the paper never grants: Section 5
// maintains a *local, possibly stale* status word per node, and the
// paper's availability claim is conditioned on that local view having no
// false negatives. This seam makes the distinction explicit:
//
//   * LivenessView     — the read-only consult surface algorithms walk.
//     word() is non-virtual (one pointer indirection, same cost as the
//     CowStatus read it replaces), so putting the seam on the routing hot
//     path costs nothing.
//   * MutableLivenessView — the belief-update surface a Peer drives from
//     membership traffic (announcements in oracle mode, the SWIM failure
//     detector in gossip mode). Updates are virtual: they run at
//     membership-event rate, not per message.
//   * OracleView       — today's behavior, pinned: a CowStatus-backed view
//     whose believe_* methods reproduce the announcement path's
//     check-before-mutate semantics bit for bit.
//   * BorrowedView     — a non-owning adapter over an existing
//     `const StatusWord&` for callers that still hold a plain word
//     (benches, tests).
//
// The SWIM-driven implementation (membership::SwimView) lives in the
// membership library; this header deliberately knows nothing about it.
#pragma once

#include <cstdint>
#include <vector>

#include "lesslog/util/status_word.hpp"

namespace lesslog::util {

/// Read-only liveness belief. Algorithms take `const LivenessView&` and
/// must treat the returned word as a snapshot that may be arbitrarily
/// stale relative to ground truth.
class LivenessView {
 public:
  /// The believed liveness bitmap. Non-virtual on purpose: the routing
  /// hot path reads this per hop, so implementations keep `word_` bound
  /// to their current backing word instead of paying a virtual call.
  [[nodiscard]] const StatusWord& word() const noexcept { return *word_; }

  [[nodiscard]] bool is_live(std::uint32_t pid) const noexcept {
    return word_->is_live(pid);
  }
  [[nodiscard]] int width() const noexcept { return word_->width(); }
  [[nodiscard]] std::uint32_t live_count() const noexcept {
    return word_->live_count();
  }

 protected:
  explicit LivenessView(const StatusWord* word) noexcept : word_(word) {}
  ~LivenessView() = default;

  /// Implementations re-point the cached word whenever their backing
  /// storage moves (a CowStatus clone-on-write relocates the bits).
  void rebind(const StatusWord* word) noexcept { word_ = word; }

 private:
  const StatusWord* word_;
};

/// A liveness belief that can be updated. This is what a Peer owns (or is
/// handed): announcements and failure detectors feed believe_live /
/// believe_dead; rejoin resets the whole belief.
class MutableLivenessView : public LivenessView {
 public:
  virtual ~MutableLivenessView() = default;

  /// Learn (or re-learn) that `pid` is alive / dead. Redundant updates
  /// must be cheap no-ops (the announcement path delivers plenty).
  virtual void believe_live(std::uint32_t pid) = 0;
  virtual void believe_dead(std::uint32_t pid) = 0;

  /// Soft liveness doubt: true while a failure detector suspects `pid`
  /// but has not confirmed it dead (the bitmap still shows it live).
  /// Suspicion-aware routing skips such targets *when an alternative
  /// exists*; it never overrides the bitmap. Oracle views have no
  /// suspicion state, so the default is an unconditional false.
  [[nodiscard]] virtual bool is_suspected(
      std::uint32_t /*pid*/) const noexcept {
    return false;
  }

  /// The current suspects, ascending, or nullptr when the implementation
  /// tracks none (oracle views). Lets a router mask all suspects out of a
  /// status word in one pass instead of probing every candidate.
  [[nodiscard]] virtual const std::vector<std::uint32_t>* suspects()
      const noexcept {
    return nullptr;
  }

  /// O(1) handle to the current belief — the cheap spelling of
  /// `StatusWord before = view;` that crash recovery needs.
  [[nodiscard]] virtual CowStatus snapshot() const = 0;

  /// Replace the whole belief (a rejoining node re-seeds its view from a
  /// neighbor's snapshot).
  virtual void reset(CowStatus fresh) = 0;

 protected:
  using LivenessView::LivenessView;
};

/// The pre-seam behavior, pinned: a copy-on-write status word updated
/// with exactly the announcement path's check-before-mutate discipline.
/// A redundant update never clones a shared snapshot — at scale most
/// peers never diverge from the swarm-wide construction snapshot at all.
class OracleView final : public MutableLivenessView {
 public:
  explicit OracleView(CowStatus status) noexcept
      : MutableLivenessView(&status.read()), status_(std::move(status)) {}

  void believe_live(std::uint32_t pid) override {
    if (!status_.read().is_live(pid)) {
      status_.mutate().set_live(pid);
      rebind(&status_.read());
    }
  }

  void believe_dead(std::uint32_t pid) override {
    if (status_.read().is_live(pid)) {
      status_.mutate().set_dead(pid);
      rebind(&status_.read());
    }
  }

  [[nodiscard]] CowStatus snapshot() const override {
    return status_.snapshot();
  }

  void reset(CowStatus fresh) override {
    status_ = std::move(fresh);
    rebind(&status_.read());
  }

 private:
  CowStatus status_;
};

/// Non-owning read-only adapter over a caller's StatusWord. The word must
/// outlive the view (typical use: a stack temporary bridging a plain
/// word into a `const LivenessView&` parameter).
class BorrowedView final : public LivenessView {
 public:
  explicit BorrowedView(const StatusWord& word) noexcept
      : LivenessView(&word) {}
};

}  // namespace lesslog::util
