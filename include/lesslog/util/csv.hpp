// Minimal CSV writer. Benches can mirror their printed tables to CSV files
// (via --csv <path>) so plots can be regenerated offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "lesslog/util/table.hpp"

namespace lesslog::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& headers);

  /// Appends one row; must match the header width.
  void add_row(const std::vector<Cell>& row);

  /// Escape a field per RFC 4180 (quotes around fields containing commas,
  /// quotes, or newlines). Exposed for tests.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace lesslog::util
