// An open-addressed map for monotonically increasing integer keys.
//
// The client keys every pending request by an id drawn from one striped,
// strictly increasing counter, and a request stays pending only for a few
// retry rounds — so at any instant the live keys occupy a narrow sliding
// window of the id space. SeqWindow exploits that: a power-of-two ring
// indexed by `id & mask`, grown only when the live span outruns the
// capacity. find/insert/erase are a single mask + compare (no hashing, no
// modulo, no per-node allocation), which matters because the wire hot
// path performs one find per delivered reply and per armed timeout.
//
// Keys inserted must be strictly increasing. Keys never inserted (the
// counter may be shared with a sibling window) simply leave holes that
// the window slides over.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace lesslog::util {

template <typename T>
class SeqWindow {
 public:
  /// Inserts `value` under `id` and returns the stored slot. `id` must be
  /// strictly greater than every id ever inserted.
  T& insert(std::uint64_t id, T value) {
    assert((size_ == 0 || id >= high_) && "ids must be inserted in order");
    if (size_ == 0) base_ = id;
    if (slots_.empty() || id - base_ >= slots_.size()) grow(id);
    Slot& s = slots_[index_of(id)];
    assert(!s.value.has_value() && "duplicate id");
    s.id = id;
    s.value.emplace(std::move(value));
    high_ = id + 1;
    ++size_;
    return *s.value;
  }

  /// Pointer to the value stored under `id`, or nullptr.
  [[nodiscard]] T* find(std::uint64_t id) noexcept {
    if (size_ == 0 || id < base_ || id >= high_) return nullptr;
    Slot& s = slots_[index_of(id)];
    if (!s.value.has_value() || s.id != id) return nullptr;
    return &*s.value;
  }

  /// Erases `id` if present; returns true when something was erased.
  bool erase(std::uint64_t id) noexcept {
    if (size_ == 0 || id < base_ || id >= high_) return false;
    Slot& s = slots_[index_of(id)];
    if (!s.value.has_value() || s.id != id) return false;
    s.value.reset();
    --size_;
    // Slide the window past the freed front (and over never-inserted
    // holes) so the live span — and therefore the ring — stays small.
    if (size_ == 0) {
      base_ = high_;
    } else if (id == base_) {
      while (base_ < high_) {
        const Slot& front = slots_[index_of(base_)];
        if (front.value.has_value() && front.id == base_) break;
        ++base_;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    slots_.clear();
    size_ = 0;
    base_ = high_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t id = 0;
    std::optional<T> value;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t id) const noexcept {
    return static_cast<std::size_t>(id) & (slots_.size() - 1);
  }

  void grow(std::uint64_t upcoming) {
    std::size_t cap = slots_.empty() ? kInitialCapacity : slots_.size();
    while (upcoming - base_ >= cap) cap *= 2;
    std::vector<Slot> grown(cap);
    for (Slot& s : slots_) {
      if (!s.value.has_value()) continue;
      Slot& dst = grown[static_cast<std::size_t>(s.id) & (cap - 1)];
      dst.id = s.id;
      dst.value = std::move(s.value);
    }
    slots_.swap(grown);
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<Slot> slots_;  ///< power-of-two ring (or empty)
  std::size_t size_ = 0;
  std::uint64_t base_ = 0;  ///< smallest possibly-live id
  std::uint64_t high_ = 0;  ///< one past the largest id ever inserted
};

}  // namespace lesslog::util
