// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (workload subsets, the
// random-replication baseline, churn arrivals, LessLog's proportional
// children-list choice) draws from an explicitly seeded Rng so that every
// experiment is bit-for-bit reproducible. The generator is xoshiro256**
// seeded via SplitMix64, following the reference implementations by
// Blackman & Vigna.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace lesslog::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing of
/// seeds. Public because tests validate reference vectors.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator so it can
/// be plugged into <random> distributions, though the members below cover
/// every need in this codebase without distribution objects.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x1e55106ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias. Precondition: bound > 0.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    return uniform01() < p;
  }

  /// Exponential variate with the given rate (mean 1/rate). Used by the
  /// event-driven engine for Poisson arrival processes.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Standard normal variate (Box-Muller; one value per call). Used to
  /// model measurement noise in the sampled-log baseline.
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Choose k distinct indices out of [0, n) uniformly; returned sorted.
  [[nodiscard]] std::vector<std::uint32_t> sample_indices(std::uint32_t n,
                                                          std::uint32_t k);

  /// Derive an independent child generator; stream `i` of the same parent
  /// seed is stable across runs. Used to give each parallel sweep cell its
  /// own generator.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lesslog::util
