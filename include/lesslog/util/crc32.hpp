// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used to checksum file payloads so the integrity of every copy can be
// verified after replication, updates, and crash recovery. The standard
// check value crc32("123456789") == 0xCBF43926 is pinned by a test.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace lesslog::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of a byte span.
[[nodiscard]] constexpr std::uint32_t crc32(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// CRC-32 of a string.
[[nodiscard]] inline std::uint32_t crc32(std::string_view s) noexcept {
  return crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

}  // namespace lesslog::util
