// Minimal recursive-descent JSON parser for self-validation of the
// JSON the tools and benches emit. Not a general-purpose library: \u
// escapes are hex-validated but passed through verbatim (not decoded),
// no streaming, object keys keep insertion order (handy for schema
// checks). Depth-limited to keep the fuzz surface bounded.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lesslog::util::minijson {

/// A parsed JSON value. Objects are ordered key/value pair lists (JSON
/// objects are small here; linear find is fine and order is meaningful
/// for schema checks).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
};

/// Parses one JSON document (with optional surrounding whitespace).
/// Returns nullopt on any syntax error or trailing garbage.
std::optional<Value> parse(std::string_view text);

/// Same, but on failure *error receives a one-line reason with the byte
/// offset of the deepest failure (e.g. "invalid \u escape: expected 4
/// hex digits at byte 17"). Cleared on entry; empty after a successful
/// parse. `error` may be nullptr.
std::optional<Value> parse(std::string_view text, std::string* error);

}  // namespace lesslog::util::minijson
