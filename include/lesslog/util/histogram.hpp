// Fixed-width bucketed histogram with an ASCII renderer; used to report
// per-node load distributions and hop-count distributions in examples and
// benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lesslog::util {

class Histogram {
 public:
  /// Buckets of width `bucket_width` starting at `lo`. Values below `lo` go
  /// to bucket 0; values beyond the last bucket are clamped to it.
  Histogram(double lo, double bucket_width, std::size_t bucket_count);

  void add(double x) noexcept;
  void add_n(double x, std::int64_t n) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::int64_t bucket(std::size_t i) const noexcept {
    return counts_[i];
  }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return lo_ + static_cast<double>(i) * width_;
  }

  /// Render bars of at most `max_width` characters per bucket, one bucket
  /// per line, with count annotations. Empty trailing buckets are elided.
  [[nodiscard]] std::string render(int max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace lesslog::util
