// The ψ hash: maps a file's unique identifying string (e.g. its URL) to a
// target PID in [0, 2^m). The paper only requires ψ to be a fixed hash onto
// the ID space; we use FNV-1a 64 with an avalanche finisher, folded into the
// m-bit window, which distributes tiny key sets (the experiments use a
// single file) as well as large ones.
#pragma once

#include <cstdint>
#include <string_view>

#include "lesslog/util/bits.hpp"

namespace lesslog::util {

/// FNV-1a 64-bit over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Final avalanche (from MurmurHash3's fmix64) so that low output bits
/// depend on every input byte even for short keys.
[[nodiscard]] constexpr std::uint64_t avalanche64(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Stateless SplitMix64 finalizer: the output of one SplitMix64 step whose
/// state landed on `x`. A full-avalanche 64→64 mix (every output bit
/// depends on every input bit), used as the probe hash of open-addressing
/// tables keyed by sequential integer IDs — identity hashing (std::hash on
/// uint64_t) would map consecutive keys to consecutive slots and cluster.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// ψ(name, m): target PID of a file in an m-bit ID space.
[[nodiscard]] constexpr std::uint32_t psi(std::string_view name,
                                          int m) noexcept {
  return static_cast<std::uint32_t>(avalanche64(fnv1a64(name))) & mask_of(m);
}

/// Hash a 64-bit integer key onto the m-bit space (used by synthetic
/// workloads that name files by index without building strings).
[[nodiscard]] constexpr std::uint32_t psi_u64(std::uint64_t key,
                                              int m) noexcept {
  return static_cast<std::uint32_t>(avalanche64(key ^ 0x9e3779b97f4a7c15ULL)) &
         mask_of(m);
}

}  // namespace lesslog::util
