// Online summary statistics (Welford) and small helpers used by the metrics
// layer and the benchmark tables.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace lesslog::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }

  /// Merge another accumulator (parallel-reduction friendly).
  void merge(const Accumulator& other) noexcept;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample set (nearest-rank on a sorted copy).
/// q in [0, 100]. Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// percentile() for an already ascending-sorted sample: no copy, no
/// re-sort. Callers that read several quantiles of one large sample sort
/// once and use this.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Jain's fairness index of a load vector: (Σx)² / (n·Σx²). 1.0 means
/// perfectly even; 1/n means one node carries everything. Used to report
/// how balanced the system is after replication.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs);

/// Gini coefficient of a non-negative vector: 0 = perfectly equal,
/// approaching 1 = one element holds everything. Used by the placement
/// analytics to describe catchment inequality.
[[nodiscard]] double gini(std::vector<double> xs);

}  // namespace lesslog::util
