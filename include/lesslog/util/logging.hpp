// Leveled diagnostic logging. Off (Warn) by default so library users and the
// benches get clean stdout; examples flip to Info/Debug to narrate protocol
// steps (which is how the quickstart shows routing paths).
//
// Messages use "{}" placeholders filled left to right (a minimal subset of
// std::format, which GCC 12 does not ship). Surplus arguments are appended;
// surplus placeholders are left verbatim.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace lesslog::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Thread-safe (atomic).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one line to stderr with a level tag. Serialized by a mutex so
/// concurrent bench cells don't interleave characters.
void log_line(LogLevel level, std::string_view msg);

namespace detail {

template <typename T>
void format_into_append(std::ostringstream& out, const T& value) {
  out << " " << value;
}

inline void format_into(std::ostringstream& out, std::string_view fmt) {
  out << fmt;
}

template <typename First, typename... Rest>
void format_into(std::ostringstream& out, std::string_view fmt,
                 const First& first, const Rest&... rest) {
  const std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    out << fmt << " " << first;
    (format_into_append(out, rest), ...);
    return;
  }
  out << fmt.substr(0, pos) << first;
  format_into(out, fmt.substr(pos + 2), rest...);
}

}  // namespace detail

/// Renders "{}" placeholders; exposed for tests.
template <typename... Args>
[[nodiscard]] std::string format_message(std::string_view fmt,
                                         const Args&... args) {
  std::ostringstream out;
  detail::format_into(out, fmt, args...);
  return out.str();
}

template <typename... Args>
void log_debug(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_line(LogLevel::kDebug, format_message(fmt, args...));
  }
}

template <typename... Args>
void log_info(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_line(LogLevel::kInfo, format_message(fmt, args...));
  }
}

template <typename... Args>
void log_warn(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_line(LogLevel::kWarn, format_message(fmt, args...));
  }
}

template <typename... Args>
void log_error(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::kError) {
    log_line(LogLevel::kError, format_message(fmt, args...));
  }
}

}  // namespace lesslog::util
