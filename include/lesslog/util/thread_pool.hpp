// A small fixed-size worker pool plus a parallel_for helper.
//
// The figure benches sweep many independent (rate × policy × seed) cells;
// each cell builds its own system and shares no mutable state, so a plain
// static partition over a handful of threads is the right tool — no work
// stealing, no futures-per-item allocation churn.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lesslog::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task. Tasks must not throw; a throwing task terminates.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the pool, blocking until all
/// iterations complete. Iterations are dealt in contiguous chunks to keep
/// per-task overhead negligible.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace lesslog::util
