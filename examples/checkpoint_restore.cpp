// Checkpoint/restore: snapshot a running system to disk mid-experiment,
// reload it, and continue — including payload integrity verification
// across the round trip.
//
//   $ ./examples/checkpoint_restore [snapshot-path]
#include <fstream>
#include <iostream>
#include <sstream>

#include "lesslog/core/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  using core::Pid;

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/lesslog_checkpoint.bin");

  // Phase 1: a busy system with payload-carrying files.
  core::System sys({.m = 6, .b = 1, .seed = 11, .payload_size = 4096});
  sys.bootstrap(64);
  std::vector<core::FileId> files;
  for (std::uint64_t k = 0; k < 24; ++k) {
    files.push_back(sys.insert_key(0xCAFE000 + k));
  }
  for (const core::FileId f : files) {
    sys.replicate(f, sys.holders(f).front());
    sys.update(f);
  }
  sys.fail(Pid{10});
  sys.leave(Pid{20});
  for (const core::FileId f : files) sys.get(f, Pid{1});
  std::cout << "phase 1: " << sys.live_count() << " nodes, "
            << files.size() << " files (2 copies+ each, version 1), "
            << sys.lookup_messages() << " lookup messages so far\n";

  // Checkpoint.
  {
    std::ofstream out(path, std::ios::binary);
    core::save_snapshot(sys, out);
  }
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  std::cout << "checkpoint written: " << path << " ("
            << probe.tellg() << " bytes)\n";

  // Phase 2: restore into a fresh process (simulated here by a new
  // object) and keep operating.
  std::ifstream in(path, std::ios::binary);
  core::System restored = core::load_snapshot(in);
  std::cout << "restored: " << restored.live_count() << " nodes, "
            << restored.files().size() << " files\n";

  const core::System::IntegrityReport report = restored.verify_integrity();
  std::cout << "integrity after restore: "
            << (report.clean() ? "clean" : "VIOLATIONS") << " ("
            << report.corrupt.size() << " corrupt, " << report.stale.size()
            << " stale)\n";

  // Continue the run: more churn, more updates, everything still works.
  restored.join();
  for (const core::FileId f : files) {
    restored.update(f);
    if (!restored.get(f, Pid{2}).ok()) {
      std::cout << "unexpected fault!\n";
      return 1;
    }
  }
  std::cout << "phase 2 complete: all " << files.size()
            << " files served after restore+churn, integrity "
            << (restored.verify_integrity().clean() ? "clean" : "VIOLATED")
            << "\n";
  return 0;
}
