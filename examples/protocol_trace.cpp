// Protocol trace: every datagram of a small LessLog exchange, printed as
// it crosses the simulated wire — the paper's algorithms as an actual
// message sequence, recorded with proto::Trace.
//
//   $ ./examples/protocol_trace [--jsonl path]
#include <fstream>
#include <iostream>

#include "lesslog/proto/trace.hpp"
#include "lesslog/util/hashing.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  using core::Pid;

  proto::Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.seed = 3;
  cfg.net.base_latency = 0.010;
  cfg.net.jitter = 0.0;
  proto::Swarm swarm(cfg);
  proto::Trace trace(swarm);

  std::cout << "16-peer LessLog swarm, 10 ms links. Messages on the wire:\n";

  // A ψ-key targeting P(4) keeps the narrative on the paper's example.
  std::uint64_t key = 0;
  while (util::psi_u64(key, 4) != 4) ++key;

  std::cout << "\n-- INSERT (target P(4) = ψ(key)), issued at P(2) --\n";
  const core::FileId f = swarm.insert_named(key, Pid{2});
  swarm.settle();
  std::cout << trace.render();
  trace.clear();

  std::cout << "\n-- GETFILE from P(8): the paper's P(8)->P(0)->P(4) walk --\n";
  proto::GetResult result;
  swarm.get(f, Pid{4}, Pid{8},
            [&](const proto::GetResult& r) { result = r; });
  swarm.settle();
  std::cout << trace.render() << "   -> served in " << result.hops
            << " hops, " << 1000.0 * result.latency << " ms end to end\n";
  trace.clear();

  std::cout << "\n-- REPLICATEFILE at overloaded P(4) (bitwise placement) --\n";
  const auto replica = swarm.replicate(
      f, Pid{4}, Pid{4}, [](Pid p) { return p == Pid{4}; });
  swarm.settle();
  std::cout << trace.render() << "   -> replica created at P("
            << replica->value() << ")\n";
  trace.clear();

  std::cout << "\n-- UPDATEFILE to version 2: top-down broadcast --\n";
  swarm.update(f, Pid{4}, 2, Pid{7});
  swarm.settle();
  std::cout << trace.render();
  trace.clear();

  std::cout << "\n-- P(5) departs gracefully (replica holder!) --\n";
  swarm.depart(Pid{5});
  swarm.settle();
  std::cout << trace.render();
  trace.clear();

  std::cout << "\n-- GETFILE from P(13) reroutes around the departure --\n";
  swarm.get(f, Pid{4}, Pid{13},
            [&](const proto::GetResult& r) { result = r; });
  swarm.settle();
  std::cout << trace.render() << "   -> served in " << result.hops
            << " hops despite the replica holder's departure\n";

  if (argc > 2 && std::string(argv[1]) == "--jsonl") {
    std::ofstream out(argv[2]);
    trace.write_jsonl(out);
    std::cout << "\ntrace written to " << argv[2] << "\n";
  }
  std::cout << "\ntotal datagrams: " << swarm.network().messages_sent()
            << " (" << swarm.network().bytes_sent() << " bytes)\n";
  return 0;
}
