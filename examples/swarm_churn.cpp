// Swarm churn: a file-sharing swarm where peers continuously join, leave,
// and crash while clients keep fetching — the paper's future-work scenario
// run on the full self-organization protocol (status-word broadcasts,
// file re-homing, crash recovery).
//
//   $ ./examples/swarm_churn
#include <iomanip>
#include <iostream>

#include "lesslog/sim/churn.hpp"
#include "lesslog/util/table.hpp"

int main() {
  using namespace lesslog;

  std::cout << "P2P swarm under churn: 200 peers, 64 shared files,\n"
            << "10 simulated minutes of joins/leaves/crashes at rising "
               "intensity\n\n";

  util::Table table({"events/s", "b", "requests", "faults %", "files lost",
                     "mean hops", "maint msgs"});
  table.set_precision(2);

  for (const double events_per_s : {0.25, 1.0, 4.0}) {
    for (const int b : {0, 2}) {
      sim::ChurnConfig cfg;
      cfg.m = 8;
      cfg.b = b;
      cfg.initial_nodes = 200;
      cfg.min_nodes = 64;
      cfg.files = 64;
      cfg.duration = 600.0;
      cfg.request_rate = 120.0;
      cfg.join_rate = events_per_s / 2.0;
      cfg.leave_rate = events_per_s / 4.0;
      cfg.fail_rate = events_per_s / 4.0;
      cfg.seed = 99;
      const sim::ChurnResult r = sim::run_churn(cfg);
      table.add_row({events_per_s, static_cast<std::int64_t>(b), r.requests,
                     100.0 * r.fault_fraction(),
                     static_cast<std::int64_t>(r.files_lost), r.mean_hops,
                     r.maintenance_messages});
    }
  }
  std::cout << table.render() << "\n";
  std::cout
      << "Reading the table:\n"
      << "  * graceful leaves re-home inserted files, so faults stay rare;\n"
      << "  * crashes with b=0 can lose a file's only copy (faults and\n"
      << "    'files lost' rise with churn);\n"
      << "  * b=2 stores each file in 4 independent subtrees and recovers\n"
      << "    crashed holders from siblings (Section 5.3): zero loss;\n"
      << "  * maintenance traffic is dominated by the status-word\n"
      << "    broadcast, one message per live node per event.\n";
  return 0;
}
