// Hotspot scenario: a flash crowd hits one file in a 1024-slot system (the
// paper's intro motivation: "reduce the load of the nodes hosting these
// files"). Watches LessLog shed load round by round and prints the load
// distribution before and after, plus the counter-based removal cleanup
// once the crowd subsides.
//
//   $ ./examples/hotspot_cdn
#include <iostream>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/sim/load_solver.hpp"
#include "lesslog/util/histogram.hpp"

int main() {
  using namespace lesslog;

  std::cout << "Flash crowd against one file in a 1024-slot LessLog system\n"
            << "capacity 100 req/s per node; crowd demand 12,000 req/s\n\n";

  sim::ExperimentConfig cfg;
  cfg.m = 10;
  cfg.capacity = 100.0;
  cfg.total_rate = 12000.0;
  cfg.workload = sim::WorkloadKind::kLocality;  // a hot region, like a CDN edge
  cfg.seed = 7;

  // Run the shed-until-balanced loop and report.
  const sim::ExperimentResult result =
      sim::run_replication_experiment(cfg, baseline::lesslog_policy());
  std::cout << "replicas created: " << result.replicas_created << "\n"
            << "balanced: " << (result.balanced ? "yes" : "no")
            << ", final max load " << result.final_max_load << " req/s\n"
            << "mean lookup hops " << result.mean_hops << ", Jain fairness "
            << result.fairness << "\n\n";

  // Counter-based removal (Section 6): prune replicas that serve little
  // traffic. A conservative threshold trims the placement without
  // re-overloading anyone; an aggressive one trades balance headroom for
  // storage — both are printed.
  for (const double threshold : {10.0, 40.0}) {
    const sim::RemovalResult removal = sim::run_with_removal(
        cfg, baseline::lesslog_policy(), threshold);
    std::cout << "counter-based removal (threshold " << threshold
              << " req/s): " << removal.before.replicas_created << " -> "
              << removal.replicas_after_removal
              << " replicas, still balanced: "
              << (removal.still_balanced ? "yes" : "no") << "\n";
  }
  std::cout << "\n";

  // Show the shape of the served-load distribution at the balance point.
  util::Rng rng(cfg.seed);
  std::cout << "Load distribution sketch (single hot copy vs balanced):\n";
  {
    util::StatusWord live(cfg.m, util::space_size(cfg.m));
    const core::LookupTree tree(cfg.m, core::Pid{512});
    sim::CopyMap one_copy(util::space_size(cfg.m), 0);
    one_copy[512] = 1;
    const sim::Workload demand = sim::uniform_workload(util::BorrowedView(live), cfg.total_rate);
    const sim::LoadReport hot = sim::solve_load(tree, one_copy, live, demand);
    std::cout << "before replication, max load = " << hot.max_served
              << " req/s at P(" << hot.max_served_pid << ") — "
              << hot.max_served / cfg.capacity << "x capacity\n";
    util::Histogram hist(0.0, 2000.0, 7);
    for (const double s : hot.served) {
      if (s > 0.0) hist.add(s);
    }
    std::cout << hist.render(40) << "\n";
  }
  std::cout << "After LessLog balances, every node serves <= "
            << cfg.capacity << " req/s.\n";
  return 0;
}
