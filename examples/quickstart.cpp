// Quickstart: the paper's 16-node worked example, end to end.
//
//   $ ./examples/quickstart
//
// Builds the 16-node system of Figures 1-2, inserts a file targeting P(4),
// walks the P(8) -> P(0) -> P(4) lookup from the paper, replicates under
// overload, updates, and shows the advanced model with dead nodes.
#include <iostream>

#include "lesslog/core/system.hpp"

int main() {
  using namespace lesslog;
  using core::Pid;

  // A 16-slot ID space (m = 4), no fault-tolerance bits: the basic model.
  core::System sys({.m = 4, .b = 0, .seed = 2024});
  sys.bootstrap(16);
  std::cout << "LessLog quickstart: " << sys.live_count()
            << "-node system (m = " << sys.width() << ")\n\n";

  // --- Insert -------------------------------------------------------------
  // insert() hashes the file name with ψ to pick the target node; the
  // paper's example uses target P(4), so we pin it here for the narrative.
  const core::FileId file = sys.insert_at(Pid{4});
  std::cout << "inserted file; target/holder: P("
            << sys.holders(file).front().value() << ")\n";

  // --- Lookup (Figure 2) ----------------------------------------------------
  const auto got = sys.get(file, Pid{8});
  std::cout << "GETFILE from P(8) walked:";
  for (const Pid p : got.route.path) std::cout << " P(" << p.value() << ")";
  std::cout << "  (" << got.route.hops() << " hops, <= m = " << sys.width()
            << ")\n";

  // --- Replication under overload ------------------------------------------
  // Say P(4) is overloaded. LessLog picks the replica location with bit
  // operations only: the children-list head P(5), whose subtree holds half
  // the ID space — halving P(4)'s load under even demand.
  const auto replica = sys.replicate(file, Pid{4});
  std::cout << "overload at P(4): replica placed at P("
            << replica->value() << ") — no access logs consulted\n";
  const auto rerouted = sys.get(file, Pid{13});
  std::cout << "GETFILE from P(13) now served by P("
            << rerouted.route.served_by->value() << ")\n";

  // --- Update ---------------------------------------------------------------
  const auto upd = sys.update(file);
  std::cout << "update propagated top-down to " << upd.copies_updated
            << " copies with " << upd.messages << " broadcast messages\n";

  // --- Advanced model: dead nodes -------------------------------------------
  sys.leave(Pid{0});
  sys.leave(Pid{5});
  std::cout << "\nP(0) and P(5) left (the paper's 14-node Figure 3 system)\n";
  const auto degraded = sys.get(file, Pid{8});
  std::cout << "GETFILE from P(8) routes around the dead parent:";
  for (const Pid p : degraded.route.path) {
    std::cout << " P(" << p.value() << ")";
  }
  std::cout << "\nchildren list of P(4) now: (";
  const core::LookupTree tree(4, Pid{4});
  bool first = true;
  for (const Pid c : core::children_list(tree, Pid{4}, sys.status())) {
    std::cout << (first ? "" : ", ") << "P(" << c.value() << ")";
    first = false;
  }
  std::cout << ")  — dead children replaced by their children\n";

  std::cout << "\nDone. See examples/hotspot_cdn, examples/swarm_churn and\n"
               "examples/fault_tolerance_demo for larger scenarios.\n";
  return 0;
}
