// Fault-tolerance walkthrough (Section 4): the 2^b-subtree model at work.
//
//   $ ./examples/fault_tolerance_demo
//
// Builds a b = 2 system, shows a file stored at 4 subtree targets, routes
// a request inside one subtree, then kills holders one by one and shows
// requests migrating across subtree identifiers until recovery re-creates
// the lost copies.
#include <iostream>

#include "lesslog/core/system.hpp"

int main() {
  using namespace lesslog;
  using core::Pid;

  core::System sys({.m = 6, .b = 2, .seed = 5});
  sys.bootstrap(64);
  std::cout << "64-node system, b = 2: every file stored at 2^2 = 4 "
               "subtree targets\n\n";

  const core::FileId f = sys.insert("vault/ledger.db");
  std::cout << "inserted 'vault/ledger.db'; holders:";
  for (const Pid h : sys.holders(f)) std::cout << " P(" << h.value() << ")";
  std::cout << "\n";

  const core::LookupTree tree = sys.tree_of(f);
  const core::SubtreeView view(tree, sys.fault_bits());
  for (const Pid h : sys.holders(f)) {
    std::cout << "  P(" << h.value() << ") serves subtree id "
              << view.subtree_id(h) << "\n";
  }

  // A request is served inside the requester's own subtree.
  const Pid requester{11};
  auto got = sys.get(f, requester);
  std::cout << "\nGETFILE from P(11) (subtree " << view.subtree_id(requester)
            << ") served by P(" << got.route.served_by->value()
            << ") in the same subtree, " << got.route.hops() << " hops\n";

  // Crash three of the four holders. After each crash, Section 5.3
  // recovery copies the lost subtree's files back from a sibling subtree.
  std::cout << "\ncrashing three holders in sequence...\n";
  for (int i = 0; i < 3; ++i) {
    const Pid victim = sys.holders(f).front();
    sys.fail(victim);
    std::cout << "  crash P(" << victim.value() << ") -> holders now:";
    for (const Pid h : sys.holders(f)) std::cout << " P(" << h.value() << ")";
    const auto still = sys.get(f, requester);
    std::cout << "  | P(11) still served by P("
              << still.route.served_by->value() << ")"
              << (still.route.used_fallback ? " (after subtree migration)"
                                            : "")
              << "\n";
  }

  std::cout << "\nfiles lost: " << sys.lost_files().size()
            << "  (fault tolerance holds while the 2^b holders never fail "
               "simultaneously)\n"
            << "maintenance messages spent: " << sys.maintenance_messages()
            << "\n";
  return 0;
}
