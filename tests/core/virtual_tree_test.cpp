#include "lesslog/core/virtual_tree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace lesslog::core {
namespace {

TEST(VirtualTree, RootIsAllOnes) {
  const VirtualTree t(4);
  EXPECT_EQ(t.root(), Vid{0b1111});
  EXPECT_TRUE(t.is_root(Vid{0b1111}));
  EXPECT_FALSE(t.is_root(Vid{0b0111}));
  EXPECT_EQ(t.size(), 16u);
}

TEST(VirtualTree, Property1ChildCounts) {
  // A node has i children iff its leftmost i bits are all 1s.
  const VirtualTree t(4);
  EXPECT_EQ(t.child_count(Vid{0b1111}), 4);
  EXPECT_EQ(t.child_count(Vid{0b1110}), 3);
  EXPECT_EQ(t.child_count(Vid{0b1100}), 2);
  EXPECT_EQ(t.child_count(Vid{0b1011}), 1);
  EXPECT_EQ(t.child_count(Vid{0b0111}), 0);
  EXPECT_EQ(t.child_count(Vid{0b0000}), 0);
}

TEST(VirtualTree, Property1ChildrenClearOneLeadingOne) {
  const VirtualTree t(4);
  // Children of the root, most-offspring first.
  EXPECT_EQ(t.children(Vid{0b1111}),
            (std::vector<Vid>{Vid{0b1110}, Vid{0b1101}, Vid{0b1011},
                              Vid{0b0111}}));
  // Paper's example node (written 0111 in the paper's bit order): three
  // children in the 1110 orientation.
  EXPECT_EQ(t.children(Vid{0b1110}),
            (std::vector<Vid>{Vid{0b1100}, Vid{0b1010}, Vid{0b0110}}));
  EXPECT_TRUE(t.children(Vid{0b0101}).empty());
}

TEST(VirtualTree, Property2ParentSetsHighestZero) {
  const VirtualTree t(4);
  EXPECT_EQ(t.parent(Vid{0b0111}), Vid{0b1111});
  EXPECT_EQ(t.parent(Vid{0b1110}), Vid{0b1111});
  EXPECT_EQ(t.parent(Vid{0b0011}), Vid{0b1011});
  EXPECT_EQ(t.parent(Vid{0b0000}), Vid{0b1000});
}

TEST(VirtualTree, ParentChildInverse) {
  const VirtualTree t(5);
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    for (const Vid c : t.children(Vid{v})) {
      EXPECT_EQ(t.parent(c), Vid{v});
    }
  }
}

TEST(VirtualTree, PaperOffspringExample) {
  // "the nodes of VID 1110 and 1100 have 7 and 3 offspring nodes".
  const VirtualTree t(4);
  EXPECT_EQ(t.offspring_count(Vid{0b1110}), 7u);
  EXPECT_EQ(t.offspring_count(Vid{0b1100}), 3u);
  EXPECT_EQ(t.offspring_count(t.root()), 15u);
  EXPECT_EQ(t.offspring_count(Vid{0b0111}), 0u);
}

TEST(VirtualTree, Property3OffspringMonotoneInVid) {
  // "The node of VID i has more or the same offspring nodes than the node
  // of VID j, if i > j."
  const VirtualTree t(6);
  for (std::uint32_t v = 1; v < t.size(); ++v) {
    EXPECT_GE(t.offspring_count(Vid{v}), t.offspring_count(Vid{v - 1}))
        << "v=" << v;
  }
}

TEST(VirtualTree, DepthCountsZeroBits) {
  const VirtualTree t(4);
  EXPECT_EQ(t.depth(t.root()), 0);
  EXPECT_EQ(t.depth(Vid{0b1110}), 1);
  EXPECT_EQ(t.depth(Vid{0b0101}), 2);
  EXPECT_EQ(t.depth(Vid{0b0000}), 4);
}

TEST(VirtualTree, PathToRootBoundedByWidth) {
  const VirtualTree t(6);
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    const std::vector<Vid> path = t.path_to_root(Vid{v});
    EXPECT_LE(path.size(), 7u);  // at most m hops => m+1 nodes
    EXPECT_EQ(path.front(), Vid{v});
    EXPECT_EQ(path.back(), t.root());
    // Strictly increasing VIDs along the path.
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_GT(path[i].value(), path[i - 1].value());
    }
  }
}

TEST(VirtualTree, InSubtreeBasics) {
  const VirtualTree t(4);
  EXPECT_TRUE(t.in_subtree(Vid{0b0000}, t.root()));
  EXPECT_TRUE(t.in_subtree(Vid{0b1110}, Vid{0b1110}));
  EXPECT_TRUE(t.in_subtree(Vid{0b0100}, Vid{0b1100}));
  EXPECT_FALSE(t.in_subtree(Vid{0b0101}, Vid{0b1100}));
  EXPECT_FALSE(t.in_subtree(Vid{0b1111}, Vid{0b1110}));
}

TEST(VirtualTree, InSubtreeMatchesPathMembership) {
  const VirtualTree t(5);
  for (std::uint32_t a = 0; a < t.size(); ++a) {
    for (std::uint32_t d = 0; d < t.size(); ++d) {
      bool on_path = false;
      for (const Vid p : t.path_to_root(Vid{d})) {
        if (p == Vid{a}) on_path = true;
      }
      EXPECT_EQ(t.in_subtree(Vid{d}, Vid{a}), on_path)
          << "a=" << a << " d=" << d;
    }
  }
}

TEST(VirtualTree, SubtreeVidsMatchSizeAndMembership) {
  const VirtualTree t(4);
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    const std::vector<Vid> sub = t.subtree_vids(Vid{v});
    EXPECT_EQ(sub.size(), t.subtree_size(Vid{v}));
    EXPECT_EQ(sub.front(), Vid{v});  // descending order, self first
    for (const Vid s : sub) {
      EXPECT_TRUE(t.in_subtree(s, Vid{v}));
    }
    for (std::size_t i = 1; i < sub.size(); ++i) {
      EXPECT_LT(sub[i].value(), sub[i - 1].value());
    }
  }
}

class VirtualTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(VirtualTreeSweep, IsASpanningTree) {
  // Every VID except the root has exactly one parent; following parents
  // always terminates at the root; total node count is 2^m.
  const int m = GetParam();
  const VirtualTree t(m);
  std::set<std::uint32_t> seen;
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    seen.insert(v);
    if (!t.is_root(Vid{v})) {
      const Vid p = t.parent(Vid{v});
      EXPECT_TRUE(t.contains(p));
      EXPECT_GT(p.value(), v);
    }
  }
  EXPECT_EQ(seen.size(), t.size());
}

TEST_P(VirtualTreeSweep, ChildrenPartitionSubtree) {
  // subtree(v) = {v} ∪ disjoint union of children subtrees.
  const int m = GetParam();
  const VirtualTree t(m);
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    std::uint32_t total = 1;
    std::set<std::uint32_t> members{v};
    for (const Vid c : t.children(Vid{v})) {
      total += t.subtree_size(c);
      for (const Vid s : t.subtree_vids(c)) {
        EXPECT_TRUE(members.insert(s.value()).second)
            << "overlap at " << s.value();
      }
    }
    EXPECT_EQ(total, t.subtree_size(Vid{v}));
    EXPECT_EQ(members.size(), t.subtree_size(Vid{v}));
  }
}

TEST_P(VirtualTreeSweep, BinomialShape) {
  // A binomial tree B_m has C(m, k) nodes at depth k.
  const int m = GetParam();
  const VirtualTree t(m);
  std::map<int, std::uint32_t> at_depth;
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    ++at_depth[t.depth(Vid{v})];
  }
  std::uint64_t binom = 1;  // C(m, 0)
  for (int k = 0; k <= m; ++k) {
    EXPECT_EQ(at_depth[k], binom) << "depth " << k;
    binom = binom * static_cast<std::uint64_t>(m - k) /
            static_cast<std::uint64_t>(k + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, VirtualTreeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

}  // namespace
}  // namespace lesslog::core
