// Exhaustive differential properties over small ID spaces: the optimized
// bit-arithmetic implementations are validated against brute-force
// reference computations for every node of every tree (and random liveness
// patterns), so any bit-level regression trips immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lesslog/core/children_list.hpp"
#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/core/routing.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

struct PropertyCase {
  int m;
  std::uint32_t root;
  std::uint64_t seed;
  double dead_fraction;
};

class CoreProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    const auto [m, root, seed, dead] = GetParam();
    m_ = m;
    tree_.emplace(m, Pid{root});
    live_.emplace(m, util::space_size(m));
    util::Rng rng(seed);
    const auto dead_count = static_cast<std::uint32_t>(
        dead * static_cast<double>(util::space_size(m)));
    for (const std::uint32_t d :
         rng.sample_indices(util::space_size(m), dead_count)) {
      live_->set_dead(d);
    }
  }

  // Brute force: children of k in the *basic* tree, recursively expanding
  // dead entries, as the paper defines the advanced children list.
  std::vector<Pid> brute_children_list(Pid k) const {
    std::vector<Vid> frontier;
    const VirtualTree& vt = tree_->virtual_tree();
    const std::function<void(Vid)> expand = [&](Vid v) {
      for (const Vid c : vt.children(v)) {
        if (live_->is_live(tree_->pid_of(c).value())) {
          frontier.push_back(c);
        } else {
          expand(c);
        }
      }
    };
    expand(tree_->vid_of(k));
    std::sort(frontier.begin(), frontier.end(),
              [](Vid a, Vid b) { return a.value() > b.value(); });
    std::vector<Pid> out;
    out.reserve(frontier.size());
    for (const Vid v : frontier) out.push_back(tree_->pid_of(v));
    return out;
  }

  int m_ = 0;
  std::optional<LookupTree> tree_;
  std::optional<util::StatusWord> live_;
};

TEST_P(CoreProperties, ChildrenListMatchesBruteForce) {
  for (std::uint32_t k = 0; k < util::space_size(m_); ++k) {
    EXPECT_EQ(children_list(*tree_, Pid{k}, *live_),
              brute_children_list(Pid{k}))
        << "k=" << k;
  }
}

TEST_P(CoreProperties, ChildrenListsPartitionLiveDescendants) {
  // The children lists of all live nodes + the insertion target's chain
  // partition the live nodes: every live non-top node appears in exactly
  // one live node's (or the dead root's) children list.
  std::map<std::uint32_t, int> appearances;
  const auto count_list = [&](Pid owner) {
    for (const Pid c : children_list(*tree_, owner, *live_)) {
      ++appearances[c.value()];
    }
  };
  for (std::uint32_t k = 0; k < util::space_size(m_); ++k) {
    if (live_->is_live(k)) count_list(Pid{k});
  }
  if (!live_->is_live(tree_->root().value())) count_list(tree_->root());

  const bool root_live = live_->is_live(tree_->root().value());
  for (std::uint32_t k = 0; k < util::space_size(m_); ++k) {
    if (!live_->is_live(k)) {
      EXPECT_EQ(appearances.count(k), 0u);
      continue;
    }
    // Every live node hangs from exactly one children list, except the
    // top live VID: a live root hangs from nothing, while with a dead
    // root the top node appears once — in the dead root's own list.
    const bool is_top = !live_vid_above(*tree_, Pid{k}, *live_);
    const int expected = is_top ? (root_live ? 0 : 1) : 1;
    EXPECT_EQ(appearances[k], expected) << "k=" << k;
  }
}

TEST_P(CoreProperties, FindLiveNodeMatchesLinearScan) {
  for (std::uint32_t s = 0; s < util::space_size(m_); ++s) {
    // Reference: walk every VID downward from vid(s).
    std::optional<Pid> expected;
    if (live_->is_live(s)) {
      expected = Pid{s};
    } else {
      for (std::uint32_t v = tree_->vid_of(Pid{s}).value(); v-- > 0;) {
        const Pid p = tree_->pid_of(Vid{v});
        if (live_->is_live(p.value())) {
          expected = p;
          break;
        }
      }
    }
    EXPECT_EQ(find_live_node(*tree_, Pid{s}, *live_), expected) << "s=" << s;
  }
}

TEST_P(CoreProperties, RoutePathsAreLoopFreeAndMonotone) {
  const auto holder = insertion_target(*tree_, *live_);
  if (!holder.has_value()) return;
  const HasCopyFn has_copy = [&](Pid p) { return p == *holder; };
  for (std::uint32_t k = 0; k < util::space_size(m_); ++k) {
    if (!live_->is_live(k)) continue;
    const RouteResult r = route_get(*tree_, Pid{k}, *live_, has_copy);
    std::set<std::uint32_t> seen;
    for (const Pid p : r.path) {
      EXPECT_TRUE(seen.insert(p.value()).second) << "loop at " << p.value();
    }
    // VIDs ascend strictly along the ancestor walk (fallback jump exempt).
    const std::size_t walk_end =
        r.used_fallback ? r.path.size() - 1 : r.path.size();
    for (std::size_t i = 1; i < walk_end; ++i) {
      EXPECT_GT(tree_->vid_of(r.path[i]).value(),
                tree_->vid_of(r.path[i - 1]).value());
    }
  }
}

TEST_P(CoreProperties, ReplicaTargetIsAlwaysFreshLiveAndDistinct) {
  const auto holder = insertion_target(*tree_, *live_);
  if (!holder.has_value()) return;
  std::set<std::uint32_t> copies{holder->value()};
  const HoldsCopyFn holds = [&copies](Pid p) {
    return copies.contains(p.value());
  };
  util::Rng rng(GetParam().seed ^ 0xABCD);
  // Saturate: replicate from the holder until the policy gives up; every
  // placement must be live, copyless, and not the overloaded node.
  for (int step = 0; step < 1 << m_; ++step) {
    const auto placement =
        replicate_target(*tree_, *holder, *live_, holds, rng);
    if (!placement.has_value()) break;
    EXPECT_TRUE(live_->is_live(placement->target.value()));
    EXPECT_FALSE(copies.contains(placement->target.value()));
    EXPECT_NE(placement->target, *holder);
    copies.insert(placement->target.value());
  }
}

TEST_P(CoreProperties, EveryCopySetKeepsRoutingSound) {
  // For random copy sets containing the insertion target, every live
  // requester finds *some* copy, never visiting a dead node.
  const auto holder = insertion_target(*tree_, *live_);
  if (!holder.has_value()) return;
  util::Rng rng(GetParam().seed ^ 0x77);
  for (int trial = 0; trial < 8; ++trial) {
    std::set<std::uint32_t> copies{holder->value()};
    for (const std::uint32_t extra : rng.sample_indices(
             util::space_size(m_),
             static_cast<std::uint32_t>(rng.bounded(6)))) {
      if (live_->is_live(extra)) copies.insert(extra);
    }
    const HasCopyFn has_copy = [&copies](Pid p) {
      return copies.contains(p.value());
    };
    for (std::uint32_t k = 0; k < util::space_size(m_); ++k) {
      if (!live_->is_live(k)) continue;
      const RouteResult r = route_get(*tree_, Pid{k}, *live_, has_copy);
      ASSERT_TRUE(r.served_by.has_value());
      EXPECT_TRUE(copies.contains(r.served_by->value()));
      for (const Pid p : r.path) EXPECT_TRUE(live_->is_live(p.value()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, CoreProperties,
    ::testing::Values(PropertyCase{3, 5, 1, 0.0},
                      PropertyCase{4, 4, 2, 0.0},
                      PropertyCase{4, 4, 3, 0.2},
                      PropertyCase{4, 0, 4, 0.4},
                      PropertyCase{5, 19, 5, 0.0},
                      PropertyCase{5, 19, 6, 0.3},
                      PropertyCase{6, 42, 7, 0.25},
                      PropertyCase{6, 63, 8, 0.5},
                      PropertyCase{7, 100, 9, 0.3}));

}  // namespace
}  // namespace lesslog::core
