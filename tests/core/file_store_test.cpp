#include "lesslog/core/file_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lesslog::core {
namespace {

TEST(FileStore, StartsEmpty) {
  const FileStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.has(FileId{1}));
  EXPECT_EQ(store.info(FileId{1}), std::nullopt);
}

TEST(FileStore, InsertedCopyBasics) {
  FileStore store;
  store.put_inserted(FileId{7}, 3);
  ASSERT_TRUE(store.has(FileId{7}));
  const CopyInfo info = store.info(FileId{7}).value();
  EXPECT_EQ(info.kind, CopyKind::kInserted);
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.access_count, 0u);
}

TEST(FileStore, ReplicaDoesNotDowngradeInserted) {
  FileStore store;
  store.put_inserted(FileId{1});
  store.put_replica(FileId{1});
  EXPECT_EQ(store.info(FileId{1})->kind, CopyKind::kInserted);
}

TEST(FileStore, InsertedPromotesReplica) {
  FileStore store;
  store.put_replica(FileId{1});
  EXPECT_EQ(store.info(FileId{1})->kind, CopyKind::kReplica);
  store.put_inserted(FileId{1});
  EXPECT_EQ(store.info(FileId{1})->kind, CopyKind::kInserted);
}

TEST(FileStore, EraseReportsPresence) {
  FileStore store;
  store.put_replica(FileId{2});
  EXPECT_TRUE(store.erase(FileId{2}));
  EXPECT_FALSE(store.erase(FileId{2}));
  EXPECT_FALSE(store.has(FileId{2}));
}

TEST(FileStore, ApplyUpdateBumpsVersionOnlyIfPresent) {
  FileStore store;
  EXPECT_FALSE(store.apply_update(FileId{3}, 9));
  store.put_inserted(FileId{3}, 1);
  EXPECT_TRUE(store.apply_update(FileId{3}, 9));
  EXPECT_EQ(store.info(FileId{3})->version, 9u);
}

TEST(FileStore, AccessCountingAndReset) {
  FileStore store;
  store.put_replica(FileId{4});
  store.record_access(FileId{4});
  store.record_access(FileId{4});
  store.record_access(FileId{99});  // absent: ignored
  EXPECT_EQ(store.info(FileId{4})->access_count, 2u);
  store.reset_access_counts();
  EXPECT_EQ(store.info(FileId{4})->access_count, 0u);
}

TEST(FileStore, PruneColdReplicasKeepsHotAndInserted) {
  FileStore store;
  store.put_inserted(FileId{1});   // never pruned
  store.put_replica(FileId{2});    // cold: 0 accesses
  store.put_replica(FileId{3});    // hot
  for (int i = 0; i < 5; ++i) store.record_access(FileId{3});
  const std::vector<FileId> pruned = store.prune_cold_replicas(3);
  EXPECT_EQ(pruned, std::vector<FileId>{FileId{2}});
  EXPECT_TRUE(store.has(FileId{1}));
  EXPECT_FALSE(store.has(FileId{2}));
  EXPECT_TRUE(store.has(FileId{3}));
}

TEST(FileStore, PruneThresholdIsStrict) {
  FileStore store;
  store.put_replica(FileId{5});
  store.record_access(FileId{5});
  // access_count == threshold survives (strictly-below rule).
  EXPECT_TRUE(store.prune_cold_replicas(1).empty());
  EXPECT_FALSE(store.prune_cold_replicas(2).empty());
}

TEST(FileStore, CategorizedListings) {
  FileStore store;
  store.put_inserted(FileId{1});
  store.put_inserted(FileId{2});
  store.put_replica(FileId{3});
  std::vector<FileId> ins = store.inserted_files();
  std::vector<FileId> rep = store.replica_files();
  std::sort(ins.begin(), ins.end());
  EXPECT_EQ(ins, (std::vector<FileId>{FileId{1}, FileId{2}}));
  EXPECT_EQ(rep, std::vector<FileId>{FileId{3}});
  EXPECT_EQ(store.size(), 3u);
}

TEST(FileId, OrderingAndHash) {
  EXPECT_LT(FileId{1}, FileId{2});
  EXPECT_EQ(FileId{5}, FileId{5});
  EXPECT_EQ(std::hash<FileId>{}(FileId{5}), std::hash<FileId>{}(FileId{5}));
}

TEST(FileStore, EnumerationFollowsSlabOrder) {
  // Slot order: insertion order, with erased slots reused LIFO. This is
  // the deterministic enumeration contract the shed/leave protocols see.
  FileStore store;
  store.put_inserted(FileId{10});  // slot 0
  store.put_replica(FileId{20});   // slot 1
  store.put_inserted(FileId{30});  // slot 2
  store.put_replica(FileId{40});   // slot 3
  EXPECT_EQ(store.inserted_files(),
            (std::vector<FileId>{FileId{10}, FileId{30}}));
  EXPECT_EQ(store.replica_files(),
            (std::vector<FileId>{FileId{20}, FileId{40}}));
  store.erase(FileId{20});         // frees slot 1
  store.put_replica(FileId{50});   // reuses slot 1
  EXPECT_EQ(store.replica_files(),
            (std::vector<FileId>{FileId{50}, FileId{40}}));
}

TEST(FileStore, CopyIsIndependentAndEqualShaped) {
  FileStore a;
  for (std::uint64_t k = 0; k < 100; ++k) {
    a.put_replica(FileId{k}, k, std::vector<std::uint8_t>(8, 0xAB));
  }
  a.erase(FileId{7});
  FileStore b = a;
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.replica_files(), a.replica_files());
  b.erase(FileId{3});
  EXPECT_TRUE(a.has(FileId{3}));
  EXPECT_FALSE(b.has(FileId{3}));
  EXPECT_EQ(*a.payload(FileId{4}), std::vector<std::uint8_t>(8, 0xAB));
}

TEST(FileStore, ChurnedStoreStaysConsistent) {
  // Interleave puts and erases so freelist reuse and index backward-shift
  // deletion both run, then cross-check against a reference map shape.
  FileStore store;
  std::vector<std::uint64_t> present;
  std::uint64_t next = 1;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) {
      store.put_replica(FileId{next}, next);
      present.push_back(next);
      ++next;
    }
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t victim = present[present.size() / 2];
      EXPECT_TRUE(store.erase(FileId{victim}));
      present.erase(present.begin() +
                    static_cast<std::ptrdiff_t>(present.size() / 2));
    }
  }
  EXPECT_EQ(store.size(), present.size());
  for (std::uint64_t k : present) {
    ASSERT_TRUE(store.has(FileId{k})) << k;
    EXPECT_EQ(store.info(FileId{k})->version, k);
  }
  EXPECT_FALSE(store.has(FileId{next}));
}

TEST(FileStore, ProbeHashResistsStridedKeyClustering) {
  // FileIds are minted PID-striped (pid << 32 | seq), so unmixed keys all
  // share their low bits and an identity probe hash would collapse them
  // onto a handful of home slots, degrading lookups to linear scans. The
  // SplitMix64 probe hash must keep the worst probe chain short at the
  // 50% load ceiling.
  for (const std::uint64_t stride :
       {std::uint64_t{1} << 32, std::uint64_t{1} << 20, std::uint64_t{4096}}) {
    FileStore store;
    for (std::uint64_t i = 0; i < 2048; ++i) {
      store.put_replica(FileId{i * stride});
    }
    EXPECT_LE(store.worst_probe_length(), 24u) << "stride=" << stride;
  }
}

}  // namespace
}  // namespace lesslog::core
