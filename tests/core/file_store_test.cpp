#include "lesslog/core/file_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lesslog::core {
namespace {

TEST(FileStore, StartsEmpty) {
  const FileStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.has(FileId{1}));
  EXPECT_EQ(store.info(FileId{1}), std::nullopt);
}

TEST(FileStore, InsertedCopyBasics) {
  FileStore store;
  store.put_inserted(FileId{7}, 3);
  ASSERT_TRUE(store.has(FileId{7}));
  const CopyInfo info = store.info(FileId{7}).value();
  EXPECT_EQ(info.kind, CopyKind::kInserted);
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.access_count, 0u);
}

TEST(FileStore, ReplicaDoesNotDowngradeInserted) {
  FileStore store;
  store.put_inserted(FileId{1});
  store.put_replica(FileId{1});
  EXPECT_EQ(store.info(FileId{1})->kind, CopyKind::kInserted);
}

TEST(FileStore, InsertedPromotesReplica) {
  FileStore store;
  store.put_replica(FileId{1});
  EXPECT_EQ(store.info(FileId{1})->kind, CopyKind::kReplica);
  store.put_inserted(FileId{1});
  EXPECT_EQ(store.info(FileId{1})->kind, CopyKind::kInserted);
}

TEST(FileStore, EraseReportsPresence) {
  FileStore store;
  store.put_replica(FileId{2});
  EXPECT_TRUE(store.erase(FileId{2}));
  EXPECT_FALSE(store.erase(FileId{2}));
  EXPECT_FALSE(store.has(FileId{2}));
}

TEST(FileStore, ApplyUpdateBumpsVersionOnlyIfPresent) {
  FileStore store;
  EXPECT_FALSE(store.apply_update(FileId{3}, 9));
  store.put_inserted(FileId{3}, 1);
  EXPECT_TRUE(store.apply_update(FileId{3}, 9));
  EXPECT_EQ(store.info(FileId{3})->version, 9u);
}

TEST(FileStore, AccessCountingAndReset) {
  FileStore store;
  store.put_replica(FileId{4});
  store.record_access(FileId{4});
  store.record_access(FileId{4});
  store.record_access(FileId{99});  // absent: ignored
  EXPECT_EQ(store.info(FileId{4})->access_count, 2u);
  store.reset_access_counts();
  EXPECT_EQ(store.info(FileId{4})->access_count, 0u);
}

TEST(FileStore, PruneColdReplicasKeepsHotAndInserted) {
  FileStore store;
  store.put_inserted(FileId{1});   // never pruned
  store.put_replica(FileId{2});    // cold: 0 accesses
  store.put_replica(FileId{3});    // hot
  for (int i = 0; i < 5; ++i) store.record_access(FileId{3});
  const std::vector<FileId> pruned = store.prune_cold_replicas(3);
  EXPECT_EQ(pruned, std::vector<FileId>{FileId{2}});
  EXPECT_TRUE(store.has(FileId{1}));
  EXPECT_FALSE(store.has(FileId{2}));
  EXPECT_TRUE(store.has(FileId{3}));
}

TEST(FileStore, PruneThresholdIsStrict) {
  FileStore store;
  store.put_replica(FileId{5});
  store.record_access(FileId{5});
  // access_count == threshold survives (strictly-below rule).
  EXPECT_TRUE(store.prune_cold_replicas(1).empty());
  EXPECT_FALSE(store.prune_cold_replicas(2).empty());
}

TEST(FileStore, CategorizedListings) {
  FileStore store;
  store.put_inserted(FileId{1});
  store.put_inserted(FileId{2});
  store.put_replica(FileId{3});
  std::vector<FileId> ins = store.inserted_files();
  std::vector<FileId> rep = store.replica_files();
  std::sort(ins.begin(), ins.end());
  EXPECT_EQ(ins, (std::vector<FileId>{FileId{1}, FileId{2}}));
  EXPECT_EQ(rep, std::vector<FileId>{FileId{3}});
  EXPECT_EQ(store.size(), 3u);
}

TEST(FileId, OrderingAndHash) {
  EXPECT_LT(FileId{1}, FileId{2});
  EXPECT_EQ(FileId{5}, FileId{5});
  EXPECT_EQ(std::hash<FileId>{}(FileId{5}), std::hash<FileId>{}(FileId{5}));
}

}  // namespace
}  // namespace lesslog::core
