// Boundary configurations: minimal ID spaces, maximal fault bits, single
// live nodes, full spaces — the places bit arithmetic goes wrong first.
#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/system.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

TEST(EdgeCases, SmallestIdSpace) {
  // m = 1: two slots, the tree is root + one leaf.
  const VirtualTree vt(1);
  EXPECT_EQ(vt.root(), Vid{1});
  EXPECT_EQ(vt.children(Vid{1}), std::vector<Vid>{Vid{0}});
  EXPECT_TRUE(vt.is_leaf(Vid{0}));
  EXPECT_EQ(vt.parent(Vid{0}), Vid{1});

  System sys({.m = 1, .b = 0, .seed = 1});
  sys.bootstrap(2);
  const FileId f = sys.insert_at(Pid{1});
  EXPECT_TRUE(sys.get(f, Pid{0}).ok());
  EXPECT_TRUE(sys.get(f, Pid{1}).ok());
}

TEST(EdgeCases, SingleLiveNodeServesEverything) {
  System sys({.m = 4, .b = 0, .seed = 2});
  sys.bootstrap(16);
  for (std::uint32_t p = 1; p < 16; ++p) sys.leave(Pid{p});
  ASSERT_EQ(sys.live_count(), 1u);
  const FileId f = sys.insert_at(Pid{9});  // dead target
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{0}});
  const auto got = sys.get(f, Pid{0});
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.route.hops(), 0);
}

TEST(EdgeCases, MaximalFaultBits) {
  // b = m - 1: subtree width 1, every subtree is a pair {root}, i.e.
  // 2^(m-1) subtrees of two VIDs... width 1 means two nodes per subtree?
  // subtree_width = 1 -> 2 subtree VIDs per subtree.
  const int m = 4;
  System sys({.m = m, .b = m - 1, .seed = 3});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{6});
  EXPECT_EQ(sys.holders(f).size(), 8u);  // 2^(m-1) copies
  for (std::uint32_t k = 0; k < 16; ++k) {
    const auto got = sys.get(f, Pid{k});
    EXPECT_TRUE(got.ok());
    EXPECT_LE(got.route.hops(), 1);  // width-1 subtrees: at most one hop
  }
}

TEST(EdgeCases, MaximalFaultBitsSurvivesHeavyCrashes) {
  const int m = 4;
  System sys({.m = m, .b = m - 1, .seed = 4});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{6});
  util::Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const std::vector<std::uint32_t> live = sys.status().live_pids();
    sys.fail(Pid{live[rng.bounded(live.size())]});
  }
  EXPECT_TRUE(sys.lost_files().empty());
  for (const std::uint32_t k : sys.status().live_pids()) {
    EXPECT_TRUE(sys.get(f, Pid{k}).ok());
  }
}

TEST(EdgeCases, FullSpaceJoinRejectsNone) {
  System sys({.m = 3, .b = 0, .seed = 5});
  sys.bootstrap(8);
  EXPECT_EQ(sys.status().first_dead(), 8u);  // nothing free
}

TEST(EdgeCases, TargetEqualsRequester) {
  System sys({.m = 5, .b = 0, .seed = 6});
  sys.bootstrap(32);
  const FileId f = sys.insert_at(Pid{17});
  const auto got = sys.get(f, Pid{17});
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.route.hops(), 0);
  EXPECT_EQ(sys.node(Pid{17}).served(), 1u);
}

TEST(EdgeCases, RepeatedLeaveJoinOfSameNode) {
  System sys({.m = 4, .b = 1, .seed = 7});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  for (int cycle = 0; cycle < 5; ++cycle) {
    sys.leave(Pid{4});
    EXPECT_TRUE(sys.get(f, Pid{1}).ok());
    sys.join(Pid{4});
    EXPECT_TRUE(sys.get(f, Pid{1}).ok());
  }
  EXPECT_TRUE(sys.lost_files().empty());
  EXPECT_TRUE(sys.verify_integrity().clean());
}

TEST(EdgeCases, InsertIntoEmptySystemIsLost) {
  System sys({.m = 4, .b = 0, .seed = 8});
  const FileId f = sys.insert_at(Pid{3});
  EXPECT_EQ(sys.lost_files(), std::vector<FileId>{f});
  // A later join cannot resurrect data that never existed anywhere.
  sys.join(Pid{3});
  EXPECT_EQ(sys.lost_files(), std::vector<FileId>{f});
}

TEST(EdgeCases, ReplicateAtEveryNodeThenPrune) {
  System sys({.m = 3, .b = 0, .seed = 9});
  sys.bootstrap(8);
  const FileId f = sys.insert_at(Pid{5});
  // Saturate the whole space with replicas.
  for (int i = 0; i < 16; ++i) {
    std::optional<Pid> placed;
    for (const Pid h : sys.holders(f)) {
      placed = sys.replicate(f, h);
      if (placed.has_value()) break;
    }
    if (!placed.has_value()) break;
  }
  EXPECT_EQ(sys.holders(f).size(), 8u);
  // Nothing was accessed: pruning with threshold 1 removes every replica.
  EXPECT_EQ(sys.prune_cold_replicas(f, 1), 7u);
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{5}});
}

TEST(EdgeCases, UpdateOnLostFileIsSafe) {
  System sys({.m = 4, .b = 0, .seed = 10});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.fail(Pid{4});
  const auto out = sys.update(f);
  EXPECT_EQ(out.copies_updated, 0);
}

}  // namespace
}  // namespace lesslog::core
