#include "lesslog/core/routing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

HasCopyFn copy_at(std::set<std::uint32_t> pids) {
  return [pids = std::move(pids)](Pid p) { return pids.contains(p.value()); };
}

TEST(FirstAliveAncestor, AllLiveIsPlainParent) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  EXPECT_EQ(first_alive_ancestor(tree, Pid{8}, live), Pid{0});
  EXPECT_EQ(first_alive_ancestor(tree, Pid{0}, live), Pid{4});
  EXPECT_EQ(first_alive_ancestor(tree, Pid{4}, live), std::nullopt);
}

TEST(FirstAliveAncestor, SkipsDeadAncestors) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(0);  // P(0) is P(8)'s parent in the tree of P(4)
  EXPECT_EQ(first_alive_ancestor(tree, Pid{8}, live), Pid{4});
}

TEST(FirstAliveAncestor, AllAncestorsDead) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(0);
  live.set_dead(4);
  EXPECT_EQ(first_alive_ancestor(tree, Pid{8}, live), std::nullopt);
}

TEST(AncestorChain, EndsAtLiveRoot) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const std::vector<Pid> chain = ancestor_chain(tree, Pid{8}, live);
  EXPECT_EQ(chain, (std::vector<Pid>{Pid{8}, Pid{0}, Pid{4}}));
}

TEST(RouteGet, ServedAtRequesterWhenLocalCopy) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({8}));
  EXPECT_EQ(r.served_by, Pid{8});
  EXPECT_EQ(r.hops(), 0);
  EXPECT_FALSE(r.used_fallback);
}

TEST(RouteGet, PaperRoutingExample) {
  // P(8) -> P(0) -> P(4) when only the target holds the file.
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({4}));
  EXPECT_EQ(r.path, (std::vector<Pid>{Pid{8}, Pid{0}, Pid{4}}));
  EXPECT_EQ(r.served_by, Pid{4});
  EXPECT_EQ(r.hops(), 2);
}

TEST(RouteGet, ReplicaOnPathShortCircuits) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({0, 4}));
  EXPECT_EQ(r.served_by, Pid{0});
  EXPECT_EQ(r.hops(), 1);
}

TEST(RouteGet, OffPathReplicaIsInvisible) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  // P(12) is not on P(8)'s path to P(4).
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({12, 4}));
  EXPECT_EQ(r.served_by, Pid{4});
}

TEST(RouteGet, FaultWhenNoCopyAnywhere) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({}));
  EXPECT_EQ(r.served_by, std::nullopt);
  EXPECT_EQ(r.path.back(), Pid{4});  // walked all the way to the target
}

TEST(RouteGet, DeadRootFallsBackToStandIn) {
  // Paper scenario: P(4), P(5) dead; the file for target 4 lives at P(6).
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({6}));
  EXPECT_EQ(r.served_by, Pid{6});
  EXPECT_TRUE(r.used_fallback);
  EXPECT_EQ(r.path.back(), Pid{6});
}

TEST(RouteGet, DeadRootReplicaOnPathAvoidsFallback) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  // P(0) is on P(8)'s walk; give it a replica.
  const RouteResult r = route_get(tree, Pid{8}, live, copy_at({0, 6}));
  EXPECT_EQ(r.served_by, Pid{0});
  EXPECT_FALSE(r.used_fallback);
}

TEST(RouteGet, StandInRequesterServesItself) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  const RouteResult r = route_get(tree, Pid{6}, live, copy_at({6}));
  EXPECT_EQ(r.served_by, Pid{6});
  EXPECT_EQ(r.hops(), 0);
}

struct RoutingCase {
  int m;
  std::uint32_t root;
  std::uint64_t seed;
  std::uint32_t dead;
};

class RoutingSweep : public ::testing::TestWithParam<RoutingCase> {};

TEST_P(RoutingSweep, EveryLiveNodeReachesTheFile) {
  // Core liveness property: with the original copy placed by the insertion
  // rule, a request from any live node always finds the file.
  const auto [m, root, seed, dead_count] = GetParam();
  const LookupTree tree(m, Pid{root});
  util::StatusWord live = all_live(m);
  util::Rng rng(seed);
  for (std::uint32_t dead : rng.sample_indices(util::space_size(m),
                                               dead_count)) {
    live.set_dead(dead);
  }
  const std::optional<Pid> holder = insertion_target(tree, live);
  ASSERT_TRUE(holder.has_value());
  const HasCopyFn has_copy = [h = *holder](Pid p) { return p == h; };

  for (std::uint32_t k = 0; k < util::space_size(m); ++k) {
    if (!live.is_live(k)) continue;
    const RouteResult r = route_get(tree, Pid{k}, live, has_copy);
    EXPECT_EQ(r.served_by, *holder) << "k=" << k;
    // O(log N) bound: ancestor walk <= m hops, plus at most one fallback.
    EXPECT_LE(r.hops(), m + 1);
    // Every intermediate node is live.
    for (const Pid p : r.path) {
      EXPECT_TRUE(live.is_live(p.value()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RoutingSweep,
    ::testing::Values(RoutingCase{4, 4, 1, 0}, RoutingCase{4, 4, 2, 5},
                      RoutingCase{5, 9, 3, 10}, RoutingCase{6, 60, 4, 30},
                      RoutingCase{8, 100, 5, 100}, RoutingCase{8, 0, 6, 200},
                      RoutingCase{10, 512, 7, 300}));

TEST(AncestorTableTest, MatchesFirstAliveAncestorEverywhere) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const int m = 7;
    const LookupTree tree(m, Pid{static_cast<std::uint32_t>(seed * 17 + 3)});
    util::StatusWord live = all_live(m);
    util::Rng rng(seed);
    for (std::uint32_t dead :
         rng.sample_indices(util::space_size(m), 40)) {
      live.set_dead(dead);
    }
    const AncestorTable table = build_ancestor_table(tree, live);
    ASSERT_EQ(table.next.size(), util::space_size(m));
    for (std::uint32_t p = 0; p < util::space_size(m); ++p) {
      const std::optional<Pid> expected =
          first_alive_ancestor(tree, Pid{p}, live);
      if (expected.has_value()) {
        EXPECT_EQ(table.next[p], expected->value()) << "p=" << p;
      } else {
        EXPECT_EQ(table.next[p], AncestorTable::kNone) << "p=" << p;
      }
    }
    EXPECT_EQ(table.root, tree.root());
    EXPECT_EQ(table.root_live, live.is_live(tree.root().value()));
    if (!table.root_live) {
      const std::optional<Pid> holder = insertion_target(tree, live);
      ASSERT_TRUE(holder.has_value());
      EXPECT_EQ(table.fallback_holder, holder->value());
    }
  }
}

TEST(AncestorTableTest, FlatRouteGetMatchesRouteGet) {
  // The templated table walk must visit the same nodes and serve at the
  // same holder as route_get, over random liveness and copy placements —
  // including dead-root fallback and fault cases.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const int m = 6;
    const LookupTree tree(m, Pid{static_cast<std::uint32_t>(seed * 11)});
    util::StatusWord live = all_live(m);
    util::Rng rng(seed);
    for (std::uint32_t dead :
         rng.sample_indices(util::space_size(m), 20)) {
      live.set_dead(dead);
    }
    std::set<std::uint32_t> copies;
    for (int c = 0; c < 3; ++c) {
      const auto p =
          static_cast<std::uint32_t>(rng.bounded(util::space_size(m)));
      if (live.is_live(p)) copies.insert(p);
    }
    const AncestorTable table = build_ancestor_table(tree, live);
    const HasCopyFn slow_copy = copy_at(copies);
    for (std::uint32_t k = 0; k < util::space_size(m); ++k) {
      if (!live.is_live(k)) continue;
      const RouteResult slow = route_get(tree, Pid{k}, live, slow_copy);
      std::vector<Pid> forwards;
      const std::optional<Pid> fast = route_get(
          table, Pid{k},
          [&copies](Pid p) { return copies.contains(p.value()); },
          [&forwards](Pid p) { forwards.push_back(p); });
      EXPECT_EQ(fast, slow.served_by) << "seed=" << seed << " k=" << k;
      if (slow.served_by.has_value()) {
        // Forward calls are exactly the path nodes before the server.
        ASSERT_EQ(forwards.size(), slow.path.size() - 1);
        for (std::size_t i = 0; i < forwards.size(); ++i) {
          EXPECT_EQ(forwards[i], slow.path[i]) << "seed=" << seed;
        }
        EXPECT_EQ(static_cast<int>(forwards.size()), slow.hops());
      } else {
        // On a fault every visited node forwarded.
        EXPECT_EQ(forwards, slow.path) << "seed=" << seed << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace lesslog::core
