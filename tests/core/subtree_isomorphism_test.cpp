// Structural soundness of the fault-tolerant decomposition: every subtree
// of a SubtreeView must behave exactly like an independent (m-b)-bit
// lookup tree — children lists, FINDLIVENODE, and routing all included.
// The isomorphism maps subtree VIDs of subtree `t` to the standalone
// tree's VIDs one-to-one.
#include <gtest/gtest.h>

#include "lesslog/core/children_list.hpp"
#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/find_live_node.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

struct IsoCase {
  int m;
  int b;
  std::uint32_t root;
  std::uint64_t seed;
  std::uint32_t dead;
};

class SubtreeIsomorphism : public ::testing::TestWithParam<IsoCase> {
 protected:
  void SetUp() override {
    const auto [m, b, root, seed, dead] = GetParam();
    tree_.emplace(m, Pid{root});
    view_.emplace(*tree_, b);
    live_.emplace(m, util::space_size(m));
    util::Rng rng(seed);
    for (const std::uint32_t d :
         rng.sample_indices(util::space_size(m), dead)) {
      live_->set_dead(d);
    }
  }

  // The standalone (m-b)-bit "shadow" world of subtree `t`: shadow PID x
  // corresponds to the full-space node at pid_at(vid, t) where vid is the
  // shadow tree's vid of x. We choose the shadow root so that shadow VIDs
  // equal subtree VIDs: shadow root PID 2^(m-b)-1 makes complement 0, so
  // shadow VID == shadow PID; we then identify shadow PID with sub-VID.
  struct Shadow {
    LookupTree tree;
    util::StatusWord live;
  };

  Shadow make_shadow(std::uint32_t t) const {
    const int sub_m = view_->subtree_width();
    Shadow shadow{LookupTree(sub_m, Pid{util::mask_of(sub_m)}),
                  util::StatusWord(sub_m)};
    for (std::uint32_t sv = 0; sv < util::space_size(sub_m); ++sv) {
      if (live_->is_live(view_->pid_at(sv, t).value())) {
        shadow.live.set_live(sv);
      }
    }
    return shadow;
  }

  std::optional<LookupTree> tree_;
  std::optional<SubtreeView> view_;
  std::optional<util::StatusWord> live_;
};

TEST_P(SubtreeIsomorphism, ChildrenListsMap) {
  for (std::uint32_t t = 0; t < view_->subtree_count(); ++t) {
    const Shadow shadow = make_shadow(t);
    for (std::uint32_t sv = 0; sv < util::space_size(view_->subtree_width());
         ++sv) {
      const Pid full = view_->pid_at(sv, t);
      const std::vector<Pid> via_view = view_->children_list(full, *live_);
      const std::vector<Pid> via_shadow =
          children_list(shadow.tree, Pid{sv}, shadow.live);
      ASSERT_EQ(via_view.size(), via_shadow.size())
          << "t=" << t << " sv=" << sv;
      for (std::size_t i = 0; i < via_view.size(); ++i) {
        // Shadow PIDs are sub-VIDs (complement 0): map back and compare.
        EXPECT_EQ(via_view[i],
                  view_->pid_at(via_shadow[i].value(), t));
      }
    }
  }
}

TEST_P(SubtreeIsomorphism, InsertionTargetsMap) {
  for (std::uint32_t t = 0; t < view_->subtree_count(); ++t) {
    const Shadow shadow = make_shadow(t);
    const std::optional<Pid> via_view = view_->insertion_target(t, *live_);
    const std::optional<Pid> via_shadow =
        insertion_target(shadow.tree, shadow.live);
    if (!via_shadow.has_value()) {
      EXPECT_EQ(via_view, std::nullopt);
      continue;
    }
    ASSERT_TRUE(via_view.has_value());
    EXPECT_EQ(*via_view, view_->pid_at(via_shadow->value(), t));
  }
}

TEST_P(SubtreeIsomorphism, AncestorWalksMap) {
  for (std::uint32_t t = 0; t < view_->subtree_count(); ++t) {
    const Shadow shadow = make_shadow(t);
    for (std::uint32_t sv = 0; sv < util::space_size(view_->subtree_width());
         ++sv) {
      const Pid full = view_->pid_at(sv, t);
      const std::optional<Pid> via_view =
          view_->first_alive_subtree_ancestor(full, *live_);
      const std::optional<Pid> via_shadow =
          first_alive_ancestor(shadow.tree, Pid{sv}, shadow.live);
      if (!via_shadow.has_value()) {
        EXPECT_EQ(via_view, std::nullopt) << "t=" << t << " sv=" << sv;
      } else {
        ASSERT_TRUE(via_view.has_value());
        EXPECT_EQ(*via_view, view_->pid_at(via_shadow->value(), t));
      }
    }
  }
}

TEST_P(SubtreeIsomorphism, LiveVidAboveMaps) {
  for (std::uint32_t t = 0; t < view_->subtree_count(); ++t) {
    const Shadow shadow = make_shadow(t);
    for (std::uint32_t sv = 0; sv < util::space_size(view_->subtree_width());
         ++sv) {
      const Pid full = view_->pid_at(sv, t);
      EXPECT_EQ(view_->live_vid_above(full, *live_),
                live_vid_above(shadow.tree, Pid{sv}, shadow.live))
          << "t=" << t << " sv=" << sv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SubtreeIsomorphism,
    ::testing::Values(IsoCase{4, 1, 4, 1, 0}, IsoCase{4, 2, 4, 2, 4},
                      IsoCase{5, 1, 19, 3, 8}, IsoCase{5, 2, 19, 4, 10},
                      IsoCase{6, 2, 42, 5, 20}, IsoCase{6, 3, 42, 6, 16},
                      IsoCase{7, 3, 100, 7, 40}, IsoCase{8, 4, 200, 8, 64}));

}  // namespace
}  // namespace lesslog::core
