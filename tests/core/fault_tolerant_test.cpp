#include "lesslog/core/fault_tolerant.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

HasCopyFn copy_at(const std::set<std::uint32_t>& pids) {
  return [&pids](Pid p) { return pids.contains(p.value()); };
}

TEST(SubtreeView, GeometryBasics) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  EXPECT_EQ(view.fault_bits(), 2);
  EXPECT_EQ(view.subtree_width(), 2);
  EXPECT_EQ(view.subtree_count(), 4u);
}

TEST(SubtreeView, SubtreeIdIsLowVidBits) {
  // Figure 4: the lookup tree of P(4) (m = 4) with b = 2; each node's
  // subtree id is the last 2 bits of its VID.
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  for (std::uint32_t p = 0; p < 16; ++p) {
    const std::uint32_t vid = tree.vid_of(Pid{p}).value();
    EXPECT_EQ(view.subtree_id(Pid{p}), vid & 0b11u);
    EXPECT_EQ(view.subtree_vid(Pid{p}), vid >> 2);
    EXPECT_EQ(view.pid_at(vid >> 2, vid & 0b11u), Pid{p});
  }
}

TEST(SubtreeView, BZeroDegeneratesToWholeTree) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  EXPECT_EQ(view.subtree_count(), 1u);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(view.subtree_id(Pid{p}), 0u);
    EXPECT_EQ(view.subtree_vid(Pid{p}), tree.vid_of(Pid{p}).value());
  }
  EXPECT_EQ(view.subtree_root(0), Pid{4});
}

TEST(SubtreeView, SubtreeRootsHaveAllOnesSubtreeVid) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  for (std::uint32_t t = 0; t < 4; ++t) {
    const Pid root = view.subtree_root(t);
    EXPECT_EQ(view.subtree_vid(root), 0b11u);
    EXPECT_EQ(view.subtree_id(root), t);
  }
}

TEST(SubtreeView, SubtreesPartitionTheIdSpace) {
  const LookupTree tree(5, Pid{9});
  const SubtreeView view(tree, 2);
  std::set<std::uint32_t> seen;
  for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
    for (std::uint32_t sv = 0; sv <= util::mask_of(view.subtree_width());
         ++sv) {
      EXPECT_TRUE(seen.insert(view.pid_at(sv, t).value()).second);
    }
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(SubtreeView, InsertionTargetsOnePerSubtree) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  const util::StatusWord live = all_live(4);
  const std::vector<Pid> targets = view.insertion_targets(live);
  ASSERT_EQ(targets.size(), 4u);
  std::set<std::uint32_t> ids;
  for (const Pid t : targets) {
    EXPECT_EQ(view.subtree_vid(t), 0b11u);  // live subtree roots
    ids.insert(view.subtree_id(t));
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(SubtreeView, FindLiveInSubtreeScansDownward) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  util::StatusWord live = all_live(4);
  const Pid root0 = view.subtree_root(0);
  live.set_dead(root0.value());
  const std::optional<Pid> found = view.insertion_target(0, live);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(view.subtree_id(*found), 0u);
  EXPECT_EQ(view.subtree_vid(*found), 0b10u);
}

TEST(SubtreeView, EmptySubtreeYieldsNoTarget) {
  const LookupTree tree(3, Pid{5});
  const SubtreeView view(tree, 1);
  util::StatusWord live = all_live(3);
  for (std::uint32_t sv = 0; sv < 4; ++sv) {
    live.set_dead(view.pid_at(sv, 0).value());
  }
  EXPECT_EQ(view.insertion_target(0, live), std::nullopt);
  EXPECT_EQ(view.insertion_targets(live).size(), 1u);
}

TEST(SubtreeView, ChildrenListStaysInSubtree) {
  const LookupTree tree(5, Pid{18});
  const SubtreeView view(tree, 2);
  util::StatusWord live = all_live(5);
  util::Rng rng(4);
  for (std::uint32_t dead : rng.sample_indices(32, 8)) live.set_dead(dead);
  for (std::uint32_t p = 0; p < 32; ++p) {
    const std::uint32_t sid = view.subtree_id(Pid{p});
    for (const Pid c : view.children_list(Pid{p}, live)) {
      EXPECT_EQ(view.subtree_id(c), sid);
      EXPECT_TRUE(live.is_live(c.value()));
      EXPECT_LT(view.subtree_vid(c), view.subtree_vid(Pid{p}));
    }
  }
}

TEST(SubtreeView, RouteGetWithinOwnSubtree) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  const util::StatusWord live = all_live(4);
  // Copies at all four subtree roots (the FT insertion state).
  std::set<std::uint32_t> copies;
  for (const Pid t : view.insertion_targets(live)) copies.insert(t.value());

  for (std::uint32_t k = 0; k < 16; ++k) {
    const RouteResult r = view.route_get(Pid{k}, live, copy_at(copies));
    ASSERT_TRUE(r.served_by.has_value()) << "k=" << k;
    // Served within the requester's own subtree, no migration.
    EXPECT_EQ(view.subtree_id(*r.served_by), view.subtree_id(Pid{k}));
    EXPECT_FALSE(r.used_fallback);
    EXPECT_LE(r.hops(), view.subtree_width());
  }
}

TEST(SubtreeView, RouteGetMigratesOnSubtreeFault) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  const util::StatusWord live = all_live(4);
  // Copy only in subtree 2; a requester in subtree 0 must migrate.
  const Pid holder = view.subtree_root(2);
  const std::set<std::uint32_t> copies{holder.value()};
  const Pid requester = view.pid_at(0b01, 0);
  const RouteResult r = view.route_get(requester, live, copy_at(copies));
  ASSERT_TRUE(r.served_by.has_value());
  EXPECT_EQ(*r.served_by, holder);
  EXPECT_TRUE(r.used_fallback);
}

TEST(SubtreeView, ToleratesFailuresBelowDegree) {
  // 2^b fault tolerance: kill all but one subtree's holder; every live
  // requester still reaches a copy.
  const LookupTree tree(5, Pid{7});
  const SubtreeView view(tree, 2);
  util::StatusWord live = all_live(5);
  std::vector<Pid> targets = view.insertion_targets(live);
  ASSERT_EQ(targets.size(), 4u);
  std::set<std::uint32_t> copies;
  for (const Pid t : targets) copies.insert(t.value());
  // Fail three of the four holders outright (copies vanish with them).
  for (std::size_t i = 0; i + 1 < targets.size(); ++i) {
    live.set_dead(targets[i].value());
    copies.erase(targets[i].value());
  }
  for (std::uint32_t k = 0; k < 32; ++k) {
    if (!live.is_live(k)) continue;
    const RouteResult r = view.route_get(Pid{k}, live, copy_at(copies));
    EXPECT_TRUE(r.served_by.has_value()) << "k=" << k;
  }
}

TEST(SubtreeView, FaultsWhenEveryHolderIsGone) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 1);
  const util::StatusWord live = all_live(4);
  const RouteResult r =
      view.route_get(Pid{3}, live, copy_at(std::set<std::uint32_t>{}));
  EXPECT_EQ(r.served_by, std::nullopt);
}

TEST(SubtreeView, ReplicateTargetStaysInSubtree) {
  const LookupTree tree(5, Pid{12});
  const SubtreeView view(tree, 1);
  const util::StatusWord live = all_live(5);
  util::Rng rng(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    const Pid holder = view.subtree_root(t);
    std::set<std::uint32_t> copies{holder.value()};
    // The subtree root has subtree_width() children; each replication
    // walks one step down its children list.
    for (int step = 0; step < view.subtree_width(); ++step) {
      const std::optional<Pid> next = view.replicate_target(
          holder, live, copy_at(copies), rng);
      ASSERT_TRUE(next.has_value());
      EXPECT_EQ(view.subtree_id(*next), t);
      EXPECT_FALSE(copies.contains(next->value()));
      copies.insert(next->value());
    }
    // List exhausted: the next overload would surface at a child instead.
    EXPECT_EQ(view.replicate_target(holder, live, copy_at(copies), rng),
              std::nullopt);
  }
}

TEST(SubtreeView, PropagateUpdatePerSubtree) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  const util::StatusWord live = all_live(4);
  std::set<std::uint32_t> copies;
  for (const Pid t : view.insertion_targets(live)) copies.insert(t.value());

  std::set<std::uint32_t> updated;
  for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
    const SubtreeView::SubtreeUpdate r =
        view.propagate_update(t, live, copy_at(copies));
    for (const Pid p : r.updated) updated.insert(p.value());
  }
  EXPECT_EQ(updated, copies);
}

class FaultBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(FaultBitsSweep, EveryRequesterServedWithAllHoldersLive) {
  const int b = GetParam();
  const int m = 6;
  const LookupTree tree(m, Pid{37});
  const SubtreeView view(tree, b);
  util::StatusWord live = all_live(m);
  util::Rng rng(static_cast<std::uint64_t>(b) + 1);
  for (std::uint32_t dead : rng.sample_indices(64, 20)) live.set_dead(dead);

  std::set<std::uint32_t> copies;
  for (const Pid t : view.insertion_targets(live)) copies.insert(t.value());
  ASSERT_FALSE(copies.empty());

  for (std::uint32_t k = 0; k < 64; ++k) {
    if (!live.is_live(k)) continue;
    const RouteResult r = view.route_get(Pid{k}, live, copy_at(copies));
    EXPECT_TRUE(r.served_by.has_value()) << "b=" << b << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, FaultBitsSweep,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace lesslog::core
