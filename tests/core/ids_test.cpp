#include "lesslog/core/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lesslog::core {
namespace {

TEST(Ids, PidValueAndOrdering) {
  const Pid a{3};
  const Pid b{7};
  EXPECT_EQ(a.value(), 3u);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Pid{3});
}

TEST(Ids, VidOrderingMatchesValue) {
  EXPECT_LT(Vid{0b0111}, Vid{0b1000});
  EXPECT_EQ(Vid{5}, Vid{5});
}

TEST(Ids, ToStringForms) {
  EXPECT_EQ(to_string(Pid{4}), "P(4)");
  EXPECT_EQ(to_binary(Vid{0b1011}, 4), "1011");
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_set<Pid> pids{Pid{1}, Pid{2}, Pid{1}};
  EXPECT_EQ(pids.size(), 2u);
  std::unordered_set<Vid> vids{Vid{9}, Vid{9}};
  EXPECT_EQ(vids.size(), 1u);
}

TEST(IdMapper, PaperComplementExample) {
  // Tree of P(4) in a 16-node system: 4̄ = 1011₂ = 11.
  const IdMapper mapper(4, Pid{4});
  EXPECT_EQ(mapper.complement(), 0b1011u);
  EXPECT_EQ(mapper.root(), Pid{4});
}

TEST(IdMapper, RootMapsToAllOnesVid) {
  for (std::uint32_t r = 0; r < 16; ++r) {
    const IdMapper mapper(4, Pid{r});
    EXPECT_EQ(mapper.vid_of(Pid{r}), Vid{0b1111});
    EXPECT_EQ(mapper.pid_of(Vid{0b1111}), Pid{r});
  }
}

TEST(IdMapper, ConversionIsInvolution) {
  const IdMapper mapper(5, Pid{19});
  for (std::uint32_t p = 0; p < 32; ++p) {
    EXPECT_EQ(mapper.pid_of(mapper.vid_of(Pid{p})), Pid{p});
    EXPECT_EQ(mapper.vid_of(mapper.pid_of(Vid{p})), Vid{p});
  }
}

TEST(IdMapper, PaperFigure2Mapping) {
  // Figure 2 of the paper: in the tree of P(4), P(8) has VID 0011 and P(0)
  // has VID 1011.
  const IdMapper mapper(4, Pid{4});
  EXPECT_EQ(mapper.vid_of(Pid{8}), Vid{0b0011});
  EXPECT_EQ(mapper.vid_of(Pid{0}), Vid{0b1011});
}

class MapperBijectionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MapperBijectionSweep, EveryRootYieldsAPermutation) {
  // "Because of the 1-to-1 and onto characteristics of the XOR operation,
  // we map one virtual lookup tree to N different physical lookup trees."
  const IdMapper mapper(4, Pid{GetParam()});
  std::unordered_set<std::uint32_t> image;
  for (std::uint32_t v = 0; v < 16; ++v) {
    image.insert(mapper.pid_of(Vid{v}).value());
  }
  EXPECT_EQ(image.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(AllRoots16, MapperBijectionSweep,
                         ::testing::Range(0u, 16u));

}  // namespace
}  // namespace lesslog::core
