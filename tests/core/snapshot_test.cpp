#include "lesslog/core/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lesslog::core {
namespace {

System make_busy_system() {
  System sys({.m = 5, .b = 1, .seed = 9, .payload_size = 64});
  sys.bootstrap(28);
  for (std::uint64_t k = 0; k < 6; ++k) {
    const FileId f = sys.insert_key(0x5A00 + k);
    sys.replicate(f, sys.holders(f).front());
    if (k % 2 == 0) sys.update(f);
    sys.get(f, Pid{3});
  }
  sys.leave(Pid{7});
  sys.fail(Pid{19});
  sys.join();
  return sys;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  System original = make_busy_system();
  std::stringstream buffer;
  save_snapshot(original, buffer);
  System restored = load_snapshot(buffer);

  EXPECT_EQ(restored.width(), original.width());
  EXPECT_EQ(restored.fault_bits(), original.fault_bits());
  EXPECT_EQ(restored.status(), original.status());
  EXPECT_EQ(restored.files(), original.files());
  EXPECT_EQ(restored.lookup_messages(), original.lookup_messages());
  EXPECT_EQ(restored.maintenance_messages(),
            original.maintenance_messages());
  EXPECT_EQ(restored.faults(), original.faults());

  for (const FileId f : original.files()) {
    EXPECT_EQ(restored.target_of(f), original.target_of(f));
    EXPECT_EQ(restored.version_of(f), original.version_of(f));
    EXPECT_EQ(restored.holders(f), original.holders(f));
    for (const Pid h : original.holders(f)) {
      const auto a = original.node(h).store().info(f);
      const auto b = restored.node(h).store().info(f);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(a->kind, b->kind);
      EXPECT_EQ(a->version, b->version);
      EXPECT_EQ(a->access_count, b->access_count);
      EXPECT_EQ(a->data, b->data);
    }
  }
  EXPECT_TRUE(restored.verify_integrity().clean());
}

TEST(Snapshot, RestoredSystemKeepsOperating) {
  System original = make_busy_system();
  std::stringstream buffer;
  save_snapshot(original, buffer);
  System restored = load_snapshot(buffer);

  // Same requests route identically in both systems.
  for (const FileId f : original.files()) {
    for (std::uint32_t k = 0; k < 28; ++k) {
      if (!original.is_live(Pid{k})) continue;
      const auto a = original.get(f, Pid{k});
      const auto b = restored.get(f, Pid{k});
      EXPECT_EQ(a.route.path, b.route.path);
      EXPECT_EQ(a.route.served_by, b.route.served_by);
    }
  }
  // And mutations keep working on the restored instance.
  const FileId fresh = restored.insert_key(0xFFFF);
  EXPECT_TRUE(restored.get(fresh, Pid{1}).ok());
  restored.fail(restored.holders(fresh).front());
  restored.join();
}

TEST(Snapshot, EmptySystemRoundTrips) {
  System sys({.m = 4, .b = 0, .seed = 1});
  std::stringstream buffer;
  save_snapshot(sys, buffer);
  const System restored = load_snapshot(buffer);
  EXPECT_EQ(restored.live_count(), 0u);
  EXPECT_TRUE(restored.files().empty());
}

TEST(Snapshot, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a snapshot at all";
  EXPECT_THROW(load_snapshot(buffer), std::runtime_error);
}

TEST(Snapshot, RejectsTruncation) {
  System sys = make_busy_system();
  std::stringstream buffer;
  save_snapshot(sys, buffer);
  const std::string whole = buffer.str();
  // Chop at several depths; every prefix must throw, never crash.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{12}, whole.size() / 2,
        whole.size() - 3}) {
    std::stringstream cut(whole.substr(0, keep));
    EXPECT_THROW(load_snapshot(cut), std::runtime_error) << keep;
  }
}

TEST(Snapshot, RejectsCorruptConfiguration) {
  System sys({.m = 4, .b = 0, .seed = 1});
  std::stringstream buffer;
  save_snapshot(sys, buffer);
  std::string bytes = buffer.str();
  bytes[8] = 99;  // m field
  std::stringstream corrupt(bytes);
  EXPECT_THROW(load_snapshot(corrupt), std::runtime_error);
}

class SnapshotFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotFuzz, RandomizedSystemsRoundTrip) {
  util::Rng rng(GetParam());
  System::Config cfg;
  cfg.m = 4 + static_cast<int>(rng.bounded(4));
  cfg.b = static_cast<int>(rng.bounded(3));
  if (cfg.b >= cfg.m) cfg.b = 0;
  cfg.seed = rng();
  cfg.payload_size = rng.bernoulli(0.5) ? 32 : 0;
  System sys(cfg);
  sys.bootstrap(static_cast<std::uint32_t>(
      2 + rng.bounded(util::space_size(cfg.m) - 2)));

  std::vector<FileId> files;
  const std::uint64_t n_files = 1 + rng.bounded(10);
  for (std::uint64_t i = 0; i < n_files; ++i) {
    files.push_back(sys.insert_key(rng()));
  }
  const std::uint64_t ops = rng.bounded(30);
  for (std::uint64_t op = 0; op < ops; ++op) {
    const FileId f = files[rng.bounded(files.size())];
    switch (rng.bounded(4)) {
      case 0:
        if (!sys.holders(f).empty()) sys.replicate(f, sys.holders(f).front());
        break;
      case 1:
        sys.update(f);
        break;
      case 2: {
        const auto live = sys.status().live_pids();
        if (live.size() > 2) sys.leave(Pid{live[rng.bounded(live.size())]});
        break;
      }
      case 3:
        if (sys.live_count() < sys.status().capacity()) sys.join();
        break;
    }
  }

  std::stringstream buffer;
  save_snapshot(sys, buffer);
  System restored = load_snapshot(buffer);
  EXPECT_EQ(restored.status(), sys.status());
  EXPECT_EQ(restored.files(), sys.files());
  for (const FileId f : sys.files()) {
    EXPECT_EQ(restored.holders(f), sys.holders(f));
    EXPECT_EQ(restored.version_of(f), sys.version_of(f));
  }
  EXPECT_TRUE(restored.verify_integrity().clean());
  // And a second save of the restored system is byte-identical.
  std::stringstream again;
  save_snapshot(restored, again);
  // (Holder iteration order lives in unordered containers, so compare via
  // a third load instead of bytes.)
  System thrice = load_snapshot(again);
  EXPECT_EQ(thrice.status(), sys.status());
  for (const FileId f : sys.files()) {
    EXPECT_EQ(thrice.holders(f), sys.holders(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace lesslog::core
