#include "lesslog/core/lookup_tree.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lesslog::core {
namespace {

TEST(LookupTree, PaperFigure2Children) {
  // Figure 2: the children list of P(4) in its own 16-node lookup tree is
  // (P(5), P(6), P(0), P(12)), most offspring first.
  const LookupTree tree(4, Pid{4});
  EXPECT_EQ(tree.children(Pid{4}),
            (std::vector<Pid>{Pid{5}, Pid{6}, Pid{0}, Pid{12}}));
}

TEST(LookupTree, PaperFigure2RoutingHops) {
  // "When P(8) receives a request whose target node is P(4), it routes the
  // request to P(0), which in turn routes the request to P(4)."
  const LookupTree tree(4, Pid{4});
  EXPECT_EQ(tree.parent(Pid{8}), Pid{0});
  EXPECT_EQ(tree.parent(Pid{0}), Pid{4});
  EXPECT_EQ(tree.path_to_root(Pid{8}),
            (std::vector<Pid>{Pid{8}, Pid{0}, Pid{4}}));
}

TEST(LookupTree, RootProperties) {
  const LookupTree tree(4, Pid{9});
  EXPECT_EQ(tree.root(), Pid{9});
  EXPECT_TRUE(tree.is_root(Pid{9}));
  EXPECT_FALSE(tree.is_root(Pid{0}));
  EXPECT_EQ(tree.depth(Pid{9}), 0);
  EXPECT_EQ(tree.offspring_count(Pid{9}), 15u);
}

TEST(LookupTree, VidPidRoundTrip) {
  const LookupTree tree(4, Pid{6});
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(tree.pid_of(tree.vid_of(Pid{p})), Pid{p});
  }
}

TEST(LookupTree, SubtreeRelationRespectsPaths) {
  const LookupTree tree(4, Pid{11});
  for (std::uint32_t p = 0; p < 16; ++p) {
    for (const Pid anc : tree.path_to_root(Pid{p})) {
      EXPECT_TRUE(tree.in_subtree(Pid{p}, anc));
    }
  }
}

TEST(LookupTree, ChildCountAndSubtreeSizeConsistent) {
  const LookupTree tree(5, Pid{21});
  for (std::uint32_t p = 0; p < 32; ++p) {
    EXPECT_EQ(tree.children(Pid{p}).size(),
              static_cast<std::size_t>(tree.child_count(Pid{p})));
    EXPECT_EQ(tree.subtree_size(Pid{p}), tree.offspring_count(Pid{p}) + 1u);
  }
}

struct TreeCase {
  int m;
  std::uint32_t root;
};

class LookupTreeSweep : public ::testing::TestWithParam<TreeCase> {};

TEST_P(LookupTreeSweep, ContainsEveryNodeExactlyOnce) {
  const auto [m, root] = GetParam();
  const LookupTree tree(m, Pid{root});
  std::set<std::uint32_t> reached;
  for (std::uint32_t p = 0; p < util::space_size(m); ++p) {
    reached.insert(p);
    if (!tree.is_root(Pid{p})) {
      // Parent chain must strictly ascend in VID and end at the root.
      const std::vector<Pid> path = tree.path_to_root(Pid{p});
      EXPECT_EQ(path.back(), Pid{root});
      EXPECT_LE(path.size(), static_cast<std::size_t>(m) + 1u);
    }
  }
  EXPECT_EQ(reached.size(), util::space_size(m));
}

TEST_P(LookupTreeSweep, ChildrenSortedByOffspringDescending) {
  const auto [m, root] = GetParam();
  const LookupTree tree(m, Pid{root});
  for (std::uint32_t p = 0; p < util::space_size(m); ++p) {
    const std::vector<Pid> kids = tree.children(Pid{p});
    for (std::size_t i = 1; i < kids.size(); ++i) {
      EXPECT_GE(tree.offspring_count(kids[i - 1]),
                tree.offspring_count(kids[i]));
    }
  }
}

TEST_P(LookupTreeSweep, EachNonRootNodeIsSomeChild) {
  const auto [m, root] = GetParam();
  const LookupTree tree(m, Pid{root});
  for (std::uint32_t p = 0; p < util::space_size(m); ++p) {
    if (tree.is_root(Pid{p})) continue;
    const Pid parent = tree.parent(Pid{p});
    const std::vector<Pid> kids = tree.children(parent);
    EXPECT_NE(std::find(kids.begin(), kids.end(), Pid{p}), kids.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LookupTreeSweep,
    ::testing::Values(TreeCase{3, 0}, TreeCase{3, 7}, TreeCase{4, 4},
                      TreeCase{4, 15}, TreeCase{5, 17}, TreeCase{6, 42},
                      TreeCase{8, 200}));

}  // namespace
}  // namespace lesslog::core
