#include "lesslog/core/update.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

std::function<bool(Pid)> copy_at(const std::set<std::uint32_t>& pids) {
  return [&pids](Pid p) { return pids.contains(p.value()); };
}

TEST(PropagateUpdate, OnlyRootHoldsCopy) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const std::set<std::uint32_t> copies{4};
  const UpdateResult r = propagate_update(tree, live, copy_at(copies));
  EXPECT_EQ(r.origin, Pid{4});
  EXPECT_EQ(r.updated, std::vector<Pid>{Pid{4}});
  // Root broadcasts to its whole children list even when no child holds a
  // replica: 4 messages.
  EXPECT_EQ(r.messages, 4);
}

TEST(PropagateUpdate, ReachesChainOfReplicas) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  // Replicas at P(5) (child of root) and P(7) (child of P(5)).
  const std::set<std::uint32_t> copies{4, 5, 7};
  const UpdateResult r = propagate_update(tree, live, copy_at(copies));
  EXPECT_EQ(std::set<Pid>(r.updated.begin(), r.updated.end()),
            (std::set<Pid>{Pid{4}, Pid{5}, Pid{7}}));
}

TEST(PropagateUpdate, NonHolderPrunesBroadcast) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  // P(7) holds a copy but its parent P(5) does not: the broadcast stops at
  // P(5), so P(7) goes stale. (LessLog placements never create this state;
  // the test pins the paper's pruning semantics.)
  const std::set<std::uint32_t> copies{4, 7};
  const UpdateResult r = propagate_update(tree, live, copy_at(copies));
  EXPECT_EQ(std::set<Pid>(r.updated.begin(), r.updated.end()),
            (std::set<Pid>{Pid{4}}));
}

TEST(PropagateUpdate, DeadRootStartsAtStandIn) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  const std::set<std::uint32_t> copies{6};
  const UpdateResult r = propagate_update(tree, live, copy_at(copies));
  EXPECT_EQ(r.origin, Pid{6});
  EXPECT_EQ(std::set<Pid>(r.updated.begin(), r.updated.end()),
            (std::set<Pid>{Pid{6}}));
}

TEST(PropagateUpdate, DeadRootAlsoCoversRootChildrenListReplicas) {
  // With a dead root, the proportional rule may have placed replicas in
  // the *root's* children list; the broadcast must reach them too.
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  // Stand-in P(6) plus a replica at P(12) (vid 0111, in the dead root's
  // children list, not under P(6)).
  const std::set<std::uint32_t> copies{6, 12};
  const UpdateResult r = propagate_update(tree, live, copy_at(copies));
  EXPECT_EQ(std::set<Pid>(r.updated.begin(), r.updated.end()),
            (std::set<Pid>{Pid{6}, Pid{12}}));
}

TEST(PropagateUpdate, EmptySystem) {
  const LookupTree tree(3, Pid{0});
  const util::StatusWord live(3);
  const UpdateResult r = propagate_update(tree, live, copy_at({}));
  EXPECT_TRUE(r.updated.empty());
  EXPECT_EQ(r.messages, 0);
}

TEST(PropagateUpdate, EveryLessLogPlacementStaysReachable) {
  // Invariant: replicas created by the LessLog placement rule always form a
  // holder-connected broadcast tree, so every copy receives every update.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    util::Rng rng(seed);
    const int m = 6;
    const LookupTree tree(m, Pid{static_cast<std::uint32_t>(
                                 rng.bounded(util::space_size(m)))});
    util::StatusWord live = all_live(m);
    for (std::uint32_t dead :
         rng.sample_indices(util::space_size(m), 16)) {
      live.set_dead(dead);
    }
    const std::optional<Pid> holder = insertion_target(tree, live);
    if (!holder.has_value()) continue;

    std::set<std::uint32_t> copies{holder->value()};
    // Grow the placement: repeatedly replicate from a random current
    // holder, exactly as overload-shedding would.
    for (int step = 0; step < 20; ++step) {
      std::vector<std::uint32_t> holder_list(copies.begin(), copies.end());
      const std::uint32_t from = holder_list[rng.bounded(holder_list.size())];
      const std::optional<Placement> p = replicate_target(
          tree, Pid{from}, live, copy_at(copies), rng);
      if (!p.has_value()) break;
      copies.insert(p->target.value());
    }

    const UpdateResult r = propagate_update(tree, live, copy_at(copies));
    std::set<std::uint32_t> updated;
    for (const Pid p : r.updated) updated.insert(p.value());
    EXPECT_EQ(updated, copies) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace lesslog::core
