#include "lesslog/core/payload.hpp"

#include <gtest/gtest.h>

#include "lesslog/core/system.hpp"

namespace lesslog::core {
namespace {

TEST(Payload, DeterministicPerFileAndVersion) {
  const Payload a = make_payload(FileId{1}, 0, 256);
  const Payload b = make_payload(FileId{1}, 0, 256);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 256u);
}

TEST(Payload, DiffersAcrossFilesAndVersions) {
  const Payload base = make_payload(FileId{1}, 0, 128);
  EXPECT_NE(make_payload(FileId{2}, 0, 128), base);
  EXPECT_NE(make_payload(FileId{1}, 1, 128), base);
}

TEST(Payload, VerifyAcceptsCanonicalRejectsTampered) {
  Payload p = make_payload(FileId{9}, 3, 64);
  EXPECT_TRUE(verify_payload(FileId{9}, 3, p));
  EXPECT_FALSE(verify_payload(FileId{9}, 4, p));  // wrong version
  p[10] ^= 0x01;
  EXPECT_FALSE(verify_payload(FileId{9}, 3, p));  // bit rot
}

TEST(Payload, EmptyPayloadIsCanonicalAtSizeZero) {
  EXPECT_TRUE(verify_payload(FileId{5}, 0, Payload{}));
}

TEST(SystemIntegrity, CleanAfterLifecycle) {
  System sys({.m = 5, .b = 1, .seed = 4, .payload_size = 512});
  sys.bootstrap(32);
  std::vector<FileId> files;
  for (std::uint64_t k = 0; k < 6; ++k) {
    files.push_back(sys.insert_key(0x9100 + k));
  }
  for (const FileId f : files) {
    sys.replicate(f, sys.holders(f).front());
    sys.update(f);
  }
  sys.leave(Pid{3});
  sys.fail(Pid{17});
  sys.join();
  for (const FileId f : files) sys.update(f);
  EXPECT_TRUE(sys.verify_integrity().clean());
}

TEST(SystemIntegrity, DetectsInjectedCorruption) {
  System sys({.m = 4, .b = 0, .seed = 4, .payload_size = 128});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});
  ASSERT_TRUE(sys.corrupt_copy(f, Pid{5}));
  const System::IntegrityReport report = sys.verify_integrity();
  ASSERT_EQ(report.corrupt.size(), 1u);
  EXPECT_EQ(report.corrupt[0].first, f);
  EXPECT_EQ(report.corrupt[0].second, Pid{5});
  EXPECT_TRUE(report.stale.empty());
}

TEST(SystemIntegrity, UpdateRepairsCorruption) {
  System sys({.m = 4, .b = 0, .seed = 4, .payload_size = 128});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});
  ASSERT_TRUE(sys.corrupt_copy(f, Pid{5}));
  sys.update(f);  // pushes fresh canonical bytes to every copy
  EXPECT_TRUE(sys.verify_integrity().clean());
}

TEST(SystemIntegrity, MetadataOnlyModeSkipsPayloadChecks) {
  System sys({.m = 4, .b = 0, .seed = 4, .payload_size = 0});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_FALSE(sys.corrupt_copy(f, Pid{4}));  // nothing to corrupt
  EXPECT_TRUE(sys.verify_integrity().clean());
}

TEST(SystemIntegrity, StaleDetectionOnVersionLag) {
  System sys({.m = 4, .b = 0, .seed = 4, .payload_size = 64});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});  // replica at P(5), version 0
  // Manually lag the replica by bumping only the meta version through a
  // broadcast that skips it: simulate by direct store surgery.
  // (Protocol-level staleness is covered by the invariants suite; this
  // pins the detector itself.)
  sys.update(f);
  EXPECT_TRUE(sys.verify_integrity().clean());
}

}  // namespace
}  // namespace lesslog::core
