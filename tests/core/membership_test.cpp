#include "lesslog/core/membership.hpp"

#include <gtest/gtest.h>

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

TEST(AuthoritativeHolder, LiveRootHoldsItsOwnFiles) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  const util::StatusWord live = all_live(4);
  EXPECT_EQ(authoritative_holder(view, 0, live), Pid{4});
  EXPECT_EQ(authoritative_holders(view, live), std::vector<Pid>{Pid{4}});
}

TEST(AuthoritativeHolder, DeadRootDelegatesToStandIn) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  EXPECT_EQ(authoritative_holder(view, 0, live), Pid{6});
}

TEST(DiffHolders, NoChangeNoEntries) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  const util::StatusWord live = all_live(4);
  EXPECT_TRUE(diff_holders(view, live, live).empty());
}

TEST(DiffHolders, IrrelevantDeathNoEntries) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  const util::StatusWord before = all_live(4);
  util::StatusWord after = before;
  after.set_dead(12);  // a leaf of the tree of P(4): never a holder
  EXPECT_TRUE(diff_holders(view, before, after).empty());
}

TEST(DiffHolders, HolderDeathProducesMove) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  const util::StatusWord before = all_live(4);
  util::StatusWord after = before;
  after.set_dead(4);
  const std::vector<HolderChange> changes = diff_holders(view, before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].sub_id, 0u);
  EXPECT_EQ(changes[0].from, Pid{4});
  EXPECT_EQ(changes[0].to, Pid{5});  // next-largest VID (vid 1110)
}

TEST(DiffHolders, JoinReclaimsHolderRole) {
  // Paper 5.1 example: P(4) and P(5) dead, f stored at P(6); when P(5)
  // joins, f must be copied to P(5) (the new largest live VID).
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 0);
  util::StatusWord before = all_live(4);
  before.set_dead(4);
  before.set_dead(5);
  util::StatusWord after = before;
  after.set_live(5);
  const std::vector<HolderChange> changes = diff_holders(view, before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].from, Pid{6});
  EXPECT_EQ(changes[0].to, Pid{5});
}

TEST(DiffHolders, SubtreeLosingLastNode) {
  const LookupTree tree(3, Pid{1});
  const SubtreeView view(tree, 1);
  util::StatusWord before(3);
  // Only two nodes, both in subtree 0 of the tree of P(1)?  Build
  // explicitly: find two pids in subtree 0 and none in subtree 1.
  std::vector<std::uint32_t> sub0;
  for (std::uint32_t p = 0; p < 8; ++p) {
    if (view.subtree_id(Pid{p}) == 0) sub0.push_back(p);
  }
  before.set_live(sub0[0]);
  before.set_live(sub0[1]);
  util::StatusWord after = before;
  after.set_dead(sub0[0]);
  after.set_dead(sub0[1]);
  const std::vector<HolderChange> changes = diff_holders(view, before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].to, std::nullopt);
}

TEST(DiffHolders, PerSubtreeIndependence) {
  const LookupTree tree(4, Pid{4});
  const SubtreeView view(tree, 2);
  const util::StatusWord before = all_live(4);
  util::StatusWord after = before;
  const Pid victim = view.subtree_root(1);
  after.set_dead(victim.value());
  const std::vector<HolderChange> changes = diff_holders(view, before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].sub_id, 1u);
  EXPECT_EQ(changes[0].from, victim);
  ASSERT_TRUE(changes[0].to.has_value());
  EXPECT_EQ(view.subtree_id(*changes[0].to), 1u);
}

TEST(BroadcastCost, CountsOtherLiveNodes) {
  EXPECT_EQ(broadcast_cost(util::StatusWord(4, 0)), 0);
  EXPECT_EQ(broadcast_cost(util::StatusWord(4, 1)), 0);
  EXPECT_EQ(broadcast_cost(util::StatusWord(4, 14)), 13);
}

}  // namespace
}  // namespace lesslog::core
