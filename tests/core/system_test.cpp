#include "lesslog/core/system.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lesslog::core {
namespace {

TEST(System, BootstrapSetsLiveness) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(14);
  EXPECT_EQ(sys.live_count(), 14u);
  EXPECT_TRUE(sys.is_live(Pid{0}));
  EXPECT_FALSE(sys.is_live(Pid{14}));
}

TEST(System, InsertPlacesSingleCopyAtTarget) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_EQ(sys.target_of(f), Pid{4});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{4}});
  EXPECT_EQ(sys.replica_count(f), 0u);
  EXPECT_TRUE(sys.node(Pid{4}).store().has(f));
}

TEST(System, InsertOnDeadTargetUsesStandIn) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  sys.fail(Pid{4});
  sys.fail(Pid{5});
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{6}});
}

TEST(System, InsertByNameHashesTarget) {
  System sys({.m = 10, .b = 0, .seed = 1});
  sys.bootstrap(1024);
  const FileId f = sys.insert("movies/clip.mpg");
  EXPECT_EQ(sys.holders(f).size(), 1u);
  EXPECT_EQ(sys.holders(f).front(), sys.target_of(f));
}

TEST(System, GetRoutesPaperExample) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  const System::GetOutcome got = sys.get(f, Pid{8});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.route.path, (std::vector<Pid>{Pid{8}, Pid{0}, Pid{4}}));
  EXPECT_EQ(sys.node(Pid{4}).served(), 1u);
  EXPECT_EQ(sys.node(Pid{8}).forwarded(), 1u);
  EXPECT_EQ(sys.node(Pid{0}).forwarded(), 1u);
  EXPECT_EQ(sys.lookup_messages(), 2);
}

TEST(System, ReplicateShedsToLargestChild) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  const std::optional<Pid> replica = sys.replicate(f, Pid{4});
  EXPECT_EQ(replica, Pid{5});
  EXPECT_EQ(sys.replica_count(f), 1u);
  EXPECT_EQ(sys.holders(f), (std::vector<Pid>{Pid{4}, Pid{5}}));
  // Requests from P(5)'s subtree are now served by the replica.
  const System::GetOutcome got = sys.get(f, Pid{13});
  EXPECT_EQ(got.route.served_by, Pid{5});
}

TEST(System, UpdatePropagatesVersionToAllCopies) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});
  sys.replicate(f, Pid{4});
  const System::UpdateOutcome out = sys.update(f);
  EXPECT_EQ(out.new_version, 1u);
  EXPECT_EQ(out.copies_updated, 3);
  for (const Pid h : sys.holders(f)) {
    EXPECT_EQ(sys.node(h).store().info(f)->version, 1u);
  }
  EXPECT_EQ(sys.version_of(f), 1u);
}

TEST(System, PruneColdReplicas) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});  // P(5)
  sys.replicate(f, Pid{4});  // P(6)
  // Warm only P(5): a request from its subtree.
  sys.get(f, Pid{13});
  EXPECT_EQ(sys.prune_cold_replicas(f, 1), 1u);  // P(6) dropped
  EXPECT_EQ(sys.holders(f), (std::vector<Pid>{Pid{4}, Pid{5}}));
}

TEST(System, JoinTakesBackTargetRole) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  sys.leave(Pid{4});
  sys.leave(Pid{5});
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{6}});
  sys.join(Pid{5});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{5}});
  EXPECT_EQ(sys.node(Pid{5}).store().info(f)->kind, CopyKind::kInserted);
  EXPECT_FALSE(sys.node(Pid{6}).store().has(f));
  sys.join(Pid{4});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{4}});
}

TEST(System, LeaveRehomesInsertedAndDropsReplicas) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});  // replica at P(5)
  sys.leave(Pid{5});         // replica discarded
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{4}});
  sys.leave(Pid{4});         // inserted copy must move
  ASSERT_EQ(sys.holders(f).size(), 1u);
  const Pid new_holder = sys.holders(f).front();
  EXPECT_NE(new_holder, Pid{4});
  EXPECT_TRUE(sys.is_live(new_holder));
  EXPECT_EQ(sys.node(new_holder).store().info(f)->kind, CopyKind::kInserted);
  EXPECT_TRUE(sys.lost_files().empty());
}

TEST(System, FailWithoutReplicasLosesFile) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.fail(Pid{4});
  EXPECT_EQ(sys.lost_files(), std::vector<FileId>{f});
  EXPECT_TRUE(sys.holders(f).empty());
  const System::GetOutcome got = sys.get(f, Pid{8});
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(sys.faults(), 1);
}

TEST(System, FailWithReplicaPromotesSurvivor) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.replicate(f, Pid{4});  // replica at P(5)
  sys.fail(Pid{4});
  EXPECT_TRUE(sys.lost_files().empty());
  // P(5) is the new largest live VID; it must now hold an inserted copy.
  const std::vector<Pid> holders = sys.holders(f);
  ASSERT_FALSE(holders.empty());
  EXPECT_EQ(sys.node(Pid{5}).store().info(f)->kind, CopyKind::kInserted);
  EXPECT_TRUE(sys.get(f, Pid{8}).ok());
}

TEST(System, FaultTolerantInsertStores2PowBCopies) {
  System sys({.m = 4, .b = 2, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_EQ(sys.holders(f).size(), 4u);
  for (const Pid h : sys.holders(f)) {
    EXPECT_EQ(sys.node(h).store().info(f)->kind, CopyKind::kInserted);
  }
}

TEST(System, FaultTolerantSurvivesHolderCrashes) {
  System sys({.m = 5, .b = 2, .seed = 1});
  sys.bootstrap(32);
  const FileId f = sys.insert_at(Pid{9});
  std::vector<Pid> holders = sys.holders(f);
  ASSERT_EQ(holders.size(), 4u);
  // Crash three of the four holders; recovery must restore 4 copies and
  // requests must keep succeeding throughout.
  for (int i = 0; i < 3; ++i) {
    sys.fail(holders[static_cast<std::size_t>(i)]);
    for (std::uint32_t k = 0; k < 32; ++k) {
      if (!sys.is_live(Pid{k})) continue;
      EXPECT_TRUE(sys.get(f, Pid{k}).ok()) << "after crash " << i;
    }
  }
  EXPECT_TRUE(sys.lost_files().empty());
  EXPECT_EQ(sys.holders(f).size(), 4u);  // recovered per subtree
}

TEST(System, FaultTolerantUpdateReachesEverySubtree) {
  System sys({.m = 5, .b = 2, .seed = 1});
  sys.bootstrap(32);
  const FileId f = sys.insert_at(Pid{9});
  sys.replicate(f, sys.holders(f).front());
  const System::UpdateOutcome out = sys.update(f);
  EXPECT_EQ(out.copies_updated, 5);
  for (const Pid h : sys.holders(f)) {
    EXPECT_EQ(sys.node(h).store().info(f)->version, 1u);
  }
}

TEST(System, MaintenanceMessagesAccumulate) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(8);
  const std::int64_t before = sys.maintenance_messages();
  sys.join();
  EXPECT_GT(sys.maintenance_messages(), before);
}

TEST(System, JoinPicksLowestDeadPidByDefault) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(6);
  EXPECT_EQ(sys.join(), Pid{6});
  EXPECT_TRUE(sys.is_live(Pid{6}));
}

TEST(System, ResetCountersClearsServiceStats) {
  System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  sys.get(f, Pid{8});
  sys.reset_counters();
  EXPECT_EQ(sys.node(Pid{4}).served(), 0u);
  EXPECT_EQ(sys.node(Pid{8}).forwarded(), 0u);
}

TEST(System, ManyFilesSpreadAcrossTargets) {
  System sys({.m = 6, .b = 0, .seed = 1});
  sys.bootstrap(64);
  std::set<std::uint32_t> targets;
  for (std::uint64_t k = 0; k < 64; ++k) {
    const FileId f = sys.insert_key(k);
    targets.insert(sys.target_of(f).value());
    EXPECT_TRUE(sys.get(f, Pid{static_cast<std::uint32_t>(k)}).ok());
  }
  // ψ should spread 64 files over clearly more than a handful of targets.
  EXPECT_GT(targets.size(), 30u);
}

}  // namespace
}  // namespace lesslog::core
