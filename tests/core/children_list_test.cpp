#include "lesslog/core/children_list.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

TEST(ChildrenList, BasicModelMatchesTreeChildren) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  EXPECT_EQ(children_list(tree, Pid{4}, live), tree.children(Pid{4}));
  EXPECT_EQ(children_list(tree, Pid{4}, live),
            (std::vector<Pid>{Pid{5}, Pid{6}, Pid{0}, Pid{12}}));
}

TEST(ChildrenList, PaperAdvancedModelExample) {
  // Figure 3: a 14-node system with P(0) and P(5) dead. The children list
  // of P(4) is (P(6), P(7), P(1), P(12), P(13), P(8)), sorted by VID.
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(0);
  live.set_dead(5);
  EXPECT_EQ(children_list(tree, Pid{4}, live),
            (std::vector<Pid>{Pid{6}, Pid{7}, Pid{1}, Pid{12}, Pid{13},
                              Pid{8}}));
}

TEST(ChildrenList, DeadLeafContributesNothing) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(12);  // P(12) is the leaf child (VID 0111) of P(4)
  EXPECT_EQ(children_list(tree, Pid{4}, live),
            (std::vector<Pid>{Pid{5}, Pid{6}, Pid{0}}));
}

TEST(ChildrenList, LeafHasEmptyList) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  EXPECT_TRUE(children_list(tree, Pid{12}, live).empty());
}

TEST(ChildrenList, EntriesAreAlwaysLive) {
  const LookupTree tree(5, Pid{13});
  util::StatusWord live = all_live(5);
  util::Rng rng(5);
  for (std::uint32_t dead : rng.sample_indices(32, 12)) live.set_dead(dead);
  for (std::uint32_t p = 0; p < 32; ++p) {
    for (const Pid c : children_list(tree, Pid{p}, live)) {
      EXPECT_TRUE(live.is_live(c.value()));
    }
  }
}

TEST(ChildrenList, SortedByDescendingVid) {
  const LookupTree tree(6, Pid{40});
  util::StatusWord live = all_live(6);
  util::Rng rng(9);
  for (std::uint32_t dead : rng.sample_indices(64, 20)) live.set_dead(dead);
  for (std::uint32_t p = 0; p < 64; ++p) {
    const std::vector<Pid> list = children_list(tree, Pid{p}, live);
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GT(tree.vid_of(list[i - 1]).value(),
                tree.vid_of(list[i]).value());
    }
  }
}

TEST(ChildrenList, CoversLiveFrontierOfSubtree) {
  // The advanced children list of k contains exactly the live descendants
  // of k whose strict ancestors below k are all dead.
  const LookupTree tree(5, Pid{7});
  util::StatusWord live = all_live(5);
  for (std::uint32_t dead : {3u, 12u, 19u, 30u, 8u}) live.set_dead(dead);
  const VirtualTree& vt = tree.virtual_tree();

  for (std::uint32_t k = 0; k < 32; ++k) {
    const Vid kv = tree.vid_of(Pid{k});
    std::set<Pid> expected;
    for (const Vid sv : vt.subtree_vids(kv)) {
      if (sv == kv) continue;
      const Pid p = tree.pid_of(sv);
      if (!live.is_live(p.value())) continue;
      // Walk ancestors strictly between sv and kv.
      bool frontier = true;
      Vid cur = sv;
      while (true) {
        cur = vt.parent(cur);
        if (cur == kv) break;
        if (!vt.in_subtree(cur, kv)) break;
        if (live.is_live(tree.pid_of(cur).value())) {
          frontier = false;
          break;
        }
      }
      if (frontier && vt.in_subtree(sv, kv)) expected.insert(p);
    }
    const std::vector<Pid> list = children_list(tree, Pid{k}, live);
    EXPECT_EQ(std::set<Pid>(list.begin(), list.end()), expected)
        << "k=" << k;
  }
}

TEST(WeightedChildrenList, WeightsAreSubtreeSizes) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const std::vector<WeightedChild> wc =
      weighted_children_list(tree, Pid{4}, live);
  ASSERT_EQ(wc.size(), 4u);
  EXPECT_EQ(wc[0].pid, Pid{5});
  EXPECT_EQ(wc[0].subtree_size, 8u);
  EXPECT_EQ(wc[1].subtree_size, 4u);
  EXPECT_EQ(wc[2].subtree_size, 2u);
  EXPECT_EQ(wc[3].subtree_size, 1u);
}

TEST(ExpandChildrenList, GenericFormAgreesWithTreeForm) {
  const LookupTree tree(5, Pid{11});
  util::StatusWord live = all_live(5);
  live.set_dead(4);
  live.set_dead(27);
  const auto pid_of = [&tree](Vid v) { return tree.pid_of(v); };
  for (std::uint32_t k = 0; k < 32; ++k) {
    const std::vector<Vid> vids = expand_children_list(
        tree.virtual_tree(), tree.vid_of(Pid{k}), pid_of, live);
    std::vector<Pid> pids;
    pids.reserve(vids.size());
    for (const Vid v : vids) pids.push_back(tree.pid_of(v));
    EXPECT_EQ(pids, children_list(tree, Pid{k}, live));
  }
}

}  // namespace
}  // namespace lesslog::core
