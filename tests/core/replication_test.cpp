#include "lesslog/core/replication.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/find_live_node.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

HoldsCopyFn copy_at(std::set<std::uint32_t> pids) {
  return [pids = std::move(pids)](Pid p) { return pids.contains(p.value()); };
}

TEST(FirstChildWithoutCopy, WalksChildrenListInOrder) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  // Children list of P(4): (5, 6, 0, 12).
  EXPECT_EQ(first_child_without_copy(tree, Pid{4}, live, copy_at({})),
            Pid{5});
  EXPECT_EQ(first_child_without_copy(tree, Pid{4}, live, copy_at({5})),
            Pid{6});
  EXPECT_EQ(first_child_without_copy(tree, Pid{4}, live, copy_at({5, 6, 0})),
            Pid{12});
  EXPECT_EQ(
      first_child_without_copy(tree, Pid{4}, live, copy_at({5, 6, 0, 12})),
      std::nullopt);
}

TEST(LiveOffspringCount, MatchesSubtreeMinusSelf) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  EXPECT_EQ(live_offspring_count(tree, Pid{4}, live), 15u);
  EXPECT_EQ(live_offspring_count(tree, Pid{5}, live), 7u);  // vid 1110
  EXPECT_EQ(live_offspring_count(tree, Pid{12}, live), 0u);  // vid 0111
}

TEST(LiveOffspringCount, ExcludesDeadOffspring) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(7);  // vid 1100, in P(5)'s subtree
  live.set_dead(13);
  EXPECT_EQ(live_offspring_count(tree, Pid{5}, live), 5u);
}

TEST(ReplicateTarget, RootShedsToLargestChild) {
  util::Rng rng(1);
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  const std::optional<Placement> p =
      replicate_target(tree, Pid{4}, live, copy_at({4}), rng);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->target, Pid{5});
  EXPECT_EQ(p->source, PlacementSource::kOwnChildren);
}

TEST(ReplicateTarget, SuccessiveReplicationsWalkChildrenList) {
  util::Rng rng(1);
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  std::set<std::uint32_t> copies{4};
  const std::vector<Pid> expected{Pid{5}, Pid{6}, Pid{0}, Pid{12}};
  for (const Pid want : expected) {
    const std::optional<Placement> p =
        replicate_target(tree, Pid{4}, live, copy_at(copies), rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->target, want);
    copies.insert(p->target.value());
  }
}

TEST(ReplicateTarget, InteriorNodeWithLiveVidAboveUsesOwnList) {
  util::Rng rng(1);
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  // P(5) has vid 1110; its children list is (7, 1, 13).
  const std::optional<Placement> p =
      replicate_target(tree, Pid{5}, live, copy_at({4, 5}), rng);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->source, PlacementSource::kOwnChildren);
  EXPECT_EQ(p->target, Pid{7});
}

TEST(ReplicateTarget, StandInUsesProportionalChoice) {
  // Paper scenario: P(4), P(5) dead; P(6) (vid 1101) is the stand-in. Its
  // live offspring: vids 1001, 0101, 0001 -> P(2), P(14), P(10), so the
  // own-list probability is 3/13 ≈ 23% and the dead root's children list
  // takes the rest.
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);

  int own = 0;
  int root_list = 0;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    util::Rng rng(seed);
    const std::optional<Placement> p =
        replicate_target(tree, Pid{6}, live, copy_at({6}), rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_NE(p->target, Pid{6});
    EXPECT_TRUE(live.is_live(p->target.value()));
    if (p->source == PlacementSource::kOwnChildren) {
      ++own;
    } else {
      ++root_list;
    }
  }
  // Expected own fraction = 3/13 ≈ 23%; both branches must occur and the
  // root list must dominate.
  EXPECT_GT(own, 30);
  EXPECT_GT(root_list, 230);
}

TEST(ReplicateTarget, ProportionalFallsBackWhenChosenListFull) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  // Saturate P(6)'s own children list (vids 1001 -> P(2)? compute: pid =
  // vid ^ 1011: 1001^1011=0010=2; 0101^1011=1110=14). Fill both.
  std::set<std::uint32_t> copies{6, 2, 14};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    const std::optional<Placement> p =
        replicate_target(tree, Pid{6}, live, copy_at(copies), rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->source, PlacementSource::kRootChildren);
  }
}

TEST(ReplicateTarget, ExhaustedEverywhereReturnsNullopt) {
  util::Rng rng(1);
  const LookupTree tree(3, Pid{0});
  const util::StatusWord live = all_live(3);
  std::set<std::uint32_t> copies;
  for (std::uint32_t p = 0; p < 8; ++p) copies.insert(p);
  EXPECT_EQ(replicate_target(tree, Pid{0}, live, copy_at(copies), rng),
            std::nullopt);
}

TEST(ReplicateTarget, HalvesSubtreePopulationServedByRoot) {
  // Section 2 guarantee: replicating to the head of the children list
  // splits the root's catchment in half (even distribution => half load).
  for (const int m : {3, 4, 5, 6, 8}) {
    const LookupTree tree(m, Pid{1});
    const util::StatusWord live = all_live(m);
    util::Rng rng(7);
    const std::optional<Placement> p =
        replicate_target(tree, Pid{1}, live, copy_at({1}), rng);
    ASSERT_TRUE(p.has_value());
    // The new replica covers the subtree under it: exactly half the space.
    EXPECT_EQ(tree.subtree_size(p->target), util::space_size(m) / 2);
  }
}

}  // namespace
}  // namespace lesslog::core
