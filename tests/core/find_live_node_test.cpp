#include "lesslog/core/find_live_node.hpp"

#include <gtest/gtest.h>

#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

TEST(FindLiveNode, ReturnsSelfWhenAlive) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(find_live_node(tree, Pid{p}, live), Pid{p});
  }
}

TEST(FindLiveNode, PaperExampleDeadTargetGoesToP6) {
  // 14-node system, P(4) and P(5) dead, target 4 = ψ(f):
  // ADVANCEDINSERTFILE inserts f into P(6).
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  EXPECT_EQ(insertion_target(tree, live), Pid{6});
  EXPECT_EQ(find_live_node(tree, Pid{4}, live), Pid{6});
}

TEST(FindLiveNode, ScansStrictlyDownward) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  // Kill the three largest VIDs in the tree of P(4): vid 1111 -> P(4),
  // vid 1110 -> P(5), vid 1101 -> P(6). Next is vid 1100 -> P(7).
  live.set_dead(4);
  live.set_dead(5);
  live.set_dead(6);
  EXPECT_EQ(insertion_target(tree, live), Pid{7});
}

TEST(FindLiveNode, NoLiveNodeReturnsNullopt) {
  const LookupTree tree(3, Pid{2});
  const util::StatusWord live(3);  // everything dead
  EXPECT_EQ(find_live_node(tree, Pid{2}, live), std::nullopt);
  EXPECT_EQ(insertion_target(tree, live), std::nullopt);
}

TEST(FindLiveNode, StartBelowEveryLiveNodeFails) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live(4);
  live.set_live(4);  // only the root (vid 1111) is alive
  // Starting from the smallest VID (vid 0000 -> pid 11), nothing below.
  const Pid lowest = tree.pid_of(Vid{0});
  EXPECT_EQ(find_live_node(tree, lowest, live), std::nullopt);
}

TEST(FindLiveNode, ResultHasMaximalVidBelowStart) {
  const LookupTree tree(5, Pid{9});
  util::StatusWord live = all_live(5);
  util::Rng rng(77);
  for (std::uint32_t dead : rng.sample_indices(32, 15)) live.set_dead(dead);
  for (std::uint32_t s = 0; s < 32; ++s) {
    const std::optional<Pid> found = find_live_node(tree, Pid{s}, live);
    if (live.is_live(s)) {
      EXPECT_EQ(found, Pid{s});
      continue;
    }
    if (!found.has_value()) {
      // Then no live node has a VID below vid(s).
      for (std::uint32_t v = 0; v < tree.vid_of(Pid{s}).value(); ++v) {
        EXPECT_FALSE(live.is_live(tree.pid_of(Vid{v}).value()));
      }
      continue;
    }
    const std::uint32_t fv = tree.vid_of(*found).value();
    EXPECT_LT(fv, tree.vid_of(Pid{s}).value());
    EXPECT_TRUE(live.is_live(found->value()));
    for (std::uint32_t v = fv + 1; v < tree.vid_of(Pid{s}).value(); ++v) {
      EXPECT_FALSE(live.is_live(tree.pid_of(Vid{v}).value()));
    }
  }
}

TEST(FindLiveNode, InsertionTargetHasMostOffspring) {
  // Property 3 justifies the scan: the chosen node has the most offspring
  // among live nodes.
  const LookupTree tree(5, Pid{20});
  util::StatusWord live = all_live(5);
  util::Rng rng(3);
  for (std::uint32_t dead : rng.sample_indices(32, 10)) live.set_dead(dead);
  const std::optional<Pid> target = insertion_target(tree, live);
  ASSERT_TRUE(target.has_value());
  for (std::uint32_t p = 0; p < 32; ++p) {
    if (live.is_live(p)) {
      EXPECT_GE(tree.offspring_count(*target), tree.offspring_count(Pid{p}));
    }
  }
}

TEST(LiveVidAbove, RootHasNothingAbove) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  EXPECT_FALSE(live_vid_above(tree, Pid{4}, live));
  EXPECT_TRUE(live_vid_above(tree, Pid{5}, live));
  EXPECT_TRUE(live_vid_above(tree, Pid{12}, live));
}

TEST(LiveVidAbove, StandInDetection) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  // P(6) (vid 1101) is now the highest live VID.
  EXPECT_FALSE(live_vid_above(tree, Pid{6}, live));
  EXPECT_TRUE(live_vid_above(tree, Pid{7}, live));
}

TEST(LiveVidAbove, ConsistentWithInsertionTarget) {
  const LookupTree tree(6, Pid{33});
  util::StatusWord live = all_live(6);
  util::Rng rng(11);
  for (std::uint32_t dead : rng.sample_indices(64, 25)) live.set_dead(dead);
  const std::optional<Pid> target = insertion_target(tree, live);
  ASSERT_TRUE(target.has_value());
  for (std::uint32_t p = 0; p < 64; ++p) {
    if (!live.is_live(p)) continue;
    EXPECT_EQ(live_vid_above(tree, Pid{p}, live), Pid{p} != *target);
  }
}

}  // namespace
}  // namespace lesslog::core
