#include "lesslog/core/find_live_node.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

TEST(FindLiveNode, ReturnsSelfWhenAlive) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(find_live_node(tree, Pid{p}, live), Pid{p});
  }
}

TEST(FindLiveNode, PaperExampleDeadTargetGoesToP6) {
  // 14-node system, P(4) and P(5) dead, target 4 = ψ(f):
  // ADVANCEDINSERTFILE inserts f into P(6).
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  EXPECT_EQ(insertion_target(tree, live), Pid{6});
  EXPECT_EQ(find_live_node(tree, Pid{4}, live), Pid{6});
}

TEST(FindLiveNode, ScansStrictlyDownward) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  // Kill the three largest VIDs in the tree of P(4): vid 1111 -> P(4),
  // vid 1110 -> P(5), vid 1101 -> P(6). Next is vid 1100 -> P(7).
  live.set_dead(4);
  live.set_dead(5);
  live.set_dead(6);
  EXPECT_EQ(insertion_target(tree, live), Pid{7});
}

TEST(FindLiveNode, NoLiveNodeReturnsNullopt) {
  const LookupTree tree(3, Pid{2});
  const util::StatusWord live(3);  // everything dead
  EXPECT_EQ(find_live_node(tree, Pid{2}, live), std::nullopt);
  EXPECT_EQ(insertion_target(tree, live), std::nullopt);
}

TEST(FindLiveNode, StartBelowEveryLiveNodeFails) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live(4);
  live.set_live(4);  // only the root (vid 1111) is alive
  // Starting from the smallest VID (vid 0000 -> pid 11), nothing below.
  const Pid lowest = tree.pid_of(Vid{0});
  EXPECT_EQ(find_live_node(tree, lowest, live), std::nullopt);
}

TEST(FindLiveNode, ResultHasMaximalVidBelowStart) {
  const LookupTree tree(5, Pid{9});
  util::StatusWord live = all_live(5);
  util::Rng rng(77);
  for (std::uint32_t dead : rng.sample_indices(32, 15)) live.set_dead(dead);
  for (std::uint32_t s = 0; s < 32; ++s) {
    const std::optional<Pid> found = find_live_node(tree, Pid{s}, live);
    if (live.is_live(s)) {
      EXPECT_EQ(found, Pid{s});
      continue;
    }
    if (!found.has_value()) {
      // Then no live node has a VID below vid(s).
      for (std::uint32_t v = 0; v < tree.vid_of(Pid{s}).value(); ++v) {
        EXPECT_FALSE(live.is_live(tree.pid_of(Vid{v}).value()));
      }
      continue;
    }
    const std::uint32_t fv = tree.vid_of(*found).value();
    EXPECT_LT(fv, tree.vid_of(Pid{s}).value());
    EXPECT_TRUE(live.is_live(found->value()));
    for (std::uint32_t v = fv + 1; v < tree.vid_of(Pid{s}).value(); ++v) {
      EXPECT_FALSE(live.is_live(tree.pid_of(Vid{v}).value()));
    }
  }
}

TEST(FindLiveNode, InsertionTargetHasMostOffspring) {
  // Property 3 justifies the scan: the chosen node has the most offspring
  // among live nodes.
  const LookupTree tree(5, Pid{20});
  util::StatusWord live = all_live(5);
  util::Rng rng(3);
  for (std::uint32_t dead : rng.sample_indices(32, 10)) live.set_dead(dead);
  const std::optional<Pid> target = insertion_target(tree, live);
  ASSERT_TRUE(target.has_value());
  for (std::uint32_t p = 0; p < 32; ++p) {
    if (live.is_live(p)) {
      EXPECT_GE(tree.offspring_count(*target), tree.offspring_count(Pid{p}));
    }
  }
}

TEST(LiveVidAbove, RootHasNothingAbove) {
  const LookupTree tree(4, Pid{4});
  const util::StatusWord live = all_live(4);
  EXPECT_FALSE(live_vid_above(tree, Pid{4}, live));
  EXPECT_TRUE(live_vid_above(tree, Pid{5}, live));
  EXPECT_TRUE(live_vid_above(tree, Pid{12}, live));
}

TEST(LiveVidAbove, StandInDetection) {
  const LookupTree tree(4, Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(4);
  live.set_dead(5);
  // P(6) (vid 1101) is now the highest live VID.
  EXPECT_FALSE(live_vid_above(tree, Pid{6}, live));
  EXPECT_TRUE(live_vid_above(tree, Pid{7}, live));
}

TEST(LiveVidAbove, ConsistentWithInsertionTarget) {
  const LookupTree tree(6, Pid{33});
  util::StatusWord live = all_live(6);
  util::Rng rng(11);
  for (std::uint32_t dead : rng.sample_indices(64, 25)) live.set_dead(dead);
  const std::optional<Pid> target = insertion_target(tree, live);
  ASSERT_TRUE(target.has_value());
  for (std::uint32_t p = 0; p < 64; ++p) {
    if (!live.is_live(p)) continue;
    EXPECT_EQ(live_vid_above(tree, Pid{p}, live), Pid{p} != *target);
  }
}

// --- Bit-scan vs. reference-walker equivalence -----------------------------
//
// find_live_node and friends are implemented as packed word scans over the
// StatusWord (see src/core/find_live_node.cpp). These tests pin them against
// the paper's literal one-VID-at-a-time loops, exhaustively for small m and
// randomized across word boundaries for m > 6.

std::optional<Pid> walker_find_live_node(const LookupTree& tree, Pid s,
                                         const util::StatusWord& live) {
  if (live.is_live(s.value())) return s;
  for (std::uint32_t i = tree.vid_of(s).value(); i-- > 0;) {
    const Pid p = tree.pid_of(Vid{i});
    if (live.is_live(p.value())) return p;
  }
  return std::nullopt;
}

bool walker_live_vid_above(const LookupTree& tree, Pid k,
                           const util::StatusWord& live) {
  const std::uint32_t top = util::mask_of(tree.width());
  for (std::uint32_t i = tree.vid_of(k).value() + 1; i <= top; ++i) {
    if (live.is_live(tree.pid_of(Vid{i}).value())) return true;
  }
  return false;
}

std::optional<Pid> walker_find_live_in_subtree(const SubtreeView& view,
                                               std::uint32_t sub_id,
                                               std::uint32_t from_sub_vid,
                                               const util::StatusWord& live) {
  for (std::uint32_t sv = from_sub_vid + 1; sv-- > 0;) {
    const Pid p = view.pid_at(sv, sub_id);
    if (live.is_live(p.value())) return p;
  }
  return std::nullopt;
}

bool walker_subtree_live_vid_above(const SubtreeView& view, Pid k,
                                   const util::StatusWord& live) {
  const std::uint32_t sid = view.subtree_id(k);
  const std::uint32_t top = util::mask_of(view.subtree_width());
  for (std::uint32_t sv = view.subtree_vid(k) + 1; sv <= top; ++sv) {
    if (live.is_live(view.pid_at(sv, sid).value())) return true;
  }
  return false;
}

void check_all_queries(int m, const util::StatusWord& live) {
  const std::uint32_t n = util::space_size(m);
  for (std::uint32_t r = 0; r < n; ++r) {
    const LookupTree tree(m, Pid{r});
    for (std::uint32_t s = 0; s < n; ++s) {
      ASSERT_EQ(find_live_node(tree, Pid{s}, live),
                walker_find_live_node(tree, Pid{s}, live))
          << "m=" << m << " root=" << r << " start=" << s;
      ASSERT_EQ(live_vid_above(tree, Pid{s}, live),
                walker_live_vid_above(tree, Pid{s}, live))
          << "m=" << m << " root=" << r << " start=" << s;
    }
  }
}

TEST(FindLiveNodeBitScan, ExhaustiveSmallSpaces) {
  // Every liveness pattern, every root, every start, for m <= 3.
  for (int m = 1; m <= 3; ++m) {
    const std::uint32_t n = util::space_size(m);
    for (std::uint32_t pattern = 0; pattern < (1u << n); ++pattern) {
      util::StatusWord live(m);
      for (std::uint32_t p = 0; p < n; ++p) {
        if ((pattern >> p) & 1u) live.set_live(p);
      }
      check_all_queries(m, live);
    }
  }
}

TEST(FindLiveNodeBitScan, RandomizedAcrossWordBoundaries) {
  // m in 4..9 spans the interesting sizes: sub-word (m < 6), exactly one
  // word (m = 6), and multi-word where the XOR word-permutation matters.
  util::Rng rng(0xB17);
  for (int m = 4; m <= 9; ++m) {
    const std::uint32_t n = util::space_size(m);
    for (int density = 0; density <= 4; ++density) {
      util::StatusWord live(m);
      const std::uint32_t live_n =
          static_cast<std::uint32_t>(rng.bounded(n + 1));
      for (std::uint32_t p : rng.sample_indices(n, live_n)) live.set_live(p);
      if (m <= 6) {
        check_all_queries(m, live);
        continue;
      }
      // Too big for all roots x starts: sample roots, check every start.
      for (int i = 0; i < 8; ++i) {
        const LookupTree tree(
            m, Pid{static_cast<std::uint32_t>(rng.bounded(n))});
        for (std::uint32_t s = 0; s < n; ++s) {
          ASSERT_EQ(find_live_node(tree, Pid{s}, live),
                    walker_find_live_node(tree, Pid{s}, live));
          ASSERT_EQ(live_vid_above(tree, Pid{s}, live),
                    walker_live_vid_above(tree, Pid{s}, live));
        }
      }
    }
  }
}

TEST(FindLiveNodeBitScan, SubtreeScansMatchWalkerAllFaultBits) {
  // Every b including b > 6 (the scalar fallback) on an m = 8 space.
  util::Rng rng(0x5B7);
  const int m = 8;
  const std::uint32_t n = util::space_size(m);
  for (int b = 0; b < m; ++b) {
    for (int round = 0; round < 3; ++round) {
      util::StatusWord live(m);
      const std::uint32_t live_n =
          static_cast<std::uint32_t>(rng.bounded(n + 1));
      for (std::uint32_t p : rng.sample_indices(n, live_n)) live.set_live(p);
      const LookupTree tree(m,
                            Pid{static_cast<std::uint32_t>(rng.bounded(n))});
      const SubtreeView view(tree, b);
      const std::uint32_t sub_top = util::mask_of(view.subtree_width());
      for (std::uint32_t sid = 0; sid < view.subtree_count(); ++sid) {
        for (std::uint32_t sv = 0; sv <= sub_top; ++sv) {
          ASSERT_EQ(view.find_live_in_subtree(sid, sv, live),
                    walker_find_live_in_subtree(view, sid, sv, live))
              << "b=" << b << " sid=" << sid << " sv=" << sv;
        }
      }
      for (std::uint32_t p = 0; p < n; ++p) {
        ASSERT_EQ(view.live_vid_above(Pid{p}, live),
                  walker_subtree_live_vid_above(view, Pid{p}, live))
            << "b=" << b << " p=" << p;
      }
    }
  }
}

TEST(FindLiveNodeBitScan, ChurnFlipsStayConsistent) {
  // Crash / restart / depart / join each flip one bit in the packed
  // bitmap. Drive a random churn sequence, cross-check the bitmap against
  // a plain membership list after every flip, and spot-check the scans.
  util::Rng rng(0xC0FFEE);
  const int m = 7;
  const std::uint32_t n = util::space_size(m);
  util::StatusWord live(m, n / 2);
  std::vector<bool> membership(n, false);
  for (std::uint32_t p = 0; p < n / 2; ++p) membership[p] = true;
  const LookupTree tree(m, Pid{37});
  for (int step = 0; step < 500; ++step) {
    const std::uint32_t p = static_cast<std::uint32_t>(rng.bounded(n));
    if (membership[p]) {
      live.set_dead(p);  // crash or graceful depart
      membership[p] = false;
    } else {
      live.set_live(p);  // restart or fresh join
      membership[p] = true;
    }
    std::uint32_t count = 0;
    for (std::uint32_t q = 0; q < n; ++q) {
      ASSERT_EQ(live.is_live(q), membership[q]) << "after flipping " << p;
      if (membership[q]) ++count;
    }
    ASSERT_EQ(live.live_count(), count);
    const Pid s{static_cast<std::uint32_t>(rng.bounded(n))};
    ASSERT_EQ(find_live_node(tree, s, live),
              walker_find_live_node(tree, s, live));
    ASSERT_EQ(live_vid_above(tree, s, live),
              walker_live_vid_above(tree, s, live));
  }
}

}  // namespace
}  // namespace lesslog::core
