// DeliverySink fan-out: every registered sink sees every delivered
// datagram, in delivery order, and peer lifecycle events reach on_peer.
#include "lesslog/obs/sink.hpp"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "lesslog/proto/swarm.hpp"
#include "lesslog/proto/trace.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::obs {
namespace {

using proto::Message;
using proto::MsgType;

struct RecordingSink final : DeliverySink {
  struct Delivered {
    double time;
    MsgType type;
    std::uint32_t from;
    std::uint32_t to;
  };
  struct PeerEvent {
    double time;
    std::uint32_t pid;
    bool live;
  };
  std::vector<Delivered> deliveries;
  std::vector<PeerEvent> peer_events;

  void on_deliver(double time, const Message& m) override {
    deliveries.push_back(
        {time, m.type, m.from.value(), m.to.value()});
  }
  void on_peer(double time, core::Pid pid, bool live) override {
    peer_events.push_back({time, pid.value(), live});
  }
};

proto::Swarm::Config config(std::uint32_t nodes = 0) {
  proto::Swarm::Config cfg;
  cfg.m = 5;
  cfg.b = 0;
  cfg.nodes = nodes == 0 ? util::space_size(5) : nodes;
  cfg.seed = 11;
  cfg.net.base_latency = 0.010;
  cfg.net.jitter = 0.005;
  return cfg;
}

void drive(proto::Swarm& swarm, int requests, std::uint64_t seed) {
  util::Rng rng(seed);
  const core::FileId f{0xFEEDULL};
  const core::Pid target{3};
  swarm.insert(f, target, core::Pid{0});
  swarm.settle();
  for (int i = 0; i < requests; ++i) {
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(5)))};
    swarm.get(f, target, at);
  }
  swarm.settle();
}

TEST(DeliverySinkTest, EverySinkSeesEveryDeliveryInTheSameOrder) {
  proto::Swarm swarm(config());
  RecordingSink first;
  RecordingSink second;
  swarm.add_sink(first);
  swarm.add_sink(second);
  drive(swarm, 20, 99);

  ASSERT_FALSE(first.deliveries.empty());
  ASSERT_EQ(first.deliveries.size(), second.deliveries.size());
  for (std::size_t i = 0; i < first.deliveries.size(); ++i) {
    EXPECT_EQ(first.deliveries[i].time, second.deliveries[i].time);
    EXPECT_EQ(first.deliveries[i].type, second.deliveries[i].type);
    EXPECT_EQ(first.deliveries[i].from, second.deliveries[i].from);
    EXPECT_EQ(first.deliveries[i].to, second.deliveries[i].to);
  }
  // Delivery order is simulated-time order.
  for (std::size_t i = 1; i < first.deliveries.size(); ++i) {
    EXPECT_LE(first.deliveries[i - 1].time, first.deliveries[i].time);
  }
  swarm.remove_sink(first);
  swarm.remove_sink(second);
}

TEST(DeliverySinkTest, RemovedSinkStopsRecording) {
  proto::Swarm swarm(config());
  RecordingSink removed;
  RecordingSink kept;
  swarm.add_sink(removed);
  swarm.add_sink(kept);
  drive(swarm, 10, 5);
  const std::size_t before = removed.deliveries.size();
  ASSERT_GT(before, 0u);

  swarm.remove_sink(removed);
  drive(swarm, 10, 6);
  EXPECT_EQ(removed.deliveries.size(), before);
  EXPECT_GT(kept.deliveries.size(), before);
  swarm.remove_sink(kept);
}

TEST(DeliverySinkTest, AddingTheSameSinkTwiceRecordsOnce) {
  proto::Swarm swarm(config());
  RecordingSink sink;
  RecordingSink reference;
  swarm.add_sink(sink);
  swarm.add_sink(sink);  // dedup: still registered once
  swarm.add_sink(reference);
  drive(swarm, 10, 21);
  EXPECT_EQ(sink.deliveries.size(), reference.deliveries.size());
  swarm.remove_sink(sink);
  swarm.remove_sink(reference);
}

TEST(DeliverySinkTest, PeerLifecycleEventsReachOnPeer) {
  proto::Swarm swarm(config(/*nodes=*/24));
  RecordingSink sink;
  swarm.add_sink(sink);

  const core::Pid joined = swarm.join();
  swarm.settle();
  ASSERT_EQ(sink.peer_events.size(), 1u);
  EXPECT_EQ(sink.peer_events[0].pid, joined.value());
  EXPECT_TRUE(sink.peer_events[0].live);

  swarm.depart(joined);
  swarm.settle();
  ASSERT_EQ(sink.peer_events.size(), 2u);
  EXPECT_EQ(sink.peer_events[1].pid, joined.value());
  EXPECT_FALSE(sink.peer_events[1].live);
  swarm.remove_sink(sink);
}

TEST(DeliverySinkTest, TraceAndRawSinkRecordIdenticalStreams) {
  proto::Swarm swarm(config());
  proto::Trace trace(swarm);
  RecordingSink sink;
  swarm.add_sink(sink);
  drive(swarm, 15, 77);

  ASSERT_EQ(trace.size(), sink.deliveries.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.records()[i].time, sink.deliveries[i].time);
    EXPECT_EQ(trace.records()[i].message.type, sink.deliveries[i].type);
  }
  swarm.remove_sink(sink);
}

TEST(DeliverySinkTest, JsonlSinkMatchesTraceWriteJsonl) {
  proto::Swarm swarm(config());
  proto::Trace trace(swarm);
  std::ostringstream streamed;
  JsonlSink jsonl(streamed);
  swarm.add_sink(jsonl);
  drive(swarm, 15, 31);

  std::ostringstream batched;
  trace.write_jsonl(batched);
  EXPECT_EQ(streamed.str(), batched.str());
  EXPECT_NE(streamed.str().find("\"type\":"), std::string::npos);
  swarm.remove_sink(jsonl);
}

}  // namespace
}  // namespace lesslog::obs
