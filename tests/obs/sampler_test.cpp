// Sampler and TimeSeries: deterministic periodic snapshots on the sim
// engine, and the scalar-flattened table/CSV/JSON views.
#include "lesslog/obs/sampler.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/minijson.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::obs {
namespace {

TEST(SamplerTest, SamplesEveryIntervalUntilStopAt) {
  sim::Engine engine(1);
  Registry reg;
  Counter& events = reg.counter("events");
  Sampler sampler(engine, reg, /*interval=*/0.5, /*stop_at=*/2.0);
  sampler.start();
  for (int i = 1; i <= 4; ++i) {
    engine.at(0.3 * i, [&events] { events.inc(); });
  }
  engine.queue().run_all();

  const TimeSeries& series = sampler.series();
  ASSERT_EQ(series.size(), 4u);  // t = 0.5, 1.0, 1.5, 2.0
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series.samples[i].time, 0.5 * static_cast<double>(i + 1));
  }
  // Counters are cumulative: 0.3/0.6/0.9/1.2 land one per 0.5s window
  // except the first (0.3) and second (0.6, 0.9) split.
  EXPECT_EQ(*series.samples[0].counter("events"), 1u);
  EXPECT_EQ(*series.samples[3].counter("events"), 4u);
}

TEST(SamplerTest, PreSampleHookRefreshesDerivedGaugesBeforeEachSnapshot) {
  sim::Engine engine(1);
  Registry reg;
  Gauge& depth = reg.gauge("depth");
  int calls = 0;
  Sampler sampler(engine, reg, 0.5, 1.0, [&] {
    ++calls;
    depth.set(static_cast<double>(calls));
  });
  sampler.start();
  engine.queue().run_all();
  ASSERT_EQ(sampler.series().size(), 2u);
  EXPECT_DOUBLE_EQ(*sampler.series().samples[0].gauge("depth"), 1.0);
  EXPECT_DOUBLE_EQ(*sampler.series().samples[1].gauge("depth"), 2.0);
}

TEST(TimeSeriesTest, ToTableFlattensScalarsAndUnknownColumnsReadZero) {
  sim::Engine engine(1);
  Registry reg;
  reg.counter("hits").add(3);
  reg.histogram("lat").add(0.010);
  Sampler sampler(engine, reg, 1.0, 1.0);
  sampler.start();
  engine.queue().run_all();

  const std::string table =
      sampler.series().to_table({"hits", "lat", "nope"}).render();
  EXPECT_NE(table.find("t (s)"), std::string::npos);
  EXPECT_NE(table.find("hits"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);  // resolves to p50 ms
  EXPECT_NE(table.find("nope"), std::string::npos);  // unknown: zeros
}

TEST(TimeSeriesTest, WriteJsonEmitsAParsableSampleArray) {
  sim::Engine engine(1);
  Registry reg;
  reg.counter("hits").add(2);
  reg.gauge("depth").set(4.0);
  reg.histogram("lat").add(0.020);
  Sampler sampler(engine, reg, 0.5, 1.0);
  sampler.start();
  engine.queue().run_all();

  std::ostringstream out;
  sampler.series().write_json(out);
  const auto doc = util::minijson::parse(out.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->array.size(), 2u);
  const util::minijson::Value* t = doc->array[0].find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_DOUBLE_EQ(t->number, 0.5);
}

#if LESSLOG_METRICS_ENABLED
TEST(SamplerTest, SwarmSamplingIsDeterministicAcrossRuns) {
  const auto run = [] {
    proto::Swarm::Config cfg;
    cfg.m = 5;
    cfg.b = 0;
    cfg.nodes = util::space_size(5);
    cfg.seed = 9;
    cfg.net.base_latency = 0.010;
    cfg.net.jitter = 0.005;
    proto::Swarm swarm(cfg);
    swarm.enable_metrics_sampling(0.05, 1.0);
    const core::FileId f{0xABCULL};
    swarm.insert(f, core::Pid{5}, core::Pid{0});
    swarm.settle();
    util::Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      const core::Pid at{
          static_cast<std::uint32_t>(rng.bounded(util::space_size(5)))};
      swarm.get(f, core::Pid{5}, at);
    }
    swarm.settle();
    return swarm.metrics_series().samples;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}
#endif  // LESSLOG_METRICS_ENABLED

}  // namespace
}  // namespace lesslog::obs
