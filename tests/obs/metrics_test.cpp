// obs::Registry cells and snapshots: layout, overflow, merge algebra,
// and cross-swarm determinism.
#include "lesslog/obs/metrics.hpp"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::obs {
namespace {

// The padding contract is compile-time: every cell owns one cache line.
static_assert(sizeof(Counter) == kCellSize);
static_assert(alignof(Counter) == kCellSize);
static_assert(sizeof(Gauge) == kCellSize);
static_assert(alignof(Gauge) == kCellSize);

TEST(MetricCells, AdjacentRegistryCellsNeverShareACacheLine) {
  Registry reg;
  const Counter& a = reg.counter("a");
  const Counter& b = reg.counter("b");
  const Gauge& g = reg.gauge("g");
  const Gauge& h = reg.gauge("h");
  const auto line = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) / kCellSize;
  };
  EXPECT_NE(line(&a), line(&b));
  EXPECT_NE(line(&g), line(&h));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&a) % kCellSize, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&g) % kCellSize, 0u);
}

TEST(MetricCells, RegistryReturnsTheSameCellForTheSameName) {
  Registry reg;
  Counter& a = reg.counter("hits");
  a.inc();
  EXPECT_EQ(&reg.counter("hits"), &a);
  EXPECT_EQ(reg.counter("hits").value(), 1u);
  EXPECT_NE(&reg.counter("misses"), &a);
}

TEST(MetricCells, CellReferencesStayStableAcrossLaterRegistrations) {
  Registry reg;
  Counter& first = reg.counter("first");
  first.add(7);
  // Deque storage: registering many more cells must not move `first`.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name).inc();
  }
  EXPECT_EQ(&reg.counter("first"), &first);
  EXPECT_EQ(first.value(), 7u);
}

TEST(MetricCells, CounterWrapsModulo2To64) {
  Counter c;
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  c.inc();
  EXPECT_EQ(c.value(), 0u);
  c.add(std::numeric_limits<std::uint64_t>::max());
  c.add(2);
  EXPECT_EQ(c.value(), 1u);
}

LatencyHistogram histogram_of(std::uint64_t seed, int samples) {
  util::Rng rng(seed);
  LatencyHistogram h;
  for (int i = 0; i < samples; ++i) {
    h.add(static_cast<double>(rng.bounded(1'000'000)) * 1e-6);
  }
  return h;
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutativeInTheCounts) {
  const LatencyHistogram a = histogram_of(1, 400);
  const LatencyHistogram b = histogram_of(2, 300);
  const LatencyHistogram c = histogram_of(3, 200);

  LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);

  EXPECT_EQ(ab_c.total(), 900);
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(ab_c.bucket(i), a_bc.bucket(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(ab_c.percentile(50.0), a_bc.percentile(50.0));
  EXPECT_DOUBLE_EQ(ab_c.percentile(99.0), a_bc.percentile(99.0));
}

TEST(SnapshotTest, EmptySnapshotAdoptsTheOtherShapeOnMerge) {
  Registry reg;
  reg.counter("hits").add(3);
  reg.gauge("depth").set(5.0);
  reg.histogram("lat").add(0.010);

  Snapshot merged;
  merged.time = 1.0;  // merge_from keeps the destination's own timestamp
  merged.merge_from(reg.snapshot(1.0));
  EXPECT_EQ(merged, reg.snapshot(1.0));
}

TEST(SnapshotTest, MergeAddsCountersGaugesAndBuckets) {
  Registry a;
  a.counter("hits").add(3);
  a.gauge("depth").set(5.0);
  a.histogram("lat").add(0.010);
  Registry b;
  b.counter("hits").add(4);
  b.gauge("depth").set(2.0);
  b.histogram("lat").add(0.010);

  Snapshot merged = a.snapshot(1.0);
  merged.merge_from(b.snapshot(1.0));
  EXPECT_EQ(*merged.counter("hits"), 7u);
  EXPECT_DOUBLE_EQ(*merged.gauge("depth"), 7.0);
  EXPECT_EQ(merged.histogram("lat")->total(), 2);
}

TEST(SnapshotTest, MergeIsAssociativeOverRegistries) {
  const auto registry_snapshot = [](std::uint64_t seed) {
    Registry reg;
    util::Rng rng(seed);
    reg.counter("events").add(rng.bounded(1000));
    reg.gauge("depth").set(static_cast<double>(rng.bounded(64)));
    for (int i = 0; i < 50; ++i) {
      reg.histogram("lat").add(static_cast<double>(rng.bounded(100'000)) *
                               1e-6);
    }
    return reg.snapshot(2.0);
  };
  const Snapshot a = registry_snapshot(1);
  const Snapshot b = registry_snapshot(2);
  const Snapshot c = registry_snapshot(3);

  Snapshot ab_c = a;
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  Snapshot bc = b;
  bc.merge_from(c);
  Snapshot a_bc = a;
  a_bc.merge_from(bc);
  EXPECT_EQ(ab_c.counters, a_bc.counters);
  EXPECT_EQ(ab_c.gauges, a_bc.gauges);
  for (std::size_t h = 0; h < ab_c.histograms.size(); ++h) {
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      EXPECT_EQ(ab_c.histograms[h].second.bucket(i),
                a_bc.histograms[h].second.bucket(i));
    }
  }
}

#if LESSLOG_METRICS_ENABLED
proto::Swarm::Config small_swarm_config() {
  proto::Swarm::Config cfg;
  cfg.m = 5;
  cfg.b = 0;
  cfg.nodes = util::space_size(5);
  cfg.seed = 42;
  cfg.net.base_latency = 0.010;
  cfg.net.jitter = 0.005;
  return cfg;
}

Snapshot run_and_snapshot() {
  proto::Swarm swarm(small_swarm_config());
  util::Rng rng(7);
  std::vector<std::pair<core::FileId, core::Pid>> files;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const core::Pid target{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(5)))};
    files.emplace_back(core::FileId{0xD00D00ULL + i}, target);
    swarm.insert(files.back().first, target, core::Pid{0});
  }
  swarm.settle();
  for (int i = 0; i < 60; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(5)))};
    swarm.get(f, target, at);
  }
  swarm.settle();
  return swarm.registry().snapshot(swarm.engine().now());
}

TEST(SnapshotTest, EqualSeedsProduceValueIdenticalSwarmSnapshots) {
  const Snapshot first = run_and_snapshot();
  const Snapshot second = run_and_snapshot();
  EXPECT_FALSE(first.empty());
  EXPECT_GT(*first.counter("client.gets"), 0u);
  EXPECT_EQ(first, second);
}
#endif  // LESSLOG_METRICS_ENABLED

}  // namespace
}  // namespace lesslog::obs
