// The two machine-readable document schemas round-trip and self-validate:
// "lesslog.bench" v1 (parse() is the exact inverse of write()) and
// "lesslog.metrics" v1 (the exporter's bytes pass the validator the ctest
// smoke gates run).
#include <sstream>

#include <gtest/gtest.h>

#include "bench_schema.hpp"
#include "lesslog/obs/export.hpp"
#include "lesslog/obs/sampler.hpp"
#include "lesslog/util/minijson.hpp"

namespace lesslog {
namespace {

bench::JsonSchema sample_doc() {
  bench::JsonSchema doc;
  doc.bench = "abl_latency";
  doc.family = "wire";
  doc.seed = 42;
  doc.seeds = 0;
  doc.threads = 4;
  doc.quick = true;
  doc.solver = "";
  doc.wall_ms = 123.4567890123;
  doc.rows.push_back(bench::SchemaRow{
      "abl_latency",
      "m=10,b=0",
      {{"policy", "lesslog"}},
      {{"p50_ms", 49.1523}, {"p99_ms", 98.3}, {"msgs_per_get", 4.02}}});
  doc.rows.push_back(bench::SchemaRow{
      "abl_latency", "m=10,b=2", {}, {{"p50_ms", 51.25}}});
  return doc;
}

TEST(BenchSchemaTest, WriteThenParseIsIdentity) {
  const bench::JsonSchema doc = sample_doc();
  std::ostringstream out;
  doc.write(out);
  const auto parsed = bench::JsonSchema::parse(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, doc);
}

TEST(BenchSchemaTest, DoublesSurviveTheRoundTripExactly) {
  bench::JsonSchema doc = sample_doc();
  doc.wall_ms = 0.1 + 0.2;  // classic non-representable sum
  doc.rows[0].metrics[0].second = 1.0 / 3.0;
  std::ostringstream out;
  doc.write(out);
  const auto parsed = bench::JsonSchema::parse(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->wall_ms, doc.wall_ms);
  EXPECT_EQ(parsed->rows[0].metrics[0].second, 1.0 / 3.0);
}

TEST(BenchSchemaTest, RejectsWrongSchemaTagVersionAndShapes) {
  const bench::JsonSchema doc = sample_doc();
  std::ostringstream out;
  doc.write(out);
  const std::string good = out.str();

  std::string wrong_tag = good;
  wrong_tag.replace(wrong_tag.find("lesslog.bench"), 13, "other.schema1");
  EXPECT_FALSE(bench::JsonSchema::parse(wrong_tag).has_value());

  std::string wrong_version = good;
  wrong_version.replace(wrong_version.find("\"version\": 1"), 12,
                        "\"version\": 2");
  EXPECT_FALSE(bench::JsonSchema::parse(wrong_version).has_value());

  EXPECT_FALSE(bench::JsonSchema::parse("{").has_value());
  EXPECT_FALSE(bench::JsonSchema::parse("[]").has_value());
  EXPECT_FALSE(bench::JsonSchema::parse("{\"schema\": 3}").has_value());
}

TEST(BenchSchemaTest, SolveFamilyDocRoundTripsToo) {
  bench::JsonSchema doc;
  doc.bench = "fig5_even_load";
  doc.family = "solve";
  doc.seeds = 5;
  doc.threads = 1;
  doc.quick = false;
  doc.solver = "incremental";
  doc.wall_ms = 88.5;
  doc.rows.push_back(bench::SchemaRow{
      "fig5_even_load",
      "m=10,rate=4000,policy=lesslog",
      {{"policy", "lesslog"}},
      {{"m", 10.0}, {"rate", 4000.0}, {"replicas", 12.4}}});
  std::ostringstream out;
  doc.write(out);
  const auto parsed = bench::JsonSchema::parse(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, doc);
}

obs::Snapshot metric_snapshot() {
  obs::Registry reg;
  reg.counter("client.gets").add(200);
  reg.counter("peer.served").add(200);
  reg.gauge("engine.queue_depth").set(3.0);
  for (int i = 0; i < 50; ++i) {
    reg.histogram("client.get_latency").add(0.001 * (i + 1));
  }
  return reg.snapshot(2.5);
}

TEST(MetricsSchemaTest, ExporterOutputPassesTheValidator) {
  std::ostringstream out;
  obs::write_metrics_json(out, metric_snapshot(), "unit_test", 7);
  EXPECT_EQ(obs::validate_metrics_json(out.str()), "");
}

TEST(MetricsSchemaTest, ExporterOutputWithSeriesPassesTheValidator) {
  obs::TimeSeries series;
  obs::Registry reg;
  reg.counter("client.gets").add(10);
  series.samples.push_back(reg.snapshot(0.5));
  reg.counter("client.gets").add(10);
  series.samples.push_back(reg.snapshot(1.0));

  std::ostringstream out;
  obs::write_metrics_json(out, metric_snapshot(), "unit_test", 7, &series);
  EXPECT_EQ(obs::validate_metrics_json(out.str()), "");

  const auto doc = util::minijson::parse(out.str());
  ASSERT_TRUE(doc.has_value());
  const util::minijson::Value* s = doc->find("series");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->is_array());
  EXPECT_EQ(s->array.size(), 2u);
}

TEST(MetricsSchemaTest, ValidatorNamesTheFirstViolation) {
  EXPECT_NE(obs::validate_metrics_json("not json"), "");
  EXPECT_NE(obs::validate_metrics_json("{}"), "");
  std::ostringstream out;
  obs::write_metrics_json(out, metric_snapshot(), "unit_test", 7);
  std::string bad = out.str();
  bad.replace(bad.find("lesslog.metrics"), 15, "lesslog.other12");
  EXPECT_NE(obs::validate_metrics_json(bad), "");
}

TEST(MetricsSchemaTest, CsvExportCarriesEveryScalar) {
  std::ostringstream out;
  obs::write_metrics_csv(out, metric_snapshot(), "unit_test", 7);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("metric,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("client.gets,counter,200"), std::string::npos);
  EXPECT_NE(csv.find("engine.queue_depth,gauge,"), std::string::npos);
  EXPECT_NE(csv.find("client.get_latency"), std::string::npos);
}

}  // namespace
}  // namespace lesslog
