// Stale-view property tests for the LivenessView seam — the membership
// contract behind the paper's availability claim (Section 5 maintains a
// local, possibly stale status word per node; availability is conditioned
// on that view having no false negatives).
//
//  1. Safety under arbitrary staleness: FINDLIVENODE consulted through a
//     view never returns a node the view believes dead, no matter how far
//     the view and ground truth have diverged (the two words are drawn
//     independently here — the adversarial worst case).
//  2. Availability with no false negatives: when every truly dead node is
//     believed dead (the view may additionally suspect live nodes — false
//     positives are allowed), every node FINDLIVENODE returns is truly
//     alive, and the insertion target exists whenever the view believes
//     anyone is alive: a request entering at the root is always served by
//     a live node.
//  3. Seam equivalence: OracleView, BorrowedView, and the raw StatusWord
//     entry point make bit-identical decisions from the same bits.
#include <gtest/gtest.h>

#include <optional>

#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/membership/swim.hpp"
#include "lesslog/util/liveness_view.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::core {
namespace {

util::StatusWord random_word(int m, double dead_fraction, util::Rng& rng) {
  util::StatusWord word(m, util::space_size(m));
  const auto dead_count = static_cast<std::uint32_t>(
      dead_fraction * static_cast<double>(util::space_size(m)));
  for (const std::uint32_t d :
       rng.sample_indices(util::space_size(m), dead_count)) {
    word.set_dead(d);
  }
  return word;
}

TEST(StaleViewProperty, NeverReturnsViewBelievedDeadNode) {
  util::Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 3 + static_cast<int>(rng.bounded(4));  // 3..6
    const std::uint32_t slots = util::space_size(m);
    const LookupTree tree(m, Pid{static_cast<std::uint32_t>(
                                 rng.bounded(slots))});
    // Ground truth and belief drawn independently: the view can be
    // arbitrarily stale in both directions (believes dead nodes alive,
    // believes live nodes dead).
    const util::StatusWord view_word =
        random_word(m, rng.uniform01(), rng);
    const util::BorrowedView view{view_word};
    for (std::uint32_t s = 0; s < slots; ++s) {
      const std::optional<Pid> found = find_live_node(tree, Pid{s}, view);
      if (found.has_value()) {
        EXPECT_TRUE(view.is_live(found->value()))
            << "m=" << m << " s=" << s << " -> " << found->value();
      }
    }
    const std::optional<Pid> target = insertion_target(tree, view);
    if (target.has_value()) {
      EXPECT_TRUE(view.is_live(target->value()));
    } else {
      EXPECT_EQ(view.live_count(), 0u);
    }
  }
}

TEST(StaleViewProperty, NoFalseNegativesImpliesAvailability) {
  util::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 3 + static_cast<int>(rng.bounded(4));
    const std::uint32_t slots = util::space_size(m);
    const LookupTree tree(m, Pid{static_cast<std::uint32_t>(
                                 rng.bounded(slots))});
    const util::StatusWord truth = random_word(m, 0.4 * rng.uniform01(),
                                               rng);
    // No false negatives: start from ground truth, then additionally
    // suspect some live nodes (false positives only), so
    // believed-live ⊆ truly-live.
    util::StatusWord view_word = truth;
    for (std::uint32_t p = 0; p < slots; ++p) {
      if (view_word.is_live(p) && rng.bernoulli(0.2)) {
        view_word.set_dead(p);
      }
    }
    const util::BorrowedView view{view_word};
    for (std::uint32_t s = 0; s < slots; ++s) {
      const std::optional<Pid> found = find_live_node(tree, Pid{s}, view);
      if (found.has_value()) {
        EXPECT_TRUE(truth.is_live(found->value()))
            << "view returned a truly dead node";
        EXPECT_TRUE(view.is_live(found->value()));
      }
    }
    // Availability: a request entering at the root resolves to a truly
    // live node whenever the view believes anyone is alive.
    const std::optional<Pid> target = insertion_target(tree, view);
    if (view.live_count() > 0) {
      ASSERT_TRUE(target.has_value());
      EXPECT_TRUE(truth.is_live(target->value()));
    } else {
      EXPECT_FALSE(target.has_value());
    }
  }
}

TEST(StaleViewProperty, ViewImplementationsAgreeBitForBit) {
  util::Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = 3 + static_cast<int>(rng.bounded(4));
    const std::uint32_t slots = util::space_size(m);
    const LookupTree tree(m, Pid{static_cast<std::uint32_t>(
                                 rng.bounded(slots))});
    const util::StatusWord word = random_word(m, rng.uniform01(), rng);
    const util::BorrowedView borrowed{word};
    util::OracleView oracle{util::CowStatus(word)};
    membership::SwimView swim{util::CowStatus(word)};
    for (std::uint32_t s = 0; s < slots; ++s) {
      const std::optional<Pid> raw = find_live_node(tree, Pid{s}, word);
      EXPECT_EQ(raw, find_live_node(tree, Pid{s}, borrowed));
      EXPECT_EQ(raw, find_live_node(tree, Pid{s}, oracle));
      EXPECT_EQ(raw, find_live_node(tree, Pid{s}, swim));
      EXPECT_EQ(live_vid_above(tree, Pid{s}, word),
                live_vid_above(tree, Pid{s}, borrowed));
    }
    EXPECT_EQ(insertion_target(tree, word),
              insertion_target(tree, oracle));
  }
}

TEST(StaleViewProperty, BeliefUpdatesSteerTheScan) {
  // A MutableLivenessView drives FINDLIVENODE directly: suspecting the
  // current target makes the scan skip it; refuting the suspicion brings
  // it back. This is the Peer-side loop (detector verdict -> belief ->
  // routing) in miniature.
  const int m = 5;
  const LookupTree tree(m, Pid{7});
  membership::SwimView view{
      util::CowStatus(util::StatusWord(m, util::space_size(m)))};
  const std::optional<Pid> first = insertion_target(tree, view);
  ASSERT_TRUE(first.has_value());
  view.believe_dead(first->value());
  const std::optional<Pid> second = insertion_target(tree, view);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);
  EXPECT_TRUE(view.is_live(second->value()));
  view.believe_live(first->value());
  EXPECT_EQ(insertion_target(tree, view), first);
}

}  // namespace
}  // namespace lesslog::core
