// Replay artifacts: JSON round-trip, tamper rejection, and the core
// acceptance property — a violating run replays bit-identically from its
// artifact.
#include "lesslog/chaos/replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lesslog/util/minijson.hpp"

namespace lesslog::chaos {
namespace {

ChaosConfig broken_config() {
  ChaosConfig cfg;
  cfg.seed = 2;
  cfg.epochs = 3;
  cfg.epoch_length = 20.0;
  cfg.files = 32;
  cfg.get_rate = 15.0;
  cfg.silent_crashes = true;  // guarantees violations
  return cfg;
}

TEST(Replay, ArtifactIsValidJsonWithSchemaTag) {
  Report report = Driver(broken_config()).run();
  const std::string json = artifact_to_json(report);
  const auto doc = util::minijson::parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const util::minijson::Value* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "lesslog.chaos");
  EXPECT_NE(doc->find("config"), nullptr);
  EXPECT_NE(doc->find("violations"), nullptr);
  EXPECT_NE(doc->find("schedule"), nullptr);
  EXPECT_NE(doc->find("stats"), nullptr);
}

TEST(Replay, ConfigSurvivesTheRoundTrip) {
  ChaosConfig cfg = broken_config();
  cfg.fault_intensity = 0.625;  // representable exactly
  cfg.seed = 0xDEADBEEFCAFEULL; // exceeds double's integer range
  Report report;
  report.config = cfg;
  const ChaosConfig back = config_from_artifact(artifact_to_json(report));
  EXPECT_EQ(back.m, cfg.m);
  EXPECT_EQ(back.b, cfg.b);
  EXPECT_EQ(back.nodes, cfg.nodes);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.epochs, cfg.epochs);
  EXPECT_EQ(back.epoch_length, cfg.epoch_length);
  EXPECT_EQ(back.fault_intensity, cfg.fault_intensity);
  EXPECT_EQ(back.files, cfg.files);
  EXPECT_EQ(back.get_rate, cfg.get_rate);
  EXPECT_EQ(back.silent_crashes, cfg.silent_crashes);
}

TEST(Replay, MalformedArtifactsAreRejected) {
  EXPECT_THROW((void)config_from_artifact("not json"),
               std::invalid_argument);
  EXPECT_THROW((void)config_from_artifact("{}"), std::invalid_argument);
  EXPECT_THROW(
      (void)config_from_artifact(R"({"schema":"wrong","config":{}})"),
      std::invalid_argument);
}

TEST(Replay, ParseFailureMessageNamesTheSyntaxError) {
  // A corrupt artifact must fail with the parser's diagnosis, not a
  // generic "not a JSON object".
  try {
    (void)config_from_artifact("{\"schema\":\"lesslog.chaos\",");
    FAIL() << "corrupt artifact accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chaos artifact: "), std::string::npos) << what;
    EXPECT_NE(what.find("at byte"), std::string::npos) << what;
  }
}

TEST(Replay, InvalidUnicodeEscapeInArtifactIsDiagnosed) {
  // Regression: \u followed by non-hex used to pass the parser verbatim;
  // a bit-flipped artifact could sail into config extraction.
  try {
    (void)config_from_artifact(
        "{\"schema\":\"lesslog.chaos\",\"note\":\"\\uZZZZ\"}");
    FAIL() << "invalid \\u escape accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("\\u escape"), std::string::npos) << what;
  }
}

TEST(Replay, ViolatingRunReplaysBitIdentically) {
  // The acceptance property: run broken recovery, capture the artifact,
  // replay from the artifact alone — same schedule, same violations.
  Report original = Driver(broken_config()).run();
  ASSERT_FALSE(original.clean());
  const std::string json = artifact_to_json(original);
  Report replayed = replay(json);
  EXPECT_TRUE(same_outcome(original, replayed));
  EXPECT_EQ(original.violations, replayed.violations);
  EXPECT_EQ(original.record, replayed.record);
  // And the replay's own artifact is byte-identical too.
  EXPECT_EQ(json, artifact_to_json(replayed));
}

TEST(Replay, WriteArtifactProducesAReloadableFile) {
  Report report = Driver(broken_config()).run();
  const std::string path = ::testing::TempDir() + "lesslog_chaos_artifact.json";
  ASSERT_TRUE(write_artifact(path, report));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const ChaosConfig back = config_from_artifact(buf.str());
  EXPECT_EQ(back.seed, report.config.seed);
  EXPECT_TRUE(back.silent_crashes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lesslog::chaos
