// The invariant auditor and the chaos driver: healthy runs audit clean
// across seeds and fault mixes; a deliberately broken recovery protocol
// is caught.
#include "lesslog/chaos/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lesslog/chaos/driver.hpp"

namespace lesslog::chaos {
namespace {

ChaosConfig quick_config(std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.epochs = 3;
  cfg.epoch_length = 20.0;
  cfg.files = 32;
  cfg.get_rate = 15.0;
  return cfg;
}

TEST(Audit, HealthySwarmHasNoViolations) {
  Report report = Driver(quick_config(1)).run();
  EXPECT_TRUE(report.clean()) << report.violations.size() << " violations";
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << "[" << v.epoch << "] " << v.check << ": " << v.detail;
  }
  EXPECT_GT(report.workload_issued, 0);
  EXPECT_EQ(report.workload_issued, report.workload_completed);
}

TEST(Audit, CleanAcrossSeedsUnderFullFaultMix) {
  // The soak: distinct seeds mixing partitions, burst loss, corruption,
  // duplication, delay spikes, crash -> restart, and churn.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosConfig cfg = quick_config(seed);
    cfg.fault_intensity = 0.8;
    Report report = Driver(cfg).run();
    EXPECT_TRUE(report.clean()) << "seed " << seed << ": "
                                << report.violations.size() << " violations";
    for (const Violation& v : report.violations) {
      ADD_FAILURE() << "seed " << seed << " [" << v.epoch << "] " << v.check
                    << ": " << v.detail;
    }
  }
}

TEST(Audit, FaultsWereActuallyInjected) {
  ChaosConfig cfg = quick_config(3);
  cfg.fault_intensity = 0.8;
  cfg.epochs = 4;  // includes an odd (partition) epoch
  Report report = Driver(cfg).run();
  EXPECT_GT(report.injected.burst_dropped, 0);
  EXPECT_GT(report.injected.partition_dropped, 0);
  EXPECT_GT(report.injected.duplicated, 0);
  EXPECT_GT(report.injected.corrupted, 0);
  EXPECT_GT(report.injected.delay_spikes, 0);
  EXPECT_FALSE(report.record.rules.empty());
}

TEST(Audit, HedgeLedgerReconcilesExactly) {
  // A chaotic run with hedging live: every hedge leg must be resolved
  // exactly once (won or cancelled — never both, never neither), no
  // matter how many replies the wire drops, duplicates, or delays. The
  // auditor checks the identity per epoch; this pins it on the final
  // merged ledger too, and proves hedges actually fired.
  ChaosConfig cfg = quick_config(3);
  cfg.fault_intensity = 0.6;
  cfg.adaptive_timeouts = true;
  cfg.hedge_percentile = 0.9;
  Report report = Driver(cfg).run();
  EXPECT_TRUE(report.clean()) << report.violations.size() << " violations";
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << "[" << v.epoch << "] " << v.check << ": " << v.detail;
  }
  const proto::ReliabilityLedger& led = report.reliability;
  EXPECT_GT(led.hedges_launched, 0);
  EXPECT_EQ(led.hedges_launched, led.hedge_won + led.hedge_cancelled);
  EXPECT_GT(led.rtt_samples, 0);
  EXPECT_EQ(led.issued, led.ok + led.faults);
}

TEST(Audit, RunsAreDeterministic) {
  const ChaosConfig cfg = quick_config(5);
  Report a = Driver(cfg).run();
  Report b = Driver(cfg).run();
  EXPECT_EQ(a.record, b.record);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.workload_issued, b.workload_issued);
}

TEST(Audit, SilentCrashIsCaught) {
  ChaosConfig cfg = quick_config(2);
  cfg.silent_crashes = true;
  Report report = Driver(cfg).run();
  ASSERT_FALSE(report.clean())
      << "a broken recovery protocol must not audit clean";
  // A node that vanishes without a failure announcement leaves every
  // survivor with a stale liveness view — the convergence check fires.
  const bool convergence_caught = std::any_of(
      report.violations.begin(), report.violations.end(),
      [](const Violation& v) { return v.check == "status_convergence"; });
  EXPECT_TRUE(convergence_caught);
  // And the schedule record names the silent crash that caused it.
  const bool silent_recorded = std::any_of(
      report.record.ops.begin(), report.record.ops.end(),
      [](const OpRecord& op) { return op.kind == OpKind::kSilentCrash; });
  EXPECT_TRUE(silent_recorded);
}

TEST(Audit, RepairTrafficIsAccounted) {
  ChaosConfig cfg = quick_config(4);
  Report report = Driver(cfg).run();
#if LESSLOG_METRICS_ENABLED
  // Membership ops ran, so files moved: joins reclaim, leavers push,
  // survivors re-insert after crashes.
  if (!report.record.ops.empty()) {
    EXPECT_GT(report.repair_pushes, 0);
  }
#else
  EXPECT_EQ(report.repair_pushes, 0);
#endif
}

}  // namespace
}  // namespace lesslog::chaos
