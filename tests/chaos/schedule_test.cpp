// Chaos schedule generation: config validation, window bounds, and
// determinism of the generated plans.
#include "lesslog/chaos/schedule.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace lesslog::chaos {
namespace {

TEST(ChaosConfig, DefaultsAreValid) {
  EXPECT_NO_THROW(ChaosConfig{}.validate());
}

TEST(ChaosConfig, RejectsBadFields) {
  {
    ChaosConfig cfg;
    cfg.b = cfg.m;  // b must leave room for subtrees
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.nodes = 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.epochs = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.fault_intensity = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.epoch_length = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.get_rate = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
}

TEST(ChaosConfig, RejectsBadReliabilityKnobs) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  {
    ChaosConfig cfg;
    cfg.hedge_percentile = 0.3;  // below the median: must be 0 or [0.5, 1)
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.hedge_percentile = 1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.hedge_percentile = kNan;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.busy_budget = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.busy_refill = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.busy_refill = kNan;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    ChaosConfig cfg;
    cfg.busy_budget = 4;  // positive budget with no refill sheds forever
    cfg.busy_refill = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
}

TEST(ChaosConfig, ReliabilityKnobsAcceptValidValues) {
  ChaosConfig cfg;
  cfg.adaptive_timeouts = true;
  cfg.hedge_percentile = 0.9;
  cfg.suspicion_routing = true;
  cfg.busy_budget = 4;
  cfg.busy_refill = 100.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.hedge_percentile = 0.0;  // hedging off is always legal
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Schedule, WindowsStayInsideTheEpoch) {
  ChaosConfig cfg;
  cfg.fault_intensity = 1.0;
  util::Rng rng(5);
  for (int epoch = 0; epoch < 8; ++epoch) {
    const double now = 100.0 * epoch;
    const proto::FaultPlan plan = make_epoch_plan(cfg, rng, epoch, now);
    EXPECT_NO_THROW(plan.validate());
    for (const proto::FaultRule& r : plan.rules) {
      EXPECT_GE(r.start, now);
      EXPECT_LT(r.stop, now + cfg.epoch_length);
    }
  }
}

TEST(Schedule, ZeroIntensityMeansNoRules) {
  ChaosConfig cfg;
  cfg.fault_intensity = 0.0;
  util::Rng rng(5);
  EXPECT_TRUE(make_epoch_plan(cfg, rng, 0, 0.0).empty());
}

TEST(Schedule, PartitionsOnlyOnOddEpochs) {
  ChaosConfig cfg;
  cfg.bursts = cfg.corruption = cfg.duplicates = cfg.delay_spikes = false;
  cfg.partitions = true;
  util::Rng rng(5);
  const proto::FaultPlan even = make_epoch_plan(cfg, rng, 0, 0.0);
  EXPECT_TRUE(even.rules.empty());
  const proto::FaultPlan odd = make_epoch_plan(cfg, rng, 1, 0.0);
  ASSERT_EQ(odd.rules.size(), 1u);
  EXPECT_EQ(odd.rules[0].kind, proto::FaultKind::kPartition);
  EXPECT_FALSE(odd.rules[0].group.empty());
}

TEST(Schedule, SameSeedSamePlan) {
  ChaosConfig cfg;
  util::Rng a(cfg.seed);
  util::Rng b(cfg.seed);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const proto::FaultPlan pa = make_epoch_plan(cfg, a, epoch, 10.0 * epoch);
    const proto::FaultPlan pb = make_epoch_plan(cfg, b, epoch, 10.0 * epoch);
    EXPECT_EQ(pa.seed, pb.seed);
    EXPECT_EQ(pa.rules, pb.rules);
  }
}

TEST(Schedule, DistinctEpochsGetDistinctInjectorSeeds) {
  ChaosConfig cfg;
  util::Rng rng(cfg.seed);
  const proto::FaultPlan p0 = make_epoch_plan(cfg, rng, 0, 0.0);
  const proto::FaultPlan p1 = make_epoch_plan(cfg, rng, 1, 30.0);
  EXPECT_NE(p0.seed, p1.seed);
}

TEST(Schedule, OpKindNamesAreStable) {
  EXPECT_STREQ(op_kind_name(OpKind::kCrash), "crash");
  EXPECT_STREQ(op_kind_name(OpKind::kRestart), "restart");
  EXPECT_STREQ(op_kind_name(OpKind::kDepart), "depart");
  EXPECT_STREQ(op_kind_name(OpKind::kJoin), "join");
  EXPECT_STREQ(op_kind_name(OpKind::kSilentCrash), "silent_crash");
}

}  // namespace
}  // namespace lesslog::chaos
