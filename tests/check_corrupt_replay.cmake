# Gate for the CLI's corrupt-artifact handling: `lesslog_cli chaos
# --replay <file>` on a damaged artifact must exit 2 (usage/error
# convention) with a diagnosis naming the syntax problem — never crash,
# never exit 0/1 as if the replay ran.
#
# Invoked as a ctest:
#   cmake -DCLI=<lesslog_cli> -DWORK_DIR=<dir> -P check_corrupt_replay.cmake
if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=... -DWORK_DIR=... -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

function(expect_rejection name artifact_body expected_message)
  set(artifact "${WORK_DIR}/corrupt_${name}.json")
  file(WRITE "${artifact}" "${artifact_body}")
  execute_process(
    COMMAND "${CLI}" chaos --replay "${artifact}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
      "${name}: expected exit code 2 on a corrupt artifact, got '${rc}'\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT err MATCHES "chaos artifact")
    message(FATAL_ERROR
      "${name}: error message does not name the chaos artifact\n"
      "stderr: ${err}")
  endif()
  if(NOT err MATCHES "${expected_message}")
    message(FATAL_ERROR
      "${name}: error message lacks the parser diagnosis "
      "'${expected_message}'\nstderr: ${err}")
  endif()
  message(STATUS "${name}: rejected with exit 2 and diagnosis (ok)")
endfunction()

# A bit-flip in a \u escape: the hex-validation path.
expect_rejection(unicode
  "{\"schema\":\"lesslog.chaos\",\"note\":\"\\uZZZZ\"}"
  "u escape")

# A truncated artifact: the generic syntax path, with a byte offset.
expect_rejection(truncated
  "{\"schema\":\"lesslog.chaos\","
  "at byte")
