// Closed-loop self-balancing: peers detect their own overload from local
// counters and shed the hottest file via the logless rule — the paper's
// REPLICATEFILE loop running autonomously inside the swarm.
#include <gtest/gtest.h>

#include <set>

#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/hashing.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

Swarm::Config loop_cfg(int m, std::uint64_t seed) {
  Swarm::Config cfg;
  cfg.m = m;
  cfg.b = 0;
  cfg.nodes = util::space_size(m);
  cfg.seed = seed;
  cfg.net.base_latency = 0.001;
  cfg.net.jitter = 0.0005;
  return cfg;
}

// Drives `rate` requests/s for `duration`, uniformly from all nodes.
void drive_load(Swarm& swarm, FileId f, Pid target, double rate,
                double duration) {
  swarm.engine().poisson_process(rate, duration, [&swarm, f, target] {
    const auto n = util::space_size(swarm.width());
    const Pid at{static_cast<std::uint32_t>(
        swarm.engine().rng().bounded(n))};
    if (swarm.status().is_live(at.value())) swarm.get(f, target, at);
  });
}

TEST(AutoReplication, HotFileGetsSpreadUntilNoPeerOverloads) {
  Swarm swarm(loop_cfg(6, 1));
  const FileId f = swarm.insert_named(0x507F11E, Pid{0});
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  swarm.settle();

  const double capacity = 50.0;  // requests/s
  const double window = 1.0;
  // 800 req/s against a 50 req/s capacity needs ~16 copies.
  drive_load(swarm, f, target, 800.0, 30.0);
  swarm.enable_auto_replication(capacity, window, 30.0);
  swarm.engine().run_until(29.0);

  // Measure the final window: no peer may exceed its budget (allow the
  // stochastic arrivals ~30% slack over the deterministic budget).
  for (std::uint32_t p = 0; p < 64; ++p) swarm.peer(Pid{p}).reset_window();
  swarm.engine().run_until(30.0);
  swarm.settle();
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_LE(swarm.peer(Pid{p}).served(), capacity * window * 1.6)
        << "P(" << p << ") still overloaded";
  }
  EXPECT_GE(swarm.auto_replicas(), 10);
  EXPECT_EQ(swarm.total_faults(), 0);
}

TEST(AutoReplication, IdleSystemShedsNothing) {
  Swarm swarm(loop_cfg(5, 2));
  const FileId f = swarm.insert_named(0x1D1E, Pid{0});
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  swarm.settle();
  drive_load(swarm, f, target, 5.0, 10.0);  // far under capacity
  swarm.enable_auto_replication(50.0, 1.0, 10.0);
  swarm.engine().run_until(10.0);
  swarm.settle();
  EXPECT_EQ(swarm.auto_replicas(), 0);
}

TEST(AutoReplication, FirstShedGoesToChildrenListHead) {
  Swarm swarm(loop_cfg(4, 3));
  // Pin the target to P(4) (find a ψ-key) so the expected placement is the
  // paper's P(5).
  std::uint64_t key = 0;
  while (util::psi_u64(key, 4) != 4) ++key;
  const FileId f = swarm.insert_named(key, Pid{1});
  swarm.settle();

  // Saturate P(4) with direct requests and run one controller window.
  for (int i = 0; i < 200; ++i) swarm.get(f, Pid{4}, Pid{4});
  swarm.settle();
  swarm.enable_auto_replication(50.0, 1.0, 1.5);
  swarm.engine().run_until(2.0);
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{5}).store().has(f));
}

TEST(AutoReplication, SuccessiveWindowsWalkTheChildrenList) {
  Swarm swarm(loop_cfg(4, 4));
  std::uint64_t key = 0;
  while (util::psi_u64(key, 4) != 4) ++key;
  const FileId f = swarm.insert_named(key, Pid{1});
  swarm.settle();

  // Keep only P(4) hot for three windows: each shed walks one step of the
  // children list (P(5), P(6), P(0)) because P(4) remembers its placements.
  swarm.enable_auto_replication(10.0, 1.0, 3.5);
  swarm.engine().poisson_process(300.0, 3.4, [&swarm, f] {
    swarm.get(f, Pid{4}, Pid{4});
  });
  swarm.engine().run_until(4.0);
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{5}).store().has(f));
  EXPECT_TRUE(swarm.peer(Pid{6}).store().has(f));
  EXPECT_TRUE(swarm.peer(Pid{0}).store().has(f));
}

TEST(AutoReplication, FlashCrowdRampDownPrunesColdReplicas) {
  Swarm swarm(loop_cfg(6, 6));
  const FileId f = swarm.insert_named(0xF1A5, Pid{0});
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  swarm.settle();

  // Phase 1 (0-15 s): flash crowd. Phase 2 (15-40 s): near silence.
  drive_load(swarm, f, target, 700.0, 15.0);
  swarm.engine().at(15.0, [&swarm, f, target] {
    swarm.engine().poisson_process(2.0, 25.0,
                                   [&swarm, f, target] {
                                     swarm.get(f, target, Pid{1});
                                   });
  });
  swarm.enable_auto_replication(/*capacity=*/40.0, /*window=*/1.0,
                                /*stop_at=*/40.0,
                                /*removal_threshold=*/1.0);
  swarm.engine().run_until(15.0);
  const std::int64_t replicas_at_peak = swarm.auto_replicas();
  EXPECT_GT(replicas_at_peak, 5);

  swarm.engine().run_until(40.0);
  swarm.settle();
  // The crowd left: cold replicas were pruned...
  EXPECT_GT(swarm.auto_removals(), replicas_at_peak / 2);
  // ...and the file itself survives (inserted copy is never pruned).
  GetResult result;
  swarm.get(f, target, Pid{9}, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_TRUE(result.ok);
}

TEST(AutoReplication, RemovalDisabledByDefault) {
  Swarm swarm(loop_cfg(5, 7));
  const FileId f = swarm.insert_named(0xD15, Pid{0});
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  swarm.settle();
  drive_load(swarm, f, target, 400.0, 5.0);
  swarm.enable_auto_replication(30.0, 1.0, 20.0);  // no threshold
  swarm.engine().run_until(20.0);
  swarm.settle();
  EXPECT_GT(swarm.auto_replicas(), 0);
  EXPECT_EQ(swarm.auto_removals(), 0);
}

TEST(AutoReplication, FaultTolerantLoopStaysInsideSubtrees) {
  Swarm::Config cfg = loop_cfg(6, 5);
  cfg.b = 2;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xF70BEEFULL, Pid{0});
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  swarm.settle();

  drive_load(swarm, f, target, 600.0, 20.0);
  swarm.enable_auto_replication(30.0, 1.0, 20.0);
  swarm.engine().run_until(20.0);
  swarm.settle();
  EXPECT_GT(swarm.auto_replicas(), 0);
  EXPECT_EQ(swarm.total_faults(), 0);

  // Every replica lives in the same subtree as the holder that shed it:
  // copies of f at any node must share that node's requesters' subtree.
  const core::LookupTree tree(6, target);
  const core::SubtreeView view(tree, 2);
  std::set<std::uint32_t> holder_subtrees;
  for (std::uint32_t p = 0; p < 64; ++p) {
    if (swarm.peer(Pid{p}).store().has(f)) {
      holder_subtrees.insert(view.subtree_id(Pid{p}));
    }
  }
  // All four subtrees got their inserted copy at minimum.
  EXPECT_EQ(holder_subtrees.size(), 4u);

  // And the final window leaves nobody overloaded.
  for (std::uint32_t p = 0; p < 64; ++p) {
    swarm.peer(Pid{p}).reset_window();
  }
  // One more quiet confirmation window under load would need new events;
  // the convergence assertion above suffices for the FT loop.
}

}  // namespace
}  // namespace lesslog::proto
