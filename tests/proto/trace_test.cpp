#include "lesslog/proto/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lesslog/util/hashing.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

Swarm::Config traced_cfg() {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.net.base_latency = 0.01;
  cfg.net.jitter = 0.0;
  return cfg;
}

TEST(Trace, RecordsThePaperGetSequence) {
  Swarm swarm(traced_cfg());
  Trace trace(swarm);

  // Find a ψ-key targeting P(4) and fetch it from P(8): the canonical
  // P(8) -> P(0) -> P(4) walk must appear as GET records.
  std::uint64_t key = 0;
  while (util::psi_u64(key, 4) != 4) ++key;
  const FileId f = swarm.insert_named(key, Pid{2});
  swarm.settle();
  trace.clear();

  swarm.get(f, Pid{4}, Pid{8});
  swarm.settle();

  const std::vector<TraceRecord> gets = trace.of_type(MsgType::kGetRequest);
  ASSERT_EQ(gets.size(), 2u);  // 8->0 and 0->4 (entry is a local upcall)
  EXPECT_EQ(gets[0].message.from, Pid{8});
  EXPECT_EQ(gets[0].message.to, Pid{0});
  EXPECT_EQ(gets[1].message.from, Pid{0});
  EXPECT_EQ(gets[1].message.to, Pid{4});
  ASSERT_EQ(trace.count(MsgType::kGetReply), 1u);
  EXPECT_TRUE(trace.of_type(MsgType::kGetReply)[0].message.ok);
  // Timestamps ascend with the 10 ms links.
  EXPECT_LT(gets[0].time, gets[1].time);
}

TEST(Trace, CountsBroadcastFanout) {
  Swarm swarm(traced_cfg());
  Trace trace(swarm);
  swarm.depart(Pid{5});
  swarm.settle();
  // 15 surviving peers hear the status announcement.
  EXPECT_EQ(trace.count(MsgType::kStatusAnnounce), 15u);
}

TEST(Trace, RenderMentionsTypesAndNodes) {
  Swarm swarm(traced_cfg());
  Trace trace(swarm);
  const FileId f = swarm.insert_named(0x77, Pid{3});
  swarm.settle();
  const std::string text = trace.render();
  EXPECT_NE(text.find("INSERT"), std::string::npos);
  EXPECT_NE(text.find("INS_ACK"), std::string::npos);
  EXPECT_NE(text.find("P(3)"), std::string::npos);
  (void)f;
}

TEST(Trace, JsonlIsOneObjectPerRecord) {
  Swarm swarm(traced_cfg());
  Trace trace(swarm);
  swarm.insert_named(0x88, Pid{1});
  swarm.settle();
  std::ostringstream out;
  trace.write_jsonl(out);
  const std::string text = out.str();
  const auto lines = static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, trace.size());
  EXPECT_NE(text.find("\"type\":\"INSERT\""), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(Trace, ClearAndReuse) {
  Swarm swarm(traced_cfg());
  Trace trace(swarm);
  swarm.insert_named(0x99, Pid{1});
  swarm.settle();
  EXPECT_GT(trace.size(), 0u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  swarm.insert_named(0x9A, Pid{1});
  swarm.settle();
  EXPECT_GT(trace.size(), 0u);
}

}  // namespace
}  // namespace lesslog::proto
