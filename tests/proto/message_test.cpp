#include "lesslog/proto/message.hpp"

#include <gtest/gtest.h>

namespace lesslog::proto {
namespace {

Message sample() {
  Message m;
  m.request_id = 0xDEADBEEFCAFE0001ULL;
  m.type = MsgType::kGetRequest;
  m.from = core::Pid{17};
  m.to = core::Pid{42};
  m.requester = core::Pid{17};
  m.subject = core::Pid{1023};
  m.file = core::FileId{0x123456789ABCDEFULL};
  m.version = 7;
  m.hop_count = 3;
  m.ok = true;
  return m;
}

TEST(Wire, EncodedSizeIsFixed) {
  EXPECT_EQ(encode(sample()).size(), kWireSize);
  EXPECT_EQ(encode(Message{}).size(), kWireSize);
}

TEST(Wire, RoundTripsAllFields) {
  const Message m = sample();
  const std::optional<Message> back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Wire, RoundTripsEveryType) {
  for (const MsgType t :
       {MsgType::kGetRequest, MsgType::kGetReply, MsgType::kInsertRequest,
        MsgType::kInsertAck, MsgType::kCreateReplica, MsgType::kUpdatePush,
        MsgType::kStatusAnnounce}) {
    Message m = sample();
    m.type = t;
    const std::optional<Message> back = decode(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, t);
  }
}

TEST(Wire, RejectsWrongSize) {
  std::vector<std::uint8_t> bytes = encode(sample());
  bytes.pop_back();
  EXPECT_EQ(decode(bytes), std::nullopt);
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_EQ(decode(bytes), std::nullopt);
}

TEST(Wire, RejectsInvalidTypeTag) {
  std::vector<std::uint8_t> bytes = encode(sample());
  bytes[8] = 0;  // type tag sits after the 8-byte request id
  EXPECT_EQ(decode(bytes), std::nullopt);
  bytes[8] = 200;
  EXPECT_EQ(decode(bytes), std::nullopt);
}

TEST(Wire, LittleEndianLayout) {
  Message m;
  m.request_id = 0x0102030405060708ULL;
  const std::vector<std::uint8_t> bytes = encode(m);
  EXPECT_EQ(bytes[0], 0x08);
  EXPECT_EQ(bytes[7], 0x01);
}

TEST(Wire, TypeNames) {
  EXPECT_STREQ(type_name(MsgType::kGetRequest), "GET");
  EXPECT_STREQ(type_name(MsgType::kStatusAnnounce), "STATUS");
}

}  // namespace
}  // namespace lesslog::proto
