#include "lesslog/proto/message.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "lesslog/util/rng.hpp"

namespace lesslog::proto {
namespace {

constexpr MsgType kAllTypes[] = {
    MsgType::kGetRequest,  MsgType::kGetReply,      MsgType::kInsertRequest,
    MsgType::kInsertAck,   MsgType::kCreateReplica, MsgType::kUpdatePush,
    MsgType::kStatusAnnounce, MsgType::kFilePush,   MsgType::kReclaim,
    MsgType::kFilePushAck, MsgType::kPing,          MsgType::kPingAck,
    MsgType::kPingReq,     MsgType::kBusy};

Message sample() {
  Message m;
  m.request_id = 0xDEADBEEFCAFE0001ULL;
  m.type = MsgType::kGetRequest;
  m.from = core::Pid{17};
  m.to = core::Pid{42};
  m.requester = core::Pid{17};
  m.subject = core::Pid{1023};
  m.file = core::FileId{0x123456789ABCDEFULL};
  m.version = 7;
  m.hop_count = 3;
  m.ok = true;
  return m;
}

// Encodes into a fresh heap vector — handy for tests that mutate bytes.
std::vector<std::uint8_t> wire_bytes(const Message& m) {
  WireBuffer buf{};
  encode_into(m, buf);
  return {buf.begin(), buf.end()};
}

TEST(Wire, EncodedSizeIsFixed) {
  EXPECT_EQ(wire_bytes(sample()).size(), kWireSize);
  EXPECT_EQ(wire_bytes(Message{}).size(), kWireSize);
}

TEST(Wire, RoundTripsAllFields) {
  const Message m = sample();
  const std::optional<Message> back = decode(wire_bytes(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(Wire, RoundTripsEveryType) {
  for (const MsgType t :
       {MsgType::kGetRequest, MsgType::kGetReply, MsgType::kInsertRequest,
        MsgType::kInsertAck, MsgType::kCreateReplica, MsgType::kUpdatePush,
        MsgType::kStatusAnnounce}) {
    Message m = sample();
    m.type = t;
    const std::optional<Message> back = decode(wire_bytes(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, t);
  }
}

TEST(Wire, RejectsWrongSize) {
  std::vector<std::uint8_t> bytes = wire_bytes(sample());
  bytes.pop_back();
  EXPECT_EQ(decode(bytes), std::nullopt);
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_EQ(decode(bytes), std::nullopt);
}

TEST(Wire, RejectsInvalidTypeTag) {
  std::vector<std::uint8_t> bytes = wire_bytes(sample());
  bytes[8] = 0;  // type tag sits after the 8-byte request id
  EXPECT_EQ(decode(bytes), std::nullopt);
  bytes[8] = 200;
  EXPECT_EQ(decode(bytes), std::nullopt);
}

TEST(Wire, LittleEndianLayout) {
  Message m;
  m.request_id = 0x0102030405060708ULL;
  const std::vector<std::uint8_t> bytes = wire_bytes(m);
  EXPECT_EQ(bytes[0], 0x08);
  EXPECT_EQ(bytes[7], 0x01);
}

TEST(Wire, TypeNames) {
  EXPECT_STREQ(type_name(MsgType::kGetRequest), "GET");
  EXPECT_STREQ(type_name(MsgType::kStatusAnnounce), "STATUS");
}

// -- Round-trip property tests for the fixed-buffer wire path ------------

TEST(WireProperty, RandomMessagesRoundTripBitExact) {
  util::Rng rng(0x20260806ULL);
  for (int iter = 0; iter < 2000; ++iter) {
    Message m;
    m.request_id = rng();
    m.type = kAllTypes[rng.bounded(std::size(kAllTypes))];
    m.from = core::Pid{static_cast<std::uint32_t>(rng())};
    m.to = core::Pid{static_cast<std::uint32_t>(rng())};
    m.requester = core::Pid{static_cast<std::uint32_t>(rng())};
    m.subject = core::Pid{static_cast<std::uint32_t>(rng())};
    m.file = core::FileId{rng()};
    m.version = rng();
    m.hop_count = static_cast<std::uint8_t>(rng());
    m.ok = (rng() & 1) != 0;

    const std::vector<std::uint8_t> bytes = wire_bytes(m);
    const std::optional<Message> back = decode(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
    // Re-encoding the decoded message reproduces the exact bytes.
    EXPECT_EQ(wire_bytes(*back), bytes);
  }
}

TEST(WireProperty, MaxValueFieldsRoundTrip) {
  Message m;
  m.request_id = std::numeric_limits<std::uint64_t>::max();
  m.type = MsgType::kFilePushAck;
  m.from = core::Pid{std::numeric_limits<std::uint32_t>::max()};
  m.to = core::Pid{std::numeric_limits<std::uint32_t>::max()};
  m.requester = core::Pid{std::numeric_limits<std::uint32_t>::max()};
  m.subject = core::Pid{std::numeric_limits<std::uint32_t>::max()};
  m.file = core::FileId{std::numeric_limits<std::uint64_t>::max()};
  m.version = std::numeric_limits<std::uint64_t>::max();
  m.hop_count = std::numeric_limits<std::uint8_t>::max();
  m.ok = true;
  const std::optional<Message> back = decode(wire_bytes(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(WireProperty, RandomMessagesRoundTripThroughWireBuffer) {
  util::Rng rng(0xB17E5ULL);
  for (int iter = 0; iter < 200; ++iter) {
    Message m;
    m.request_id = rng();
    m.type = kAllTypes[rng.bounded(std::size(kAllTypes))];
    m.from = core::Pid{static_cast<std::uint32_t>(rng())};
    m.to = core::Pid{static_cast<std::uint32_t>(rng())};
    m.requester = core::Pid{static_cast<std::uint32_t>(rng())};
    m.subject = core::Pid{static_cast<std::uint32_t>(rng())};
    m.file = core::FileId{rng()};
    m.version = rng();
    m.hop_count = static_cast<std::uint8_t>(rng());
    m.ok = (rng() & 1) != 0;

    WireBuffer buf{};
    encode_into(m, buf);
    // The array form decodes identically to a vector copy of the bytes
    // (decode accepts any contiguous range).
    const std::vector<std::uint8_t> heap(buf.begin(), buf.end());
    const std::optional<Message> back = decode(buf);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
    EXPECT_EQ(decode(buf), decode(heap));
  }
}

TEST(WireProperty, EveryInvalidTypeTagRejected) {
  std::vector<std::uint8_t> bytes = wire_bytes(sample());
  for (int tag = 0; tag <= 255; ++tag) {
    bytes[8] = static_cast<std::uint8_t>(tag);
    const bool valid = tag >= 1 && tag <= 14;
    EXPECT_EQ(decode(bytes).has_value(), valid) << "tag " << tag;
  }
}

TEST(WireProperty, EveryWrongLengthRejected) {
  const std::vector<std::uint8_t> bytes = wire_bytes(sample());
  for (std::size_t len = 0; len <= kWireSize + 8; ++len) {
    std::vector<std::uint8_t> trimmed(bytes);
    trimmed.resize(len, 0);
    if (len == kWireSize) {
      EXPECT_TRUE(decode(trimmed).has_value());
    } else {
      EXPECT_EQ(decode(trimmed), std::nullopt) << "length " << len;
    }
  }
}

}  // namespace
}  // namespace lesslog::proto
