// Client reliability machinery: timeouts, retry budgets, generation
// guards, and latency accounting, exercised through controlled network
// conditions.
#include "lesslog/proto/client.hpp"

#include <gtest/gtest.h>

#include "lesslog/proto/swarm.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

TEST(Client, TotalBlackoutFaultsAfterRetryBudget) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.net.drop_probability = 1.0;  // nothing ever arrives
  cfg.client.timeout = 0.1;
  cfg.client.max_retries = 3;
  Swarm swarm(cfg);

  GetResult result;
  bool done = false;
  // Request a file from another node so the first leg needs the network.
  swarm.get(FileId{1}, Pid{4}, Pid{8}, [&](const GetResult& r) {
    result = r;
    done = true;
  });
  swarm.settle();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.retries, 3);
  // Latency = (max_retries + 1) timeouts.
  EXPECT_NEAR(result.latency, 0.4, 1e-9);
  EXPECT_EQ(swarm.total_faults(), 1);
}

TEST(Client, CallbackFiresExactlyOnce) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.client.timeout = 0.01;  // shorter than the 10ms+ round trip
  cfg.client.max_retries = 4;
  cfg.net.base_latency = 0.02;
  cfg.net.jitter = 0.0;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xCAFE, Pid{0});
  swarm.settle();

  // The aggressive timeout fires retries while replies are in flight:
  // duplicate replies arrive, but the callback must run exactly once.
  int calls = 0;
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  const Pid requester{target.value() == 3u ? 5u : 3u};
  swarm.get(f, target, requester, [&](const GetResult&) { ++calls; });
  swarm.settle();
  EXPECT_EQ(calls, 1);
}

TEST(Client, LatencyRecordsOnlySuccesses) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.client.timeout = 0.05;
  cfg.client.max_retries = 1;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xBEAD, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  const Pid requester{target.value() == 2u ? 6u : 2u};

  swarm.get(f, target, requester);                 // hit
  swarm.get(FileId{0x404}, Pid{9}, requester);     // miss -> fault
  swarm.settle();
  EXPECT_EQ(swarm.client(requester).latencies().size(), 1u);
  EXPECT_EQ(swarm.client(requester).faults(), 1);
  EXPECT_EQ(swarm.client(requester).requests_issued(), 2);
}

TEST(Client, InsertRetriesUntilAcked) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.seed = 12;
  cfg.net.drop_probability = 0.5;
  cfg.client.timeout = 0.05;
  cfg.client.max_retries = 12;
  Swarm swarm(cfg);

  bool ok = false;
  swarm.client(Pid{2}).insert(FileId{0xAB}, Pid{7}, Pid{7},
                              [&ok](bool acked) { ok = acked; });
  swarm.settle();
  // (1-0.5^2)^13 failing every leg is ~1e-2 per leg pair; with 13 legs the
  // chance all fail is ~2^-26 — deterministic seed makes this stable.
  EXPECT_TRUE(ok);
  EXPECT_TRUE(swarm.peer(Pid{7}).store().has(FileId{0xAB}));
}

TEST(Client, InsertBlackoutReportsFailure) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.net.drop_probability = 1.0;
  cfg.client.timeout = 0.02;
  cfg.client.max_retries = 2;
  Swarm swarm(cfg);
  bool ok = true;
  swarm.client(Pid{2}).insert(FileId{0xAC}, Pid{7}, Pid{7},
                              [&ok](bool acked) { ok = acked; });
  swarm.settle();
  EXPECT_FALSE(ok);
}

TEST(Client, RequestIdsAreStripedPerClient) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0x11, Pid{0});
  swarm.settle();
  // Concurrent gets from many clients: all complete despite shared wires.
  int completions = 0;
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  for (std::uint32_t k = 0; k < 16; ++k) {
    swarm.get(f, target, Pid{k},
              [&completions](const GetResult& r) {
                if (r.ok) ++completions;
              });
  }
  swarm.settle();
  EXPECT_EQ(completions, 16);
}

}  // namespace
}  // namespace lesslog::proto
