#include "lesslog/proto/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lesslog::proto {
namespace {

Message to(std::uint32_t dest) {
  Message m;
  m.type = MsgType::kGetRequest;
  m.to = core::Pid{dest};
  return m;
}

TEST(Network, DeliversAfterLatency) {
  sim::Engine engine(1);
  Network net(engine, {.base_latency = 0.02, .jitter = 0.0});
  std::vector<double> arrivals;
  net.attach(core::Pid{3}, [&](const Message&) {
    arrivals.push_back(engine.now());
  });
  net.send(to(3));
  engine.run_until(1.0);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(arrivals[0], 0.02);
  EXPECT_EQ(net.messages_sent(), 1);
  EXPECT_EQ(net.bytes_sent(), static_cast<std::int64_t>(kWireSize));
}

TEST(Network, JitterBoundsLatency) {
  sim::Engine engine(2);
  Network net(engine, {.base_latency = 0.01, .jitter = 0.01});
  std::vector<double> arrivals;
  net.attach(core::Pid{0}, [&](const Message&) {
    arrivals.push_back(engine.now());
  });
  double sent_at = 0.0;
  for (int i = 0; i < 200; ++i) {
    net.send(to(0));
  }
  engine.run_until(10.0);
  ASSERT_EQ(arrivals.size(), 200u);
  for (const double t : arrivals) {
    EXPECT_GE(t - sent_at, 0.01);
    EXPECT_LT(t - sent_at, 0.02);
  }
}

TEST(Network, MessageContentSurvivesTheWire) {
  sim::Engine engine(3);
  Network net(engine, {});
  Message received;
  net.attach(core::Pid{9}, [&](const Message& m) { received = m; });
  Message sent = to(9);
  sent.file = core::FileId{777};
  sent.version = 5;
  sent.hop_count = 2;
  net.send(sent);
  engine.run_until(1.0);
  EXPECT_EQ(received, sent);
}

TEST(Network, DetachedPeerIsUndeliverable) {
  sim::Engine engine(4);
  Network net(engine, {});
  int delivered = 0;
  net.attach(core::Pid{1}, [&](const Message&) { ++delivered; });
  net.send(to(1));
  net.detach(core::Pid{1});
  engine.run_until(1.0);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.undeliverable(), 1);
}

TEST(Network, NeverAttachedPeerIsUndeliverable) {
  sim::Engine engine(5);
  Network net(engine, {});
  net.send(to(200));
  engine.run_until(1.0);
  EXPECT_EQ(net.undeliverable(), 1);
}

TEST(Network, DropProbabilityLosesRoughlyThatFraction) {
  sim::Engine engine(6);
  Network net(engine, {.base_latency = 0.001, .jitter = 0.0,
                       .drop_probability = 0.3});
  int delivered = 0;
  net.attach(core::Pid{0}, [&](const Message&) { ++delivered; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) net.send(to(0));
  engine.run_until(10.0);
  EXPECT_EQ(net.dropped(), n - delivered);
  EXPECT_NEAR(static_cast<double>(net.dropped()) / n, 0.3, 0.05);
}

TEST(Network, GeographyScalesLatencyWithDistance) {
  sim::Engine engine(8);
  Network net(engine, {.base_latency = 0.001, .jitter = 0.0});
  net.enable_geography({.slots = 16, .seed = 3, .latency_per_unit = 0.1});

  // Distances are symmetric, zero to self, and obey the triangle
  // inequality on a few sampled triples.
  for (std::uint32_t a = 0; a < 16; ++a) {
    EXPECT_DOUBLE_EQ(net.distance(core::Pid{a}, core::Pid{a}), 0.0);
    for (std::uint32_t b = 0; b < 16; ++b) {
      EXPECT_DOUBLE_EQ(net.distance(core::Pid{a}, core::Pid{b}),
                       net.distance(core::Pid{b}, core::Pid{a}));
      for (std::uint32_t c = 0; c < 16; c += 5) {
        EXPECT_LE(net.distance(core::Pid{a}, core::Pid{b}),
                  net.distance(core::Pid{a}, core::Pid{c}) +
                      net.distance(core::Pid{c}, core::Pid{b}) + 1e-12);
      }
    }
  }

  // Delivery time equals the link latency.
  double arrival = -1.0;
  net.attach(core::Pid{7}, [&](const Message&) { arrival = engine.now(); });
  Message m = to(7);
  m.from = core::Pid{2};
  net.send(m);
  engine.run_until(1.0);
  EXPECT_NEAR(arrival, net.link_latency(core::Pid{2}, core::Pid{7}), 1e-12);
  EXPECT_GT(arrival, 0.001);  // base plus a positive geographic component
}

TEST(Network, GeographyIsDeterministicPerSeed) {
  sim::Engine e1(1);
  sim::Engine e2(2);
  Network a(e1, {});
  Network b(e2, {});
  a.enable_geography({.slots = 8, .seed = 5});
  b.enable_geography({.slots = 8, .seed = 5});
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint32_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(a.distance(core::Pid{i}, core::Pid{j}),
                       b.distance(core::Pid{i}, core::Pid{j}));
    }
  }
}

TEST(Network, ReattachReplacesHandler) {
  sim::Engine engine(7);
  Network net(engine, {});
  int first = 0;
  int second = 0;
  net.attach(core::Pid{4}, [&](const Message&) { ++first; });
  net.attach(core::Pid{4}, [&](const Message&) { ++second; });
  net.send(to(4));
  engine.run_until(1.0);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace lesslog::proto
