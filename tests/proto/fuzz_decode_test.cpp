// Fuzz-style robustness tests for the wire decoder: arbitrary byte
// buffers must either decode into a message that re-encodes to the same
// bytes, or be rejected — never crash, never read out of bounds.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "lesslog/proto/message.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::proto {
namespace {

std::vector<std::uint8_t> wire_bytes(const Message& m) {
  WireBuffer buf{};
  encode_into(m, buf);
  return {buf.begin(), buf.end()};
}

TEST(FuzzDecode, RandomBuffersNeverCrash) {
  util::Rng rng(0xF022);
  int accepted = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t size = trial % 3 == 0
                                 ? kWireSize
                                 : static_cast<std::size_t>(rng.bounded(64));
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
    const std::optional<Message> m = decode(bytes);
    if (!m.has_value()) continue;
    ++accepted;
    // Accepted buffers must round-trip exactly.
    EXPECT_EQ(wire_bytes(*m), bytes);
  }
  // Correct-size buffers with a valid type tag (14/256) do get accepted.
  EXPECT_GT(accepted, 0);
}

TEST(FuzzDecode, AllSizesUpToTwiceWireSizeAreSafe) {
  util::Rng rng(0xF023);
  for (std::size_t size = 0; size <= 2 * kWireSize; ++size) {
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
    const std::optional<Message> m = decode(bytes);
    if (size != kWireSize) {
      EXPECT_EQ(m, std::nullopt) << "size " << size;
    }
  }
}

// A valid frame for the property tests below: every field populated with
// bits from `rng`, covering the whole tag range 1..14 (kGetRequest..kBusy).
Message random_message(util::Rng& rng) {
  Message m;
  m.request_id = rng();
  m.type = static_cast<MsgType>(1 + rng.bounded(14));
  m.from = core::Pid{static_cast<std::uint32_t>(rng())};
  m.to = core::Pid{static_cast<std::uint32_t>(rng())};
  m.requester = core::Pid{static_cast<std::uint32_t>(rng())};
  m.subject = core::Pid{static_cast<std::uint32_t>(rng())};
  m.file = core::FileId{rng()};
  m.version = rng();
  m.hop_count = static_cast<std::uint8_t>(rng.bounded(256));
  m.ok = rng.bernoulli(0.5);
  return m;
}

// Exhaustive truncation property: EVERY prefix of a valid frame
// (lengths 0..42) must be rejected — a socket read that delivers a
// partial frame can never produce a message, regardless of content.
TEST(FuzzDecode, EveryTruncationOfValidFramesIsRejected) {
  util::Rng rng(0xF025);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<std::uint8_t> full = wire_bytes(random_message(rng));
    ASSERT_EQ(full.size(), kWireSize);
    for (std::size_t len = 0; len < kWireSize; ++len) {
      const std::span<const std::uint8_t> prefix(full.data(), len);
      EXPECT_EQ(decode(prefix), std::nullopt)
          << "trial " << trial << " truncated to " << len;
    }
  }
}

// Oversized property: a valid frame with ANY number of trailing bytes
// (1..512) appended must be rejected — coalesced reads that hand decode
// more than one frame's worth of bytes never silently truncate.
TEST(FuzzDecode, EveryOversizedBufferIsRejected) {
  util::Rng rng(0xF026);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> bytes = wire_bytes(random_message(rng));
    for (std::size_t extra = 1; extra <= 512; ++extra) {
      bytes.push_back(static_cast<std::uint8_t>(rng.bounded(256)));
      EXPECT_EQ(decode(bytes), std::nullopt)
          << "trial " << trial << " oversized by " << extra;
    }
  }
}

// Bit-flip property, exhaustive over positions: flipping any single bit
// of a valid frame yields a buffer that either (a) decodes and
// re-encodes byte-identically — the flip landed in a don't-care-free
// field and produced another valid frame — or (b) is rejected. Nothing
// in between: no accepted frame may disagree with its own re-encoding,
// so a socket byte-flip can never smuggle unparsed bits through.
TEST(FuzzDecode, EverySingleBitFlipRoundTripsOrRejects) {
  util::Rng rng(0xF027);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<std::uint8_t> base = wire_bytes(random_message(rng));
    for (std::size_t byte = 0; byte < kWireSize; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = base;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        const std::optional<Message> m = decode(flipped);
        if (m.has_value()) {
          EXPECT_EQ(wire_bytes(*m), flipped)
              << "trial " << trial << " byte " << byte << " bit " << bit;
        }
        // else: rejected — the counted-drop path (Network::deliver
        // bumps corrupted_); nothing to assert here beyond not crashing.
      }
    }
  }
}

// Two-bit flips across field boundaries (tag+flag, the two validated
// bytes, plus random pairs): same accept-implies-round-trip contract.
TEST(FuzzDecode, RandomDoubleBitFlipsRoundTripOrReject) {
  util::Rng rng(0xF028);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> bytes = wire_bytes(random_message(rng));
    for (int flips = 0; flips < 2; ++flips) {
      const std::size_t pos = rng.bounded(kWireSize * 8);
      bytes[pos / 8] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    }
    const std::optional<Message> m = decode(bytes);
    if (m.has_value()) {
      EXPECT_EQ(wire_bytes(*m), bytes) << "trial " << trial;
    }
  }
}

TEST(FuzzDecode, EncodeOfRandomMessagesRoundTrips) {
  util::Rng rng(0xF024);
  for (int trial = 0; trial < 5000; ++trial) {
    Message m;
    m.request_id = rng();
    m.type = static_cast<MsgType>(1 + rng.bounded(14));
    m.from = core::Pid{static_cast<std::uint32_t>(rng())};
    m.to = core::Pid{static_cast<std::uint32_t>(rng())};
    m.requester = core::Pid{static_cast<std::uint32_t>(rng())};
    m.subject = core::Pid{static_cast<std::uint32_t>(rng())};
    m.file = core::FileId{rng()};
    m.version = rng();
    m.hop_count = static_cast<std::uint8_t>(rng.bounded(256));
    m.ok = rng.bernoulli(0.5);
    const std::optional<Message> back = decode(wire_bytes(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

}  // namespace
}  // namespace lesslog::proto
