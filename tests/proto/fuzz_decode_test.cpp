// Fuzz-style robustness tests for the wire decoder: arbitrary byte
// buffers must either decode into a message that re-encodes to the same
// bytes, or be rejected — never crash, never read out of bounds.
#include <gtest/gtest.h>

#include "lesslog/proto/message.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::proto {
namespace {

std::vector<std::uint8_t> wire_bytes(const Message& m) {
  WireBuffer buf{};
  encode_into(m, buf);
  return {buf.begin(), buf.end()};
}

TEST(FuzzDecode, RandomBuffersNeverCrash) {
  util::Rng rng(0xF022);
  int accepted = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t size = trial % 3 == 0
                                 ? kWireSize
                                 : static_cast<std::size_t>(rng.bounded(64));
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
    const std::optional<Message> m = decode(bytes);
    if (!m.has_value()) continue;
    ++accepted;
    // Accepted buffers must round-trip exactly.
    EXPECT_EQ(wire_bytes(*m), bytes);
  }
  // Correct-size buffers with a valid type tag (13/256) do get accepted.
  EXPECT_GT(accepted, 0);
}

TEST(FuzzDecode, AllSizesUpToTwiceWireSizeAreSafe) {
  util::Rng rng(0xF023);
  for (std::size_t size = 0; size <= 2 * kWireSize; ++size) {
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
    const std::optional<Message> m = decode(bytes);
    if (size != kWireSize) {
      EXPECT_EQ(m, std::nullopt) << "size " << size;
    }
  }
}

TEST(FuzzDecode, EncodeOfRandomMessagesRoundTrips) {
  util::Rng rng(0xF024);
  for (int trial = 0; trial < 5000; ++trial) {
    Message m;
    m.request_id = rng();
    m.type = static_cast<MsgType>(1 + rng.bounded(13));
    m.from = core::Pid{static_cast<std::uint32_t>(rng())};
    m.to = core::Pid{static_cast<std::uint32_t>(rng())};
    m.requester = core::Pid{static_cast<std::uint32_t>(rng())};
    m.subject = core::Pid{static_cast<std::uint32_t>(rng())};
    m.file = core::FileId{rng()};
    m.version = rng();
    m.hop_count = static_cast<std::uint8_t>(rng.bounded(256));
    m.ok = rng.bernoulli(0.5);
    const std::optional<Message> back = decode(wire_bytes(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

}  // namespace
}  // namespace lesslog::proto
