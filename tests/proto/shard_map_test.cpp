// ShardMap — the PID→shard assignment seam behind ShardRouter and
// ShardedSwarm. Three pinned properties:
//   1. the range map is exactly the legacy contiguous partition
//      (p / ceil(2^m / S)) the sharded swarm shipped with — swapping the
//      hard-coded division for the seam changed nothing;
//   2. both maps are total, deterministic value types;
//   3. the subtree map's reason to exist: over every physical lookup
//      tree, it never cuts more parent/child edges than the range map,
//      and for power-of-two S it cuts at most S - 1 (the spine near the
//      root) while the range map cuts edges at every level.
#include "lesslog/proto/shard_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lesslog/core/ids.hpp"
#include "lesslog/core/virtual_tree.hpp"
#include "lesslog/util/bits.hpp"

namespace lesslog::proto {
namespace {

TEST(ShardMap, RangeIsTheLegacyContiguousPartition) {
  for (int m = 1; m <= 8; ++m) {
    const std::uint32_t n = util::space_size(m);
    for (std::uint32_t shards = 1; shards <= n; ++shards) {
      const ShardMap map(ShardMap::Kind::kRange, m, shards);
      const std::uint32_t block = (n + shards - 1u) / shards;
      for (std::uint32_t p = 0; p < n; ++p) {
        ASSERT_EQ(map.shard_of(core::Pid{p}), p / block)
            << "m=" << m << " S=" << shards << " p=" << p;
      }
    }
  }
}

TEST(ShardMap, SubtreeIsModuloAndTotal) {
  for (int m = 1; m <= 8; ++m) {
    const std::uint32_t n = util::space_size(m);
    for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
      if (shards > n) continue;
      const ShardMap map(ShardMap::Kind::kSubtree, m, shards);
      std::vector<bool> hit(shards, false);
      for (std::uint32_t p = 0; p < n; ++p) {
        const std::size_t s = map.shard_of(core::Pid{p});
        ASSERT_EQ(s, p % shards);
        ASSERT_LT(s, shards);
        hit[s] = true;
      }
      for (std::uint32_t s = 0; s < shards; ++s) {
        EXPECT_TRUE(hit[s]) << "shard " << s << " owns no PID";
      }
    }
  }
}

TEST(ShardMap, IsADeterministicValueType) {
  const ShardMap a(ShardMap::Kind::kSubtree, 10, 4);
  const ShardMap b(ShardMap::Kind::kSubtree, 10, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, ShardMap(ShardMap::Kind::kRange, 10, 4));
  for (std::uint32_t p = 0; p < util::space_size(10); ++p) {
    EXPECT_EQ(a.shard_of(core::Pid{p}), b.shard_of(core::Pid{p}));
  }
  // Default construction is the single-shard identity.
  const ShardMap identity;
  EXPECT_EQ(identity.shards(), 1u);
  EXPECT_EQ(identity.shard_of(core::Pid{0}), 0u);
}

/// Counts parent/child edges of the physical lookup tree rooted at
/// `root` whose two endpoints land on different shards.
std::uint32_t crossing_edges(const ShardMap& map, int m, core::Pid root) {
  const core::VirtualTree tree(m);
  const core::IdMapper ids(m, root);
  std::uint32_t crossing = 0;
  for (std::uint32_t v = 0; v < util::space_size(m); ++v) {
    const core::Vid vid{v};
    if (tree.is_root(vid)) continue;
    const core::Pid child = ids.pid_of(vid);
    const core::Pid parent = ids.pid_of(tree.parent(vid));
    if (map.shard_of(child) != map.shard_of(parent)) ++crossing;
  }
  return crossing;
}

TEST(ShardMap, SubtreeNeverCutsMoreTreeEdgesThanRange) {
  // The regression the locality map exists for, checked over EVERY
  // physical tree (all 2^m roots): the subtree map cuts at most S - 1
  // edges (the spine whose VIDs have >= m - log2(S) leading ones) while
  // the range map cuts edges throughout the tree. If someone changes
  // either policy and breaks the dominance, this is the test that fires.
  for (const int m : {4, 6, 8}) {
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      const ShardMap range(ShardMap::Kind::kRange, m, shards);
      const ShardMap subtree(ShardMap::Kind::kSubtree, m, shards);
      for (std::uint32_t r = 0; r < util::space_size(m); ++r) {
        const std::uint32_t cut_range =
            crossing_edges(range, m, core::Pid{r});
        const std::uint32_t cut_subtree =
            crossing_edges(subtree, m, core::Pid{r});
        ASSERT_LE(cut_subtree, cut_range)
            << "m=" << m << " S=" << shards << " root=" << r;
        ASSERT_LE(cut_subtree, shards - 1u)
            << "m=" << m << " S=" << shards << " root=" << r;
      }
    }
  }
}

}  // namespace
}  // namespace lesslog::proto
