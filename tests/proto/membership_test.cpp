// Wire-level Section 5: graceful leaves push files ahead of departure,
// joins reclaim them, crashes recover from sibling subtrees — all as
// actual datagrams with latency, verified against availability.
#include <gtest/gtest.h>

#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/hashing.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

Swarm::Config cfg_of(int m, int b, std::uint32_t nodes, std::uint64_t seed) {
  Swarm::Config cfg;
  cfg.m = m;
  cfg.b = b;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.net.base_latency = 0.002;
  cfg.net.jitter = 0.001;
  return cfg;
}

// Gets must succeed from every live node for every file.
void expect_all_available(Swarm& swarm,
                          const std::vector<FileId>& files) {
  for (const FileId f : files) {
    const Pid r = Pid{util::psi_u64(f.key(), swarm.width())};
    for (std::uint32_t k = 0; k < util::space_size(swarm.width()); ++k) {
      if (!swarm.status().is_live(k)) continue;
      GetResult result;
      swarm.get(f, r, Pid{k}, [&](const GetResult& got) { result = got; });
      swarm.settle();
      EXPECT_TRUE(result.ok) << "file " << f.key() << " from P(" << k << ")";
    }
  }
}

TEST(WireMembership, GracefulLeavePushesInsertedFiles) {
  Swarm swarm(cfg_of(5, 0, 32, 1));
  std::vector<FileId> files;
  for (std::uint64_t k = 0; k < 8; ++k) {
    files.push_back(swarm.insert_named(0xAA00 + k, Pid{0}));
  }
  swarm.settle();

  // Make every holder leave, one at a time; availability must hold.
  for (const FileId f : files) {
    const Pid holder = Pid{util::psi_u64(f.key(), 5)};
    if (!swarm.status().is_live(holder.value())) continue;
    swarm.depart(holder);
    swarm.settle();
  }
  expect_all_available(swarm, files);
}

TEST(WireMembership, JoinReclaimsFiles) {
  Swarm swarm(cfg_of(4, 0, 16, 2));
  // The paper's 5.1 example: P(4), P(5) gone, file targeting P(4) sits at
  // P(6); when P(5) rejoins, the file must be pushed back to P(5).
  swarm.depart(Pid{4});
  swarm.depart(Pid{5});
  swarm.settle();

  // Find a key whose ψ is 4.
  std::uint64_t key = 0;
  while (util::psi_u64(key, 4) != 4) ++key;
  const FileId f = swarm.insert_named(key, Pid{0});
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{6}).store().has(f));

  swarm.join(Pid{5});
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{5}).store().has(f));
  EXPECT_FALSE(swarm.peer(Pid{6}).store().has(f));
  EXPECT_EQ(swarm.peer(Pid{5}).store().info(f)->kind,
            core::CopyKind::kInserted);

  GetResult result;
  swarm.get(f, Pid{4}, Pid{8}, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_TRUE(result.ok);
}

TEST(WireMembership, CrashWithoutFaultToleranceLosesFile) {
  Swarm swarm(cfg_of(4, 0, 16, 3));
  const FileId f = swarm.insert_named(0xBEEF, Pid{1});
  swarm.settle();
  const Pid holder = Pid{util::psi_u64(0xBEEF, 4)};
  swarm.crash(holder);
  swarm.settle();

  GetResult result;
  const Pid probe = swarm.status().is_live(0) ? Pid{0} : Pid{1};
  swarm.get(f, holder, probe, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_FALSE(result.ok);
}

TEST(WireMembership, CrashWithFaultToleranceRecovers) {
  Swarm swarm(cfg_of(6, 2, 64, 4));
  std::vector<FileId> files;
  for (std::uint64_t k = 0; k < 6; ++k) {
    files.push_back(swarm.insert_named(0xCC00 + k, Pid{3}));
  }
  swarm.settle();

  // Crash a chain of nodes; each loss triggers sibling-subtree recovery.
  util::Rng rng(4);
  for (int i = 0; i < 12; ++i) {
    Pid victim{0};
    do {
      victim = Pid{static_cast<std::uint32_t>(rng.bounded(64))};
    } while (!swarm.status().is_live(victim.value()));
    swarm.crash(victim);
    swarm.settle();
  }
  expect_all_available(swarm, files);

  // Each file must again have one inserted copy per non-empty subtree.
  for (const FileId f : files) {
    const core::LookupTree tree(6, Pid{util::psi_u64(f.key(), 6)});
    const core::SubtreeView view(tree, 2);
    for (std::uint32_t t = 0; t < 4; ++t) {
      const auto holder = view.insertion_target(t, swarm.status());
      if (!holder.has_value()) continue;
      EXPECT_TRUE(swarm.peer(*holder).store().has(f))
          << "file " << f.key() << " subtree " << t;
    }
  }
}

TEST(WireMembership, RollingRestartAtProtocolLevel) {
  Swarm swarm(cfg_of(5, 1, 32, 5));
  std::vector<FileId> files;
  for (std::uint64_t k = 0; k < 8; ++k) {
    files.push_back(swarm.insert_named(0xDD00 + k, Pid{2}));
  }
  swarm.settle();

  for (std::uint32_t p = 0; p < 32; ++p) {
    swarm.depart(Pid{p});
    swarm.settle();
    swarm.join(Pid{p});
    swarm.settle();
  }
  expect_all_available(swarm, files);
}

TEST(WireMembership, RecoveryCostsOnePushPerLostCopy) {
  Swarm swarm(cfg_of(6, 2, 64, 6));
  [[maybe_unused]] const FileId f = swarm.insert_named(0xEE01, Pid{0});
  swarm.settle();

  const core::LookupTree tree(6, Pid{util::psi_u64(0xEE01, 6)});
  const core::SubtreeView view(tree, 2);
  const std::vector<Pid> holders = view.insertion_targets(swarm.status());
  ASSERT_EQ(holders.size(), 4u);

  const std::int64_t before = swarm.network().messages_sent();
  swarm.crash(holders[0]);
  swarm.settle();
  const std::int64_t spent = swarm.network().messages_sent() - before;
  // Status broadcast (63 surviving peers) + one kFilePush + its ack.
  EXPECT_EQ(spent, 65);
}

TEST(WireMembership, RapidCrashRejoinWithInflightTimersIsSafe) {
  // Regression: a peer that crashes and rejoins *without* the event queue
  // draining in between must not leave engine timers pointing at a
  // destroyed object. Peers are reused across rejoin cycles; stale push
  // timers find their pending entries gone and no-op.
  Swarm::Config cfg = cfg_of(5, 1, 32, 11);
  cfg.net.drop_probability = 0.6;  // force push retransmission timers
  Swarm swarm(cfg);
  std::vector<FileId> files;
  for (std::uint64_t k = 0; k < 6; ++k) {
    files.push_back(swarm.insert_named(0xAB30 + k, Pid{0}));
  }
  // Interleave crashes and rejoins with NO settle(): timers stay queued.
  for (int round = 0; round < 6; ++round) {
    const Pid victim{static_cast<std::uint32_t>(5 + round)};
    if (swarm.status().is_live(victim.value())) swarm.crash(victim);
    swarm.engine().run_until(swarm.engine().now() + 0.01);  // partial drain
    swarm.join(victim);
    swarm.engine().run_until(swarm.engine().now() + 0.01);
  }
  swarm.settle();  // every stale timer fires against live, reused objects
  SUCCEED();
}

TEST(WireMembership, PushesSurvivePacketLoss) {
  // File transfers are acked and retried: a graceful leave on a lossy
  // network must still deliver every inserted file to its new holder.
  Swarm::Config cfg = cfg_of(5, 0, 32, 9);
  cfg.net.drop_probability = 0.4;
  Swarm swarm(cfg);
  std::vector<FileId> files;
  for (std::uint64_t k = 0; k < 8; ++k) {
    files.push_back(swarm.insert_named(0xEE10 + k, Pid{0}));
  }
  // Client retries cover the lossy inserts.
  swarm.settle();

  for (const FileId f : files) {
    const Pid holder = Pid{util::psi_u64(f.key(), 5)};
    if (!swarm.status().is_live(holder.value())) continue;
    swarm.depart(holder);
    swarm.settle();
  }
  // With p = 0.4 per datagram and 6 transmissions per push, the chance a
  // transfer dies is 0.4^6 ≈ 0.4%; the seed keeps this deterministic.
  int held = 0;
  for (const FileId f : files) {
    for (std::uint32_t p = 0; p < 32; ++p) {
      if (swarm.status().is_live(p) &&
          swarm.peer(Pid{p}).store().has(f)) {
        ++held;
        break;
      }
    }
  }
  EXPECT_EQ(held, static_cast<int>(files.size()));
}

TEST(WireMembership, DuplicatePushesAreIdempotent) {
  // Force retransmissions by dropping ~half the datagrams: the new holder
  // may receive the same push several times; exactly one inserted copy
  // must result, at the pushed version.
  Swarm::Config cfg = cfg_of(4, 0, 16, 10);
  cfg.net.drop_probability = 0.5;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xEE99, Pid{0});
  swarm.settle();
  const Pid holder = Pid{util::psi_u64(0xEE99, 4)};
  if (swarm.status().is_live(holder.value()) &&
      swarm.peer(holder).store().has(f)) {
    swarm.depart(holder);
    swarm.settle();
    int copies = 0;
    for (std::uint32_t p = 0; p < 16; ++p) {
      if (swarm.status().is_live(p) && swarm.peer(Pid{p}).store().has(f)) {
        ++copies;
      }
    }
    EXPECT_EQ(copies, 1);
  }
}

}  // namespace
}  // namespace lesslog::proto
