// Adversarial/robustness behaviour of the peer actor: forged or stale
// messages must degrade gracefully, never loop or crash.
#include <gtest/gtest.h>

#include "lesslog/proto/swarm.hpp"
#include "lesslog/proto/trace.hpp"
#include "lesslog/util/hashing.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

Swarm::Config cfg16() {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.net.base_latency = 0.005;
  cfg.net.jitter = 0.0;
  return cfg;
}

TEST(PeerRobustness, HopCountFenceStopsForgedLoops) {
  Swarm swarm(cfg16());
  Trace trace(swarm);
  // Forge a GET that claims to have travelled far too long already; the
  // receiving peer must answer MISS instead of forwarding further.
  Message forged;
  forged.request_id = 0x1234;
  forged.type = MsgType::kGetRequest;
  forged.from = Pid{9};
  forged.to = Pid{8};
  forged.requester = Pid{9};
  forged.subject = Pid{4};
  forged.file = FileId{0x404};
  forged.hop_count = 200;
  swarm.network().send(forged);
  swarm.settle();
  EXPECT_EQ(trace.count(MsgType::kGetRequest), 1u);  // not forwarded
  ASSERT_EQ(trace.count(MsgType::kGetReply), 1u);
  EXPECT_FALSE(trace.of_type(MsgType::kGetReply)[0].message.ok);
}

TEST(PeerRobustness, StaleStatusWordRoutesHealThroughRetries) {
  // A peer that never learns about a departure keeps forwarding to the
  // dead node; the datagram is undeliverable, the client times out,
  // retries, and (after the announcement finally lands) succeeds.
  Swarm::Config cfg = cfg16();
  cfg.client.timeout = 0.05;
  cfg.client.max_retries = 4;
  Swarm swarm(cfg);
  std::uint64_t key = 0;
  while (util::psi_u64(key, 4) != 4) ++key;
  const FileId f = swarm.insert_named(key, Pid{1});
  swarm.settle();

  // Silence P(0) without telling anyone (detach only): P(8)'s route runs
  // through it and now blackholes.
  swarm.network().detach(Pid{0});
  GetResult first;
  swarm.get(f, Pid{4}, Pid{8}, [&](const GetResult& r) { first = r; });
  swarm.settle();
  // All retries went into the same dead hop: the request faults...
  EXPECT_FALSE(first.ok);
  EXPECT_GT(swarm.network().undeliverable(), 0);

  // ...until the failure is finally announced; then routing skips P(0).
  for (std::uint32_t q = 0; q < 16; ++q) {
    if (q == 0) continue;
    Message announce;
    announce.type = MsgType::kStatusAnnounce;
    announce.from = Pid{0};
    announce.to = Pid{q};
    announce.subject = Pid{0};
    announce.ok = false;
    swarm.network().send(announce);
  }
  swarm.settle();
  GetResult second;
  swarm.get(f, Pid{4}, Pid{8}, [&](const GetResult& r) { second = r; });
  swarm.settle();
  EXPECT_TRUE(second.ok);
}

TEST(PeerRobustness, UnknownFilePushAckIsIgnored) {
  Swarm swarm(cfg16());
  Message stray;
  stray.request_id = 0xFFFF'0001;
  stray.type = MsgType::kFilePushAck;
  stray.from = Pid{3};
  stray.to = Pid{7};
  swarm.network().send(stray);
  swarm.settle();
  SUCCEED();  // nothing to assert beyond "no crash, no effect"
}

TEST(PeerRobustness, DuplicateStatusAnnouncesAreIdempotent) {
  Swarm swarm(cfg16());
  for (int i = 0; i < 5; ++i) {
    Message announce;
    announce.type = MsgType::kStatusAnnounce;
    announce.from = Pid{5};
    announce.to = Pid{2};
    announce.subject = Pid{5};
    announce.ok = false;
    swarm.network().send(announce);
  }
  swarm.settle();
  EXPECT_FALSE(swarm.peer(Pid{2}).status().is_live(5));
  // And flipping back works regardless of how many deaths were heard.
  Message revive;
  revive.type = MsgType::kStatusAnnounce;
  revive.from = Pid{5};
  revive.to = Pid{2};
  revive.subject = Pid{5};
  revive.ok = true;
  swarm.network().send(revive);
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{2}).status().is_live(5));
}

TEST(PeerRobustness, GetForMissingFileTerminatesQuickly) {
  Swarm swarm(cfg16());
  Trace trace(swarm);
  GetResult result;
  swarm.get(FileId{0xAB5E27}, Pid{11}, Pid{2},
            [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_FALSE(result.ok);
  // The walk is bounded by the tree depth: few GET datagrams, one MISS.
  EXPECT_LE(trace.count(MsgType::kGetRequest), 5u);
}

}  // namespace
}  // namespace lesslog::proto
