// Swarm crash -> restart recovery under a lossy network.
//
// With b > 0, Section 5.3 recovery plus the acked/retransmitted file
// push must restore every ψ-named file even when datagrams drop; with
// b = 0 there is nothing to recover from and the lost set must be
// exactly the crashed node's inserted files — no more, no less.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "lesslog/proto/swarm.hpp"

namespace lesslog::proto {
namespace {

bool live_copy_exists(Swarm& swarm, core::FileId f) {
  for (std::uint32_t p = 0; p < swarm.status().capacity(); ++p) {
    if (swarm.status().is_live(p) &&
        swarm.peer(core::Pid{p}).store().has(f)) {
      return true;
    }
  }
  return false;
}

TEST(CrashRecovery, LossyNetworkStillRestoresEveryFileWithFaultBits) {
  Swarm::Config cfg;
  cfg.m = 5;
  cfg.b = 2;
  cfg.nodes = 32;
  cfg.seed = 42;
  cfg.net.drop_probability = 0.10;  // pushes must survive via retries
  Swarm swarm(cfg);

  std::vector<core::FileId> files;
  for (std::uint64_t key = 1; key <= 40; ++key) {
    files.push_back(
        swarm.insert_named(key * 1009, core::Pid{(std::uint32_t)key % 32}));
  }
  swarm.settle();
  for (const core::FileId f : files) {
    ASSERT_TRUE(live_copy_exists(swarm, f));
  }

  const core::Pid victim{7};
  swarm.crash(victim);
  swarm.settle();
  // Status announcements ride the same lossy wire; repeat the repair
  // broadcast until views converge (each pass closes surviving gaps —
  // the anti-entropy a real failure detector provides).
  for (int pass = 0; pass < 3; ++pass) {
    swarm.reannounce();
    swarm.settle();
  }
  // Sibling-subtree recovery has re-inserted the lost copies: every file
  // is still held somewhere live, with the crashed node still down.
  for (const core::FileId f : files) {
    EXPECT_TRUE(live_copy_exists(swarm, f))
        << "file " << f.key() << " lost despite b=2 and acked pushes";
  }

  swarm.restart(victim);
  swarm.settle();
  for (int pass = 0; pass < 3; ++pass) {
    swarm.reannounce();
    swarm.settle();
  }
  for (const core::FileId f : files) {
    EXPECT_TRUE(live_copy_exists(swarm, f));
  }

  // End-to-end: every file is GETtable from an arbitrary live peer.
  int ok = 0;
  for (const core::FileId f : files) {
    swarm.get(f, swarm.peer(core::Pid{3}).target_of(f), core::Pid{3},
              [&ok](const GetResult& res) { ok += res.ok ? 1 : 0; });
  }
  swarm.settle();
  EXPECT_EQ(ok, static_cast<int>(files.size()));
}

TEST(CrashRecovery, WithoutFaultBitsLostFilesAreExactlyTheVictims) {
  Swarm::Config cfg;
  cfg.m = 5;
  cfg.b = 0;
  cfg.nodes = 32;
  cfg.seed = 7;
  Swarm swarm(cfg);

  std::vector<core::FileId> files;
  for (std::uint64_t key = 1; key <= 60; ++key) {
    files.push_back(
        swarm.insert_named(key * 7919, core::Pid{(std::uint32_t)key % 32}));
  }
  swarm.settle();

  // Ground truth before the crash: which files does the victim hold (the
  // single authoritative copy each, since b = 0 and nothing replicated).
  const core::Pid victim{11};
  std::set<std::uint64_t> on_victim;
  for (const core::FileId f : files) {
    if (swarm.peer(victim).store().has(f)) on_victim.insert(f.key());
  }
  ASSERT_FALSE(on_victim.empty()) << "test needs the victim to hold files";

  swarm.crash(victim);
  swarm.settle();

  // Exact accounting: a file is lost iff its only copy sat on the victim.
  for (const core::FileId f : files) {
    EXPECT_EQ(live_copy_exists(swarm, f), on_victim.count(f.key()) == 0)
        << "file " << f.key();
  }

  // The restart reclaims nothing for the lost files (their bytes are
  // gone), but the swarm stays consistent: GETs for lost files fault,
  // GETs for surviving files succeed.
  swarm.restart(victim);
  swarm.settle();
  int ok = 0;
  int fault = 0;
  for (const core::FileId f : files) {
    swarm.get(f, swarm.peer(core::Pid{3}).target_of(f), core::Pid{3},
              [&](const GetResult& res) { (res.ok ? ok : fault)++; });
  }
  swarm.settle();
  EXPECT_EQ(fault, static_cast<int>(on_victim.size()));
  EXPECT_EQ(ok, static_cast<int>(files.size() - on_victim.size()));
}

}  // namespace
}  // namespace lesslog::proto
