// Differential tests: the message-level peer protocol must visit the same
// nodes and reach the same holders as the direct-call core algorithms.
#include "lesslog/proto/peer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/routing.hpp"
#include "lesslog/core/update.hpp"
#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

Swarm::Config lossless(int m, int b, std::uint32_t nodes,
                       std::uint64_t seed = 1) {
  Swarm::Config cfg;
  cfg.m = m;
  cfg.b = b;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.net.base_latency = 0.001;
  cfg.net.jitter = 0.0005;
  return cfg;
}

TEST(PeerProtocol, PaperRoutingExampleMessageByMessage) {
  // P(8) -> P(0) -> P(4): the GETFILE chain of Figure 2 as real messages.
  Swarm swarm(lossless(4, 0, 16));
  const FileId f{111};
  swarm.insert(f, Pid{4}, Pid{2});
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{4}).store().has(f));

  GetResult result;
  swarm.get(f, Pid{4}, Pid{8}, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.hops, 2);  // 8 -> 0 -> 4
  EXPECT_EQ(swarm.peer(Pid{0}).forwarded(), 1);
  EXPECT_EQ(swarm.peer(Pid{4}).served(), 1);
}

TEST(PeerProtocol, HopCountsMatchCoreRoutingEverywhere) {
  const int m = 6;
  Swarm swarm(lossless(m, 0, 64, 3));
  // Knock out some nodes to exercise the advanced model.
  for (const std::uint32_t dead : {5u, 9u, 33u, 60u, 61u, 62u, 63u}) {
    swarm.depart(Pid{dead});
  }
  swarm.settle();  // let the announcements spread

  const Pid target{63};  // dead target: stand-in scenario
  const FileId f{222};
  swarm.insert(f, target, Pid{0});
  swarm.settle();

  const core::LookupTree tree(m, target);
  const auto holder = core::insertion_target(tree, swarm.status());
  ASSERT_TRUE(holder.has_value());
  const core::HasCopyFn has_copy = [&](Pid p) { return p == *holder; };

  for (std::uint32_t k = 0; k < 64; ++k) {
    if (!swarm.status().is_live(k)) continue;
    GetResult result;
    swarm.get(f, target, Pid{k}, [&](const GetResult& r) { result = r; });
    swarm.settle();
    const core::RouteResult expected =
        core::route_get(tree, Pid{k}, swarm.status(), has_copy);
    ASSERT_TRUE(result.ok) << "k=" << k;
    EXPECT_EQ(result.hops, expected.hops()) << "k=" << k;
  }
}

TEST(PeerProtocol, ReplicaShortCircuitsLikeCore) {
  Swarm swarm(lossless(4, 0, 16));
  const FileId f{333};
  swarm.insert(f, Pid{4}, Pid{1});
  swarm.settle();
  // Replicate at the root: lands on P(5) per the children-list order.
  const auto placed = swarm.replicate(
      f, Pid{4}, Pid{4}, [&](Pid p) { return p == Pid{4}; });
  ASSERT_EQ(placed, Pid{5});
  swarm.settle();
  EXPECT_TRUE(swarm.peer(Pid{5}).store().has(f));

  GetResult result;
  swarm.get(f, Pid{4}, Pid{13}, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(swarm.peer(Pid{5}).served(), 1);
  EXPECT_EQ(swarm.peer(Pid{4}).served(), 0);
}

TEST(PeerProtocol, UpdatePushReachesSameSetAsCorePropagation) {
  const int m = 5;
  Swarm swarm(lossless(m, 0, 32, 9));
  const Pid target{20};
  const FileId f{444};
  swarm.insert(f, target, Pid{3});
  swarm.settle();

  // Grow a replica chain through the protocol.
  std::set<std::uint32_t> copies{target.value()};
  util::Rng rng(4);
  for (int step = 0; step < 6; ++step) {
    std::vector<std::uint32_t> holder_list(copies.begin(), copies.end());
    const Pid from{holder_list[rng.bounded(holder_list.size())]};
    const auto placed = swarm.replicate(
        f, target, from,
        [&copies](Pid p) { return copies.contains(p.value()); });
    if (placed.has_value()) copies.insert(placed->value());
    swarm.settle();
  }

  swarm.update(f, target, /*version=*/9, Pid{7});
  swarm.settle();

  const core::LookupTree tree(m, target);
  const core::UpdateResult expected = core::propagate_update(
      tree, swarm.status(),
      [&copies](Pid p) { return copies.contains(p.value()); });
  std::set<std::uint32_t> expected_set;
  for (const Pid p : expected.updated) expected_set.insert(p.value());

  for (const std::uint32_t holder : copies) {
    const auto info = swarm.peer(Pid{holder}).store().info(f);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, expected_set.contains(holder) ? 9u : 0u)
        << "holder " << holder;
  }
  EXPECT_EQ(expected_set, copies);  // LessLog placements stay connected
}

TEST(PeerProtocol, FaultToleranceMigratesAcrossSubtrees) {
  Swarm swarm(lossless(6, 2, 64, 11));
  const Pid target{40};
  const FileId f{555};
  swarm.insert(f, target, Pid{2});
  swarm.settle();

  // Collect the 4 holders and keep only one.
  const core::LookupTree tree(6, target);
  const core::SubtreeView view(tree, 2);
  std::vector<Pid> holders = view.insertion_targets(swarm.status());
  ASSERT_EQ(holders.size(), 4u);
  for (std::size_t i = 0; i + 1 < holders.size(); ++i) {
    swarm.depart(holders[i]);
  }
  swarm.settle();

  GetResult result;
  swarm.get(f, target, Pid{1}, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_TRUE(result.ok);
}

TEST(PeerProtocol, MissingFileFaultsAfterAllSubtrees) {
  Swarm swarm(lossless(5, 1, 32));
  GetResult result;
  swarm.get(FileId{666}, Pid{10}, Pid{4},
            [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.migrations, 2);  // tried both subtrees
  EXPECT_EQ(swarm.total_faults(), 1);
}

TEST(PeerProtocol, LossyNetworkRecoversViaRetries) {
  Swarm::Config cfg = lossless(5, 0, 32, 21);
  cfg.net.drop_probability = 0.2;
  cfg.client.timeout = 0.05;
  cfg.client.max_retries = 6;
  Swarm swarm(cfg);
  const FileId f{777};
  // Inserts may drop; retry loop in the client covers them.
  swarm.insert(f, Pid{17}, Pid{0});
  swarm.settle();

  int ok = 0;
  int issued = 0;
  for (std::uint32_t k = 0; k < 32; ++k) {
    ++issued;
    swarm.get(f, Pid{17}, Pid{k}, [&](const GetResult& r) {
      if (r.ok) ++ok;
    });
  }
  swarm.settle();
  // With 20% loss per message and 6 retries per leg, nearly everything
  // completes; the assertion leaves room for unlucky multi-hop paths.
  EXPECT_GE(ok, issued - 3);
  EXPECT_GT(swarm.network().dropped(), 0);
}

TEST(PeerProtocol, StatusAnnouncementsConvergePeers) {
  Swarm swarm(lossless(4, 0, 16));
  swarm.depart(Pid{5});
  swarm.settle();
  for (std::uint32_t k = 0; k < 16; ++k) {
    if (k == 5 || !swarm.status().is_live(k)) continue;
    EXPECT_FALSE(swarm.peer(Pid{k}).status().is_live(5)) << "k=" << k;
  }
  swarm.join(Pid{5});
  swarm.settle();
  for (std::uint32_t k = 0; k < 16; ++k) {
    if (!swarm.status().is_live(k)) continue;
    EXPECT_TRUE(swarm.peer(Pid{k}).status().is_live(5)) << "k=" << k;
  }
}

TEST(PeerProtocol, LatencyIsHopsTimesLinkLatency) {
  Swarm::Config cfg = lossless(4, 0, 16);
  cfg.net.base_latency = 0.01;
  cfg.net.jitter = 0.0;
  Swarm swarm(cfg);
  const FileId f{888};
  swarm.insert(f, Pid{4}, Pid{4});
  swarm.settle();
  GetResult result;
  swarm.get(f, Pid{4}, Pid{8}, [&](const GetResult& r) { result = r; });
  swarm.settle();
  // 2 forwarding hops + 1 reply = 3 messages at 10 ms each.
  EXPECT_NEAR(result.latency, 0.03, 1e-9);
}

}  // namespace
}  // namespace lesslog::proto
