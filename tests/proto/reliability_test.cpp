// The adaptive request-reliability layer, exercised at both granularities:
// the RttEstimator in isolation (RFC 6298 arithmetic, clamping, the
// percentile ring) and the Karn/hedge/shedding/suspicion behavior of a
// real message-driven swarm, reconciled against the ReliabilityLedger.
#include "lesslog/proto/rtt_estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/liveness_view.hpp"

namespace lesslog::proto {
namespace {

using core::FileId;
using core::Pid;

// ---------------------------------------------------------------------------
// RttEstimator unit tests: the Jacobson/Karn arithmetic.

TEST(RttEstimator, FirstSamplePrimesSrttAndRttvar) {
  RttEstimator est;
  EXPECT_FALSE(est.primed());
  est.add_sample(0.1);
  EXPECT_TRUE(est.primed());
  EXPECT_DOUBLE_EQ(est.srtt(), 0.1);
  EXPECT_DOUBLE_EQ(est.rttvar(), 0.05);
  EXPECT_EQ(est.window_size(), 1u);
}

TEST(RttEstimator, EwmaUpdateUsesRfc6298Coefficients) {
  RttEstimator est;
  est.add_sample(0.1);
  est.add_sample(0.2);
  // RTTVAR <- 3/4 * 0.05 + 1/4 * |0.1 - 0.2|;  SRTT <- 7/8 * 0.1 + 1/8 * 0.2
  EXPECT_DOUBLE_EQ(est.rttvar(), 0.0625);
  EXPECT_DOUBLE_EQ(est.srtt(), 0.1125);
  // RTO = SRTT + 4 RTTVAR, inside the clamps here.
  EXPECT_DOUBLE_EQ(est.rto(/*fallback=*/0.25, /*floor=*/0.03, /*cap=*/2.0),
                   0.3625);
}

TEST(RttEstimator, UnprimedReturnsFallbackUnclamped) {
  // Before the first sample the estimator must reproduce the fixed-timer
  // client exactly — even a fallback far outside [floor, cap] passes
  // through untouched.
  const RttEstimator est;
  EXPECT_DOUBLE_EQ(est.rto(/*fallback=*/5.0, /*floor=*/0.03, /*cap=*/2.0),
                   5.0);
  EXPECT_DOUBLE_EQ(est.rto(/*fallback=*/0.001, /*floor=*/0.03, /*cap=*/2.0),
                   0.001);
}

TEST(RttEstimator, RtoClampsToFloorAndCap) {
  RttEstimator fast;
  fast.add_sample(0.001);  // SRTT + 4 RTTVAR = 0.003 < floor
  EXPECT_DOUBLE_EQ(fast.rto(0.25, 0.03, 2.0), 0.03);
  RttEstimator slow;
  slow.add_sample(10.0);  // SRTT + 4 RTTVAR = 30 > cap
  EXPECT_DOUBLE_EQ(slow.rto(0.25, 0.03, 2.0), 2.0);
}

TEST(RttEstimator, PercentileQueriesTheSampleRing) {
  RttEstimator est;
  for (int i = 10; i >= 1; --i) {  // inserted descending: order must not
    est.add_sample(0.01 * i);      // matter to the percentile
  }
  EXPECT_EQ(est.window_size(), 10u);
  EXPECT_DOUBLE_EQ(est.percentile(0.0), 0.01);
  EXPECT_DOUBLE_EQ(est.percentile(0.5), 0.06);
  EXPECT_DOUBLE_EQ(est.percentile(0.9), 0.10);
}

TEST(RttEstimator, RingSaturatesAtWindow) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) est.add_sample(0.01);
  EXPECT_EQ(est.window_size(), RttEstimator::kWindow);
}

// ---------------------------------------------------------------------------
// Karn's rule, end to end: only first-transmission, unhedged completions
// may feed the estimator — a retransmitted or hedged leg's reply can never
// be credited to the wrong transmission.

Swarm::Config karn_config() {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 0;
  cfg.nodes = 16;
  cfg.net.base_latency = 0.01;
  cfg.net.jitter = 0.0;
  cfg.client.adaptive = true;
  return cfg;
}

TEST(KarnRule, CleanFirstTransmissionFeedsEstimator) {
  Swarm swarm(karn_config());
  const FileId f = swarm.insert_named(0xFACE, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  const Pid requester{target.value() == 2u ? 6u : 2u};

  GetResult result;
  swarm.get(f, target, requester, [&](const GetResult& r) { result = r; });
  swarm.settle();

  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.retries, 0);
  const ReliabilityLedger ledger = swarm.reliability_ledger();
  EXPECT_EQ(ledger.rtt_samples, 1);
  const RttEstimator& est = swarm.client(requester).estimator();
  ASSERT_TRUE(est.primed());
  EXPECT_DOUBLE_EQ(est.srtt(), result.latency);
}

TEST(KarnRule, RetransmittedLegTakesNoSample) {
  Swarm::Config cfg = karn_config();
  cfg.client.timeout = 0.01;  // shorter than one 10 ms hop: every leg
  cfg.client.max_retries = 6; // retransmits before its reply can land
  cfg.net.base_latency = 0.02;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xFADE, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  const Pid requester{target.value() == 3u ? 5u : 3u};

  GetResult result;
  swarm.get(f, target, requester, [&](const GetResult& r) { result = r; });
  swarm.settle();

  // The request succeeds — a reply from an earlier transmission
  // eventually lands — but the ambiguous sample is discarded.
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.retries, 0);
  EXPECT_EQ(swarm.reliability_ledger().rtt_samples, 0);
  EXPECT_FALSE(swarm.client(requester).estimator().primed());
}

TEST(KarnRule, HedgedRequestTakesNoSampleAndReconciles) {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 1;  // hedging needs an alternate replica subtree
  cfg.nodes = 16;
  cfg.net.base_latency = 0.3;  // round trip >= 0.6 s
  cfg.net.jitter = 0.0;
  cfg.client.timeout = 1.0;    // warmup hedge delay = timeout / 2 = 0.5 s
  cfg.client.hedge_percentile = 0.9;
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xFEED, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  // A requester that holds no copy: the primary leg needs the wire, so it
  // is still pending when the hedge timer fires.
  Pid requester{0};
  for (std::uint32_t p = 0; p < 16; ++p) {
    if (!swarm.peer(Pid{p}).store().has(f)) {
      requester = Pid{p};
      break;
    }
  }

  GetResult result;
  swarm.get(f, target, requester, [&](const GetResult& r) { result = r; });
  swarm.settle();

  ASSERT_TRUE(result.ok);
  const ReliabilityLedger ledger = swarm.reliability_ledger();
  EXPECT_EQ(ledger.hedges_launched, 1);
  // The hedge identity holds even for a single request: the losing leg is
  // resolved exactly once, never double-counted.
  EXPECT_EQ(ledger.hedges_launched, ledger.hedge_won + ledger.hedge_cancelled);
  // Karn: a hedged completion is ambiguous — no sample.
  EXPECT_EQ(ledger.rtt_samples, 0);
  EXPECT_EQ(ledger.issued, 1);
  EXPECT_EQ(ledger.ok, 1);
}

// ---------------------------------------------------------------------------
// Peer-side load shedding: a kBusy shed migrates the walk, and a shed
// subtree walk wraps and revisits instead of faulting — a busy peer is
// loaded, not dead.

TEST(BusyShedding, ShedBurstDrainsWithoutFaults) {
  Swarm::Config cfg;
  cfg.m = 3;
  cfg.b = 0;  // one subtree: any shed would fault without the wrap
  cfg.nodes = 8;
  cfg.net.base_latency = 0.01;
  cfg.net.jitter = 0.0;
  cfg.client.max_retries = 6;
  cfg.peer.busy_budget = 1;    // one token per peer: a burst must shed
  cfg.peer.busy_refill = 50.0; // ...and refill fast enough to drain
  Swarm swarm(cfg);
  const FileId f = swarm.insert_named(0xB0B0, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  const Pid requester{target.value() == 1u ? 4u : 1u};

  int ok = 0;
  for (int i = 0; i < 4; ++i) {  // same-instant burst
    swarm.get(f, target, requester, [&](const GetResult& r) { ok += r.ok; });
  }
  swarm.settle();

  const ReliabilityLedger ledger = swarm.reliability_ledger();
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(ledger.issued, 4);
  EXPECT_EQ(ledger.ok, 4);
  EXPECT_EQ(ledger.faults, 0);
  // The burst actually tripped the shedder on both sides of the wire.
  EXPECT_GT(ledger.busy_shed, 0);
  EXPECT_GT(ledger.busy_received, 0);
  EXPECT_EQ(ledger.issued, ledger.ok + ledger.faults);
}

// ---------------------------------------------------------------------------
// Suspicion-aware routing: failure-detector doubt steers entry selection
// away from suspects but never overrides the liveness bitmap, and a SWIM
// refutation restores direct routing.

/// A controllable failure-detector stand-in: OracleView's belief-update
/// semantics plus an externally scripted suspect list, installed via
/// Peer::set_liveness_view.
class FakeSuspicionView final : public util::MutableLivenessView {
 public:
  explicit FakeSuspicionView(util::CowStatus status) noexcept
      : MutableLivenessView(&status.read()), status_(std::move(status)) {}

  void believe_live(std::uint32_t pid) override {
    if (!status_.read().is_live(pid)) {
      status_.mutate().set_live(pid);
      rebind(&status_.read());
    }
  }
  void believe_dead(std::uint32_t pid) override {
    if (status_.read().is_live(pid)) {
      status_.mutate().set_dead(pid);
      rebind(&status_.read());
    }
  }
  [[nodiscard]] util::CowStatus snapshot() const override {
    return status_.snapshot();
  }
  void reset(util::CowStatus fresh) override {
    status_ = std::move(fresh);
    rebind(&status_.read());
  }

  [[nodiscard]] bool is_suspected(std::uint32_t pid) const noexcept override {
    return std::binary_search(suspects_.begin(), suspects_.end(), pid);
  }
  [[nodiscard]] const std::vector<std::uint32_t>* suspects()
      const noexcept override {
    return suspects_.empty() ? nullptr : &suspects_;
  }

  void suspect(std::uint32_t pid) {
    const auto it = std::lower_bound(suspects_.begin(), suspects_.end(), pid);
    if (it == suspects_.end() || *it != pid) suspects_.insert(it, pid);
  }
  void refute(std::uint32_t pid) {
    const auto it = std::lower_bound(suspects_.begin(), suspects_.end(), pid);
    if (it != suspects_.end() && *it == pid) suspects_.erase(it);
  }

 private:
  util::CowStatus status_;
  std::vector<std::uint32_t> suspects_;  ///< ascending
};

Swarm::Config suspicion_config() {
  Swarm::Config cfg;
  cfg.m = 4;
  cfg.b = 1;
  cfg.nodes = 16;
  cfg.net.base_latency = 0.01;
  cfg.net.jitter = 0.0;
  cfg.client.suspicion_routing = true;
  return cfg;
}

TEST(SuspicionRouting, MassFalseSuspicionNeverBlocksASubtree) {
  Swarm swarm(suspicion_config());
  const FileId f = swarm.insert_named(0x5057, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);
  Pid requester{0};
  for (std::uint32_t p = 0; p < 16; ++p) {
    if (!swarm.peer(Pid{p}).store().has(f)) {
      requester = Pid{p};
      break;
    }
  }
  // Every single peer falsely suspected: routing must fall through to
  // bitmap-only entry selection rather than declare the swarm unreachable.
  FakeSuspicionView fake(swarm.peer(requester).liveness().snapshot());
  for (std::uint32_t p = 0; p < 16; ++p) fake.suspect(p);
  swarm.peer(requester).set_liveness_view(&fake);

  GetResult result;
  swarm.get(f, target, requester, [&](const GetResult& r) { result = r; });
  swarm.settle();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(swarm.total_faults(), 0);

  swarm.peer(requester).set_liveness_view(nullptr);  // before fake dies
}

TEST(SuspicionRouting, FalseSuspectAvoidedUntilRefuted) {
  Swarm swarm(suspicion_config());
  const FileId f = swarm.insert_named(0x5058, Pid{0});
  swarm.settle();
  const Pid target = swarm.peer(Pid{0}).target_of(f);

  // With b = 1 the insert placed one holder per subtree. Force every GET
  // to migrate into the alternate subtree by erasing the copy the
  // requester's own subtree holds.
  const core::LookupTree tree(swarm.width(), target);
  const core::SubtreeView view(tree, /*b=*/1);
  std::vector<Pid> holders;
  for (std::uint32_t p = 0; p < 16; ++p) {
    if (swarm.peer(Pid{p}).store().has(f)) holders.push_back(Pid{p});
  }
  ASSERT_EQ(holders.size(), 2u);

  // Requester: holds nothing, and its counterpart in the alternate
  // subtree (the migrated walk's entry point) is not the holder there —
  // so suspicion of the counterpart is observable as re-routing.
  Pid requester{0};
  Pid counterpart{0};
  bool picked = false;
  for (std::uint32_t p = 0; p < 16 && !picked; ++p) {
    const Pid cand{p};
    if (swarm.peer(cand).store().has(f)) continue;
    const std::uint32_t alt_sid =
        (view.subtree_id(cand) + 1) % view.subtree_count();
    const Pid c = view.pid_at(view.subtree_vid(cand), alt_sid);
    bool c_holds = false;
    for (const Pid h : holders) c_holds |= (h == c);
    if (!c_holds && c != cand) {
      requester = cand;
      counterpart = c;
      picked = true;
    }
  }
  ASSERT_TRUE(picked);
  for (const Pid h : holders) {
    if (view.subtree_id(h) == view.subtree_id(requester)) {
      ASSERT_TRUE(swarm.peer(h).store().erase(f));
    }
  }

  FakeSuspicionView fake(swarm.peer(requester).liveness().snapshot());
  fake.suspect(counterpart.value());
  swarm.peer(requester).set_liveness_view(&fake);

  const auto touches = [&] {
    return swarm.peer(counterpart).served() +
           swarm.peer(counterpart).forwarded();
  };

  // Phase 1 — suspected: the migrated walk picks a different entry into
  // the alternate subtree; the suspect sees no traffic, yet the request
  // still completes (the suspect was never the only path).
  const std::int64_t before = touches();
  GetResult while_suspected;
  swarm.get(f, target, requester,
            [&](const GetResult& r) { while_suspected = r; });
  swarm.settle();
  EXPECT_TRUE(while_suspected.ok);
  EXPECT_GT(while_suspected.migrations, 0);
  EXPECT_EQ(touches(), before);

  // Phase 2 — refuted (SWIM alive rebuttal): direct routing through the
  // counterpart resumes immediately; no quarantine lingers.
  fake.refute(counterpart.value());
  GetResult after_refute;
  swarm.get(f, target, requester,
            [&](const GetResult& r) { after_refute = r; });
  swarm.settle();
  EXPECT_TRUE(after_refute.ok);
  EXPECT_GT(touches(), before);

  swarm.peer(requester).set_liveness_view(nullptr);  // before fake dies
}

}  // namespace
}  // namespace lesslog::proto
