// The per-link fault model: plan validation, injector primitives, and
// the Network's faulted send path (accounting, reproducibility, and the
// clean fast path when no plan is installed).
#include "lesslog/proto/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "lesslog/proto/network.hpp"

namespace lesslog::proto {
namespace {

Message to(std::uint32_t dest, std::uint32_t src = 0) {
  Message m;
  m.type = MsgType::kGetRequest;
  m.from = core::Pid{src};
  m.to = core::Pid{dest};
  return m;
}

TEST(FaultPlan, EmptyPlanIsValid) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, RejectsStopBeforeStart) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::corrupt(5.0, 5.0, 0.1));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsNegativeStart) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::duplicate(-1.0, 2.0, 0.1));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsOutOfRangeProbabilities) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::corrupt(0.0, 1.0, 1.5));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.rules.clear();
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, -0.1, 0.5, 1.0));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.rules.clear();
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 0.1, 0.5, 2.0));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsNonPositiveDelaySpike) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::delay_spike(0.0, 1.0, 0.1, 0.0));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsEmptyPartitionGroup) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::partition(0.0, 1.0, {}));
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, ErrorNamesTheRuleAndKind) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::duplicate(0.0, 1.0, 0.5));
  plan.rules.push_back(FaultRule::corrupt(0.0, 1.0, 7.0));
  try {
    plan.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rule 1"), std::string::npos) << what;
    EXPECT_NE(what.find("corrupt"), std::string::npos) << what;
  }
}

TEST(FaultInjector, PartitionSeparatesGroupFromComplement) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::partition(0.0, 1.0, {0, 1, 2}));
  FaultInjector inj(plan);
  inj.activate(0);
  EXPECT_TRUE(inj.partition_blocks(core::Pid{0}, core::Pid{5}));
  EXPECT_TRUE(inj.partition_blocks(core::Pid{5}, core::Pid{2}));
  EXPECT_FALSE(inj.partition_blocks(core::Pid{0}, core::Pid{1}));
  EXPECT_FALSE(inj.partition_blocks(core::Pid{5}, core::Pid{6}));
  EXPECT_FALSE(inj.reachable(core::Pid{0}, core::Pid{5}));
  EXPECT_TRUE(inj.reachable(core::Pid{5}, core::Pid{7}));
  EXPECT_EQ(inj.stats().partition_dropped, 2);
  inj.deactivate(0);
  EXPECT_FALSE(inj.partition_blocks(core::Pid{0}, core::Pid{5}));
  EXPECT_FALSE(inj.any_active());
}

TEST(FaultInjector, InactiveRulesDoNothing) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 1.0, 0.0, 1.0));
  plan.rules.push_back(FaultRule::duplicate(0.0, 1.0, 1.0));
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.any_active());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.burst_drop(core::Pid{0}, core::Pid{1}));
    EXPECT_FALSE(inj.duplicate());
  }
  EXPECT_EQ(inj.stats(), FaultStats{});
}

TEST(FaultInjector, GilbertElliottLosesInBadStateOnly) {
  // p_good_to_bad = 1, p_bad_to_good = 0, loss_good = 0, loss_bad = 1:
  // the first datagram on a link survives (chain starts Good) and every
  // later one is lost.
  FaultPlan plan;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 1.0, 0.0, 1.0));
  FaultInjector inj(plan);
  inj.activate(0);
  EXPECT_FALSE(inj.burst_drop(core::Pid{0}, core::Pid{1}));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(inj.burst_drop(core::Pid{0}, core::Pid{1}));
  }
  // The chain is per directed link: the reverse direction starts Good.
  EXPECT_FALSE(inj.burst_drop(core::Pid{1}, core::Pid{0}));
  EXPECT_EQ(inj.stats().burst_dropped, 20);
}

TEST(FaultInjector, HealResetsGilbertElliottChains) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 1.0, 0.0, 1.0));
  FaultInjector inj(plan);
  inj.activate(0);
  EXPECT_FALSE(inj.burst_drop(core::Pid{0}, core::Pid{1}));  // goes Bad
  EXPECT_TRUE(inj.burst_drop(core::Pid{0}, core::Pid{1}));
  inj.deactivate(0);
  inj.activate(0);  // next window: every chain starts Good again
  EXPECT_FALSE(inj.burst_drop(core::Pid{0}, core::Pid{1}));
}

TEST(FaultInjector, CorruptionAlwaysDefeatsDecode) {
  FaultPlan plan;
  plan.rules.push_back(FaultRule::corrupt(0.0, 1.0, 1.0));
  FaultInjector inj(plan);
  inj.activate(0);
  for (int i = 0; i < 100; ++i) {
    WireBuffer wire{};
    encode_into(to(3), wire);
    ASSERT_TRUE(inj.corrupt(wire));
    EXPECT_FALSE(decode(wire).has_value()) << "iteration " << i;
  }
  EXPECT_EQ(inj.stats().corrupted, 100);
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 0.3, 0.3, 0.8, 0.1));
  plan.rules.push_back(FaultRule::duplicate(0.0, 1.0, 0.4));
  FaultInjector a(plan);
  FaultInjector b(plan);
  a.activate(0);
  a.activate(1);
  b.activate(0);
  b.activate(1);
  for (int i = 0; i < 500; ++i) {
    const core::Pid from{static_cast<std::uint32_t>(i % 7)};
    const core::Pid dest{static_cast<std::uint32_t>(i % 5)};
    EXPECT_EQ(a.burst_drop(from, dest), b.burst_drop(from, dest));
    EXPECT_EQ(a.duplicate(), b.duplicate());
  }
  EXPECT_EQ(a.stats(), b.stats());
}

// A link's Gilbert–Elliott chain must be a pure function of the datagram
// count on that link: interleaving traffic from other links in between
// must not change any link's loss sequence. (This is what makes lossy
// runs shard-count-invariant — shard layout permutes the global datagram
// order but never a single link's order.)
TEST(FaultInjector, BurstChainsInvariantToCrossLinkInterleaving) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 0.3, 0.3, 0.8, 0.1));

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> links = {
      {0, 1}, {1, 0}, {2, 5}, {7, 3}};
  const int kPerLink = 200;

  // Injector A: strict round-robin across the links.
  FaultInjector a(plan);
  a.activate(0);
  std::vector<std::vector<bool>> seq_a(links.size());
  for (int i = 0; i < kPerLink; ++i) {
    for (std::size_t l = 0; l < links.size(); ++l) {
      seq_a[l].push_back(a.burst_drop(core::Pid{links[l].first},
                                      core::Pid{links[l].second}));
    }
  }

  // Injector B: one link at a time, all its datagrams back to back.
  FaultInjector b(plan);
  b.activate(0);
  std::vector<std::vector<bool>> seq_b(links.size());
  for (std::size_t l = 0; l < links.size(); ++l) {
    for (int i = 0; i < kPerLink; ++i) {
      seq_b[l].push_back(b.burst_drop(core::Pid{links[l].first},
                                      core::Pid{links[l].second}));
    }
  }

  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(a.stats(), b.stats());
}

// A healed-and-reopened burst window is a fresh generation: chains start
// Good again with fresh streams, not a replay of the first window.
TEST(FaultInjector, ReopenedBurstWindowIsFreshGeneration) {
  FaultPlan plan;
  plan.seed = 77;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 1.0, 0.4, 0.2, 0.9, 0.05));
  FaultInjector inj(plan);

  const auto run_window = [&] {
    std::vector<bool> seq;
    inj.activate(0);
    for (int i = 0; i < 300; ++i) {
      seq.push_back(inj.burst_drop(core::Pid{4}, core::Pid{9}));
    }
    inj.deactivate(0);
    return seq;
  };
  const std::vector<bool> first = run_window();
  const std::vector<bool> second = run_window();
  EXPECT_NE(first, second);

  // And the whole two-window run replays bit-identically from the plan.
  FaultInjector replay(plan);
  const auto replay_window = [&] {
    std::vector<bool> seq;
    replay.activate(0);
    for (int i = 0; i < 300; ++i) {
      seq.push_back(replay.burst_drop(core::Pid{4}, core::Pid{9}));
    }
    replay.deactivate(0);
    return seq;
  };
  EXPECT_EQ(replay_window(), first);
  EXPECT_EQ(replay_window(), second);
}

// ---- Network integration -------------------------------------------------

TEST(NetworkFaults, NoPlanMeansNoInjector) {
  sim::Engine engine(1);
  Network net(engine, {});
  EXPECT_EQ(net.fault_injector(), nullptr);
}

TEST(NetworkFaults, PartitionWindowDropsThenHeals) {
  sim::Engine engine(1);
  Network net(engine, {.base_latency = 0.01, .jitter = 0.0});
  int arrived = 0;
  net.attach(core::Pid{1}, [&](const Message&) { ++arrived; });
  FaultPlan plan;
  plan.rules.push_back(FaultRule::partition(1.0, 2.0, {0}));
  net.install_fault_plan(plan);

  net.send(to(1, 0));  // before the split: delivered
  engine.run_until(0.5);
  EXPECT_EQ(arrived, 1);

  engine.at(1.5, [&] { net.send(to(1, 0)); });  // inside: dropped
  engine.run_until(1.9);
  EXPECT_EQ(arrived, 1);

  engine.at(2.5, [&] { net.send(to(1, 0)); });  // healed: delivered
  engine.queue().run_all();
  EXPECT_EQ(arrived, 2);
  ASSERT_NE(net.fault_injector(), nullptr);
  EXPECT_EQ(net.fault_injector()->stats().partition_dropped, 1);
  EXPECT_FALSE(net.fault_injector()->any_active());
}

TEST(NetworkFaults, CorruptedDatagramsCountNotDeliver) {
  sim::Engine engine(1);
  Network net(engine, {.base_latency = 0.01, .jitter = 0.0});
  int arrived = 0;
  net.attach(core::Pid{1}, [&](const Message&) { ++arrived; });
  FaultPlan plan;
  plan.rules.push_back(FaultRule::corrupt(0.0, 100.0, 1.0));
  net.install_fault_plan(plan);
  for (int i = 0; i < 25; ++i) net.send(to(1, 0));
  engine.queue().run_all();
  EXPECT_EQ(arrived, 0);
  EXPECT_EQ(net.corrupted(), 25);
  EXPECT_EQ(net.delivered(), 0);
  EXPECT_EQ(net.fault_injector()->stats().corrupted, 25);
}

TEST(NetworkFaults, DuplicatesDeliverTwice) {
  sim::Engine engine(1);
  Network net(engine, {.base_latency = 0.01, .jitter = 0.005});
  int arrived = 0;
  net.attach(core::Pid{1}, [&](const Message&) { ++arrived; });
  FaultPlan plan;
  plan.rules.push_back(FaultRule::duplicate(0.0, 100.0, 1.0));
  net.install_fault_plan(plan);
  for (int i = 0; i < 10; ++i) net.send(to(1, 0));
  engine.queue().run_all();
  EXPECT_EQ(arrived, 20);
  EXPECT_EQ(net.messages_sent(), 10);
  EXPECT_EQ(net.delivered(), 20);
  EXPECT_EQ(net.fault_injector()->stats().duplicated, 10);
}

TEST(NetworkFaults, DelaySpikeReordersAgainstLaterTraffic) {
  sim::Engine engine(1);
  Network net(engine, {.base_latency = 0.01, .jitter = 0.0});
  std::vector<std::uint64_t> order;
  net.attach(core::Pid{1},
             [&](const Message& m) { order.push_back(m.request_id); });
  FaultPlan plan;
  // Only the first datagram is inside the spike window.
  plan.rules.push_back(FaultRule::delay_spike(0.0, 0.001, 1.0, 0.5));
  net.install_fault_plan(plan);
  Message first = to(1, 0);
  first.request_id = 1;
  net.send(first);
  engine.at(0.1, [&] {
    Message second = to(1, 0);
    second.request_id = 2;
    net.send(second);
  });
  engine.queue().run_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);  // the spiked datagram arrives last
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(net.fault_injector()->stats().delay_spikes, 1);
}

TEST(NetworkFaults, CountersReconcileUnderMixedFaults) {
  sim::Engine engine(7);
  Network net(engine, {.base_latency = 0.01, .jitter = 0.002,
                       .drop_probability = 0.05});
  int arrived = 0;
  net.attach(core::Pid{1}, [&](const Message&) { ++arrived; });
  // PID 2 stays detached so some datagrams terminate undeliverable.
  FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back(FaultRule::burst_loss(0.0, 50.0, 0.2, 0.3, 0.9));
  plan.rules.push_back(FaultRule::duplicate(0.0, 50.0, 0.3));
  plan.rules.push_back(FaultRule::corrupt(0.0, 50.0, 0.2));
  plan.rules.push_back(FaultRule::delay_spike(0.0, 50.0, 0.2, 0.3));
  net.install_fault_plan(plan);
  util::Rng pick(11);
  for (int i = 0; i < 2000; ++i) {
    net.send(to(pick.bernoulli(0.8) ? 1u : 2u, 0));
  }
  engine.queue().run_all();
  const FaultStats& s = net.fault_injector()->stats();
  EXPECT_EQ(net.messages_sent() + s.duplicated,
            net.delivered() + net.dropped() + net.undeliverable() +
                net.corrupted() + s.burst_dropped + s.partition_dropped);
  EXPECT_EQ(s.corrupted, net.corrupted());
  EXPECT_EQ(net.delivered(), arrived);
  EXPECT_GT(s.burst_dropped, 0);
  EXPECT_GT(s.duplicated, 0);
  EXPECT_GT(net.corrupted(), 0);
}

TEST(NetworkFaults, InstallRejectsMalformedPlans) {
  sim::Engine engine(1);
  Network net(engine, {});
  FaultPlan plan;
  plan.rules.push_back(FaultRule::corrupt(2.0, 1.0, 0.5));
  EXPECT_THROW(net.install_fault_plan(plan), std::invalid_argument);
  EXPECT_EQ(net.fault_injector(), nullptr);
}

}  // namespace
}  // namespace lesslog::proto
