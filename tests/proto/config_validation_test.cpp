// Construction-time validation of NetworkConfig, ClientConfig, and
// PeerConfig: every rejected field gets its own test, plus proof that
// constructors call validate() (a misconfigured network/client/peer
// cannot be built).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "lesslog/proto/client.hpp"
#include "lesslog/proto/network.hpp"
#include "lesslog/proto/sharded_swarm.hpp"

namespace lesslog::proto {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(NetworkConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(NetworkConfig{}.validate());
}

TEST(NetworkConfigValidation, RejectsNegativeBaseLatency) {
  NetworkConfig cfg;
  cfg.base_latency = -0.001;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNanBaseLatency) {
  NetworkConfig cfg;
  cfg.base_latency = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNegativeJitter) {
  NetworkConfig cfg;
  cfg.jitter = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsDropProbabilityAboveOne) {
  NetworkConfig cfg;
  cfg.drop_probability = 1.001;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNegativeDropProbability) {
  NetworkConfig cfg;
  cfg.drop_probability = -0.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNanDropProbability) {
  NetworkConfig cfg;
  cfg.drop_probability = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, BoundaryValuesAreAccepted) {
  NetworkConfig cfg;
  cfg.base_latency = 0.0;
  cfg.jitter = 0.0;
  cfg.drop_probability = 1.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(NetworkConfigValidation, ConstructorRejectsBadConfig) {
  sim::Engine engine(1);
  NetworkConfig cfg;
  cfg.drop_probability = 2.0;
  EXPECT_THROW(Network(engine, cfg), std::invalid_argument);
}

TEST(ClientConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(ClientConfig{}.validate());
}

TEST(ClientConfigValidation, RejectsZeroTimeout) {
  ClientConfig cfg;
  cfg.timeout = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNegativeTimeout) {
  ClientConfig cfg;
  cfg.timeout = -0.25;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanTimeout) {
  ClientConfig cfg;
  cfg.timeout = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNegativeMaxRetries) {
  ClientConfig cfg;
  cfg.max_retries = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, ZeroRetriesIsValid) {
  ClientConfig cfg;
  cfg.max_retries = 0;
  EXPECT_NO_THROW(cfg.validate());
}

// -- ClientConfig: the adaptive reliability-layer knobs -------------------

TEST(ClientConfigValidation, RejectsZeroRtoFloor) {
  ClientConfig cfg;
  cfg.rto_floor = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanRtoFloor) {
  ClientConfig cfg;
  cfg.rto_floor = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsRtoCapBelowFloor) {
  ClientConfig cfg;
  cfg.rto_floor = 0.5;
  cfg.rto_cap = 0.4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanRtoCap) {
  ClientConfig cfg;
  cfg.rto_cap = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RtoCapEqualToFloorIsValid) {
  ClientConfig cfg;
  cfg.rto_floor = 0.5;
  cfg.rto_cap = 0.5;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClientConfigValidation, RejectsBackoffBaseBelowOne) {
  ClientConfig cfg;
  cfg.backoff_base = 0.5;  // delays would *shrink* per retry
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanBackoffBase) {
  ClientConfig cfg;
  cfg.backoff_base = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, BackoffBaseOfOneIsValid) {
  ClientConfig cfg;
  cfg.backoff_base = 1.0;  // fixed timer, the pre-layer behavior
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClientConfigValidation, RejectsNegativeRetryJitter) {
  ClientConfig cfg;
  cfg.retry_jitter = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsRetryJitterAtOne) {
  ClientConfig cfg;
  cfg.retry_jitter = 1.0;  // a -100% draw would schedule a zero delay
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanRetryJitter) {
  ClientConfig cfg;
  cfg.retry_jitter = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsHedgePercentileBelowHalf) {
  ClientConfig cfg;
  cfg.hedge_percentile = 0.3;  // hedging below the median doubles load
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsHedgePercentileAtOne) {
  ClientConfig cfg;
  cfg.hedge_percentile = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanHedgePercentile) {
  ClientConfig cfg;
  cfg.hedge_percentile = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, HedgePercentileOffOrInRangeIsValid) {
  for (const double p : {0.0, 0.5, 0.95, 0.999}) {
    ClientConfig cfg;
    cfg.hedge_percentile = p;
    EXPECT_NO_THROW(cfg.validate()) << p;
  }
}

TEST(ClientConfigValidation, RejectsZeroBusyBackoff) {
  ClientConfig cfg;
  cfg.busy_backoff = 0.0;  // would hot-loop against a shedding peer
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanBusyBackoff) {
  ClientConfig cfg;
  cfg.busy_backoff = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, ConstructorRejectsBadConfig) {
  sim::Engine engine(1);
  Network net(engine, {});
  Peer peer(core::Pid{0}, 0, util::StatusWord(4, 1), net);
  ClientConfig cfg;
  cfg.timeout = -1.0;
  EXPECT_THROW(Client(peer, net, cfg), std::invalid_argument);
}

TEST(ClientConfigValidation, ConstructorRejectsBadAdaptiveKnobs) {
  sim::Engine engine(1);
  Network net(engine, {});
  Peer peer(core::Pid{0}, 0, util::StatusWord(4, 1), net);
  ClientConfig cfg;
  cfg.adaptive = true;
  cfg.rto_floor = -0.01;
  EXPECT_THROW(Client(peer, net, cfg), std::invalid_argument);
}

// -- PeerConfig: push retransmission and the busy-shedding budget ---------

TEST(PeerConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(PeerConfig{}.validate());
}

TEST(PeerConfigValidation, RejectsZeroPushTimeout) {
  PeerConfig cfg;
  cfg.push_timeout = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNanPushTimeout) {
  PeerConfig cfg;
  cfg.push_timeout = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNegativePushMaxRetries) {
  PeerConfig cfg;
  cfg.push_max_retries = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsPushBackoffBaseBelowOne) {
  PeerConfig cfg;
  cfg.push_backoff_base = 0.9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNanPushBackoffBase) {
  PeerConfig cfg;
  cfg.push_backoff_base = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsPushBackoffCapBelowTimeout) {
  PeerConfig cfg;
  cfg.push_timeout = 0.5;
  cfg.push_backoff_cap = 0.4;  // cap below the very first delay
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNanPushBackoffCap) {
  PeerConfig cfg;
  cfg.push_backoff_cap = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNegativeBusyBudget) {
  PeerConfig cfg;
  cfg.busy_budget = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNegativeBusyRefill) {
  PeerConfig cfg;
  cfg.busy_refill = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsNanBusyRefill) {
  PeerConfig cfg;
  cfg.busy_refill = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, RejectsBudgetThatNeverRefills) {
  PeerConfig cfg;
  cfg.busy_budget = 4;
  cfg.busy_refill = 0.0;  // a bucket that never refills sheds forever
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PeerConfigValidation, BusyKnobsBoundaryValuesAreAccepted) {
  PeerConfig off;  // both zero: shedding disabled, the default
  off.busy_budget = 0;
  off.busy_refill = 0.0;
  EXPECT_NO_THROW(off.validate());
  PeerConfig slow;  // tiny but positive refill is legal
  slow.busy_budget = 1;
  slow.busy_refill = 0.001;
  EXPECT_NO_THROW(slow.validate());
}

TEST(PeerConfigValidation, ConstructorRejectsBadConfig) {
  sim::Engine engine(1);
  Network net(engine, {});
  PeerConfig cfg;
  cfg.busy_budget = 2;  // positive budget, zero refill
  EXPECT_THROW(
      Peer(core::Pid{0}, 0, util::StatusWord(4, 1), net, cfg),
      std::invalid_argument);
}

// -- ShardedSwarm: the adaptive-lookahead schedulability rejection --------

ShardedSwarm::Config sharded_base() {
  ShardedSwarm::Config cfg;
  cfg.m = 8;
  cfg.nodes = 64;
  cfg.shards = 4;
  return cfg;
}

TEST(ShardedSwarmValidation, RejectsShardsBeyondTheIdSpace) {
  ShardedSwarm::Config cfg = sharded_base();
  cfg.m = 3;
  cfg.nodes = 8;
  cfg.shards = 9;  // 2^3 == 8 < 9
  EXPECT_THROW(ShardedSwarm{cfg}, std::invalid_argument);
}

TEST(ShardedSwarmValidation, RejectsZeroFloorAndNamesTheRequirement) {
  // base_latency == 0, no geography: every pairwise cross-shard latency
  // lower bound is zero, so no conservative window exists. The message
  // must say which knob to turn, not just "invalid".
  ShardedSwarm::Config cfg = sharded_base();
  cfg.net.base_latency = 0.0;
  try {
    ShardedSwarm swarm(cfg);
    FAIL() << "zero-floor multi-shard config must not construct";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pairwise cross-shard latency floor"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("adaptive lookahead"), std::string::npos) << what;
    EXPECT_NE(what.find("base_latency"), std::string::npos) << what;
  }
}

TEST(ShardedSwarmValidation, ZeroBaseConstructsWithDisjointGeography) {
  // The relaxation the adaptive per-pair lookahead buys: base_latency
  // may be zero when clustered geography under the range map gives every
  // shard its own region, because the pairwise distance floors are then
  // strictly positive and become the windows.
  ShardedSwarm::Config cfg = sharded_base();
  cfg.net.base_latency = 0.0;
  cfg.geo = Geography{.seed = 5, .clusters = 4, .cluster_radius = 0.02};
  ASSERT_NO_THROW(ShardedSwarm{cfg});
  ShardedSwarm swarm(cfg);
  for (std::size_t i = 0; i < swarm.shards(); ++i) {
    for (std::size_t j = 0; j < swarm.shards(); ++j) {
      if (i == j) continue;
      EXPECT_GT(swarm.pair_lookahead(i, j), 0.0) << i << "," << j;
    }
  }
}

TEST(ShardedSwarmValidation, ZeroBaseStillRejectedUnderTheSubtreeMap) {
  // The subtree map interleaves the ID space, so clustered geography
  // gives shard regions that overlap everywhere: the floor collapses to
  // base_latency, and zero stays genuinely unschedulable.
  ShardedSwarm::Config cfg = sharded_base();
  cfg.net.base_latency = 0.0;
  cfg.shard_map = ShardMap::Kind::kSubtree;
  cfg.geo = Geography{.seed = 5, .clusters = 4, .cluster_radius = 0.02};
  EXPECT_THROW(ShardedSwarm{cfg}, std::invalid_argument);
}

TEST(ShardedSwarmValidation, SingleShardNeedsNoFloor) {
  ShardedSwarm::Config cfg = sharded_base();
  cfg.shards = 1;
  cfg.net.base_latency = 0.0;
  EXPECT_NO_THROW(ShardedSwarm{cfg});
}

}  // namespace
}  // namespace lesslog::proto
