// Construction-time validation of NetworkConfig and ClientConfig: every
// rejected field gets its own test, plus proof that constructors call
// validate() (a misconfigured network/client cannot be built).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "lesslog/proto/client.hpp"
#include "lesslog/proto/network.hpp"

namespace lesslog::proto {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(NetworkConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(NetworkConfig{}.validate());
}

TEST(NetworkConfigValidation, RejectsNegativeBaseLatency) {
  NetworkConfig cfg;
  cfg.base_latency = -0.001;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNanBaseLatency) {
  NetworkConfig cfg;
  cfg.base_latency = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNegativeJitter) {
  NetworkConfig cfg;
  cfg.jitter = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsDropProbabilityAboveOne) {
  NetworkConfig cfg;
  cfg.drop_probability = 1.001;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNegativeDropProbability) {
  NetworkConfig cfg;
  cfg.drop_probability = -0.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, RejectsNanDropProbability) {
  NetworkConfig cfg;
  cfg.drop_probability = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(NetworkConfigValidation, BoundaryValuesAreAccepted) {
  NetworkConfig cfg;
  cfg.base_latency = 0.0;
  cfg.jitter = 0.0;
  cfg.drop_probability = 1.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(NetworkConfigValidation, ConstructorRejectsBadConfig) {
  sim::Engine engine(1);
  NetworkConfig cfg;
  cfg.drop_probability = 2.0;
  EXPECT_THROW(Network(engine, cfg), std::invalid_argument);
}

TEST(ClientConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(ClientConfig{}.validate());
}

TEST(ClientConfigValidation, RejectsZeroTimeout) {
  ClientConfig cfg;
  cfg.timeout = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNegativeTimeout) {
  ClientConfig cfg;
  cfg.timeout = -0.25;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNanTimeout) {
  ClientConfig cfg;
  cfg.timeout = kNan;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, RejectsNegativeMaxRetries) {
  ClientConfig cfg;
  cfg.max_retries = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClientConfigValidation, ZeroRetriesIsValid) {
  ClientConfig cfg;
  cfg.max_retries = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ClientConfigValidation, ConstructorRejectsBadConfig) {
  sim::Engine engine(1);
  Network net(engine, {});
  Peer peer(core::Pid{0}, 0, util::StatusWord(4, 1), net);
  ClientConfig cfg;
  cfg.timeout = -1.0;
  EXPECT_THROW(Client(peer, net, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace lesslog::proto
