#include "lesslog/baseline/chord.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lesslog/util/rng.hpp"

namespace lesslog::baseline {
namespace {

util::StatusWord all_live(int m) {
  return util::StatusWord(m, util::space_size(m));
}

TEST(Chord, SuccessorOnFullRingIsIdentity) {
  const ChordRing ring(util::BorrowedView{all_live(4)});
  for (std::uint32_t id = 0; id < 16; ++id) {
    EXPECT_EQ(ring.successor(id), id);
  }
}

TEST(Chord, SuccessorWrapsAround) {
  util::StatusWord live(4);
  live.set_live(2);
  live.set_live(9);
  const ChordRing ring(util::BorrowedView{live});
  EXPECT_EQ(ring.successor(0), 2u);
  EXPECT_EQ(ring.successor(2), 2u);
  EXPECT_EQ(ring.successor(3), 9u);
  EXPECT_EQ(ring.successor(10), 2u);  // wraps
  EXPECT_EQ(ring.successor(15), 2u);
}

TEST(Chord, SingleNodeOwnsEverything) {
  util::StatusWord live(4);
  live.set_live(6);
  const ChordRing ring(util::BorrowedView{live});
  for (std::uint32_t key = 0; key < 16; ++key) {
    EXPECT_EQ(ring.successor(key), 6u);
    EXPECT_EQ(ring.lookup_hops(6, key), 0);
  }
}

TEST(Chord, LookupReachesResponsibleNode) {
  util::StatusWord live = all_live(6);
  util::Rng rng(1);
  for (std::uint32_t dead : rng.sample_indices(64, 30)) live.set_dead(dead);
  const ChordRing ring(util::BorrowedView{live});
  for (std::uint32_t from = 0; from < 64; ++from) {
    if (!live.is_live(from)) continue;
    for (std::uint32_t key = 0; key < 64; key += 7) {
      const std::vector<std::uint32_t> path = ring.lookup_path(from, key);
      EXPECT_EQ(path.front(), from);
      EXPECT_EQ(path.back(), ring.successor(key));
    }
  }
}

TEST(Chord, PathNodesAreLive) {
  util::StatusWord live = all_live(5);
  util::Rng rng(2);
  for (std::uint32_t dead : rng.sample_indices(32, 12)) live.set_dead(dead);
  const ChordRing ring(util::BorrowedView{live});
  for (std::uint32_t from = 0; from < 32; ++from) {
    if (!live.is_live(from)) continue;
    const std::vector<std::uint32_t> path = ring.lookup_path(from, 13);
    for (const std::uint32_t hop : path) {
      EXPECT_TRUE(live.is_live(hop));
    }
  }
}

TEST(Chord, HopsAreLogarithmicallyBounded) {
  const int m = 10;
  const ChordRing ring(util::BorrowedView{all_live(m)});
  util::Rng rng(3);
  int worst = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const auto from = static_cast<std::uint32_t>(rng.bounded(1024));
    const auto key = static_cast<std::uint32_t>(rng.bounded(1024));
    worst = std::max(worst, ring.lookup_hops(from, key));
  }
  // Greedy finger routing halves the distance per hop: <= m hops.
  EXPECT_LE(worst, m);
  EXPECT_GT(worst, 1);
}

TEST(Chord, MeanHopsNearHalfLogN) {
  const int m = 8;
  const ChordRing ring(util::BorrowedView{all_live(m)});
  util::Rng rng(4);
  double total = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.bounded(256));
    const auto key = static_cast<std::uint32_t>(rng.bounded(256));
    total += ring.lookup_hops(from, key);
  }
  const double mean = total / trials;
  // Chord's expected lookup is ~(1/2) log2 N = 4 on a full 256-ring.
  EXPECT_GT(mean, 2.5);
  EXPECT_LT(mean, 5.5);
}

TEST(Chord, HopCountMatchesPathLength) {
  const ChordRing ring(util::BorrowedView{all_live(6)});
  for (std::uint32_t from = 0; from < 64; from += 5) {
    for (std::uint32_t key = 0; key < 64; key += 11) {
      EXPECT_EQ(ring.lookup_hops(from, key),
                static_cast<int>(ring.lookup_path(from, key).size()) - 1);
    }
  }
}

}  // namespace
}  // namespace lesslog::baseline
