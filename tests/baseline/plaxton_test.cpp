#include "lesslog/baseline/plaxton.hpp"

#include <gtest/gtest.h>

#include "lesslog/util/rng.hpp"

namespace lesslog::baseline {
namespace {

util::StatusWord all_live(int m) {
  return util::StatusWord(m, util::space_size(m));
}

TEST(Plaxton, DigitExtraction) {
  const PlaxtonMesh mesh(util::BorrowedView{all_live(4)}, 2);  // 2 digits of 2 bits
  EXPECT_EQ(mesh.digits(), 2);
  EXPECT_EQ(mesh.digit_base(), 4);
  EXPECT_EQ(mesh.digit(0b1101, 0), 0b11u);
  EXPECT_EQ(mesh.digit(0b1101, 1), 0b01u);
}

TEST(Plaxton, PaddedWidthWhenBitsDontDivide) {
  const PlaxtonMesh mesh(util::BorrowedView{all_live(5)}, 2);  // ceil(5/2) = 3 digits
  EXPECT_EQ(mesh.digits(), 3);
  // id 0b10110 -> padded 6 bits 010110 -> digits 01, 01, 10.
  EXPECT_EQ(mesh.digit(0b10110, 0), 0b01u);
  EXPECT_EQ(mesh.digit(0b10110, 1), 0b01u);
  EXPECT_EQ(mesh.digit(0b10110, 2), 0b10u);
}

TEST(Plaxton, FullMeshExactOwner) {
  const PlaxtonMesh mesh(util::BorrowedView{all_live(6)}, 2);
  for (std::uint32_t key = 0; key < 64; ++key) {
    EXPECT_EQ(mesh.root_of(key), key);  // every id live -> exact match
  }
}

TEST(Plaxton, LookupReachesRootFromEveryStart) {
  util::StatusWord live = all_live(6);
  util::Rng rng(1);
  for (const std::uint32_t dead : rng.sample_indices(64, 30)) {
    live.set_dead(dead);
  }
  const PlaxtonMesh mesh(util::BorrowedView{live}, 2);
  for (std::uint32_t key = 0; key < 64; key += 5) {
    const std::uint32_t root = mesh.root_of(key);
    EXPECT_TRUE(live.is_live(root));
    for (std::uint32_t from = 0; from < 64; ++from) {
      if (!live.is_live(from)) continue;
      const std::vector<std::uint32_t> path = mesh.lookup_path(from, key);
      EXPECT_EQ(path.front(), from);
      EXPECT_EQ(path.back(), root) << "key=" << key << " from=" << from;
      for (const std::uint32_t hop : path) EXPECT_TRUE(live.is_live(hop));
    }
  }
}

TEST(Plaxton, HopsBoundedByDigitsPlusOne) {
  util::StatusWord live = all_live(10);
  util::Rng rng(2);
  for (const std::uint32_t dead : rng.sample_indices(1024, 300)) {
    live.set_dead(dead);
  }
  for (const int bits : {1, 2, 4}) {
    const PlaxtonMesh mesh(util::BorrowedView{live}, bits);
    for (int trial = 0; trial < 300; ++trial) {
      std::uint32_t from;
      do {
        from = static_cast<std::uint32_t>(rng.bounded(1024));
      } while (!live.is_live(from));
      const auto key = static_cast<std::uint32_t>(rng.bounded(1024));
      EXPECT_LE(mesh.lookup_hops(from, key), mesh.digits() + 1);
    }
  }
}

TEST(Plaxton, LargerDigitsShortenPaths) {
  const util::StatusWord live = all_live(10);
  const PlaxtonMesh binary(util::BorrowedView{live}, 1);
  const PlaxtonMesh hex(util::BorrowedView{live}, 4);
  util::Rng rng(3);
  double binary_total = 0.0;
  double hex_total = 0.0;
  const int trials = 1000;
  for (int t = 0; t < trials; ++t) {
    const auto from = static_cast<std::uint32_t>(rng.bounded(1024));
    const auto key = static_cast<std::uint32_t>(rng.bounded(1024));
    binary_total += binary.lookup_hops(from, key);
    hex_total += hex.lookup_hops(from, key);
  }
  EXPECT_LT(hex_total, binary_total);
}

TEST(Plaxton, PrefixHopsMonotonicallyExtendMatch) {
  util::StatusWord live = all_live(8);
  util::Rng rng(4);
  for (const std::uint32_t dead : rng.sample_indices(256, 100)) {
    live.set_dead(dead);
  }
  const PlaxtonMesh mesh(util::BorrowedView{live}, 2);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint32_t from;
    do {
      from = static_cast<std::uint32_t>(rng.bounded(256));
    } while (!live.is_live(from));
    const auto key = static_cast<std::uint32_t>(rng.bounded(256));
    const std::vector<std::uint32_t> path = mesh.lookup_path(from, key);
    // The shared digit prefix never shrinks along the path (the final
    // representative hop keeps the same length).
    int prev = -1;
    for (std::size_t i = 0; i < path.size(); ++i) {
      int p = 0;
      while (p < mesh.digits() && mesh.digit(path[i], p) ==
                                      mesh.digit(key, p)) {
        ++p;
      }
      EXPECT_GE(p, prev) << "hop " << i;
      prev = p;
    }
  }
}

TEST(Plaxton, SingleNodeOwnsEverything) {
  util::StatusWord live(4);
  live.set_live(11);
  const PlaxtonMesh mesh(util::BorrowedView{live}, 2);
  for (std::uint32_t key = 0; key < 16; ++key) {
    EXPECT_EQ(mesh.root_of(key), 11u);
    EXPECT_EQ(mesh.lookup_hops(11, key), 0);
  }
}

}  // namespace
}  // namespace lesslog::baseline
