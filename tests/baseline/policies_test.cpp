#include "lesslog/baseline/policy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/find_live_node.hpp"

namespace lesslog::baseline {
namespace {

using core::Pid;

struct Harness {
  explicit Harness(int m, std::uint32_t root, double rate = 1600.0)
      : tree(m, Pid{root}),
        view(tree, 0),
        live(m, util::space_size(m)),
        has_copy(util::space_size(m), 0),
        demand(sim::uniform_workload(util::BorrowedView(live), rate)),
        rng(17) {
    has_copy[root] = 1;
  }

  sim::PlacementContext ctx(Pid overloaded) {
    report = sim::solve_load(tree, has_copy, live, demand);
    return sim::PlacementContext{
        tree,     view,
        overloaded,
        live,     has_copy,
        [this]() -> const sim::LoadReport& { return report; },
        demand,   rng};
  }

  core::LookupTree tree;
  core::SubtreeView view;
  util::StatusWord live;
  sim::CopyMap has_copy;
  sim::Workload demand;
  sim::LoadReport report;
  util::Rng rng;
};

TEST(LessLogPolicy, MatchesCoreReplicationRule) {
  Harness h(4, 4);
  const sim::PlacementFn policy = lesslog_policy();
  const std::optional<Pid> p = policy(h.ctx(Pid{4}));
  EXPECT_EQ(p, Pid{5});  // head of P(4)'s children list
}

TEST(LessLogPolicy, WalksChildrenListAcrossCalls) {
  Harness h(4, 4);
  const sim::PlacementFn policy = lesslog_policy();
  const std::vector<Pid> expected{Pid{5}, Pid{6}, Pid{0}, Pid{12}};
  for (const Pid want : expected) {
    const std::optional<Pid> p = policy(h.ctx(Pid{4}));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, want);
    h.has_copy[p->value()] = 1;
  }
}

TEST(RandomPolicy, PicksLiveCopylessNodes) {
  Harness h(4, 4);
  const sim::PlacementFn policy = random_policy();
  for (int i = 0; i < 15; ++i) {
    const std::optional<Pid> p = policy(h.ctx(Pid{4}));
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(h.live.is_live(p->value()));
    EXPECT_EQ(h.has_copy[p->value()], 0);
    EXPECT_NE(*p, Pid{4});
    h.has_copy[p->value()] = 1;
  }
  // Every node now holds a copy: no candidate remains.
  EXPECT_EQ(policy(h.ctx(Pid{4})), std::nullopt);
}

TEST(RandomPolicy, SpreadsOverManyNodes) {
  Harness h(6, 0);
  const sim::PlacementFn policy = random_policy();
  std::set<std::uint32_t> picks;
  for (int i = 0; i < 60; ++i) {
    const std::optional<Pid> p = policy(h.ctx(Pid{0}));
    ASSERT_TRUE(p.has_value());
    picks.insert(p->value());
  }
  // Without placement memory, 60 draws over 63 candidates land on many
  // distinct nodes.
  EXPECT_GT(picks.size(), 30u);
}

TEST(LogBasedPolicy, PicksChildForwardingMostFlow) {
  Harness h(4, 4);
  const sim::PlacementFn policy = logbased_policy();
  // Under uniform demand, the children list head (largest subtree) also
  // forwards the most flow, so log-based and LessLog agree on the first
  // placement.
  const std::optional<Pid> p = policy(h.ctx(Pid{4}));
  EXPECT_EQ(p, Pid{5});
}

TEST(LogBasedPolicy, FollowsSkewedFlowInsteadOfStructure) {
  Harness h(4, 4);
  // Rewire demand: all load comes from P(12)'s single-node subtree... use
  // P(6)'s subtree instead (children P(7)? vid of 6 is 1101, subtree
  // {1101,1001,0101,0001} -> pids 6,2,14,10). Give all demand to those.
  for (auto& r : h.demand.rate) r = 0.0;
  h.demand.rate[6] = 400.0;
  h.demand.rate[2] = 400.0;
  h.demand.rate[14] = 400.0;
  h.demand.rate[10] = 400.0;
  const sim::PlacementFn policy = logbased_policy();
  const std::optional<Pid> p = policy(h.ctx(Pid{4}));
  // The structural head P(5) forwards nothing; P(6) forwards 1600/s.
  EXPECT_EQ(p, Pid{6});
}

TEST(LogBasedPolicy, FallsBackToStructureWhenNoFlow) {
  Harness h(4, 4);
  for (auto& r : h.demand.rate) r = 0.0;
  h.demand.rate[4] = 500.0;  // all demand is the target's own clients
  const sim::PlacementFn policy = logbased_policy();
  const std::optional<Pid> p = policy(h.ctx(Pid{4}));
  EXPECT_EQ(p, Pid{5});  // deterministic structural fallback
}

TEST(LogBasedPolicy, SkipsChildrenWithCopies) {
  Harness h(4, 4);
  h.has_copy[5] = 1;
  const sim::PlacementFn policy = logbased_policy();
  const std::optional<Pid> p = policy(h.ctx(Pid{4}));
  ASSERT_TRUE(p.has_value());
  EXPECT_NE(*p, Pid{5});
}

TEST(AllPolicies, NulloptWhenEveryNodeHoldsACopy) {
  for (const auto& policy :
       {lesslog_policy(), random_policy(), logbased_policy()}) {
    Harness h(3, 2);
    for (auto& c : h.has_copy) c = 1;
    EXPECT_EQ(policy(h.ctx(Pid{2})), std::nullopt);
  }
}

}  // namespace
}  // namespace lesslog::baseline
