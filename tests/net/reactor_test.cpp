// The epoll reactor: dispatch, level-triggered re-arm, mask changes, and
// the mid-dispatch-removal guarantee, exercised with pipes (no sockets).
#include "lesslog/net/reactor.hpp"

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <array>

namespace lesslog::net {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  [[nodiscard]] int rd() const { return fds[0]; }
  [[nodiscard]] int wr() const { return fds[1]; }
};

TEST(Reactor, DispatchesReadableFds) {
  Reactor r;
  Pipe p;
  int calls = 0;
  r.add(p.rd(), EPOLLIN, [&](std::uint32_t events) {
    EXPECT_NE(events & EPOLLIN, 0u);
    ++calls;
    char c;
    EXPECT_EQ(::read(p.rd(), &c, 1), 1);
  });
  EXPECT_EQ(r.poll(0), 0);  // nothing pending
  ASSERT_EQ(::write(p.wr(), "x", 1), 1);
  EXPECT_EQ(r.poll(100), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.poll(0), 0);  // drained: level-trigger goes quiet
}

TEST(Reactor, LevelTriggeredRearmsUntilDrained) {
  Reactor r;
  Pipe p;
  int calls = 0;
  ASSERT_EQ(::write(p.wr(), "abc", 3), 3);
  r.add(p.rd(), EPOLLIN, [&](std::uint32_t) {
    ++calls;
    char c;
    EXPECT_EQ(::read(p.rd(), &c, 1), 1);  // drain ONE byte per dispatch
  });
  // Three polls, three dispatches: undrained readiness re-fires.
  EXPECT_EQ(r.poll(100), 1);
  EXPECT_EQ(r.poll(100), 1);
  EXPECT_EQ(r.poll(100), 1);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(r.poll(0), 0);
}

TEST(Reactor, ModifySwitchesTheMask) {
  Reactor r;
  Pipe p;
  int calls = 0;
  ASSERT_EQ(::write(p.wr(), "x", 1), 1);
  r.add(p.rd(), 0, [&](std::uint32_t) { ++calls; });  // masked off
  EXPECT_EQ(r.poll(0), 0);
  r.modify(p.rd(), EPOLLIN);
  EXPECT_EQ(r.poll(100), 1);
  EXPECT_EQ(calls, 1);
}

TEST(Reactor, RemoveIsIdempotentAndStopsDispatch) {
  Reactor r;
  Pipe p;
  int calls = 0;
  r.add(p.rd(), EPOLLIN, [&](std::uint32_t) { ++calls; });
  ASSERT_EQ(::write(p.wr(), "x", 1), 1);
  EXPECT_TRUE(r.watched(p.rd()));
  r.remove(p.rd());
  r.remove(p.rd());  // second remove: no-op
  EXPECT_FALSE(r.watched(p.rd()));
  EXPECT_EQ(r.poll(0), 0);
  EXPECT_EQ(calls, 0);
}

// A callback that removes another ready fd mid-dispatch: the removed
// fd's callback must not run afterwards, and nothing may crash.
TEST(Reactor, CallbackMayRemoveAnotherReadyFdMidDispatch) {
  Reactor r;
  Pipe p1;
  Pipe p2;
  int runs1 = 0;
  int runs2 = 0;
  r.add(p1.rd(), EPOLLIN, [&](std::uint32_t) {
    ++runs1;
    char c;
    (void)::read(p1.rd(), &c, 1);
    r.remove(p2.rd());  // p2 is also ready this round
  });
  r.add(p2.rd(), EPOLLIN, [&](std::uint32_t) {
    ++runs2;
    char c;
    (void)::read(p2.rd(), &c, 1);
    r.remove(p1.rd());
  });
  ASSERT_EQ(::write(p1.wr(), "x", 1), 1);
  ASSERT_EQ(::write(p2.wr(), "x", 1), 1);
  (void)r.poll(100);
  // Exactly one of the two ran; the one it removed did not, and only
  // the removed fd left the watch set.
  EXPECT_EQ(runs1 + runs2, 1);
  EXPECT_EQ(r.watched_count(), 1u);
}

TEST(Reactor, CallbackMayRemoveItself) {
  Reactor r;
  Pipe p;
  int calls = 0;
  r.add(p.rd(), EPOLLIN, [&](std::uint32_t) {
    ++calls;
    char c;
    (void)::read(p.rd(), &c, 1);
    r.remove(p.rd());
  });
  ASSERT_EQ(::write(p.wr(), "x", 1), 1);
  EXPECT_EQ(r.poll(100), 1);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(::write(p.wr(), "y", 1), 1);
  EXPECT_EQ(r.poll(0), 0);  // gone for good
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace lesslog::net
