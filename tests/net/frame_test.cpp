// Byte-stream reassembly: every chunking of a frame stream must yield
// the same frames — short reads, coalesced reads, and ring wrap-around
// are the transport's daily weather, not edge cases.
#include "lesslog/net/frame.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lesslog/proto/message.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog::net {
namespace {

std::vector<std::uint8_t> frame_stream(int frames, util::Rng& rng) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(frames) * proto::kWireSize);
  for (int i = 0; i < frames; ++i) {
    proto::Message m;
    m.type = static_cast<proto::MsgType>(1 + rng.bounded(14));
    m.from = core::Pid{static_cast<std::uint32_t>(rng.bounded(64))};
    m.to = core::Pid{static_cast<std::uint32_t>(rng.bounded(64))};
    m.file = core::FileId{rng()};
    m.request_id = rng();
    m.version = rng();
    m.hop_count = static_cast<std::uint8_t>(rng.bounded(100));
    m.ok = rng.bounded(2) == 1;
    proto::WireBuffer wire{};
    proto::encode_into(m, wire);
    bytes.insert(bytes.end(), wire.begin(), wire.end());
  }
  return bytes;
}

TEST(RingBuffer, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(RingBuffer(100).capacity(), 128u);
  EXPECT_EQ(RingBuffer(128).capacity(), 128u);
  EXPECT_EQ(RingBuffer(1).capacity(), 64u);  // floor guard
}

TEST(RingBuffer, AppendPopRoundTripsAcrossTheWrap) {
  RingBuffer ring(64);  // capacity 64: wraps every ~1.5 frames
  util::Rng rng(99);
  // Drive enough traffic that head_ crosses the wrap many times.
  std::vector<std::uint8_t> expect;
  std::vector<std::uint8_t> got;
  for (int round = 0; round < 500; ++round) {
    const std::size_t n = 1 + rng.bounded(48);
    std::vector<std::uint8_t> chunk(n);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.bounded(256));
    const std::size_t accepted = ring.append(chunk);
    ASSERT_LE(accepted, n);
    expect.insert(expect.end(), chunk.begin(),
                  chunk.begin() + static_cast<std::ptrdiff_t>(accepted));
    // Drain a random amount of whatever is buffered.
    const std::size_t want = rng.bounded(ring.size() + 1);
    std::vector<std::uint8_t> out(want);
    if (want > 0) {
      ASSERT_TRUE(ring.pop(out.data(), want));
      got.insert(got.end(), out.begin(), out.end());
    }
  }
  // Flush the tail.
  std::vector<std::uint8_t> tail(ring.size());
  if (!tail.empty()) {
    ASSERT_TRUE(ring.pop(tail.data(), tail.size()));
  }
  got.insert(got.end(), tail.begin(), tail.end());
  EXPECT_EQ(got, expect);
}

TEST(RingBuffer, PopRefusesWhenShort) {
  RingBuffer ring(64);
  const std::uint8_t bytes[3] = {1, 2, 3};
  ASSERT_EQ(ring.append(bytes), 3u);
  std::uint8_t out[4];
  EXPECT_FALSE(ring.pop(out, 4));
  EXPECT_EQ(ring.size(), 3u);  // a refused pop consumes nothing
  EXPECT_TRUE(ring.pop(out, 3));
}

TEST(RingBuffer, WriteSpansCoverExactlyTheFreeSpace) {
  RingBuffer ring(64);
  util::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    auto spans = ring.write_spans();
    ASSERT_EQ(spans[0].size() + spans[1].size(), ring.free_space());
    // Fill a random prefix through the spans, as readv would.
    const std::size_t n = rng.bounded(ring.free_space() + 1);
    std::size_t left = n;
    for (auto& s : spans) {
      const std::size_t take = std::min(left, s.size());
      for (std::size_t i = 0; i < take; ++i) {
        s[i] = static_cast<std::uint8_t>(i);
      }
      left -= take;
    }
    ring.commit(n);
    const std::size_t drain = rng.bounded(ring.size() + 1);
    std::vector<std::uint8_t> out(drain);
    if (drain > 0) {
      ASSERT_TRUE(ring.pop(out.data(), drain));
    }
  }
}

// The tentpole property: feeding a stream of F frames in chunks of ANY
// size (1..43 bytes) yields exactly F frames, byte-identical to the
// stream, regardless of how reads split or coalesce frame boundaries.
TEST(FrameReassembler, EveryChunkSizeYieldsIdenticalFrames) {
  util::Rng rng(4242);
  const int kFrames = 24;
  const std::vector<std::uint8_t> stream = frame_stream(kFrames, rng);
  for (std::size_t chunk = 1; chunk <= proto::kWireSize; ++chunk) {
    FrameReassembler reasm(256);
    std::vector<std::uint8_t> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      ASSERT_EQ(reasm.ring().append({stream.data() + off, n}), n)
          << "chunk=" << chunk;
      off += n;
      proto::WireBuffer frame{};
      while (reasm.next_frame(frame)) {
        got.insert(got.end(), frame.begin(), frame.end());
      }
    }
    EXPECT_EQ(reasm.frames(), kFrames) << "chunk=" << chunk;
    EXPECT_EQ(reasm.buffered(), 0u) << "chunk=" << chunk;
    EXPECT_EQ(got, stream) << "chunk=" << chunk;
  }
}

// Random chunk sizes (the realistic case: TCP hands back arbitrary
// spans) across many trials, with a small ring forcing constant wrap.
TEST(FrameReassembler, RandomChunkingIsLossless) {
  util::Rng rng(1337);
  for (int trial = 0; trial < 50; ++trial) {
    const int frames = 1 + static_cast<int>(rng.bounded(40));
    const std::vector<std::uint8_t> stream = frame_stream(frames, rng);
    FrameReassembler reasm(128);
    std::vector<std::uint8_t> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t room = reasm.ring().free_space();
      ASSERT_GT(room, 0u);
      const std::size_t n =
          std::min(1 + rng.bounded(room), stream.size() - off);
      ASSERT_EQ(reasm.ring().append({stream.data() + off, n}), n);
      off += n;
      proto::WireBuffer frame{};
      while (reasm.next_frame(frame)) {
        got.insert(got.end(), frame.begin(), frame.end());
      }
    }
    ASSERT_EQ(reasm.frames(), frames);
    ASSERT_EQ(got, stream);
  }
}

TEST(FrameReassembler, PartialTailWaitsForMoreBytes) {
  util::Rng rng(5);
  const std::vector<std::uint8_t> stream = frame_stream(1, rng);
  FrameReassembler reasm(256);
  proto::WireBuffer frame{};
  ASSERT_EQ(reasm.ring().append({stream.data(), proto::kWireSize - 1}),
            proto::kWireSize - 1);
  EXPECT_FALSE(reasm.next_frame(frame));
  EXPECT_EQ(reasm.buffered(), proto::kWireSize - 1);
  ASSERT_EQ(reasm.ring().append({stream.data() + proto::kWireSize - 1, 1}),
            1u);
  ASSERT_TRUE(reasm.next_frame(frame));
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), stream.begin()));
}

}  // namespace
}  // namespace lesslog::net
