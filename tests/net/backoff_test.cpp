// Reconnect backoff: the clamp ladder (base, multiply, cap, reset) that
// schedules connection retries — the same floor/multiply/cap shape as
// the client's adaptive retry delays.
#include "lesslog/net/backoff.hpp"

#include <gtest/gtest.h>

namespace lesslog::net {
namespace {

TEST(Backoff, ClimbsTheLadderAndClampsAtTheCap) {
  Backoff b(0.05, 2.0, 0.3);
  EXPECT_DOUBLE_EQ(b.next(), 0.05);
  EXPECT_DOUBLE_EQ(b.next(), 0.10);
  EXPECT_DOUBLE_EQ(b.next(), 0.20);
  EXPECT_DOUBLE_EQ(b.next(), 0.30);  // 0.4 clamped
  EXPECT_DOUBLE_EQ(b.next(), 0.30);  // stays pinned
  EXPECT_DOUBLE_EQ(b.current(), 0.30);
}

TEST(Backoff, CurrentPeeksWithoutAdvancing) {
  Backoff b(0.1, 3.0, 10.0);
  EXPECT_DOUBLE_EQ(b.current(), 0.1);
  EXPECT_DOUBLE_EQ(b.current(), 0.1);
  EXPECT_DOUBLE_EQ(b.next(), 0.1);
  EXPECT_DOUBLE_EQ(b.current(), 0.3);
}

TEST(Backoff, ResetReturnsToTheFloor) {
  Backoff b(0.05, 2.0, 2.0);
  for (int i = 0; i < 10; ++i) (void)b.next();
  EXPECT_DOUBLE_EQ(b.current(), 2.0);
  b.reset();
  EXPECT_DOUBLE_EQ(b.next(), 0.05);
}

TEST(Backoff, CapBelowBasePinsImmediately) {
  Backoff b(0.5, 2.0, 0.2);
  EXPECT_DOUBLE_EQ(b.next(), 0.5);  // first attempt uses the base as-is
  EXPECT_DOUBLE_EQ(b.next(), 0.2);  // then the cap takes over
}

}  // namespace
}  // namespace lesslog::net
