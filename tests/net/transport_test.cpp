// Socket transport state machine on the loopback: host-map parsing,
// write-queue backpressure, unroutable drops, frame delivery, and the
// reconnect/backoff ladder — all with ephemeral (port 0) listeners so
// tests never collide on fixed ports.
#include "lesslog/net/transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "lesslog/util/rng.hpp"

namespace lesslog::net {
namespace {

HostMap two_nodes() {
  HostMap map;
  map.add(HostEntry{0, 31, "127.0.0.1", 0, false});
  map.add(HostEntry{32, 63, "127.0.0.1", 0, false});
  return map;
}

proto::WireBuffer some_frame(util::Rng& rng, std::uint32_t to) {
  proto::Message m;
  m.type = proto::MsgType::kGetRequest;
  m.from = core::Pid{static_cast<std::uint32_t>(rng.bounded(32))};
  m.to = core::Pid{to};
  m.file = core::FileId{rng()};
  m.request_id = rng();
  proto::WireBuffer wire{};
  proto::encode_into(m, wire);
  return wire;
}

/// Pumps both transports until `done` or ~`ms` wall milliseconds pass.
template <typename Done>
bool pump(Transport& a, Transport& b, int ms, Done done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    a.poll(2);
    b.poll(2);
  }
  return done();
}

TEST(HostMap, ParsesTheTextForm) {
  const HostMap map = HostMap::parse(
      "serve:0-31:127.0.0.1:4701;serve:32-62:127.0.0.1:4702;"
      "client:63:127.0.0.1:4703");
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.entry(0).lo, 0u);
  EXPECT_EQ(map.entry(0).hi, 31u);
  EXPECT_FALSE(map.entry(0).client);
  EXPECT_EQ(map.entry(1).port, 4702);
  EXPECT_TRUE(map.entry(2).client);
  EXPECT_EQ(map.entry(2).lo, 63u);
  EXPECT_EQ(map.entry(2).hi, 63u);
  EXPECT_EQ(map.owner_of(40), 1u);
  EXPECT_EQ(map.owner_of(63), 2u);
  EXPECT_EQ(map.owner_of(64), std::nullopt);
}

TEST(HostMap, RejectsMalformedText) {
  EXPECT_THROW(HostMap::parse(""), std::invalid_argument);
  EXPECT_THROW(HostMap::parse("serve:0-31:127.0.0.1"),
               std::invalid_argument);
  EXPECT_THROW(HostMap::parse("gerbil:0-31:127.0.0.1:4701"),
               std::invalid_argument);
  EXPECT_THROW(HostMap::parse("serve:0-31:127.0.0.1:99999"),
               std::invalid_argument);
  EXPECT_THROW(HostMap::parse("serve:31-0:127.0.0.1:4701"),
               std::invalid_argument);
  EXPECT_THROW(HostMap::parse("client:0-5:127.0.0.1:4701"),
               std::invalid_argument);
  // Overlapping ranges.
  EXPECT_THROW(
      HostMap::parse("serve:0-31:127.0.0.1:1;serve:31-40:127.0.0.1:2"),
      std::invalid_argument);
}

TEST(Transport, DeliversFramesBetweenTwoProcesses) {
  Transport a(two_nodes(), 0);
  Transport b(two_nodes(), 1);
  std::vector<proto::WireBuffer> got;
  b.set_frame_handler(
      [&](const proto::WireBuffer& w) { got.push_back(w); });
  a.bind();
  b.bind();
  a.set_peer_port(1, b.listen_port());
  b.set_peer_port(0, a.listen_port());
  a.connect_all();
  b.connect_all();
  ASSERT_TRUE(pump(a, b, 2000,
                   [&] { return a.fully_connected() && b.fully_connected(); }));
  EXPECT_EQ(a.stats().connects, 1);
  EXPECT_EQ(a.stats().reconnects, 0);

  util::Rng rng(11);
  std::vector<proto::WireBuffer> sent;
  for (int i = 0; i < 100; ++i) {
    sent.push_back(some_frame(rng, 40));
    ASSERT_TRUE(a.send(core::Pid{40}, sent.back()));
  }
  ASSERT_TRUE(pump(a, b, 2000, [&] { return got.size() == sent.size(); }));
  EXPECT_EQ(got, sent);
  EXPECT_EQ(b.stats().frames_in, 100);
  EXPECT_EQ(a.stats().frames_out, 100);
  EXPECT_EQ(a.stats().bytes_out,
            static_cast<std::int64_t>(100 * proto::kWireSize));
}

TEST(Transport, SendToUnmappedOrSelfPidIsACountedDrop) {
  Transport a(two_nodes(), 0);
  util::Rng rng(3);
  const proto::WireBuffer wire = some_frame(rng, 200);
  EXPECT_FALSE(a.send(core::Pid{200}, wire));  // beyond every range
  EXPECT_FALSE(a.send(core::Pid{5}, wire));    // self range: not routable
  EXPECT_EQ(a.stats().unroutable_dropped, 2);
  EXPECT_EQ(a.stats().frames_out, 0);
}

TEST(Transport, WriteQueueOverCapIsDropNewest) {
  TransportConfig cfg;
  cfg.write_queue_cap = 10 * proto::kWireSize;
  Transport a(two_nodes(), 0, cfg);  // never connected: bytes just queue
  util::Rng rng(4);
  const proto::WireBuffer wire = some_frame(rng, 40);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.send(core::Pid{40}, wire)) << i;
  }
  EXPECT_FALSE(a.send(core::Pid{40}, wire));
  EXPECT_FALSE(a.send(core::Pid{40}, wire));
  EXPECT_EQ(a.stats().overflow_dropped, 2);
  EXPECT_EQ(a.stats().frames_out, 10);
}

// Frames queued while the peer is down flush after the link comes up —
// and the connect itself walks the backoff ladder until a listener
// appears.
TEST(Transport, QueuedFramesFlushOnceTheLinkConnects) {
  TransportConfig fast;
  fast.backoff_base = 0.01;
  fast.backoff_cap = 0.05;
  Transport a(two_nodes(), 0, fast);
  a.bind();
  // Point at a bound-then-closed ephemeral port: nothing listens there.
  Transport probe(two_nodes(), 1);
  probe.bind();
  const std::uint16_t dead_port = probe.listen_port();
  probe.close();
  a.set_peer_port(1, dead_port);
  a.connect_all();
  util::Rng rng(8);
  std::vector<proto::WireBuffer> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(some_frame(rng, 40));
    ASSERT_TRUE(a.send(core::Pid{40}, sent.back()));
  }
  // Let a few connect attempts fail against the dead port.
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(80)) {
    a.poll(5);
  }
  EXPECT_FALSE(a.connected_to(1));
  EXPECT_EQ(a.stats().connects, 0);

  // Now a listener appears on that very port; the retry ladder finds it.
  HostMap bmap = two_nodes();
  bmap.set_port(1, dead_port);
  Transport b(bmap, 1);
  std::vector<proto::WireBuffer> got;
  b.set_frame_handler(
      [&](const proto::WireBuffer& w) { got.push_back(w); });
  b.bind();
  ASSERT_TRUE(pump(a, b, 3000, [&] { return got.size() == sent.size(); }));
  EXPECT_EQ(got, sent);
  EXPECT_TRUE(a.connected_to(1));
  EXPECT_EQ(a.stats().connects, 1);
  EXPECT_EQ(a.stats().reconnects, 0);
}

// Kill an established link and watch the transport notice, back off,
// reconnect, and count it as a reconnect (not a first connect).
TEST(Transport, ReconnectsAfterPeerFailure) {
  TransportConfig fast;
  fast.backoff_base = 0.01;
  fast.backoff_cap = 0.05;
  Transport a(two_nodes(), 0, fast);
  a.bind();
  std::uint16_t port = 0;
  {
    HostMap bmap = two_nodes();
    Transport b(bmap, 1);
    b.bind();
    port = b.listen_port();
    a.set_peer_port(1, port);
    a.connect_all();
    ASSERT_TRUE(pump(a, b, 2000, [&] { return a.connected_to(1); }));
    EXPECT_EQ(a.stats().connects, 1);
    // b goes down with the scope (destructor closes every socket).
  }
  const auto t0 = std::chrono::steady_clock::now();
  while (a.connected_to(1) &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(3)) {
    a.poll(5);
  }
  EXPECT_FALSE(a.connected_to(1));
  EXPECT_GE(a.stats().disconnects, 1);

  // Same port, new process: the ladder reconnects.
  HostMap bmap = two_nodes();
  bmap.set_port(1, port);
  Transport b2(bmap, 1);
  b2.bind();
  ASSERT_TRUE(pump(a, b2, 3000, [&] { return a.connected_to(1); }));
  EXPECT_EQ(a.stats().connects, 2);
  EXPECT_EQ(a.stats().reconnects, 1);

  // And traffic flows again.
  std::vector<proto::WireBuffer> got;
  b2.set_frame_handler(
      [&](const proto::WireBuffer& w) { got.push_back(w); });
  util::Rng rng(21);
  const proto::WireBuffer wire = some_frame(rng, 40);
  ASSERT_TRUE(a.send(core::Pid{40}, wire));
  ASSERT_TRUE(pump(a, b2, 2000, [&] { return !got.empty(); }));
  EXPECT_EQ(got.front(), wire);
}

// A garbage byte stream aimed at the listener must surface as frames
// for the decode layer to reject — the transport itself never asserts.
TEST(Transport, GarbageStreamSurfacesAsFramesNotCrashes) {
  Transport b(two_nodes(), 1);
  std::int64_t frames = 0;
  b.set_frame_handler([&](const proto::WireBuffer&) { ++frames; });
  b.bind();

  // Raw client socket (not a Transport) spraying arbitrary bytes.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(b.listen_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  util::Rng rng(600);
  std::vector<std::uint8_t> junk(proto::kWireSize * 7 + 11);
  for (auto& byte : junk) {
    byte = static_cast<std::uint8_t>(rng.bounded(256));
  }
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  ::close(fd);

  const auto t0 = std::chrono::steady_clock::now();
  while (frames < 7 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(2)) {
    b.poll(5);
  }
  EXPECT_EQ(frames, 7);  // 7 full frames; the 11-byte tail never completes
  EXPECT_EQ(b.stats().frames_in, 7);
}

}  // namespace
}  // namespace lesslog::net
