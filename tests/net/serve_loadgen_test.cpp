// End-to-end over real sockets, in one process: two ServeHosts covering
// the PID space plus a LoadGen client, wired over loopback with
// ephemeral ports. The unmodified proto::Peer/Client stack serves the
// traffic; the gate is the transport_smoke contract — every insert
// acked, every GET ok, zero decode drops.
#include <gtest/gtest.h>

#include <thread>

#include "lesslog/net/loadgen.hpp"
#include "lesslog/net/serve.hpp"

namespace lesslog::net {
namespace {

HostMap ephemeral_map() {
  HostMap map;
  map.add(HostEntry{0, 31, "127.0.0.1", 0, false});
  map.add(HostEntry{32, 62, "127.0.0.1", 0, false});
  map.add(HostEntry{63, 63, "127.0.0.1", 0, true});
  return map;
}

TEST(ServeLoadGen, LoopbackRoundTripServesEveryGet) {
  ServeConfig sc0;
  sc0.m = 6;
  sc0.b = 2;
  sc0.hosts = ephemeral_map();
  sc0.self = 0;
  ServeConfig sc1 = sc0;
  sc1.self = 1;
  LoadGenConfig lc;
  lc.m = 6;
  lc.b = 2;
  lc.hosts = ephemeral_map();
  lc.self = 2;
  lc.files = 12;
  lc.rate = 400.0;
  lc.duration = 0.5;
  lc.setup_timeout = 20.0;

  ServeHost s0(std::move(sc0));
  ServeHost s1(std::move(sc1));
  LoadGen lg(std::move(lc));

  // Port-0 flow: bind everyone, read the real ports, cross-patch, and
  // only then let the retry ladders connect the full mesh.
  s0.start();
  s1.start();
  lg.start();
  const std::uint16_t ports[3] = {s0.transport().listen_port(),
                                  s1.transport().listen_port(),
                                  lg.transport().listen_port()};
  for (std::size_t i = 0; i < 3; ++i) {
    s0.transport().set_peer_port(i, ports[i]);
    s1.transport().set_peer_port(i, ports[i]);
    lg.transport().set_peer_port(i, ports[i]);
  }

  std::thread t0([&] { s0.run(); });
  std::thread t1([&] { s1.run(); });
  const LoadGenReport report = lg.run();
  s0.stop();
  s1.stop();
  t0.join();
  t1.join();

  EXPECT_EQ(report.files_inserted, report.files_requested);
  EXPECT_GT(report.gets_issued, 0);
  EXPECT_EQ(report.gets_ok, report.gets_issued);
  EXPECT_EQ(report.gets_failed, 0);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.latencies.size(),
            static_cast<std::size_t>(report.gets_ok));
  EXPECT_GT(report.p50(), 0.0);
  EXPECT_LE(report.p50(), report.p99());

  // Every socket byte decoded: zero counted decode drops anywhere.
  EXPECT_EQ(s0.network().corrupted(), 0);
  EXPECT_EQ(s1.network().corrupted(), 0);
  EXPECT_EQ(lg.network().corrupted(), 0);
  // Real traffic actually crossed the wire in both directions.
  EXPECT_GT(s0.transport().stats().frames_in, 0);
  EXPECT_GT(s1.transport().stats().frames_in, 0);
  EXPECT_GT(lg.transport().stats().frames_in, 0);
  EXPECT_EQ(s0.transport().stats().overflow_dropped, 0);
  EXPECT_EQ(s1.transport().stats().overflow_dropped, 0);
  EXPECT_EQ(lg.transport().stats().overflow_dropped, 0);
}

TEST(ServeConfigValidation, RejectsNonsense) {
  ServeConfig cfg;
  cfg.hosts = ephemeral_map();
  cfg.self = 2;  // client entry: not servable
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.self = 9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.self = 0;
  cfg.m = 5;  // hi=63 exceeds 2^5
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.m = 6;
  cfg.b = 6;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.b = 2;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(LoadGenConfigValidation, RejectsNonsense) {
  LoadGenConfig cfg;
  cfg.hosts = ephemeral_map();
  cfg.self = 0;  // serve entry: not a client
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.self = 2;
  cfg.files = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.files = 8;
  cfg.rate = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.rate = 100.0;
  cfg.duration = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.duration = 1.0;
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace lesslog::net
