// Randomized whole-system invariant checking: long mixed workloads of
// inserts, gets, replications, updates, joins, leaves, and crashes, with
// the LessLog integrity invariants re-verified after every phase.
#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/membership.hpp"
#include "lesslog/core/system.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog {
namespace {

using core::FileId;
using core::Pid;

struct Scenario {
  int m;
  int b;
  std::uint64_t seed;
  std::uint32_t initial_nodes;
  std::uint32_t files;
  int churn_steps;
};

class InvariantSweep : public ::testing::TestWithParam<Scenario> {
 protected:
  // Invariant 1: the holder bookkeeping matches node storage exactly.
  static void check_holder_consistency(const core::System& sys,
                                       const std::vector<FileId>& files) {
    for (const FileId f : files) {
      std::set<Pid> from_meta;
      for (const Pid p : sys.holders(f)) {
        EXPECT_TRUE(sys.is_live(p));
        EXPECT_TRUE(sys.node(p).store().has(f));
        from_meta.insert(p);
      }
      for (std::uint32_t p = 0; p < util::space_size(sys.width()); ++p) {
        if (sys.node(Pid{p}).store().has(f)) {
          EXPECT_TRUE(from_meta.contains(Pid{p}))
              << "orphan copy of file at P(" << p << ")";
        }
      }
    }
  }

  // Invariant 2: every non-lost file has an inserted copy at each
  // authoritative holder (per subtree).
  static void check_authoritative_placement(
      const core::System& sys, const std::vector<FileId>& files) {
    for (const FileId f : files) {
      if (!sys.file_known(f)) continue;
      const auto lost = sys.lost_files();
      if (std::find(lost.begin(), lost.end(), f) != lost.end()) continue;
      const core::LookupTree tree = sys.tree_of(f);
      const core::SubtreeView view(tree, sys.fault_bits());
      for (const Pid holder :
           core::authoritative_holders(view, sys.status())) {
        const auto info = sys.node(holder).store().info(f);
        ASSERT_TRUE(info.has_value())
            << "authoritative holder P(" << holder.value()
            << ") lacks a copy";
        EXPECT_EQ(info->kind, core::CopyKind::kInserted);
      }
    }
  }

  // Invariant 3: every live node can fetch every non-lost file within the
  // O(log N) bound.
  static void check_availability(core::System& sys,
                                 const std::vector<FileId>& files) {
    const auto lost = sys.lost_files();
    for (const FileId f : files) {
      if (std::find(lost.begin(), lost.end(), f) != lost.end()) continue;
      for (std::uint32_t k = 0; k < util::space_size(sys.width()); ++k) {
        if (!sys.is_live(Pid{k})) continue;
        const auto got = sys.get(f, Pid{k});
        EXPECT_TRUE(got.ok()) << "fault at P(" << k << ")";
        EXPECT_LE(got.route.hops(),
                  sys.width() + 1 + (1 << sys.fault_bits()));
      }
    }
  }

  // Invariant 4: after an update, every holder stores the new version.
  static void check_update_coherence(core::System& sys,
                                     const std::vector<FileId>& files) {
    const auto lost = sys.lost_files();
    for (const FileId f : files) {
      if (std::find(lost.begin(), lost.end(), f) != lost.end()) continue;
      sys.update(f);
      for (const Pid h : sys.holders(f)) {
        EXPECT_EQ(sys.node(h).store().info(f)->version, sys.version_of(f))
            << "stale copy at P(" << h.value() << ")";
      }
    }
  }
};

TEST_P(InvariantSweep, MixedOperationsPreserveAllInvariants) {
  const Scenario sc = GetParam();
  util::Rng rng(sc.seed);
  core::System sys({.m = sc.m, .b = sc.b, .seed = sc.seed});
  sys.bootstrap(sc.initial_nodes);

  std::vector<FileId> files;
  for (std::uint32_t i = 0; i < sc.files; ++i) {
    files.push_back(sys.insert_key(sc.seed * 1000 + i));
  }

  const auto random_live = [&]() -> Pid {
    const std::vector<std::uint32_t> live = sys.status().live_pids();
    return Pid{live[rng.bounded(live.size())]};
  };

  for (int step = 0; step < sc.churn_steps; ++step) {
    switch (rng.bounded(6)) {
      case 0: {  // join
        if (sys.live_count() < sys.status().capacity()) sys.join();
        break;
      }
      case 1: {  // graceful leave
        if (sys.live_count() > 4) sys.leave(random_live());
        break;
      }
      case 2: {  // crash
        if (sys.live_count() > 4) sys.fail(random_live());
        break;
      }
      case 3: {  // replicate a random file at one of its holders
        const FileId f = files[rng.bounded(files.size())];
        const std::vector<Pid> holders = sys.holders(f);
        if (!holders.empty()) {
          sys.replicate(f, holders[rng.bounded(holders.size())]);
        }
        break;
      }
      case 4: {  // a burst of gets
        const FileId f = files[rng.bounded(files.size())];
        for (int i = 0; i < 4; ++i) sys.get(f, random_live());
        break;
      }
      case 5: {  // update
        sys.update(files[rng.bounded(files.size())]);
        break;
      }
    }

    if (step % 8 == 7) {
      check_holder_consistency(sys, files);
      check_authoritative_placement(sys, files);
    }
  }

  check_holder_consistency(sys, files);
  check_authoritative_placement(sys, files);
  check_availability(sys, files);
  check_update_coherence(sys, files);

  // With b > 0 and bounded concurrent failures, nothing may be lost.
  if (sc.b > 0) {
    EXPECT_TRUE(sys.lost_files().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, InvariantSweep,
    ::testing::Values(Scenario{4, 0, 1, 16, 4, 60},
                      Scenario{5, 0, 2, 28, 8, 80},
                      Scenario{5, 1, 3, 30, 8, 80},
                      Scenario{6, 0, 4, 64, 12, 100},
                      Scenario{6, 2, 5, 50, 12, 100},
                      Scenario{7, 0, 6, 100, 16, 80},
                      Scenario{7, 3, 7, 120, 8, 80},
                      Scenario{8, 2, 8, 200, 16, 60},
                      Scenario{10, 0, 9, 1024, 8, 40},
                      Scenario{10, 2, 10, 900, 8, 40}));

}  // namespace
}  // namespace lesslog
