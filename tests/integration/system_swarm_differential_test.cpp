// Differential testing of the two protocol altitudes: the direct-call
// core::System and the datagram-level proto::Swarm must agree on holder
// placement, routing outcomes, and availability across identical operation
// sequences (ψ-named files, lossless network).
#include <gtest/gtest.h>

#include <set>

#include "lesslog/core/system.hpp"
#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/hashing.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog {
namespace {

using core::FileId;
using core::Pid;

struct DiffCase {
  int m;
  int b;
  std::uint32_t nodes;
  std::uint64_t seed;
  int ops;
};

class SystemSwarmDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(SystemSwarmDifferential, IdenticalOperationSequencesConverge) {
  const auto [m, b, nodes, seed, ops] = GetParam();

  core::System sys({.m = m, .b = b, .seed = seed});
  sys.bootstrap(nodes);

  proto::Swarm::Config scfg;
  scfg.m = m;
  scfg.b = b;
  scfg.nodes = nodes;
  scfg.seed = seed;
  scfg.net.base_latency = 0.001;
  scfg.net.jitter = 0.0;
  proto::Swarm swarm(scfg);

  std::vector<FileId> files;
  util::Rng rng(seed * 31 + 7);

  const auto random_live = [&]() -> Pid {
    const std::vector<std::uint32_t> live = sys.status().live_pids();
    return Pid{live[rng.bounded(live.size())]};
  };

  for (int op = 0; op < ops; ++op) {
    switch (rng.bounded(4)) {
      case 0: {  // insert a ψ-named file in both worlds
        const std::uint64_t key = seed * 1000 + static_cast<std::uint64_t>(op);
        files.push_back(sys.insert_key(key));
        // System's insert_key mixes the key; mirror the exact id/target.
        const FileId f = files.back();
        swarm.insert(f, sys.target_of(f), random_live());
        swarm.settle();
        break;
      }
      case 1: {  // graceful leave
        if (sys.live_count() > 4) {
          const Pid victim = random_live();
          sys.leave(victim);
          swarm.depart(victim);
          swarm.settle();
        }
        break;
      }
      case 2: {  // rejoin the lowest dead PID
        if (sys.live_count() < nodes) {
          const Pid joined = sys.join();
          swarm.join(joined);
          swarm.settle();
        }
        break;
      }
      case 3: {  // probe availability from a random node
        if (!files.empty()) {
          const FileId f = files[rng.bounded(files.size())];
          const Pid at = random_live();
          const auto expected = sys.get(f, at);
          proto::GetResult got;
          swarm.get(f, sys.target_of(f), at,
                    [&](const proto::GetResult& r) { got = r; });
          swarm.settle();
          EXPECT_EQ(got.ok, expected.ok()) << "file " << f.key();
          if (expected.ok()) {
            EXPECT_EQ(got.hops, expected.route.hops());
          }
        }
        break;
      }
    }
  }

  // Liveness views agree.
  EXPECT_EQ(swarm.status(), sys.status());

  // Authoritative placement agrees: for each file, the per-subtree
  // holders carry inserted copies in both worlds.
  for (const FileId f : files) {
    const core::LookupTree tree(m, sys.target_of(f));
    const core::SubtreeView view(tree, b);
    for (const Pid holder : view.insertion_targets(sys.status())) {
      const auto sys_info = sys.node(holder).store().info(f);
      const auto swarm_info = swarm.peer(holder).store().info(f);
      ASSERT_TRUE(sys_info.has_value())
          << "System missing holder copy, file " << f.key();
      ASSERT_TRUE(swarm_info.has_value())
          << "Swarm missing holder copy, file " << f.key();
      EXPECT_EQ(sys_info->kind, core::CopyKind::kInserted);
      EXPECT_EQ(swarm_info->kind, core::CopyKind::kInserted);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SystemSwarmDifferential,
    ::testing::Values(DiffCase{4, 0, 16, 1, 40},
                      DiffCase{5, 0, 32, 2, 60},
                      DiffCase{5, 1, 32, 3, 60},
                      DiffCase{6, 0, 64, 4, 80},
                      DiffCase{6, 2, 64, 5, 80}));

}  // namespace
}  // namespace lesslog
