// Every worked example in the paper, validated end-to-end through the
// public API. Section/figure references are to Huang, Huang & Chou,
// "LessLog" (IPDPS 2004).
#include <gtest/gtest.h>

#include "lesslog/core/system.hpp"
#include "lesslog/util/bits.hpp"

namespace lesslog {
namespace {

using core::FileId;
using core::Pid;
using core::Vid;

TEST(PaperFigure1, VirtualTreeOf16Nodes) {
  // "The VID binomial tree shown in Figure 1 is the unique virtual lookup
  // tree of a 16-node system. Since m = 4, the VID of the root is 1111."
  const core::VirtualTree vt(4);
  EXPECT_EQ(vt.root(), Vid{0b1111});
  // "The node of VID 0111 has 3 children nodes; the VIDs of the children
  // are 0011, 0101, 0110" — in our MSB-first normalization the same node
  // is written 1110 with children 1100, 1010, 0110 (see DESIGN.md §1).
  const std::vector<Vid> kids = vt.children(Vid{0b1110});
  EXPECT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids, (std::vector<Vid>{Vid{0b1100}, Vid{0b1010}, Vid{0b0110}}));
  // "For the node of VID 0011, we obtain the VID of its parent node by
  // converting the leftmost 0's bit to 1."
  EXPECT_EQ(vt.parent(Vid{0b0011}), Vid{0b1011});
  // "The nodes of VID 1110 and 1100 have 7 and 3 offspring, respectively."
  EXPECT_EQ(vt.offspring_count(Vid{0b1110}), 7u);
  EXPECT_EQ(vt.offspring_count(Vid{0b1100}), 3u);
}

TEST(PaperFigure2, LookupTreeOfP4In16NodeSystem) {
  // "To construct the physical lookup tree of P(4), we first obtain
  // 4̄ = 1011. We next do ⊕ each VID in the virtual lookup tree."
  const core::LookupTree tree(4, Pid{4});
  EXPECT_EQ(tree.mapper().complement(), 0b1011u);
  // "the children list of P(4) in Figure 2 is (P(5), P(6), P(0), P(12))"
  EXPECT_EQ(tree.children(Pid{4}),
            (std::vector<Pid>{Pid{5}, Pid{6}, Pid{0}, Pid{12}}));
}

TEST(PaperSection2, GetFileRoutingExample) {
  // "When P(8) receives a request whose target node is P(4), it routes the
  // request to P(0), which in turn routes the request to P(4), if there is
  // no replicated copy found in the forwarding path."
  core::System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  const auto got = sys.get(f, Pid{8});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.route.path, (std::vector<Pid>{Pid{8}, Pid{0}, Pid{4}}));
}

TEST(PaperSection2, ReplicationHalvesLoadGuarantee) {
  // "each replication is guaranteed to reduce the workload of the
  // overloaded node by half if requests are evenly distributed."
  core::System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  // One request from every node: P(4) serves all 16.
  for (std::uint32_t k = 0; k < 16; ++k) sys.get(f, Pid{k});
  EXPECT_EQ(sys.node(Pid{4}).served(), 16u);

  sys.reset_counters();
  ASSERT_EQ(sys.replicate(f, Pid{4}), Pid{5});
  for (std::uint32_t k = 0; k < 16; ++k) sys.get(f, Pid{k});
  EXPECT_EQ(sys.node(Pid{4}).served(), 8u);
  EXPECT_EQ(sys.node(Pid{5}).served(), 8u);
}

TEST(PaperFigure3, AdvancedModelWithDeadNodes) {
  // "Figure 3 shows the lookup tree of P(4) in a 14-node system, where
  // m = 4, P(0) and P(5) are dead nodes."
  core::System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  sys.leave(Pid{0});
  sys.leave(Pid{5});
  EXPECT_EQ(sys.live_count(), 14u);
  // "The children list of P(4) shown in Figure 3 is (P(6), P(7), P(1),
  // P(12), P(13), P(8)), sorted by the VID."
  const core::LookupTree tree(4, Pid{4});
  EXPECT_EQ(core::children_list(tree, Pid{4}, sys.status()),
            (std::vector<Pid>{Pid{6}, Pid{7}, Pid{1}, Pid{12}, Pid{13},
                              Pid{8}}));
}

TEST(PaperSection3, AdvancedInsertGoesToP6) {
  // "let P(4) and P(5) be the dead nodes in a 14-node system ... and let
  // 4 = ψ(f). The ADVANCEDINSERTFILE inserts f into P(6)."
  core::System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  sys.leave(Pid{4});
  sys.leave(Pid{5});
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{6}});
  // "Apparently, every request for f in the system will be forwarded to
  // P(6)."
  for (std::uint32_t k = 0; k < 16; ++k) {
    if (!sys.is_live(Pid{k})) continue;
    const auto got = sys.get(f, Pid{k});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.route.served_by, Pid{6});
  }
}

TEST(PaperSection51, JoinCopiesFileBack) {
  // "If P(5) is the joining node, f must be copied back to P(5). In this
  // case, we examine each file in the live node with the largest VID (P(6)
  // in this example) and copy a file f back to P(k)."
  core::System sys({.m = 4, .b = 0, .seed = 1});
  sys.bootstrap(16);
  sys.leave(Pid{4});
  sys.leave(Pid{5});
  const FileId f = sys.insert_at(Pid{4});
  ASSERT_EQ(sys.holders(f), std::vector<Pid>{Pid{6}});
  sys.join(Pid{5});
  EXPECT_EQ(sys.holders(f), std::vector<Pid>{Pid{5}});
}

TEST(PaperFigure4, SubtreeDecompositionB2) {
  // "Figure 4 shows the lookup tree of P(4) in a 16-node system where
  // b = 2 ... there are 4 subtrees totally in this system. The subtree VID
  // of the root node in each subtree is 11."
  const core::LookupTree tree(4, Pid{4});
  const core::SubtreeView view(tree, 2);
  EXPECT_EQ(view.subtree_count(), 4u);
  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(view.subtree_vid(view.subtree_root(t)), 0b11u);
  }
}

TEST(PaperSection4, FaultToleranceDegree2b) {
  // "A file is stored initially at 2^b target nodes. LessLog guarantees
  // fault tolerance as long as the 2^b target nodes storing the same file
  // do not fail simultaneously."
  core::System sys({.m = 4, .b = 2, .seed = 1});
  sys.bootstrap(16);
  const FileId f = sys.insert_at(Pid{4});
  EXPECT_EQ(sys.holders(f).size(), 4u);
  // Any single holder crash leaves the file fully available.
  const Pid victim = sys.holders(f).front();
  sys.fail(victim);
  for (std::uint32_t k = 0; k < 16; ++k) {
    if (!sys.is_live(Pid{k})) continue;
    EXPECT_TRUE(sys.get(f, Pid{k}).ok());
  }
  EXPECT_TRUE(sys.lost_files().empty());
}

TEST(PaperSection1, LookupBoundedByLogN) {
  // "The binomial lookup tree bounds the lookup time at O(log N) in an
  // N-node P2P system."
  core::System sys({.m = 8, .b = 0, .seed = 1});
  sys.bootstrap(256);
  const FileId f = sys.insert("bounded-lookup");
  for (std::uint32_t k = 0; k < 256; ++k) {
    const auto got = sys.get(f, Pid{k});
    ASSERT_TRUE(got.ok());
    EXPECT_LE(got.route.hops(), 8);
  }
}

}  // namespace
}  // namespace lesslog
