// Feature parity: ShardedSwarm carries the serial swarm's replicate()
// helper, closed-loop auto-replication controller, and metrics sampling.
// Pinned properties:
//   1. at S = 1 each of the three is byte-identical to proto::Swarm
//      (same RNG stream, same event order, same sampled series);
//   2. at S ∈ {2, 4, 8} a run with the controller and sampler enabled is
//      bit-reproducible across repeated runs (fresh thread pools).
#include <gtest/gtest.h>

#include <vector>

#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/proto/swarm.hpp"

namespace lesslog::proto {
namespace {

constexpr int kM = 8;
constexpr std::uint32_t kNodes = 64;

Swarm::Config serial_cfg(std::uint64_t seed) {
  Swarm::Config cfg;
  cfg.m = kM;
  cfg.b = 1;
  cfg.nodes = kNodes;
  cfg.seed = seed;
  return cfg;
}

ShardedSwarm::Config sharded_cfg(std::uint64_t seed, std::size_t shards) {
  ShardedSwarm::Config cfg;
  cfg.m = kM;
  cfg.b = 1;
  cfg.nodes = kNodes;
  cfg.seed = seed;
  cfg.shards = shards;
  return cfg;
}

TEST(ShardedParity, ReplicateMatchesSerialAtOneShard) {
  // replicate() draws placement randomness from the overloaded holder's
  // home engine; at S = 1 that is the serial engine's stream, so the
  // chosen stand-in must match exactly, replica chain and all.
  const auto drive = [](auto& swarm) {
    std::vector<std::uint32_t> placed;
    const core::FileId f = swarm.insert_named(0x507F11E, core::Pid{1});
    const core::Pid target = swarm.peer(core::Pid{1}).target_of(f);
    swarm.settle();
    std::vector<std::uint32_t> copies{target.value()};
    for (int step = 0; step < 5; ++step) {
      const auto r = swarm.replicate(
          f, target, core::Pid{copies.back()}, [&copies](core::Pid p) {
            for (const std::uint32_t c : copies) {
              if (c == p.value()) return true;
            }
            return false;
          });
      swarm.settle();
      if (!r.has_value()) break;
      copies.push_back(r->value());
      placed.push_back(r->value());
    }
    return placed;
  };

  Swarm serial(serial_cfg(13));
  ShardedSwarm sharded(sharded_cfg(13, 1));
  EXPECT_EQ(drive(sharded), drive(serial));
}

/// Saturates one ψ target with direct GETs, then lets the closed loop
/// run three windows. Deterministic load (no engine-RNG draws), so the
/// serial and S = 1 sharded controllers see identical served counters.
template <typename AnySwarm>
void drive_controller(AnySwarm& swarm) {
  const core::FileId f = swarm.insert_named(0xB007, core::Pid{0});
  const core::Pid target = swarm.peer(core::Pid{0}).target_of(f);
  swarm.settle();
  for (int i = 0; i < 300; ++i) {
    swarm.get(f, target, core::Pid{static_cast<std::uint32_t>(i) % kNodes});
  }
  swarm.settle();
  swarm.enable_auto_replication(/*capacity=*/50.0, /*window=*/1.0,
                                /*stop_at=*/swarm.engine_now() + 3.5);
  swarm.run_to(swarm.engine_now() + 4.0);
  swarm.settle();
}

TEST(ShardedParity, ControllerMatchesSerialAtOneShard) {
  struct SerialView {
    Swarm swarm;
    explicit SerialView(const Swarm::Config& cfg) : swarm(cfg) {}
    // Adapters so drive_controller treats both swarms uniformly.
    auto insert_named(std::uint64_t k, core::Pid p) {
      return swarm.insert_named(k, p);
    }
    auto& peer(core::Pid p) { return swarm.peer(p); }
    void settle() { swarm.settle(); }
    void get(core::FileId f, core::Pid r, core::Pid at) {
      swarm.get(f, r, at);
    }
    void enable_auto_replication(double c, double w, double s) {
      swarm.enable_auto_replication(c, w, s);
    }
    [[nodiscard]] double engine_now() { return swarm.engine().now(); }
    void run_to(double t) { swarm.engine().run_until(t); }
  };
  struct ShardedView {
    ShardedSwarm swarm;
    explicit ShardedView(ShardedSwarm::Config cfg)
        : swarm(std::move(cfg)) {}
    auto insert_named(std::uint64_t k, core::Pid p) {
      return swarm.insert_named(k, p);
    }
    auto& peer(core::Pid p) { return swarm.peer(p); }
    void settle() { swarm.settle(); }
    void get(core::FileId f, core::Pid r, core::Pid at) {
      swarm.get(f, r, at);
    }
    void enable_auto_replication(double c, double w, double s) {
      swarm.enable_auto_replication(c, w, s);
    }
    [[nodiscard]] double engine_now() { return swarm.engine(0).now(); }
    void run_to(double t) { swarm.run_until(t); }
  };

  SerialView serial(serial_cfg(29));
  drive_controller(serial);
  ShardedView sharded(sharded_cfg(29, 1));
  drive_controller(sharded);

  EXPECT_GT(serial.swarm.auto_replicas(), 0);
  EXPECT_EQ(sharded.swarm.auto_replicas(), serial.swarm.auto_replicas());
  EXPECT_EQ(sharded.swarm.auto_removals(), serial.swarm.auto_removals());
  EXPECT_EQ(sharded.swarm.messages_sent(),
            serial.swarm.network().messages_sent());
  EXPECT_EQ(sharded.swarm.all_latencies(), serial.swarm.all_latencies());
}

TEST(ShardedParity, SampledSeriesMatchesSerialAtOneShard) {
  const auto workload = [](auto& swarm, double stop) {
    const core::FileId f = swarm.insert_named(0x5A17, core::Pid{2});
    const core::Pid target = swarm.peer(core::Pid{2}).target_of(f);
    swarm.settle();
    swarm.enable_metrics_sampling(/*interval=*/0.25, stop);
    for (int i = 0; i < 64; ++i) {
      swarm.get(f, target,
                core::Pid{static_cast<std::uint32_t>(i * 5) % kNodes});
    }
    swarm.settle();
  };

  Swarm serial(serial_cfg(31));
  workload(serial, 2.0);
  const obs::TimeSeries& a = serial.metrics_series();

  ShardedSwarm sharded(sharded_cfg(31, 1));
  workload(sharded, 2.0);
  const obs::TimeSeries& b = sharded.metrics_series();

  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.samples[k].time, b.samples[k].time) << "sample " << k;
    EXPECT_EQ(a.samples[k].counters, b.samples[k].counters)
        << "sample " << k;
    EXPECT_EQ(a.samples[k].gauges, b.samples[k].gauges) << "sample " << k;
  }
}

TEST(ShardedParity, ControllerAndSamplerRepeatExactlyAcrossShardCounts) {
  const auto run_once = [](std::size_t shards) {
    ShardedSwarm swarm(sharded_cfg(77, shards));
    const core::FileId f = swarm.insert_named(0xB007, core::Pid{0});
    const core::Pid target = swarm.peer(core::Pid{0}).target_of(f);
    swarm.settle();
    swarm.enable_metrics_sampling(/*interval=*/0.5,
                                  swarm.engine(0).now() + 4.0);
    for (int i = 0; i < 300; ++i) {
      swarm.get(f, target,
                core::Pid{static_cast<std::uint32_t>(i) % kNodes});
    }
    swarm.settle();
    swarm.enable_auto_replication(/*capacity=*/50.0, /*window=*/1.0,
                                  swarm.engine(0).now() + 3.5);
    swarm.run_until(swarm.engine(0).now() + 4.0);
    swarm.settle();

    struct Fingerprint {
      std::int64_t replicas;
      std::int64_t removals;
      std::int64_t sent;
      std::vector<double> latencies;
      std::vector<std::pair<std::string, std::uint64_t>> counters;
      bool operator==(const Fingerprint&) const = default;
    };
    Fingerprint fp;
    fp.replicas = swarm.auto_replicas();
    fp.removals = swarm.auto_removals();
    fp.sent = swarm.messages_sent();
    fp.latencies = swarm.all_latencies();
    fp.counters = swarm.metrics_snapshot().counters;
    return fp;
  };

  for (const std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    EXPECT_TRUE(run_once(shards) == run_once(shards)) << "S = " << shards;
  }
}

}  // namespace
}  // namespace lesslog::proto
