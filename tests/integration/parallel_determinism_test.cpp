// The bench harness sweeps cells on a thread pool; this suite pins that
// parallel execution is bit-for-bit identical to serial execution (each
// cell owns its PRNG and shares no mutable state).
#include <gtest/gtest.h>

#include <atomic>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/core/system.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/util/thread_pool.hpp"

namespace lesslog {
namespace {

sim::ExperimentConfig cell_config(std::size_t i) {
  sim::ExperimentConfig cfg;
  cfg.m = 7;
  cfg.capacity = 25.0;
  cfg.total_rate = 400.0 + 150.0 * static_cast<double>(i % 8);
  cfg.dead_fraction = static_cast<double>(i % 3) * 0.1;
  cfg.workload = i % 2 == 0 ? sim::WorkloadKind::kUniform
                            : sim::WorkloadKind::kLocality;
  cfg.seed = 100 + i;
  if (cfg.workload == sim::WorkloadKind::kLocality) cfg.capacity = 60.0;
  return cfg;
}

TEST(ParallelDeterminism, PoolSweepMatchesSerialSweep) {
  constexpr std::size_t kCells = 24;

  std::vector<sim::ExperimentResult> serial(kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    serial[i] = sim::run_replication_experiment(
        cell_config(i), baseline::lesslog_policy());
  }

  std::vector<sim::ExperimentResult> parallel(kCells);
  util::ThreadPool pool(4);
  util::parallel_for(pool, kCells, [&parallel](std::size_t i) {
    parallel[i] = sim::run_replication_experiment(
        cell_config(i), baseline::lesslog_policy());
  });

  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(parallel[i].replicas_created, serial[i].replicas_created)
        << "cell " << i;
    EXPECT_EQ(parallel[i].balanced, serial[i].balanced);
    EXPECT_DOUBLE_EQ(parallel[i].final_max_load, serial[i].final_max_load);
    EXPECT_DOUBLE_EQ(parallel[i].mean_hops, serial[i].mean_hops);
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
  constexpr std::size_t kCells = 12;
  const auto sweep = [] {
    std::vector<int> replicas(kCells, 0);
    util::ThreadPool pool(3);
    util::parallel_for(pool, kCells, [&replicas](std::size_t i) {
      replicas[i] = sim::run_replication_experiment(
                        cell_config(i), baseline::random_policy())
                        .replicas_created;
    });
    return replicas;
  };
  EXPECT_EQ(sweep(), sweep());
}

TEST(ParallelDeterminism, ConcurrentSystemsAreIsolated) {
  // Many Systems mutated concurrently never interfere (no hidden global
  // state besides the logger, which is level-gated off).
  util::ThreadPool pool(4);
  std::atomic<int> failures{0};
  util::parallel_for(pool, 16, [&failures](std::size_t i) {
    core::System sys({.m = 5,
                      .b = static_cast<int>(i % 3),
                      .seed = 50 + i});
    sys.bootstrap(32);
    const core::FileId f = sys.insert_key(0xAB0 + i);
    for (int op = 0; op < 20; ++op) {
      if (!sys.get(f, core::Pid{static_cast<std::uint32_t>(op % 32)})
               .ok()) {
        failures.fetch_add(1);
      }
      sys.update(f);
    }
    if (!sys.verify_integrity().clean()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace lesslog
