// Miniature versions of the paper's four figures, with the *shape* claims
// asserted in code. The full-scale reproduction (m = 10, rates to 20k)
// lives in bench/; these scaled-down cells keep the claims under ctest.
#include <gtest/gtest.h>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/sim/metrics.hpp"

namespace lesslog {
namespace {

constexpr int kM = 8;  // 256-slot miniature of the paper's m=10
// Mirrors the paper's headroom: at the top rate a locality-model hot node
// receives 0.8 * 4000 / 51 ≈ 63 req/s of its own client demand, which must
// stay below capacity (the paper has 78 vs 100) or no placement can ever
// balance that node.
constexpr double kCapacity = 80.0;
const std::vector<double> kRates{500.0, 1000.0, 2000.0, 4000.0};
constexpr int kSeeds = 3;

double mean_replicas(const sim::ExperimentConfig& base,
                     const sim::PlacementFn& policy) {
  double total = 0.0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    sim::ExperimentConfig cfg = base;
    cfg.seed = seed;
    const sim::ExperimentResult r =
        sim::run_replication_experiment(cfg, policy);
    EXPECT_TRUE(r.balanced) << "rate=" << cfg.total_rate;
    total += r.replicas_created;
  }
  return total / kSeeds;
}

sim::FigureData method_figure(sim::WorkloadKind kind) {
  sim::FigureData fig("methods", "rate", kRates);
  for (const auto& [name, policy] :
       {std::pair<std::string, sim::PlacementFn>{"log-based",
                                                 baseline::logbased_policy()},
        {"lesslog", baseline::lesslog_policy()},
        {"random", baseline::random_policy()}}) {
    std::vector<double> ys;
    for (const double rate : kRates) {
      sim::ExperimentConfig cfg;
      cfg.m = kM;
      cfg.capacity = kCapacity;
      cfg.total_rate = rate;
      cfg.workload = kind;
      ys.push_back(mean_replicas(cfg, policy));
    }
    fig.add_series(name, std::move(ys));
  }
  return fig;
}

TEST(Figure5Shape, UniformLoadMethodOrdering) {
  const sim::FigureData fig = method_figure(sim::WorkloadKind::kUniform);
  // Claim 1: LessLog uses significantly fewer replicas than random.
  const sim::Series* lesslog = fig.find("lesslog");
  const sim::Series* random = fig.find("random");
  const sim::Series* logbased = fig.find("log-based");
  ASSERT_NE(lesslog, nullptr);
  ASSERT_NE(random, nullptr);
  ASSERT_NE(logbased, nullptr);
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    EXPECT_LT(lesslog->values[i], random->values[i])
        << "rate=" << kRates[i];
  }
  // At the higher rates the gap must be decisive (paper: "significantly").
  EXPECT_LT(lesslog->values.back() * 1.5, random->values.back());
  // Claim 2: LessLog is within a modest factor of perfect-log-based
  // ("slightly more replicas").
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    EXPECT_LE(logbased->values[i], lesslog->values[i] + 1.0);
    EXPECT_LE(lesslog->values[i], logbased->values[i] * 1.7 + 3.0);
  }
  // Claim 3: replica demand grows with request rate.
  EXPECT_TRUE(fig.roughly_increasing("lesslog", 1.0));
}

TEST(Figure7Shape, LocalityLoadMethodOrdering) {
  const sim::FigureData fig = method_figure(sim::WorkloadKind::kLocality);
  const sim::Series* lesslog = fig.find("lesslog");
  const sim::Series* random = fig.find("random");
  const sim::Series* logbased = fig.find("log-based");
  for (std::size_t i = 1; i < kRates.size(); ++i) {
    EXPECT_LT(lesslog->values[i], random->values[i]);
  }
  EXPECT_LE(logbased->values.back(), lesslog->values.back() + 1.0);
  EXPECT_TRUE(fig.roughly_increasing("lesslog", 2.0));
}

sim::FigureData dead_fraction_figure(sim::WorkloadKind kind,
                                     double capacity) {
  sim::FigureData fig("dead", "rate", kRates);
  for (const double dead : {0.1, 0.2, 0.3}) {
    std::vector<double> ys;
    for (const double rate : kRates) {
      sim::ExperimentConfig cfg;
      cfg.m = kM;
      cfg.capacity = capacity;
      cfg.total_rate = rate;
      cfg.workload = kind;
      cfg.dead_fraction = dead;
      ys.push_back(mean_replicas(cfg, baseline::lesslog_policy()));
    }
    fig.add_series(std::to_string(static_cast<int>(dead * 100)) + "% dead",
                   std::move(ys));
  }
  return fig;
}

TEST(Figure6Shape, DeadNodesCreateSimilarReplicaCounts) {
  const sim::FigureData fig =
      dead_fraction_figure(sim::WorkloadKind::kUniform, kCapacity);
  // Paper: "A similar number of replicas are created in all three
  // configurations." Check pairwise ratios stay moderate at every rate.
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    double lo = 1e18;
    double hi = 0.0;
    for (std::size_t s = 0; s < fig.series_count(); ++s) {
      lo = std::min(lo, fig.series(s).values[i]);
      hi = std::max(hi, fig.series(s).values[i]);
    }
    EXPECT_LE(hi, lo * 2.0 + 6.0) << "rate=" << kRates[i];
  }
  for (std::size_t s = 0; s < fig.series_count(); ++s) {
    EXPECT_TRUE(fig.roughly_increasing(fig.series(s).name, 2.0));
  }
}

TEST(Figure8Shape, LocalityWithDeadNodes) {
  // With 30% dead the hot nodes' own demand reaches 0.8 * 4000 / 36 ≈ 89
  // req/s, so this figure needs the paper's full 100-capacity headroom.
  const sim::FigureData fig =
      dead_fraction_figure(sim::WorkloadKind::kLocality, 100.0);
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    double lo = 1e18;
    double hi = 0.0;
    for (std::size_t s = 0; s < fig.series_count(); ++s) {
      lo = std::min(lo, fig.series(s).values[i]);
      hi = std::max(hi, fig.series(s).values[i]);
    }
    EXPECT_LE(hi, lo * 2.0 + 8.0) << "rate=" << kRates[i];
  }
}

}  // namespace
}  // namespace lesslog
