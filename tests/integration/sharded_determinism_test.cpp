// Cross-shard determinism: the sharded swarm is a pure function of
// (seed, shard count). Three pinned properties:
//   1. S = 1 is byte-identical to the serial proto::Swarm — same
//      latencies, counters, and metric snapshot;
//   2. repeated runs at the same S > 1 agree exactly, whatever the
//      thread interleaving (run under the tsan preset too);
//   3. with jitter = 0 and no drops the workload outcome is
//      S-independent — the conservative windows reorder execution but
//      not results.
#include <gtest/gtest.h>

#include <vector>

#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/proto/swarm.hpp"

namespace lesslog::proto {
namespace {

constexpr std::uint32_t kNodes = 64;
constexpr int kFiles = 32;
constexpr int kGets = 128;

ShardedSwarm::Config sharded_config(std::size_t shards, bool deterministic_net) {
  ShardedSwarm::Config cfg;
  cfg.m = 8;
  cfg.b = 1;
  cfg.nodes = kNodes;
  cfg.seed = 7;
  cfg.shards = shards;
  if (deterministic_net) {
    cfg.net.jitter = 0.0;
    cfg.net.drop_probability = 0.0;
  }
  return cfg;
}

/// The bench-style workload: build a catalog, settle, then a burst of
/// GETs from scattered issuers. Swarm and ShardedSwarm expose the same
/// data-plane API, so one template drives both.
template <typename AnySwarm>
void run_workload(AnySwarm& swarm) {
  std::vector<core::FileId> files;
  files.reserve(kFiles);
  for (int i = 0; i < kFiles; ++i) {
    files.push_back(swarm.insert_named(
        1000 + static_cast<std::uint64_t>(i),
        core::Pid{static_cast<std::uint32_t>(i) % kNodes}));
  }
  swarm.settle();
  for (int r = 0; r < kGets; ++r) {
    const core::FileId f = files[static_cast<std::size_t>(r) % kFiles];
    const core::Pid at{static_cast<std::uint32_t>(r * 7) % kNodes};
    swarm.get(f, swarm.peer(at).target_of(f), at);
  }
  swarm.settle();
}

struct Outcome {
  std::vector<double> latencies;
  std::int64_t faults = 0;
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t undeliverable = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  bool operator==(const Outcome& o) const {
    return latencies == o.latencies && faults == o.faults &&
           sent == o.sent && delivered == o.delivered &&
           undeliverable == o.undeliverable && counters == o.counters;
  }
};

Outcome outcome_of(ShardedSwarm& swarm) {
  Outcome out;
  out.latencies = swarm.all_latencies();
  out.faults = swarm.total_faults();
  out.sent = swarm.messages_sent();
  out.delivered = swarm.delivered();
  out.undeliverable = swarm.undeliverable();
  out.counters = swarm.metrics_snapshot().counters;
  // The shard-boundary split is a property of the deployment (S, map),
  // not of the workload: S = 1 counts nothing, S > 1 splits the same
  // sends differently. Every other counter must still match across S.
  std::erase_if(out.counters, [](const auto& kv) {
    return kv.first == "net.cross_shard_msgs" ||
           kv.first == "net.intra_shard_msgs";
  });
  return out;
}

TEST(ShardedDeterminism, SingleShardMatchesSerialSwarmExactly) {
  Swarm::Config serial_cfg;
  serial_cfg.m = 8;
  serial_cfg.b = 1;
  serial_cfg.nodes = kNodes;
  serial_cfg.seed = 7;
  Swarm serial(serial_cfg);
  run_workload(serial);

  ShardedSwarm sharded(sharded_config(1, /*deterministic_net=*/false));
  run_workload(sharded);

  // Exact double equality: same seed, same RNG stream, same event order.
  EXPECT_EQ(sharded.all_latencies(), serial.all_latencies());
  EXPECT_EQ(sharded.total_faults(), serial.total_faults());
  EXPECT_EQ(sharded.messages_sent(), serial.network().messages_sent());
  EXPECT_EQ(sharded.delivered(), serial.network().delivered());
  EXPECT_EQ(sharded.bytes_sent(), serial.network().bytes_sent());
  const obs::Snapshot a = sharded.metrics_snapshot(1.0);
  const obs::Snapshot b = serial.registry().snapshot(1.0);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
}

TEST(ShardedDeterminism, RepeatedMultiShardRunsAgreeExactly) {
  ShardedSwarm first(sharded_config(4, /*deterministic_net=*/false));
  run_workload(first);
  ShardedSwarm second(sharded_config(4, /*deterministic_net=*/false));
  run_workload(second);
  EXPECT_TRUE(outcome_of(first) == outcome_of(second));
}

TEST(ShardedDeterminism, OutcomeIsShardCountIndependentWithoutJitter) {
  // Zero jitter + zero drops: the GET path draws no randomness and no
  // client timeout can fire (max path latency << timeout), so not just
  // the outcome but every latency must match bit-for-bit across S.
  ShardedSwarm s1(sharded_config(1, /*deterministic_net=*/true));
  run_workload(s1);
  const Outcome base = outcome_of(s1);
  EXPECT_GT(base.latencies.size(), 0u);
  EXPECT_EQ(base.faults, 0);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    ShardedSwarm sn(sharded_config(shards, /*deterministic_net=*/true));
    run_workload(sn);
    EXPECT_TRUE(outcome_of(sn) == base) << "S = " << shards;
  }
}

TEST(ShardedDeterminism, CrashRecoveryMatchesSerialAtOneShard) {
  const auto drive = [](auto& swarm) {
    std::vector<core::FileId> files;
    for (int i = 0; i < kFiles; ++i) {
      files.push_back(swarm.insert_named(
          2000 + static_cast<std::uint64_t>(i),
          core::Pid{static_cast<std::uint32_t>(i) % kNodes}));
    }
    swarm.settle();
    swarm.crash(core::Pid{5});
    swarm.settle();
    swarm.restart(core::Pid{5});
    swarm.settle();
    swarm.depart(core::Pid{11});
    swarm.settle();
    for (int r = 0; r < kGets; ++r) {
      const core::FileId f = files[static_cast<std::size_t>(r) % kFiles];
      const core::Pid at{static_cast<std::uint32_t>(r * 3 + 1) % kNodes};
      if (at.value() == 11) continue;  // departed
      swarm.get(f, swarm.peer(at).target_of(f), at);
    }
    swarm.settle();
  };

  Swarm::Config serial_cfg;
  serial_cfg.m = 8;
  serial_cfg.b = 1;
  serial_cfg.nodes = kNodes;
  serial_cfg.seed = 21;
  Swarm serial(serial_cfg);
  drive(serial);

  ShardedSwarm::Config cfg = sharded_config(1, /*deterministic_net=*/false);
  cfg.seed = 21;
  ShardedSwarm sharded(cfg);
  drive(sharded);

  EXPECT_EQ(sharded.all_latencies(), serial.all_latencies());
  EXPECT_EQ(sharded.total_faults(), serial.total_faults());
  EXPECT_EQ(sharded.messages_sent(), serial.network().messages_sent());
  EXPECT_EQ(sharded.undeliverable(), serial.network().undeliverable());
}

TEST(ShardedDeterminism, CrashRecoveryRepeatsExactlyAtTwoShards) {
  const auto run_once = [] {
    ShardedSwarm::Config cfg = sharded_config(2, /*deterministic_net=*/false);
    cfg.seed = 21;
    ShardedSwarm swarm(cfg);
    std::vector<core::FileId> files;
    for (int i = 0; i < kFiles; ++i) {
      files.push_back(swarm.insert_named(
          2000 + static_cast<std::uint64_t>(i),
          core::Pid{static_cast<std::uint32_t>(i) % kNodes}));
    }
    swarm.settle();
    swarm.crash(core::Pid{200 % kNodes});  // crosses the shard boundary map
    swarm.settle();
    swarm.restart(core::Pid{200 % kNodes});
    swarm.settle();
    for (int r = 0; r < kGets; ++r) {
      const core::FileId f = files[static_cast<std::size_t>(r) % kFiles];
      const core::Pid at{static_cast<std::uint32_t>(r * 3) % kNodes};
      swarm.get(f, swarm.peer(at).target_of(f), at);
    }
    swarm.settle();
    return outcome_of(swarm);
  };
  // Two full runs, fresh thread pools each: identical outcomes prove the
  // barrier protocol, not scheduling luck, fixes the event order.
  EXPECT_TRUE(run_once() == run_once());
}

}  // namespace
}  // namespace lesslog::proto
