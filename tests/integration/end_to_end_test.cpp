// Scenario tests that exercise the full public API the way the examples
// and a downstream application would.
#include <gtest/gtest.h>

#include "lesslog/core/system.hpp"
#include "lesslog/sim/churn.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/baseline/policy.hpp"

namespace lesslog {
namespace {

using core::FileId;
using core::Pid;

TEST(EndToEnd, FlashCrowdShedsUntilBalanced) {
  // A hot file in a 256-node system; shed load with LessLog replication
  // until no node serves more than `capacity` of the 256 per-round
  // requests, then verify the final serving distribution.
  core::System sys({.m = 8, .b = 0, .seed = 9});
  sys.bootstrap(256);
  const FileId hot = sys.insert("flash/crowd.bin");
  const std::uint64_t capacity = 40;

  for (int round = 0; round < 64; ++round) {
    sys.reset_counters();
    for (std::uint32_t k = 0; k < 256; ++k) sys.get(hot, Pid{k});
    // Find the most loaded node.
    Pid worst{0};
    std::uint64_t worst_load = 0;
    for (std::uint32_t p = 0; p < 256; ++p) {
      if (sys.node(Pid{p}).served() > worst_load) {
        worst_load = sys.node(Pid{p}).served();
        worst = Pid{p};
      }
    }
    if (worst_load <= capacity) break;
    ASSERT_TRUE(sys.replicate(hot, worst).has_value());
  }

  sys.reset_counters();
  for (std::uint32_t k = 0; k < 256; ++k) sys.get(hot, Pid{k});
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 256; ++p) {
    EXPECT_LE(sys.node(Pid{p}).served(), capacity);
    total += sys.node(Pid{p}).served();
  }
  EXPECT_EQ(total, 256u);  // nothing lost, nothing double-served
  // 256 requests over capacity 40 needs at least 7 copies.
  EXPECT_GE(sys.holders(hot).size(), 7u);
}

TEST(EndToEnd, MultiFileWorkloadWithUpdatesStaysCoherent) {
  core::System sys({.m = 7, .b = 0, .seed = 10});
  sys.bootstrap(128);
  std::vector<FileId> files;
  for (int i = 0; i < 32; ++i) {
    files.push_back(sys.insert("library/file-" + std::to_string(i)));
  }
  // Interleave reads, replication, and updates.
  for (int round = 0; round < 10; ++round) {
    for (const FileId f : files) {
      sys.get(f, Pid{static_cast<std::uint32_t>((round * 13) % 128)});
    }
    sys.replicate(files[static_cast<std::size_t>(round) % files.size()],
                  sys.holders(files[static_cast<std::size_t>(round) %
                                    files.size()])
                      .front());
    for (const FileId f : files) sys.update(f);
  }
  for (const FileId f : files) {
    for (const Pid h : sys.holders(f)) {
      EXPECT_EQ(sys.node(h).store().info(f)->version, sys.version_of(f));
    }
  }
}

TEST(EndToEnd, RollingUpgradeLeavesAndRejoins) {
  // Take every node through a leave/join cycle (a rolling restart) and
  // verify no file is ever lost and every request still succeeds.
  core::System sys({.m = 5, .b = 0, .seed = 11});
  sys.bootstrap(32);
  std::vector<FileId> files;
  for (int i = 0; i < 8; ++i) files.push_back(sys.insert_key(7000u + static_cast<std::uint64_t>(i)));

  for (std::uint32_t p = 0; p < 32; ++p) {
    sys.leave(Pid{p});
    for (const FileId f : files) {
      // Any live node can still fetch everything mid-restart.
      const Pid probe{(p + 1u) % 32u};
      if (sys.is_live(probe)) {
        EXPECT_TRUE(sys.get(f, probe).ok());
      }
    }
    sys.join(Pid{p});
  }
  EXPECT_TRUE(sys.lost_files().empty());
  EXPECT_EQ(sys.live_count(), 32u);
}

TEST(EndToEnd, DisasterRecoveryWithFaultTolerance) {
  // Crash 40% of a b=2 system in one storm; every file must survive.
  core::System sys({.m = 6, .b = 2, .seed = 12});
  sys.bootstrap(64);
  std::vector<FileId> files;
  for (int i = 0; i < 16; ++i) files.push_back(sys.insert_key(9000u + static_cast<std::uint64_t>(i)));

  util::Rng rng(12);
  int crashed = 0;
  while (crashed < 25) {
    const auto p = static_cast<std::uint32_t>(rng.bounded(64));
    if (!sys.is_live(Pid{p})) continue;
    sys.fail(Pid{p});
    ++crashed;
  }
  EXPECT_TRUE(sys.lost_files().empty());
  for (const FileId f : files) {
    for (std::uint32_t k = 0; k < 64; ++k) {
      if (sys.is_live(Pid{k})) {
        EXPECT_TRUE(sys.get(f, Pid{k}).ok());
      }
    }
  }
}

TEST(EndToEnd, ExperimentHarnessAgreesWithSystemOnSmallCase) {
  // Cross-validate the fluid solver against the message-level System: the
  // replica count the harness reports must match a System-driven
  // shed-until-balanced loop on the same deterministic setup.
  sim::ExperimentConfig cfg;
  cfg.m = 4;
  cfg.total_rate = 160.0;
  cfg.capacity = 25.0;
  cfg.seed = 5;
  const sim::ExperimentResult r =
      sim::run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  // 160 req/s over capacity 25 needs >= 7 copies total (6 replicas); the
  // binomial halving needs at most ~2x the fluid optimum.
  EXPECT_GE(r.replicas_created, 3);
  EXPECT_LE(r.replicas_created, 15);
}

TEST(EndToEnd, ChurnScenarioMatchesSystemCounters) {
  sim::ChurnConfig cfg;
  cfg.m = 6;
  cfg.initial_nodes = 40;
  cfg.min_nodes = 16;
  cfg.files = 8;
  cfg.duration = 30.0;
  cfg.request_rate = 40.0;
  cfg.join_rate = 0.3;
  cfg.leave_rate = 0.15;
  cfg.fail_rate = 0.0;
  cfg.seed = 21;
  const sim::ChurnResult r = sim::run_churn(cfg);
  EXPECT_EQ(r.faults, 0);
  EXPECT_EQ(r.files_lost, 0u);
  EXPECT_GT(r.requests, 0);
}

}  // namespace
}  // namespace lesslog
