#include "lesslog/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lesslog::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  const EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&order] { order.push_back(3); });
  q.schedule(1.0, [&order] { order.push_back(1); });
  q.schedule(2.0, [&order] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesBreakInSubmissionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, StepAdvancesClock) {
  EventQueue q;
  q.schedule(2.5, [] {});
  EXPECT_EQ(q.next_time(), 2.5);
  q.step();
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&fired] { ++fired; });
  q.schedule(5.0, [&fired] { ++fired; });
  EXPECT_EQ(q.run_until(3.0), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_until(5.0), 1);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, InclusiveBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(3.0, [&fired] { ++fired; });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(q.now());
    if (q.now() < 4.0) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(1.0, chain);
  q.run_until(100.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(EventQueue, ClockNeverRewinds) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_until(10.0);
  EXPECT_EQ(q.now(), 10.0);
  q.run_until(2.0);  // lower bound: must not rewind
  EXPECT_EQ(q.now(), 10.0);
}

}  // namespace
}  // namespace lesslog::sim
