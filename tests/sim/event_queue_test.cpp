#include "lesslog/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "lesslog/util/rng.hpp"

namespace lesslog::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  const EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&order] { order.push_back(3); });
  q.schedule(1.0, [&order] { order.push_back(1); });
  q.schedule(2.0, [&order] { order.push_back(2); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10.0);
}

TEST(EventQueue, TiesBreakInSubmissionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, StepAdvancesClock) {
  EventQueue q;
  q.schedule(2.5, [] {});
  EXPECT_EQ(q.next_time(), 2.5);
  q.step();
  EXPECT_EQ(q.now(), 2.5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&fired] { ++fired; });
  q.schedule(5.0, [&fired] { ++fired; });
  EXPECT_EQ(q.run_until(3.0), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 3.0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_until(5.0), 1);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, InclusiveBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(3.0, [&fired] { ++fired; });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(q.now());
    if (q.now() < 4.0) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(1.0, chain);
  q.run_until(100.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(EventQueue, ClockNeverRewinds) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_until(10.0);
  EXPECT_EQ(q.now(), 10.0);
  q.run_until(2.0);  // lower bound: must not rewind
  EXPECT_EQ(q.now(), 10.0);
}

// -- Ordering guarantees across the wheel / lane / heap sources ----------

// Same-timestamp events pop in schedule order regardless of which
// internal structure holds them. 0.010 lands in the timing wheel (wire
// delays), 1.0 in the heap; both must be FIFO within a timestamp.
TEST(EventQueueOrder, ManySameTimestampEventsAreFifo) {
  for (const double at : {0.010, 1.0}) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      q.schedule(at, [&order, i] { order.push_back(i); });
    }
    q.run_until(at);
    ASSERT_EQ(order.size(), 500u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  }
}

// A handler scheduling into the wheel bucket that is currently being
// drained (the sorted front) must keep that bucket ordered: new entries
// land between the remaining ones by time, after them on ties.
TEST(EventQueueOrder, ScheduleIntoDrainingWheelBucket) {
  EventQueue q;
  std::vector<char> order;
  q.schedule(0.010, [&order] { order.push_back('b'); });
  q.schedule(0.0108, [&order] { order.push_back('e'); });
  // Runs first (short delays stay on the heap) with the wheel non-empty:
  // the min scan has already sorted the front bucket, so these inserts
  // take the ordered-insert path into a sorted, partially-drained bucket.
  q.schedule(0.001, [&order, &q] {
    order.push_back('a');
    q.schedule(0.0101, [&order] { order.push_back('c'); });
    q.schedule(0.0105, [&order] { order.push_back('d'); });
  });
  q.run_until(1.0);
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c', 'd', 'e'}));
}

// Fixed-delay lane events interleave correctly with wheel and heap
// events at identical and neighbouring timestamps.
TEST(EventQueueOrder, FixedLanesInterleaveWithWheelAndHeap) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_after_fixed(0.25, [&order] { order.push_back(3); });  // lane
  q.schedule(0.010, [&order] { order.push_back(1); });             // wheel
  q.schedule(0.25, [&order] { order.push_back(4); });   // heap, tie with 3
  q.schedule(0.010, [&order] { order.push_back(2); });  // wheel, tie with 1
  q.schedule(5.0, [&order] { order.push_back(5); });    // heap
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

// Stress: handlers schedule more events mid-step with delays spanning
// the wheel window, the heap, and fixed lanes. The executed sequence
// must equal the (time, schedule-order) sort of everything scheduled —
// the strict total order the simulation's determinism rests on.
TEST(EventQueueOrder, ScheduleDuringStepStressMatchesTotalOrder) {
  EventQueue q;
  util::Rng rng(0xC0FFEEULL);
  std::vector<std::pair<double, std::uint64_t>> executed;
  std::uint64_t scheduled = 0;
  int budget = 4000;

  const auto pick_delay = [&rng]() -> double {
    switch (rng.bounded(4)) {
      case 0: return 0.001 + rng.uniform01() * 0.002;  // below the wheel
      case 1: return 0.004 + rng.uniform01() * 0.055;  // wheel window
      case 2: return 0.060 + rng.uniform01() * 2.0;    // heap
      default: return 0.0;                             // immediate tie-land
    }
  };

  std::function<void(std::uint64_t)> handler =
      [&](std::uint64_t seq) {
        executed.emplace_back(q.now(), seq);
        while (budget > 0 && rng.bounded(3) == 0) {
          --budget;
          const std::uint64_t id = scheduled++;
          if (rng.bounded(8) == 0) {
            q.schedule_after_fixed(0.25, [&handler, id] { handler(id); });
          } else {
            q.schedule(q.now() + pick_delay(),
                       [&handler, id] { handler(id); });
          }
        }
      };

  for (int i = 0; i < 200; ++i) {
    const std::uint64_t id = scheduled++;
    q.schedule(rng.uniform01() * 0.5, [&handler, id] { handler(id); });
  }
  q.run_until(1e9);

  ASSERT_EQ(executed.size(), scheduled);
  // (time, schedule seq) must be strictly increasing lexicographically:
  // time never rewinds and ties always break in schedule order.
  for (std::size_t i = 1; i < executed.size(); ++i) {
    const auto& [t0, s0] = executed[i - 1];
    const auto& [t1, s1] = executed[i];
    ASSERT_TRUE(t1 > t0 || (t1 == t0 && s1 > s0))
        << "order violated at pop " << i;
  }
}

// -- Timing-wheel admission boundaries -----------------------------------
//
// The wheel takes delays in [kWheelMinDelay, kWheelMaxDelay) =
// [0.004, 0.060) (private constants; values asserted here so a silent
// retune fails loudly). Events on either side of each boundary route to
// different structures yet must keep the global (time, schedule-order)
// total order.

TEST(EventQueueEdge, ExactWheelMinDelayBoundary) {
  EventQueue q;
  std::vector<int> order;
  const double kMin = 0.004;  // == EventQueue's kWheelMinDelay
  q.schedule(kMin, [&order] { order.push_back(1); });  // wheel (admitted)
  q.schedule(std::nextafter(kMin, 0.0),
             [&order] { order.push_back(0); });        // heap (just below)
  q.schedule(kMin, [&order] { order.push_back(2); });  // wheel, tie with 1
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), kMin);
}

TEST(EventQueueEdge, ExactWheelMaxDelayBoundary) {
  EventQueue q;
  std::vector<int> order;
  const double kMax = 0.060;  // == EventQueue's kWheelMaxDelay
  q.schedule(kMax, [&order] { order.push_back(1); });  // heap (excluded)
  q.schedule(std::nextafter(kMax, 0.0),
             [&order] { order.push_back(0); });        // wheel (just below)
  q.schedule(kMax, [&order] { order.push_back(2); });  // heap, tie with 1
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// A handler at the front bucket's drain point schedules an event at the
// current time: the timestamp maps into the bucket's already-popped
// [0, head) range, so it must route elsewhere (zero delay -> heap) and
// still run after the bucket's remaining same-time entries (older
// schedule seq wins the tie) — never be lost or run early.
TEST(EventQueueEdge, ScheduleDuringStepAtDrainedFrontBucketTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(0.010, [&order, &q] {
    order.push_back(0);
    q.schedule(q.now(), [&order] { order.push_back(2); });
  });
  q.schedule(0.010, [&order] { order.push_back(1); });
  q.schedule(0.011, [&order] { order.push_back(3); });
  EXPECT_EQ(q.run_all(), 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Delays near the top of the window scheduled from a nonzero clock wrap
// the 32-bucket ring to an index below the current bucket; in-bucket
// order after the wrap must still be by (time, seq).
TEST(EventQueueEdge, WheelWrapAroundKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(0.031, [&order, &q] {
    order.push_back(0);
    q.schedule(q.now() + 0.0599, [&order] { order.push_back(2); });
    q.schedule(q.now() + 0.0598, [&order] { order.push_back(1); });
    q.schedule(q.now() + 0.070, [&order] { order.push_back(3); });  // heap
  });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// -- run_before: the sharded engine's window primitive -------------------

TEST(EventQueueRunBefore, ExcludesEventsExactlyAtTheBound) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&fired] { ++fired; });
  q.schedule(2.0, [&fired] { ++fired; });
  // run_until(2.0) would fire both; the window [*, 2.0) takes only the
  // first — an event on the edge belongs to the next window.
  EXPECT_EQ(q.run_before(2.0), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_before(std::nextafter(2.0, 3.0)), 1);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueRunBefore, AdvancesClockEvenWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_before(5.0), 0);
  EXPECT_EQ(q.now(), 5.0);  // idle shards still land on the window edge
  q.schedule(10.0, [] {});
  EXPECT_EQ(q.run_before(7.0), 0);
  EXPECT_EQ(q.now(), 7.0);
  EXPECT_EQ(q.run_before(3.0), 0);  // never rewinds
  EXPECT_EQ(q.now(), 7.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueRunBefore, DrainsEverySourceStrictlyBelowBound) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(0.010, [&order] { order.push_back(0); });  // wheel
  q.schedule_after_fixed(0.25, [&order] { order.push_back(1); });  // lane
  q.schedule(0.25, [&order] { order.push_back(2); });  // heap, tie with 1
  EXPECT_EQ(q.run_before(0.25), 1);  // the 0.25 pair sits on the edge
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(q.run_before(1.0), 2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(q.empty());
}

// -- Lane-table admission (the kMaxLanes cap) ----------------------------
//
// schedule_after_fixed exists for a small set of protocol constants; a
// caller leaking computed delays into it must not grow the lane table
// (and with it the per-event min scan) without bound. Past kMaxLanes the
// queue admits unseen delays through the wheel/heap with the same
// (time, seq) key, so only the container changes — never the pop order.

TEST(EventQueueAdmission, LaneTableStopsGrowingAtTheCap) {
  EventQueue q;
  int fired = 0;
  const std::size_t kDistinct = EventQueue::kMaxLanes + 8;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    q.schedule_after_fixed(0.1 + 0.001 * static_cast<double>(i),
                           [&fired] { ++fired; });
  }
  EXPECT_EQ(q.lane_table_size(), EventQueue::kMaxLanes);
  EXPECT_EQ(q.run_all(), static_cast<std::int64_t>(kDistinct));
  EXPECT_EQ(fired, static_cast<int>(kDistinct));
}

TEST(EventQueueAdmission, OverflowDelaysKeepTheTotalOrder) {
  // Interleave laned, overflowed, and schedule()d events with tying and
  // distinct timestamps; the executed sequence must equal the (time,
  // submission) sort regardless of which container held each entry.
  EventQueue q;
  std::vector<int> order;
  int next = 0;
  // Fill the lane table with distinct constants.
  for (std::size_t i = 0; i < EventQueue::kMaxLanes; ++i) {
    q.schedule_after_fixed(1.0 + 0.01 * static_cast<double>(i),
                           [&order, id = next++] { order.push_back(id); });
  }
  // Overflow: three unseen delays, one tying an existing lane's time.
  q.schedule_after_fixed(0.5,
                         [&order, id = next++] { order.push_back(id); });
  q.schedule_after_fixed(1.0,  // same expiry as the first lane, later seq
                         [&order, id = next++] { order.push_back(id); });
  q.schedule_after_fixed(2.0,
                         [&order, id = next++] { order.push_back(id); });
  EXPECT_EQ(q.lane_table_size(), EventQueue::kMaxLanes);
  // A wheel-range event and a far-future heap event for good measure.
  q.schedule(0.010, [&order, id = next++] { order.push_back(id); });
  q.schedule(3.0, [&order, id = next++] { order.push_back(id); });
  EXPECT_EQ(q.run_all(), static_cast<std::int64_t>(next));
  // Expected: 0.010s wheel event, 0.5s overflow, the sixteen lanes in
  // delay order (1.00..1.15) with the 1.0s overflow firing right after
  // the 1.00 lane entry (same time, later submission), then 2.0s, 3.0s.
  std::vector<int> expected;
  expected.push_back(static_cast<int>(EventQueue::kMaxLanes) + 3);  // wheel
  expected.push_back(static_cast<int>(EventQueue::kMaxLanes));      // 0.5
  expected.push_back(0);                                            // 1.00
  expected.push_back(static_cast<int>(EventQueue::kMaxLanes) + 1);  // tie
  for (int i = 1; i < static_cast<int>(EventQueue::kMaxLanes); ++i) {
    expected.push_back(i);
  }
  expected.push_back(static_cast<int>(EventQueue::kMaxLanes) + 2);  // 2.0
  expected.push_back(static_cast<int>(EventQueue::kMaxLanes) + 4);  // 3.0
  EXPECT_EQ(order, expected);
}

TEST(EventQueueAdmission, ReusedConstantStillLanesAfterOverflow) {
  // A delay that already owns a lane keeps using it even when the table
  // is full — the cap only rejects *new* lanes.
  EventQueue q;
  int fired = 0;
  for (std::size_t i = 0; i < EventQueue::kMaxLanes + 4; ++i) {
    q.schedule_after_fixed(0.1 + 0.001 * static_cast<double>(i),
                           [&fired] { ++fired; });
  }
  const std::size_t lanes = q.lane_table_size();
  q.schedule_after_fixed(0.1, [&fired] { ++fired; });  // lane 0 again
  EXPECT_EQ(q.lane_table_size(), lanes);
  EXPECT_EQ(q.run_all(),
            static_cast<std::int64_t>(EventQueue::kMaxLanes + 5));
  EXPECT_EQ(fired, static_cast<int>(EventQueue::kMaxLanes + 5));
}

TEST(EventQueueOrder, RunAllDrainsEverySource) {
  EventQueue q;
  int fired = 0;
  q.schedule(0.010, [&fired] { ++fired; });            // wheel
  q.schedule(3.0, [&fired] { ++fired; });              // heap
  q.schedule_after_fixed(0.25, [&fired, &q] {          // lane
    ++fired;
    q.schedule(q.now() + 0.020, [&fired] { ++fired; });
  });
  EXPECT_EQ(q.run_all(), 4);
  EXPECT_EQ(fired, 4);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace lesslog::sim
