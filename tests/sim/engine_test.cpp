#include "lesslog/sim/engine.hpp"

#include <gtest/gtest.h>

namespace lesslog::sim {
namespace {

TEST(Engine, AtAndAfterScheduleCorrectly) {
  Engine e(1);
  std::vector<double> times;
  e.at(2.0, [&] { times.push_back(e.now()); });
  e.after(1.0, [&] { times.push_back(e.now()); });
  e.run_until(5.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Engine, PoissonProcessFiresUntilStop) {
  Engine e(2);
  int fired = 0;
  e.poisson_process(10.0, 100.0, [&fired] { ++fired; });
  e.run_until(100.0);
  // ~1000 expected arrivals; very loose bounds keep the test robust.
  EXPECT_GT(fired, 700);
  EXPECT_LT(fired, 1300);
}

TEST(Engine, PoissonProcessZeroRateNeverFires) {
  Engine e(3);
  int fired = 0;
  e.poisson_process(0.0, 10.0, [&fired] { ++fired; });
  e.run_until(10.0);
  EXPECT_EQ(fired, 0);
}

TEST(Engine, PoissonArrivalsAreDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Engine e(seed);
    std::vector<double> times;
    e.poisson_process(5.0, 10.0, [&] { times.push_back(e.now()); });
    e.run_until(10.0);
    return times;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Engine, MultipleProcessesInterleave) {
  Engine e(4);
  int a = 0;
  int b = 0;
  e.poisson_process(5.0, 50.0, [&a] { ++a; });
  e.poisson_process(5.0, 50.0, [&b] { ++b; });
  e.run_until(50.0);
  EXPECT_GT(a, 100);
  EXPECT_GT(b, 100);
}

TEST(Engine, ArrivalsNeverExceedStopTime) {
  Engine e(5);
  double last = 0.0;
  e.poisson_process(50.0, 7.5, [&] { last = e.now(); });
  e.run_until(100.0);
  EXPECT_LE(last, 7.5);
}

}  // namespace
}  // namespace lesslog::sim
