#include "lesslog/sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lesslog::sim {
namespace {

util::StatusWord live_n(int m, std::uint32_t n) {
  return util::StatusWord(m, n);
}

TEST(UniformWorkload, SplitsEvenly) {
  const util::StatusWord live = live_n(4, 16);
  const Workload w = uniform_workload(util::BorrowedView(live), 1600.0);
  EXPECT_EQ(w.size(), 16u);
  for (double r : w.rate) EXPECT_DOUBLE_EQ(r, 100.0);
  EXPECT_NEAR(w.total(), 1600.0, 1e-9);
}

TEST(UniformWorkload, DeadNodesGetZero) {
  util::StatusWord live = live_n(4, 16);
  live.set_dead(3);
  live.set_dead(7);
  const Workload w = uniform_workload(util::BorrowedView(live), 1400.0);
  EXPECT_EQ(w.rate[3], 0.0);
  EXPECT_EQ(w.rate[7], 0.0);
  EXPECT_DOUBLE_EQ(w.rate[0], 100.0);
  EXPECT_NEAR(w.total(), 1400.0, 1e-9);
}

TEST(UniformWorkload, EmptySystem) {
  const util::StatusWord live(4);
  const Workload w = uniform_workload(util::BorrowedView(live), 100.0);
  EXPECT_EQ(w.total(), 0.0);
}

TEST(LocalityWorkload, EightyTwentySplit) {
  const util::StatusWord live = live_n(10, 1000);
  util::Rng rng(1);
  const Workload w = locality_workload(util::BorrowedView(live), 10000.0, rng);
  EXPECT_NEAR(w.total(), 10000.0, 1e-6);
  // 200 hot nodes at 40/s each, 800 cold at 2.5/s each.
  std::vector<double> rates;
  for (std::uint32_t p = 0; p < 1000; ++p) rates.push_back(w.rate[p]);
  const auto hot =
      std::count_if(rates.begin(), rates.end(),
                    [](double r) { return std::abs(r - 40.0) < 1e-9; });
  const auto cold =
      std::count_if(rates.begin(), rates.end(),
                    [](double r) { return std::abs(r - 2.5) < 1e-9; });
  EXPECT_EQ(hot, 200);
  EXPECT_EQ(cold, 800);
}

TEST(LocalityWorkload, HotSetDependsOnSeed) {
  const util::StatusWord live = live_n(6, 64);
  util::Rng rng1(1);
  util::Rng rng2(2);
  const Workload a = locality_workload(util::BorrowedView(live), 640.0, rng1);
  const Workload b = locality_workload(util::BorrowedView(live), 640.0, rng2);
  EXPECT_NE(a.rate, b.rate);
  util::Rng rng1_again(1);
  const Workload a_again = locality_workload(util::BorrowedView(live), 640.0, rng1_again);
  EXPECT_EQ(a.rate, a_again.rate);
}

TEST(LocalityWorkload, DeadNodesGetZero) {
  util::StatusWord live = live_n(5, 32);
  for (std::uint32_t p = 20; p < 32; ++p) live.set_dead(p);
  util::Rng rng(3);
  const Workload w = locality_workload(util::BorrowedView(live), 2000.0, rng);
  for (std::uint32_t p = 20; p < 32; ++p) EXPECT_EQ(w.rate[p], 0.0);
  EXPECT_NEAR(w.total(), 2000.0, 1e-9);
}

TEST(LocalityWorkload, AtLeastOneHotNode) {
  const util::StatusWord live = live_n(3, 3);
  util::Rng rng(5);
  // 20% of 3 nodes rounds to 1 hot node.
  const Workload w = locality_workload(util::BorrowedView(live), 300.0, rng);
  const auto hottest = *std::max_element(w.rate.begin(), w.rate.end());
  EXPECT_NEAR(hottest, 240.0, 1e-9);  // 80% of the rate on one node
}

TEST(LocalityWorkload, FullHotFractionDegeneratesToUniform) {
  const util::StatusWord live = live_n(4, 16);
  util::Rng rng(7);
  const Workload w = locality_workload(util::BorrowedView(live), 1600.0, rng, 1.0, 0.8);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_NEAR(w.rate[p], 100.0, 1e-9);
  }
}

TEST(ZipfWeights, NormalizedAndDecreasing) {
  const std::vector<double> w = zipf_weights(100, 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfWeights, ExponentZeroIsUniform) {
  const std::vector<double> w = zipf_weights(10, 0.0);
  for (double x : w) EXPECT_NEAR(x, 0.1, 1e-12);
}

TEST(ZipfWeights, HigherSkewConcentratesHead) {
  const std::vector<double> mild = zipf_weights(50, 0.5);
  const std::vector<double> steep = zipf_weights(50, 2.0);
  EXPECT_GT(steep[0], mild[0]);
}

}  // namespace
}  // namespace lesslog::sim
