#include "lesslog/sim/churn.hpp"

#include <gtest/gtest.h>

namespace lesslog::sim {
namespace {

ChurnConfig quick_cfg() {
  ChurnConfig cfg;
  cfg.m = 6;
  cfg.initial_nodes = 48;
  cfg.min_nodes = 16;
  cfg.files = 16;
  cfg.duration = 60.0;
  cfg.request_rate = 50.0;
  cfg.join_rate = 0.4;
  cfg.leave_rate = 0.2;
  cfg.fail_rate = 0.2;
  cfg.seed = 3;
  return cfg;
}

TEST(Churn, RunsAndServesRequests) {
  const ChurnResult r = run_churn(quick_cfg());
  EXPECT_GT(r.requests, 1000);
  EXPECT_GE(r.final_nodes, 16u);
  EXPECT_GT(r.joins + r.leaves + r.fails, 0);
  EXPECT_GT(r.lookup_messages, 0);
  EXPECT_GT(r.maintenance_messages, 0);
}

TEST(Churn, DeterministicGivenSeed) {
  const ChurnResult a = run_churn(quick_cfg());
  const ChurnResult b = run_churn(quick_cfg());
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.maintenance_messages, b.maintenance_messages);
}

TEST(Churn, GracefulLeavesAloneLoseNothing) {
  ChurnConfig cfg = quick_cfg();
  cfg.fail_rate = 0.0;  // voluntary departures only
  const ChurnResult r = run_churn(cfg);
  EXPECT_EQ(r.files_lost, 0u);
  EXPECT_EQ(r.faults, 0);
}

TEST(Churn, NoChurnNoMaintenanceAfterSetup) {
  ChurnConfig cfg = quick_cfg();
  cfg.join_rate = 0.0;
  cfg.leave_rate = 0.0;
  cfg.fail_rate = 0.0;
  const ChurnResult r = run_churn(cfg);
  EXPECT_EQ(r.joins, 0);
  EXPECT_EQ(r.leaves, 0);
  EXPECT_EQ(r.fails, 0);
  EXPECT_EQ(r.faults, 0);
  // Only the insert messages remain.
  EXPECT_EQ(r.maintenance_messages,
            static_cast<std::int64_t>(cfg.files));
}

TEST(Churn, FaultToleranceReducesLossUnderCrashes) {
  ChurnConfig cfg = quick_cfg();
  cfg.fail_rate = 1.0;
  cfg.leave_rate = 0.0;
  cfg.join_rate = 0.0;
  cfg.duration = 30.0;
  cfg.b = 0;
  const ChurnResult without_ft = run_churn(cfg);
  cfg.b = 2;
  const ChurnResult with_ft = run_churn(cfg);
  EXPECT_LE(with_ft.files_lost, without_ft.files_lost);
  EXPECT_EQ(with_ft.files_lost, 0u);
}

TEST(Churn, JoinOnlyGrowsToCapacityAndStops) {
  ChurnConfig cfg = quick_cfg();
  cfg.m = 6;
  cfg.initial_nodes = 60;
  cfg.join_rate = 2.0;
  cfg.leave_rate = 0.0;
  cfg.fail_rate = 0.0;
  cfg.duration = 120.0;
  const ChurnResult r = run_churn(cfg);
  // Joins saturate at the 64-slot capacity; extra arrivals are no-ops.
  EXPECT_EQ(r.final_nodes, 64u);
  EXPECT_EQ(r.joins, 4);
  EXPECT_EQ(r.faults, 0);
}

TEST(Churn, HighDegreeFaultToleranceUnderMixedChurn) {
  ChurnConfig cfg = quick_cfg();
  cfg.b = 3;  // 8 copies per file
  cfg.fail_rate = 0.5;
  const ChurnResult r = run_churn(cfg);
  EXPECT_EQ(r.files_lost, 0u);
  EXPECT_EQ(r.faults, 0);
}

TEST(Churn, FaultFractionGrowsWithCrashIntensity) {
  ChurnConfig base = quick_cfg();
  base.join_rate = 0.0;
  base.leave_rate = 0.0;
  base.duration = 40.0;
  base.b = 0;
  ChurnConfig calm = base;
  calm.fail_rate = 0.1;
  ChurnConfig storm = base;
  storm.fail_rate = 2.0;
  const ChurnResult a = run_churn(calm);
  const ChurnResult b = run_churn(storm);
  EXPECT_LE(a.files_lost, b.files_lost);
  EXPECT_LE(a.fault_fraction(), b.fault_fraction() + 1e-9);
}

TEST(Churn, MeanHopsWithinLogBound) {
  const ChurnResult r = run_churn(quick_cfg());
  EXPECT_GT(r.mean_hops, 0.0);
  EXPECT_LE(r.mean_hops, 7.0);  // m + 1 with m = 6
}

}  // namespace
}  // namespace lesslog::sim
