#include "lesslog/sim/load_solver.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "lesslog/util/rng.hpp"

namespace lesslog::sim {
namespace {

util::StatusWord all_live(int m) {
  util::StatusWord live(m);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) live.set_live(p);
  return live;
}

TEST(LoadSolver, SingleCopyAbsorbsEverything) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  CopyMap copies(16, 0);
  copies[4] = 1;
  const Workload w = uniform_workload(util::BorrowedView(live), 1600.0);
  const LoadReport r = solve_load(tree, copies, live, w);
  EXPECT_NEAR(r.served[4], 1600.0, 1e-9);
  EXPECT_EQ(r.max_served_pid, 4u);
  EXPECT_EQ(r.fault_rate, 0.0);
}

TEST(LoadSolver, ServedMassEqualsDemand) {
  const core::LookupTree tree(6, core::Pid{17});
  util::StatusWord live = all_live(6);
  util::Rng rng(5);
  for (std::uint32_t dead : rng.sample_indices(64, 20)) live.set_dead(dead);
  CopyMap copies(64, 0);
  const auto holder = core::insertion_target(tree, live);
  ASSERT_TRUE(holder.has_value());
  copies[holder->value()] = 1;
  const Workload w = uniform_workload(util::BorrowedView(live), 4400.0);
  const LoadReport r = solve_load(tree, copies, live, w);
  const double served_total =
      std::accumulate(r.served.begin(), r.served.end(), 0.0);
  EXPECT_NEAR(served_total + r.fault_rate, 4400.0, 1e-6);
  EXPECT_EQ(r.fault_rate, 0.0);
}

TEST(LoadSolver, ReplicaHalvesRootLoadUnderEvenDistribution) {
  // The Section 2 guarantee, measured: replicating to the children-list
  // head halves the root's served rate.
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  const Workload w = uniform_workload(util::BorrowedView(live), 1600.0);

  CopyMap copies(16, 0);
  copies[4] = 1;
  const double before = solve_load(tree, copies, live, w).served[4];
  copies[5] = 1;  // head of P(4)'s children list, subtree size 8
  const LoadReport after = solve_load(tree, copies, live, w);
  EXPECT_NEAR(after.served[4], before / 2.0, 1e-9);
  EXPECT_NEAR(after.served[5], before / 2.0, 1e-9);
}

TEST(LoadSolver, ForwardedCountsPassThroughTraffic) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  CopyMap copies(16, 0);
  copies[4] = 1;
  const Workload w = uniform_workload(util::BorrowedView(live), 1600.0);
  const LoadReport r = solve_load(tree, copies, live, w);
  // P(5) (vid 1110) forwards its own 100/s plus its 7 offspring's 700/s.
  EXPECT_NEAR(r.forwarded[5], 800.0, 1e-9);
  // A leaf of the tree (P(12), vid 0111) forwards only its own demand.
  EXPECT_NEAR(r.forwarded[12], 100.0, 1e-9);
  // The root forwards nothing.
  EXPECT_NEAR(r.forwarded[4], 0.0, 1e-9);
}

TEST(LoadSolver, MeanHopsMatchesHandComputation) {
  // m=2, root P(r): depths are 0,1,1,2 -> mean hops 1.0 under uniform.
  const core::LookupTree tree(2, core::Pid{0});
  const util::StatusWord live = all_live(2);
  CopyMap copies(4, 0);
  copies[0] = 1;
  const Workload w = uniform_workload(util::BorrowedView(live), 400.0);
  const LoadReport r = solve_load(tree, copies, live, w);
  EXPECT_NEAR(r.mean_hops, 1.0, 1e-9);
}

TEST(LoadSolver, NoCopiesEverythingFaults) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  const CopyMap copies(16, 0);
  const Workload w = uniform_workload(util::BorrowedView(live), 800.0);
  const LoadReport r = solve_load(tree, copies, live, w);
  EXPECT_NEAR(r.fault_rate, 800.0, 1e-9);
  EXPECT_EQ(r.max_served, 0.0);
}

TEST(LoadSolver, OverloadedListSortedByLoad) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  CopyMap copies(16, 0);
  copies[4] = 1;
  copies[5] = 1;
  const Workload w = uniform_workload(util::BorrowedView(live), 1600.0);
  const LoadReport r = solve_load(tree, copies, live, w);
  const std::vector<std::uint32_t> hot = r.overloaded(100.0);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_GE(r.served[hot[0]], r.served[hot[1]]);
  EXPECT_TRUE(r.overloaded(10000.0).empty());
}

TEST(LoadSolver, SubtreeViewAtBZeroMatchesTreeSolver) {
  const core::LookupTree tree(5, core::Pid{11});
  const core::SubtreeView view(tree, 0);
  util::StatusWord live = all_live(5);
  util::Rng rng(8);
  for (std::uint32_t dead : rng.sample_indices(32, 10)) live.set_dead(dead);
  CopyMap copies(32, 0);
  const auto holder = core::insertion_target(tree, live);
  ASSERT_TRUE(holder.has_value());
  copies[holder->value()] = 1;
  const Workload w = uniform_workload(util::BorrowedView(live), 2200.0);

  const LoadReport a = solve_load(tree, copies, live, w);
  const LoadReport b = solve_load(view, copies, live, w);
  for (std::uint32_t p = 0; p < 32; ++p) {
    EXPECT_NEAR(a.served[p], b.served[p], 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(a.mean_hops, b.mean_hops, 1e-9);
}

TEST(LoadSolver, FaultTolerantCopiesLocalizeLoad) {
  const core::LookupTree tree(4, core::Pid{4});
  const core::SubtreeView view(tree, 2);
  const util::StatusWord live = all_live(4);
  CopyMap copies(16, 0);
  for (const core::Pid t : view.insertion_targets(live)) {
    copies[t.value()] = 1;
  }
  const Workload w = uniform_workload(util::BorrowedView(live), 1600.0);
  const LoadReport r = solve_load(view, copies, live, w);
  // Four subtrees of 4 nodes each: each holder serves exactly 400/s.
  for (const core::Pid t : view.insertion_targets(live)) {
    EXPECT_NEAR(r.served[t.value()], 400.0, 1e-9);
  }
}

}  // namespace
}  // namespace lesslog::sim
