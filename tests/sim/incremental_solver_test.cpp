// Differential tests: IncrementalLoadSolver vs the from-scratch oracle.
//
// The incremental solver promises *bit-identical* reports — every double
// equal with ==, not EXPECT_NEAR — because it re-sums each affected
// accumulator over its contributor set in the oracle's ascending-PID
// order. These tests drive the pair across seeds, dead fractions, both
// workloads, b > 0, exotic (faulting / migrating) placements, the full
// experiment loop, and the removal pass.
#include "lesslog/sim/load_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/sim/workload.hpp"
#include "lesslog/util/rng.hpp"

namespace lesslog {
namespace {

// One solver cell built the same way the experiment harness builds its
// Setup: uniform dead set, insertion-target copies, workload over the
// live nodes.
struct Cell {
  Cell(int m, int b, double dead_fraction, sim::WorkloadKind wk,
       std::uint64_t seed)
      : rng(seed),
        live(make_live(m, dead_fraction, rng)),
        tree(m, core::Pid{static_cast<std::uint32_t>(
                    rng.bounded(util::space_size(m)))}),
        view(tree, b),
        has_copy(util::space_size(m), 0) {
    for (core::Pid holder : view.insertion_targets(live)) {
      has_copy[holder.value()] = 1;
    }
    demand = wk == sim::WorkloadKind::kUniform
                 ? sim::uniform_workload(util::BorrowedView(live), 6000.0)
                 : sim::locality_workload(util::BorrowedView(live), 6000.0, rng);
  }

  static util::StatusWord make_live(int m, double dead_fraction,
                                    util::Rng& rng) {
    util::StatusWord live(m, util::space_size(m));
    const auto dead = static_cast<std::uint32_t>(
        dead_fraction * static_cast<double>(util::space_size(m)));
    for (std::uint32_t p : rng.sample_indices(util::space_size(m), dead)) {
      live.set_dead(p);
    }
    return live;
  }

  // A deterministic arbitrary copyless live node, or nullopt when every
  // live node already holds a copy.
  std::optional<std::uint32_t> next_placement() {
    const std::uint32_t slots = live.capacity();
    for (std::uint32_t tries = 0; tries < 4u * slots; ++tries) {
      const auto p = static_cast<std::uint32_t>(rng.bounded(slots));
      if (live.is_live(p) && has_copy[p] == 0) return p;
    }
    for (std::uint32_t p = 0; p < slots; ++p) {
      if (live.is_live(p) && has_copy[p] == 0) return p;
    }
    return std::nullopt;
  }

  util::Rng rng;
  util::StatusWord live;
  core::LookupTree tree;
  core::SubtreeView view;
  sim::CopyMap has_copy;
  sim::Workload demand;
};

void expect_reports_equal(const sim::LoadReport& oracle,
                          sim::LoadReport incremental,
                          const std::string& where) {
  ASSERT_EQ(oracle.served.size(), incremental.served.size()) << where;
  for (std::size_t p = 0; p < oracle.served.size(); ++p) {
    ASSERT_EQ(oracle.served[p], incremental.served[p])
        << where << " served[" << p << "]";
    ASSERT_EQ(oracle.forwarded[p], incremental.forwarded[p])
        << where << " forwarded[" << p << "]";
  }
  EXPECT_EQ(oracle.fault_rate, incremental.fault_rate) << where;
  EXPECT_EQ(oracle.mean_hops, incremental.mean_hops) << where;
  EXPECT_EQ(oracle.max_served, incremental.max_served) << where;
  EXPECT_EQ(oracle.max_served_pid, incremental.max_served_pid) << where;
}

// reset() and a sequence of add_copy() calls must match a fresh
// solve_load after every single step, across the full parameter grid.
TEST(IncrementalSolver, StepwiseDifferentialAcrossGrid) {
  for (const int b : {0, 2}) {
    for (const double dead : {0.0, 0.2, 0.3}) {
      for (const sim::WorkloadKind wk :
           {sim::WorkloadKind::kUniform, sim::WorkloadKind::kLocality}) {
        for (const std::uint64_t seed : {1u, 5u, 9u}) {
          Cell cell(6, b, dead, wk, seed);
          const std::string where =
              "b=" + std::to_string(b) + " dead=" + std::to_string(dead) +
              " wk=" + std::to_string(static_cast<int>(wk)) +
              " seed=" + std::to_string(seed);
          sim::IncrementalLoadSolver solver(cell.view, cell.live,
                                            cell.demand);
          solver.reset(cell.has_copy);
          expect_reports_equal(
              sim::solve_load(cell.view, cell.has_copy, cell.live,
                              cell.demand),
              solver.report(), where + " reset");
          for (int step = 0; step < 12; ++step) {
            const std::optional<std::uint32_t> p = cell.next_placement();
            if (!p.has_value()) break;
            cell.has_copy[*p] = 1;
            solver.add_copy(*p);
            const sim::LoadReport oracle = sim::solve_load(
                cell.view, cell.has_copy, cell.live, cell.demand);
            expect_reports_equal(oracle, solver.report(),
                                 where + " step=" + std::to_string(step));
            // At b = 0 the plain-tree oracle must agree as well.
            if (b == 0) {
              expect_reports_equal(
                  sim::solve_load(cell.tree, cell.has_copy, cell.live,
                                  cell.demand),
                  solver.report(),
                  where + " tree-oracle step=" + std::to_string(step));
            }
          }
        }
      }
    }
  }
}

// The tree-routed constructor is the b = 0 view.
TEST(IncrementalSolver, TreeConstructorMatchesViewAtBZero) {
  Cell cell(7, 0, 0.2, sim::WorkloadKind::kUniform, 3);
  sim::IncrementalLoadSolver from_tree(cell.tree, cell.live, cell.demand);
  sim::IncrementalLoadSolver from_view(cell.view, cell.live, cell.demand);
  from_tree.reset(cell.has_copy);
  from_view.reset(cell.has_copy);
  expect_reports_equal(from_view.report(), from_tree.report(), "ctor");
}

// An empty copy map faults every request; a lone off-target copy in one
// subtree forces cross-subtree migrations at b > 0. Both are outside the
// structured update's model, so the solver must detect them and stay
// exact through full resets.
TEST(IncrementalSolver, ExoticPlacementsStayExact) {
  // All-fault: no copies anywhere.
  {
    Cell cell(6, 0, 0.2, sim::WorkloadKind::kUniform, 11);
    std::fill(cell.has_copy.begin(), cell.has_copy.end(), char{0});
    sim::IncrementalLoadSolver solver(cell.view, cell.live, cell.demand);
    solver.reset(cell.has_copy);
    EXPECT_FALSE(solver.fast_path());
    expect_reports_equal(
        sim::solve_load(cell.view, cell.has_copy, cell.live, cell.demand),
        solver.report(), "all-fault reset");
    for (int step = 0; step < 4; ++step) {
      const std::optional<std::uint32_t> p = cell.next_placement();
      ASSERT_TRUE(p.has_value());
      cell.has_copy[*p] = 1;
      solver.add_copy(*p);
      expect_reports_equal(
          sim::solve_load(cell.view, cell.has_copy, cell.live, cell.demand),
          solver.report(), "all-fault step=" + std::to_string(step));
    }
  }
  // Migration: b = 2 but only subtree 0 holds a copy, so three quarters
  // of the requesters fault in their own subtree and migrate.
  {
    Cell cell(6, 2, 0.1, sim::WorkloadKind::kLocality, 13);
    std::fill(cell.has_copy.begin(), cell.has_copy.end(), char{0});
    const std::optional<core::Pid> holder =
        cell.view.insertion_target(0, cell.live);
    ASSERT_TRUE(holder.has_value());
    cell.has_copy[holder->value()] = 1;
    sim::IncrementalLoadSolver solver(cell.view, cell.live, cell.demand);
    solver.reset(cell.has_copy);
    EXPECT_FALSE(solver.fast_path());
    expect_reports_equal(
        sim::solve_load(cell.view, cell.has_copy, cell.live, cell.demand),
        solver.report(), "migration reset");
    for (int step = 0; step < 4; ++step) {
      const std::optional<std::uint32_t> p = cell.next_placement();
      ASSERT_TRUE(p.has_value());
      cell.has_copy[*p] = 1;
      solver.add_copy(*p);
      expect_reports_equal(
          sim::solve_load(cell.view, cell.has_copy, cell.live, cell.demand),
          solver.report(), "migration step=" + std::to_string(step));
    }
  }
}

void expect_results_equal(const sim::ExperimentResult& oracle,
                          const sim::ExperimentResult& fast,
                          const std::string& where) {
  EXPECT_EQ(oracle.replicas_created, fast.replicas_created) << where;
  EXPECT_EQ(oracle.balanced, fast.balanced) << where;
  EXPECT_EQ(oracle.irreducible_overload, fast.irreducible_overload) << where;
  EXPECT_EQ(oracle.final_max_load, fast.final_max_load) << where;
  EXPECT_EQ(oracle.mean_hops, fast.mean_hops) << where;
  EXPECT_EQ(oracle.fault_rate, fast.fault_rate) << where;
  EXPECT_EQ(oracle.fairness, fast.fairness) << where;
  EXPECT_EQ(oracle.live_nodes, fast.live_nodes) << where;
}

// The whole replicate-until-balanced experiment, policy decisions and
// all, must be bit-identical between solver modes: identical reports
// imply identical overload picks, identical policy inputs, and an
// identical rng stream.
TEST(IncrementalSolver, FullExperimentBitIdentity) {
  const std::vector<std::pair<const char*, sim::PlacementFn>> policies = {
      {"lesslog", baseline::lesslog_policy()},
      {"logbased", baseline::logbased_policy()},
      {"random", baseline::random_policy()},
  };
  for (const auto& [pname, policy] : policies) {
    for (const int b : {0, 2}) {
      for (const double dead : {0.0, 0.3}) {
        for (const sim::WorkloadKind wk :
             {sim::WorkloadKind::kUniform, sim::WorkloadKind::kLocality}) {
          for (const std::uint64_t seed : {2u, 7u}) {
            sim::ExperimentConfig cfg;
            cfg.m = 7;
            cfg.b = b;
            cfg.dead_fraction = dead;
            cfg.total_rate = 6000.0;
            cfg.capacity = 100.0;
            cfg.workload = wk;
            cfg.seed = seed;
            cfg.solver = sim::SolverMode::kScratch;
            const sim::ExperimentResult oracle =
                sim::run_replication_experiment(cfg, policy);
            cfg.solver = sim::SolverMode::kIncremental;
            const sim::ExperimentResult fast =
                sim::run_replication_experiment(cfg, policy);
            expect_results_equal(
                oracle, fast,
                std::string(pname) + " b=" + std::to_string(b) +
                    " dead=" + std::to_string(dead) +
                    " wk=" + std::to_string(static_cast<int>(wk)) +
                    " seed=" + std::to_string(seed));
          }
        }
      }
    }
  }
}

TEST(IncrementalSolver, RemovalPassBitIdentity) {
  for (const double dead : {0.0, 0.2}) {
    sim::ExperimentConfig cfg;
    cfg.m = 7;
    cfg.dead_fraction = dead;
    cfg.total_rate = 8000.0;
    cfg.capacity = 100.0;
    cfg.seed = 4;
    cfg.solver = sim::SolverMode::kScratch;
    const sim::RemovalResult oracle =
        sim::run_with_removal(cfg, baseline::lesslog_policy(), 10.0);
    cfg.solver = sim::SolverMode::kIncremental;
    const sim::RemovalResult fast =
        sim::run_with_removal(cfg, baseline::lesslog_policy(), 10.0);
    const std::string where = "removal dead=" + std::to_string(dead);
    expect_results_equal(oracle.before, fast.before, where);
    EXPECT_EQ(oracle.replicas_after_removal, fast.replicas_after_removal)
        << where;
    EXPECT_EQ(oracle.still_balanced, fast.still_balanced) << where;
  }
}

// most_overloaded must agree with the sorted overloaded() list: same
// emptiness, and the same (maximal) served value at the front.
TEST(IncrementalSolver, MostOverloadedMatchesSortedList) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Cell cell(6, 0, 0.2, sim::WorkloadKind::kLocality, seed);
    const sim::LoadReport report =
        sim::solve_load(cell.view, cell.has_copy, cell.live, cell.demand);
    for (const double capacity : {0.0, 50.0, 100.0, 1e9}) {
      const std::vector<std::uint32_t> sorted = report.overloaded(capacity);
      const std::optional<std::uint32_t> top =
          report.most_overloaded(capacity);
      EXPECT_EQ(sorted.empty(), !top.has_value()) << "cap=" << capacity;
      if (top.has_value()) {
        EXPECT_EQ(report.served[sorted.front()], report.served[*top])
            << "cap=" << capacity;
      }
      // The solver's heap-based tracker picks the identical node.
      sim::IncrementalLoadSolver solver(cell.view, cell.live, cell.demand);
      solver.reset(cell.has_copy);
      EXPECT_EQ(solver.most_overloaded(capacity),
                report.most_overloaded(capacity))
          << "cap=" << capacity;
    }
  }
}

TEST(IncrementalSolver, SizeMismatchesThrow) {
  Cell cell(6, 0, 0.0, sim::WorkloadKind::kUniform, 1);
  sim::Workload short_demand;
  short_demand.rate.assign(10, 1.0);
  EXPECT_THROW(static_cast<void>(sim::solve_load(
                   cell.tree, cell.has_copy, cell.live, short_demand)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(sim::solve_load(
                   cell.view, cell.has_copy, cell.live, short_demand)),
               std::invalid_argument);
  EXPECT_THROW(sim::IncrementalLoadSolver(cell.view, cell.live, short_demand),
               std::invalid_argument);
  sim::IncrementalLoadSolver solver(cell.view, cell.live, cell.demand);
  const sim::CopyMap short_map(10, 0);
  EXPECT_THROW(solver.reset(short_map), std::invalid_argument);
}

}  // namespace
}  // namespace lesslog
