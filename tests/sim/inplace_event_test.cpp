#include "lesslog/sim/inplace_event.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>

namespace lesslog::sim {
namespace {

// Counts live instances so storage handling (inline vs heap, moves,
// emplace-over, destruction) can be observed from outside.
struct Tracked {
  int* live;
  int* calls;
  explicit Tracked(int* l, int* c) noexcept : live(l), calls(c) { ++*live; }
  Tracked(Tracked&& o) noexcept : live(o.live), calls(o.calls) { ++*live; }
  Tracked(const Tracked& o) noexcept : live(o.live), calls(o.calls) {
    ++*live;
  }
  ~Tracked() { --*live; }
  void operator()() const { ++*calls; }
};

TEST(InplaceEvent, SmallCallableStoredInline) {
  int hits = 0;
  InplaceEvent ev([&hits] { ++hits; });
  EXPECT_TRUE(ev.is_inline());
  EXPECT_TRUE(static_cast<bool>(ev));
  ev();
  ev();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceEvent, OversizedCallableFallsBackToHeap) {
  std::array<std::uint8_t, InplaceEvent::kInlineCapacity + 8> big{};
  big[0] = 7;
  int sum = 0;
  InplaceEvent ev([big, &sum] { sum += big[0]; });
  EXPECT_FALSE(ev.is_inline());
  ev();
  EXPECT_EQ(sum, 7);
}

TEST(InplaceEvent, ThrowingMoveCallableFallsBackToHeap) {
  struct ThrowingMove {
    ThrowingMove() = default;
    // NOLINTNEXTLINE(performance-noexcept-move-constructor)
    ThrowingMove(ThrowingMove&&) {}
    void operator()() const {}
  };
  static_assert(!InplaceEvent::stored_inline<ThrowingMove>());
  InplaceEvent ev(ThrowingMove{});
  EXPECT_FALSE(ev.is_inline());
}

TEST(InplaceEvent, MoveTransfersTheCallable) {
  int live = 0;
  int calls = 0;
  {
    InplaceEvent a{Tracked(&live, &calls)};
    InplaceEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    InplaceEvent c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
    c();
    EXPECT_EQ(calls, 2);
    EXPECT_GE(live, 1);
  }
  EXPECT_EQ(live, 0);  // every copy/move of the capture was destroyed
}

TEST(InplaceEvent, EmplaceDestroysThePreviousCallable) {
  int live_a = 0;
  int live_b = 0;
  int calls = 0;
  InplaceEvent ev{Tracked(&live_a, &calls)};
  ASSERT_GE(live_a, 1);
  ev.emplace(Tracked(&live_b, &calls));
  EXPECT_EQ(live_a, 0);
  EXPECT_GE(live_b, 1);
  ev();
  EXPECT_EQ(calls, 1);
}

TEST(InplaceEvent, HeapCallableIsFreedOnDestruction) {
  int live = 0;
  int calls = 0;
  struct Big {
    Tracked t;
    std::array<std::uint8_t, InplaceEvent::kInlineCapacity> pad{};
    void operator()() const { t(); }
  };
  static_assert(!InplaceEvent::stored_inline<Big>());
  {
    InplaceEvent ev{Big{Tracked(&live, &calls), {}}};
    EXPECT_FALSE(ev.is_inline());
    ev();
    EXPECT_EQ(calls, 1);
    EXPECT_GE(live, 1);
  }
  EXPECT_EQ(live, 0);
}

// The shape of the network's delivery event (object pointer + 43-byte
// wire image) must stay inside the inline budget — this is what keeps
// the steady-state wire path allocation-free.
TEST(InplaceEvent, DeliveryShapedCallableFitsInline) {
  struct DeliveryShaped {
    void* net;
    std::array<std::uint8_t, 43> wire;
    void operator()() const {}
  };
  static_assert(InplaceEvent::stored_inline<DeliveryShaped>());
  InplaceEvent ev(DeliveryShaped{nullptr, {}});
  EXPECT_TRUE(ev.is_inline());
}

}  // namespace
}  // namespace lesslog::sim
