#include "lesslog/sim/analysis.hpp"

#include <gtest/gtest.h>

#include "lesslog/baseline/policy.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/util/rng.hpp"
#include "lesslog/util/stats.hpp"

namespace lesslog::sim {
namespace {

util::StatusWord all_live(int m) {
  return util::StatusWord(m, util::space_size(m));
}

TEST(Gini, ReferenceValues) {
  EXPECT_DOUBLE_EQ(util::gini({}), 0.0);
  EXPECT_DOUBLE_EQ(util::gini({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(util::gini({3.0, 3.0, 3.0}), 0.0);
  // One of two holds everything: gini = 1/2 for n = 2.
  EXPECT_NEAR(util::gini({0.0, 10.0}), 0.5, 1e-12);
  // All-zero input is defined as perfectly equal.
  EXPECT_DOUBLE_EQ(util::gini({0.0, 0.0}), 0.0);
}

TEST(Analysis, SingleCopyOwnsWholeSpace) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  CopyMap copies(16, 0);
  copies[4] = 1;
  const PlacementAnalysis a = analyze_placement(tree, copies, live);
  EXPECT_EQ(a.copies, 1u);
  ASSERT_EQ(a.catchments.size(), 1u);
  EXPECT_EQ(a.catchments[0].first, 4u);
  EXPECT_EQ(a.catchments[0].second, 16u);
  EXPECT_DOUBLE_EQ(a.max_catchment_fraction, 1.0);
  EXPECT_EQ(a.uncovered, 0u);
  EXPECT_EQ(a.max_copy_depth, 0);  // the copy sits at the tree root
}

TEST(Analysis, HeadChildSplitsCatchmentInHalf) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  CopyMap copies(16, 0);
  copies[4] = 1;
  copies[5] = 1;  // children-list head, subtree of 8
  const PlacementAnalysis a = analyze_placement(tree, copies, live);
  EXPECT_EQ(a.copies, 2u);
  for (const auto& [pid, size] : a.catchments) {
    EXPECT_EQ(size, 8u);
  }
  EXPECT_DOUBLE_EQ(a.catchment_gini, 0.0);
  EXPECT_DOUBLE_EQ(a.max_catchment_fraction, 0.5);
}

TEST(Analysis, LessLogPlacementsKeepCatchmentsBalanced) {
  // Grow a LessLog placement and a random placement of equal size; the
  // LessLog one must have materially lower catchment inequality — this is
  // *why* it needs fewer replicas in the paper's figures.
  const int m = 8;
  const core::LookupTree tree(m, core::Pid{200});
  const util::StatusWord live = all_live(m);
  util::Rng rng(3);

  CopyMap lesslog_copies(256, 0);
  lesslog_copies[200] = 1;
  for (int step = 0; step < 15; ++step) {
    // Replicate from the copy with the largest catchment (the overloaded
    // one), as the experiment loop does.
    const PlacementAnalysis a =
        analyze_placement(tree, lesslog_copies, live);
    std::uint32_t worst = a.catchments.front().first;
    std::uint32_t worst_size = 0;
    for (const auto& [pid, size] : a.catchments) {
      if (size > worst_size) {
        worst = pid;
        worst_size = size;
      }
    }
    const auto placement = core::replicate_target(
        tree, core::Pid{worst}, live,
        [&](core::Pid p) { return lesslog_copies[p.value()] != 0; }, rng);
    ASSERT_TRUE(placement.has_value());
    lesslog_copies[placement->target.value()] = 1;
  }

  CopyMap random_copies(256, 0);
  random_copies[200] = 1;
  int placed = 0;
  while (placed < 15) {
    const auto p = static_cast<std::uint32_t>(rng.bounded(256));
    if (random_copies[p] == 0) {
      random_copies[p] = 1;
      ++placed;
    }
  }

  const PlacementAnalysis ll = analyze_placement(tree, lesslog_copies, live);
  const PlacementAnalysis rd = analyze_placement(tree, random_copies, live);
  EXPECT_EQ(ll.copies, rd.copies);
  EXPECT_LT(ll.catchment_gini, rd.catchment_gini);
  EXPECT_LT(ll.max_catchment_fraction, rd.max_catchment_fraction);
}

TEST(Analysis, UncoveredCountsUnreachableRequesters) {
  const core::LookupTree tree(4, core::Pid{4});
  const util::StatusWord live = all_live(4);
  const CopyMap copies(16, 0);  // no copies at all
  const PlacementAnalysis a = analyze_placement(tree, copies, live);
  EXPECT_EQ(a.copies, 0u);
  EXPECT_EQ(a.uncovered, 16u);
}

TEST(Analysis, DeadHoldersAreIgnored) {
  const core::LookupTree tree(4, core::Pid{4});
  util::StatusWord live = all_live(4);
  live.set_dead(5);
  CopyMap copies(16, 0);
  copies[4] = 1;
  copies[5] = 1;  // dead holder: invisible
  const PlacementAnalysis a = analyze_placement(tree, copies, live);
  EXPECT_EQ(a.copies, 1u);
  EXPECT_EQ(a.catchments[0].first, 4u);
}

TEST(Analysis, MeanHopsDropsAsPlacementGrows) {
  const int m = 7;
  const core::LookupTree tree(m, core::Pid{50});
  const util::StatusWord live = all_live(m);
  util::Rng rng(5);
  CopyMap copies(128, 0);
  copies[50] = 1;
  const double before = analyze_placement(tree, copies, live).mean_hops;
  for (int i = 0; i < 6; ++i) {
    const auto placement = core::replicate_target(
        tree, core::Pid{50}, live,
        [&](core::Pid p) { return copies[p.value()] != 0; }, rng);
    copies[placement->target.value()] = 1;
  }
  const double after = analyze_placement(tree, copies, live).mean_hops;
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace lesslog::sim
