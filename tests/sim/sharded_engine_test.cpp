#include "lesslog/sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace lesslog::sim {
namespace {

TEST(ShardedEngine, SingleShardKeepsTheGroupSeed) {
  // The S = 1 byte-identity guarantee starts here: the one shard's RNG
  // stream must be the serial engine's stream.
  EXPECT_EQ(ShardedEngine::shard_seed(42, 0, 1), 42u);
  EXPECT_EQ(ShardedEngine::shard_seed(0, 0, 1), 0u);
}

TEST(ShardedEngine, MultiShardSeedsAreDistinctAndStable) {
  std::vector<std::uint64_t> seen;
  for (std::size_t s = 0; s < 8; ++s) {
    const std::uint64_t derived = ShardedEngine::shard_seed(42, s, 8);
    EXPECT_EQ(derived, ShardedEngine::shard_seed(42, s, 8));
    for (const std::uint64_t prior : seen) EXPECT_NE(derived, prior);
    seen.push_back(derived);
  }
}

TEST(ShardedEngine, RejectsZeroShardsAndZeroLookahead) {
  EXPECT_THROW(ShardedEngine(0, 1, 0.01), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(2, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(2, 1, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(ShardedEngine(1, 1, 0.0));  // serial needs no lookahead
}

TEST(ShardedEngine, SingleShardRunsLikeTheSerialEngine) {
  Engine serial(7);
  std::vector<double> serial_times;
  for (const double at : {3.0, 1.0, 2.0}) {
    serial.at(at, [&serial_times, &serial] {
      serial_times.push_back(serial.now());
    });
  }
  serial.queue().run_all();

  ShardedEngine group(1, 7, 0.0);
  std::vector<double> sharded_times;
  Engine& e = group.shard(0);
  for (const double at : {3.0, 1.0, 2.0}) {
    e.at(at, [&sharded_times, &e] { sharded_times.push_back(e.now()); });
  }
  EXPECT_EQ(group.run_all_windows(), 3);
  EXPECT_EQ(sharded_times, serial_times);
  EXPECT_EQ(e.now(), serial.now());
}

// Two shards ping-pong through toy mailboxes: each event on shard s
// posts one for the other shard at now + latency, for `rounds` rounds.
// Exercises the full window loop: windows never execute an event early,
// the drain hook integrates mailboxes, and the loop terminates.
TEST(ShardedEngine, TwoShardPingPongRespectsWindows) {
  constexpr double kLatency = 0.010;
  constexpr int kRounds = 40;
  ShardedEngine group(2, 99, kLatency);

  struct Mailbox {
    std::vector<double> at;  // delivery times posted for this shard
  };
  Mailbox boxes[2];
  std::vector<std::pair<std::size_t, double>> executed;
  int remaining = kRounds;

  // The event body: record, and post to the peer shard's mailbox.
  std::function<void(std::size_t)> fire = [&](std::size_t s) {
    executed.emplace_back(s, group.shard(s).now());
    if (remaining-- > 0) {
      boxes[1 - s].at.push_back(group.shard(s).now() + kLatency);
    }
  };

  group.set_drain([&](std::size_t s) {
    for (const double at : boxes[s].at) {
      group.shard(s).at(at, [&fire, s] { fire(s); });
    }
    boxes[s].at.clear();
  });

  group.shard(0).at(0.0, [&fire] { fire(0); });
  const std::int64_t total = group.run_all_windows();
  EXPECT_EQ(total, kRounds + 1);
  ASSERT_EQ(executed.size(), static_cast<std::size_t>(kRounds + 1));
  // Alternating shards, each hop exactly one latency later.
  for (std::size_t i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(executed[i].first, i % 2);
    EXPECT_DOUBLE_EQ(executed[i].second,
                     static_cast<double>(i) * kLatency);
  }
  // Clocks agree at the end (control-plane ops after a settle rely on
  // this).
  EXPECT_EQ(group.shard(0).now(), group.shard(1).now());
}

TEST(ShardedEngine, PairLookaheadValidatesShapeAndPositivity) {
  ShardedEngine group(2, 1, 0.010);
  EXPECT_THROW(group.set_pair_lookahead({0.01, 0.01}),
               std::invalid_argument);  // not S x S
  EXPECT_THROW(group.set_pair_lookahead({0.0, 0.0, 0.01, 0.0}),
               std::invalid_argument);  // zero off-diagonal
  EXPECT_NO_THROW(group.set_pair_lookahead({0.0, 0.02, 0.03, 0.0}));
  EXPECT_DOUBLE_EQ(group.pair_lookahead(0, 1), 0.02);
  EXPECT_DOUBLE_EQ(group.pair_lookahead(1, 0), 0.03);
  // The scalar floor is the minimum off-diagonal entry.
  EXPECT_DOUBLE_EQ(group.lookahead(), 0.02);
}

TEST(ShardedEngine, UniformPairMatrixMatchesScalarLookahead) {
  // A uniform matrix must degenerate to the legacy scalar schedule: the
  // ping-pong executes the same events at the same times either way.
  constexpr double kLatency = 0.010;
  const auto run_pingpong = [&](bool install_matrix) {
    ShardedEngine group(2, 99, kLatency);
    if (install_matrix) {
      group.set_pair_lookahead({0.0, kLatency, kLatency, 0.0});
    }
    std::vector<double> box[2];
    std::vector<std::pair<std::size_t, double>> executed;
    int remaining = 20;
    std::function<void(std::size_t)> fire = [&](std::size_t s) {
      executed.emplace_back(s, group.shard(s).now());
      if (remaining-- > 0) {
        box[1 - s].push_back(group.shard(s).now() + kLatency);
      }
    };
    group.set_drain([&](std::size_t s) {
      for (const double at : box[s]) {
        group.shard(s).at(at, [&fire, s] { fire(s); });
      }
      box[s].clear();
    });
    group.shard(0).at(0.0, [&fire] { fire(0); });
    group.run_all_windows();
    return executed;
  };
  EXPECT_EQ(run_pingpong(false), run_pingpong(true));
}

TEST(ShardedEngine, AsymmetricPairBoundsStillDeliverInOrder) {
  // Shard 0 -> 1 is slow (wide window), 1 -> 0 fast (narrow): the
  // adaptive per-pair window must respect the *narrow* bound on the way
  // back, never executing shard 0's local event before the reply lands.
  // Each shard records only its own execution times (shard workers run
  // concurrently inside a window; per-shard order is what is pinned).
  ShardedEngine group(2, 3, 0.010);
  group.set_pair_lookahead({0.0, 0.500, 0.010, 0.0});
  std::vector<double> order[2];
  std::vector<double> box[2];
  group.set_drain([&](std::size_t s) {
    for (const double at : box[s]) {
      if (s == 1) {
        group.shard(1).at(at, [&] {
          order[1].push_back(group.shard(1).now());
          box[0].push_back(group.shard(1).now() + 0.010);
        });
      } else {
        group.shard(0).at(at, [&] {
          order[0].push_back(group.shard(0).now());
        });
      }
    }
    box[s].clear();
  });
  group.shard(0).at(0.0, [&] {
    order[0].push_back(group.shard(0).now());
    box[1].push_back(group.shard(0).now() + 0.500);
  });
  // A shard-0 event between the request's departure and the reply's
  // arrival: must execute at its own time, before the reply.
  group.shard(0).at(0.505, [&] {
    order[0].push_back(group.shard(0).now());
  });
  group.run_all_windows();
  EXPECT_EQ(order[0], (std::vector<double>{0.0, 0.505, 0.510}));
  EXPECT_EQ(order[1], (std::vector<double>{0.500}));
}

TEST(ShardedEngine, RunUntilWindowsAlignsEveryClockExactly) {
  ShardedEngine group(4, 11, 0.010);
  int fired = 0;
  group.shard(0).at(0.5, [&fired] { ++fired; });
  group.shard(2).at(1.5, [&fired] { ++fired; });
  group.shard(3).at(2.0, [&fired] { ++fired; });  // AT the cut: stays

  EXPECT_EQ(group.run_until_windows(2.0), 2);
  EXPECT_EQ(fired, 2);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(group.shard(s).now(), 2.0) << "shard " << s;
  }
  // The event at the cut runs in the next segment, never twice.
  EXPECT_EQ(group.run_until_windows(3.0), 1);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(group.run_until_windows(3.0), 0);
}

TEST(ShardedEngine, WindowNeverExecutesAnEventBeforeItsSafeTime) {
  // Shard 1 has a local event far in the future; shard 0's early events
  // must not drag shard 1's clock past work mailboxed for it.
  ShardedEngine group(2, 5, 0.010);
  std::vector<double> shard1_times;
  bool posted = false;

  group.set_drain([&](std::size_t s) {
    if (s == 1 && posted) {
      posted = false;
      group.shard(1).at(0.015, [&shard1_times, &group] {
        shard1_times.push_back(group.shard(1).now());
      });
    }
  });
  group.shard(1).at(1.0, [&shard1_times, &group] {
    shard1_times.push_back(group.shard(1).now());
  });
  group.shard(0).at(0.005, [&posted] { posted = true; });

  group.run_all_windows();
  // The mailboxed 0.015 event must run before the local 1.0 event even
  // though it was posted after construction.
  ASSERT_EQ(shard1_times.size(), 2u);
  EXPECT_DOUBLE_EQ(shard1_times[0], 0.015);
  EXPECT_DOUBLE_EQ(shard1_times[1], 1.0);
}

}  // namespace
}  // namespace lesslog::sim
