#include "lesslog/sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lesslog::sim {
namespace {

FigureData sample_figure() {
  FigureData fig("Figure X", "rate", {1.0, 2.0, 3.0});
  fig.add_series("lesslog", {10.0, 20.0, 30.0});
  fig.add_series("random", {15.0, 32.0, 50.0});
  return fig;
}

TEST(FigureData, StoresSeries) {
  const FigureData fig = sample_figure();
  EXPECT_EQ(fig.series_count(), 2u);
  EXPECT_EQ(fig.series(0).name, "lesslog");
  ASSERT_NE(fig.find("random"), nullptr);
  EXPECT_EQ(fig.find("random")->values[2], 50.0);
  EXPECT_EQ(fig.find("missing"), nullptr);
}

TEST(FigureData, TableHasRowPerX) {
  const util::Table t = sample_figure().to_table();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.width(), 3u);  // x + 2 series
  const std::string out = t.render();
  EXPECT_NE(out.find("lesslog"), std::string::npos);
  EXPECT_NE(out.find("random"), std::string::npos);
}

TEST(FigureData, DominatesDetectsOrdering) {
  const FigureData fig = sample_figure();
  EXPECT_TRUE(fig.dominates("lesslog", "random"));
  EXPECT_FALSE(fig.dominates("random", "lesslog"));
}

TEST(FigureData, DominatesRespectsSlack) {
  FigureData fig("f", "x", {1.0, 2.0});
  fig.add_series("a", {10.0, 11.0});
  fig.add_series("b", {10.0, 10.0});
  EXPECT_FALSE(fig.dominates("a", "b"));
  EXPECT_TRUE(fig.dominates("a", "b", 0.1));  // 11 <= 10 * 1.1
}

TEST(FigureData, RoughlyIncreasing) {
  FigureData fig("f", "x", {1.0, 2.0, 3.0});
  fig.add_series("up", {1.0, 2.0, 3.0});
  fig.add_series("dip", {1.0, 0.5, 3.0});
  EXPECT_TRUE(fig.roughly_increasing("up"));
  EXPECT_FALSE(fig.roughly_increasing("dip"));
  EXPECT_TRUE(fig.roughly_increasing("dip", 0.6));
}

TEST(FigureData, AsciiChartMentionsEverySeries) {
  const std::string chart = sample_figure().ascii_chart();
  EXPECT_NE(chart.find("lesslog"), std::string::npos);
  EXPECT_NE(chart.find("random"), std::string::npos);
  EXPECT_NE(chart.find("Figure X"), std::string::npos);
}

TEST(FigureData, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lesslog_fig_test.csv";
  sample_figure().write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "rate,lesslog,random");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "1,10,15");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lesslog::sim
