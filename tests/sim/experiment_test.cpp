#include "lesslog/sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lesslog/baseline/policy.hpp"

namespace lesslog::sim {
namespace {

ExperimentConfig small_cfg() {
  ExperimentConfig cfg;
  cfg.m = 6;  // 64 nodes keeps the unit test fast
  cfg.total_rate = 640.0;
  cfg.capacity = 20.0;
  cfg.seed = 11;
  return cfg;
}

TEST(Experiment, LessLogBalancesUniformLoad) {
  const ExperimentResult r = run_replication_experiment(
      small_cfg(), baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_LE(r.final_max_load, 20.0);
  EXPECT_GT(r.replicas_created, 0);
  EXPECT_EQ(r.fault_rate, 0.0);
  EXPECT_EQ(r.live_nodes, 64u);
}

TEST(Experiment, NoReplicationNeededWhenUnderCapacity) {
  ExperimentConfig cfg = small_cfg();
  cfg.total_rate = 10.0;  // under one node's capacity
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.replicas_created, 0);
}

TEST(Experiment, DeterministicGivenSeed) {
  const ExperimentResult a = run_replication_experiment(
      small_cfg(), baseline::lesslog_policy());
  const ExperimentResult b = run_replication_experiment(
      small_cfg(), baseline::lesslog_policy());
  EXPECT_EQ(a.replicas_created, b.replicas_created);
  EXPECT_EQ(a.final_max_load, b.final_max_load);
}

TEST(Experiment, DeadNodesStillBalance) {
  ExperimentConfig cfg = small_cfg();
  cfg.dead_fraction = 0.3;
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.live_nodes, 64u - 19u);  // lround(0.3 * 64) = 19 dead
}

TEST(Experiment, LocalityWorkloadBalances) {
  ExperimentConfig cfg = small_cfg();
  cfg.workload = WorkloadKind::kLocality;
  // 13 hot nodes receive 0.8 * 640 / 13 ≈ 39.4 req/s of local client
  // demand each; capacity must exceed that for balance to be reachable.
  cfg.capacity = 45.0;
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_GT(r.replicas_created, 0);
}

TEST(Experiment, RandomPolicyNeedsMoreReplicasThanLessLog) {
  // The paper's headline comparison at unit-test scale. Random placement is
  // noisy, so compare against the mean of a few seeds.
  ExperimentConfig cfg = small_cfg();
  double lesslog_total = 0;
  double random_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    lesslog_total += run_replication_experiment(
                         cfg, baseline::lesslog_policy())
                         .replicas_created;
    random_total +=
        run_replication_experiment(cfg, baseline::random_policy())
            .replicas_created;
  }
  EXPECT_LT(lesslog_total, random_total);
}

TEST(Experiment, LogBasedIsAtMostSlightlyBetterThanLessLog) {
  ExperimentConfig cfg = small_cfg();
  double lesslog_total = 0;
  double logbased_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    lesslog_total += run_replication_experiment(
                         cfg, baseline::lesslog_policy())
                         .replicas_created;
    logbased_total += run_replication_experiment(
                          cfg, baseline::logbased_policy())
                          .replicas_created;
  }
  EXPECT_LE(logbased_total, lesslog_total * 1.2 + 5.0);
}

TEST(Experiment, FairnessImprovesTowardBalance) {
  ExperimentConfig cfg = small_cfg();
  cfg.total_rate = 1280.0;
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_GT(r.fairness, 0.2);
}

TEST(Experiment, MaxReplicaCapStopsRunawayLoops) {
  ExperimentConfig cfg = small_cfg();
  cfg.max_replicas = 1;
  cfg.total_rate = 6400.0;
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_FALSE(r.balanced);
  EXPECT_EQ(r.replicas_created, 1);
}

TEST(Experiment, FaultTolerantVariantBalances) {
  ExperimentConfig cfg = small_cfg();
  cfg.b = 2;
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
}

TEST(RemovalPass, NeverIncreasesReplicas) {
  ExperimentConfig cfg = small_cfg();
  const RemovalResult r =
      run_with_removal(cfg, baseline::lesslog_policy(), 1.0);
  EXPECT_TRUE(r.before.balanced);
  EXPECT_LE(r.replicas_after_removal, r.before.replicas_created);
  EXPECT_GE(r.replicas_after_removal, 0);
}

TEST(RemovalPass, ZeroThresholdKeepsEverythingBalanced) {
  ExperimentConfig cfg = small_cfg();
  const RemovalResult r =
      run_with_removal(cfg, baseline::lesslog_policy(), 0.0);
  EXPECT_EQ(r.replicas_after_removal, r.before.replicas_created);
  EXPECT_TRUE(r.still_balanced);
}

class ExperimentRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExperimentRateSweep, ReplicaCountScalesWithLoad) {
  ExperimentConfig cfg = small_cfg();
  cfg.total_rate = GetParam();
  const ExperimentResult r =
      run_replication_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  // At least ceil(rate/capacity) copies must exist; replicas = copies - 1.
  const int min_copies =
      static_cast<int>(std::ceil(GetParam() / cfg.capacity));
  EXPECT_GE(r.replicas_created + 1, min_copies);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExperimentRateSweep,
                         ::testing::Values(100.0, 320.0, 640.0, 960.0,
                                           1200.0));

}  // namespace
}  // namespace lesslog::sim
