#include "lesslog/sim/catalog.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "lesslog/baseline/policy.hpp"

namespace lesslog::sim {
namespace {

CatalogConfig small_cfg() {
  CatalogConfig cfg;
  cfg.m = 6;
  cfg.files = 16;
  cfg.zipf_s = 0.8;
  cfg.total_rate = 800.0;
  cfg.capacity = 40.0;
  cfg.seed = 5;
  return cfg;
}

TEST(Catalog, BalancesSkewedCatalog) {
  const CatalogResult r =
      run_catalog_experiment(small_cfg(), baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_LE(r.final_max_load, 40.0);
  EXPECT_EQ(r.live_nodes, 64u);
  EXPECT_EQ(r.replicas_by_rank.size(), 16u);
}

TEST(Catalog, ReplicaAccountingConsistent) {
  const CatalogConfig cfg = small_cfg();
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  const int by_rank = std::accumulate(r.replicas_by_rank.begin(),
                                      r.replicas_by_rank.end(), 0);
  EXPECT_EQ(by_rank, r.replicas_created);
  // copies = one inserted per file (b=0) + replicas.
  EXPECT_EQ(r.total_copies,
            static_cast<std::int64_t>(cfg.files) + r.replicas_created);
}

TEST(Catalog, DeterministicPerSeed) {
  const CatalogResult a =
      run_catalog_experiment(small_cfg(), baseline::lesslog_policy());
  const CatalogResult b =
      run_catalog_experiment(small_cfg(), baseline::lesslog_policy());
  EXPECT_EQ(a.replicas_created, b.replicas_created);
  EXPECT_EQ(a.replicas_by_rank, b.replicas_by_rank);
}

TEST(Catalog, HotterFilesGetMoreReplicas) {
  CatalogConfig cfg = small_cfg();
  cfg.zipf_s = 1.2;
  cfg.total_rate = 1600.0;
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  ASSERT_TRUE(r.balanced);
  // The hottest quartile must hold strictly more replicas than the coldest.
  int head = 0;
  int tail = 0;
  for (std::size_t i = 0; i < 4; ++i) head += r.replicas_by_rank[i];
  for (std::size_t i = 12; i < 16; ++i) tail += r.replicas_by_rank[i];
  EXPECT_GT(head, tail);
}

TEST(Catalog, UniformCatalogSpreadsReplicas) {
  CatalogConfig cfg = small_cfg();
  cfg.zipf_s = 0.0;
  cfg.total_rate = 1600.0;
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  ASSERT_TRUE(r.balanced);
  // No file should dominate: the max per-file count stays near the mean.
  const int max_rank = *std::max_element(r.replicas_by_rank.begin(),
                                         r.replicas_by_rank.end());
  const double mean =
      static_cast<double>(r.replicas_created) / cfg.files;
  EXPECT_LE(max_rank, mean * 4.0 + 3.0);
}

TEST(Catalog, UnderCapacityNeedsNoReplicas) {
  CatalogConfig cfg = small_cfg();
  cfg.total_rate = 30.0;
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.replicas_created, 0);
}

TEST(Catalog, DeadNodesStillBalance) {
  CatalogConfig cfg = small_cfg();
  cfg.dead_fraction = 0.25;
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.live_nodes, 48u);
}

TEST(Catalog, FaultTolerantCatalogBalances) {
  CatalogConfig cfg = small_cfg();
  cfg.b = 2;
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
  // b=2: four inserted copies per file.
  EXPECT_GE(r.total_copies,
            static_cast<std::int64_t>(cfg.files) * 4);
}

TEST(Catalog, LocalityWorkload) {
  CatalogConfig cfg = small_cfg();
  cfg.workload = WorkloadKind::kLocality;
  cfg.capacity = 60.0;  // hot nodes' own demand needs headroom
  const CatalogResult r =
      run_catalog_experiment(cfg, baseline::lesslog_policy());
  EXPECT_TRUE(r.balanced);
}

}  // namespace
}  // namespace lesslog::sim
