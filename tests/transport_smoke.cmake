# transport_smoke: launch two `lesslog_cli serve` processes plus a
# `lesslog_loadgen` on loopback — real sockets, three OS processes — and
# gate the wire contract:
#   * the loadgen exits 0 (every insert acked, every GET answered ok),
#   * zero decode drops on every process (every socket byte decoded),
#   * zero write-queue overflow drops (loopback never backpressures at
#     this rate).
# Invoked via `ctest -R transport_smoke`; works under the asan preset
# unchanged (the binaries carry the sanitizer).
if(NOT CLI OR NOT LOADGEN OR NOT WORK_DIR)
  message(FATAL_ERROR "transport_smoke needs -DCLI, -DLOADGEN, -DWORK_DIR")
endif()

set(HOSTS "serve:0-31:127.0.0.1:46151;serve:32-62:127.0.0.1:46152;client:63:127.0.0.1:46153")
set(S0 "${WORK_DIR}/transport_smoke_s0.txt")
set(S1 "${WORK_DIR}/transport_smoke_s1.txt")
set(LG "${WORK_DIR}/transport_smoke_lg.txt")
file(REMOVE "${S0}" "${S1}" "${LG}")

# The three COMMANDs of one execute_process run concurrently (they form
# a stdout pipeline; none reads stdin). The serves self-exit via
# --duration; the loadgen's built-in reconnect backoff absorbs any
# startup ordering. Ordered so every process's stdout reader outlives
# it (exit order: loadgen ~5s, serve0 at 10s, serve1 at 12s) — a final
# stats line written into an exited reader would be a SIGPIPE death.
execute_process(
  COMMAND ${LOADGEN} --hosts "${HOSTS}" --self 2 --m 6 --b 2
          --files 24 --rate 200 --duration 1.5 --stats-out ${LG}
  COMMAND ${CLI} serve --hosts "${HOSTS}" --self 0 --m 6 --b 2
          --duration 10 --stats-out ${S0}
  COMMAND ${CLI} serve --hosts "${HOSTS}" --self 1 --m 6 --b 2
          --duration 12 --stats-out ${S1}
  RESULTS_VARIABLE codes
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  TIMEOUT 60)

list(GET codes 0 rc_lg)
list(GET codes 1 rc_s0)
list(GET codes 2 rc_s1)
foreach(pair "serve0:${rc_s0}" "serve1:${rc_s1}" "loadgen:${rc_lg}")
  string(REPLACE ":" ";" pair_list "${pair}")
  list(GET pair_list 0 who)
  list(GET pair_list 1 rc)
  if(NOT rc STREQUAL "0")
    message(FATAL_ERROR
        "transport_smoke: ${who} exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
endforeach()

foreach(stats "${S0}" "${S1}" "${LG}")
  if(NOT EXISTS "${stats}")
    message(FATAL_ERROR "transport_smoke: missing stats file ${stats}")
  endif()
  file(READ "${stats}" content)
  if(NOT content MATCHES "decode_drops=0 ")
    message(FATAL_ERROR
        "transport_smoke: decode drops in ${stats}:\n${content}")
  endif()
  if(NOT content MATCHES "overflow_dropped=0 ")
    message(FATAL_ERROR
        "transport_smoke: write-queue overflow in ${stats}:\n${content}")
  endif()
endforeach()

file(READ "${LG}" lg_content)
if(NOT lg_content MATCHES "gets_failed=0 ")
  message(FATAL_ERROR "transport_smoke: failed GETs:\n${lg_content}")
endif()

message(STATUS "transport_smoke: all GETs ok, zero decode drops -> PASS")
