#include "lesslog/util/crc32.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lesslog::util {
namespace {

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
  EXPECT_EQ(crc32("hello world"), 0x0D4A1185u);
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const std::uint32_t base = crc32(std::span<const std::uint8_t>(data));
  for (std::size_t i = 0; i < data.size(); i += 7) {
    std::vector<std::uint8_t> flipped = data;
    flipped[i] ^= 0x01;
    EXPECT_NE(crc32(std::span<const std::uint8_t>(flipped)), base)
        << "flip at " << i;
  }
}

TEST(Crc32, ByteSpanMatchesStringOverload) {
  const std::string s = "LessLog";
  const std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(s), crc32(std::span<const std::uint8_t>(bytes)));
}

}  // namespace
}  // namespace lesslog::util
