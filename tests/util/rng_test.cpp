#include "lesslog/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace lesslog::util {
namespace {

TEST(SplitMix64, ReferenceVector) {
  // Reference outputs for seed 1234567 from the public-domain SplitMix64
  // implementation (Vigna).
  std::uint64_t state = 1234567;
  EXPECT_EQ(splitmix64(state), 6457827717110365317ULL);
  EXPECT_EQ(splitmix64(state), 3203168211198807973ULL);
  EXPECT_EQ(splitmix64(state), 9817491932198370423ULL);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(20);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 20000;
  int above = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    if (x > 10.0) ++above;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  // Symmetry around the mean.
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng rng(31);
  for (std::uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    const std::vector<std::uint32_t> s = rng.sample_indices(100, k);
    ASSERT_EQ(s.size(), k);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<std::uint32_t>(s.begin(), s.end()).size(), k);
    for (std::uint32_t idx : s) EXPECT_LT(idx, 100u);
  }
}

TEST(Rng, SampleAllIsIdentitySet) {
  Rng rng(37);
  const std::vector<std::uint32_t> s = rng.sample_indices(16, 16);
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleIsRoughlyUniform) {
  Rng rng(41);
  std::vector<int> hits(20, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (std::uint32_t idx : rng.sample_indices(20, 5)) {
      ++hits[idx];
    }
  }
  // Each index expected trials * 5/20 = 1000 times; allow wide slack.
  for (int h : hits) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  Rng c0_again = parent.split(0);
  EXPECT_EQ(c0(), c0_again());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c0() == c1()) ++same;
  }
  EXPECT_LT(same, 2);
}

class RngStatSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStatSweep, BoundedIsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr std::uint64_t kBuckets = 8;
  std::vector<int> hits(kBuckets, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) ++hits[rng.bounded(kBuckets)];
  for (int h : hits) {
    EXPECT_GT(h, n / static_cast<int>(kBuckets) - 250);
    EXPECT_LT(h, n / static_cast<int>(kBuckets) + 250);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngStatSweep,
                         ::testing::Values(1, 2, 3, 1000, 0xDEADBEEF));

}  // namespace
}  // namespace lesslog::util
