#include "lesslog/util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace lesslog::util {
namespace {

TEST(Histogram, BucketsValuesByRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // bucket 0
  h.add(9.99);   // bucket 0
  h.add(10.0);   // bucket 1
  h.add(25.0);   // bucket 2
  h.add(49.0);   // bucket 4
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 0);
  EXPECT_EQ(h.bucket(4), 1);
  EXPECT_EQ(h.total(), 5);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);   // below lo -> bucket 0
  h.add(100.0);  // beyond end -> last bucket
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(3), 1);
}

TEST(Histogram, HugeSampleClampsToLastBucket) {
  // Regression: the old add_n converted (x - lo) / width to size_t
  // before clamping — UB when the quotient exceeds the integer range.
  // UBSan flagged it for samples like 1e300; the clamp must happen in
  // double space.
  Histogram h(0.0, 1.0, 4);
  h.add(1e300);
  h.add(std::numeric_limits<double>::max());
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket(3), 3);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, ExactLastBucketBoundary) {
  Histogram h(0.0, 1.0, 4);
  h.add(3.0);                       // first value of the last bucket
  h.add(4.0);                       // one past the end -> clamped
  h.add(std::nextafter(3.0, 0.0));  // just below -> bucket 2
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 2);
}

TEST(Histogram, ExtremeNegativeAndNanGoToBucketZero) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1e300);
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.bucket(0), 3);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, AddN) {
  Histogram h(0.0, 1.0, 2);
  h.add_n(0.5, 7);
  EXPECT_EQ(h.bucket(0), 7);
  EXPECT_EQ(h.total(), 7);
}

TEST(Histogram, BucketLo) {
  Histogram h(100.0, 25.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 175.0);
}

TEST(Histogram, RenderShowsCountsAndBars) {
  Histogram h(0.0, 1.0, 3);
  h.add_n(0.5, 4);
  h.add_n(1.5, 2);
  const std::string out = h.render(8);
  EXPECT_NE(out.find("########"), std::string::npos);  // peak bucket full bar
  EXPECT_NE(out.find(" 4"), std::string::npos);
  EXPECT_NE(out.find(" 2"), std::string::npos);
}

TEST(Histogram, RenderElidesEmptyTail) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.5);
  const std::string out = h.render();
  // Only the first line should appear; 10 lines would mean no eliding.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(Histogram, RenderEmptyIsSafe) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_NO_THROW({ const auto s = h.render(); });
}

}  // namespace
}  // namespace lesslog::util
