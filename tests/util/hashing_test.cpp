#include "lesslog/util/hashing.hpp"

#include <gtest/gtest.h>

#include "lesslog/util/rng.hpp"

#include <set>
#include <string>
#include <vector>

namespace lesslog::util {
namespace {

TEST(Hashing, Fnv1a64KnownVectors) {
  // Canonical FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hashing, PsiStaysInSpace) {
  for (int m : {1, 4, 10, 16}) {
    for (const char* name : {"", "a", "movies/clip.mpg", "x/y/z", "0"}) {
      EXPECT_LE(psi(name, m), mask_of(m)) << name << " m=" << m;
    }
  }
}

TEST(Hashing, PsiDeterministic) {
  EXPECT_EQ(psi("some/file", 10), psi("some/file", 10));
  EXPECT_EQ(psi_u64(1234, 10), psi_u64(1234, 10));
}

TEST(Hashing, PsiSensitiveToInput) {
  // Distinct names should essentially never agree on a 16-bit space for a
  // handful of keys.
  std::set<std::uint32_t> targets;
  for (int i = 0; i < 16; ++i) {
    targets.insert(psi("file-" + std::to_string(i), 16));
  }
  EXPECT_GE(targets.size(), 15u);
}

TEST(Hashing, PsiU64CoversSpaceRoughlyUniformly) {
  // Bucket 4096 sequential keys into a 16-slot space; each slot expects
  // ~256 hits. A grossly skewed hash would fail by an order of magnitude.
  std::vector<int> hits(16, 0);
  for (std::uint64_t key = 0; key < 4096; ++key) {
    ++hits[psi_u64(key, 4)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 128);
    EXPECT_LT(h, 512);
  }
}

TEST(Hashing, AvalancheChangesLowBits) {
  // Sequential integers must not map to sequential slots.
  int identical_low_bits = 0;
  for (std::uint64_t key = 0; key < 64; ++key) {
    if ((avalanche64(key) & 0xFu) == (key & 0xFu)) ++identical_low_bits;
  }
  EXPECT_LT(identical_low_bits, 12);
}

TEST(Hashing, SplitMix64MixMatchesStatefulReference) {
  // splitmix64_mix(x) is one SplitMix64 step whose pre-call state is x, so
  // chaining it from any seed must reproduce the stateful generator.
  EXPECT_EQ(splitmix64_mix(0), 0xE220A8397B1DCDAFULL);  // reference vector
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{42},
                             std::uint64_t{0xDEADBEEF}, ~std::uint64_t{0}}) {
    std::uint64_t state = seed;
    std::uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(splitmix64_mix(x), splitmix64(state)) << "seed=" << seed;
      x += 0x9e3779b97f4a7c15ULL;
    }
  }
}

TEST(Hashing, SplitMix64MixScattersSequentialKeys) {
  // Sequential integer keys (how workloads mint FileIds) must not map to
  // sequential or colliding low bits — the probe-hash property the
  // FileStore index depends on.
  std::set<std::uint64_t> low_bits;
  for (std::uint64_t key = 0; key < 512; ++key) {
    low_bits.insert(splitmix64_mix(key) & 0xFFFFu);
  }
  EXPECT_GT(low_bits.size(), 500u);  // ~birthday-level collisions at most
}

}  // namespace
}  // namespace lesslog::util
