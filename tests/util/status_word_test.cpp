#include "lesslog/util/status_word.hpp"

#include <gtest/gtest.h>

namespace lesslog::util {
namespace {

TEST(StatusWord, StartsAllDead) {
  const StatusWord sw(4);
  EXPECT_EQ(sw.capacity(), 16u);
  EXPECT_EQ(sw.live_count(), 0u);
  EXPECT_EQ(sw.dead_count(), 16u);
  for (std::uint32_t p = 0; p < 16; ++p) EXPECT_FALSE(sw.is_live(p));
}

TEST(StatusWord, BootstrapConstructor) {
  const StatusWord sw(4, 14);
  EXPECT_EQ(sw.live_count(), 14u);
  EXPECT_TRUE(sw.is_live(0));
  EXPECT_TRUE(sw.is_live(13));
  EXPECT_FALSE(sw.is_live(14));
  EXPECT_FALSE(sw.is_live(15));
}

TEST(StatusWord, SetLiveAndDead) {
  StatusWord sw(4);
  sw.set_live(5);
  EXPECT_TRUE(sw.is_live(5));
  EXPECT_EQ(sw.live_count(), 1u);
  sw.set_dead(5);
  EXPECT_FALSE(sw.is_live(5));
  EXPECT_EQ(sw.live_count(), 0u);
}

TEST(StatusWord, IdempotentTransitions) {
  StatusWord sw(4);
  sw.set_live(3);
  sw.set_live(3);
  EXPECT_EQ(sw.live_count(), 1u);
  sw.set_dead(3);
  sw.set_dead(3);
  EXPECT_EQ(sw.live_count(), 0u);
}

TEST(StatusWord, LivePidsSortedAndComplete) {
  StatusWord sw(4);
  for (std::uint32_t p : {1u, 8u, 3u, 15u}) sw.set_live(p);
  const std::vector<std::uint32_t> live = sw.live_pids();
  EXPECT_EQ(live, (std::vector<std::uint32_t>{1, 3, 8, 15}));
  const std::vector<std::uint32_t> dead = sw.dead_pids();
  EXPECT_EQ(dead.size(), 12u);
  EXPECT_EQ(dead.front(), 0u);
}

TEST(StatusWord, FirstDead) {
  StatusWord sw(3, 8);
  EXPECT_EQ(sw.first_dead(), 8u);  // full space
  sw.set_dead(2);
  EXPECT_EQ(sw.first_dead(), 2u);
  sw.set_dead(0);
  EXPECT_EQ(sw.first_dead(), 0u);
}

TEST(StatusWord, Equality) {
  StatusWord a(4, 10);
  StatusWord b(4, 10);
  EXPECT_EQ(a, b);
  b.set_dead(9);
  EXPECT_NE(a, b);
}

TEST(StatusWord, LargeSpaceCrossesWordBoundaries) {
  StatusWord sw(10);
  for (std::uint32_t p = 60; p < 70; ++p) sw.set_live(p);
  EXPECT_EQ(sw.live_count(), 10u);
  EXPECT_TRUE(sw.is_live(63));
  EXPECT_TRUE(sw.is_live(64));
  EXPECT_FALSE(sw.is_live(70));
  sw.set_dead(64);
  EXPECT_FALSE(sw.is_live(64));
  EXPECT_TRUE(sw.is_live(65));
}

class StatusWordWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(StatusWordWidthSweep, CountsConsistent) {
  const int m = GetParam();
  StatusWord sw(m);
  std::uint32_t expected = 0;
  // Flip a deterministic pseudo-random subset and recount.
  for (std::uint32_t p = 0; p < sw.capacity(); ++p) {
    if ((p * 2654435761u) % 3u == 0) {
      sw.set_live(p);
      ++expected;
    }
  }
  EXPECT_EQ(sw.live_count(), expected);
  EXPECT_EQ(sw.live_pids().size(), expected);
  EXPECT_EQ(sw.dead_pids().size(), sw.capacity() - expected);
}

INSTANTIATE_TEST_SUITE_P(Widths, StatusWordWidthSweep,
                         ::testing::Values(1, 2, 6, 7, 10, 12));

TEST(StatusWord, WordsExposePackedBits) {
  StatusWord sw(8);
  sw.set_live(0);
  sw.set_live(63);
  sw.set_live(64);
  sw.set_live(200);
  ASSERT_EQ(sw.word_count(), 4u);
  EXPECT_EQ(sw.words()[0], (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(sw.words()[1], 1u);
  EXPECT_EQ(sw.words()[2], 0u);
  EXPECT_EQ(sw.words()[3], std::uint64_t{1} << (200 - 192));
  sw.set_dead(63);
  EXPECT_EQ(sw.words()[0], 1u);
}

TEST(StatusWord, SubWordWidthKeepsHighBitsZero) {
  StatusWord sw(3);
  for (std::uint32_t p = 0; p < 8; ++p) sw.set_live(p);
  ASSERT_EQ(sw.word_count(), 1u);
  EXPECT_EQ(sw.words()[0], 0xFFu);
}

TEST(CowStatus, SharedSnapshotAliasesUntilMutation) {
  auto base = std::make_shared<StatusWord>(6, 40u);
  CowStatus a{std::shared_ptr<StatusWord>(base)};
  CowStatus b{std::shared_ptr<StatusWord>(base)};
  EXPECT_EQ(&a.read(), base.get());
  EXPECT_EQ(&b.read(), base.get());
  a.mutate().set_dead(7);
  EXPECT_NE(&a.read(), base.get());  // a diverged onto its own copy
  EXPECT_EQ(&b.read(), base.get());  // b still aliases the snapshot
  EXPECT_FALSE(a.read().is_live(7));
  EXPECT_TRUE(b.read().is_live(7));
  EXPECT_EQ(base->live_count(), 40u);
}

TEST(CowStatus, UniqueOwnerMutatesInPlace) {
  CowStatus a{StatusWord(5, 10u)};
  const StatusWord* before = &a.read();
  a.mutate().set_live(20);
  EXPECT_EQ(&a.read(), before);  // no other owner: no clone
  EXPECT_TRUE(a.read().is_live(20));
}

TEST(CowStatus, SnapshotPreservesOldBitsAcrossMutation) {
  CowStatus a{StatusWord(5, 10u)};
  const CowStatus before = a.snapshot();
  a.mutate().set_dead(3);
  EXPECT_TRUE(before.read().is_live(3));
  EXPECT_FALSE(a.read().is_live(3));
}

TEST(CowStatus, AssignReplacesContents) {
  auto base = std::make_shared<StatusWord>(4, 16u);
  CowStatus a{std::shared_ptr<StatusWord>(base)};
  a.assign(StatusWord(4, 2u));
  EXPECT_EQ(a.read().live_count(), 2u);
  EXPECT_EQ(base->live_count(), 16u);
}

}  // namespace
}  // namespace lesslog::util
