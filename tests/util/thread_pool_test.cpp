#include "lesslog/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace lesslog::util {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
  SUCCEED();
}

TEST(ParallelFor, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  parallel_for(pool, 3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelFor, ComputesCorrectReduction) {
  ThreadPool pool(4);
  std::vector<long> squares(512, 0);
  parallel_for(pool, squares.size(), [&squares](std::size_t i) {
    squares[i] = static_cast<long>(i) * static_cast<long>(i);
  });
  const long total = std::accumulate(squares.begin(), squares.end(), 0L);
  // Sum of squares 0..511 = n(n+1)(2n+1)/6 with n = 511.
  EXPECT_EQ(total, 511L * 512L * 1023L / 6L);
}

TEST(ParallelFor, ReusablePool) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 20, [&counter](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace lesslog::util
