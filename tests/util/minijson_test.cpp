#include "lesslog/util/minijson.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lesslog::util::minijson {
namespace {

// JSON text is assembled with ordinary C++ escapes ("\\u" = backslash-u
// on the wire) so what the parser sees is unambiguous in the source.

TEST(MiniJson, ValidUnicodeEscapePassesThroughVerbatim) {
  const auto v = parse("{\"k\":\"a\\u00e9b\"}");
  ASSERT_TRUE(v.has_value());
  const Value* k = v->find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->string, "a\\u00e9b");
}

TEST(MiniJson, UnicodeEscapeAcceptsAllHexDigitCases) {
  EXPECT_TRUE(parse("\"\\u0020\"").has_value());
  EXPECT_TRUE(parse("\"\\u9fff\"").has_value());
  EXPECT_TRUE(parse("\"\\uABCD\"").has_value());
  EXPECT_TRUE(parse("\"\\uaBcD\"").has_value());
}

TEST(MiniJson, UnicodeEscapeRejectsNonHexDigits) {
  // Regression: these passed through unvalidated before.
  EXPECT_FALSE(parse("\"\\uZOOM\"").has_value());
  EXPECT_FALSE(parse("\"\\u12G4\"").has_value());
  EXPECT_FALSE(parse("\"\\u 123\"").has_value());
  EXPECT_FALSE(parse("\"\\u123\"").has_value());  // quote is the 4th char
}

TEST(MiniJson, UnicodeEscapeRejectsTruncatedInput) {
  EXPECT_FALSE(parse("\"\\u12").has_value());
  EXPECT_FALSE(parse("\"\\u").has_value());
}

TEST(MiniJson, ErrorReportsReasonAndOffset) {
  std::string error;
  EXPECT_FALSE(parse("{\"k\":\"\\uXYZW\"}", &error).has_value());
  EXPECT_NE(error.find("\\u escape"), std::string::npos);
  EXPECT_NE(error.find("at byte"), std::string::npos);
}

TEST(MiniJson, ErrorClearedOnSuccess) {
  std::string error = "stale";
  EXPECT_TRUE(parse("[1,2,3]", &error).has_value());
  EXPECT_TRUE(error.empty());
}

TEST(MiniJson, ErrorPointsAtDeepestFailure) {
  std::string error;
  EXPECT_FALSE(parse("{\"a\":[1,2,", &error).has_value());
  // The failure is inside the array, not a generic outer-object error.
  EXPECT_NE(error.find("end of input"), std::string::npos);
}

TEST(MiniJson, ErrorOverloadToleratesNullError) {
  EXPECT_FALSE(parse("{", nullptr).has_value());
  EXPECT_TRUE(parse("42", nullptr).has_value());
}

TEST(MiniJson, ReportsTrailingGarbage) {
  std::string error;
  EXPECT_FALSE(parse("true false", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(MiniJson, ReportsBadEscapeAndBadLiteral) {
  std::string error;
  EXPECT_FALSE(parse("\"\\q\"", &error).has_value());
  EXPECT_NE(error.find("escape"), std::string::npos);
  EXPECT_FALSE(parse("trne", &error).has_value());
  EXPECT_NE(error.find("literal"), std::string::npos);
}

TEST(MiniJson, StillParsesEmitterOutput) {
  const auto v = parse(
      "{\"schema\":\"lesslog.bench\",\"version\":1,"
      "\"rows\":[{\"cell\":\"m=8\",\"p50_ms\":1.5}]}");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->is_object());
  EXPECT_EQ(v->find("schema")->string, "lesslog.bench");
}

}  // namespace
}  // namespace lesslog::util::minijson
