#include "lesslog/util/logging.hpp"

#include <gtest/gtest.h>

namespace lesslog::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(FormatMessage, NoPlaceholders) {
  EXPECT_EQ(format_message("hello"), "hello");
}

TEST(FormatMessage, FillsPlaceholdersInOrder) {
  EXPECT_EQ(format_message("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format_message("node {} serves {}", 5, "file.mpg"),
            "node 5 serves file.mpg");
}

TEST(FormatMessage, SurplusArgumentsAppended) {
  EXPECT_EQ(format_message("x={}", 1, 2, 3), "x=1 2 3");
}

TEST(FormatMessage, SurplusPlaceholdersKept) {
  EXPECT_EQ(format_message("a={} b={}", 7), "a=7 b={}");
}

TEST(FormatMessage, MixedTypes) {
  EXPECT_EQ(format_message("{} {} {}", 1.5, true, 'c'), "1.5 1 c");
}

TEST_F(LoggingTest, SuppressedBelowThresholdDoesNotCrash) {
  set_log_level(LogLevel::kOff);
  log_debug("dropped {}", 1);
  log_info("dropped {}", 2);
  log_warn("dropped {}", 3);
  log_error("dropped {}", 4);
  SUCCEED();
}

}  // namespace
}  // namespace lesslog::util
