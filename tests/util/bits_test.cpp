#include "lesslog/util/bits.hpp"

#include <gtest/gtest.h>

#include "lesslog/core/virtual_tree.hpp"

namespace lesslog::util {
namespace {

TEST(Bits, ValidWidth) {
  EXPECT_FALSE(valid_width(0));
  EXPECT_TRUE(valid_width(1));
  EXPECT_TRUE(valid_width(10));
  EXPECT_TRUE(valid_width(kMaxIdBits));
  EXPECT_FALSE(valid_width(kMaxIdBits + 1));
  EXPECT_FALSE(valid_width(-3));
}

TEST(Bits, MaskOf) {
  EXPECT_EQ(mask_of(1), 0b1u);
  EXPECT_EQ(mask_of(4), 0b1111u);
  EXPECT_EQ(mask_of(10), 1023u);
  EXPECT_EQ(mask_of(kMaxIdBits), (1u << kMaxIdBits) - 1u);
}

TEST(Bits, SpaceSize) {
  EXPECT_EQ(space_size(1), 2u);
  EXPECT_EQ(space_size(4), 16u);
  EXPECT_EQ(space_size(10), 1024u);
}

TEST(Bits, Fits) {
  EXPECT_TRUE(fits(0b1111, 4));
  EXPECT_FALSE(fits(0b10000, 4));
  EXPECT_TRUE(fits(0, 1));
}

TEST(Bits, LeadingOnes) {
  EXPECT_EQ(leading_ones(0b1111, 4), 4);
  EXPECT_EQ(leading_ones(0b1110, 4), 3);
  EXPECT_EQ(leading_ones(0b1101, 4), 2);
  EXPECT_EQ(leading_ones(0b1011, 4), 1);
  EXPECT_EQ(leading_ones(0b0111, 4), 0);
  EXPECT_EQ(leading_ones(0b0000, 4), 0);
  EXPECT_EQ(leading_ones(mask_of(10), 10), 10);
}

TEST(Bits, HighestZeroBit) {
  EXPECT_EQ(highest_zero_bit(0b1111, 4), -1);
  EXPECT_EQ(highest_zero_bit(0b1110, 4), 0);
  EXPECT_EQ(highest_zero_bit(0b1011, 4), 2);
  EXPECT_EQ(highest_zero_bit(0b0111, 4), 3);
  EXPECT_EQ(highest_zero_bit(0b0000, 4), 3);
}

TEST(Bits, SetHighestZero) {
  // Property 2: the parent VID sets the highest 0-bit.
  EXPECT_EQ(set_highest_zero(0b0111, 4), 0b1111u);
  EXPECT_EQ(set_highest_zero(0b1011, 4), 0b1111u);
  EXPECT_EQ(set_highest_zero(0b1101, 4), 0b1111u);
  EXPECT_EQ(set_highest_zero(0b1110, 4), 0b1111u);
  EXPECT_EQ(set_highest_zero(0b0011, 4), 0b1011u);
  EXPECT_EQ(set_highest_zero(0b0000, 4), 0b1000u);
}

TEST(Bits, ClearAndTestBit) {
  EXPECT_EQ(clear_bit(0b1111, 2), 0b1011u);
  EXPECT_EQ(clear_bit(0b1011, 2), 0b1011u);
  EXPECT_TRUE(test_bit(0b0100, 2));
  EXPECT_FALSE(test_bit(0b0100, 1));
}

TEST(Bits, Complement) {
  EXPECT_EQ(complement(0b0100, 4), 0b1011u);  // the paper's 4̄ = 1011
  EXPECT_EQ(complement(0, 4), 0b1111u);
  EXPECT_EQ(complement(mask_of(10), 10), 0u);
  // Involution.
  for (std::uint32_t v = 0; v < 16; ++v) {
    EXPECT_EQ(complement(complement(v, 4), 4), v);
  }
}

TEST(Bits, WidthFor) {
  EXPECT_EQ(width_for(1), 1);
  EXPECT_EQ(width_for(2), 1);
  EXPECT_EQ(width_for(3), 2);
  EXPECT_EQ(width_for(16), 4);
  EXPECT_EQ(width_for(17), 5);
  EXPECT_EQ(width_for(1024), 10);
}

TEST(Bits, BinaryRoundTrip) {
  EXPECT_EQ(to_binary(0b0101, 4), "0101");
  EXPECT_EQ(to_binary(0, 4), "0000");
  EXPECT_EQ(to_binary(mask_of(4), 4), "1111");
  EXPECT_EQ(from_binary("1011"), 0b1011u);
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(from_binary(to_binary(v, 6)), v);
  }
}

TEST(Bits, MaxWidthBoundary) {
  // m = kMaxIdBits (30): the widest supported space; pure bit math only
  // (no containers are instantiated at this width).
  constexpr int m = kMaxIdBits;
  EXPECT_EQ(mask_of(m), 0x3FFFFFFFu);
  EXPECT_EQ(space_size(m), 1u << 30);
  EXPECT_EQ(leading_ones(mask_of(m), m), m);
  EXPECT_EQ(leading_ones(mask_of(m) >> 1, m), 0);
  EXPECT_EQ(leading_ones(mask_of(m) ^ 1u, m), m - 1);
  EXPECT_EQ(set_highest_zero(0u, m), 1u << (m - 1));
  EXPECT_EQ(complement(0u, m), mask_of(m));
}

TEST(Bits, MaxWidthVirtualTreeMath) {
  const lesslog::core::VirtualTree vt(kMaxIdBits);
  EXPECT_EQ(vt.root().value(), mask_of(kMaxIdBits));
  EXPECT_EQ(vt.child_count(vt.root()), kMaxIdBits);
  EXPECT_EQ(vt.subtree_size(vt.root()), space_size(kMaxIdBits));
  EXPECT_EQ(vt.depth(lesslog::core::Vid{0}), kMaxIdBits);
  // A full-depth path stays within the m-hop bound.
  EXPECT_EQ(vt.path_to_root(lesslog::core::Vid{0}).size(),
            static_cast<std::size_t>(kMaxIdBits) + 1u);
}

class LeadingOnesSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeadingOnesSweep, ConsistentWithNaive) {
  const int m = GetParam();
  for (std::uint32_t v = 0; v < space_size(m); ++v) {
    int naive = 0;
    for (int bit = m - 1; bit >= 0 && test_bit(v, bit); --bit) ++naive;
    EXPECT_EQ(leading_ones(v, m), naive) << "v=" << v << " m=" << m;
  }
}

TEST_P(LeadingOnesSweep, ParentIncreasesValue) {
  const int m = GetParam();
  for (std::uint32_t v = 0; v < mask_of(m); ++v) {
    const std::uint32_t parent = set_highest_zero(v, m);
    EXPECT_GT(parent, v);
    EXPECT_EQ(popcount(parent), popcount(v) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LeadingOnesSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

TEST(Bits64, CtzClzTopBit) {
  EXPECT_EQ(ctz64(0), 64);
  EXPECT_EQ(clz64(0), 64);
  EXPECT_EQ(ctz64(1), 0);
  EXPECT_EQ(clz64(1), 63);
  EXPECT_EQ(ctz64(std::uint64_t{1} << 63), 63);
  EXPECT_EQ(clz64(std::uint64_t{1} << 63), 0);
  EXPECT_EQ(top_set_bit64(1), 0);
  EXPECT_EQ(top_set_bit64(0b1010'0000), 7);
  EXPECT_EQ(top_set_bit64(~std::uint64_t{0}), 63);
  EXPECT_EQ(popcount64(0xF0F0'F0F0'F0F0'F0F0ULL), 32);
}

TEST(Bits64, XorPermuteMatchesBitwiseDefinition) {
  // bit j of xor_permute64(w, c) must equal bit (j ^ c) of w, for every c.
  std::uint64_t w = 0x0123'4567'89AB'CDEFULL;
  for (std::uint32_t c = 0; c < 64; ++c) {
    const std::uint64_t perm = xor_permute64(w, c);
    for (int j = 0; j < 64; ++j) {
      ASSERT_EQ((perm >> j) & 1u, (w >> (j ^ static_cast<int>(c))) & 1u)
          << "c=" << c << " j=" << j;
    }
  }
}

TEST(Bits64, XorPermuteIsAnInvolution) {
  const std::uint64_t w = 0xDEAD'BEEF'CAFE'F00DULL;
  for (std::uint32_t c = 0; c < 64; ++c) {
    EXPECT_EQ(xor_permute64(xor_permute64(w, c), c), w);
    EXPECT_EQ(popcount64(xor_permute64(w, c)), popcount64(w));
  }
}

TEST(Bits64, LowMask) {
  EXPECT_EQ(low_mask64(0), 0u);
  EXPECT_EQ(low_mask64(1), 1u);
  EXPECT_EQ(low_mask64(8), 0xFFu);
  EXPECT_EQ(low_mask64(63), ~std::uint64_t{0} >> 1);
  EXPECT_EQ(low_mask64(64), ~std::uint64_t{0});
}

TEST(Bits64, StrideMaskSelectsResidueClass) {
  for (int b = 0; b <= 6; ++b) {
    const std::uint32_t period = 1u << b;
    for (std::uint32_t offset = 0; offset < period; ++offset) {
      const std::uint64_t mask = stride_mask64(b, offset);
      for (int j = 0; j < 64; ++j) {
        const bool expect = (static_cast<std::uint32_t>(j) % period) == offset;
        ASSERT_EQ(((mask >> j) & 1u) != 0, expect)
            << "b=" << b << " offset=" << offset << " j=" << j;
      }
    }
  }
}

TEST(Bits64, SelectBit) {
  const std::uint64_t w = 0b1011'0100'1000'0001ULL;
  // Set bits, LSB first: 0, 7, 10, 12, 13, 15.
  EXPECT_EQ(select_bit64(w, 0), 0);
  EXPECT_EQ(select_bit64(w, 1), 7);
  EXPECT_EQ(select_bit64(w, 2), 10);
  EXPECT_EQ(select_bit64(w, 3), 12);
  EXPECT_EQ(select_bit64(w, 4), 13);
  EXPECT_EQ(select_bit64(w, 5), 15);
  EXPECT_EQ(select_bit64(~std::uint64_t{0}, 63), 63);
}

}  // namespace
}  // namespace lesslog::util
