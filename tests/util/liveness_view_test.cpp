// Unit tests for the LivenessView seam types themselves: the non-virtual
// word() consult surface, OracleView's check-before-mutate copy-on-write
// discipline (a redundant update must never clone a shared snapshot), and
// BorrowedView's non-owning semantics.
#include "lesslog/util/liveness_view.hpp"

#include <gtest/gtest.h>

#include "lesslog/util/bits.hpp"

namespace lesslog::util {
namespace {

TEST(BorrowedView, ReflectsTheBorrowedWord) {
  StatusWord word(4, 10);
  const BorrowedView view{word};
  EXPECT_EQ(view.width(), 4);
  EXPECT_EQ(view.live_count(), 10u);
  EXPECT_TRUE(view.is_live(3));
  EXPECT_FALSE(view.is_live(12));
  // Non-owning: mutations to the word are visible through the view.
  word.set_dead(3);
  EXPECT_FALSE(view.is_live(3));
  EXPECT_EQ(&view.word(), &word);
}

TEST(OracleView, BelieveUpdatesMatchAnnouncementSemantics) {
  OracleView view{CowStatus(StatusWord(3, 8))};
  EXPECT_EQ(view.live_count(), 8u);
  view.believe_dead(5);
  EXPECT_FALSE(view.is_live(5));
  EXPECT_EQ(view.live_count(), 7u);
  view.believe_live(5);
  EXPECT_TRUE(view.is_live(5));
  EXPECT_EQ(view.live_count(), 8u);
}

TEST(OracleView, RedundantUpdateNeverClonesASharedSnapshot) {
  OracleView view{CowStatus(StatusWord(3, 8))};
  view.believe_dead(2);
  // Share the snapshot, then apply updates the view already believes:
  // check-before-mutate must leave the shared bits untouched (same
  // backing word, no clone).
  const CowStatus shared = view.snapshot();
  const StatusWord* backing = &view.word();
  view.believe_dead(2);   // already dead
  view.believe_live(4);   // already live
  EXPECT_EQ(&view.word(), backing);
  EXPECT_EQ(&shared.read(), backing);
  // A genuine update clones away from the shared snapshot instead of
  // mutating it in place.
  view.believe_dead(4);
  EXPECT_NE(&view.word(), &shared.read());
  EXPECT_TRUE(shared.read().is_live(4));
  EXPECT_FALSE(view.is_live(4));
}

TEST(OracleView, ResetReplacesTheWholeBelief) {
  OracleView view{CowStatus(StatusWord(3, 8))};
  view.believe_dead(1);
  StatusWord fresh(3, 8);
  fresh.set_dead(6);
  view.reset(CowStatus(std::move(fresh)));
  EXPECT_TRUE(view.is_live(1));
  EXPECT_FALSE(view.is_live(6));
  EXPECT_EQ(view.live_count(), 7u);
}

TEST(LivenessView, PolymorphicConsultThroughTheBase) {
  OracleView oracle{CowStatus(StatusWord(3, 8))};
  oracle.believe_dead(3);
  MutableLivenessView& mut = oracle;
  const LivenessView& view = mut;
  EXPECT_FALSE(view.is_live(3));
  EXPECT_EQ(view.word().live_count(), 7u);
}

}  // namespace
}  // namespace lesslog::util
