#include "lesslog/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lesslog::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 5.0);
  EXPECT_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.sum(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    whole.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 1.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(JainFairness, PerfectlyEven) {
  EXPECT_DOUBLE_EQ(jain_fairness({4.0, 4.0, 4.0, 4.0}), 1.0);
}

TEST(JainFairness, SingleHotspot) {
  // One of n nodes carries everything -> index = 1/n.
  EXPECT_NEAR(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, DegenerateInputs) {
  EXPECT_EQ(jain_fairness({}), 1.0);
  EXPECT_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(JainFairness, MonotoneUnderBalancing) {
  const double skewed = jain_fairness({9.0, 1.0, 1.0, 1.0});
  const double better = jain_fairness({5.0, 3.0, 2.0, 2.0});
  EXPECT_LT(skewed, better);
  EXPECT_LT(better, 1.0);
}

}  // namespace
}  // namespace lesslog::util
