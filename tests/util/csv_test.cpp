#include "lesslog/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lesslog::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/lesslog_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"x", "y"});
    csv.add_row({std::int64_t{1}, 2.5});
    csv.add_row({std::int64_t{2}, 5.0});
  }
  EXPECT_EQ(slurp(path_), "x,y\n1,2.5\n2,5\n");
}

TEST_F(CsvTest, EscapesSpecialFields) {
  {
    CsvWriter csv(path_, {"name"});
    csv.add_row({std::string("a,b")});
    csv.add_row({std::string("quote\"inside")});
    csv.add_row({std::string("plain")});
  }
  EXPECT_EQ(slurp(path_), "name\n\"a,b\"\n\"quote\"\"inside\"\nplain\n");
}

TEST_F(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvEscape, Rules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

}  // namespace
}  // namespace lesslog::util
