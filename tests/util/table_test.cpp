#include "lesslog/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace lesslog::util {
namespace {

TEST(Table, RendersHeaderAndRule) {
  Table t({"rate", "replicas"});
  const std::string out = t.render();
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("replicas"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FormatsCellKinds) {
  Table t({"a", "b", "c"});
  t.add_row({std::string("x"), std::int64_t{42}, 3.14159});
  const std::string out = t.render();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.1"), std::string::npos);  // default precision 1
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(3);
  t.add_row({2.0 / 3.0});
  EXPECT_NE(t.render().find("0.667"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "value"});
  t.add_row({std::int64_t{1}, std::int64_t{10}});
  t.add_row({std::int64_t{100}, std::int64_t{2000}});
  std::istringstream in(t.render());
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(header.size(), row1.size());
}

TEST(Table, RowAndWidthAccounting) {
  Table t({"a", "b"});
  EXPECT_EQ(t.width(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, StreamOperator) {
  Table t({"only"});
  t.add_row({std::string("val")});
  std::ostringstream out;
  out << t;
  EXPECT_EQ(out.str(), t.render());
}

}  // namespace
}  // namespace lesslog::util
