#include "lesslog/util/seq_window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace lesslog::util {
namespace {

TEST(SeqWindow, StartsEmpty) {
  SeqWindow<int> w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.find(0), nullptr);
}

TEST(SeqWindow, InsertFindErase) {
  SeqWindow<std::string> w;
  w.insert(10, "a");
  w.insert(11, "b");
  ASSERT_NE(w.find(10), nullptr);
  EXPECT_EQ(*w.find(10), "a");
  EXPECT_EQ(*w.find(11), "b");
  EXPECT_EQ(w.find(9), nullptr);
  EXPECT_EQ(w.find(12), nullptr);
  EXPECT_TRUE(w.erase(10));
  EXPECT_FALSE(w.erase(10));
  EXPECT_EQ(w.find(10), nullptr);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SeqWindow, SkippedIdsLeaveHoles) {
  SeqWindow<int> w;
  w.insert(0, 0);
  w.insert(5, 5);  // 1..4 never inserted
  EXPECT_EQ(w.find(3), nullptr);
  EXPECT_EQ(*w.find(5), 5);
  EXPECT_TRUE(w.erase(0));
  // The window slides over the holes to the next live id.
  EXPECT_EQ(*w.find(5), 5);
  w.insert(6, 6);
  EXPECT_EQ(*w.find(6), 6);
}

TEST(SeqWindow, GrowsPastInitialCapacity) {
  SeqWindow<std::uint64_t> w;
  for (std::uint64_t id = 0; id < 100; ++id) w.insert(id, id * 3);
  EXPECT_EQ(w.size(), 100u);
  for (std::uint64_t id = 0; id < 100; ++id) {
    ASSERT_NE(w.find(id), nullptr) << id;
    EXPECT_EQ(*w.find(id), id * 3);
  }
}

TEST(SeqWindow, SlidingUseStaysSmall) {
  // The hot-path pattern: insert a new id, erase an old one — the live
  // span stays narrow, so the ring never needs to grow after warm-up.
  SeqWindow<int> w;
  for (int id = 0; id < 4; ++id) w.insert(static_cast<std::uint64_t>(id), id);
  for (int id = 4; id < 5000; ++id) {
    w.insert(static_cast<std::uint64_t>(id), id);
    EXPECT_TRUE(w.erase(static_cast<std::uint64_t>(id - 4)));
    EXPECT_EQ(w.size(), 4u);
  }
  for (int id = 4996; id < 5000; ++id) {
    ASSERT_NE(w.find(static_cast<std::uint64_t>(id)), nullptr);
    EXPECT_EQ(*w.find(static_cast<std::uint64_t>(id)), id);
  }
}

TEST(SeqWindow, EraseLastThenReuseFarAhead) {
  SeqWindow<int> w;
  w.insert(7, 1);
  EXPECT_TRUE(w.erase(7));
  EXPECT_TRUE(w.empty());
  // After draining, ids may restart anywhere ahead.
  w.insert(1'000'000, 2);
  EXPECT_EQ(*w.find(1'000'000), 2);
  EXPECT_EQ(w.find(7), nullptr);
}

TEST(SeqWindow, ClearResets) {
  SeqWindow<int> w;
  for (std::uint64_t id = 0; id < 20; ++id) w.insert(id, 1);
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.find(5), nullptr);
  w.insert(3, 9);
  EXPECT_EQ(*w.find(3), 9);
}

}  // namespace
}  // namespace lesslog::util
