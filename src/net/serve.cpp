#include "lesslog/net/serve.hpp"

#include <algorithm>
#include <stdexcept>

#include "lesslog/util/bits.hpp"

namespace lesslog::net {

namespace {

/// Serve mode runs with zero simulated latency: the wire itself is the
/// latency now. Local (same-process) deliveries schedule at now() and
/// execute on the next pump tick.
proto::NetworkConfig serve_net_config() {
  proto::NetworkConfig cfg;
  cfg.base_latency = 0.0;
  cfg.jitter = 0.0;
  cfg.drop_probability = 0.0;
  cfg.link_stagger = 0.0;
  return cfg;
}

}  // namespace

void ServeConfig::validate() const {
  hosts.validate();
  if (m < 1 || m > 30) {
    throw std::invalid_argument("serve: m must be in [1, 30]");
  }
  if (b < 0 || b >= m) {
    throw std::invalid_argument("serve: b must be in [0, m)");
  }
  if (self >= hosts.size()) {
    throw std::invalid_argument("serve: self index out of range");
  }
  if (hosts.entry(self).client) {
    throw std::invalid_argument("serve: self entry has client role");
  }
  const std::uint32_t space = util::space_size(m);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts.entry(i).hi >= space) {
      throw std::invalid_argument("serve: host map entry " +
                                  std::to_string(i) +
                                  " exceeds the 2^m ID space");
    }
  }
}

ServeHost::ServeHost(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(cfg_.seed),
      network_(engine_, serve_net_config()),
      status_(util::StatusWord(cfg_.m)),
      t0_(std::chrono::steady_clock::now()) {
  cfg_.validate();
  // Ground truth liveness: every serve-range PID is up. Client PIDs stay
  // dead in every peer's belief, so no file placement or forwarding ever
  // targets a loadgen — replies still reach it, because reply delivery
  // goes straight to the requester PID without a liveness check.
  for (std::size_t i = 0; i < cfg_.hosts.size(); ++i) {
    const HostEntry& e = cfg_.hosts.entry(i);
    if (e.client) continue;
    for (std::uint32_t p = e.lo; p <= e.hi; ++p) {
      status_.mutate().set_live(p);
    }
  }
  transport_ = std::make_unique<Transport>(cfg_.hosts, cfg_.self,
                                           cfg_.transport);
  const HostEntry& self = cfg_.hosts.entry(cfg_.self);
  for (std::uint32_t p = self.lo; p <= self.hi; ++p) {
    peers_.push_back(std::make_unique<proto::Peer>(
        core::Pid{p}, cfg_.b, status_.snapshot(), network_, cfg_.peer));
  }
}

void ServeHost::start() {
  if (started_) return;
  started_ = true;
  // Outbound splice: local destinations fall through to the engine
  // (return false); remote ones are written to the wire. The simulated
  // arrival time is discarded — real wire latency replaces it.
  network_.set_forward(
      [this](core::Pid to, double, const proto::WireBuffer& wire) {
        if (owns(to)) return false;
        (void)transport_->send(to, wire);  // best-effort; drops counted
        return true;
      });
  // Inbound splice: frames enter the Network's decode/dispatch funnel
  // stamped with the wall clock at arrival — not engine_.now(), which is
  // the run_before bound from *before* the epoll wait and would
  // timestamp every frame in the past, zeroing measured latencies. A
  // decode reject is a counted corrupted drop, exactly as under
  // simulated fault injection.
  transport_->set_frame_handler([this](const proto::WireBuffer& wire) {
    network_.deliver_at(elapsed(), wire);
  });
  for (auto& peer : peers_) peer->attach();
  transport_->bind();
  transport_->connect_all();
  t0_ = std::chrono::steady_clock::now();
}

double ServeHost::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0_)
      .count();
}

int ServeHost::step(int max_wait_ms) {
  const double wall = elapsed();
  engine_.run_before(wall);
  // Sleep in epoll until socket activity or the next engine timer.
  double wait_s = static_cast<double>(max_wait_ms) / 1000.0;
  if (!engine_.queue().empty()) {
    wait_s = std::clamp(engine_.queue().next_time() - elapsed(), 0.0,
                        wait_s);
  }
  return transport_->poll(static_cast<int>(wait_s * 1000.0));
}

void ServeHost::run() {
  start();
  while (!stopped_ &&
         (cfg_.duration <= 0.0 || elapsed() < cfg_.duration)) {
    step(50);
  }
  // Drain whatever became due while the loop condition flipped.
  engine_.run_before(elapsed());
}

void ServeHost::write_stats(std::ostream& out) const {
  const TransportStats& t = transport_->stats();
  std::int64_t served = 0;
  for (const auto& peer : peers_) served += peer->served();
  out << "decode_drops=" << network_.corrupted()
      << " delivered=" << network_.delivered()
      << " undeliverable=" << network_.undeliverable()
      << " frames_in=" << t.frames_in << " frames_out=" << t.frames_out
      << " bytes_in=" << t.bytes_in << " bytes_out=" << t.bytes_out
      << " overflow_dropped=" << t.overflow_dropped
      << " unroutable_dropped=" << t.unroutable_dropped
      << " accepts=" << t.accepts << " connects=" << t.connects
      << " reconnects=" << t.reconnects
      << " disconnects=" << t.disconnects << " served=" << served << "\n";
}

}  // namespace lesslog::net
