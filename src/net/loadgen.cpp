#include "lesslog/net/loadgen.hpp"

#include <algorithm>
#include <stdexcept>

#include "lesslog/core/fault_tolerant.hpp"
#include "lesslog/core/lookup_tree.hpp"
#include "lesslog/util/bits.hpp"
#include "lesslog/util/stats.hpp"

namespace lesslog::net {

namespace {

proto::NetworkConfig loadgen_net_config() {
  proto::NetworkConfig cfg;
  cfg.base_latency = 0.0;
  cfg.jitter = 0.0;
  cfg.drop_probability = 0.0;
  cfg.link_stagger = 0.0;
  return cfg;
}

}  // namespace

void LoadGenConfig::validate() const {
  hosts.validate();
  if (m < 1 || m > 30) {
    throw std::invalid_argument("loadgen: m must be in [1, 30]");
  }
  if (b < 0 || b >= m) {
    throw std::invalid_argument("loadgen: b must be in [0, m)");
  }
  if (self >= hosts.size()) {
    throw std::invalid_argument("loadgen: self index out of range");
  }
  if (!hosts.entry(self).client) {
    throw std::invalid_argument("loadgen: self entry must have client role");
  }
  const std::uint32_t space = util::space_size(m);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts.entry(i).hi >= space) {
      throw std::invalid_argument("loadgen: host map entry " +
                                  std::to_string(i) +
                                  " exceeds the 2^m ID space");
    }
  }
  if (files < 1) throw std::invalid_argument("loadgen: files must be >= 1");
  if (rate <= 0.0) throw std::invalid_argument("loadgen: rate must be > 0");
  if (duration <= 0.0) {
    throw std::invalid_argument("loadgen: duration must be > 0");
  }
  if (setup_timeout <= 0.0 || drain_timeout <= 0.0) {
    throw std::invalid_argument("loadgen: timeouts must be > 0");
  }
}

double LoadGenReport::p50() const {
  return latencies.empty() ? 0.0 : util::percentile(latencies, 0.50);
}

double LoadGenReport::p99() const {
  return latencies.empty() ? 0.0 : util::percentile(latencies, 0.99);
}

LoadGen::LoadGen(LoadGenConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(cfg_.seed),
      network_(engine_, loadgen_net_config()),
      status_(util::StatusWord(cfg_.m)),
      metrics_(registry_) {
  cfg_.validate();
  // The loadgen's belief mirrors the serving side's: every serve-range
  // PID live, every client PID (including its own) dead. Keeping the
  // client PID out of the liveness word means insertion_targets and GET
  // routing can never select it; replies still arrive because peers
  // answer the requester PID directly, without a liveness check.
  for (std::size_t i = 0; i < cfg_.hosts.size(); ++i) {
    const HostEntry& e = cfg_.hosts.entry(i);
    if (e.client) continue;
    for (std::uint32_t p = e.lo; p <= e.hi; ++p) {
      status_.mutate().set_live(p);
    }
  }
  transport_ = std::make_unique<Transport>(cfg_.hosts, cfg_.self,
                                           cfg_.transport);
  const core::Pid self_pid{cfg_.hosts.entry(cfg_.self).lo};
  peer_ = std::make_unique<proto::Peer>(self_pid, cfg_.b, status_.snapshot(),
                                        network_, proto::PeerConfig{});
  client_ = std::make_unique<proto::Client>(*peer_, network_, cfg_.client);
  client_->set_metrics(&metrics_);
  t0_ = std::chrono::steady_clock::now();
}

double LoadGen::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0_)
      .count();
}

int LoadGen::step(int max_wait_ms) {
  engine_.run_before(elapsed());
  double wait_s = static_cast<double>(max_wait_ms) / 1000.0;
  if (!engine_.queue().empty()) {
    wait_s = std::clamp(engine_.queue().next_time() - elapsed(), 0.0,
                        wait_s);
  }
  return transport_->poll(static_cast<int>(wait_s * 1000.0));
}

bool LoadGen::pump_until(const std::function<bool()>& done,
                         double deadline) {
  while (!done() && elapsed() < deadline) {
    step(20);
  }
  engine_.run_before(elapsed());
  return done();
}

void LoadGen::start() {
  if (started_) return;
  started_ = true;
  network_.set_forward(
      [this](core::Pid to, double, const proto::WireBuffer& wire) {
        if (to == peer_->pid()) return false;
        (void)transport_->send(to, wire);
        return true;
      });
  // Wall-clock arrival stamp (see ServeHost::start): stamping with
  // engine_.now() would backdate replies to the pre-wait bound and
  // zero every measured latency.
  transport_->set_frame_handler([this](const proto::WireBuffer& wire) {
    network_.deliver_at(elapsed(), wire);
  });
  peer_->attach();
  transport_->bind();
  transport_->connect_all();
  t0_ = std::chrono::steady_clock::now();
}

LoadGenReport LoadGen::run() {
  start();

  LoadGenReport report;
  report.files_requested = cfg_.files;

  // Wait for the mesh before placing files: the first inserts otherwise
  // race the connect handshakes and burn retry budget for nothing.
  pump_until([this] { return transport_->fully_connected(); },
             cfg_.setup_timeout / 2.0);

  // --- Phase 1: place the catalog. One insert per (file, holder) pair,
  // holders resolved exactly as Swarm::insert resolves them; failed
  // inserts re-issue until the setup deadline.
  struct InsertTask {
    core::FileId file{0};
    core::Pid target{0};
    core::Pid holder{0};
    int file_index = 0;
    bool acked = false;
  };
  std::vector<InsertTask> tasks;
  std::vector<int> holders_left(static_cast<std::size_t>(cfg_.files), 0);
  for (int i = 0; i < cfg_.files; ++i) {
    const core::FileId file{static_cast<std::uint64_t>(i) + 1};
    const core::Pid r = peer_->target_of(file);
    const core::LookupTree tree(cfg_.m, r);
    const core::SubtreeView view(tree, cfg_.b);
    for (const core::Pid holder : view.insertion_targets(peer_->status())) {
      tasks.push_back(
          InsertTask{file, r, holder, i, false});
      ++holders_left[static_cast<std::size_t>(i)];
    }
  }

  const double setup_deadline = cfg_.setup_timeout;
  std::function<void(std::size_t)> issue = [&](std::size_t idx) {
    client_->insert(
        tasks[idx].file, tasks[idx].target, tasks[idx].holder,
        [&, idx](bool ok) {
          if (ok) {
            if (!tasks[idx].acked) {
              tasks[idx].acked = true;
              const auto f = static_cast<std::size_t>(tasks[idx].file_index);
              if (--holders_left[f] == 0) ++report.files_inserted;
            }
          } else if (elapsed() < setup_deadline) {
            issue(idx);  // ack lost or holder slow: re-place this replica
          }
        });
  };
  for (std::size_t idx = 0; idx < tasks.size(); ++idx) issue(idx);
  pump_until(
      [&] { return report.files_inserted == report.files_requested; },
      setup_deadline);

  // --- Phase 2: fixed-rate GETs against uniformly random files,
  // scheduled upfront on the engine at exact 1/rate spacing. The engine
  // is pumped against the wall clock, so issue times are wall times.
  const auto total =
      static_cast<std::int64_t>(cfg_.rate * cfg_.duration);
  const double t_start = elapsed() + 0.05;
  std::int64_t completed = 0;
  for (std::int64_t k = 0; k < total; ++k) {
    const double when =
        t_start + static_cast<double>(k) / cfg_.rate;
    engine_.at(when, [&, this] {
      const std::uint64_t pick =
          engine_.rng().bounded(static_cast<std::uint64_t>(cfg_.files));
      const core::FileId file{pick + 1};
      ++report.gets_issued;
      client_->get(file, peer_->target_of(file),
                   [&](const proto::GetResult& res) {
                     ++completed;
                     if (res.ok) {
                       ++report.gets_ok;
                       report.latencies.push_back(res.latency);
                     } else {
                       ++report.gets_failed;
                     }
                   });
    });
  }
  const double drain_deadline =
      t_start + cfg_.duration + cfg_.drain_timeout;
  pump_until(
      [&] {
        return report.gets_issued == total && completed == total;
      },
      drain_deadline);

  // Anything still pending at the drain deadline is a fault we would
  // otherwise never hear about; account it so all_ok() stays honest.
  report.gets_failed += report.gets_issued - completed;
  return report;
}

void LoadGen::write_stats(std::ostream& out,
                          const LoadGenReport& report) const {
  const TransportStats& t = transport_->stats();
  out << "files_inserted=" << report.files_inserted << "/"
      << report.files_requested << " gets_issued=" << report.gets_issued
      << " gets_ok=" << report.gets_ok
      << " gets_failed=" << report.gets_failed << " p50_ms="
      << report.p50() * 1e3 << " p99_ms=" << report.p99() * 1e3
      << " decode_drops=" << network_.corrupted()
      << " delivered=" << network_.delivered()
      << " frames_in=" << t.frames_in << " frames_out=" << t.frames_out
      << " overflow_dropped=" << t.overflow_dropped
      << " unroutable_dropped=" << t.unroutable_dropped
      << " reconnects=" << t.reconnects << " faults=" << client_->faults()
      << "\n";
}

}  // namespace lesslog::net
