#include "lesslog/net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace lesslog::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint32_t parse_u32(const std::string& s, const char* what) {
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument(std::string("host map: bad ") + what +
                                " '" + s + "'");
  }
  return v;
}

}  // namespace

// ---- HostMap -------------------------------------------------------------

HostMap HostMap::parse(const std::string& text) {
  HostMap map;
  for (const std::string& piece : split(text, ';')) {
    if (piece.empty()) continue;
    const std::vector<std::string> parts = split(piece, ':');
    if (parts.size() != 4) {
      throw std::invalid_argument(
          "host map: expected role:pids:host:port, got '" + piece + "'");
    }
    HostEntry e;
    if (parts[0] == "serve") {
      e.client = false;
    } else if (parts[0] == "client") {
      e.client = true;
    } else {
      throw std::invalid_argument("host map: unknown role '" + parts[0] +
                                  "'");
    }
    const std::vector<std::string> range = split(parts[1], '-');
    if (range.size() == 1) {
      e.lo = e.hi = parse_u32(range[0], "pid");
    } else if (range.size() == 2) {
      e.lo = parse_u32(range[0], "pid range");
      e.hi = parse_u32(range[1], "pid range");
    } else {
      throw std::invalid_argument("host map: bad pid range '" + parts[1] +
                                  "'");
    }
    e.host = parts[2];
    const std::uint32_t port = parse_u32(parts[3], "port");
    if (port > 0xFFFF) {
      throw std::invalid_argument("host map: port out of range '" +
                                  parts[3] + "'");
    }
    e.port = static_cast<std::uint16_t>(port);
    map.add(std::move(e));
  }
  map.validate();
  return map;
}

std::optional<std::size_t> HostMap::owner_of(
    std::uint32_t pid) const noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (pid >= entries_[i].lo && pid <= entries_[i].hi) return i;
  }
  return std::nullopt;
}

void HostMap::validate() const {
  if (entries_.empty()) {
    throw std::invalid_argument("host map: no entries");
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const HostEntry& e = entries_[i];
    if (e.lo > e.hi) {
      throw std::invalid_argument("host map: inverted range in entry " +
                                  std::to_string(i));
    }
    if (e.client && e.lo != e.hi) {
      throw std::invalid_argument(
          "host map: client entry " + std::to_string(i) +
          " must cover exactly one PID");
    }
    if (e.host.empty()) {
      throw std::invalid_argument("host map: empty host in entry " +
                                  std::to_string(i));
    }
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      const HostEntry& o = entries_[j];
      if (e.lo <= o.hi && o.lo <= e.hi) {
        throw std::invalid_argument(
            "host map: entries " + std::to_string(i) + " and " +
            std::to_string(j) + " overlap");
      }
    }
  }
}

// ---- Transport -----------------------------------------------------------

Transport::Transport(HostMap hosts, std::size_t self, TransportConfig cfg)
    : hosts_(std::move(hosts)),
      self_(self),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()) {
  hosts_.validate();
  if (self_ >= hosts_.size()) {
    throw std::invalid_argument("transport: self index out of range");
  }
  links_.resize(hosts_.size());
  for (OutLink& l : links_) {
    l.backoff = Backoff(cfg_.backoff_base, cfg_.backoff_factor,
                        cfg_.backoff_cap);
  }
}

Transport::~Transport() { close(); }

double Transport::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Transport::bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket(listen)");
  set_nonblocking(listen_fd_);
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hosts_.entry(self_).port);
  if (inet_pton(AF_INET, hosts_.entry(self_).host.c_str(),
                &addr.sin_addr) != 1) {
    throw std::invalid_argument("transport: bad self host '" +
                                hosts_.entry(self_).host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 64) != 0) throw_errno("listen");
  // Read the real port back (the map may say 0 = ephemeral).
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  reactor_.add(listen_fd_, EPOLLIN,
               [this](std::uint32_t) { on_accept_ready(); });
}

void Transport::connect_all() {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i == self_) continue;
    start_connect(i);
  }
}

void Transport::start_connect(std::size_t index) {
  OutLink& l = links_[index];
  l.attempted = true;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(connect)");
  set_nonblocking(fd);
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hosts_.entry(index).port);
  if (inet_pton(AF_INET, hosts_.entry(index).host.c_str(),
                &addr.sin_addr) != 1) {
    close_quiet(fd);
    throw std::invalid_argument("transport: bad host '" +
                                hosts_.entry(index).host + "'");
  }
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    // Immediate refusal (no listener yet): schedule a retry.
    close_quiet(fd);
    l.fd = -1;
    l.state = LinkState::kIdle;
    l.retry_at = now_s() + l.backoff.next();
    return;
  }
  l.fd = fd;
  l.state = LinkState::kConnecting;
  reactor_.add(fd, EPOLLOUT, [this, index](std::uint32_t events) {
    on_connect_ready(index, events);
  });
}

void Transport::on_connect_ready(std::size_t index, std::uint32_t events) {
  OutLink& l = links_[index];
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    fail_link(index);
    return;
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (getsockopt(l.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    fail_link(index);
    return;
  }
  l.state = LinkState::kConnected;
  ++stats_.connects;
  if (l.ever_connected) ++stats_.reconnects;
  l.ever_connected = true;
  l.backoff.reset();
  // Swap the connect-completion callback for the steady-state one:
  // EPOLLIN detects peer close (the peer never writes on this socket);
  // EPOLLOUT only while the queue has bytes to flush.
  reactor_.remove(l.fd);
  reactor_.add(l.fd,
               EPOLLIN | (queued_bytes(l) > 0 ? EPOLLOUT : 0u),
               [this, index](std::uint32_t ev) {
                 on_out_readable(index, ev);
               });
  flush(index);
}

void Transport::on_out_readable(std::size_t index, std::uint32_t events) {
  OutLink& l = links_[index];
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    fail_link(index);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    // The protocol is unidirectional on this socket: readable means EOF
    // (peer closed) or an error. Drain and treat any result as a drop.
    std::uint8_t scratch[256];
    const ssize_t n = ::recv(l.fd, scratch, sizeof scratch, 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      fail_link(index);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) flush(index);
}

void Transport::fail_link(std::size_t index) {
  OutLink& l = links_[index];
  if (l.fd >= 0) {
    reactor_.remove(l.fd);
    close_quiet(l.fd);
    l.fd = -1;
  }
  if (l.state == LinkState::kConnected) ++stats_.disconnects;
  l.state = LinkState::kIdle;
  // Keep the queued bytes: they flush after the reconnect. The cap still
  // bounds memory; new sends over cap keep dropping-newest meanwhile.
  l.retry_at = now_s() + l.backoff.next();
}

void Transport::flush(std::size_t index) {
  OutLink& l = links_[index];
  while (queued_bytes(l) > 0) {
    const ssize_t n =
        ::send(l.fd, l.queue.data() + l.queue_head, queued_bytes(l),
               MSG_NOSIGNAL);
    if (n > 0) {
      l.queue_head += static_cast<std::size_t>(n);
      stats_.bytes_out += n;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    fail_link(index);
    return;
  }
  if (queued_bytes(l) == 0) {
    l.queue.clear();
    l.queue_head = 0;
  } else if (l.queue_head > (std::size_t{64} << 10)) {
    // Compact a long-consumed prefix so the vector doesn't grow without
    // bound across partial flushes.
    l.queue.erase(l.queue.begin(),
                  l.queue.begin() +
                      static_cast<std::ptrdiff_t>(l.queue_head));
    l.queue_head = 0;
  }
  update_out_interest(index);
}

void Transport::update_out_interest(std::size_t index) {
  OutLink& l = links_[index];
  if (l.fd < 0 || l.state != LinkState::kConnected) return;
  reactor_.modify(l.fd,
                  EPOLLIN | (queued_bytes(l) > 0 ? EPOLLOUT : 0u));
}

bool Transport::send(core::Pid to, const proto::WireBuffer& wire) {
  const std::optional<std::size_t> owner = hosts_.owner_of(to.value());
  if (!owner.has_value() || *owner == self_) {
    ++stats_.unroutable_dropped;
    return false;
  }
  OutLink& l = links_[*owner];
  if (queued_bytes(l) + wire.size() > cfg_.write_queue_cap) {
    // Backpressure: drop-newest, counted. The peer/client retry layer
    // treats this exactly like simulated wire loss.
    ++stats_.overflow_dropped;
    return false;
  }
  l.queue.insert(l.queue.end(), wire.begin(), wire.end());
  ++stats_.frames_out;
  if (l.state == LinkState::kConnected) flush(*owner);
  return true;
}

int Transport::poll(int timeout_ms) {
  // Clamp the wait to the nearest reconnect deadline so a sleeping
  // process still retries on time.
  const double now = now_s();
  double wait_s =
      timeout_ms < 0 ? 3600.0 : static_cast<double>(timeout_ms) / 1000.0;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i == self_) continue;
    const OutLink& l = links_[i];
    if (l.state == LinkState::kIdle && l.fd < 0 && l.attempted) {
      wait_s = std::min(wait_s, std::max(0.0, l.retry_at - now));
    }
  }
  const int dispatched =
      reactor_.poll(static_cast<int>(wait_s * 1000.0));
  // Run due reconnects.
  const double after = now_s();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i == self_) continue;
    OutLink& l = links_[i];
    if (l.state == LinkState::kIdle && l.fd < 0 && l.attempted &&
        l.retry_at <= after) {
      start_connect(i);
    }
  }
  return dispatched;
}

bool Transport::connected_to(std::size_t i) const {
  return links_.at(i).state == LinkState::kConnected;
}

bool Transport::fully_connected() const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i == self_) continue;
    if (links_[i].state != LinkState::kConnected) return false;
  }
  return true;
}

void Transport::on_accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays up
    }
    const int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++stats_.accepts;
    inbound_.push_back(InConn{fd, FrameReassembler(cfg_.ring_capacity)});
    reactor_.add(fd, EPOLLIN, [this, fd](std::uint32_t events) {
      on_in_readable(fd, events);
    });
  }
}

void Transport::on_in_readable(int fd, std::uint32_t events) {
  const auto it =
      std::find_if(inbound_.begin(), inbound_.end(),
                   [fd](const InConn& c) { return c.fd == fd; });
  if (it == inbound_.end()) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
    close_in(fd);
    return;
  }
  // Scatter-read into the ring's (up to two) free regions, then pop
  // every complete frame. Level-triggered epoll re-arms us if the ring
  // filled before the socket drained.
  RingBuffer& ring = it->frames.ring();
  const auto spans = ring.write_spans();
  iovec iov[2];
  int iovcnt = 0;
  for (const auto& s : spans) {
    if (s.empty()) continue;
    iov[iovcnt].iov_base = s.data();
    iov[iovcnt].iov_len = s.size();
    ++iovcnt;
  }
  if (iovcnt == 0) {
    // Ring full: drain complete frames to free space; the level-triggered
    // reactor re-fires and the next pass reads again.
    proto::WireBuffer full_wire;
    while (it->frames.next_frame(full_wire)) {
      ++stats_.frames_in;
      if (on_frame_) on_frame_(full_wire);
    }
    return;
  }
  const ssize_t n = ::readv(fd, iov, iovcnt);
  if (n == 0) {
    close_in(fd);
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_in(fd);
    return;
  }
  ring.commit(static_cast<std::size_t>(n));
  stats_.bytes_in += n;
  proto::WireBuffer wire;
  while (it->frames.next_frame(wire)) {
    ++stats_.frames_in;
    if (on_frame_) on_frame_(wire);
  }
}

void Transport::close_in(int fd) {
  reactor_.remove(fd);
  close_quiet(fd);
  ++stats_.disconnects;
  inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                [fd](const InConn& c) { return c.fd == fd; }),
                 inbound_.end());
}

void Transport::close() {
  if (listen_fd_ >= 0) {
    reactor_.remove(listen_fd_);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
  }
  for (OutLink& l : links_) {
    if (l.fd >= 0) {
      reactor_.remove(l.fd);
      close_quiet(l.fd);
      l.fd = -1;
    }
    l.state = LinkState::kIdle;
  }
  for (InConn& c : inbound_) {
    reactor_.remove(c.fd);
    close_quiet(c.fd);
  }
  inbound_.clear();
}

}  // namespace lesslog::net
