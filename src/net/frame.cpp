#include "lesslog/net/frame.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace lesslog::net {

RingBuffer::RingBuffer(std::size_t capacity)
    : buf_(std::bit_ceil(std::max<std::size_t>(capacity, 64))) {}

std::array<std::span<std::uint8_t>, 2> RingBuffer::write_spans() noexcept {
  const std::size_t mask = buf_.size() - 1;
  const std::size_t tail = (head_ + size_) & mask;
  const std::size_t free = free_space();
  // First region: from the tail to the end of the array (or the head,
  // whichever is closer); second: the wrapped remainder at the front.
  const std::size_t first = std::min(free, buf_.size() - tail);
  return {std::span<std::uint8_t>(buf_.data() + tail, first),
          std::span<std::uint8_t>(buf_.data(), free - first)};
}

void RingBuffer::commit(std::size_t n) noexcept {
  assert(n <= free_space());
  size_ += n;
}

std::size_t RingBuffer::append(std::span<const std::uint8_t> bytes) noexcept {
  const auto spans = write_spans();
  const std::size_t take0 = std::min(bytes.size(), spans[0].size());
  std::memcpy(spans[0].data(), bytes.data(), take0);
  const std::size_t take1 =
      std::min(bytes.size() - take0, spans[1].size());
  if (take1 > 0) std::memcpy(spans[1].data(), bytes.data() + take0, take1);
  commit(take0 + take1);
  return take0 + take1;
}

bool RingBuffer::pop(std::uint8_t* dst, std::size_t n) noexcept {
  if (size_ < n) return false;
  const std::size_t mask = buf_.size() - 1;
  const std::size_t first = std::min(n, buf_.size() - head_);
  std::memcpy(dst, buf_.data() + head_, first);
  if (first < n) std::memcpy(dst + first, buf_.data(), n - first);
  head_ = (head_ + n) & mask;
  size_ -= n;
  return true;
}

bool FrameReassembler::next_frame(proto::WireBuffer& out) noexcept {
  if (!ring_.pop(out.data(), proto::kWireSize)) return false;
  ++frames_;
  return true;
}

}  // namespace lesslog::net
