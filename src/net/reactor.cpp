#include "lesslog/net/reactor.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <system_error>

namespace lesslog::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Reactor::Reactor() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {
  if (epfd_ < 0) throw_errno("epoll_create1");
}

Reactor::~Reactor() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Reactor::add(int fd, std::uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  callbacks_[fd] = std::make_shared<Callback>(std::move(cb));
}

void Reactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void Reactor::remove(int fd) {
  const auto it = callbacks_.find(fd);
  if (it == callbacks_.end()) return;
  // The fd may already be closed (EBADF) — deregistration still counts.
  (void)epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(it);
}

int Reactor::poll(int timeout_ms) {
  std::array<epoll_event, 64> ready;
  const int n = epoll_wait(epfd_, ready.data(),
                           static_cast<int>(ready.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = ready[static_cast<std::size_t>(i)].data.fd;
    // An earlier callback this round may have removed this fd — skip.
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    // Pin the callback: it stays alive even if the call removes the fd.
    const std::shared_ptr<Callback> cb = it->second;
    (*cb)(ready[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace lesslog::net
