// The individual policies live in their own translation units; this TU
// exists so the library has a stable home for shared policy helpers as the
// set grows.
#include "lesslog/baseline/policy.hpp"

namespace lesslog::baseline {}
