#include "lesslog/baseline/policy.hpp"

#include "lesslog/core/replication.hpp"

namespace lesslog::baseline {

sim::PlacementFn lesslog_policy() {
  return [](const sim::PlacementContext& ctx) -> std::optional<core::Pid> {
    const auto holds = [&ctx](core::Pid p) {
      return ctx.has_copy[p.value()] != 0;
    };
    if (ctx.view.fault_bits() == 0) {
      const std::optional<core::Placement> placement = core::replicate_target(
          ctx.tree, ctx.overloaded, ctx.live, holds, ctx.rng);
      if (!placement.has_value()) return std::nullopt;
      return placement->target;
    }
    return ctx.view.replicate_target(ctx.overloaded, ctx.live, holds,
                                     ctx.rng);
  };
}

}  // namespace lesslog::baseline
