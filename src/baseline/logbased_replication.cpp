#include "lesslog/baseline/policy.hpp"

#include <cmath>

#include "lesslog/core/children_list.hpp"
#include "lesslog/core/replication.hpp"

namespace lesslog::baseline {

namespace {

// Shared selection core: rank copyless children-list entries by an
// observed flow value, falling back to the structural order when nothing
// measurably forwards.
std::optional<core::Pid> pick_by_flow(
    const sim::PlacementContext& ctx,
    const std::function<double(double)>& observe) {
  const std::vector<core::Pid> candidates =
      ctx.view.fault_bits() == 0
          ? core::children_list(ctx.tree, ctx.overloaded, ctx.live)
          : ctx.view.children_list(ctx.overloaded, ctx.live);

  std::optional<core::Pid> best;
  double best_flow = 0.0;
  const sim::LoadReport& load = ctx.load();
  for (core::Pid c : candidates) {
    if (ctx.has_copy[c.value()] != 0) continue;
    const double flow = observe(load.forwarded[c.value()]);
    if (flow > best_flow) {
      best_flow = flow;
      best = c;
    }
  }
  if (best.has_value()) return best;
  for (core::Pid c : candidates) {
    if (ctx.has_copy[c.value()] == 0) return c;
  }
  return std::nullopt;
}

}  // namespace

sim::PlacementFn sampled_log_policy(double sample_rate, double window) {
  return [sample_rate,
          window](const sim::PlacementContext& ctx) -> std::optional<core::Pid> {
    return pick_by_flow(ctx, [&ctx, sample_rate, window](double flow) {
      if (flow <= 0.0) return 0.0;
      // Estimating a rate `flow` from a log that records each request
      // with probability p over W seconds: the count is ~ Poisson(flow *
      // p * W), so the rate estimate flow ± sqrt(flow / (p * W)).
      const double stddev = std::sqrt(flow / (sample_rate * window));
      return std::max(0.0, ctx.rng.normal(flow, stddev));
    });
  };
}

sim::PlacementFn logbased_policy() {
  // A children-list entry's forward rate is exactly the flow it sends to
  // the overloaded node: in the GETFILE walk every request a child cannot
  // serve goes to its first alive ancestor, which for a children-list
  // member is ctx.overloaded. The solver's `forwarded` vector therefore
  // *is* the perfectly analyzed client-access log.
  return [](const sim::PlacementContext& ctx) -> std::optional<core::Pid> {
    return pick_by_flow(ctx, [](double flow) { return flow; });
  };
}

}  // namespace lesslog::baseline
