#include "lesslog/baseline/chord.hpp"

#include <algorithm>
#include <cassert>

namespace lesslog::baseline {

ChordRing::ChordRing(const util::LivenessView& view)
    : m_(view.width()), ring_(util::space_size(view.width())) {
  nodes_ = view.word().live_pids();
  assert(!nodes_.empty() && "Chord ring needs at least one node");
  node_index_.assign(ring_, 0);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    node_index_[nodes_[i]] = i;
  }
  finger_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    finger_[i].resize(static_cast<std::size_t>(m_));
    for (int j = 0; j < m_; ++j) {
      const std::uint32_t start =
          (nodes_[i] + (std::uint32_t{1} << j)) & (ring_ - 1u);
      finger_[i][static_cast<std::size_t>(j)] = successor(start);
    }
  }
}

std::uint32_t ChordRing::successor(std::uint32_t id) const {
  // nodes_ is sorted; the successor is the first element >= id, wrapping
  // to the smallest node.
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), id);
  return it != nodes_.end() ? *it : nodes_.front();
}

bool ChordRing::in_interval(std::uint32_t x, std::uint32_t a, std::uint32_t b,
                            std::uint32_t ring) noexcept {
  // Clockwise half-open interval (a, b] on a ring of the given size.
  const std::uint32_t span = (b - a) & (ring - 1u);
  const std::uint32_t off = (x - a) & (ring - 1u);
  if (span == 0) return true;  // full circle
  return off != 0 && off <= span;
}

const std::vector<std::uint32_t>& ChordRing::fingers(
    std::uint32_t node) const {
  return finger_[node_index_[node]];
}

std::vector<std::uint32_t> ChordRing::lookup_path(std::uint32_t from,
                                                  std::uint32_t key) const {
  assert(from < ring_ && key < ring_);
  const std::uint32_t responsible = successor(key);
  std::vector<std::uint32_t> path{from};
  std::uint32_t current = from;
  while (current != responsible) {
    // If the key lies between us and our direct successor, that successor
    // is responsible: final hop.
    const std::uint32_t succ = fingers(current)[0];
    if (in_interval(key, current, succ, ring_)) {
      path.push_back(succ);
      break;
    }
    // Otherwise forward to the closest finger preceding the key.
    std::uint32_t next = succ;
    const std::vector<std::uint32_t>& table = fingers(current);
    for (std::size_t j = table.size(); j-- > 0;) {
      const std::uint32_t candidate = table[j];
      if (candidate != current &&
          in_interval(candidate, current, (key - 1u) & (ring_ - 1u), ring_)) {
        next = candidate;
        break;
      }
    }
    if (next == current) break;  // lone node
    path.push_back(next);
    current = next;
  }
  return path;
}

int ChordRing::lookup_hops(std::uint32_t from, std::uint32_t key) const {
  return static_cast<int>(lookup_path(from, key).size()) - 1;
}

}  // namespace lesslog::baseline
