#include "lesslog/baseline/policy.hpp"

#include "lesslog/util/bits.hpp"

namespace lesslog::baseline {

sim::PlacementFn random_policy() {
  return [](const sim::PlacementContext& ctx) -> std::optional<core::Pid> {
    // Uniform choice over the live nodes that could take a copy. The
    // candidate set is `live & ~copy` minus the overloaded node itself,
    // in ascending PID order either way.
    const std::uint32_t over = ctx.overloaded.value();
    if (ctx.copy_bits != nullptr) {
      // Packed scan: count candidates word by word, draw the pick, then
      // select the pick-th set bit — identical to materialising the
      // ascending candidate list and indexing it.
      const std::uint64_t* live_w = ctx.live.words();
      const std::uint64_t* copy_w = ctx.copy_bits->words();
      const std::size_t nw = ctx.live.word_count();
      const std::size_t over_w = over >> 6;
      const std::uint64_t over_bit = std::uint64_t{1} << (over & 63u);
      std::uint64_t count = 0;
      for (std::size_t i = 0; i < nw; ++i) {
        std::uint64_t w = live_w[i] & ~copy_w[i];
        if (i == over_w) w &= ~over_bit;
        count += static_cast<std::uint64_t>(util::popcount64(w));
      }
      if (count == 0) return std::nullopt;
      std::uint64_t pick = ctx.rng.bounded(count);
      for (std::size_t i = 0; i < nw; ++i) {
        std::uint64_t w = live_w[i] & ~copy_w[i];
        if (i == over_w) w &= ~over_bit;
        const auto c = static_cast<std::uint64_t>(util::popcount64(w));
        if (pick < c) {
          return core::Pid{static_cast<std::uint32_t>(
              (i << 6) + static_cast<std::size_t>(util::select_bit64(
                             w, static_cast<int>(pick))))};
        }
        pick -= c;
      }
      return std::nullopt;  // unreachable: pick < count
    }
    // Byte-map fallback for contexts without a packed mirror.
    std::vector<std::uint32_t> candidates;
    candidates.reserve(ctx.live.live_count());
    for (std::uint32_t p = 0; p < ctx.live.capacity(); ++p) {
      if (ctx.live.is_live(p) && ctx.has_copy[p] == 0 && p != over) {
        candidates.push_back(p);
      }
    }
    if (candidates.empty()) return std::nullopt;
    const std::uint64_t pick = ctx.rng.bounded(candidates.size());
    return core::Pid{candidates[pick]};
  };
}

}  // namespace lesslog::baseline
