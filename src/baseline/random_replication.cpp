#include "lesslog/baseline/policy.hpp"

namespace lesslog::baseline {

sim::PlacementFn random_policy() {
  return [](const sim::PlacementContext& ctx) -> std::optional<core::Pid> {
    // Collect the live nodes that could take a copy; uniform choice.
    std::vector<std::uint32_t> candidates;
    candidates.reserve(ctx.live.live_count());
    for (std::uint32_t p = 0; p < ctx.live.capacity(); ++p) {
      if (ctx.live.is_live(p) && ctx.has_copy[p] == 0 &&
          p != ctx.overloaded.value()) {
        candidates.push_back(p);
      }
    }
    if (candidates.empty()) return std::nullopt;
    const std::uint64_t pick = ctx.rng.bounded(candidates.size());
    return core::Pid{candidates[pick]};
  };
}

}  // namespace lesslog::baseline
