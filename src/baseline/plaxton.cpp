#include "lesslog/baseline/plaxton.hpp"

#include <algorithm>
#include <cassert>

namespace lesslog::baseline {

PlaxtonMesh::PlaxtonMesh(const util::LivenessView& view, int bits_per_digit)
    : m_(view.width()),
      bits_(bits_per_digit),
      digits_((view.width() + bits_per_digit - 1) / bits_per_digit),
      nodes_(view.word().live_pids()) {
  assert(bits_per_digit >= 1 && bits_per_digit <= 8);
  assert(!nodes_.empty() && "prefix mesh needs at least one node");
}

std::uint32_t PlaxtonMesh::digit(std::uint32_t id, int pos) const {
  assert(pos >= 0 && pos < digits_);
  // Conceptually ids are padded to digits_*bits_ bits; pad bits are zero.
  const int shift = (digits_ - 1 - pos) * bits_;
  return (id >> shift) & ((1u << bits_) - 1u);
}

int PlaxtonMesh::common_prefix(std::uint32_t a, std::uint32_t b) const {
  int p = 0;
  while (p < digits_ && digit(a, p) == digit(b, p)) ++p;
  return p;
}

std::optional<std::uint32_t> PlaxtonMesh::prefix_match(
    std::uint32_t key, int pos, std::uint32_t d) const {
  // Ids whose first `pos` digits match key's and whose digit at `pos` is
  // `d` occupy the numeric interval [lo, lo + 2^remaining).
  const int remaining = (digits_ - 1 - pos) * bits_;
  const std::uint32_t keep_mask =
      remaining + bits_ >= 32
          ? 0u
          : ~((1u << (remaining + bits_)) - 1u);
  const std::uint32_t lo = (key & keep_mask) | (d << remaining);
  const std::uint32_t hi = lo + (1u << remaining) - 1u;
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), lo);
  if (it == nodes_.end() || *it > hi) return std::nullopt;
  return *it;
}

std::uint32_t PlaxtonMesh::root_of(std::uint32_t key) const {
  return lookup_path(nodes_.front(), key).back();
}

std::vector<std::uint32_t> PlaxtonMesh::lookup_path(
    std::uint32_t from, std::uint32_t key) const {
  std::vector<std::uint32_t> path{from};
  std::uint32_t cur = from;
  for (;;) {
    const int p = common_prefix(cur, key);
    if (p == digits_) return path;  // exact owner
    // Try to extend the shared prefix by one digit.
    const std::optional<std::uint32_t> next =
        prefix_match(key, p, digit(key, p));
    if (next.has_value()) {
      assert(*next != cur);
      path.push_back(*next);
      cur = *next;
      continue;
    }
    // No node extends the prefix: the root is the deterministic
    // representative (smallest id) of the longest-matching class, which
    // contains cur. At most one final hop.
    std::optional<std::uint32_t> rep;
    for (std::uint32_t d = 0; d < (1u << bits_) && !rep.has_value(); ++d) {
      rep = prefix_match(key, p, d);
      // Scanning digits ascending finds the smallest id in the class
      // (ranges are ordered by digit).
    }
    assert(rep.has_value());  // cur itself is in the class
    if (*rep != cur) path.push_back(*rep);
    return path;
  }
}

}  // namespace lesslog::baseline
