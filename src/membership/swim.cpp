#include "lesslog/membership/swim.hpp"

#include <algorithm>
#include <cassert>

namespace lesslog::membership {

namespace {

/// Odd 64-bit multiplier (splitmix64's increment) decorrelating the
/// per-agent RNG streams; any fixed odd constant works.
constexpr std::uint64_t kStreamMix = 0x9E3779B97F4A7C15ULL;

/// Deterministic tick phase in (0, 1): a pure function of the PID, so an
/// agent's tick times are identical for every shard count, yet the fleet
/// staggers instead of synchronizing every probe on period boundaries.
double tick_phase(std::uint32_t pid) {
  const std::uint32_t h = pid * 2654435761u;  // Fibonacci hashing
  return (static_cast<double>(h & 0xFFFu) + 1.0) / 4098.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// SwimAgent

SwimAgent::SwimAgent(SwimRuntime& runtime, proto::Peer& peer,
                     sim::Engine& engine, const obs::WireMetrics* metrics)
    : runtime_(&runtime),
      peer_(&peer),
      engine_(&engine),
      metrics_(metrics),
      // Seed the belief from whatever the peer already believed (O(1)
      // aliasing snapshot) — attach must not teleport knowledge in.
      view_(peer.liveness().snapshot()),
      rng_(runtime.config().seed ^
           ((peer.pid().value() + 1ULL) * kStreamMix)),
      // Stripe probe ids per agent so correlation ids never collide with
      // another agent's (same scheme as Peer's push ids).
      next_probe_id_((std::uint64_t{0x5717ULL} << 48) |
                     (std::uint64_t{peer.pid().value()} << 20)) {
  enqueue_gossip(pid().value(), kAlive, self_incarnation_);
}

SwimAgent::Member& SwimAgent::member(std::uint32_t p) {
  return members_[p];  // default: alive at incarnation 0
}

void SwimAgent::enable() {
  ++generation_;  // invalidate timers from the previous life
  enabled_ = true;
  ticking_ = false;
  outstanding_ = false;
  tick_k_ = -1;  // re-anchor the grid at the (barrier-aligned) enable time
  period_index_ = 0;
  // A reincarnation must outrank every piece of gossip about the previous
  // life, including its confirmed death.
  ++self_incarnation_;
  members_.clear();
  view_.clear_suspects();
  gossip_queue_.clear();
  dead_cursor_ = 0;
  enqueue_gossip(pid().value(), kAlive, self_incarnation_);
}

void SwimAgent::disable() {
  ++generation_;
  enabled_ = false;
  ticking_ = false;
  outstanding_ = false;
  members_.clear();
  view_.clear_suspects();
  gossip_queue_.clear();
}

void SwimAgent::start_ticking() {
  if (!enabled_ || ticking_) return;
  const double period = runtime_->config().period;
  const double phase = period * tick_phase(pid().value());
  // Absolute tick grid: this agent's k-th tick fires at k*period + phase,
  // a pure function of (pid, period). Anchoring each (re)start on the
  // shard's own clock instead would shift the grid by the shard's private
  // post-settle quiescence point — and with it every probe, ack, and
  // confirm time — making the whole detection trace depend on the shard
  // layout. The clock is consulted only to *anchor* (find the first
  // future grid point), and callers reach an unanchored agent only at
  // top-level barriers, where every shard clock equals the barrier time.
  if (tick_k_ < 0) {
    const double now = engine_->now();
    std::int64_t k =
        now <= phase ? 0 : static_cast<std::int64_t>((now - phase) / period);
    while (static_cast<double>(k) * period + phase <= now) ++k;
    tick_k_ = k;
  }
  // Resume may find the stored slot already behind the clock: the agent
  // went quiet at the old horizon, but the settle that followed drained
  // in-flight timer chains well past it. Skip to the first future slot —
  // scheduling a tick into the past would fire it out of time order (and
  // push its deliveries into other shards' pasts), in a way that depends
  // on how far each shard's clock ran. The clock read here is barrier-
  // aligned (run_until edge or the fleet-wide quiesce point), so the
  // number of skipped slots is identical at any shard count.
  while (static_cast<double>(tick_k_) * period + phase <= engine_->now()) {
    ++tick_k_;
  }
  const double t = static_cast<double>(tick_k_) * period + phase;
  if (t > runtime_->horizon()) return;
  ticking_ = true;
  const std::uint64_t gen = generation_;
  engine_->at(t, [this, gen] {
    if (generation_ == gen) tick();
  });
}

void SwimAgent::tick() {
  if (!enabled_) return;
  // 1. Resolve the previous period's probe: unanswered (direct and
  //    indirect) means the target becomes suspect.
  if (outstanding_ && !acked_) start_suspect(outstanding_target_);
  outstanding_ = false;
  ++period_index_;
  // 2. Suspects whose refutation window elapsed are confirmed dead.
  //    Ordered map: the confirm order (and so the message order) is a
  //    pure function of the PIDs, not of heap addresses.
  for (auto& [p, mm] : members_) {
    if (mm.state == kSuspect &&
        period_index_ - mm.suspect_period >=
            runtime_->config().suspect_periods) {
      confirm(p, mm);
    }
  }
  // 3. Probe one uniformly random believed-alive member.
  probe();
  // 3b. Dead-node reclaim: periodically ping a believed-dead member. A
  //     genuinely dead target costs one undeliverable datagram; a falsely
  //     confirmed one (partition casualty) answers, and the ack's direct
  //     evidence resurrects it on our side while our ping resurrects us
  //     on theirs — the only path that re-merges a healed split.
  if (period_index_ % runtime_->config().dead_probe_periods == 0) {
    probe_dead();
  }
  // 4. Bounded rescheduling on the absolute grid: past the armed horizon
  //    the agent goes quiet so settle() terminates. tick_k_ keeps pointing
  //    at the skipped slot, so the next arm() resumes the same grid
  //    without consulting the shard's (layout-dependent) idle clock.
  const double period = runtime_->config().period;
  const double phase = period * tick_phase(pid().value());
  ++tick_k_;
  const double t = static_cast<double>(tick_k_) * period + phase;
  if (t <= runtime_->horizon()) {
    const std::uint64_t gen = generation_;
    engine_->at(t, [this, gen] {
      if (generation_ == gen) tick();
    });
  } else {
    ticking_ = false;
  }
}

void SwimAgent::probe() {
  const std::optional<core::Pid> target = pick_live(pid(), pid());
  if (!target.has_value()) return;
  outstanding_ = true;
  acked_ = false;
  outstanding_target_ = target->value();
  outstanding_id_ = next_probe_id_++;
  send_ping(*target, pid(), outstanding_id_);
  // Direct-ack deadline: still unanswered then -> indirect probes through
  // k proxies. Fixed delay, generation-guarded against rejoin cycles.
  const std::uint64_t gen = generation_;
  const std::uint64_t id = outstanding_id_;
  engine_->after_fixed(runtime_->config().direct_timeout, [this, gen, id] {
    if (generation_ != gen || !enabled_) return;
    if (!outstanding_ || acked_ || outstanding_id_ != id) return;
    send_ping_reqs();
  });
}

void SwimAgent::probe_dead() {
  const util::StatusWord& w = view_.word();
  const std::uint32_t space = util::space_size(w.width());
  // Deterministic rotation, not sampling: every believed-dead pid gets a
  // reclaim ping once per |dead| reclaim periods, so a healed partition
  // re-merges within a bounded number of protocol periods. Random
  // contact is not enough here — a falsely-confirmed pair whose dead
  // record carries a unique incarnation can only heal by direct contact
  // (no third party's gossip outranks it), and hundreds of such pairs
  // each waiting on an independent coin flip leaves stragglers long
  // after the partition closed.
  for (std::uint32_t i = 0; i < space; ++i) {
    const std::uint32_t p = (dead_cursor_ + i) % space;
    if (p != pid().value() && !w.is_live(p)) {
      dead_cursor_ = (p + 1) % space;
      send_ping(core::Pid{p}, pid(), next_probe_id_++);
      return;
    }
  }
}

void SwimAgent::send_ping(core::Pid to, core::Pid origin,
                          std::uint64_t probe_id) {
  proto::Message ping;
  ping.request_id = probe_id;
  ping.type = proto::MsgType::kPing;
  ping.from = pid();
  ping.to = to;
  ping.requester = origin;  // acks go straight back to the origin
  ping.subject = to;
  attach_payload(ping);
  ++tally_.pings;
  peer_->network().send(ping);
}

void SwimAgent::send_ping_reqs() {
  const core::Pid target{outstanding_target_};
  // Up to k distinct proxies, alive-believed, neither self nor target.
  std::vector<std::uint32_t> chosen;
  const int want = runtime_->config().proxies;
  for (int attempt = 0; attempt < want * 8; ++attempt) {
    if (static_cast<int>(chosen.size()) >= want) break;
    const std::optional<core::Pid> proxy = pick_live(pid(), target);
    if (!proxy.has_value()) break;
    bool duplicate = false;
    for (const std::uint32_t c : chosen) duplicate |= (c == proxy->value());
    if (duplicate) continue;
    chosen.push_back(proxy->value());
  }
  for (const std::uint32_t proxy : chosen) {
    proto::Message req;
    req.request_id = outstanding_id_;
    req.type = proto::MsgType::kPingReq;
    req.from = pid();
    req.to = core::Pid{proxy};
    req.requester = pid();   // origin: the relayed ack's destination
    req.subject = target;    // who the proxy should ping
    attach_payload(req);
    ++tally_.ping_reqs;
    peer_->network().send(req);
  }
}

void SwimAgent::send_ack(const proto::Message& ping) {
  proto::Message ack;
  ack.request_id = ping.request_id;
  ack.type = proto::MsgType::kPingAck;
  ack.from = pid();
  ack.to = ping.requester;  // direct or relayed: always the origin
  ack.requester = ping.requester;
  ack.subject = pid();
  ack.ok = true;
  attach_payload(ack);
  ++tally_.acks;
  peer_->network().send(ack);
}

void SwimAgent::attach_payload(proto::Message& m) {
  Gossip g{pid().value(), kAlive, self_incarnation_, 0};
  if (!gossip_queue_.empty()) {
    g = gossip_queue_.front();
    gossip_queue_.pop_front();
    if (--g.remaining > 0) gossip_queue_.push_back(g);
  }
  // No queued update: the default payload re-spreads our own aliveness
  // (and current incarnation) — SWIM's standing anti-entropy.
  m.file = core::FileId{pack_gossip(g.pid, g.state)};
  m.version = g.incarnation;
  tally_.gossip_bytes += 16;  // file + version fields
  LESSLOG_METRICS(
      if (metrics_ != nullptr) metrics_->swim_gossip_bytes->add(16));
}

void SwimAgent::enqueue_gossip(std::uint32_t p, State state,
                               std::uint64_t inc) {
  gossip_queue_.push_back(
      Gossip{p, state, inc, runtime_->config().gossip_repeats});
}

void SwimAgent::start_suspect(std::uint32_t p) {
  Member& mm = member(p);
  if (mm.state != kAlive) return;  // already suspect or dead
  mm.state = kSuspect;
  mm.suspect_period = period_index_;
  view_.set_suspected(p, true);
  ++tally_.suspects;
  if (runtime_->truth_live(p)) ++tally_.false_suspects;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->swim_suspects->inc());
  enqueue_gossip(p, kSuspect, mm.incarnation);
}

void SwimAgent::confirm(std::uint32_t p, Member& mm) {
  mm.state = kDead;
  view_.set_suspected(p, false);  // doubt resolved: the bitmap flips instead
  ++tally_.confirms;
  const bool false_confirm = runtime_->truth_live(p);
  if (false_confirm) ++tally_.false_confirms;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->swim_confirms->inc());
  enqueue_gossip(p, kDead, mm.incarnation);
  // The belief flip + Section 5.3 recovery, through the same entry point
  // the oracle's announcement path uses. Guarded: a status announce (a
  // graceful depart, say) may already have flipped the belief, and
  // recovery must run once per death, not once per evidence source.
  if (view_.is_live(p)) peer_->learn_dead(core::Pid{p});
  confirm_log_.push_back(
      ConfirmEvent{engine_->now(), p, pid().value(), false_confirm});
}

void SwimAgent::apply_gossip(std::uint32_t p, State state,
                             std::uint64_t inc) {
  if (p == pid().value()) {
    // Someone thinks we are suspect/dead. Refute with a fresher
    // incarnation; the bumped alive update spreads via the queue.
    if (state != kAlive && inc >= self_incarnation_) {
      self_incarnation_ = inc + 1;
      ++tally_.incarnation_bumps;
      ++tally_.refutations;
      LESSLOG_METRICS(if (metrics_ != nullptr) {
        metrics_->swim_incarnation_bumps->inc();
        metrics_->swim_refutations->inc();
      });
      enqueue_gossip(p, kAlive, self_incarnation_);
    }
    return;
  }
  Member& mm = member(p);
  switch (state) {
    case kAlive:
      // alive(i) overrides suspect(j) and dead(j) iff i > j.
      if (inc > mm.incarnation) {
        const State was = mm.state;
        mm.state = kAlive;
        mm.incarnation = inc;
        view_.set_suspected(p, false);
        if (was != kAlive) {
          ++tally_.refutations;
          LESSLOG_METRICS(
              if (metrics_ != nullptr) metrics_->swim_refutations->inc());
          if (!view_.is_live(p)) peer_->learn_live(core::Pid{p});
          enqueue_gossip(p, kAlive, inc);
        }
      }
      break;
    case kSuspect:
      // suspect(i) overrides alive(j <= i) and refreshes suspect(j < i).
      if ((mm.state == kAlive && inc >= mm.incarnation) ||
          (mm.state == kSuspect && inc > mm.incarnation)) {
        const State was = mm.state;
        mm.state = kSuspect;
        mm.incarnation = inc;
        view_.set_suspected(p, true);
        if (was == kAlive) mm.suspect_period = period_index_;
        enqueue_gossip(p, kSuspect, inc);
      }
      break;
    case kDead:
      // dead(i) is terminal for incarnation i: only alive(j > i) — a
      // reincarnation — revives the entry.
      if (mm.state != kDead && inc >= mm.incarnation) {
        mm.state = kDead;
        mm.incarnation = inc;
        view_.set_suspected(p, false);
        enqueue_gossip(p, kDead, inc);
        if (view_.is_live(p)) peer_->learn_dead(core::Pid{p});
      }
      break;
  }
}

void SwimAgent::direct_evidence_alive(core::Pid sender) {
  if (sender == pid()) return;
  // The simulated wire cannot spoof: a datagram from S proves S's process
  // was alive when it sent. Resurrect a suspected/declared-dead sender
  // with an incarnation bump so the correction outranks the stale gossip.
  Member& mm = member(sender.value());
  if (mm.state != kAlive) {
    mm.state = kAlive;
    view_.set_suspected(sender.value(), false);
    ++mm.incarnation;
    ++tally_.refutations;
    LESSLOG_METRICS(
        if (metrics_ != nullptr) metrics_->swim_refutations->inc());
    enqueue_gossip(sender.value(), kAlive, mm.incarnation);
  }
  if (!view_.is_live(sender.value())) peer_->learn_live(sender);
}

void SwimAgent::on_message(const proto::Message& m) {
  if (!enabled_) return;
  direct_evidence_alive(m.from);
  if (has_gossip(m.file.key())) {
    apply_gossip(gossip_pid(m.file.key()),
                 static_cast<State>(gossip_state(m.file.key())), m.version);
  }
  switch (m.type) {
    case proto::MsgType::kPing:
      send_ack(m);
      return;
    case proto::MsgType::kPingAck:
      if (outstanding_ && m.request_id == outstanding_id_) acked_ = true;
      return;
    case proto::MsgType::kPingReq:
      // Proxy duty: relay the probe, preserving the origin and its
      // correlation id so the target's ack reaches the origin directly.
      send_ping(m.subject, m.requester, m.request_id);
      return;
    default:
      return;  // not SWIM traffic; nothing to do
  }
}

std::optional<core::Pid> SwimAgent::pick_live(core::Pid exclude_a,
                                              core::Pid exclude_b) {
  const util::StatusWord& w = view_.word();
  const std::uint32_t space = util::space_size(w.width());
  const auto eligible = [&](std::uint32_t p) {
    return w.is_live(p) && p != exclude_a.value() && p != exclude_b.value();
  };
  // Rejection sampling with a deterministic linear fallback: cheap when
  // the space is reasonably populated, still terminating (and still a
  // pure function of the RNG stream) when it is nearly empty.
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto p = static_cast<std::uint32_t>(rng_.bounded(space));
    if (eligible(p)) return core::Pid{p};
  }
  const auto start = static_cast<std::uint32_t>(rng_.bounded(space));
  for (std::uint32_t i = 0; i < space; ++i) {
    const std::uint32_t p = (start + i) % space;
    if (eligible(p)) return core::Pid{p};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// SwimRuntime

SwimRuntime::SwimRuntime(SwimConfig cfg, int m) : cfg_(cfg), m_(m) {
  assert(cfg_.period > 0.0 && cfg_.direct_timeout > 0.0 &&
         cfg_.direct_timeout < cfg_.period);
  assert(cfg_.proxies >= 0 && cfg_.suspect_periods >= 1 &&
         cfg_.gossip_repeats >= 1 && cfg_.dead_probe_periods >= 1);
  agents_.resize(util::space_size(m_));
}

SwimRuntime::~SwimRuntime() = default;

SwimAgent& SwimRuntime::attach_peer(proto::Peer& peer, sim::Engine& engine,
                                    const obs::WireMetrics* metrics) {
  const std::uint32_t p = peer.pid().value();
  assert(p < agents_.size());
  if (!agents_[p]) {
    agents_[p] = std::make_unique<SwimAgent>(*this, peer, engine, metrics);
  }
  SwimAgent& agent = *agents_[p];
  peer.set_liveness_view(&agent.view());
  peer.set_membership_hook(&agent, [](void* ctx, const proto::Message& m) {
    static_cast<SwimAgent*>(ctx)->on_message(m);
  });
  agent.start_ticking();
  return agent;
}

void SwimRuntime::arm(double horizon) {
  if (horizon > horizon_) horizon_ = horizon;
  for (const auto& agent : agents_) {
    if (agent && agent->enabled()) agent->start_ticking();
  }
}

SwimRuntime::Tally SwimRuntime::tally() const {
  Tally sum;
  for (const auto& agent : agents_) {
    if (agent) sum += agent->tally_;
  }
  return sum;
}

std::vector<ConfirmEvent> SwimRuntime::drain_confirms() {
  std::vector<ConfirmEvent> out;
  for (const auto& agent : agents_) {
    if (!agent || agent->confirm_log_.empty()) continue;
    out.insert(out.end(), agent->confirm_log_.begin(),
               agent->confirm_log_.end());
    agent->confirm_log_.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const ConfirmEvent& a, const ConfirmEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.by < b.by;
            });
  return out;
}

bool SwimRuntime::converged(const util::StatusWord& truth) const {
  for (const auto& agent : agents_) {
    if (!agent || !agent->enabled()) continue;
    if (!(agent->view().word() == truth)) return false;
  }
  return true;
}

void SwimRuntime::on_peer(double /*time*/, core::Pid peer, bool live) {
  SwimAgent* agent = this->agent(peer);
  // A live event for a PID with no agent yet is a brand-new joiner: the
  // caller attaches it right after the join returns (the runtime cannot —
  // it holds no swarm reference).
  if (agent == nullptr) return;
  if (live) {
    agent->enable();
    agent->start_ticking();
  } else {
    agent->disable();
  }
}

}  // namespace lesslog::membership
