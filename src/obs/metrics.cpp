#include "lesslog/obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace lesslog::obs {

double LatencyHistogram::percentile(double pct) const noexcept {
  const std::int64_t n = total();
  if (n <= 0) return 0.0;
  const double clamped = std::min(std::max(pct, 0.0), 100.0);
  // Rank of the pct-th sample, 1-based (nearest-rank definition).
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(clamped / 100.0 * static_cast<double>(n))));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += bucket(i);
    if (cum >= rank) {
      return 0.5 * (bucket_lower(i) + bucket_upper(i));
    }
  }
  return 0.5 * (bucket_lower(kBucketCount - 1) + bucket_upper(kBucketCount - 1));
}

void Snapshot::merge_from(const Snapshot& other) {
  if (empty()) {
    const double keep = time;
    *this = other;
    time = keep;
    return;
  }
  assert(counters.size() == other.counters.size() &&
         gauges.size() == other.gauges.size() &&
         histograms.size() == other.histograms.size() &&
         "snapshots from differently-shaped registries cannot merge");
  for (std::size_t i = 0; i < counters.size(); ++i) {
    assert(counters[i].first == other.counters[i].first);
    counters[i].second += other.counters[i].second;
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    assert(gauges[i].first == other.gauges[i].first);
    gauges[i].second += other.gauges[i].second;
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    assert(histograms[i].first == other.histograms[i].first);
    histograms[i].second.merge(other.histograms[i].second);
  }
}

namespace {
template <typename Pairs>
auto find_named(const Pairs& pairs, std::string_view name)
    -> const typename Pairs::value_type::second_type* {
  for (const auto& [key, value] : pairs) {
    if (key == name) return &value;
  }
  return nullptr;
}
}  // namespace

const std::uint64_t* Snapshot::counter(std::string_view name) const {
  return find_named(counters, name);
}

const double* Snapshot::gauge(std::string_view name) const {
  return find_named(gauges, name);
}

const LatencyHistogram* Snapshot::histogram(std::string_view name) const {
  return find_named(histograms, name);
}

namespace {
template <typename Cell>
Cell& find_or_create(std::deque<Cell>& cells, std::vector<std::string>& names,
                     std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return cells[i];
  }
  names.emplace_back(name);
  cells.emplace_back();
  return cells.back();
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, counter_names_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, gauge_names_, name);
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, histogram_names_, name);
}

Snapshot Registry::snapshot(double time) const {
  Snapshot out;
  out.time = time;
  out.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    out.counters.emplace_back(counter_names_[i], counters_[i].value());
  }
  out.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    out.gauges.emplace_back(gauge_names_[i], gauges_[i].value());
  }
  out.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    out.histograms.emplace_back(histogram_names_[i], histograms_[i]);
  }
  return out;
}

}  // namespace lesslog::obs
