#include "lesslog/obs/sampler.hpp"

#include <cassert>
#include <ostream>
#include <sstream>

namespace lesslog::obs {

namespace {

/// Scalar columns of a snapshot, flattened in deterministic order:
/// counters, gauges, then per-histogram p50/p99/count.
std::vector<std::string> scalar_names(const Snapshot& s) {
  std::vector<std::string> names;
  for (const auto& [name, value] : s.counters) names.push_back(name);
  for (const auto& [name, value] : s.gauges) names.push_back(name);
  for (const auto& [name, hist] : s.histograms) {
    names.push_back(name + ".p50_ms");
    names.push_back(name + ".p99_ms");
    names.push_back(name + ".count");
  }
  return names;
}

std::vector<double> scalar_values(const Snapshot& s) {
  std::vector<double> values;
  for (const auto& [name, value] : s.counters) {
    values.push_back(static_cast<double>(value));
  }
  for (const auto& [name, value] : s.gauges) values.push_back(value);
  for (const auto& [name, hist] : s.histograms) {
    values.push_back(1000.0 * hist.percentile(50.0));
    values.push_back(1000.0 * hist.percentile(99.0));
    values.push_back(static_cast<double>(hist.total()));
  }
  return values;
}

/// One named scalar of a snapshot (0 when absent); histogram names
/// resolve to their p50 in ms.
double scalar_of(const Snapshot& s, const std::string& column) {
  if (const std::uint64_t* c = s.counter(column)) {
    return static_cast<double>(*c);
  }
  if (const double* g = s.gauge(column)) return *g;
  if (const LatencyHistogram* h = s.histogram(column)) {
    return 1000.0 * h->percentile(50.0);
  }
  const std::vector<std::string> names = scalar_names(s);
  const std::vector<double> values = scalar_values(s);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == column) return values[i];
  }
  return 0.0;
}

}  // namespace

util::Table TimeSeries::to_table(
    const std::vector<std::string>& columns) const {
  std::vector<std::string> headers{"t (s)"};
  headers.insert(headers.end(), columns.begin(), columns.end());
  util::Table table(headers);
  for (const Snapshot& s : samples) {
    std::vector<util::Cell> row;
    row.emplace_back(s.time);
    for (const std::string& column : columns) {
      row.emplace_back(scalar_of(s, column));
    }
    table.add_row(std::move(row));
  }
  return table;
}

void TimeSeries::write_csv(std::ostream& out) const {
  if (samples.empty()) return;
  out << "t";
  for (const std::string& name : scalar_names(samples.front())) {
    out << "," << name;
  }
  out << "\n";
  for (const Snapshot& s : samples) {
    out << s.time;
    for (const double v : scalar_values(s)) out << "," << v;
    out << "\n";
  }
}

void TimeSeries::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << "[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Snapshot& s = samples[i];
    out << (i == 0 ? "\n" : ",\n") << pad << "  {\"t\": " << s.time;
    const std::vector<std::string> names = scalar_names(s);
    const std::vector<double> values = scalar_values(s);
    for (std::size_t c = 0; c < names.size(); ++c) {
      out << ", \"" << names[c] << "\": " << values[c];
    }
    out << "}";
  }
  if (!samples.empty()) out << "\n" << pad;
  out << "]";
}

Sampler::Sampler(sim::Engine& engine, const Registry& registry,
                 double interval, double stop_at,
                 std::function<void()> pre_sample)
    : engine_(&engine),
      registry_(&registry),
      interval_(interval),
      stop_at_(stop_at),
      pre_sample_(std::move(pre_sample)) {
  assert(interval_ > 0.0);
}

void Sampler::start() {
  if (engine_->now() + interval_ > stop_at_) return;
  engine_->after(interval_, [this] { tick(); });
}

void Sampler::tick() {
  if (pre_sample_) pre_sample_();
  series_.samples.push_back(registry_->snapshot(engine_->now()));
  if (engine_->now() + interval_ <= stop_at_) {
    engine_->after(interval_, [this] { tick(); });
  }
}

}  // namespace lesslog::obs
