#include "lesslog/obs/wire_metrics.hpp"

#include <string>

namespace lesslog::obs {

WireMetrics::WireMetrics(Registry& registry) {
  using proto::MsgType;
  for (std::size_t tag = 1; tag < kLegacyTypeSlots; ++tag) {
    const char* name = proto::type_name(static_cast<MsgType>(tag));
    msgs_in[tag] = &registry.counter(std::string("msgs_in.") + name);
  }
  for (std::size_t tag = 1; tag < kLegacyTypeSlots; ++tag) {
    const char* name = proto::type_name(static_cast<MsgType>(tag));
    msgs_out[tag] = &registry.counter(std::string("msgs_out.") + name);
  }
  bytes_out = &registry.counter("net.bytes_out");
  dropped = &registry.counter("net.dropped");
  undeliverable = &registry.counter("net.undeliverable");
  served = &registry.counter("peer.served");
  forwarded = &registry.counter("peer.forwarded");
  push_retries = &registry.counter("peer.push_retries");
  gets_issued = &registry.counter("client.gets");
  get_retries = &registry.counter("client.retries");
  get_timeouts = &registry.counter("client.timeouts");
  get_migrations = &registry.counter("client.migrations");
  get_faults = &registry.counter("client.faults");
  queue_depth = &registry.gauge("engine.queue_depth");
  live_peers = &registry.gauge("swarm.live_peers");
  max_served = &registry.gauge("peer.max_served");
  get_latency = &registry.histogram("client.get_latency");
  delivered = &registry.counter("net.delivered");
  corrupted = &registry.counter("net.corrupted");
  injected_burst_drops = &registry.counter("fault.burst_drops");
  injected_partition_drops = &registry.counter("fault.partition_drops");
  injected_duplicates = &registry.counter("fault.duplicates");
  injected_corruptions = &registry.counter("fault.corruptions");
  injected_delay_spikes = &registry.counter("fault.delay_spikes");
  repair_pushes = &registry.counter("peer.repair_pushes");
  cross_shard_msgs = &registry.counter("net.cross_shard_msgs");
  intra_shard_msgs = &registry.counter("net.intra_shard_msgs");
  // SWIM additions — every new cell after every pre-existing one, so the
  // first N snapshot indices are unchanged and existing merge consumers
  // (per-shard registries, replay artifacts) keep their alignment.
  for (std::size_t tag = kLegacyTypeSlots; tag < kSwimTypeSlots; ++tag) {
    const char* name = proto::type_name(static_cast<MsgType>(tag));
    msgs_in[tag] = &registry.counter(std::string("msgs_in.") + name);
  }
  for (std::size_t tag = kLegacyTypeSlots; tag < kSwimTypeSlots; ++tag) {
    const char* name = proto::type_name(static_cast<MsgType>(tag));
    msgs_out[tag] = &registry.counter(std::string("msgs_out.") + name);
  }
  swim_suspects = &registry.counter("swim.suspects");
  swim_confirms = &registry.counter("swim.confirms");
  swim_refutations = &registry.counter("swim.refutations");
  swim_incarnation_bumps = &registry.counter("swim.incarnation_bumps");
  swim_gossip_bytes = &registry.counter("swim.gossip_bytes");
  // Adaptive-reliability additions — same append discipline as the SWIM
  // block above: the kBusy wire slots and the hedge/busy/estimator cells
  // register strictly after every older cell.
  for (std::size_t tag = kSwimTypeSlots; tag < kTypeSlots; ++tag) {
    const char* name = proto::type_name(static_cast<MsgType>(tag));
    msgs_in[tag] = &registry.counter(std::string("msgs_in.") + name);
  }
  for (std::size_t tag = kSwimTypeSlots; tag < kTypeSlots; ++tag) {
    const char* name = proto::type_name(static_cast<MsgType>(tag));
    msgs_out[tag] = &registry.counter(std::string("msgs_out.") + name);
  }
  rtt_samples = &registry.counter("client.rtt_samples");
  hedges = &registry.counter("client.hedges");
  hedge_wins = &registry.counter("client.hedge_wins");
  hedge_cancels = &registry.counter("client.hedge_cancels");
  busy_received = &registry.counter("client.busy_received");
  busy_shed = &registry.counter("peer.busy_shed");
}

}  // namespace lesslog::obs
