#include "lesslog/obs/export.hpp"

#include <ostream>
#include <string>

#include "lesslog/util/minijson.hpp"

namespace lesslog::obs {

namespace {

void write_json_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

void write_histogram_stats(std::ostream& out, const LatencyHistogram& h) {
  out << "{\"count\": " << h.total() << ", \"mean_ms\": " << 1000.0 * h.mean()
      << ", \"p50_ms\": " << 1000.0 * h.percentile(50.0)
      << ", \"p90_ms\": " << 1000.0 * h.percentile(90.0)
      << ", \"p99_ms\": " << 1000.0 * h.percentile(99.0) << "}";
}

}  // namespace

void write_metrics_json(std::ostream& out, const Snapshot& snapshot,
                        std::string_view source, std::uint64_t seed,
                        const TimeSeries* series) {
  out << "{\n";
  out << "  \"schema\": \"" << kMetricsSchemaName << "\",\n";
  out << "  \"version\": " << kMetricsSchemaVersion << ",\n";
  out << "  \"source\": \"";
  write_json_escaped(out, source);
  out << "\",\n";
  out << "  \"seed\": " << seed << ",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    write_json_escaped(out, name);
    out << "\": " << value;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& [name, value] = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    write_json_escaped(out, name);
    out << "\": " << value;
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, hist] = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"";
    write_json_escaped(out, name);
    out << "\": ";
    write_histogram_stats(out, hist);
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}";

  if (series != nullptr) {
    out << ",\n  \"series\": ";
    series->write_json(out, 2);
  }
  out << "\n}\n";
}

void write_metrics_csv(std::ostream& out, const Snapshot& snapshot,
                       std::string_view source, std::uint64_t seed,
                       const TimeSeries* series) {
  out << "# lesslog.metrics v" << kMetricsSchemaVersion << " source="
      << source << " seed=" << seed << "\n";
  out << "metric,kind,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << name << ",counter," << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << name << ",gauge," << value << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    out << name << ".count,histogram," << hist.total() << "\n";
    out << name << ".mean_ms,histogram," << 1000.0 * hist.mean() << "\n";
    out << name << ".p50_ms,histogram," << 1000.0 * hist.percentile(50.0)
        << "\n";
    out << name << ".p90_ms,histogram," << 1000.0 * hist.percentile(90.0)
        << "\n";
    out << name << ".p99_ms,histogram," << 1000.0 * hist.percentile(99.0)
        << "\n";
  }
  if (series != nullptr && !series->empty()) {
    out << "\n";
    series->write_csv(out);
  }
}

std::string validate_metrics_json(std::string_view text) {
  namespace mj = util::minijson;
  const std::optional<mj::Value> doc = mj::parse(text);
  if (!doc) return "not valid JSON";
  if (!doc->is_object()) return "document is not an object";

  const mj::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kMetricsSchemaName) {
    return "missing or wrong \"schema\" tag";
  }
  const mj::Value* version = doc->find("version");
  if (version == nullptr || !version->is_number() ||
      version->number != static_cast<double>(kMetricsSchemaVersion)) {
    return "missing or wrong \"version\"";
  }
  const mj::Value* source = doc->find("source");
  if (source == nullptr || !source->is_string() || source->string.empty()) {
    return "missing \"source\"";
  }
  const mj::Value* seed = doc->find("seed");
  if (seed == nullptr || !seed->is_number()) return "missing \"seed\"";

  const mj::Value* counters = doc->find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return "missing \"counters\" object";
  }
  for (const auto& [name, value] : counters->object) {
    if (!value.is_number()) return "counter \"" + name + "\" is not numeric";
  }
  const mj::Value* gauges = doc->find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    return "missing \"gauges\" object";
  }
  for (const auto& [name, value] : gauges->object) {
    if (!value.is_number()) return "gauge \"" + name + "\" is not numeric";
  }
  const mj::Value* histograms = doc->find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return "missing \"histograms\" object";
  }
  for (const auto& [name, stats] : histograms->object) {
    if (!stats.is_object()) {
      return "histogram \"" + name + "\" is not an object";
    }
    for (const char* field :
         {"count", "mean_ms", "p50_ms", "p90_ms", "p99_ms"}) {
      const mj::Value* v = stats.find(field);
      if (v == nullptr || !v->is_number()) {
        return "histogram \"" + name + "\" missing numeric \"" + field + "\"";
      }
    }
  }
  if (const mj::Value* series = doc->find("series")) {
    if (!series->is_array()) return "\"series\" is not an array";
    for (const mj::Value& sample : series->array) {
      if (!sample.is_object()) return "series sample is not an object";
      const mj::Value* t = sample.find("t");
      if (t == nullptr || !t->is_number()) {
        return "series sample missing numeric \"t\"";
      }
    }
  }
  return {};
}

}  // namespace lesslog::obs
