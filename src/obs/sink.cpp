#include "lesslog/obs/sink.hpp"

#include <ostream>

namespace lesslog::obs {

DeliverySink::~DeliverySink() = default;

void DeliverySink::on_peer(double /*time*/, core::Pid /*peer*/,
                           bool /*live*/) {}

void MetricsSink::on_deliver(double /*time*/, const proto::Message& m) {
  metrics_->in_for(m.type).inc();
}

void write_delivery_jsonl(std::ostream& out, double time,
                          const proto::Message& m) {
  out << "{\"t\":" << time << ",\"type\":\"" << proto::type_name(m.type)
      << "\",\"from\":" << m.from.value() << ",\"to\":" << m.to.value()
      << ",\"requester\":" << m.requester.value()
      << ",\"subject\":" << m.subject.value() << ",\"file\":" << m.file.key()
      << ",\"version\":" << m.version
      << ",\"hops\":" << static_cast<int>(m.hop_count)
      << ",\"ok\":" << (m.ok ? "true" : "false") << "}\n";
}

void JsonlSink::on_deliver(double time, const proto::Message& m) {
  write_delivery_jsonl(*out_, time, m);
}

void JsonlSink::on_peer(double time, core::Pid peer, bool live) {
  *out_ << "{\"t\":" << time << ",\"event\":\"peer\",\"peer\":"
        << peer.value() << ",\"live\":" << (live ? "true" : "false")
        << "}\n";
}

}  // namespace lesslog::obs
