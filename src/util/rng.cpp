#include "lesslog/util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lesslog::util {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire (2019): multiply-shift with rejection on the low product half.
  // __int128 is a GCC/Clang extension; every supported toolchain has it.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 product = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      product = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

#pragma GCC diagnostic pop

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1u;
  // range == 0 means the full 64-bit span; no bounding needed then.
  const std::uint64_t draw = range == 0 ? (*this)() : bounded(range);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // Inversion; 1 - U avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

double Rng::normal() noexcept {
  // Box-Muller; the second variate of the pair is discarded to keep the
  // generator stateless beyond its word state.
  const double u1 = 1.0 - uniform01();  // avoid log(0)
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::vector<std::uint32_t> Rng::sample_indices(std::uint32_t n,
                                               std::uint32_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(bounded(j + 1u));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Mix the current state with the stream index through SplitMix64 so that
  // different streams are decorrelated regardless of the parent's position.
  std::uint64_t s = state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (stream + 1));
  const std::uint64_t seed = splitmix64(s);
  return Rng{seed};
}

}  // namespace lesslog::util
