#include "lesslog/util/csv.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace lesslog::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& headers)
    : out_(path), width_(headers.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < headers.size(); ++i) {
    out_ << (i == 0 ? "" : ",") << escape(headers[i]);
  }
  out_ << "\n";
}

void CsvWriter::add_row(const std::vector<Cell>& row) {
  assert(row.size() == width_);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out_ << ",";
    if (const auto* s = std::get_if<std::string>(&row[i])) {
      out_ << escape(*s);
    } else if (const auto* n = std::get_if<std::int64_t>(&row[i])) {
      out_ << *n;
    } else {
      out_ << std::get<double>(row[i]);
    }
  }
  out_ << "\n";
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace lesslog::util
