#include "lesslog/util/minijson.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace lesslog::util::minijson {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    std::optional<Value> v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return v;
  }

 private:
  /// Records the first (deepest) failure with its byte offset, then
  /// unwinds as std::nullopt. Outer frames propagate without recording,
  /// so the reported position points at the actual syntax error.
  std::nullopt_t fail(std::string_view reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(reason) + " at byte " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
        if (!eat_word("true")) return fail("invalid literal");
        return make_bool(true);
      case 'f':
        if (!eat_word("false")) return fail("invalid literal");
        return make_bool(false);
      case 'n':
        if (!eat_word("null")) return fail("invalid literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  std::optional<Value> parse_object(int depth) {
    ++pos_;  // '{'
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (eat('}')) return v;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return fail("expected object key string");
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      std::optional<Value> member = parse_value(depth + 1);
      if (!member) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return v;
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<Value> parse_array(int depth) {
    ++pos_;  // '['
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (eat(']')) return v;
    while (true) {
      std::optional<Value> element = parse_value(depth + 1);
      if (!element) return std::nullopt;
      v.array.push_back(std::move(*element));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return v;
      return fail("expected ',' or ']' in array");
    }
  }

  static bool is_hex(char c) noexcept {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated string");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            // Pass a valid \uXXXX through verbatim (the emitters here
            // never produce one), but only after checking all four hex
            // digits: "\uZOOM" is not JSON, and an unvalidated
            // passthrough used to accept it.
            if (pos_ + 4 > text_.size()) {
              return fail("truncated \\u escape");
            }
            const std::string_view hex = text_.substr(pos_, 4);
            for (const char h : hex) {
              if (!is_hex(h)) {
                return fail("invalid \\u escape: expected 4 hex digits");
              }
            }
            out.append("\\u");
            out.append(hex);
            pos_ += 4;
            break;
          }
          default:
            return fail("invalid escape sequence");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  std::optional<Value> parse_string_value() {
    std::optional<std::string> s = parse_string();
    if (!s) return std::nullopt;
    Value v;
    v.kind = Value::Kind::kString;
    v.string = std::move(*s);
    return v;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string_view token = text_.substr(start, pos_ - start);
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), number);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      pos_ = start;
      return fail("invalid number");
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = number;
    return v;
  }

  std::string_view text_;
  std::string* error_;  // null = caller doesn't want a reason
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text, nullptr).run();
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace lesslog::util::minijson
