// ψ is fully constexpr; this translation unit exists to give the header a
// home in the static library and to anchor its symbols for debuggers.
#include "lesslog/util/hashing.hpp"

namespace lesslog::util {

static_assert(psi("", 10) <= mask_of(10));
static_assert(psi_u64(0, 4) <= mask_of(4));

}  // namespace lesslog::util
