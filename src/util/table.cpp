#include "lesslog/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lesslog::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<Cell> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return out.str();
}

std::string Table::render() const {
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  std::vector<std::size_t> widths;
  widths.reserve(headers_.size());
  for (const auto& h : headers_) widths.push_back(h.size());
  for (const auto& row : rows_) {
    std::vector<std::string> formatted;
    formatted.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      formatted.push_back(format_cell(row[i]));
      widths[i] = std::max(widths[i], formatted.back().size());
    }
    cells.push_back(std::move(formatted));
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[i]))
          << row[i];
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule += widths[i] + (i == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << "\n";
  for (const auto& row : cells) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace lesslog::util
