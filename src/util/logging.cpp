#include "lesslog/util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace lesslog::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mu;

constexpr std::string_view tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view msg) {
  std::lock_guard lock(g_mu);
  std::cerr << "[" << tag(level) << "] " << msg << "\n";
}

}  // namespace lesslog::util
