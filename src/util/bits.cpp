#include "lesslog/util/bits.hpp"

namespace lesslog::util {

std::string to_binary(std::uint32_t v, int m) {
  assert(valid_width(m));
  std::string out(static_cast<std::size_t>(m), '0');
  for (int i = 0; i < m; ++i) {
    if (test_bit(v, m - 1 - i)) out[static_cast<std::size_t>(i)] = '1';
  }
  return out;
}

std::uint32_t from_binary(const std::string& s) {
  assert(!s.empty() && s.size() <= static_cast<std::size_t>(kMaxIdBits));
  std::uint32_t v = 0;
  for (char c : s) {
    assert(c == '0' || c == '1');
    v = (v << 1) | static_cast<std::uint32_t>(c - '0');
  }
  return v;
}

}  // namespace lesslog::util
